// End-to-end translator tests: Stage 5 pass behaviour on the paper's
// Example Code 4.1 (expected output: Example Code 4.2) and structural
// checks over every benchmark's pthread source.
#include <gtest/gtest.h>

#include "translator/translator.h"
#include "workloads/benchmark.h"

namespace hsm::translator {
namespace {

const char* const kExample41 = R"(#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for (local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *)local);
    }
    for (local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
)";

TranslationResult translateExample(bool offchip_only = true) {
  TranslatorOptions options;
  options.offchip_only = offchip_only;
  Translator translator(options);
  return translator.translate(kExample41, "example_4_1.c");
}

TEST(TranslatorExample41, Succeeds) {
  const TranslationResult r = translateExample();
  EXPECT_TRUE(r.ok) << r.diagnostics;
}

TEST(TranslatorExample41, MainBecomesRcceApp) {
  const std::string out = translateExample().output_source;
  EXPECT_NE(out.find("int RCCE_APP(int *argc, char **argv)"), std::string::npos) << out;
  EXPECT_EQ(out.find("int main("), std::string::npos);
}

TEST(TranslatorExample41, InitAndFinalizeInserted) {
  const std::string out = translateExample().output_source;
  EXPECT_NE(out.find("RCCE_init(&argc, &argv);"), std::string::npos);
  const auto finalize_pos = out.find("RCCE_finalize();");
  const auto return_pos = out.rfind("return 0;");
  ASSERT_NE(finalize_pos, std::string::npos);
  ASSERT_NE(return_pos, std::string::npos);
  EXPECT_LT(finalize_pos, return_pos) << "finalize must precede the return";
}

TEST(TranslatorExample41, SharedVariablesBecomeShmalloc) {
  const std::string out = translateExample().output_source;
  EXPECT_NE(out.find("sum = (int*)RCCE_shmalloc(sizeof(int) * 3);"), std::string::npos)
      << out;
  EXPECT_NE(out.find("ptr = (int*)RCCE_shmalloc(sizeof(int) * 1);"), std::string::npos);
  // The array declaration decays to a pointer at file scope.
  EXPECT_NE(out.find("int *sum;"), std::string::npos);
}

TEST(TranslatorExample41, OnChipPlanUsesRcceMalloc) {
  const TranslationResult r = translateExample(/*offchip_only=*/false);
  // Everything fits the 8 KB MPB, so Algorithm 3 places it all on-chip.
  EXPECT_NE(r.output_source.find("RCCE_malloc("), std::string::npos);
  EXPECT_EQ(r.output_source.find("RCCE_shmalloc("), std::string::npos);
}

TEST(TranslatorExample41, CoreIdReplacesThreadLaunchLoop) {
  const std::string out = translateExample().output_source;
  EXPECT_NE(out.find("myID = RCCE_ue();"), std::string::npos);
  EXPECT_NE(out.find("tf((void*)myID);"), std::string::npos);
  EXPECT_EQ(out.find("pthread_create"), std::string::npos);
}

TEST(TranslatorExample41, JoinLoopBecomesBarrierPlusPerCoreEpilogue) {
  const std::string out = translateExample().output_source;
  const auto barrier_pos = out.find("RCCE_barrier(&RCCE_COMM_WORLD);");
  const auto printf_pos = out.find("printf(\"Sum Array: %d\\n\", sum[myID]);");
  ASSERT_NE(barrier_pos, std::string::npos) << out;
  ASSERT_NE(printf_pos, std::string::npos) << out;
  EXPECT_LT(barrier_pos, printf_pos);
  EXPECT_EQ(out.find("pthread_join"), std::string::npos);
}

TEST(TranslatorExample41, UnusedGlobalRemoved) {
  const std::string out = translateExample().output_source;
  EXPECT_EQ(out.find("int global;"), std::string::npos);
}

TEST(TranslatorExample41, DeadLocalsRemoved) {
  const std::string out = translateExample().output_source;
  EXPECT_EQ(out.find("int rc"), std::string::npos);
  EXPECT_EQ(out.find("pthread_t threads"), std::string::npos);
  EXPECT_EQ(out.find("int local"), std::string::npos);
}

TEST(TranslatorExample41, IncludeSwapped) {
  const std::string out = translateExample().output_source;
  EXPECT_NE(out.find("#include \"RCCE.h\""), std::string::npos);
  EXPECT_EQ(out.find("pthread.h"), std::string::npos);
  EXPECT_NE(out.find("#include <stdio.h>"), std::string::npos);
}

TEST(TranslatorExample41, ThreadFunctionBodyPreserved) {
  const std::string out = translateExample().output_source;
  EXPECT_NE(out.find("sum[tLocal] += tLocal;"), std::string::npos);
  EXPECT_NE(out.find("sum[tLocal] += *ptr;"), std::string::npos);
  EXPECT_EQ(out.find("pthread_exit"), std::string::npos);
}

TEST(Translator, MutexBecomesTasLock) {
  Translator translator;
  const TranslationResult r =
      translator.translate(workloads::pthreadSource("PiApprox"), "pi.c");
  ASSERT_TRUE(r.ok) << r.diagnostics;
  EXPECT_NE(r.output_source.find("RCCE_acquire_lock(0)"), std::string::npos)
      << r.output_source;
  EXPECT_NE(r.output_source.find("RCCE_release_lock(0)"), std::string::npos);
  EXPECT_EQ(r.output_source.find("pthread_mutex_lock"), std::string::npos);
  EXPECT_EQ(r.output_source.find("pthread_mutex_init"), std::string::npos);
  EXPECT_EQ(r.output_source.find("pthread_mutex_t"), std::string::npos);
}

TEST(Translator, BarrierWaitBecomesRcceBarrier) {
  Translator translator;
  const TranslationResult r =
      translator.translate(workloads::pthreadSource("LU"), "lu.c");
  ASSERT_TRUE(r.ok) << r.diagnostics;
  EXPECT_NE(r.output_source.find("RCCE_barrier(&RCCE_COMM_WORLD)"), std::string::npos);
  EXPECT_EQ(r.output_source.find("pthread_barrier_wait"), std::string::npos);
  EXPECT_EQ(r.output_source.find("pthread_barrier_t"), std::string::npos);
}

TEST(Translator, MissingMainIsError) {
  Translator translator;
  const TranslationResult r = translator.translate("int x;", "nomain.c");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.diagnostics.find("main"), std::string::npos);
}

TEST(Translator, ParseErrorPropagates) {
  Translator translator;
  const TranslationResult r = translator.translate("int main( {", "bad.c");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.diagnostics.empty());
}

TEST(Translator, AnalyzeOnlyProducesTablesWithoutTransforming) {
  Translator translator;
  const TranslationResult r = translator.analyzeOnly(kExample41, "e.c");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.output_source.empty());
  EXPECT_NE(r.variableTable().find("tLocal"), std::string::npos);
  EXPECT_NE(r.sharingTable().find("tmp"), std::string::npos);
}

// --- structural checks across the whole benchmark suite ---------------------

class SuiteTranslation : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteTranslation, ProducesCleanRcceProgram) {
  Translator translator;
  const TranslationResult r =
      translator.translate(workloads::pthreadSource(GetParam()), GetParam() + ".c");
  ASSERT_TRUE(r.ok) << r.diagnostics;
  const std::string& out = r.output_source;
  // No pthread residue of any kind.
  EXPECT_EQ(out.find("pthread_"), std::string::npos) << out;
  // The RCCE program skeleton is present and ordered.
  const auto init_pos = out.find("RCCE_init(");
  const auto ue_pos = out.find("RCCE_ue()");
  const auto finalize_pos = out.find("RCCE_finalize()");
  ASSERT_NE(init_pos, std::string::npos);
  ASSERT_NE(ue_pos, std::string::npos);
  ASSERT_NE(finalize_pos, std::string::npos);
  EXPECT_LT(init_pos, ue_pos);
  EXPECT_LT(ue_pos, finalize_pos);
  EXPECT_NE(out.find("RCCE_APP"), std::string::npos);
}

TEST_P(SuiteTranslation, SharedArraysAllocatedInSharedMemory) {
  Translator translator;
  const TranslationResult r =
      translator.translate(workloads::pthreadSource(GetParam()), GetParam() + ".c");
  ASSERT_TRUE(r.ok) << r.diagnostics;
  // Every benchmark has at least one shared variable mapped by Stage 4.
  EXPECT_FALSE(r.plan.decisions.empty());
  const bool has_alloc =
      r.output_source.find("RCCE_shmalloc(") != std::string::npos ||
      r.output_source.find("RCCE_malloc(") != std::string::npos;
  EXPECT_TRUE(has_alloc) << r.output_source;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteTranslation,
                         ::testing::Values("PiApprox", "3-5-Sum", "CountPrimes",
                                           "Stream", "DotProduct", "LU"));

}  // namespace
}  // namespace hsm::translator

// Unit tests: the C-subset lexer — keywords, every operator spelling,
// literals, comments, preprocessor directive capture, and error recovery.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lex/lexer.h"

namespace hsm::lex {
namespace {

LexResult lex(const std::string& text, bool expect_clean = true) {
  // Token::text views into the SourceBuffer, so the buffer must outlive the
  // returned LexResult: park it in process-lifetime storage (test helper
  // only; a few small strings per run).
  static std::vector<std::unique_ptr<SourceBuffer>> buffers;
  buffers.push_back(std::make_unique<SourceBuffer>("test.c", text));
  SourceBuffer& buffer = *buffers.back();
  DiagnosticEngine diags;
  Lexer lexer(buffer, diags);
  LexResult result = lexer.lexAll();
  if (expect_clean) EXPECT_FALSE(diags.hasErrors()) << diags.format(buffer);
  return result;
}

std::vector<TokenKind> kindsOf(const LexResult& r) {
  std::vector<TokenKind> kinds;
  for (const Token& t : r.tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const LexResult r = lex("");
  ASSERT_EQ(r.tokens.size(), 1u);
  EXPECT_EQ(r.tokens[0].kind, TokenKind::Eof);
}

TEST(Lexer, Identifiers) {
  const LexResult r = lex("foo _bar baz42");
  ASSERT_EQ(r.tokens.size(), 4u);
  EXPECT_EQ(r.tokens[0].text, "foo");
  EXPECT_EQ(r.tokens[1].text, "_bar");
  EXPECT_EQ(r.tokens[2].text, "baz42");
}

TEST(Lexer, KeywordsAreNotIdentifiers) {
  const LexResult r = lex("int return while");
  EXPECT_EQ(r.tokens[0].kind, TokenKind::KwInt);
  EXPECT_EQ(r.tokens[1].kind, TokenKind::KwReturn);
  EXPECT_EQ(r.tokens[2].kind, TokenKind::KwWhile);
}

TEST(Lexer, IntegerLiterals) {
  const LexResult r = lex("0 42 0x1F 100L 7u");
  for (int i = 0; i < 5; ++i) EXPECT_EQ(r.tokens[i].kind, TokenKind::IntLiteral) << i;
}

TEST(Lexer, FloatLiterals) {
  const LexResult r = lex("1.5 0.25 3. 1e10 2.5e-3 1.0f");
  for (int i = 0; i < 6; ++i) EXPECT_EQ(r.tokens[i].kind, TokenKind::FloatLiteral) << i;
}

TEST(Lexer, IntegerThenDotDistinctFromFloat) {
  const LexResult r = lex("a.b");
  EXPECT_EQ(r.tokens[0].kind, TokenKind::Identifier);
  EXPECT_EQ(r.tokens[1].kind, TokenKind::Dot);
  EXPECT_EQ(r.tokens[2].kind, TokenKind::Identifier);
}

TEST(Lexer, CharLiteral) {
  const LexResult r = lex("'a' '\\n'");
  EXPECT_EQ(r.tokens[0].kind, TokenKind::CharLiteral);
  EXPECT_EQ(r.tokens[0].text, "'a'");
  EXPECT_EQ(r.tokens[1].kind, TokenKind::CharLiteral);
}

TEST(Lexer, StringLiteralWithEscapes) {
  const LexResult r = lex(R"("hi\n" "a\"b")");
  EXPECT_EQ(r.tokens[0].kind, TokenKind::StringLiteral);
  EXPECT_EQ(r.tokens[0].text, "\"hi\\n\"");
  EXPECT_EQ(r.tokens[1].kind, TokenKind::StringLiteral);
}

TEST(Lexer, LineComment) {
  const LexResult r = lex("a // comment here\nb");
  ASSERT_EQ(r.tokens.size(), 3u);
  EXPECT_EQ(r.tokens[1].text, "b");
}

TEST(Lexer, BlockComment) {
  const LexResult r = lex("a /* multi\nline */ b");
  ASSERT_EQ(r.tokens.size(), 3u);
  EXPECT_EQ(r.tokens[1].text, "b");
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  SourceBuffer buffer("t.c", "a /* never ends");
  DiagnosticEngine diags;
  Lexer lexer(buffer, diags);
  (void)lexer.lexAll();
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, UnterminatedStringIsError) {
  SourceBuffer buffer("t.c", "\"oops");
  DiagnosticEngine diags;
  Lexer lexer(buffer, diags);
  (void)lexer.lexAll();
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, UnknownCharacterIsErrorButRecovers) {
  SourceBuffer buffer("t.c", "a @ b");
  DiagnosticEngine diags;
  Lexer lexer(buffer, diags);
  const LexResult r = lexer.lexAll();
  EXPECT_TRUE(diags.hasErrors());
  // 'a' and 'b' still lexed.
  ASSERT_GE(r.tokens.size(), 3u);
  EXPECT_EQ(r.tokens[0].text, "a");
  EXPECT_EQ(r.tokens[1].text, "b");
}

TEST(Lexer, DirectiveCaptured) {
  const LexResult r = lex("#include <stdio.h>\nint x;");
  ASSERT_EQ(r.directives.size(), 1u);
  EXPECT_EQ(r.directives[0].text, "#include <stdio.h>");
  EXPECT_EQ(r.directives[0].token_index, 0u);
}

TEST(Lexer, DirectiveBetweenTokensRecordsPosition) {
  const LexResult r = lex("int x;\n#define N 4\nint y;");
  ASSERT_EQ(r.directives.size(), 1u);
  EXPECT_EQ(r.directives[0].token_index, 3u);  // after "int x ;"
}

TEST(Lexer, TokenLocations) {
  const LexResult r = lex("int\n  x;");
  EXPECT_EQ(r.tokens[0].loc.line, 1u);
  EXPECT_EQ(r.tokens[1].loc.line, 2u);
  EXPECT_EQ(r.tokens[1].loc.column, 3u);
}

struct OperatorCase {
  const char* text;
  TokenKind kind;
};

class LexerOperatorTest : public ::testing::TestWithParam<OperatorCase> {};

TEST_P(LexerOperatorTest, LexesSingleOperator) {
  const OperatorCase& c = GetParam();
  const LexResult r = lex(c.text);
  ASSERT_EQ(r.tokens.size(), 2u) << c.text;
  EXPECT_EQ(r.tokens[0].kind, c.kind) << c.text;
  EXPECT_EQ(r.tokens[0].text, c.text);
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, LexerOperatorTest,
    ::testing::Values(
        OperatorCase{"(", TokenKind::LParen}, OperatorCase{")", TokenKind::RParen},
        OperatorCase{"{", TokenKind::LBrace}, OperatorCase{"}", TokenKind::RBrace},
        OperatorCase{"[", TokenKind::LBracket}, OperatorCase{"]", TokenKind::RBracket},
        OperatorCase{";", TokenKind::Semicolon}, OperatorCase{",", TokenKind::Comma},
        OperatorCase{":", TokenKind::Colon}, OperatorCase{"?", TokenKind::Question},
        OperatorCase{"+", TokenKind::Plus}, OperatorCase{"-", TokenKind::Minus},
        OperatorCase{"*", TokenKind::Star}, OperatorCase{"/", TokenKind::Slash},
        OperatorCase{"%", TokenKind::Percent}, OperatorCase{"++", TokenKind::PlusPlus},
        OperatorCase{"--", TokenKind::MinusMinus}, OperatorCase{"&", TokenKind::Amp},
        OperatorCase{"|", TokenKind::Pipe}, OperatorCase{"^", TokenKind::Caret},
        OperatorCase{"~", TokenKind::Tilde}, OperatorCase{"!", TokenKind::Bang},
        OperatorCase{"&&", TokenKind::AmpAmp}, OperatorCase{"||", TokenKind::PipePipe},
        OperatorCase{"<", TokenKind::Less}, OperatorCase{">", TokenKind::Greater},
        OperatorCase{"<=", TokenKind::LessEqual},
        OperatorCase{">=", TokenKind::GreaterEqual},
        OperatorCase{"==", TokenKind::EqualEqual},
        OperatorCase{"!=", TokenKind::BangEqual},
        OperatorCase{"<<", TokenKind::LessLess},
        OperatorCase{">>", TokenKind::GreaterGreater},
        OperatorCase{"=", TokenKind::Assign}, OperatorCase{"+=", TokenKind::PlusAssign},
        OperatorCase{"-=", TokenKind::MinusAssign},
        OperatorCase{"*=", TokenKind::StarAssign},
        OperatorCase{"/=", TokenKind::SlashAssign},
        OperatorCase{"%=", TokenKind::PercentAssign},
        OperatorCase{"&=", TokenKind::AmpAssign},
        OperatorCase{"|=", TokenKind::PipeAssign},
        OperatorCase{"^=", TokenKind::CaretAssign},
        OperatorCase{"<<=", TokenKind::LessLessAssign},
        OperatorCase{">>=", TokenKind::GreaterGreaterAssign},
        OperatorCase{".", TokenKind::Dot}, OperatorCase{"->", TokenKind::Arrow},
        OperatorCase{"...", TokenKind::Ellipsis}));

TEST(Lexer, MaximalMunch) {
  const auto kinds = kindsOf(lex("a+++b"));
  // a ++ + b
  EXPECT_EQ(kinds[0], TokenKind::Identifier);
  EXPECT_EQ(kinds[1], TokenKind::PlusPlus);
  EXPECT_EQ(kinds[2], TokenKind::Plus);
  EXPECT_EQ(kinds[3], TokenKind::Identifier);
}

TEST(Lexer, WholeProgramTokenCount) {
  const LexResult r = lex("int main() { return 0; }");
  // int main ( ) { return 0 ; } EOF
  EXPECT_EQ(r.tokens.size(), 10u);
}

}  // namespace
}  // namespace hsm::lex

// Tests for analysis Stages 1–3 against the paper's worked example
// (Example Code 4.1, Tables 4.1 and 4.2) plus targeted cases for
// Algorithm 1 (Variable-in-Thread) and Algorithm 2 (points-to sharing).
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/scope_analysis.h"
#include "analysis/thread_analysis.h"
#include "parse/parser.h"
#include "sema/resolver.h"

namespace hsm::analysis {
namespace {

const char* const kExample41 = R"(#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for (local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *)local);
    }
    for (local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
)";

struct Analyzed {
  std::shared_ptr<ast::ASTContext> context = std::make_shared<ast::ASTContext>();
  AnalysisResult result;
};

Analyzed analyze(const std::string& text) {
  Analyzed a;
  SourceBuffer buffer("t.c", text);
  DiagnosticEngine diags;
  EXPECT_TRUE(parse::parseSource(buffer, *a.context, diags)) << diags.format(buffer);
  sema::Resolver resolver(diags);
  EXPECT_TRUE(resolver.resolve(*a.context));
  Analyzer analyzer;
  a.result = analyzer.analyze(*a.context);
  return a;
}

class Example41Analysis : public ::testing::Test {
 protected:
  void SetUp() override { a_ = analyze(kExample41); }
  const VariableInfo& var(const std::string& name) {
    VariableInfo* info = a_.result.findByName(name);
    EXPECT_NE(info, nullptr) << name;
    return *info;
  }
  Analyzed a_;
};

// --- Table 4.1 -------------------------------------------------------------

TEST_F(Example41Analysis, AllNineVariablesFound) {
  EXPECT_EQ(a_.result.variables.size(), 9u);
}

TEST_F(Example41Analysis, ElementCounts) {
  EXPECT_EQ(var("global").element_count, 1u);
  EXPECT_EQ(var("sum").element_count, 3u);
  EXPECT_EQ(var("threads").element_count, 3u);
  EXPECT_EQ(var("tLocal").element_count, 1u);
}

TEST_F(Example41Analysis, ByteSizes) {
  EXPECT_EQ(var("sum").byte_size, 12u);     // int[3]
  EXPECT_EQ(var("ptr").byte_size, 4u);      // int*
  EXPECT_EQ(var("threads").byte_size, 12u); // pthread_t[3]
}

TEST_F(Example41Analysis, GlobalIsCompletelyUnused) {
  EXPECT_EQ(var("global").reads, 0u);
  EXPECT_EQ(var("global").writes, 0u);
  EXPECT_TRUE(var("global").use_in.empty());
}

TEST_F(Example41Analysis, PtrCountsMatchPaper) {
  // Table 4.1: ptr rd=1 (the *ptr dereference reads the pointer),
  // wr=1 (ptr = &tmp); used in tf, defined in main.
  EXPECT_EQ(var("ptr").reads, 1u);
  EXPECT_EQ(var("ptr").writes, 1u);
  EXPECT_EQ(var("ptr").use_in, (std::set<std::string>{"tf"}));
  EXPECT_EQ(var("ptr").def_in, (std::set<std::string>{"main"}));
}

TEST_F(Example41Analysis, TLocalCountsMatchPaper) {
  // Table 4.1: tLocal rd=3 wr=1, all inside tf.
  EXPECT_EQ(var("tLocal").reads, 3u);
  EXPECT_EQ(var("tLocal").writes, 1u);
  EXPECT_EQ(var("tLocal").use_in, (std::set<std::string>{"tf"}));
  EXPECT_EQ(var("tLocal").def_in, (std::set<std::string>{"tf"}));
}

TEST_F(Example41Analysis, SumUsedInBothFunctionsDefinedInTf) {
  // Table 4.1: Use In = {tf, main}, Def In = {tf}; the init list is not a
  // definition site.
  EXPECT_EQ(var("sum").use_in, (std::set<std::string>{"main", "tf"}));
  EXPECT_EQ(var("sum").def_in, (std::set<std::string>{"tf"}));
  EXPECT_EQ(var("sum").writes, 2u);  // two compound assignments
}

TEST_F(Example41Analysis, LocalReadCountMatchesPaper) {
  // Table 4.1: local rd=8 (2 loop conditions, 2 steps, 2 array indexes,
  // the thread argument, and the printf index).
  EXPECT_EQ(var("local").reads, 8u);
}

TEST_F(Example41Analysis, ThreadsReadTwiceNeverWritten) {
  // Table 4.1: threads rd=2 (&threads[local] and the join) wr=0.
  EXPECT_EQ(var("threads").reads, 2u);
  EXPECT_EQ(var("threads").writes, 0u);
}

TEST_F(Example41Analysis, TmpGainsDerefAttributedRead) {
  // tmp itself is only written (= 1); the *ptr read in tf is attributed to
  // tmp through the definite points-to relation (Table 4.1 rd=1).
  EXPECT_EQ(var("tmp").reads, 1u);
  EXPECT_EQ(var("tmp").writes, 1u);
}

// --- Table 4.2 (stage progression) ------------------------------------------

struct SharingCase {
  const char* name;
  Sharing stage1;
  Sharing stage2;
  Sharing stage3;
};

class SharingProgression : public ::testing::TestWithParam<SharingCase> {};

TEST_P(SharingProgression, MatchesPaperTable42) {
  static Analyzed a = analyze(kExample41);
  const SharingCase& c = GetParam();
  const VariableInfo* info = a.result.findByName(c.name);
  ASSERT_NE(info, nullptr) << c.name;
  EXPECT_EQ(info->after_stage1, c.stage1) << c.name << " stage 1";
  EXPECT_EQ(info->after_stage2, c.stage2) << c.name << " stage 2";
  EXPECT_EQ(info->after_stage3, c.stage3) << c.name << " stage 3";
}

INSTANTIATE_TEST_SUITE_P(
    Table42, SharingProgression,
    ::testing::Values(
        SharingCase{"global", Sharing::Shared, Sharing::Shared, Sharing::Private},
        SharingCase{"ptr", Sharing::Shared, Sharing::Shared, Sharing::Shared},
        SharingCase{"sum", Sharing::Shared, Sharing::Shared, Sharing::Shared},
        SharingCase{"tLocal", Sharing::Unknown, Sharing::Private, Sharing::Private},
        SharingCase{"tid", Sharing::Unknown, Sharing::Private, Sharing::Private},
        SharingCase{"local", Sharing::Unknown, Sharing::Private, Sharing::Private},
        SharingCase{"tmp", Sharing::Unknown, Sharing::Private, Sharing::Shared},
        SharingCase{"threads", Sharing::Unknown, Sharing::Private, Sharing::Private},
        SharingCase{"rc", Sharing::Unknown, Sharing::Private, Sharing::Private}));

// --- refinement rule ---------------------------------------------------------

TEST(SharingRefinement, FromUnknownAlwaysAccepted) {
  VariableInfo v;
  EXPECT_TRUE(v.refine(Sharing::Private));
  EXPECT_EQ(v.status, Sharing::Private);
}

TEST(SharingRefinement, OneRefinementThenFrozen) {
  VariableInfo v;
  v.refine(Sharing::Private);            // from Unknown: free
  EXPECT_TRUE(v.refine(Sharing::Shared));   // the single refinement
  EXPECT_FALSE(v.refine(Sharing::Private)); // never reverts
  EXPECT_EQ(v.status, Sharing::Shared);
}

TEST(SharingRefinement, SameValueIsNoOp) {
  VariableInfo v;
  v.refine(Sharing::Shared);
  EXPECT_FALSE(v.refine(Sharing::Shared));
  EXPECT_TRUE(v.refine(Sharing::Private));  // refinement still available
}

// --- Algorithm 1 (thread presence) -------------------------------------------

TEST_F(Example41Analysis, LaunchSiteDiscovered) {
  ASSERT_EQ(a_.result.launches.size(), 1u);
  const ThreadLaunchSite& site = a_.result.launches[0];
  EXPECT_EQ(site.thread_fn_name, "tf");
  EXPECT_TRUE(site.in_loop);
  EXPECT_TRUE(site.arg_is_thread_id);
  ASSERT_EQ(a_.result.thread_functions.size(), 1u);
}

TEST_F(Example41Analysis, VariablesInThreadClassification) {
  EXPECT_EQ(var("tLocal").presence, ThreadPresence::MultipleThreads);
  EXPECT_EQ(var("sum").presence, ThreadPresence::MultipleThreads);
  EXPECT_EQ(var("local").presence, ThreadPresence::NotInThread);
  EXPECT_EQ(var("global").presence, ThreadPresence::NotInThread);
}

TEST(ThreadAnalysis, SingleLaunchOutsideLoopIsSingleThread) {
  Analyzed a = analyze(R"(
int shared_x;
void *task(void *arg) { shared_x = 1; return arg; }
int main() {
    pthread_t t;
    pthread_create(&t, NULL, task, NULL);
    pthread_join(t, NULL);
    return 0;
}
)");
  const VariableInfo* info = a.result.findByName("shared_x");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->presence, ThreadPresence::SingleThread);
}

TEST(ThreadAnalysis, TwoLaunchesOfSameFunctionIsMultiple) {
  Analyzed a = analyze(R"(
int shared_x;
void *task(void *arg) { shared_x = 1; return arg; }
int main() {
    pthread_t t1;
    pthread_t t2;
    pthread_create(&t1, NULL, task, NULL);
    pthread_create(&t2, NULL, task, NULL);
    return 0;
}
)");
  EXPECT_EQ(a.result.findByName("shared_x")->presence, ThreadPresence::MultipleThreads);
  EXPECT_EQ(a.result.launches.size(), 2u);
}

TEST(ThreadAnalysis, DistinctTasksEachSingleThread) {
  Analyzed a = analyze(R"(
int xa;
int xb;
void *ta(void *arg) { xa = 1; return arg; }
void *tb(void *arg) { xb = 2; return arg; }
int main() {
    pthread_t t1;
    pthread_t t2;
    pthread_create(&t1, NULL, ta, NULL);
    pthread_create(&t2, NULL, tb, NULL);
    return 0;
}
)");
  EXPECT_EQ(a.result.findByName("xa")->presence, ThreadPresence::SingleThread);
  EXPECT_EQ(a.result.findByName("xb")->presence, ThreadPresence::SingleThread);
  EXPECT_EQ(a.result.thread_functions.size(), 2u);
}

TEST(ThreadAnalysis, AddressOfThreadRoutineAccepted) {
  Analyzed a = analyze(R"(
void *task(void *arg) { return arg; }
int main() {
    pthread_t t;
    pthread_create(&t, NULL, &task, NULL);
    return 0;
}
)");
  ASSERT_EQ(a.result.launches.size(), 1u);
  EXPECT_EQ(a.result.launches[0].thread_fn_name, "task");
}

TEST(ThreadAnalysis, WhileLoopLaunchIsMultiple) {
  Analyzed a = analyze(R"(
int shared_x;
void *task(void *arg) { shared_x = 1; return arg; }
int main() {
    pthread_t t;
    int i = 0;
    while (i < 4) {
        pthread_create(&t, NULL, task, NULL);
        i++;
    }
    return 0;
}
)");
  EXPECT_EQ(a.result.findByName("shared_x")->presence, ThreadPresence::MultipleThreads);
}

// --- Stage 3 (points-to / Algorithm 2) ---------------------------------------

TEST_F(Example41Analysis, PtrDefinitelyPointsToTmp) {
  const VariableInfo& p = var("ptr");
  const auto it = a_.result.points_to.find(p.decl->id());
  ASSERT_NE(it, a_.result.points_to.end());
  EXPECT_TRUE(it->second.definite);
  ASSERT_EQ(it->second.targets.size(), 1u);
  EXPECT_EQ(it->second.targets[0]->name(), "tmp");
}

TEST(PointsTo, ConditionalAssignmentIsPossibleNotDefinite) {
  Analyzed a = analyze(R"(
int a;
int b;
int *p;
void *task(void *arg) { *p = 1; return arg; }
int main(int argc) {
    pthread_t t;
    if (argc > 1) {
        p = &a;
    } else {
        p = &b;
    }
    pthread_create(&t, NULL, task, NULL);
    return 0;
}
)");
  const VariableInfo* p = a.result.findByName("p");
  ASSERT_NE(p, nullptr);
  const auto it = a.result.points_to.find(p->decl->id());
  ASSERT_NE(it, a.result.points_to.end());
  EXPECT_FALSE(it->second.definite);
  EXPECT_EQ(it->second.targets.size(), 2u);
  // Algorithm 2 only acts on definite relations: a and b stay private.
  EXPECT_NE(a.result.findByName("a")->status, Sharing::Shared);
  EXPECT_NE(a.result.findByName("b")->status, Sharing::Shared);
}

TEST(PointsTo, CopyPropagation) {
  Analyzed a = analyze(R"(
int x;
int *p;
int *q;
void *task(void *arg) { *q = 1; return arg; }
int main() {
    pthread_t t;
    p = &x;
    q = p;
    pthread_create(&t, NULL, task, NULL);
    return 0;
}
)");
  const VariableInfo* q = a.result.findByName("q");
  const auto it = a.result.points_to.find(q->decl->id());
  ASSERT_NE(it, a.result.points_to.end());
  ASSERT_EQ(it->second.targets.size(), 1u);
  EXPECT_EQ(it->second.targets[0]->name(), "x");
  EXPECT_TRUE(it->second.definite);
}

TEST(PointsTo, ArrayNameFlowsLikeAddress) {
  Analyzed a = analyze(R"(
int buf[8];
int *p;
void *task(void *arg) { p[0] = 1; return arg; }
int main() {
    pthread_t t;
    p = buf;
    pthread_create(&t, NULL, task, NULL);
    return 0;
}
)");
  const VariableInfo* p = a.result.findByName("p");
  const auto it = a.result.points_to.find(p->decl->id());
  ASSERT_NE(it, a.result.points_to.end());
  ASSERT_EQ(it->second.targets.size(), 1u);
  EXPECT_EQ(it->second.targets[0]->name(), "buf");
}

TEST(PointsTo, PrivatePointerDoesNotShareItsTarget) {
  Analyzed a = analyze(R"(
void *task(void *arg) { return arg; }
int main() {
    int x = 0;
    int *p = &x;
    pthread_t t;
    *p = 2;
    pthread_create(&t, NULL, task, NULL);
    return 0;
}
)");
  // p is a main-local (private) pointer, so x must remain private.
  EXPECT_NE(a.result.findByName("x")->status, Sharing::Shared);
}

TEST(ScopeAnalysis, ConstantTripCounts) {
  Analyzed a = analyze(R"(
int acc;
void f() {
    int i;
    for (i = 0; i < 10; i++) acc += i;
}
)");
  // weighted writes of acc = 10 (one static write x trip count 10).
  const VariableInfo* acc = a.result.findByName("acc");
  EXPECT_DOUBLE_EQ(acc->weighted_writes, 10.0);
  EXPECT_EQ(acc->writes, 1u);
}

TEST(ScopeAnalysis, NestedLoopsMultiplyWeights) {
  Analyzed a = analyze(R"(
int acc;
void f() {
    int i;
    int j;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 5; j++)
            acc += 1;
}
)");
  EXPECT_DOUBLE_EQ(a.result.findByName("acc")->weighted_writes, 20.0);
}

TEST(ScopeAnalysis, UnknownTripUsesDefaultFactor)
{
  Analyzed a = analyze(R"(
int acc;
void f(int n) {
    int i;
    for (i = 0; i < n; i++) acc += 1;
}
)");
  EXPECT_DOUBLE_EQ(a.result.findByName("acc")->weighted_writes,
                   ScopeAnalysis::kUnknownTripFactor);
}

}  // namespace
}  // namespace hsm::analysis

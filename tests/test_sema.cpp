// Unit tests: name resolution — scoping rules, shadowing, owner links,
// unresolved library names.
#include <gtest/gtest.h>

#include "parse/parser.h"
#include "sema/resolver.h"
#include "sema/symbol_table.h"
#include "transform/ast_edit.h"

namespace hsm::sema {
namespace {

struct Resolved {
  std::shared_ptr<ast::ASTContext> context = std::make_shared<ast::ASTContext>();
  bool ok = false;
};

Resolved resolve(const std::string& text) {
  Resolved r;
  SourceBuffer buffer("t.c", text);
  DiagnosticEngine diags;
  EXPECT_TRUE(parse::parseSource(buffer, *r.context, diags)) << diags.format(buffer);
  Resolver resolver(diags);
  r.ok = resolver.resolve(*r.context);
  return r;
}

/// First DeclRef with the given name anywhere in the function.
ast::DeclRefExpr* findRef(ast::FunctionDecl* fn, const std::string& name) {
  ast::DeclRefExpr* found = nullptr;
  transform::rewriteExprsInStmt(fn->body(), [&](ast::Expr* e) {
    if (found == nullptr && e->kind() == ast::ExprKind::DeclRef) {
      auto* ref = static_cast<ast::DeclRefExpr*>(e);
      if (ref->name() == name) found = ref;
    }
    return e;
  });
  return found;
}

TEST(SymbolTable, InnermostWins) {
  SymbolTable table;
  ast::TypeTable types;
  ast::VarDecl outer("x", types.intType(), {});
  ast::VarDecl inner("x", types.intType(), {});
  table.declare("x", &outer);
  table.pushScope();
  table.declare("x", &inner);
  EXPECT_EQ(table.lookup("x"), &inner);
  table.popScope();
  EXPECT_EQ(table.lookup("x"), &outer);
}

TEST(SymbolTable, GlobalScopeNeverPops) {
  SymbolTable table;
  table.popScope();
  table.popScope();
  EXPECT_EQ(table.depth(), 1u);
}

TEST(SymbolTable, UnknownNameIsNull) {
  SymbolTable table;
  EXPECT_EQ(table.lookup("nope"), nullptr);
}

TEST(Resolver, BindsGlobalReference) {
  Resolved r = resolve("int g;\nvoid f() { g = 1; }");
  ASSERT_TRUE(r.ok);
  auto* fn = r.context->unit().findFunction("f");
  auto* ref = findRef(fn, "g");
  ASSERT_NE(ref, nullptr);
  ASSERT_NE(ref->decl(), nullptr);
  EXPECT_EQ(ref->decl()->name(), "g");
  EXPECT_TRUE(static_cast<ast::VarDecl*>(ref->decl())->isGlobal());
}

TEST(Resolver, LocalShadowsGlobal) {
  Resolved r = resolve("int x;\nvoid f() { int x; x = 1; }");
  ASSERT_TRUE(r.ok);
  auto* fn = r.context->unit().findFunction("f");
  auto* ref = findRef(fn, "x");
  ASSERT_NE(ref, nullptr);
  ASSERT_NE(ref->decl(), nullptr);
  EXPECT_FALSE(static_cast<ast::VarDecl*>(ref->decl())->isGlobal());
}

TEST(Resolver, ParameterBinds) {
  Resolved r = resolve("int f(int n) { return n; }");
  ASSERT_TRUE(r.ok);
  auto* fn = r.context->unit().findFunction("f");
  auto* ref = findRef(fn, "n");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->decl(), fn->params()[0]);
}

TEST(Resolver, OwnerFunctionRecorded) {
  Resolved r = resolve("void f() { int local; local = 2; }");
  ASSERT_TRUE(r.ok);
  auto* fn = r.context->unit().findFunction("f");
  auto* ref = findRef(fn, "local");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(static_cast<ast::VarDecl*>(ref->decl())->owner(), fn);
}

TEST(Resolver, LibraryNamesStayUnbound) {
  Resolved r = resolve(R"(void f() { printf("x"); })");
  ASSERT_TRUE(r.ok);
  auto* fn = r.context->unit().findFunction("f");
  auto* ref = findRef(fn, "printf");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->decl(), nullptr);
}

TEST(Resolver, ForwardFunctionReference) {
  Resolved r = resolve(R"(
void caller() { callee(); }
void callee() { }
)");
  ASSERT_TRUE(r.ok);
  auto* caller = r.context->unit().findFunction("caller");
  auto* ref = findRef(caller, "callee");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->decl(), r.context->unit().findFunction("callee"));
}

TEST(Resolver, ForLoopScopeDoesNotLeak) {
  Resolved r = resolve(R"(
int i;
void f() {
    for (int i = 0; i < 3; i++) { }
    i = 7;
}
)");
  ASSERT_TRUE(r.ok);
  auto* fn = r.context->unit().findFunction("f");
  // The assignment after the loop must bind to the global.
  ast::DeclRefExpr* last = nullptr;
  transform::rewriteExprsInStmt(fn->body(), [&](ast::Expr* e) {
    if (e->kind() == ast::ExprKind::DeclRef &&
        static_cast<ast::DeclRefExpr*>(e)->name() == "i") {
      last = static_cast<ast::DeclRefExpr*>(e);
    }
    return e;
  });
  ASSERT_NE(last, nullptr);
  ASSERT_NE(last->decl(), nullptr);
  EXPECT_TRUE(static_cast<ast::VarDecl*>(last->decl())->isGlobal());
}

TEST(Resolver, GlobalInitializerBinds) {
  Resolved r = resolve("int a = 3;\nint *p = &a;");
  ASSERT_TRUE(r.ok);
  const auto globals = r.context->unit().globals();
  ASSERT_EQ(globals.size(), 2u);
  ASSERT_NE(globals[1]->init(), nullptr);
  ASSERT_EQ(globals[1]->init()->kind(), ast::ExprKind::Unary);
  auto* addr = static_cast<ast::UnaryExpr*>(globals[1]->init());
  auto* ref = static_cast<ast::DeclRefExpr*>(addr->operand());
  EXPECT_EQ(ref->decl(), globals[0]);
}

}  // namespace
}  // namespace hsm::sema

// Tests for src/sim/obs: the deterministic trace recorder and the unified
// metrics registry (docs/observability.md).
//
// The load-bearing oracle is byte identity: an enabled trace must export the
// exact same bytes across engine_lanes=1/N, every coalescing mode, and under
// a zero-rate armed fault plan — and enabling the trace must not move a
// single simulated Tick relative to an untraced run. The registry tests pin
// the counter/gauge/histogram semantics and the sim/host domain split that
// keeps RunResult::detail reproducible.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "rcce/rcce.h"
#include "sim/machine.h"
#include "sim/obs/metrics.h"
#include "sim/obs/trace.h"
#include "workloads/benchmark.h"
#include "workloads/kv_store.h"

namespace hsm {
namespace {

using sim::SccConfig;
using sim::SccMachine;
using sim::Tick;
namespace obs = sim::obs;

// --- metrics registry units --------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndDomainSplit) {
  obs::MetricsRegistry reg;
  reg.counter("events").add(3);
  reg.counter("events").add(2);
  reg.counter("wall_polls", obs::MetricDomain::kHost).add(1);
  reg.gauge("hit_rate").set(0.75);
  reg.gauge("wall_seconds", obs::MetricDomain::kHost).set(1.5);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.sim_counters.at("events"), 5u);
  EXPECT_EQ(snap.host_counters.at("wall_polls"), 1u);
  EXPECT_DOUBLE_EQ(snap.sim_gauges.at("hit_rate"), 0.75);
  EXPECT_DOUBLE_EQ(snap.host_gauges.at("wall_seconds"), 1.5);
  EXPECT_EQ(snap.sim_counters.count("wall_polls"), 0u);
  EXPECT_EQ(snap.host_gauges.count("hit_rate"), 0u);
}

TEST(MetricsRegistry, HistogramLog2Buckets) {
  EXPECT_EQ(obs::Histogram::bucketFor(0.0), 0u);
  EXPECT_EQ(obs::Histogram::bucketFor(0.99), 0u);
  EXPECT_EQ(obs::Histogram::bucketFor(1.0), 1u);   // [1, 2)
  EXPECT_EQ(obs::Histogram::bucketFor(3.0), 2u);   // [2, 4)
  EXPECT_EQ(obs::Histogram::bucketFor(1024.0), 11u);

  obs::Histogram h;
  h.observe(1.0);
  h.observe(3.0);
  h.observe(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
}

TEST(MetricsRegistry, JsonIsDeterministicAndSummaryIsSimOnly) {
  obs::MetricsRegistry reg;
  reg.counter("events").add(7);
  reg.counter("makespan_ticks").add(1234);
  reg.gauge("wall_seconds", obs::MetricDomain::kHost).set(0.25);
  reg.histogram("lat").observe(2.0);

  const std::string a = reg.snapshot().toJson();
  const std::string b = reg.snapshot().toJson();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"sim\""), std::string::npos);
  EXPECT_NE(a.find("\"host\""), std::string::npos);

  const std::string summary = reg.snapshot().summary();
  EXPECT_NE(summary.find("events=7"), std::string::npos);
  EXPECT_NE(summary.find("makespan_ticks=1234"), std::string::npos);
  // Host-domain metrics must never leak into the reproducible result line.
  EXPECT_EQ(summary.find("wall_seconds"), std::string::npos);
}

// --- trace recorder units ----------------------------------------------------

TEST(TraceRecorder, DisabledByDefaultAndZeroAccounting) {
  obs::TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  EXPECT_FALSE(rec.batchesEnabled());
  EXPECT_EQ(rec.recordedEvents(), 0u);
  EXPECT_EQ(rec.droppedEvents(), 0u);
}

TEST(TraceRecorder, RingKeepsNewestAndAccountsDropped) {
  obs::TraceRecorder rec;
  rec.configure(/*enabled=*/true, /*ring_capacity=*/2, /*record_batches=*/false);
  rec.prepare(1);
  for (std::uint64_t i = 0; i < 5; ++i) {
    obs::TraceEvent ev;
    ev.start = i;
    ev.end = i;
    ev.a = i;
    ev.kind = obs::TraceEventKind::kBlock;
    rec.record(0, ev);
  }
  EXPECT_EQ(rec.recordedEvents(), 5u);
  EXPECT_EQ(rec.droppedEvents(), 3u);
  const std::vector<obs::TraceEvent> kept = rec.taskEvents(0);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].a, 3u);  // oldest retained
  EXPECT_EQ(kept[1].a, 4u);  // newest
}

// --- machine-level trace oracles --------------------------------------------

/// Full-mix kernel: uncached shm block IO, an MPB deposit, a lock-guarded
/// counter, and a global barrier per round — every traced operation family
/// in one component (the global sync objects merge all tasks, so this runs
/// sequential regardless of engine_lanes; the lanes oracle below uses the
/// pair kernel instead).
sim::SimTask obsMix(sim::CoreContext& ctx, std::uint64_t base, std::uint64_t counter,
                    std::uint64_t slot, int rounds, std::size_t block) {
  std::vector<std::uint8_t> buf(block);
  const std::uint64_t mine = base + static_cast<std::uint64_t>(ctx.ue()) * block;
  const int right = (ctx.ue() + 1) % ctx.numUes();
  for (int r = 0; r < rounds; ++r) {
    co_await ctx.compute(10000 + static_cast<std::uint64_t>(ctx.ue() % 3) * 7000);
    co_await ctx.shmRead(mine, buf.data(), block);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::uint8_t>(buf[i] + static_cast<std::size_t>(r) + i);
    }
    co_await ctx.shmWrite(mine, buf.data(), block);
    co_await rcce::put(ctx, right, slot, buf.data(), 256);
    co_await ctx.lockAcquire(0);
    std::uint64_t c = 0;
    co_await ctx.shmRead(counter, &c, sizeof(c));
    ++c;
    co_await ctx.shmWrite(counter, &c, sizeof(c));
    co_await ctx.lockRelease(0);
    co_await ctx.barrier();
  }
}

/// Controller-sharing UE pairs with pair-local sync groups and an empty MPB
/// scope (the quadrant_pairs shape): four provably disjoint components, so
/// engine_lanes=4 really shards — the regime the lane byte-identity oracle
/// must cover.
sim::SimTask pairKernel(sim::CoreContext& ctx, std::uint64_t base, int rounds,
                        std::size_t block) {
  std::vector<std::uint8_t> buf(block);
  const auto ue = static_cast<std::uint64_t>(ctx.ue());
  const std::uint64_t mine = base + ue * block;
  for (int r = 0; r < rounds; ++r) {
    for (int s = 0; s < 40; ++s) {
      co_await ctx.compute(40 + (ue % 3) + static_cast<std::uint64_t>(s % 5));
    }
    co_await ctx.shmRead(mine, buf.data(), block);
    co_await ctx.shmWrite(mine, buf.data(), block);
    co_await ctx.barrier();  // pair-group barrier (LaunchSpec sync groups)
  }
}

struct TraceRun {
  Tick makespan = 0;
  std::vector<Tick> completions;
  std::uint32_t lanes_used = 1;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::string json;
  std::string binary;
};

TraceRun runObsMix(const SccConfig& cfg) {
  SccMachine m(cfg);
  rcce::RcceEnv env(m);
  const std::uint64_t base = m.shmalloc(8 * 512);
  const std::uint64_t counter = m.shmalloc(64);
  const std::uint64_t slot = env.mpbMallocSymmetric(8, 256);
  m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
    return obsMix(ctx, base, counter, slot, 4, 512);
  }));
  TraceRun r;
  r.makespan = m.run();
  for (int ue = 0; ue < 8; ++ue) {
    r.completions.push_back(m.engine().completionTime(static_cast<std::size_t>(ue)));
  }
  r.lanes_used = m.engine().lanesUsed();
  r.recorded = m.traceRecorder().recordedEvents();
  r.dropped = m.traceRecorder().droppedEvents();
  std::ostringstream js, bs;
  m.writeTrace(js);
  m.writeTraceBinary(bs);
  r.json = js.str();
  r.binary = bs.str();
  return r;
}

TraceRun runPairs(const SccConfig& cfg) {
  SccMachine m(cfg);
  const std::uint64_t base = m.shmalloc(8 * 256);
  m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
             return pairKernel(ctx, base, 5, 256);
           })
               .withScope([](int, int) { return std::vector<int>{}; })
               .withSyncGroups([](int ue, int) { return ue % 4; }));
  TraceRun r;
  r.makespan = m.run();
  r.lanes_used = m.engine().lanesUsed();
  r.recorded = m.traceRecorder().recordedEvents();
  std::ostringstream js, bs;
  m.writeTrace(js);
  m.writeTraceBinary(bs);
  r.json = js.str();
  r.binary = bs.str();
  return r;
}

SccConfig tracedConfig() {
  SccConfig cfg;
  cfg.trace_enabled = true;
  return cfg;
}

TEST(ObsTrace, ByteIdenticalAcrossCoalescingModes) {
  SccConfig on = tracedConfig();

  SccConfig off = tracedConfig();
  off.shm_coalescing = false;
  off.mpb_coalescing = false;
  off.shm_contention_batching = false;

  SccConfig global = tracedConfig();
  global.per_resource_horizon = false;

  SccConfig blind = tracedConfig();
  blind.sync_aware_horizon = false;

  const TraceRun a = runObsMix(on);
  const TraceRun b = runObsMix(off);
  const TraceRun c = runObsMix(global);
  const TraceRun d = runObsMix(blind);
  EXPECT_GT(a.recorded, 0u);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.binary, b.binary);
  EXPECT_EQ(a.json, c.json);
  EXPECT_EQ(a.binary, c.binary);
  EXPECT_EQ(a.json, d.json);
  EXPECT_EQ(a.binary, d.binary);
}

TEST(ObsTrace, ByteIdenticalAcrossSwcacheCoalescing) {
  // Same oracle on the cached routing: swcache line transfers ride the
  // coalesced path too, and their spans must not depend on it.
  SccConfig on = tracedConfig();
  on.shm_swcache = true;
  SccConfig off = on;
  off.shm_coalescing = false;
  off.mpb_coalescing = false;

  const TraceRun a = runObsMix(on);
  const TraceRun b = runObsMix(off);
  EXPECT_GT(a.recorded, 0u);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.binary, b.binary);
}

TEST(ObsTrace, ByteIdenticalAcrossEngineLanes) {
  SccConfig seq = tracedConfig();
  SccConfig par = tracedConfig();
  par.engine_lanes = 4;

  const TraceRun s = runPairs(seq);
  const TraceRun p = runPairs(par);
  EXPECT_GT(s.recorded, 0u);
  // The parallel run must actually shard (otherwise this oracle is vacuous)…
  EXPECT_GT(p.lanes_used, 1u);
  // …and still export the exact same bytes.
  EXPECT_EQ(s.makespan, p.makespan);
  EXPECT_EQ(s.json, p.json);
  EXPECT_EQ(s.binary, p.binary);
}

TEST(ObsTrace, ZeroRateArmedFaultPlanIsByteIdentical) {
  SccConfig plain = tracedConfig();
  SccConfig armed = tracedConfig();
  armed.fault.enabled = true;  // every rate zero: must record nothing extra

  const TraceRun a = runObsMix(plain);
  const TraceRun b = runObsMix(armed);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.binary, b.binary);
}

TEST(ObsTrace, EnablingTheTraceMovesNoTick) {
  SccConfig traced = tracedConfig();
  SccConfig untraced;  // trace_enabled = false

  const TraceRun a = runObsMix(traced);
  const TraceRun b = runObsMix(untraced);
  EXPECT_GT(a.recorded, 0u);
  EXPECT_EQ(b.recorded, 0u);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completions, b.completions);
}

TEST(ObsTrace, RingCapacityBoundsMemoryAndAccountsTruncation) {
  SccConfig capped = tracedConfig();
  capped.trace_ring_capacity = 8;

  SccMachine m(capped);
  rcce::RcceEnv env(m);
  const std::uint64_t base = m.shmalloc(8 * 512);
  const std::uint64_t counter = m.shmalloc(64);
  const std::uint64_t slot = env.mpbMallocSymmetric(8, 256);
  m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
    return obsMix(ctx, base, counter, slot, 4, 512);
  }));
  m.run();

  const obs::TraceRecorder& rec = m.traceRecorder();
  EXPECT_GT(rec.droppedEvents(), 0u);
  std::uint64_t retained = 0;
  for (std::size_t task = 0; task < rec.taskSlots(); ++task) {
    const std::size_t kept = rec.taskEvents(task).size();
    EXPECT_LE(kept, 8u);
    retained += kept;
  }
  retained += rec.hostEvents().size();
  EXPECT_EQ(rec.recordedEvents(), retained + rec.droppedEvents());
}

TEST(ObsTrace, BinaryFormatCarriesMagicAndJsonParsesAsTraceEvents) {
  const TraceRun r = runObsMix(tracedConfig());
  ASSERT_GE(r.binary.size(), 8u);
  EXPECT_EQ(r.binary.substr(0, 8), "HSMTRC01");
  EXPECT_EQ(r.json.find("{\"displayTimeUnit\""), 0u);
  EXPECT_NE(r.json.find("\"traceEvents\""), std::string::npos);
  // One track per UE plus the three process groups.
  EXPECT_NE(r.json.find("\"ue 0\""), std::string::npos);
  EXPECT_NE(r.json.find("\"ue 7\""), std::string::npos);
  EXPECT_NE(r.json.find("\"lane 0\""), std::string::npos);
  EXPECT_NE(r.json.find("\"mc 0\""), std::string::npos);
  EXPECT_NE(r.json.find("\"barrier_wait\""), std::string::npos);
  EXPECT_NE(r.json.find("\"lock_wait\""), std::string::npos);
  EXPECT_NE(r.json.find("\"mpb_put\""), std::string::npos);
}

// --- machine-level metrics ---------------------------------------------------

TEST(ObsMetrics, CollectMetricsAbsorbsMachineStats) {
  SccConfig cfg = tracedConfig();
  SccMachine m(cfg);
  rcce::RcceEnv env(m);
  const std::uint64_t base = m.shmalloc(8 * 512);
  const std::uint64_t counter = m.shmalloc(64);
  const std::uint64_t slot = env.mpbMallocSymmetric(8, 256);
  m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
    return obsMix(ctx, base, counter, slot, 4, 512);
  }));
  const Tick makespan = m.run();

  const obs::MetricsSnapshot snap = obs::collectMetrics(m);
  EXPECT_EQ(snap.sim_counters.at("makespan_ticks"), static_cast<std::uint64_t>(makespan));
  EXPECT_GT(snap.sim_counters.at("events"), 0u);
  EXPECT_GT(snap.sim_counters.at("shm_words"), 0u);
  EXPECT_GT(snap.sim_counters.at("mpb_chunks"), 0u);
  EXPECT_GT(snap.sim_counters.at("trace_events_recorded"), 0u);
  EXPECT_GT(snap.host_gauges.at("wall_seconds"), 0.0);
  EXPECT_GT(snap.host_gauges.at("events_per_second"), 0.0);
  // Per-controller counters exist for every controller.
  EXPECT_EQ(snap.sim_counters.count("mc0_units"), 1u);
  EXPECT_EQ(snap.sim_counters.count("mc3_units"), 1u);
  EXPECT_EQ(snap.histograms.count("controller_traffic"), 1u);
}

TEST(ObsMetrics, RegionProfilingIsOffByDefault) {
  SccConfig cfg;
  SccMachine m(cfg);
  m.registerShmRegion("ignored", 0, 4096);
  EXPECT_FALSE(m.regionProfilingActive());
  EXPECT_TRUE(m.shmRegionProfiles().empty());
}

TEST(ObsMetrics, RegionProfilesCoverAllSevenBenchmarks) {
  SccConfig cfg;
  cfg.region_metrics = true;
  std::vector<std::unique_ptr<workloads::Benchmark>> suite =
      workloads::standardSuite(0.05);
  suite.push_back(workloads::makeKvStore(0.1));
  ASSERT_EQ(suite.size(), 7u);
  for (const auto& bench : suite) {
    const workloads::RunResult r =
        bench->run(workloads::Mode::RcceOffChip, 4, cfg);
    EXPECT_TRUE(r.verified) << bench->name() << ": " << r.detail;
    ASSERT_FALSE(r.metrics.regions.empty()) << bench->name();
    std::uint64_t ops = 0;
    std::uint64_t controller_units = 0;
    for (const obs::RegionProfile& region : r.metrics.regions) {
      EXPECT_FALSE(region.name.empty()) << bench->name();
      EXPECT_EQ(region.controller_txns.size(), cfg.num_mem_controllers)
          << bench->name();
      ops += region.reads + region.writes;
      for (const std::uint64_t units : region.controller_txns) {
        controller_units += units;
      }
    }
    EXPECT_GT(ops, 0u) << bench->name();
    EXPECT_GT(controller_units, 0u) << bench->name();
    // The acceptance surface: toJson() must carry the per-region profile.
    const std::string json = r.metrics.toJson();
    EXPECT_NE(json.find("\"regions\":[{\"name\""), std::string::npos)
        << bench->name();
  }
}

}  // namespace
}  // namespace hsm

// KV-store workload under Zipf traffic and the controller-placement
// machinery it is sized against:
//   * ZipfGenerator determinism (same seed → identical streams on replay),
//     seed decorrelation, and measured skew against probability();
//   * address→controller routing per ControllerPlacement (striped requester-
//     independence, pinning, deterministic first-touch claims, the
//     owner-compute fallthrough for unplanned addresses);
//   * per-controller traffic conservation: the controller counters must sum
//     to exactly the machine's uncached words + swcache lines + bulk lines
//     under MIXED planned/unplanned regions;
//   * the KvStore benchmark verifies in all three modes, surfaces
//     controller_traffic / controller_load_cv through RunResult, and a
//     striped plan measurably hot-spots where owner-compute stays flat;
//   * name drift of a controller-placed region trips the
//     plan_regions_unrealized detector.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "partition/execution_plan.h"
#include "sim/machine.h"
#include "workloads/kv_store.h"

namespace hsm {
namespace {

using partition::ControllerPlacement;
using partition::ExecutionPlan;
using partition::MpbPattern;
using partition::PlacementClass;
using partition::RegionPlan;
using workloads::KvParams;
using workloads::ZipfGenerator;

// --- Zipf generator ----------------------------------------------------------

TEST(ZipfGenerator, SameSeedReplaysIdentically) {
  ZipfGenerator a(1024, 1.2, 0xFEEDULL);
  ZipfGenerator b(1024, 1.2, 0xFEEDULL);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at draw " << i;
  }
}

TEST(ZipfGenerator, DistinctSeedsDecorrelate) {
  ZipfGenerator a(1024, 1.2, 1);
  ZipfGenerator b(1024, 1.2, 2);
  int agreements = 0;
  for (int i = 0; i < 10000; ++i) {
    if (a.next() == b.next()) ++agreements;
  }
  // Independent Zipf(1.2) streams collide with probability sum(p_k^2) ≈ 5%;
  // correlated streams would agree far more often.
  EXPECT_GT(agreements, 0);
  EXPECT_LT(agreements, 2000);
}

TEST(ZipfGenerator, MeasuredSkewMatchesProbability) {
  const std::uint32_t n = 512;
  ZipfGenerator g(n, 1.2, 0xABCDULL);
  constexpr int kDraws = 200000;
  std::vector<int> freq(n, 0);
  for (int i = 0; i < kDraws; ++i) freq[g.next()]++;
  for (std::uint32_t k = 0; k < 8; ++k) {
    const double measured = static_cast<double>(freq[k]) / kDraws;
    EXPECT_NEAR(measured, g.probability(k), 0.01) << "rank " << k;
  }
  double total = 0.0;
  for (std::uint32_t k = 0; k < n; ++k) {
    total += g.probability(k);
    if (k > 0) EXPECT_LE(g.probability(k), g.probability(k - 1));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(g.probability(0), 0.15);  // alpha 1.2 concentrates the head
}

// --- address→controller routing ---------------------------------------------

TEST(ControllerPlacementRouting, StripedPinnedFirstTouchOwnerCompute) {
  sim::SccConfig cfg;
  sim::SccMachine m(cfg);
  const std::uint64_t striped = m.shmalloc(4096);
  const std::uint64_t pinned = m.shmalloc(4096);
  const std::uint64_t first_touch = m.shmalloc(4096);
  const std::uint64_t unplanned = m.shmalloc(4096);
  m.setShmControllerPlacement(striped, striped + 4096,
                              ControllerPlacement::kStriped);
  m.setShmControllerPlacement(pinned, pinned + 4096, ControllerPlacement::kPinned,
                              2);
  m.setShmControllerPlacement(first_touch, first_touch + 4096,
                              ControllerPlacement::kFirstTouch);

  const std::uint64_t stripe = cfg.shm_controller_stripe_bytes;
  for (std::uint64_t off = 0; off < 4096; off += 8) {
    const auto expected =
        static_cast<std::uint32_t>((off / stripe) % cfg.num_mem_controllers);
    // Striped: pure function of the address, independent of the requester.
    EXPECT_EQ(m.controllerForShmAccess(0, striped + off), expected);
    EXPECT_EQ(m.controllerForShmAccess(47, striped + off), expected);
    EXPECT_EQ(m.controllerForShmAccess(5, pinned + off), 2u);
  }

  // Owner-compute fallthrough on unplanned addresses is the core's quadrant
  // controller — capture it per core, then check first-touch claims follow
  // the FIRST toucher everywhere, not the later requesters.
  const std::uint32_t quad0 = m.controllerForShmAccess(0, unplanned);
  const std::uint32_t quad47 = m.controllerForShmAccess(47, unplanned);
  EXPECT_EQ(m.controllerForShmAccess(0, first_touch), quad0);
  EXPECT_EQ(m.controllerForShmAccess(47, first_touch + 8), quad0);  // same stripe
  EXPECT_EQ(m.controllerForShmAccess(47, first_touch + stripe), quad47);
  EXPECT_EQ(m.controllerForShmAccess(0, first_touch + stripe + 8), quad47);
}

// --- traffic conservation ----------------------------------------------------

sim::SimTask mixedTrafficKernel(sim::CoreContext& ctx, std::uint64_t planned,
                                std::uint64_t unplanned, std::uint64_t bulk) {
  std::uint64_t words[8] = {};
  std::uint8_t burst[256] = {};
  const auto ue = static_cast<std::uint64_t>(ctx.ue());
  for (int i = 0; i < 4; ++i) {
    co_await ctx.shmRead(planned + ue * 64, words, sizeof(words));
    co_await ctx.shmWrite(unplanned + ue * 64, words, sizeof(words));
    co_await ctx.shmReadBulk(bulk + ue * 256, burst, sizeof(burst));
  }
  co_await ctx.barrier();
}

TEST(ControllerTraffic, ConservesAcrossMixedPlannedAndUnplannedRegions) {
  sim::SccConfig cfg;
  sim::SccMachine m(cfg);
  const std::uint64_t planned = m.shmalloc(8 * 64);
  const std::uint64_t unplanned = m.shmalloc(8 * 64);
  const std::uint64_t bulk = m.shmalloc(8 * 256);
  m.setShmControllerPlacement(planned, planned + 8 * 64,
                              ControllerPlacement::kStriped);
  m.setShmControllerPlacement(bulk, bulk + 8 * 256, ControllerPlacement::kPinned,
                              1);
  m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
    return mixedTrafficKernel(ctx, planned, unplanned, bulk);
  }));
  m.run();

  const std::vector<std::uint64_t>& traffic = m.controllerTraffic();
  ASSERT_EQ(traffic.size(), cfg.num_mem_controllers);
  const std::uint64_t sum =
      std::accumulate(traffic.begin(), traffic.end(), std::uint64_t{0});
  EXPECT_GT(sum, 0u);
  EXPECT_EQ(sum, m.shmWordsSimulated() + m.swcacheLinesSimulated() +
                     m.shmBulkLinesSimulated());
  // The pinned bulk region's lines all land on controller 1.
  EXPECT_GE(traffic[1], m.shmBulkLinesSimulated());
}

TEST(ControllerTraffic, ConservesWithSwcacheRouting) {
  sim::SccConfig cfg;
  cfg.shm_swcache = true;  // unmapped regions route through the swcache
  sim::SccMachine m(cfg);
  const std::uint64_t cached = m.shmalloc(8 * 64);
  const std::uint64_t uncached = m.shmalloc(8 * 64);
  const std::uint64_t bulk = m.shmalloc(8 * 256);
  // Mixed map: the uncached region is explicitly unmapped from the swcache
  // AND controller-striped; cached/bulk stay on their default routing.
  m.setShmCacheability(uncached, uncached + 8 * 64, false);
  m.setShmControllerPlacement(uncached, uncached + 8 * 64,
                              ControllerPlacement::kStriped);
  m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
    return mixedTrafficKernel(ctx, cached, uncached, bulk);
  }));
  m.run();

  const std::vector<std::uint64_t>& traffic = m.controllerTraffic();
  const std::uint64_t sum =
      std::accumulate(traffic.begin(), traffic.end(), std::uint64_t{0});
  EXPECT_GT(m.swcacheLinesSimulated(), 0u);
  EXPECT_GT(m.shmWordsSimulated(), 0u);
  EXPECT_GT(m.shmBulkLinesSimulated(), 0u);
  EXPECT_EQ(sum, m.shmWordsSimulated() + m.swcacheLinesSimulated() +
                     m.shmBulkLinesSimulated());
}

// --- the benchmark -----------------------------------------------------------

ExecutionPlan kvPlan(ControllerPlacement cp) {
  return ExecutionPlan{
      {RegionPlan{"kv_index", PlacementClass::kOffChipUncached, MpbPattern::kNone,
                  0, cp},
       RegionPlan{"kv_slots", PlacementClass::kOffChipUncached, MpbPattern::kNone,
                  0, cp},
       RegionPlan{"kv_checks", PlacementClass::kOffChipUncached,
                  MpbPattern::kNone, 0}}};
}

TEST(KvStore, VerifiesInAllThreeModes) {
  KvParams p;
  p.num_keys = 256;
  p.ops_per_ue = 192;
  const auto kv = workloads::makeKvStore(p);
  const sim::SccConfig cfg;
  for (const workloads::Mode mode :
       {workloads::Mode::PthreadSingleCore, workloads::Mode::RcceOffChip,
        workloads::Mode::RcceMpb}) {
    const workloads::RunResult r = kv->run(mode, 4, cfg);
    EXPECT_TRUE(r.verified) << workloads::modeName(mode);
    EXPECT_GT(r.makespan, 0u) << workloads::modeName(mode);
  }
}

TEST(KvStore, StripedPlanHotSpotsWhereOwnerComputeStaysFlat) {
  KvParams p;
  p.num_keys = 256;
  p.ops_per_ue = 256;
  const auto kv = workloads::makeKvStore(p);
  const sim::SccConfig cfg;
  const ExecutionPlan owner = kvPlan(ControllerPlacement::kOwnerCompute);
  const ExecutionPlan striped = kvPlan(ControllerPlacement::kStriped);
  const workloads::RunResult flat =
      kv->run(workloads::Mode::RcceOffChip, 8, cfg, &owner);
  const workloads::RunResult hot =
      kv->run(workloads::Mode::RcceOffChip, 8, cfg, &striped);
  ASSERT_TRUE(flat.verified);
  ASSERT_TRUE(hot.verified);
  EXPECT_EQ(flat.plan_regions_unrealized, 0u);
  EXPECT_EQ(hot.plan_regions_unrealized, 0u);
  ASSERT_EQ(flat.controller_traffic.size(), cfg.num_mem_controllers);
  ASSERT_EQ(hot.controller_traffic.size(), cfg.num_mem_controllers);
  // Same logical work either way — placement only reroutes it.
  EXPECT_EQ(std::accumulate(flat.controller_traffic.begin(),
                            flat.controller_traffic.end(), std::uint64_t{0}),
            std::accumulate(hot.controller_traffic.begin(),
                            hot.controller_traffic.end(), std::uint64_t{0}));
  EXPECT_LT(flat.controller_load_cv, 0.1);
  EXPECT_GT(hot.controller_load_cv, 2.0 * flat.controller_load_cv);
}

TEST(KvStore, ControllerPlacedRegionNameDriftIsDetected) {
  KvParams p;
  p.num_keys = 64;
  p.ops_per_ue = 64;
  const auto kv = workloads::makeKvStore(p);
  const sim::SccConfig cfg;
  // "kv_slot" (drifted name) carries a striped placement the workload can
  // never realize — the unrealized-region detector must count it.
  const ExecutionPlan drifted{{RegionPlan{"kv_slot", PlacementClass::kOffChipUncached,
                                          MpbPattern::kNone, 0,
                                          ControllerPlacement::kStriped}}};
  const workloads::RunResult r =
      kv->run(workloads::Mode::RcceOffChip, 4, cfg, &drifted);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.plan_regions_unrealized, 1u);
}

}  // namespace
}  // namespace hsm

// Integration tests: every benchmark x every mode computes a verified
// result, plus the performance-shape properties the paper's evaluation
// rests on (parallel speedup, MPB vs off-chip ordering, load imbalance).
#include <gtest/gtest.h>

#include "workloads/benchmark.h"

namespace hsm::workloads {
namespace {

constexpr double kTestScale = 0.05;  // keep simulations fast in unit tests

struct ModeCase {
  const char* benchmark;
  Mode mode;
};

class EveryBenchmarkEveryMode : public ::testing::TestWithParam<ModeCase> {};

std::unique_ptr<Benchmark> make(const std::string& name, double scale) {
  if (name == "PiApprox") return makePiApprox(scale);
  if (name == "3-5-Sum") return makeSum35(scale);
  if (name == "CountPrimes") return makeCountPrimes(scale);
  if (name == "Stream") return makeStream(scale);
  if (name == "DotProduct") return makeDotProduct(scale);
  if (name == "LU") return makeLuDecomposition(scale);
  return nullptr;
}

TEST_P(EveryBenchmarkEveryMode, ComputesVerifiedResult) {
  const ModeCase& c = GetParam();
  const auto bench = make(c.benchmark, kTestScale);
  ASSERT_NE(bench, nullptr);
  const sim::SccConfig config;
  const RunResult r = bench->run(c.mode, 8, config);
  EXPECT_TRUE(r.verified) << r.benchmark << " " << modeName(r.mode) << ": " << r.detail;
  EXPECT_GT(r.makespan, 0u);
}

std::vector<ModeCase> allCases() {
  std::vector<ModeCase> cases;
  for (const char* name :
       {"PiApprox", "3-5-Sum", "CountPrimes", "Stream", "DotProduct", "LU"}) {
    for (const Mode mode :
         {Mode::PthreadSingleCore, Mode::RcceOffChip, Mode::RcceMpb}) {
      cases.push_back(ModeCase{name, mode});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, EveryBenchmarkEveryMode,
                         ::testing::ValuesIn(allCases()),
                         [](const ::testing::TestParamInfo<ModeCase>& info) {
                           std::string name = info.param.benchmark;
                           name += "_";
                           name += modeName(info.param.mode);
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(BlockSlice, CoversRangeWithoutOverlap) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    for (const int units : {1, 3, 8, 32}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (int u = 0; u < units; ++u) {
        const Slice s = blockSlice(n, units, u);
        EXPECT_EQ(s.first, prev_end);
        prev_end = s.last;
        covered += s.size();
      }
      EXPECT_EQ(covered, n) << "n=" << n << " units=" << units;
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(BlockSlice, BalancedWithinOne) {
  for (int u = 0; u < 32; ++u) {
    const Slice s = blockSlice(1000, 32, u);
    EXPECT_GE(s.size(), 31u);
    EXPECT_LE(s.size(), 32u);
  }
}

// --- performance-shape properties (the paper's qualitative claims) -----------

TEST(PerformanceShape, ComputeBoundBenchmarkScalesNearLinearly) {
  const auto pi = makePiApprox(kTestScale);
  const sim::SccConfig config;
  const RunResult base = pi->run(Mode::PthreadSingleCore, 16, config);
  const RunResult rcce = pi->run(Mode::RcceOffChip, 16, config);
  const double speedup =
      static_cast<double>(base.makespan) / static_cast<double>(rcce.makespan);
  EXPECT_GT(speedup, 13.0);  // ~16x ideal at 16 cores
  EXPECT_LT(speedup, 17.5);
}

TEST(PerformanceShape, CountPrimesSuffersLoadImbalance) {
  const auto primes = makeCountPrimes(kTestScale);
  const sim::SccConfig config;
  const RunResult base = primes->run(Mode::PthreadSingleCore, 16, config);
  const RunResult rcce = primes->run(Mode::RcceOffChip, 16, config);
  const double speedup =
      static_cast<double>(base.makespan) / static_cast<double>(rcce.makespan);
  // Block partitioning gives the top block ~2x the mean work (paper: 16x
  // instead of 32x at 32 cores).
  EXPECT_LT(speedup, 12.0);
  EXPECT_GT(speedup, 4.0);
}

TEST(PerformanceShape, MpbNeverSlowerThanOffChip) {
  const sim::SccConfig config;
  for (const auto& bench : standardSuite(kTestScale)) {
    const RunResult off = bench->run(Mode::RcceOffChip, 8, config);
    const RunResult mpb = bench->run(Mode::RcceMpb, 8, config);
    EXPECT_LE(mpb.makespan, off.makespan + off.makespan / 10)
        << bench->name() << ": MPB placement must not significantly hurt";
  }
}

TEST(PerformanceShape, StreamGainsMostFromMpb) {
  const sim::SccConfig config;
  auto ratio = [&](Benchmark& b) {
    const RunResult off = b.run(Mode::RcceOffChip, 8, config);
    const RunResult mpb = b.run(Mode::RcceMpb, 8, config);
    return static_cast<double>(off.makespan) / static_cast<double>(mpb.makespan);
  };
  const auto stream = makeStream(kTestScale);
  const auto pi = makePiApprox(kTestScale);
  const auto lu = makeLuDecomposition(kTestScale);
  const double stream_gain = ratio(*stream);
  const double pi_gain = ratio(*pi);
  const double lu_gain = ratio(*lu);
  EXPECT_GT(stream_gain, 1.5);            // memory benchmark gains a lot
  EXPECT_LT(pi_gain, 1.2);                // compute benchmark barely moves
  EXPECT_LT(lu_gain, stream_gain);        // LU's matrix does not fit: slight
  EXPECT_GT(stream_gain, pi_gain);
}

TEST(PerformanceShape, MoreCoresMoreSpeed) {
  const auto pi = makePiApprox(kTestScale);
  const sim::SccConfig config;
  const RunResult r4 = pi->run(Mode::RcceMpb, 4, config);
  const RunResult r16 = pi->run(Mode::RcceMpb, 16, config);
  EXPECT_LT(r16.makespan, r4.makespan / 3);
}

TEST(Workloads, DeterministicRuns) {
  const auto stream = makeStream(kTestScale);
  const sim::SccConfig config;
  const RunResult a = stream->run(Mode::RcceMpb, 8, config);
  const RunResult b = stream->run(Mode::RcceMpb, 8, config);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Workloads, SuiteHasSixBenchmarksInPaperOrder) {
  const auto suite = standardSuite(kTestScale);
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0]->name(), "PiApprox");
  EXPECT_EQ(suite[1]->name(), "3-5-Sum");
  EXPECT_EQ(suite[2]->name(), "CountPrimes");
  EXPECT_EQ(suite[3]->name(), "Stream");
  EXPECT_EQ(suite[4]->name(), "DotProduct");
  EXPECT_EQ(suite[5]->name(), "LU");
}

TEST(Workloads, PthreadSourcesExistForAllBenchmarks) {
  for (const std::string& name : pthreadSourceNames()) {
    EXPECT_FALSE(pthreadSource(name).empty()) << name;
    EXPECT_NE(pthreadSource(name).find("pthread_create"), std::string::npos) << name;
  }
  EXPECT_THROW((void)pthreadSource("NoSuchBenchmark"), std::out_of_range);
}

}  // namespace
}  // namespace hsm::workloads

// Unit tests for individual Stage 5 transform passes (Algorithms 4–10) and
// the AST-editing utilities they are built on.
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "codegen/c_emitter.h"
#include "parse/parser.h"
#include "sema/resolver.h"
#include "transform/ast_edit.h"
#include "transform/cleanup.h"
#include "transform/pass.h"
#include "transform/pthread_removal.h"
#include "transform/rcce_insertion.h"
#include "transform/threads_to_processes.h"

namespace hsm::transform {
namespace {

/// Shared harness: parse + resolve + analyze, then run a chosen pass
/// pipeline and emit the result.
struct Harness {
  explicit Harness(const std::string& text) {
    SourceBuffer buffer("t.c", text);
    DiagnosticEngine parse_diags;
    EXPECT_TRUE(parse::parseSource(buffer, context, parse_diags))
        << parse_diags.format(buffer);
    sema::Resolver resolver(parse_diags);
    EXPECT_TRUE(resolver.resolve(context));
    analysis::Analyzer analyzer;
    result = analyzer.analyze(context);
    plan = partition::SizeAscendingPlanner{}.plan(result.sharedVariables(),
                                                  partition::HsmMemorySpec{});
  }

  bool runPasses(Driver& driver) {
    PassContext pass_ctx{context, result, plan, diags};
    const bool ok = driver.runAll(pass_ctx);
    last_ctx_entry = pass_ctx.entry;
    return ok;
  }

  std::string emit() {
    codegen::CSourceEmitter emitter;
    return emitter.emit(context.unit());
  }

  ast::ASTContext context;
  analysis::AnalysisResult result;
  partition::MemoryPlan plan;
  DiagnosticEngine diags;
  ast::FunctionDecl* last_ctx_entry = nullptr;
};

Driver skeletonPasses() {
  Driver driver;
  driver.add(std::make_unique<RenameMainPass>());
  driver.add(std::make_unique<AddRcceInitPass>());
  driver.add(std::make_unique<InsertCoreIdPass>());
  return driver;
}

TEST(RenameMainPass, RenamesAndAddsParams) {
  Harness h("int main() { return 0; }");
  Driver driver;
  driver.add(std::make_unique<RenameMainPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const auto* fn = h.context.unit().findFunction("RCCE_APP");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->params().size(), 2u);
  EXPECT_EQ(fn->params()[0]->name(), "argc");
  EXPECT_EQ(fn->params()[1]->name(), "argv");
  EXPECT_EQ(h.last_ctx_entry, fn);
}

TEST(RenameMainPass, FailsWithoutMain) {
  Harness h("int helper() { return 0; }");
  Driver driver;
  driver.add(std::make_unique<RenameMainPass>());
  EXPECT_FALSE(h.runPasses(driver));
}

TEST(AddRcceInitPass, InitIsFirstStatement) {
  Harness h("int main() { int x = 1; return x; }");
  Driver driver = skeletonPasses();
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  const auto init_pos = out.find("RCCE_init(&argc, &argv);");
  const auto x_pos = out.find("int x = 1;");
  ASSERT_NE(init_pos, std::string::npos);
  ASSERT_NE(x_pos, std::string::npos);
  EXPECT_LT(init_pos, x_pos);
}

TEST(AddRcceFinalizePass, BeforeTrailingReturn) {
  Harness h("int main() { return 0; }");
  Driver driver;
  driver.add(std::make_unique<RenameMainPass>());
  driver.add(std::make_unique<AddRcceFinalizePass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  EXPECT_LT(out.find("RCCE_finalize();"), out.find("return 0;"));
}

TEST(AddRcceFinalizePass, AppendedWhenNoReturn) {
  Harness h("int main() { f(); }");
  Driver driver;
  driver.add(std::make_unique<RenameMainPass>());
  driver.add(std::make_unique<AddRcceFinalizePass>());
  ASSERT_TRUE(h.runPasses(driver));
  EXPECT_NE(h.emit().find("RCCE_finalize();"), std::string::npos);
}

TEST(InsertCoreIdPass, DeclaresAndAssigns) {
  Harness h("int main() { return 0; }");
  Driver driver = skeletonPasses();
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  EXPECT_NE(out.find("int myID;"), std::string::npos);
  EXPECT_NE(out.find("myID = RCCE_ue();"), std::string::npos);
}

TEST(ThreadsToProcesses, StandaloneTaskWrappedInCoreIdCheck) {
  Harness h(R"(
void *taskA(void *arg) { return arg; }
void *taskB(void *arg) { return arg; }
int main() {
    pthread_t t1;
    pthread_t t2;
    pthread_create(&t1, NULL, taskA, NULL);
    pthread_create(&t2, NULL, taskB, NULL);
    return 0;
}
)");
  Driver driver = skeletonPasses();
  driver.add(std::make_unique<ThreadsToProcessesPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  EXPECT_NE(out.find("if (myID == 0)"), std::string::npos) << out;
  EXPECT_NE(out.find("if (myID == 1)"), std::string::npos);
  EXPECT_NE(out.find("taskA("), std::string::npos);
  EXPECT_NE(out.find("taskB("), std::string::npos);
  EXPECT_EQ(out.find("pthread_create"), std::string::npos);
}

TEST(ThreadsToProcesses, LoopLaunchHoistedAndLoopRemoved) {
  Harness h(R"(
void *tf(void *tid) { return tid; }
int main() {
    pthread_t threads[4];
    int t;
    for (t = 0; t < 4; t++) {
        pthread_create(&threads[t], NULL, tf, (void *)t);
    }
    return 0;
}
)");
  Driver driver = skeletonPasses();
  driver.add(std::make_unique<ThreadsToProcessesPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  EXPECT_NE(out.find("tf((void*)myID);"), std::string::npos) << out;
  EXPECT_EQ(out.find("for (t = 0"), std::string::npos) << "empty launch loop removed";
}

TEST(ThreadsToProcesses, LoopWithOtherWorkKeepsLoop) {
  Harness h(R"(
int log[4];
void *tf(void *tid) { return tid; }
int main() {
    pthread_t threads[4];
    int t;
    for (t = 0; t < 4; t++) {
        pthread_create(&threads[t], NULL, tf, (void *)t);
        log[t] = t;
    }
    return 0;
}
)");
  Driver driver = skeletonPasses();
  driver.add(std::make_unique<ThreadsToProcessesPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  EXPECT_NE(out.find("log[t] = t;"), std::string::npos) << out;
  EXPECT_NE(out.find("for (t = 0"), std::string::npos);
}

TEST(JoinToBarrier, SimpleJoinBecomesBarrier) {
  Harness h(R"(
void *tf(void *tid) { return tid; }
int main() {
    pthread_t t;
    pthread_create(&t, NULL, tf, NULL);
    pthread_join(t, NULL);
    return 0;
}
)");
  Driver driver = skeletonPasses();
  driver.add(std::make_unique<ThreadsToProcessesPass>());
  driver.add(std::make_unique<JoinToBarrierPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  EXPECT_NE(out.find("RCCE_barrier(&RCCE_COMM_WORLD);"), std::string::npos);
  EXPECT_EQ(out.find("pthread_join"), std::string::npos);
}

TEST(JoinToBarrier, ConsecutiveJoinsYieldOneBarrier) {
  Harness h(R"(
void *tf(void *tid) { return tid; }
int main() {
    pthread_t t1;
    pthread_t t2;
    pthread_create(&t1, NULL, tf, NULL);
    pthread_create(&t2, NULL, tf, NULL);
    pthread_join(t1, NULL);
    pthread_join(t2, NULL);
    return 0;
}
)");
  Driver driver = skeletonPasses();
  driver.add(std::make_unique<ThreadsToProcessesPass>());
  driver.add(std::make_unique<JoinToBarrierPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  std::size_t count = 0;
  for (std::size_t pos = out.find("RCCE_barrier"); pos != std::string::npos;
       pos = out.find("RCCE_barrier", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u) << out;
}

TEST(ReplacePthreadSelf, BecomesRcceUe) {
  Harness h(R"(
void *tf(void *arg) {
    int me = (int)pthread_self();
    return arg;
}
int main() { return 0; }
)");
  Driver driver;
  driver.add(std::make_unique<ReplacePthreadSelfPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  EXPECT_NE(out.find("RCCE_ue()"), std::string::npos);
  EXPECT_EQ(out.find("pthread_self"), std::string::npos);
}

TEST(MutexToLock, DistinctMutexesGetDistinctLockIds) {
  Harness h(R"(
pthread_mutex_t ma;
pthread_mutex_t mb;
void f() {
    pthread_mutex_lock(&ma);
    pthread_mutex_unlock(&ma);
    pthread_mutex_lock(&mb);
    pthread_mutex_unlock(&mb);
}
int main() { return 0; }
)");
  Driver driver;
  driver.add(std::make_unique<MutexToLockPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  EXPECT_NE(out.find("RCCE_acquire_lock(0)"), std::string::npos);
  EXPECT_NE(out.find("RCCE_release_lock(0)"), std::string::npos);
  EXPECT_NE(out.find("RCCE_acquire_lock(1)"), std::string::npos);
  EXPECT_NE(out.find("RCCE_release_lock(1)"), std::string::npos);
}

TEST(RemovePthreadTypes, GlobalAndLocalDeclarationsDropped) {
  Harness h(R"(
pthread_mutex_t lock;
pthread_t workers[8];
int keep_me;
int main() {
    pthread_attr_t attr;
    int also_keep = 1;
    return also_keep;
}
)");
  Driver driver;
  driver.add(std::make_unique<RemovePthreadTypesPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  EXPECT_EQ(out.find("pthread_mutex_t"), std::string::npos);
  EXPECT_EQ(out.find("pthread_t"), std::string::npos);
  EXPECT_EQ(out.find("pthread_attr_t"), std::string::npos);
  EXPECT_NE(out.find("int keep_me;"), std::string::npos);
  EXPECT_NE(out.find("int also_keep = 1;"), std::string::npos);
}

TEST(RemovePthreadApi, StatementsWithApiCallsDropped) {
  Harness h(R"(
void *tf(void *arg) {
    pthread_exit(NULL);
    return arg;
}
int main() {
    pthread_setconcurrency(4);
    f();
    return 0;
}
)");
  Driver driver;
  driver.add(std::make_unique<RemovePthreadApiPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  EXPECT_EQ(out.find("pthread_exit"), std::string::npos);
  EXPECT_EQ(out.find("pthread_setconcurrency"), std::string::npos);
  EXPECT_NE(out.find("f();"), std::string::npos);
}

TEST(ReplaceIncludes, OnlyPthreadHeaderSwapped) {
  Harness h("#include <stdio.h>\n#include <pthread.h>\nint main() { return 0; }");
  Driver driver;
  driver.add(std::make_unique<ReplaceIncludesPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  EXPECT_NE(out.find("#include \"RCCE.h\""), std::string::npos);
  EXPECT_NE(out.find("#include <stdio.h>"), std::string::npos);
  EXPECT_EQ(out.find("pthread.h"), std::string::npos);
}

TEST(RemoveUnusedLocals, KeepsSideEffectingInitializers) {
  Harness h(R"(
int main() {
    int unused = 3;
    int kept = f();
    int used = 1;
    return used;
}
)");
  Driver driver;
  driver.add(std::make_unique<RemoveUnusedLocalsPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  EXPECT_EQ(out.find("int unused"), std::string::npos);
  EXPECT_NE(out.find("int kept = f();"), std::string::npos);
  EXPECT_NE(out.find("int used = 1;"), std::string::npos);
}

TEST(RemoveUnusedLocals, CascadesThroughDependencies) {
  Harness h(R"(
int main() {
    int a = 1;
    int b = a;
    return 0;
}
)");
  Driver driver;
  driver.add(std::make_unique<RemoveUnusedLocalsPass>());
  ASSERT_TRUE(h.runPasses(driver));
  const std::string out = h.emit();
  // b is unused; once b goes, a becomes unused too.
  EXPECT_EQ(out.find("int b"), std::string::npos);
  EXPECT_EQ(out.find("int a"), std::string::npos);
}

// --- ast_edit utilities -------------------------------------------------------

TEST(AstEdit, RemoveAndInsert) {
  Harness h("void f() { a(); b(); c(); }");
  auto* fn = h.context.unit().findFunction("f");
  auto& body = *fn->body();
  ASSERT_EQ(body.body().size(), 3u);
  ast::Stmt* second = body.body()[1];
  EXPECT_TRUE(removeStmt(body, second));
  EXPECT_EQ(body.body().size(), 2u);
  insertBefore(body, body.body()[1], second);
  EXPECT_EQ(body.body()[1], second);
  EXPECT_FALSE(removeStmt(body, nullptr));
}

TEST(AstEdit, ContainsCallFindsNestedCalls) {
  Harness h("void f() { int x = g(h(1)); }");
  auto* fn = h.context.unit().findFunction("f");
  EXPECT_TRUE(stmtContainsCall(fn->body(), "g"));
  EXPECT_TRUE(stmtContainsCall(fn->body(), "h"));
  EXPECT_FALSE(stmtContainsCall(fn->body(), "nope"));
}

TEST(AstEdit, CountAndReplaceDeclRefs) {
  Harness h("void f() { int x; x = 1; x = x + 2; }");
  auto* fn = h.context.unit().findFunction("f");
  // Find the decl through the analysis result.
  const analysis::VariableInfo* info = h.result.findByName("x");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(countDeclRefs(fn->body(), info->decl), 3u);

  auto* replacement = h.context.makeDecl<ast::VarDecl>(
      "y", h.context.types().intType(), SourceLoc{});
  EXPECT_EQ(replaceDeclRefs(fn->body(), info->decl, replacement), 3u);
  EXPECT_EQ(countDeclRefs(fn->body(), replacement), 3u);
  codegen::CSourceEmitter emitter;
  EXPECT_NE(emitter.emit(h.context.unit()).find("y = y + 2;"), std::string::npos);
}

TEST(Driver, ConsistencyCheckPassesOnWellFormedUnit) {
  Harness h("int main() { return 0; }");
  DiagnosticEngine diags;
  EXPECT_TRUE(Driver::checkConsistency(h.context.unit(), diags));
}

}  // namespace
}  // namespace hsm::transform

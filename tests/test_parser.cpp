// Unit tests: the recursive-descent parser — declarations, functions,
// statements, expression precedence (parameterized via emitter round-trip),
// casts, sizeof, and error reporting.
#include <gtest/gtest.h>

#include "codegen/c_emitter.h"
#include "parse/parser.h"

namespace hsm::parse {
namespace {

struct Parsed {
  std::shared_ptr<ast::ASTContext> context = std::make_shared<ast::ASTContext>();
  bool ok = false;
  std::string errors;
};

Parsed parse(const std::string& text) {
  Parsed p;
  SourceBuffer buffer("t.c", text);
  DiagnosticEngine diags;
  p.ok = parseSource(buffer, *p.context, diags);
  p.errors = diags.format(buffer);
  return p;
}

TEST(Parser, GlobalScalar) {
  const Parsed p = parse("int x;");
  ASSERT_TRUE(p.ok) << p.errors;
  const auto globals = p.context->unit().globals();
  ASSERT_EQ(globals.size(), 1u);
  EXPECT_EQ(globals[0]->name(), "x");
  EXPECT_TRUE(globals[0]->isGlobal());
  EXPECT_EQ(globals[0]->type(), p.context->types().intType());
}

TEST(Parser, GlobalWithInitializer) {
  const Parsed p = parse("int x = 42;");
  ASSERT_TRUE(p.ok) << p.errors;
  const auto* var = p.context->unit().globals()[0];
  ASSERT_NE(var->init(), nullptr);
  EXPECT_EQ(var->init()->kind(), ast::ExprKind::IntLiteral);
}

TEST(Parser, MultipleDeclaratorsShareBaseType) {
  const Parsed p = parse("int a, *b, c[4];");
  ASSERT_TRUE(p.ok) << p.errors;
  const auto globals = p.context->unit().globals();
  ASSERT_EQ(globals.size(), 3u);
  EXPECT_FALSE(globals[0]->type()->isPointer());
  EXPECT_TRUE(globals[1]->type()->isPointer());
  EXPECT_TRUE(globals[2]->type()->isArray());
  EXPECT_EQ(globals[2]->type()->arrayLength(), 4u);
}

TEST(Parser, PointerTypes) {
  const Parsed p = parse("int **pp;");
  ASSERT_TRUE(p.ok) << p.errors;
  const auto* t = p.context->unit().globals()[0]->type();
  ASSERT_TRUE(t->isPointer());
  EXPECT_TRUE(t->element()->isPointer());
}

TEST(Parser, ArrayInitializerList) {
  const Parsed p = parse("int sum[3] = {0};");
  ASSERT_TRUE(p.ok) << p.errors;
  const auto* var = p.context->unit().globals()[0];
  ASSERT_NE(var->init(), nullptr);
  EXPECT_EQ(var->init()->kind(), ast::ExprKind::InitList);
}

TEST(Parser, NamedTypeDeclaration) {
  const Parsed p = parse("pthread_t threads[3];");
  ASSERT_TRUE(p.ok) << p.errors;
  const auto* t = p.context->unit().globals()[0]->type();
  ASSERT_TRUE(t->isArray());
  EXPECT_EQ(t->element()->name(), "pthread_t");
}

TEST(Parser, TypedefRegistersTypeName) {
  const Parsed p = parse("typedef int myint;\nmyint x;");
  ASSERT_TRUE(p.ok) << p.errors;
  ASSERT_EQ(p.context->unit().globals().size(), 1u);
}

TEST(Parser, FunctionDefinition) {
  const Parsed p = parse("int add(int a, int b) { return a + b; }");
  ASSERT_TRUE(p.ok) << p.errors;
  const auto* fn = p.context->unit().findFunction("add");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->isDefinition());
  ASSERT_EQ(fn->params().size(), 2u);
  EXPECT_EQ(fn->params()[0]->name(), "a");
}

TEST(Parser, FunctionPrototype) {
  const Parsed p = parse("void f(int x);");
  ASSERT_TRUE(p.ok) << p.errors;
  const auto* fn = p.context->unit().findFunction("f");
  ASSERT_NE(fn, nullptr);
  EXPECT_FALSE(fn->isDefinition());
}

TEST(Parser, VoidParameterList) {
  const Parsed p = parse("int main(void) { return 0; }");
  ASSERT_TRUE(p.ok) << p.errors;
  EXPECT_TRUE(p.context->unit().findFunction("main")->params().empty());
}

TEST(Parser, PointerReturnType) {
  const Parsed p = parse("void *tf(void *tid) { return tid; }");
  ASSERT_TRUE(p.ok) << p.errors;
  const auto* fn = p.context->unit().findFunction("tf");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->returnType()->isPointer());
  EXPECT_TRUE(fn->params()[0]->type()->isPointer());
}

TEST(Parser, ArrayParameterDecaysToPointer) {
  const Parsed p = parse("int f(int a[]) { return a[0]; }");
  ASSERT_TRUE(p.ok) << p.errors;
  EXPECT_TRUE(p.context->unit().findFunction("f")->params()[0]->type()->isPointer());
}

TEST(Parser, AllStatementForms) {
  const Parsed p = parse(R"(
int f(int n) {
    int i;
    int acc = 0;
    for (i = 0; i < n; i++) acc += i;
    while (acc > 100) acc--;
    do { acc++; } while (acc < 10);
    if (acc == 10) acc = 0; else acc = 1;
    for (;;) break;
    ;
    {
        continue;
    }
    return acc;
}
)");
  EXPECT_TRUE(p.ok) << p.errors;
}

TEST(Parser, ForLoopWithDeclaration) {
  const Parsed p = parse("int f() { for (int i = 0; i < 4; i++) { } return 0; }");
  EXPECT_TRUE(p.ok) << p.errors;
}

TEST(Parser, MissingSemicolonIsError) {
  const Parsed p = parse("int x");
  EXPECT_FALSE(p.ok);
  EXPECT_NE(p.errors.find("expected"), std::string::npos);
}

TEST(Parser, GarbageTopLevelIsError) {
  const Parsed p = parse("42;");
  EXPECT_FALSE(p.ok);
}

TEST(Parser, UnbalancedBraceIsError) {
  const Parsed p = parse("int f() { return 0;");
  EXPECT_FALSE(p.ok);
}

TEST(Parser, DirectivesAttachedToUnit) {
  const Parsed p = parse("#include <stdio.h>\n#include <pthread.h>\nint x;");
  ASSERT_TRUE(p.ok) << p.errors;
  EXPECT_EQ(p.context->unit().directives().size(), 2u);
}

// --- expression round-trips ------------------------------------------------
// Parse an expression inside a harness function, then emit it; the printed
// text (with minimal parentheses) must match expectations, which pins both
// the parser's precedence handling and the emitter's.

std::string roundTripExpr(const std::string& expr) {
  Parsed p = parse("int a, b, c, d; int *q; void f() { " + expr + "; }");
  EXPECT_TRUE(p.ok) << p.errors << " for " << expr;
  const auto* fn = p.context->unit().findFunction("f");
  if (fn == nullptr || fn->body() == nullptr || fn->body()->body().empty()) return "";
  const auto* stmt = fn->body()->body().front();
  if (stmt->kind() != ast::StmtKind::Expr) return "";
  codegen::CSourceEmitter emitter;
  return emitter.emitExpr(*static_cast<const ast::ExprStmt*>(stmt)->expr());
}

struct ExprCase {
  const char* input;
  const char* expected;
};

class ExprRoundTrip : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ExprRoundTrip, PreservesStructure) {
  EXPECT_EQ(roundTripExpr(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Precedence, ExprRoundTrip,
    ::testing::Values(
        ExprCase{"a + b * c", "a + b * c"},
        ExprCase{"(a + b) * c", "(a + b) * c"},
        ExprCase{"a - b - c", "a - b - c"},
        ExprCase{"a - (b - c)", "a - (b - c)"},
        ExprCase{"a = b = c", "a = b = c"},
        ExprCase{"a * b + c * d", "a * b + c * d"},
        ExprCase{"a << b + c", "a << b + c"},
        ExprCase{"(a << b) + c", "(a << b) + c"},
        ExprCase{"a < b == c < d", "a < b == c < d"},
        ExprCase{"a & b | c ^ d", "a & b | c ^ d"},
        ExprCase{"a && b || c && d", "a && b || c && d"},
        ExprCase{"a ? b : c ? d : a", "a ? b : c ? d : a"},
        ExprCase{"(a ? b : c) ? d : a", "(a ? b : c) ? d : a"},
        ExprCase{"-a * b", "-a * b"},
        ExprCase{"-(a * b)", "-(a * b)"},
        ExprCase{"!a && ~b", "!a && ~b"},
        ExprCase{"*q + 1", "*q + 1"},
        ExprCase{"a++ + ++b", "a++ + ++b"},
        ExprCase{"a[b + 1]", "a[b + 1]"},
        ExprCase{"f(a, b + c)", "f(a, b + c)"},
        ExprCase{"a += b * 2", "a += b * 2"},
        ExprCase{"(int)a + b", "(int)a + b"},
        ExprCase{"(int *)q", "(int*)q"},
        ExprCase{"sizeof(int) * 3", "sizeof(int) * 3"},
        ExprCase{"a, b", "a, b"},
        ExprCase{"&a", "&a"},
        ExprCase{"*&a", "*&a"}));

TEST(Parser, CastVsParenthesizedExpr) {
  // (a) + b must parse as addition, not a cast of +b by an unknown type.
  EXPECT_EQ(roundTripExpr("(a) + b"), "a + b");
}

TEST(Parser, SizeofExpression) {
  EXPECT_EQ(roundTripExpr("sizeof a"), "sizeof a");
}

TEST(Parser, StringConcatenation) {
  const Parsed p = parse(R"(void f() { g("ab" "cd"); })");
  EXPECT_TRUE(p.ok) << p.errors;
}

TEST(Parser, PthreadCreateCallShape) {
  const Parsed p = parse(R"(
int main() {
    pthread_t t;
    pthread_create(&t, NULL, f, (void *)0);
    return 0;
}
)");
  EXPECT_TRUE(p.ok) << p.errors;
}

}  // namespace
}  // namespace hsm::parse

// Tests for the single-core multithread baseline: serialization through the
// core, shared process memory, mutexes, barriers, context-switch overhead.
#include <gtest/gtest.h>

#include <cstring>

#include "threadrt/baseline.h"

namespace hsm::threadrt {
namespace {

using sim::SimTask;
using sim::Tick;

SimTask computeThread(ThreadContext& ctx, std::uint64_t cycles) {
  co_await ctx.compute(cycles);
}

TEST(SingleCoreRuntime, WorkSerializesAcrossThreads) {
  // N threads each computing C cycles on one core take ~N*C, not C.
  sim::SccConfig config;
  SingleCoreRuntime rt(config);
  rt.launch(8, [&](ThreadContext& ctx) { return computeThread(ctx, 10000); });
  const Tick t = rt.run();
  const Tick serial = config.coreClock().cycles(8 * 10000);
  EXPECT_GE(t, serial);
  EXPECT_LT(t, serial + serial / 5);  // only scheduling overhead on top
}

TEST(SingleCoreRuntime, SingleThreadNoSwitchOverhead) {
  sim::SccConfig config;
  SingleCoreRuntime rt(config);
  rt.launch(1, [&](ThreadContext& ctx) { return computeThread(ctx, 10000); });
  EXPECT_EQ(rt.run(), config.coreClock().cycles(10000));
}

TEST(SingleCoreRuntime, ContextSwitchOverheadGrowsWithRuntime) {
  sim::SccConfig config;
  config.scheduler_quantum_core_cycles = 1000;  // force many quanta
  config.context_switch_core_cycles = 100;
  SingleCoreRuntime rt(config);
  rt.launch(4, [&](ThreadContext& ctx) { return computeThread(ctx, 10000); });
  const Tick with_overhead = rt.run();
  const Tick pure = config.coreClock().cycles(4 * 10000);
  EXPECT_GT(with_overhead, pure + config.coreClock().cycles(30 * 100));
}

SimTask writerThread(ThreadContext& ctx, std::uint64_t addr) {
  const int value = 7 + ctx.tid();
  co_await ctx.memWrite(addr + static_cast<std::uint64_t>(ctx.tid()) * 4, &value, 4);
}

TEST(SingleCoreRuntime, ThreadsShareProcessMemory) {
  SingleCoreRuntime rt;
  rt.machine().reservePrivate(0, 1024);
  rt.launch(4, [&](ThreadContext& ctx) { return writerThread(ctx, 0); });
  rt.run();
  for (int tid = 0; tid < 4; ++tid) {
    int v = 0;
    std::memcpy(&v, rt.machine().privData(0, static_cast<std::uint64_t>(tid) * 4), 4);
    EXPECT_EQ(v, 7 + tid);
  }
}

SimTask mutexThread(ThreadContext& ctx, std::uint64_t addr) {
  for (int i = 0; i < 8; ++i) {
    co_await ctx.lockAcquire(0);
    long long v = 0;
    co_await ctx.memRead(addr, &v, sizeof(v));
    v += 1;
    co_await ctx.memWrite(addr, &v, sizeof(v));
    co_await ctx.lockRelease(0);
  }
}

TEST(SingleCoreRuntime, MutexProtectedCounterExact) {
  SingleCoreRuntime rt;
  rt.machine().reservePrivate(0, 64);
  std::memset(rt.machine().privData(0, 0), 0, 8);
  rt.launch(6, [&](ThreadContext& ctx) { return mutexThread(ctx, 0); });
  rt.run();
  long long v = 0;
  std::memcpy(&v, rt.machine().privData(0, 0), 8);
  EXPECT_EQ(v, 48);
}

SimTask barrierThread(ThreadContext& ctx, std::vector<sim::Tick>* after) {
  co_await ctx.compute(static_cast<std::uint64_t>(ctx.tid() + 1) * 500);
  co_await ctx.barrier();
  (*after)[static_cast<std::size_t>(ctx.tid())] = 1;
}

TEST(SingleCoreRuntime, BarrierAcrossLogicalThreads) {
  SingleCoreRuntime rt;
  std::vector<sim::Tick> after(4, 0);
  rt.launch(4, [&](ThreadContext& ctx) { return barrierThread(ctx, &after); });
  rt.run();
  for (const sim::Tick t : after) EXPECT_EQ(t, 1u);
}

// A free coroutine taking `repeats` by value: a capturing lambda coroutine
// would keep referencing the lambda object after the temporary std::function
// wrapping it is destroyed (stack-use-after-scope under ASan).
SimTask repeatedRead(ThreadContext& ctx, int repeats) {
  std::vector<std::uint8_t> buf(4096);
  for (int r = 0; r < repeats; ++r) {
    co_await ctx.memRead(0, buf.data(), buf.size());
  }
}

TEST(SingleCoreRuntime, CachedMemoryFasterThanColdMemory) {
  // Second pass over the same buffer should be far cheaper (cache hits).
  sim::SccConfig config;
  auto pass = [&](int repeats) {
    SingleCoreRuntime rt(config);
    rt.machine().reservePrivate(0, 1 << 16);
    rt.launch(1, [&](ThreadContext& ctx) { return repeatedRead(ctx, repeats); });
    return rt.run();
  };
  const Tick once = pass(1);
  const Tick twice = pass(2);
  // The second pass adds much less than the first cost.
  EXPECT_LT(twice - once, once / 2);
}

}  // namespace
}  // namespace hsm::threadrt

// Tests for Stage 4 (Algorithm 3) and the frequency-aware ablation variant,
// including property-style sweeps over synthetic variable populations.
#include <gtest/gtest.h>

#include <random>

#include "partition/memory_plan.h"

namespace hsm::partition {
namespace {

analysis::VariableInfo makeVar(const std::string& name, std::size_t bytes,
                               double accesses) {
  analysis::VariableInfo v;
  v.name = name;
  v.byte_size = bytes;
  v.weighted_reads = accesses / 2;
  v.weighted_writes = accesses - accesses / 2;
  return v;
}

std::vector<const analysis::VariableInfo*> views(
    const std::vector<analysis::VariableInfo>& vars) {
  std::vector<const analysis::VariableInfo*> out;
  for (const auto& v : vars) out.push_back(&v);
  return out;
}

TEST(SizeAscendingPlanner, EverythingFitsGoesOnChip) {
  const std::vector<analysis::VariableInfo> vars = {
      makeVar("a", 100, 10), makeVar("b", 200, 5), makeVar("c", 50, 1)};
  HsmMemorySpec spec;
  spec.onchip_capacity_bytes = 1024;
  const MemoryPlan plan = SizeAscendingPlanner{}.plan(views(vars), spec);
  EXPECT_TRUE(plan.everything_fits_onchip);
  for (const PlacementDecision& d : plan.decisions) {
    EXPECT_EQ(d.placement, Placement::OnChip) << d.variable->name;
  }
  EXPECT_EQ(plan.onchip_used, 350u);
  EXPECT_EQ(plan.offchip_used, 0u);
}

TEST(SizeAscendingPlanner, DeclarationOrderKeptWhenEverythingFits) {
  const std::vector<analysis::VariableInfo> vars = {
      makeVar("big", 300, 1), makeVar("small", 10, 1)};
  HsmMemorySpec spec;
  spec.onchip_capacity_bytes = 1024;
  const MemoryPlan plan = SizeAscendingPlanner{}.plan(views(vars), spec);
  EXPECT_EQ(plan.decisions[0].variable->name, "big");
}

TEST(SizeAscendingPlanner, SortsAscendingWhenConstrained) {
  // Algorithm 3 line 14: ascending size fill.
  const std::vector<analysis::VariableInfo> vars = {
      makeVar("big", 600, 100), makeVar("mid", 300, 100), makeVar("small", 100, 100)};
  HsmMemorySpec spec;
  spec.onchip_capacity_bytes = 450;
  const MemoryPlan plan = SizeAscendingPlanner{}.plan(views(vars), spec);
  EXPECT_FALSE(plan.everything_fits_onchip);
  EXPECT_EQ(plan.placementOf("small"), Placement::OnChip);
  EXPECT_EQ(plan.placementOf("mid"), Placement::OnChip);
  EXPECT_EQ(plan.placementOf("big"), Placement::OffChip);
  EXPECT_EQ(plan.onchip_used, 400u);
  EXPECT_EQ(plan.offchip_used, 600u);
}

TEST(SizeAscendingPlanner, SkipMiddleVariableThatDoesNotFit) {
  // Greedy: after small fills most of the space, mid spills but tiny still fits.
  const std::vector<analysis::VariableInfo> vars = {
      makeVar("small", 100, 1), makeVar("mid", 120, 1), makeVar("tiny", 20, 1)};
  HsmMemorySpec spec;
  spec.onchip_capacity_bytes = 130;
  const MemoryPlan plan = SizeAscendingPlanner{}.plan(views(vars), spec);
  EXPECT_EQ(plan.placementOf("tiny"), Placement::OnChip);
  EXPECT_EQ(plan.placementOf("small"), Placement::OnChip);
  EXPECT_EQ(plan.placementOf("mid"), Placement::OffChip);
}

TEST(SizeAscendingPlanner, ZeroCapacityForcesAllOffChip) {
  const std::vector<analysis::VariableInfo> vars = {makeVar("a", 8, 1)};
  HsmMemorySpec spec;
  spec.onchip_capacity_bytes = 0;
  const MemoryPlan plan = SizeAscendingPlanner{}.plan(views(vars), spec);
  EXPECT_EQ(plan.placementOf("a"), Placement::OffChip);
}

TEST(SizeAscendingPlanner, OffsetsAreContiguousPerRegion) {
  const std::vector<analysis::VariableInfo> vars = {
      makeVar("a", 10, 1), makeVar("b", 20, 1), makeVar("c", 1000, 1),
      makeVar("d", 2000, 1)};
  HsmMemorySpec spec;
  spec.onchip_capacity_bytes = 40;
  const MemoryPlan plan = SizeAscendingPlanner{}.plan(views(vars), spec);
  std::size_t onchip_cursor = 0;
  std::size_t offchip_cursor = 0;
  for (const PlacementDecision& d : plan.decisions) {
    if (d.placement == Placement::OnChip) {
      EXPECT_EQ(d.offset, onchip_cursor);
      onchip_cursor += d.bytes;
    } else {
      EXPECT_EQ(d.offset, offchip_cursor);
      offchip_cursor += d.bytes;
    }
  }
}

TEST(FrequencyAwarePlanner, PrefersHotData) {
  // A hot large-ish array vs a cold small one; frequency-aware keeps the
  // hot one on-chip even though size-ascending would pick the cold one.
  const std::vector<analysis::VariableInfo> vars = {
      makeVar("hot", 400, 100000), makeVar("cold", 100, 2)};
  HsmMemorySpec spec;
  spec.onchip_capacity_bytes = 420;
  const MemoryPlan size_plan = SizeAscendingPlanner{}.plan(views(vars), spec);
  const MemoryPlan freq_plan = FrequencyAwarePlanner{}.plan(views(vars), spec);
  EXPECT_EQ(size_plan.placementOf("cold"), Placement::OnChip);
  EXPECT_EQ(size_plan.placementOf("hot"), Placement::OffChip);
  EXPECT_EQ(freq_plan.placementOf("hot"), Placement::OnChip);
  EXPECT_GE(freq_plan.onchipAccessFraction(), size_plan.onchipAccessFraction());
}

TEST(MemoryPlan, AccessFractionBounds) {
  const std::vector<analysis::VariableInfo> vars = {makeVar("a", 8, 10),
                                                    makeVar("b", 8, 30)};
  HsmMemorySpec spec;
  const MemoryPlan plan = SizeAscendingPlanner{}.plan(views(vars), spec);
  EXPECT_DOUBLE_EQ(plan.onchipAccessFraction(), 1.0);
}

TEST(MemoryPlan, FormatMentionsEveryVariable) {
  const std::vector<analysis::VariableInfo> vars = {makeVar("alpha", 8, 1),
                                                    makeVar("beta", 8, 1)};
  HsmMemorySpec spec;
  const MemoryPlan plan = SizeAscendingPlanner{}.plan(views(vars), spec);
  const std::string text = plan.format();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
}

// --- property sweeps ---------------------------------------------------------

class PlannerPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PlannerPropertyTest, InvariantsHoldOnRandomPopulations) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> count_dist(1, 40);
  std::uniform_int_distribution<int> size_dist(1, 4096);
  std::uniform_real_distribution<double> access_dist(0, 100000);

  std::vector<analysis::VariableInfo> vars;
  const int n = count_dist(rng);
  for (int i = 0; i < n; ++i) {
    vars.push_back(makeVar("v" + std::to_string(i),
                           static_cast<std::size_t>(size_dist(rng)),
                           access_dist(rng)));
  }
  HsmMemorySpec spec;
  spec.onchip_capacity_bytes = static_cast<std::size_t>(size_dist(rng)) * 2;

  for (const bool freq : {false, true}) {
    const MemoryPlan plan = freq ? FrequencyAwarePlanner{}.plan(views(vars), spec)
                                 : SizeAscendingPlanner{}.plan(views(vars), spec);
    // 1. Every variable is placed exactly once.
    ASSERT_EQ(plan.decisions.size(), vars.size());
    // 2. The on-chip capacity is never exceeded.
    EXPECT_LE(plan.onchip_used, spec.onchip_capacity_bytes);
    // 3. Byte accounting is conserved.
    std::size_t total = 0;
    for (const auto& v : vars) total += v.byte_size;
    EXPECT_EQ(plan.onchip_used + plan.offchip_used, total);
    // 4. Any variable that would still fit in the remaining space must be
    //    on-chip if it is smaller than every off-chip variable (greedy
    //    ascending order means no smaller variable was skipped).
    const std::size_t remaining = spec.onchip_capacity_bytes - plan.onchip_used;
    if (!freq) {
      for (const PlacementDecision& d : plan.decisions) {
        if (d.placement == Placement::OffChip) EXPECT_GT(d.bytes, remaining);
      }
    }
    // 5. Access fraction is a valid fraction.
    EXPECT_GE(plan.onchipAccessFraction(), 0.0);
    EXPECT_LE(plan.onchipAccessFraction(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PlannerPropertyTest,
                         ::testing::Range(0u, 20u));

TEST(PlannerComparison, FrequencyAwareNeverWorseOnAccessFraction) {
  for (unsigned seed = 100; seed < 112; ++seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> size_dist(1, 2048);
    std::uniform_real_distribution<double> access_dist(0, 10000);
    std::vector<analysis::VariableInfo> vars;
    for (int i = 0; i < 24; ++i) {
      vars.push_back(makeVar("v" + std::to_string(i),
                             static_cast<std::size_t>(size_dist(rng)),
                             access_dist(rng)));
    }
    HsmMemorySpec spec;
    spec.onchip_capacity_bytes = 4096;
    const double size_fraction =
        SizeAscendingPlanner{}.plan(views(vars), spec).onchipAccessFraction();
    const double freq_fraction =
        FrequencyAwarePlanner{}.plan(views(vars), spec).onchipAccessFraction();
    // Density-greedy may not dominate in contrived knapsack corners, but on
    // random populations it should not be significantly worse.
    EXPECT_GE(freq_fraction, size_fraction * 0.9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hsm::partition

// Tests for the SCC machine model: clocks, mesh topology (parameterized hop
// sweeps), UE spreading, caches, the three memory paths (functional and
// timing), barrier, and test-and-set locks.
#include <gtest/gtest.h>

#include <cstring>

#include "sim/machine.h"

namespace hsm::sim {
namespace {

TEST(Clock, PeriodsMatchTable61) {
  const SccConfig config;
  EXPECT_EQ(config.coreClock().period(), 1250u);   // 800 MHz
  EXPECT_EQ(config.meshClock().period(), 625u);    // 1600 MHz
  EXPECT_EQ(config.dramClock().period(), 938u);    // 1066 MHz
  EXPECT_EQ(config.coreClock().cycles(4), 5000u);
}

TEST(Config, SccDefaultsMatchPaper) {
  const SccConfig config;
  EXPECT_EQ(config.num_cores, 48u);
  EXPECT_EQ(config.numTiles(), 24u);
  EXPECT_EQ(config.mpb_bytes_per_core, 8u * 1024u);
  EXPECT_EQ(config.mpbTotalBytes(), 384u * 1024u);
  EXPECT_EQ(config.num_mem_controllers, 4u);
}

TEST(Config, Table61Rendering) {
  const SccConfig config;
  const std::string table = config.formatTable61(32, 32);
  EXPECT_NE(table.find("800 MHz"), std::string::npos);
  EXPECT_NE(table.find("1600 MHz"), std::string::npos);
  EXPECT_NE(table.find("1066 MHz"), std::string::npos);
  EXPECT_NE(table.find("32 cores"), std::string::npos);
  EXPECT_NE(table.find("32 threads"), std::string::npos);
}

// --- mesh topology -----------------------------------------------------------

struct HopCase {
  std::uint32_t core_a;
  std::uint32_t core_b;
  std::uint32_t hops;
};

class MeshHops : public ::testing::TestWithParam<HopCase> {};

TEST_P(MeshHops, ManhattanDistance) {
  const SccConfig config;
  const MeshTopology mesh(config);
  EXPECT_EQ(mesh.hopsBetweenCores(GetParam().core_a, GetParam().core_b),
            GetParam().hops);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, MeshHops,
    ::testing::Values(HopCase{0, 1, 0},    // same tile
                      HopCase{0, 2, 1},    // neighbour tile
                      HopCase{0, 10, 5},   // across the row
                      HopCase{0, 12, 1},   // one row up
                      HopCase{0, 47, 8},   // opposite corner: 5 + 3
                      HopCase{1, 3, 1}, HopCase{46, 47, 0}));

TEST(MeshTopology, TileGeometry) {
  const SccConfig config;
  const MeshTopology mesh(config);
  EXPECT_EQ(mesh.tileOfCore(0), 0u);
  EXPECT_EQ(mesh.tileOfCore(1), 0u);
  EXPECT_EQ(mesh.tileOfCore(2), 1u);
  EXPECT_EQ(mesh.tileOfCore(47), 23u);
  EXPECT_EQ(mesh.coordOfTile(0), (TileCoord{0, 0}));
  EXPECT_EQ(mesh.coordOfTile(5), (TileCoord{5, 0}));
  EXPECT_EQ(mesh.coordOfTile(23), (TileCoord{5, 3}));
}

TEST(MeshTopology, ControllersPartitionQuadrants) {
  const SccConfig config;
  const MeshTopology mesh(config);
  EXPECT_EQ(mesh.controllerOfCore(0), 0u);    // (0,0) southwest
  EXPECT_EQ(mesh.controllerOfCore(10), 1u);   // (5,0) southeast
  EXPECT_EQ(mesh.controllerOfCore(36), 2u);   // (0,3) northwest
  EXPECT_EQ(mesh.controllerOfCore(46), 3u);   // (5,3) northeast
}

TEST(MeshTopology, UeSpreadBalancesControllers) {
  const SccConfig config;
  const MeshTopology mesh(config);
  ASSERT_EQ(mesh.numControllers(), 4u);
  for (const int ues : {4, 8, 16, 32, 48}) {
    int per_mc[4] = {0, 0, 0, 0};
    for (int ue = 0; ue < ues; ++ue) {
      const std::uint32_t core = mesh.coreForUe(ue, ues);
      ASSERT_LT(core, config.num_cores);
      const std::uint32_t mc = mesh.controllerForUe(ue, ues);
      ASSERT_EQ(mc, mesh.controllerOfCore(core));
      ++per_mc[mc];
    }
    for (int mc = 0; mc < 4; ++mc) {
      EXPECT_EQ(per_mc[mc], ues / 4) << "ues=" << ues << " mc=" << mc;
    }
  }
}

TEST(MeshTopology, UeSpreadAssignsDistinctCores) {
  const SccConfig config;
  const MeshTopology mesh(config);
  std::set<std::uint32_t> cores;
  for (int ue = 0; ue < 48; ++ue) cores.insert(mesh.coreForUe(ue, 48));
  EXPECT_EQ(cores.size(), 48u);
}

// --- cache model ---------------------------------------------------------------

TEST(Cache, MissThenHit) {
  Cache cache(1024, 32);
  EXPECT_FALSE(cache.access(0, false).hit);
  EXPECT_TRUE(cache.access(0, false).hit);
  EXPECT_TRUE(cache.access(31, false).hit);   // same line
  EXPECT_FALSE(cache.access(32, false).hit);  // next line
}

TEST(Cache, ConflictEviction) {
  Cache cache(1024, 32);  // 32 lines direct mapped
  EXPECT_FALSE(cache.access(0, false).hit);
  EXPECT_FALSE(cache.access(1024, false).hit);  // same index, different tag
  EXPECT_FALSE(cache.access(0, false).hit);     // evicted
}

TEST(Cache, DirtyVictimSignalsWriteback) {
  Cache cache(1024, 32);
  (void)cache.access(0, true);  // dirty line
  const Cache::AccessResult r = cache.access(1024, false);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.writeback);
}

TEST(Cache, CleanVictimNoWriteback) {
  Cache cache(1024, 32);
  (void)cache.access(0, false);
  EXPECT_FALSE(cache.access(1024, false).writeback);
}

TEST(Cache, HitMissCounters) {
  Cache cache(1024, 32);
  (void)cache.access(0, false);
  (void)cache.access(0, false);
  (void)cache.access(64, false);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, FlushInvalidatesEverything) {
  Cache cache(1024, 32);
  (void)cache.access(0, true);
  cache.flush();
  EXPECT_FALSE(cache.access(0, false).hit);
}

// --- machine functional paths ---------------------------------------------------

SimTask privRoundTrip(CoreContext& ctx, bool* ok) {
  const std::uint32_t value = 0xDEADBEEF;
  co_await ctx.privWrite(64, &value, sizeof(value));
  std::uint32_t readback = 0;
  co_await ctx.privRead(64, &readback, sizeof(readback));
  *ok = readback == value;
}

TEST(Machine, PrivateMemoryFunctional) {
  SccMachine machine;
  bool ok = false;
  machine.launch(LaunchSpec(1, [&](CoreContext& ctx) { return privRoundTrip(ctx, &ok); }));
  machine.run();
  EXPECT_TRUE(ok);
}

SimTask shmRoundTrip(CoreContext& ctx, std::uint64_t offset, bool* ok) {
  if (ctx.ue() == 0) {
    const double value = 3.25;
    co_await ctx.shmWrite(offset, &value, sizeof(value));
  }
  co_await ctx.barrier();
  double readback = 0;
  co_await ctx.shmRead(offset, &readback, sizeof(readback));
  *ok = *ok && readback == 3.25;
}

TEST(Machine, SharedMemoryVisibleToAllCores) {
  SccMachine machine;
  const std::uint64_t offset = machine.shmalloc(64);
  bool ok = true;
  machine.launch(LaunchSpec(4, [&](CoreContext& ctx) { return shmRoundTrip(ctx, offset, &ok); }));
  machine.run();
  EXPECT_TRUE(ok);
}

SimTask mpbExchange(CoreContext& ctx, std::uint64_t off, std::vector<int>* seen) {
  const int mine = ctx.ue() * 11 + 1;
  co_await ctx.mpbWrite(ctx.ue(), off, &mine, sizeof(mine));
  co_await ctx.barrier();
  const int peer = (ctx.ue() + 1) % ctx.numUes();
  int got = 0;
  co_await ctx.mpbRead(peer, off, &got, sizeof(got));
  (*seen)[static_cast<std::size_t>(ctx.ue())] = got;
}

TEST(Machine, MpbRemoteReadSeesOwnerData) {
  SccMachine machine;
  const std::uint64_t off = machine.mpbMalloc(0, 16);
  for (int ue = 1; ue < 4; ++ue) ASSERT_EQ(machine.mpbMalloc(ue, 16), off);
  std::vector<int> seen(4, 0);
  machine.launch(LaunchSpec(4, [&](CoreContext& ctx) { return mpbExchange(ctx, off, &seen); }));
  machine.run();
  for (int ue = 0; ue < 4; ++ue) {
    EXPECT_EQ(seen[static_cast<std::size_t>(ue)], ((ue + 1) % 4) * 11 + 1);
  }
}

TEST(Machine, ShmallocSequentialAndAligned) {
  SccMachine machine;
  const std::uint64_t a = machine.shmalloc(10);
  const std::uint64_t b = machine.shmalloc(4);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_GE(b, a + 10);
}

TEST(Machine, MpbMallocExhaustionThrows) {
  SccMachine machine;
  (void)machine.mpbMalloc(0, 8 * 1024);
  EXPECT_THROW((void)machine.mpbMalloc(0, 1), std::bad_alloc);
}

// --- timing sanity ---------------------------------------------------------------

SimTask timedCompute(CoreContext& ctx) { co_await ctx.compute(100); }

TEST(Machine, ComputeChargesCoreCycles) {
  SccMachine machine;
  machine.launch(LaunchSpec(1, [&](CoreContext& ctx) { return timedCompute(ctx); }));
  const Tick t = machine.run();
  EXPECT_EQ(t, 100u * 1250u);
}

SimTask oneShmRead(CoreContext& ctx, std::uint64_t off) {
  std::uint64_t v = 0;
  co_await ctx.shmRead(off, &v, 8);
}

TEST(Machine, UncachedWordCostsMoreThanCompute) {
  SccMachine machine;
  const std::uint64_t off = machine.shmalloc(8);
  machine.launch(LaunchSpec(1, [&](CoreContext& ctx) { return oneShmRead(ctx, off); }));
  const Tick t = machine.run();
  // One word: issue overhead + mesh round trip + controller service.
  EXPECT_GT(t, 20000u);   // > 20 ns
  EXPECT_LT(t, 200000u);  // < 200 ns
}

SimTask bulkVsWords(CoreContext& ctx, std::uint64_t off, Tick* bulk_done) {
  std::vector<std::uint8_t> buf(4096);
  const Tick start = ctx.now();
  co_await ctx.shmReadBulk(off, buf.data(), buf.size());
  *bulk_done = ctx.now() - start;
}

SimTask wordsPath(CoreContext& ctx, std::uint64_t off, Tick* words_done) {
  std::vector<std::uint8_t> buf(4096);
  const Tick start = ctx.now();
  co_await ctx.shmRead(off, buf.data(), buf.size());
  *words_done = ctx.now() - start;
}

TEST(Machine, BulkTransferBeatsWordTransactions) {
  Tick bulk = 0;
  Tick words = 0;
  {
    SccMachine machine;
    const std::uint64_t off = machine.shmalloc(4096);
    machine.launch(LaunchSpec(1, [&](CoreContext& ctx) { return bulkVsWords(ctx, off, &bulk); }));
    machine.run();
  }
  {
    SccMachine machine;
    const std::uint64_t off = machine.shmalloc(4096);
    machine.launch(LaunchSpec(1, [&](CoreContext& ctx) { return wordsPath(ctx, off, &words); }));
    machine.run();
  }
  EXPECT_LT(bulk * 4, words) << "bulk should be >4x more efficient per byte";
}

SimTask mpbLocalVsShm(CoreContext& ctx, std::uint64_t mpb_off, std::uint64_t shm_off,
                      Tick* mpb_time, Tick* shm_time) {
  std::uint64_t v = 0;
  Tick start = ctx.now();
  co_await ctx.mpbRead(ctx.ue(), mpb_off, &v, 8);
  *mpb_time = ctx.now() - start;
  start = ctx.now();
  co_await ctx.shmRead(shm_off, &v, 8);
  *shm_time = ctx.now() - start;
}

TEST(Machine, MpbAccessFasterThanUncachedDram) {
  SccMachine machine;
  const std::uint64_t mpb_off = machine.mpbMalloc(0, 8);
  const std::uint64_t shm_off = machine.shmalloc(8);
  Tick mpb_time = 0;
  Tick shm_time = 0;
  machine.launch(LaunchSpec(1, [&](CoreContext& ctx) {
    return mpbLocalVsShm(ctx, mpb_off, shm_off, &mpb_time, &shm_time);
  }));
  machine.run();
  EXPECT_LT(mpb_time, shm_time);
}

// --- synchronization ---------------------------------------------------------------

SimTask unevenBarrier(CoreContext& ctx, std::vector<Tick>* after) {
  co_await ctx.compute(static_cast<std::uint64_t>(ctx.ue() + 1) * 1000);
  co_await ctx.barrier();
  (*after)[static_cast<std::size_t>(ctx.ue())] = ctx.now();
}

TEST(Machine, BarrierReleasesEveryoneTogether) {
  SccMachine machine;
  std::vector<Tick> after(6, 0);
  machine.launch(LaunchSpec(6, [&](CoreContext& ctx) { return unevenBarrier(ctx, &after); }));
  machine.run();
  for (std::size_t i = 1; i < after.size(); ++i) EXPECT_EQ(after[i], after[0]);
  // Release is after the slowest arrival.
  EXPECT_GE(after[0], 6u * 1000u * 1250u);
  EXPECT_EQ(machine.barrier().episodes(), 1u);
}

SimTask doubleBarrier(CoreContext& ctx, int* count) {
  co_await ctx.barrier();
  if (ctx.ue() == 0) ++*count;
  co_await ctx.barrier();
  if (ctx.ue() == 0) ++*count;
}

TEST(Machine, BarrierReusableAcrossEpisodes) {
  SccMachine machine;
  int count = 0;
  machine.launch(LaunchSpec(8, [&](CoreContext& ctx) { return doubleBarrier(ctx, &count); }));
  machine.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(machine.barrier().episodes(), 2u);
}

SimTask criticalSection(CoreContext& ctx, int* counter, bool* race) {
  for (int i = 0; i < 10; ++i) {
    co_await ctx.lockAcquire(0);
    const int seen = *counter;
    co_await ctx.compute(50);
    if (*counter != seen) *race = true;  // someone else got in
    *counter = seen + 1;
    co_await ctx.lockRelease(0);
  }
}

TEST(Machine, TasLockProvidesMutualExclusion) {
  SccMachine machine;
  int counter = 0;
  bool race = false;
  machine.launch(LaunchSpec(8, [&](CoreContext& ctx) {
    return criticalSection(ctx, &counter, &race);
  }));
  machine.run();
  EXPECT_EQ(counter, 80);
  EXPECT_FALSE(race);
  EXPECT_GT(machine.lock(0).contentionEvents(), 0u);
}

TEST(Machine, SingleUeBarrierDoesNotDeadlock) {
  SccMachine machine;
  int count = 0;
  machine.launch(LaunchSpec(1, [&](CoreContext& ctx) { return doubleBarrier(ctx, &count); }));
  machine.run();
  EXPECT_EQ(count, 2);
}

// --- determinism across the whole machine ----------------------------------------

SimTask mixedWork(CoreContext& ctx, std::uint64_t shm, std::uint64_t mpb) {
  std::uint64_t v = static_cast<std::uint64_t>(ctx.ue());
  for (int i = 0; i < 5; ++i) {
    co_await ctx.compute(100 + static_cast<std::uint64_t>(ctx.ue()) * 7);
    co_await ctx.shmWrite(shm + static_cast<std::uint64_t>(ctx.ue()) * 8, &v, 8);
    co_await ctx.mpbWrite(ctx.ue(), mpb, &v, 8);
    co_await ctx.barrier();
  }
}

TEST(Machine, FullyDeterministic) {
  auto run_once = [] {
    SccMachine machine;
    const std::uint64_t shm = machine.shmalloc(1024);
    std::uint64_t mpb = 0;
    for (int ue = 0; ue < 12; ++ue) mpb = machine.mpbMalloc(ue, 8);
    machine.launch(LaunchSpec(12, [&](CoreContext& ctx) { return mixedWork(ctx, shm, mpb); }));
    return machine.run();
  };
  const Tick t1 = run_once();
  const Tick t2 = run_once();
  EXPECT_EQ(t1, t2);
  EXPECT_GT(t1, 0u);
}

// --- coalescing equivalence -------------------------------------------------
// The hard bar for the coalesced word path (config.shm_coalescing): identical
// makespan AND identical per-task completion Ticks versus the per-word legacy
// path, while processing fewer engine events.

struct SimResult {
  Tick makespan = 0;
  std::vector<Tick> completions;
  std::uint64_t events = 0;
  std::uint64_t shm_words = 0;
  std::uint64_t shm_word_events = 0;
  std::vector<std::uint64_t> data;  ///< workload output (functional check)
};

SimTask streamKernel(CoreContext& ctx, std::uint64_t base, int blocks,
                     std::size_t block_bytes) {
  std::vector<std::uint8_t> buf(block_bytes);
  for (int i = 0; i < blocks; ++i) {
    co_await ctx.shmRead(base + static_cast<std::uint64_t>(i) * block_bytes, buf.data(),
                         block_bytes);
  }
}

SimResult runStream(bool coalescing, int ues, bool per_controller = true) {
  SccConfig cfg;
  cfg.shm_coalescing = coalescing;
  cfg.per_resource_horizon = per_controller;
  SccMachine machine(cfg);
  const std::uint64_t base = machine.shmalloc(16 * 4096);
  machine.launch(LaunchSpec(ues, [&](CoreContext& ctx) { return streamKernel(ctx, base, 16, 4096); }));
  SimResult r;
  r.makespan = machine.run();
  for (int ue = 0; ue < ues; ++ue) {
    r.completions.push_back(machine.engine().completionTime(static_cast<std::size_t>(ue)));
  }
  r.events = machine.engine().eventsProcessed();
  r.shm_words = machine.shmWordsSimulated();
  r.shm_word_events = machine.shmWordEvents();
  return r;
}

TEST(Machine, CoalescingBitIdenticalSingleUe) {
  const SimResult on = runStream(true, 1);
  const SimResult off = runStream(false, 1);
  EXPECT_EQ(on.makespan, off.makespan);
  EXPECT_EQ(on.completions, off.completions);
  EXPECT_EQ(on.shm_words, off.shm_words);
  // >80% fewer engine events on an uncontended word stream.
  EXPECT_LT(on.events * 5, off.events);
}

TEST(Machine, CoalescingBitIdenticalConcurrentStreams) {
  const SimResult on = runStream(true, 8);
  const SimResult off = runStream(false, 8);
  EXPECT_EQ(on.makespan, off.makespan);
  EXPECT_EQ(on.completions, off.completions);
  EXPECT_LE(on.events, off.events);
}

/// Deliberately nasty contended case: skewed compute phases, word-granular
/// block IO, a shared lock-protected accumulator, and barriers — exercising
/// controller contention windows, equal-tick tie-breaking, lock grant order,
/// and barrier wake order under coalescing.
SimTask contendedKernel(CoreContext& ctx, std::uint64_t blocks_base,
                        std::uint64_t counter_off, std::vector<std::uint64_t>* out) {
  std::vector<std::uint8_t> buf(1024);
  const std::uint64_t mine = blocks_base + static_cast<std::uint64_t>(ctx.ue()) * 1024;
  for (int i = 0; i < 4; ++i) {
    co_await ctx.compute(1000 + static_cast<std::uint64_t>(ctx.ue() % 3) * 4000);
    co_await ctx.shmRead(mine, buf.data(), buf.size());
    co_await ctx.shmWrite(mine, buf.data(), buf.size());
    co_await ctx.lockAcquire(0);
    std::uint64_t counter = 0;
    co_await ctx.shmRead(counter_off, &counter, sizeof(counter));
    ++counter;
    co_await ctx.shmWrite(counter_off, &counter, sizeof(counter));
    co_await ctx.lockRelease(0);
    co_await ctx.barrier();
  }
  std::uint64_t final_counter = 0;
  co_await ctx.shmRead(counter_off, &final_counter, sizeof(final_counter));
  (*out)[static_cast<std::size_t>(ctx.ue())] = final_counter;
}

SimResult runContended(bool coalescing, int ues, bool per_controller = true) {
  SccConfig cfg;
  cfg.shm_coalescing = coalescing;
  cfg.per_resource_horizon = per_controller;
  SccMachine machine(cfg);
  const std::uint64_t blocks = machine.shmalloc(static_cast<std::size_t>(ues) * 1024);
  const std::uint64_t counter = machine.shmalloc(8);
  SimResult r;
  r.data.resize(static_cast<std::size_t>(ues), 0);
  machine.launch(LaunchSpec(ues, [&](CoreContext& ctx) {
    return contendedKernel(ctx, blocks, counter, &r.data);
  }));
  r.makespan = machine.run();
  for (int ue = 0; ue < ues; ++ue) {
    r.completions.push_back(machine.engine().completionTime(static_cast<std::size_t>(ue)));
  }
  r.events = machine.engine().eventsProcessed();
  r.shm_words = machine.shmWordsSimulated();
  r.shm_word_events = machine.shmWordEvents();
  return r;
}

TEST(Machine, CoalescingBitIdenticalContendedMultiCore) {
  const SimResult on = runContended(true, 8);
  const SimResult off = runContended(false, 8);
  EXPECT_EQ(on.makespan, off.makespan);
  EXPECT_EQ(on.completions, off.completions);
  EXPECT_EQ(on.data, off.data);
  EXPECT_EQ(on.shm_words, off.shm_words);
  EXPECT_LE(on.events, off.events);
  // Functional: every UE saw the fully-incremented counter (4 rounds x 8 UEs,
  // with the final read after the last barrier).
  for (const std::uint64_t seen : off.data) EXPECT_EQ(seen, 32u);
}

// Full equivalence matrix on the contended lock+barrier kernel: coalescing
// off, global-horizon coalescing, and per-controller-horizon coalescing must
// all produce bit-identical Ticks and workload output; tighter horizons may
// only reduce the event count.
TEST(Machine, HorizonModesEquivalenceMatrixContended) {
  const SimResult off = runContended(false, 8);
  const SimResult global = runContended(true, 8, /*per_controller=*/false);
  const SimResult per_mc = runContended(true, 8, /*per_controller=*/true);
  for (const SimResult* r : {&global, &per_mc}) {
    EXPECT_EQ(r->makespan, off.makespan);
    EXPECT_EQ(r->completions, off.completions);
    EXPECT_EQ(r->data, off.data);
    EXPECT_EQ(r->shm_words, off.shm_words);
  }
  EXPECT_LE(per_mc.events, global.events);
  EXPECT_LE(global.events, off.events);
}

/// Compute phases skewed by UE followed by block IO: cores take turns at the
/// controllers instead of hammering in lockstep, so there is always pending
/// cross-controller traffic but only sparse same-controller traffic.
SimTask staggeredKernel(CoreContext& ctx, std::uint64_t base, int iterations) {
  std::vector<std::uint8_t> buf(4096);
  const std::uint64_t mine = base + static_cast<std::uint64_t>(ctx.ue()) * 4096;
  for (int i = 0; i < iterations; ++i) {
    co_await ctx.compute(50000 + static_cast<std::uint64_t>(ctx.ue()) * 50000);
    co_await ctx.shmRead(mine, buf.data(), buf.size());
    co_await ctx.shmWrite(mine, buf.data(), buf.size());
  }
}

SimResult runStaggered(bool per_controller) {
  SccConfig cfg;
  cfg.per_resource_horizon = per_controller;
  SccMachine machine(cfg);
  const std::uint64_t base = machine.shmalloc(8 * 4096);
  machine.launch(LaunchSpec(8, [&](CoreContext& ctx) { return staggeredKernel(ctx, base, 8); }));
  SimResult r;
  r.makespan = machine.run();
  for (int ue = 0; ue < 8; ++ue) {
    r.completions.push_back(machine.engine().completionTime(static_cast<std::size_t>(ue)));
  }
  r.events = machine.engine().eventsProcessed();
  r.shm_words = machine.shmWordsSimulated();
  r.shm_word_events = machine.shmWordEvents();
  return r;
}

// The tentpole claim: on a multi-controller contended mix (8 UEs spread
// across the four controllers, desynchronized by compute skew), the
// per-controller horizon keeps coalescing alive — pending traffic bound for
// *other* controllers no longer truncates a word run — while the global
// horizon degrades toward per-word events. Ticks stay bit-identical.
TEST(Machine, PerControllerHorizonOutCoalescesGlobalAcrossControllers) {
  const SimResult global = runStaggered(/*per_controller=*/false);
  const SimResult per_mc = runStaggered(/*per_controller=*/true);
  EXPECT_EQ(per_mc.makespan, global.makespan);
  EXPECT_EQ(per_mc.completions, global.completions);
  EXPECT_EQ(per_mc.shm_words, global.shm_words);
  EXPECT_LT(per_mc.shm_word_events * 2, global.shm_word_events)
      << "per-controller horizons should at least halve the word events that "
         "survive on the staggered multi-controller mix";
}

/// Reverse-staggered arrivals into a barrier, then a lock dogpile: all wakes
/// land on one release Tick and all lock requests are issued at that same
/// Tick, so the recorded orders pin down the engine's (time, task_id)
/// contract — wake order and lock-grant order must be ascending UE id,
/// independent of arrival order AND of the coalescing mode (coalescing
/// changes event insertion sequences, which must not leak into ordering).
SimTask wakeOrderKernel(CoreContext& ctx, std::uint64_t base,
                        std::vector<int>* wake_order, std::vector<int>* grant_order) {
  std::vector<std::uint8_t> buf(512);
  // Later UEs compute less, so UE 7 arrives first, UE 0 last.
  co_await ctx.compute(
      static_cast<std::uint64_t>(ctx.numUes() - ctx.ue()) * 5000);
  co_await ctx.shmRead(base + static_cast<std::uint64_t>(ctx.ue()) * 512, buf.data(),
                       buf.size());
  co_await ctx.barrier();
  wake_order->push_back(ctx.ue());
  co_await ctx.lockAcquire(0);
  grant_order->push_back(ctx.ue());
  co_await ctx.lockRelease(0);
}

std::pair<std::vector<int>, std::vector<int>> runWakeOrder(bool coalescing) {
  SccConfig cfg;
  cfg.shm_coalescing = coalescing;
  SccMachine machine(cfg);
  const std::uint64_t base = machine.shmalloc(8 * 512);
  std::vector<int> wake_order;
  std::vector<int> grant_order;
  machine.launch(LaunchSpec(8, [&](CoreContext& ctx) {
    return wakeOrderKernel(ctx, base, &wake_order, &grant_order);
  }));
  machine.run();
  return {wake_order, grant_order};
}

TEST(Machine, BarrierWakeAndLockGrantOrderFollowTaskIdInBothCoalescingModes) {
  const auto on = runWakeOrder(true);
  const auto off = runWakeOrder(false);
  const std::vector<int> ascending{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(on.first, ascending);
  EXPECT_EQ(off.first, ascending);
  EXPECT_EQ(on.second, off.second);
  EXPECT_EQ(on.second, ascending);
}

TEST(Machine, CoalescingStatsAccountAllWords) {
  const SimResult on = runStream(true, 1);
  // 16 blocks x 4096 bytes / 8-byte transactions.
  EXPECT_EQ(on.shm_words, 16u * 4096u / 8u);
  EXPECT_LE(on.shm_word_events, on.shm_words);
  const SimResult off = runStream(false, 1);
  EXPECT_EQ(off.shm_word_events, off.shm_words);
}

// --- MPB chunk coalescing ----------------------------------------------------
// The same hard bar as the shm word path, now for the chunk-granular MPB
// path: identical makespan, per-task completion Ticks, and workload output
// across mpb_coalescing on (per-resource horizon), on (global horizon), and
// off — while the coalesced runs process fewer engine events.

struct MpbResult {
  Tick makespan = 0;
  std::vector<Tick> completions;
  std::uint64_t events = 0;
  std::uint64_t chunks = 0;
  std::uint64_t chunk_events = 0;
  std::vector<std::uint8_t> data;
};

/// Contended multi-UE put/get: every UE hammers blocks into its right
/// neighbour's slice and reads its own back with no compute stagger, so the
/// port timelines see overlapping traffic and equal-Tick collisions.
SimTask mpbContendedKernel(CoreContext& ctx, std::uint64_t slot, int rounds,
                           std::size_t bytes, std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> buf(bytes, static_cast<std::uint8_t>(ctx.ue() + 1));
  const int right = (ctx.ue() + 1) % ctx.numUes();
  for (int r = 0; r < rounds; ++r) {
    co_await ctx.mpbWrite(right, slot, buf.data(), bytes);
    co_await ctx.barrier();
    co_await ctx.mpbRead(ctx.ue(), slot, buf.data(), bytes);
    co_await ctx.barrier();
  }
  (*out)[static_cast<std::size_t>(ctx.ue())] = buf[bytes - 1];
}

MpbResult runMpbContended(bool coalescing, bool per_resource, int ues) {
  SccConfig cfg;
  cfg.mpb_coalescing = coalescing;
  cfg.per_resource_horizon = per_resource;
  SccMachine machine(cfg);
  const std::uint64_t slot = machine.mpbMalloc(0, 1024);
  for (int ue = 1; ue < ues; ++ue) machine.mpbMalloc(ue, 1024);
  MpbResult r;
  r.data.resize(static_cast<std::size_t>(ues), 0);
  machine.launch(LaunchSpec(ues, [&](CoreContext& ctx) {
    return mpbContendedKernel(ctx, slot, 4, 1024, &r.data);
  }));
  r.makespan = machine.run();
  for (int ue = 0; ue < ues; ++ue) {
    r.completions.push_back(machine.engine().completionTime(static_cast<std::size_t>(ue)));
  }
  r.events = machine.engine().eventsProcessed();
  r.chunks = machine.mpbChunksSimulated();
  r.chunk_events = machine.mpbChunkEvents();
  return r;
}

TEST(Machine, MpbCoalescingBitIdenticalContendedPutGet) {
  const MpbResult off = runMpbContended(false, false, 6);
  const MpbResult global = runMpbContended(true, false, 6);
  const MpbResult per_res = runMpbContended(true, true, 6);
  for (const MpbResult* r : {&global, &per_res}) {
    EXPECT_EQ(r->makespan, off.makespan);
    EXPECT_EQ(r->completions, off.completions);
    EXPECT_EQ(r->data, off.data);
    EXPECT_EQ(r->chunks, off.chunks);
  }
  EXPECT_LE(per_res.events, global.events);
  EXPECT_LE(global.events, off.events);
  // With coalescing off every chunk is its own event.
  EXPECT_EQ(off.chunk_events, off.chunks);
  // Four rounds of ring shift: each UE ends up with the byte that started
  // four places to its left, value (ue - 4 mod 6) + 1.
  for (int ue = 0; ue < 6; ++ue) {
    EXPECT_EQ(off.data[static_cast<std::size_t>(ue)],
              static_cast<std::uint8_t>((ue + 2) % 6 + 1));
  }
}

/// Two independent writer→reader streams on different tiles, with declared
/// MpbScopes and deliberately overlapping timing: the compute gaps (400/570
/// core cycles) are shorter than a 32-chunk put, so while either writer
/// streams, the other pair almost always has a pending event in the queue.
SimTask portPairKernel(CoreContext& ctx, std::uint64_t slot, int rounds) {
  std::vector<std::uint8_t> buf(1024);
  if (ctx.ue() == 0 || ctx.ue() == 2) {  // writers
    const int reader = ctx.ue() + 1;
    const std::uint64_t cycles = 400 + static_cast<std::uint64_t>(ctx.ue()) * 85;
    for (int r = 0; r < rounds; ++r) {
      co_await ctx.compute(cycles);
      co_await ctx.mpbWrite(reader, slot, buf.data(), buf.size());
    }
  }
  co_await ctx.barrier();
}

MpbResult runPortPairs(bool per_resource) {
  SccConfig cfg;
  cfg.per_resource_horizon = per_resource;
  SccMachine machine(cfg);
  std::uint64_t slot = 0;
  for (int ue = 0; ue < 4; ++ue) slot = machine.mpbMalloc(ue, 1024);
  MpbResult r;
  machine.launch(LaunchSpec(4, [&](CoreContext& ctx) { return portPairKernel(ctx, slot, 16); }).withScope([](int ue, int) {
        // Writer ue touches only its reader's slice; readers touch their own.
        return std::vector<int>{(ue == 0 || ue == 2) ? ue + 1 : ue};
      }));
  r.makespan = machine.run();
  for (int ue = 0; ue < 4; ++ue) {
    r.completions.push_back(machine.engine().completionTime(static_cast<std::size_t>(ue)));
  }
  r.chunks = machine.mpbChunksSimulated();
  r.chunk_events = machine.mpbChunkEvents();
  return r;
}

// Port-horizon isolation: traffic bound for tile A's port must not truncate
// coalesced runs on tile B's port. Under the global horizon each writer's
// batch breaks at the other stream's next pending event; with per-resource
// horizons and disjoint declared scopes both streams coalesce fully. Ticks
// stay bit-identical.
TEST(Machine, PortHorizonIsolationAcrossTiles) {
  const MpbResult global = runPortPairs(false);
  const MpbResult per_res = runPortPairs(true);
  EXPECT_EQ(per_res.makespan, global.makespan);
  EXPECT_EQ(per_res.completions, global.completions);
  EXPECT_EQ(per_res.chunks, global.chunks);
  EXPECT_LT(per_res.chunk_events * 2, global.chunk_events)
      << "per-port horizons should at least halve the chunk events that "
         "survive on independent per-tile streams";
}

TEST(Machine, MpbScopeViolationsCounted) {
  {
    SccMachine machine;
    std::uint64_t slot = 0;
    for (int ue = 0; ue < 2; ++ue) slot = machine.mpbMalloc(ue, 64);
    std::vector<std::uint8_t> sink(2);
    machine.launch(LaunchSpec(2, [&](CoreContext& ctx) { return mpbContendedKernel(ctx, slot, 1, 64, &sink); }).withScope([](int ue, int) { return std::vector<int>{ue}; }));  // scope misses the put target
    machine.run();
    EXPECT_GT(machine.mpbScopeViolations(), 0u);
  }
  {
    SccMachine machine;
    std::uint64_t slot = 0;
    for (int ue = 0; ue < 2; ++ue) slot = machine.mpbMalloc(ue, 64);
    std::vector<std::uint8_t> sink(2);
    machine.launch(LaunchSpec(2, [&](CoreContext& ctx) {
      return mpbContendedKernel(ctx, slot, 1, 64, &sink);
    }));  // unrestricted: nothing to violate
    machine.run();
    EXPECT_EQ(machine.mpbScopeViolations(), 0u);
  }
}

TEST(Machine, MpbChunkStatsAccountAllChunks) {
  const MpbResult off = runMpbContended(false, false, 4);
  // 4 rounds x (1024B put + 1024B get) / 32B chunks per UE.
  EXPECT_EQ(off.chunks, 4u * 4u * 2u * (1024u / 32u));
  EXPECT_EQ(off.chunk_events, off.chunks);
  const MpbResult on = runMpbContended(true, true, 4);
  EXPECT_EQ(on.chunks, off.chunks);
  EXPECT_LE(on.chunk_events, off.chunk_events);
}

// --- sync-aware horizons at machine level ------------------------------------

SimResult runContendedSyncAware(bool sync_aware) {
  SccConfig cfg;
  cfg.sync_aware_horizon = sync_aware;
  SccMachine machine(cfg);
  const std::uint64_t blocks = machine.shmalloc(8 * 1024);
  const std::uint64_t counter = machine.shmalloc(8);
  SimResult r;
  r.data.resize(8, 0);
  machine.launch(LaunchSpec(8, [&](CoreContext& ctx) {
    return contendedKernel(ctx, blocks, counter, &r.data);
  }));
  r.makespan = machine.run();
  for (int ue = 0; ue < 8; ++ue) {
    r.completions.push_back(machine.engine().completionTime(static_cast<std::size_t>(ue)));
  }
  r.events = machine.engine().eventsProcessed();
  r.shm_words = machine.shmWordsSimulated();
  r.shm_word_events = machine.shmWordEvents();
  return r;
}

// The wake-chain rule must change only the event count, never a Tick: the
// lock+barrier kernel runs bit-identically with sync-aware horizons on and
// off, and the sync-aware run coalesces strictly better (the blunt fallback
// forfeits whole batches whenever any sibling is parked).
TEST(Machine, SyncAwareHorizonBitIdenticalAndCoalescesBetter) {
  const SimResult blunt = runContendedSyncAware(false);
  const SimResult aware = runContendedSyncAware(true);
  EXPECT_EQ(aware.makespan, blunt.makespan);
  EXPECT_EQ(aware.completions, blunt.completions);
  EXPECT_EQ(aware.data, blunt.data);
  EXPECT_EQ(aware.shm_words, blunt.shm_words);
  EXPECT_LT(aware.shm_word_events, blunt.shm_word_events);
}

TEST(Machine, FairnessQuantumApproximationCompletes) {
  // A coarse fairness quantum is an explicit accuracy/speed trade: the run
  // must still complete, move every word, and stay self-deterministic.
  auto run_quantum = [] {
    SccConfig cfg;
    cfg.shm_fairness_quantum_words = 64;
    SccMachine machine(cfg);
    const std::uint64_t base = machine.shmalloc(8 * 1024);
    machine.launch(LaunchSpec(8, [&](CoreContext& ctx) { return streamKernel(ctx, base, 2, 1024); }));
    const Tick makespan = machine.run();
    return std::pair<Tick, std::uint64_t>{makespan, machine.shmWordsSimulated()};
  };
  const auto a = run_quantum();
  const auto b = run_quantum();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.second, 8u * 2u * 1024u / 8u);
  EXPECT_GT(a.first, 0u);
}

// --- conservative-PDES lanes at machine level --------------------------------
// The hard bar for engine_lanes > 1 (docs/engine_parallel.md): byte-identical
// shared memory, identical makespan, and identical per-task completion Ticks
// versus the sequential loop, across coalescing modes and under fault replay.

/// Quadrant-paired kernel: each UE round-trips its own 256-byte block on its
/// own quadrant controller and synchronizes only with its pair partner
/// (sync group ue % 4), so the reach classes split into one component per
/// quadrant. All written values are timing-independent.
SimTask pairedKernel(CoreContext& ctx, std::uint64_t base, int rounds) {
  std::vector<std::uint8_t> buf(256);
  const auto ue = static_cast<std::uint64_t>(ctx.ue());
  const std::uint64_t mine = base + ue * 256;
  for (int r = 0; r < rounds; ++r) {
    co_await ctx.compute(3000 + (ue % 3) * 1000);
    co_await ctx.shmRead(mine, buf.data(), buf.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::uint8_t>(buf[i] + ue + static_cast<std::uint64_t>(r) + i);
    }
    co_await ctx.shmWrite(mine, buf.data(), buf.size());
    co_await ctx.barrier();  // the pair's group barrier
  }
}

struct LaneMachineResult {
  Tick makespan = 0;
  std::vector<Tick> completions;
  std::vector<std::uint8_t> memory;  ///< full workload region after the run
  std::uint32_t lanes_used = 0;
  std::uint64_t events = 0;
};

LaneMachineResult runPaired(std::uint32_t lanes, bool coalescing, int ues,
                            const FaultPlan* fault = nullptr) {
  SccConfig cfg;
  cfg.engine_lanes = lanes;
  cfg.shm_coalescing = coalescing;
  if (fault != nullptr) cfg.fault = *fault;
  SccMachine machine(cfg);
  const std::uint64_t base = machine.shmalloc(static_cast<std::size_t>(ues) * 256);
  machine.launch(LaunchSpec(ues, [&](CoreContext& ctx) { return pairedKernel(ctx, base, 4); })
                     .withScope([](int, int) { return std::vector<int>{}; })
                     .withSyncGroups([](int ue, int) { return ue % 4; }));
  LaneMachineResult r;
  r.makespan = machine.run();
  for (int ue = 0; ue < ues; ++ue) {
    r.completions.push_back(machine.engine().completionTime(static_cast<std::size_t>(ue)));
  }
  const std::uint8_t* data = machine.shmData(base);
  r.memory.assign(data, data + static_cast<std::size_t>(ues) * 256);
  r.lanes_used = machine.engine().lanesUsed();
  r.events = machine.engine().eventsProcessed();
  return r;
}

TEST(MachineLanes, BitIdenticalMatrixLanesByCoalescing) {
  const LaneMachineResult ref = runPaired(1, /*coalescing=*/false, 8);
  ASSERT_EQ(ref.lanes_used, 1u);
  for (const std::uint32_t lanes : {1u, 2u, 4u}) {
    for (const bool coalescing : {false, true}) {
      const LaneMachineResult r = runPaired(lanes, coalescing, 8);
      EXPECT_EQ(r.makespan, ref.makespan) << "lanes=" << lanes << " coal=" << coalescing;
      EXPECT_EQ(r.completions, ref.completions) << "lanes=" << lanes;
      EXPECT_EQ(r.memory, ref.memory) << "lanes=" << lanes;
      // Four quadrant components: the run actually shards up to min(lanes, 4).
      EXPECT_EQ(r.lanes_used, lanes) << "lanes=" << lanes;
    }
  }
}

TEST(MachineLanes, ArmedFaultPlanForcesSequentialAndStaysIdentical) {
  FaultPlan hot{};
  hot.enabled = true;
  hot.shm_write.rate = 0.05;
  hot.mc_stall.rate = 0.02;
  const LaneMachineResult seq = runPaired(1, true, 8, &hot);
  const LaneMachineResult par = runPaired(4, true, 8, &hot);
  // Fault draws are replayed against the sequential event order; an armed
  // plan must pin the engine to one lane regardless of the config knob.
  EXPECT_EQ(seq.lanes_used, 1u);
  EXPECT_EQ(par.lanes_used, 1u);
  EXPECT_EQ(par.makespan, seq.makespan);
  EXPECT_EQ(par.completions, seq.completions);
  EXPECT_EQ(par.memory, seq.memory);
}

// Oversubscribed launch (64 UEs on 48 cores): UE ids beyond the core table
// fall back to the direct quadrant computation, so the per-tile horizons and
// the lane partition see the same controller mapping. The matrix bar holds
// unchanged.
TEST(MachineLanes, OversubscribedLanesMatrixBitIdentical) {
  const LaneMachineResult ref = runPaired(1, true, 64);
  for (const std::uint32_t lanes : {2u, 4u}) {
    const LaneMachineResult r = runPaired(lanes, true, 64);
    EXPECT_EQ(r.makespan, ref.makespan) << "lanes=" << lanes;
    EXPECT_EQ(r.completions, ref.completions) << "lanes=" << lanes;
    EXPECT_EQ(r.memory, ref.memory) << "lanes=" << lanes;
    EXPECT_EQ(r.lanes_used, lanes) << "lanes=" << lanes;
    EXPECT_EQ(r.events, ref.events) << "lanes=" << lanes;
  }
}

// An ungrouped launch binds the machine-wide barrier to every task: one
// component, so the engine must fall back to the sequential loop even with
// lanes configured — and the results must not change.
TEST(MachineLanes, UngroupedLaunchFallsBackToSequential) {
  auto run_once = [](std::uint32_t lanes) {
    SccConfig cfg;
    cfg.engine_lanes = lanes;
    SccMachine machine(cfg);
    const std::uint64_t base = machine.shmalloc(8 * 256);
    machine.launch(LaunchSpec(8, [&](CoreContext& ctx) { return pairedKernel(ctx, base, 4); }));
    LaneMachineResult r;
    r.makespan = machine.run();
    r.lanes_used = machine.engine().lanesUsed();
    const std::uint8_t* data = machine.shmData(base);
    r.memory.assign(data, data + 8 * 256);
    return r;
  };
  const LaneMachineResult seq = run_once(1);
  const LaneMachineResult par = run_once(4);
  EXPECT_EQ(par.lanes_used, 1u);
  EXPECT_EQ(par.makespan, seq.makespan);
  EXPECT_EQ(par.memory, seq.memory);
}

}  // namespace
}  // namespace hsm::sim

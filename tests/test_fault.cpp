// Tests for the deterministic fault-injection subsystem (sim/fault/fault.h)
// and the recovery / no-progress layers built on it: checksum-verify retry
// of MPB and shared-DRAM transfers, flushed-line reconciliation, controller
// stalls, core freezes, and the machine-level deadlock / sync-timeout
// reporting (docs/fault_model.md).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/fault/fault.h"
#include "sim/machine.h"

namespace hsm::sim {
namespace {

// --- FaultInjector: stateless seeded draws ----------------------------------

TEST(FaultInjector, DisabledPlanArmsNothing) {
  FaultPlan plan;  // enabled = false
  plan.mpb_transfer.rate = 1.0;
  plan.shm_write.rate = 1.0;
  const FaultInjector inj(plan);
  EXPECT_FALSE(inj.enabled());
  EXPECT_FALSE(inj.anyArmed());
  EXPECT_FALSE(inj.fires(FaultClass::kMpbTransfer, 0, 0, 0));
}

TEST(FaultInjector, EnabledZeroRatesDrawNothing) {
  FaultPlan plan;
  plan.enabled = true;
  const FaultInjector inj(plan);
  EXPECT_TRUE(inj.enabled());
  EXPECT_FALSE(inj.anyArmed());  // the hot-path gate for armed-but-quiet runs
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_FALSE(inj.fires(FaultClass::kShmWrite, 3, i, 100));
  }
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultPlan plan;
  plan.enabled = true;
  plan.mpb_transfer.rate = 0.5;
  const FaultInjector a(plan), b(plan);
  int fired = 0;
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      const bool fa = a.fires(FaultClass::kMpbTransfer, stream, index, 0);
      EXPECT_EQ(fa, b.fires(FaultClass::kMpbTransfer, stream, index, 0));
      fired += fa ? 1 : 0;
    }
  }
  // rate 0.5 over 512 draws: a degenerate hash would give 0 or 512.
  EXPECT_GT(fired, 128);
  EXPECT_LT(fired, 384);
}

TEST(FaultInjector, DifferentSeedDifferentSchedule) {
  FaultPlan plan;
  plan.enabled = true;
  plan.shm_write.rate = 0.5;
  FaultPlan other = plan;
  other.seed ^= 0xdeadbeef;
  const FaultInjector a(plan), b(other);
  int diffs = 0;
  for (std::uint64_t index = 0; index < 256; ++index) {
    diffs += a.fires(FaultClass::kShmWrite, 0, index, 0) !=
                     b.fires(FaultClass::kShmWrite, 0, index, 0)
                 ? 1
                 : 0;
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjector, ClassesDrawIndependentStreams) {
  FaultPlan plan;
  plan.enabled = true;
  plan.mpb_transfer.rate = 0.5;
  plan.shm_write.rate = 0.5;
  const FaultInjector inj(plan);
  int diffs = 0;
  for (std::uint64_t index = 0; index < 256; ++index) {
    diffs += inj.fires(FaultClass::kMpbTransfer, 0, index, 0) !=
                     inj.fires(FaultClass::kShmWrite, 0, index, 0)
                 ? 1
                 : 0;
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjector, RateOneFiresInsideWindowOnly) {
  FaultPlan plan;
  plan.enabled = true;
  plan.mc_stall.rate = 1.0;
  plan.mc_stall.window = FaultWindow{1000, 2000};
  const FaultInjector inj(plan);
  EXPECT_FALSE(inj.fires(FaultClass::kMcStall, 0, 0, 999));
  EXPECT_TRUE(inj.fires(FaultClass::kMcStall, 0, 0, 1000));
  EXPECT_TRUE(inj.fires(FaultClass::kMcStall, 0, 0, 1999));
  EXPECT_FALSE(inj.fires(FaultClass::kMcStall, 0, 0, 2000));  // half-open
}

TEST(FaultInjector, CorruptionIsDetectableAndDeterministic) {
  FaultPlan plan;
  plan.enabled = true;
  plan.mpb_transfer.rate = 1.0;
  const FaultInjector inj(plan);
  for (std::uint64_t index = 0; index < 32; ++index) {
    std::vector<std::uint8_t> buf(64, 0xab), twin(64, 0xab);
    const std::vector<std::uint8_t> orig = buf;
    inj.corruptBytes(buf.data(), buf.size(), FaultClass::kMpbTransfer, 2, index);
    EXPECT_NE(buf, orig);  // always detectable by exact compare
    inj.corruptBytes(twin.data(), twin.size(), FaultClass::kMpbTransfer, 2, index);
    EXPECT_EQ(buf, twin);  // same draw coordinates, same corruption
  }
}

TEST(FaultInjector, PickStaysInRange) {
  FaultPlan plan;
  plan.enabled = true;
  const FaultInjector inj(plan);
  for (std::uint64_t index = 0; index < 64; ++index) {
    EXPECT_LT(inj.pick(7, FaultClass::kSwcacheFlush, 1, index), 7u);
  }
}

TEST(FaultInjector, BackoffGrowsExponentially) {
  FaultPlan plan;
  plan.enabled = true;
  plan.retry_backoff_base_ticks = 1000;
  const FaultInjector inj(plan);
  EXPECT_EQ(inj.backoff(0), 1000u);
  EXPECT_EQ(inj.backoff(1), 2000u);
  EXPECT_EQ(inj.backoff(3), 8000u);
}

TEST(FaultInjector, PermafrostFreezesForeverAfterThreshold) {
  FaultPlan plan;
  plan.enabled = true;
  plan.permafrost_ue = 3;
  plan.permafrost_after_ops = 5;
  const FaultInjector inj(plan);
  EXPECT_TRUE(inj.anyArmed());  // a permanent freeze arms the injector
  EXPECT_EQ(inj.freezeTicks(3, 4, 0), 0u);
  EXPECT_EQ(inj.freezeTicks(3, 5, 0), FaultInjector::kFreezeForever);
  EXPECT_EQ(inj.freezeTicks(2, 5, 0), 0u);  // other UEs unaffected
}

TEST(FaultStats, RecoveryRateCoversRecoverableClassesOnly) {
  FaultStats s;
  EXPECT_DOUBLE_EQ(s.recoveryRate(), 1.0);  // nothing injected
  s.injected[static_cast<std::size_t>(FaultClass::kMpbTransfer)] = 3;
  s.recovered[static_cast<std::size_t>(FaultClass::kMpbTransfer)] = 3;
  s.injected[static_cast<std::size_t>(FaultClass::kMcStall)] = 100;  // absorbed
  s.injected[static_cast<std::size_t>(FaultClass::kCoreFreeze)] = 7;  // served
  EXPECT_DOUBLE_EQ(s.recoveryRate(), 1.0);
  s.injected[static_cast<std::size_t>(FaultClass::kShmWrite)] = 1;  // unrepaired
  EXPECT_DOUBLE_EQ(s.recoveryRate(), 0.75);
}

// --- machine-level recovery -------------------------------------------------

constexpr std::size_t kBlock = 256;
constexpr int kBlocksPerUe = 8;

/// Each UE publishes kBlocksPerUe deterministic blocks into its own slice of
/// [base, ...) — one writer per byte, so the expected final memory is
/// computable host-side regardless of scheduling or injected faults.
SimTask blockWriter(CoreContext& ctx, std::uint64_t base) {
  std::vector<std::uint8_t> buf(kBlock);
  for (int b = 0; b < kBlocksPerUe; ++b) {
    for (std::size_t i = 0; i < kBlock; ++i) {
      buf[i] = static_cast<std::uint8_t>(ctx.ue() * 31 + b * 7 + i);
    }
    const std::uint64_t off =
        base + (static_cast<std::uint64_t>(ctx.ue()) * kBlocksPerUe + b) * kBlock;
    co_await ctx.shmWrite(off, buf.data(), kBlock);
  }
  co_await ctx.barrier();
}

std::vector<std::uint8_t> expectedBlocks(int ues) {
  std::vector<std::uint8_t> mem(static_cast<std::size_t>(ues) * kBlocksPerUe * kBlock);
  for (int ue = 0; ue < ues; ++ue) {
    for (int b = 0; b < kBlocksPerUe; ++b) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        mem[(static_cast<std::size_t>(ue) * kBlocksPerUe + b) * kBlock + i] =
            static_cast<std::uint8_t>(ue * 31 + b * 7 + i);
      }
    }
  }
  return mem;
}

struct BlockRun {
  Tick makespan = 0;
  std::vector<std::uint8_t> memory;
  FaultStats stats;
};

BlockRun runBlockWriters(const FaultPlan& plan, int ues, bool cached = false) {
  SccConfig cfg;
  cfg.fault = plan;
  SccMachine m(cfg);
  const std::size_t bytes = static_cast<std::size_t>(ues) * kBlocksPerUe * kBlock;
  const std::uint64_t base = m.shmalloc(bytes);
  if (cached) m.setShmCacheability(base, base + bytes, true);
  m.launch(LaunchSpec(ues, [=](CoreContext& ctx) { return blockWriter(ctx, base); }));
  BlockRun r;
  r.makespan = m.run();
  r.memory.assign(m.shmData(base), m.shmData(base) + bytes);
  r.stats = m.faultStats();
  return r;
}

TEST(FaultMachine, ZeroRateArmedRunBitIdenticalToDisabled) {
  FaultPlan off;  // enabled = false
  FaultPlan zero;
  zero.enabled = true;  // armed-but-quiet: every rate zero
  const BlockRun a = runBlockWriters(off, 4);
  const BlockRun b = runBlockWriters(zero, 4);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.memory, b.memory);
  EXPECT_EQ(b.stats.totalInjected(), 0u);
  EXPECT_EQ(b.stats.retries, 0u);
}

TEST(FaultMachine, ShmWriteFaultsDetectedAndRepaired) {
  FaultPlan plan;
  plan.enabled = true;
  plan.shm_write.rate = 0.3;
  const BlockRun r = runBlockWriters(plan, 4);
  const auto cls = static_cast<std::size_t>(FaultClass::kShmWrite);
  EXPECT_GT(r.stats.injected[cls], 0u);
  EXPECT_EQ(r.stats.recovered[cls], r.stats.injected[cls]);
  EXPECT_EQ(r.stats.unrecovered, 0u);
  EXPECT_GT(r.stats.retries, 0u);
  EXPECT_EQ(r.memory, expectedBlocks(4));  // corrupted words were rewritten
  // Retries serve simulated backoff, so the faulty run takes longer.
  EXPECT_GT(r.makespan, runBlockWriters(FaultPlan{}, 4).makespan);
}

TEST(FaultMachine, SameSeedReplayIsIdentical) {
  FaultPlan plan;
  plan.enabled = true;
  plan.shm_write.rate = 0.3;
  plan.mc_stall.rate = 0.1;
  const BlockRun a = runBlockWriters(plan, 4);
  const BlockRun b = runBlockWriters(plan, 4);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.memory, b.memory);
  EXPECT_EQ(a.stats.totalInjected(), b.stats.totalInjected());
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.stall_ticks, b.stats.stall_ticks);
}

TEST(FaultMachine, DifferentSeedDifferentSchedule) {
  FaultPlan plan;
  plan.enabled = true;
  plan.shm_write.rate = 0.3;
  FaultPlan other = plan;
  other.seed ^= 0x1234567;
  const BlockRun a = runBlockWriters(plan, 4);
  const BlockRun b = runBlockWriters(other, 4);
  EXPECT_TRUE(a.makespan != b.makespan ||
              a.stats.totalInjected() != b.stats.totalInjected());
  EXPECT_EQ(a.memory, b.memory);  // recovery makes results seed-independent
}

TEST(FaultMachine, SwcacheFlushFaultsRepairedToExactDram) {
  FaultPlan plan;
  plan.enabled = true;
  plan.swcache_flush.rate = 1.0;  // corrupt a flushed line at EVERY release
  const BlockRun faulty = runBlockWriters(plan, 4, /*cached=*/true);
  const auto cls = static_cast<std::size_t>(FaultClass::kSwcacheFlush);
  EXPECT_GT(faulty.stats.injected[cls], 0u);
  EXPECT_EQ(faulty.stats.recovered[cls], faulty.stats.injected[cls]);
  EXPECT_EQ(faulty.stats.unrecovered, 0u);
  EXPECT_EQ(faulty.memory, expectedBlocks(4));  // reconciliation restored DRAM
}

TEST(FaultMachine, McStallAddsDeterministicLatency) {
  FaultPlan plan;
  plan.enabled = true;
  plan.mc_stall.rate = 0.5;
  const BlockRun faulty = runBlockWriters(plan, 2);
  const BlockRun clean = runBlockWriters(FaultPlan{}, 2);
  EXPECT_GT(faulty.stats.stall_ticks, 0u);
  EXPECT_GT(faulty.makespan, clean.makespan);
  EXPECT_EQ(faulty.memory, clean.memory);  // stalls cost time, not data
  EXPECT_EQ(faulty.stats.unrecovered, 0u);
}

TEST(FaultMachine, TransientFreezeDelaysButCompletes) {
  FaultPlan plan;
  plan.enabled = true;
  plan.core_freeze.rate = 0.5;
  plan.core_freeze_ticks = 1'000'000;
  const BlockRun faulty = runBlockWriters(plan, 2);
  EXPECT_GT(faulty.stats.freezes, 0u);
  EXPECT_GT(faulty.makespan, runBlockWriters(FaultPlan{}, 2).makespan);
  EXPECT_EQ(faulty.memory, expectedBlocks(2));
}

// --- MPB transfer recovery ---------------------------------------------------

/// UE writes a pattern into its own MPB, barrier, reads the peer's MPB and
/// republishes it to shared DRAM so the test can verify delivery end to end.
SimTask mpbExchange(CoreContext& ctx, std::uint64_t out) {
  std::uint8_t buf[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    buf[i] = static_cast<std::uint8_t>(ctx.ue() * 97 + i);
  }
  co_await ctx.mpbWrite(ctx.ue(), 0, buf, kBlock);
  co_await ctx.barrier();
  const int peer = (ctx.ue() + 1) % ctx.numUes();
  co_await ctx.mpbRead(peer, 0, buf, kBlock);
  co_await ctx.shmWrite(out + static_cast<std::uint64_t>(ctx.ue()) * kBlock, buf,
                        kBlock);
  co_await ctx.barrier();
}

TEST(FaultMachine, MpbTransferFaultsDetectedAndRepaired) {
  FaultPlan plan;
  plan.enabled = true;
  plan.mpb_transfer.rate = 0.4;
  SccConfig cfg;
  cfg.fault = plan;
  SccMachine m(cfg);
  const std::uint64_t out = m.shmalloc(2 * kBlock);
  m.launch(LaunchSpec(2, [=](CoreContext& ctx) { return mpbExchange(ctx, out); }));
  m.run();
  const auto cls = static_cast<std::size_t>(FaultClass::kMpbTransfer);
  const FaultStats& s = m.faultStats();
  EXPECT_GT(s.injected[cls], 0u);
  EXPECT_EQ(s.recovered[cls], s.injected[cls]);
  EXPECT_EQ(s.unrecovered, 0u);
  for (int ue = 0; ue < 2; ++ue) {
    const int peer = (ue + 1) % 2;
    const std::uint8_t* got = m.shmData(out + static_cast<std::uint64_t>(ue) * kBlock);
    for (std::size_t i = 0; i < kBlock; ++i) {
      ASSERT_EQ(got[i], static_cast<std::uint8_t>(peer * 97 + i))
          << "ue " << ue << " byte " << i;
    }
  }
}

// --- deadlock / sync-timeout reporting ---------------------------------------

SimTask readThenBarrier(CoreContext& ctx, std::uint64_t base) {
  std::uint64_t v = 0;
  co_await ctx.shmRead(base, &v, sizeof(v));
  co_await ctx.barrier();
}

TEST(FaultMachine, PermanentFreezeRaisesDeadlockNamingFrozenTask) {
  FaultPlan plan;
  plan.enabled = true;
  plan.permafrost_ue = 1;
  plan.permafrost_after_ops = 0;  // wedge UE 1 at its first timed operation
  SccConfig cfg;
  cfg.fault = plan;
  SccMachine m(cfg);
  const std::uint64_t base = m.shmalloc(64);
  m.launch(LaunchSpec(2, [=](CoreContext& ctx) { return readThenBarrier(ctx, base); }));
  try {
    m.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_EQ(e.kind(), SimHangError::Kind::kDeadlock);
    bool frozen_named = false, barrier_waiter = false;
    for (const HangReport::Waiter& w : e.report().waiters) {
      if (w.task == 1 && w.sync == Engine::kNoSync) frozen_named = true;
      if (w.task == 0 && w.sync != Engine::kNoSync) barrier_waiter = true;
    }
    EXPECT_TRUE(frozen_named) << e.what();
    EXPECT_TRUE(barrier_waiter) << e.what();
    EXPECT_NE(std::string(e.what()).find("task 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("unknown mechanism"), std::string::npos);
    EXPECT_EQ(m.faultStats()
                  .injected[static_cast<std::size_t>(FaultClass::kCoreFreeze)],
              1u);
  }
}

SimTask holdLockLong(CoreContext& ctx) {
  co_await ctx.lockAcquire(0);
  // Hold far beyond the configured timeout, in chunks: the timeout check
  // runs after each event resume, so the overstayed wait must be observable
  // while the contender is still parked (a single long compute would advance
  // time and release the lock inside one resume, un-parking the waiter
  // before any check sees it).
  for (int i = 0; i < 8; ++i) co_await ctx.compute(125'000);
  co_await ctx.lockRelease(0);
}

SimTask contendLock(CoreContext& ctx) {
  co_await ctx.compute(100);  // let UE 0 take the lock first
  co_await ctx.lockAcquire(0);
  co_await ctx.lockRelease(0);
}

TEST(FaultMachine, SyncTimeoutRaisedOnOverstayedLockWait) {
  SccConfig cfg;
  cfg.sync_timeout_ticks = 10'000;  // 10 ns: UE 0 holds for >1 ms of core time
  SccMachine m(cfg);
  m.launch(LaunchSpec(2, [](CoreContext& ctx) {
    return ctx.ue() == 0 ? holdLockLong(ctx) : contendLock(ctx);
  }));
  try {
    m.run();
    FAIL() << "expected SyncTimeout";
  } catch (const SyncTimeout& e) {
    EXPECT_EQ(e.kind(), SimHangError::Kind::kSyncTimeout);
    bool lock_waiter = false;
    for (const HangReport::Waiter& w : e.report().waiters) {
      if (w.task == 1 && w.sync != Engine::kNoSync) lock_waiter = true;
    }
    EXPECT_TRUE(lock_waiter) << e.what();
  }
}

TEST(FaultMachine, GenerousSyncTimeoutDoesNotFire) {
  SccConfig cfg;
  cfg.sync_timeout_ticks = static_cast<Tick>(1) << 60;
  SccMachine m(cfg);
  m.launch(LaunchSpec(2, [](CoreContext& ctx) {
    return ctx.ue() == 0 ? holdLockLong(ctx) : contendLock(ctx);
  }));
  EXPECT_NO_THROW(m.run());
}

}  // namespace
}  // namespace hsm::sim

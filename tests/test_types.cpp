// Unit tests: the type system — interning, IA-32 sizes, spellings.
#include <gtest/gtest.h>

#include "ast/type.h"

namespace hsm::ast {
namespace {

TEST(TypeTable, BuiltinsAreInterned) {
  TypeTable types;
  EXPECT_EQ(types.intType(), types.builtin(TypeKind::Int));
  EXPECT_NE(types.intType(), types.doubleType());
}

TEST(TypeTable, PointerInterning) {
  TypeTable types;
  const Type* p1 = types.pointerTo(types.intType());
  const Type* p2 = types.pointerTo(types.intType());
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, types.pointerTo(types.doubleType()));
}

TEST(TypeTable, NamedInterning) {
  TypeTable types;
  EXPECT_EQ(types.named("pthread_t"), types.named("pthread_t"));
  EXPECT_NE(types.named("a"), types.named("b"));
}

TEST(TypeTable, PointerChains) {
  TypeTable types;
  const Type* pp = types.pointerTo(types.pointerTo(types.charType()));
  EXPECT_TRUE(pp->isPointer());
  EXPECT_TRUE(pp->element()->isPointer());
  EXPECT_EQ(pp->element()->element(), types.charType());
}

struct SizeCase {
  TypeKind kind;
  std::size_t bytes;
};

class TypeSizeTest : public ::testing::TestWithParam<SizeCase> {};

TEST_P(TypeSizeTest, Ia32Sizes) {
  TypeTable types;
  EXPECT_EQ(types.sizeOf(types.builtin(GetParam().kind)), GetParam().bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Builtins, TypeSizeTest,
    ::testing::Values(SizeCase{TypeKind::Void, 0}, SizeCase{TypeKind::Char, 1},
                      SizeCase{TypeKind::UnsignedChar, 1}, SizeCase{TypeKind::Short, 2},
                      SizeCase{TypeKind::UnsignedShort, 2}, SizeCase{TypeKind::Int, 4},
                      SizeCase{TypeKind::UnsignedInt, 4}, SizeCase{TypeKind::Long, 4},
                      SizeCase{TypeKind::UnsignedLong, 4}, SizeCase{TypeKind::Float, 4},
                      SizeCase{TypeKind::Double, 8}));

TEST(TypeTable, PointerIs4Bytes) {
  TypeTable types;
  EXPECT_EQ(types.sizeOf(types.pointerTo(types.doubleType())), 4u);
}

TEST(TypeTable, ArraySize) {
  TypeTable types;
  const Type* arr = types.arrayOf(types.intType(), 3);
  EXPECT_EQ(types.sizeOf(arr), 12u);
  const Type* arr2d = types.arrayOf(types.arrayOf(types.doubleType(), 4), 2);
  EXPECT_EQ(types.sizeOf(arr2d), 64u);
}

TEST(TypeTable, KnownNamedTypeSizes) {
  TypeTable types;
  EXPECT_EQ(types.sizeOf(types.named("pthread_t")), 4u);
  EXPECT_EQ(types.sizeOf(types.named("pthread_mutex_t")), 24u);
}

TEST(TypeTable, UnknownNamedTypeDefaultsToPointerSize) {
  TypeTable types;
  EXPECT_EQ(types.sizeOf(types.named("mystery_t")), 4u);
}

TEST(TypeTable, SetNamedTypeSizeOverrides) {
  TypeTable types;
  types.setNamedTypeSize("big_t", 128);
  EXPECT_EQ(types.sizeOf(types.named("big_t")), 128u);
}

TEST(Type, Spellings) {
  TypeTable types;
  EXPECT_EQ(types.intType()->spelling(), "int");
  EXPECT_EQ(types.pointerTo(types.intType())->spelling(), "int*");
  EXPECT_EQ(types.arrayOf(types.doubleType(), 5)->spelling(), "double[5]");
  EXPECT_EQ(types.named("pthread_t")->spelling(), "pthread_t");
}

TEST(Type, Predicates) {
  TypeTable types;
  EXPECT_TRUE(types.intType()->isInteger());
  EXPECT_FALSE(types.intType()->isFloating());
  EXPECT_TRUE(types.doubleType()->isFloating());
  EXPECT_TRUE(types.voidType()->isVoid());
  EXPECT_TRUE(types.pointerTo(types.intType())->isPointer());
  EXPECT_TRUE(types.arrayOf(types.intType(), 1)->isArray());
  EXPECT_TRUE(types.named("x")->isNamed());
}

}  // namespace
}  // namespace hsm::ast

// Tests for the software-managed release-consistency cache (sim/swcache/):
// the extended Cache tag store, the SwCache protocol mechanics (fills,
// dirty write-backs, release flushes, acquire self-invalidation,
// write-through fallback, bulk-bypass coherence), and the DRF-equivalence
// contract: data-race-free programs produce bit-identical functional
// results with the swcache on or off, across coalescing modes, while all
// *uncached* modes keep bit-identical Ticks (docs/memory_model.md).
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "sim/machine.h"
#include "sim/swcache/swcache.h"
#include "workloads/benchmark.h"

namespace hsm::sim {
namespace {

// --- Cache tag-store extensions ---------------------------------------------

TEST(CacheTagStore, LookupDoesNotAllocateOrCount) {
  Cache cache(1024, 32);
  EXPECT_EQ(cache.lookup(64), Cache::kNoSlot);
  EXPECT_EQ(cache.misses(), 0u);
  cache.access(64, false);
  EXPECT_NE(cache.lookup(64), Cache::kNoSlot);
  EXPECT_EQ(cache.lookup(96), Cache::kNoSlot);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheTagStore, InvalidateReportsDirtiness) {
  Cache cache(1024, 32);
  cache.access(0, true);
  cache.access(32, false);
  EXPECT_TRUE(cache.invalidate(0));    // dirty line dropped
  EXPECT_FALSE(cache.invalidate(32));  // clean line dropped
  EXPECT_FALSE(cache.invalidate(64));  // absent: no-op
  EXPECT_EQ(cache.lookup(0), Cache::kNoSlot);
  EXPECT_EQ(cache.lookup(32), Cache::kNoSlot);
}

TEST(CacheTagStore, AccessReportsVictimAddressAndSlot) {
  Cache cache(1024, 32);  // 32 lines: addr and addr + 1024 collide
  const Cache::AccessResult first = cache.access(64, true);
  EXPECT_FALSE(first.hit);
  EXPECT_FALSE(first.writeback);
  const Cache::AccessResult evict = cache.access(64 + 1024, false);
  EXPECT_FALSE(evict.hit);
  EXPECT_TRUE(evict.writeback);
  EXPECT_EQ(evict.victim_addr, 64u);
  EXPECT_EQ(evict.index, first.index);
  EXPECT_EQ(cache.slotAddr(evict.index), 64u + 1024u);
}

// --- SwCache protocol mechanics ---------------------------------------------

constexpr std::size_t kLine = 32;
constexpr std::size_t kWord = 8;

struct Harness {
  std::vector<std::uint8_t> dram;
  SwCache cache;
  Harness(std::size_t dram_bytes, std::size_t lines,
          SwCachePolicy policy = SwCachePolicy::kWriteBack)
      : dram(dram_bytes, 0), cache(lines, kLine, policy) {}
  SwCache::AccessPlan read(std::uint64_t off, void* out, std::size_t n) {
    return cache.access(off, n, false, out, nullptr, dram.data(), dram.size(), kWord);
  }
  SwCache::AccessPlan write(std::uint64_t off, const void* in, std::size_t n) {
    return cache.access(off, n, true, nullptr, in, dram.data(), dram.size(), kWord);
  }
};

TEST(SwCache, ReadFillsLineThenHits) {
  Harness h(4096, 8);
  for (std::size_t i = 0; i < h.dram.size(); ++i) {
    h.dram[i] = static_cast<std::uint8_t>(i * 7);
  }
  std::uint8_t buf[64] = {};
  const SwCache::AccessPlan miss = h.read(0, buf, 64);
  EXPECT_EQ(miss.line_txns, 2u);  // two line fills
  EXPECT_EQ(miss.hit_touches, 0u);
  EXPECT_EQ(std::memcmp(buf, h.dram.data(), 64), 0);
  const SwCache::AccessPlan hit = h.read(8, buf, 48);  // same two lines
  EXPECT_EQ(hit.line_txns, 0u);
  EXPECT_EQ(hit.hit_touches, 2u);
  EXPECT_EQ(std::memcmp(buf, h.dram.data() + 8, 48), 0);
  EXPECT_EQ(h.cache.stats().line_fills, 2u);
  EXPECT_EQ(h.cache.stats().word_accesses, 8u + 6u);
  EXPECT_EQ(h.cache.stats().word_hits, 6u);
}

TEST(SwCache, WriteBackDirtiesWithoutTouchingDram) {
  Harness h(4096, 8);
  const std::uint64_t value = 0x1122334455667788ull;
  h.write(0, &value, sizeof(value));
  EXPECT_EQ(h.cache.dirtyLines(), 1u);
  std::uint64_t dram_view = 0;
  std::memcpy(&dram_view, h.dram.data(), sizeof(dram_view));
  EXPECT_EQ(dram_view, 0u);  // DRAM untouched until reconciliation
  // The writer's own reads see the cached value (program order).
  std::uint64_t readback = 0;
  h.read(0, &readback, sizeof(readback));
  EXPECT_EQ(readback, value);
  // RELEASE: flush makes it visible; the line stays resident and clean.
  EXPECT_EQ(h.cache.flushDirty(h.dram.data(), h.dram.size()), 1u);
  std::memcpy(&dram_view, h.dram.data(), sizeof(dram_view));
  EXPECT_EQ(dram_view, value);
  EXPECT_EQ(h.cache.dirtyLines(), 0u);
  EXPECT_EQ(h.cache.residentLines(), 1u);
}

TEST(SwCache, AcquireInvalidatesCleanButKeepsDirty) {
  Harness h(4096, 8);
  std::uint8_t buf[kLine] = {};
  h.read(0, buf, kLine);                 // clean line
  const std::uint64_t v = 42;
  h.write(kLine, &v, sizeof(v));         // dirty line
  EXPECT_EQ(h.cache.invalidateClean(), 1u);
  EXPECT_EQ(h.cache.residentLines(), 1u);
  EXPECT_EQ(h.cache.dirtyLines(), 1u);
  // The dirty line's data survived the acquire (it is unreleased own data).
  std::uint64_t readback = 0;
  const SwCache::AccessPlan plan = h.read(kLine, &readback, sizeof(readback));
  EXPECT_EQ(plan.hit_touches, 1u);
  EXPECT_EQ(readback, v);
}

TEST(SwCache, EvictionWritesDirtyVictimBack) {
  Harness h(4096, 4);  // 4 lines of 32 B: offsets 0 and 512 collide
  const std::uint64_t v = 7;
  h.write(0, &v, sizeof(v));
  std::uint8_t buf[kLine] = {};
  const SwCache::AccessPlan plan = h.read(4 * kLine, buf, kLine);  // evicts slot 0
  EXPECT_EQ(plan.line_txns, 2u);  // victim write-back + fill
  std::uint64_t dram_view = 0;
  std::memcpy(&dram_view, h.dram.data(), sizeof(dram_view));
  EXPECT_EQ(dram_view, v);  // early visibility: conservative under DRF
  EXPECT_EQ(h.cache.stats().writebacks, 1u);
}

TEST(SwCache, WriteThroughUpdatesDramAndResidentCopy) {
  Harness h(4096, 8, SwCachePolicy::kWriteThrough);
  std::uint8_t buf[kLine] = {};
  h.read(0, buf, kLine);  // resident clean line
  const std::uint64_t v = 0xdeadbeefull;
  const SwCache::AccessPlan plan = h.write(0, &v, sizeof(v));
  EXPECT_EQ(plan.line_txns, 0u);
  EXPECT_EQ(plan.writethrough_words, 1u);
  std::uint64_t dram_view = 0;
  std::memcpy(&dram_view, h.dram.data(), sizeof(dram_view));
  EXPECT_EQ(dram_view, v);  // immediate visibility
  std::uint64_t readback = 0;
  const SwCache::AccessPlan hit = h.read(0, &readback, sizeof(readback));
  EXPECT_EQ(hit.hit_touches, 1u);  // resident copy refreshed, not stale
  EXPECT_EQ(readback, v);
  EXPECT_EQ(h.cache.dirtyLines(), 0u);  // never dirty: releases are free
  // A write to an absent line allocates nothing (no-allocate).
  const SwCache::AccessPlan absent = h.write(10 * kLine, &v, sizeof(v));
  EXPECT_EQ(absent.line_txns, 0u);
  EXPECT_EQ(h.cache.residentLines(), 1u);
}

TEST(SwCache, SyncRangeWritesBackAndOptionallyDrops) {
  Harness h(4096, 8);
  const std::uint64_t v = 9;
  h.write(0, &v, sizeof(v));
  h.write(kLine, &v, sizeof(v));
  // Bulk-read fence: write back overlapping dirty lines, keep them resident.
  EXPECT_EQ(h.cache.syncRange(0, kLine, false, h.dram.data(), h.dram.size()), 1u);
  EXPECT_EQ(h.cache.residentLines(), 2u);
  EXPECT_EQ(h.cache.dirtyLines(), 1u);
  std::uint64_t dram_view = 0;
  std::memcpy(&dram_view, h.dram.data(), sizeof(dram_view));
  EXPECT_EQ(dram_view, v);
  // Bulk-write fence: drop everything overlapping.
  EXPECT_EQ(h.cache.syncRange(0, 2 * kLine, true, h.dram.data(), h.dram.size()), 1u);
  EXPECT_EQ(h.cache.residentLines(), 0u);
}

// --- machine-level protocol (visibility through sync points) ----------------

SimTask producer(CoreContext& ctx, std::uint64_t data, std::uint64_t n_words) {
  for (std::uint64_t i = 0; i < n_words; ++i) {
    const std::uint64_t v = 1000 + i;
    co_await ctx.shmWrite(data + i * 8, &v, 8);
  }
  co_await ctx.barrier();  // release: flush
  co_await ctx.barrier();
}

SimTask consumer(CoreContext& ctx, std::uint64_t data, std::uint64_t n_words,
                 std::vector<std::uint64_t>* seen) {
  // Warm a stale copy BEFORE the producer releases: zeros at this point.
  std::uint64_t v = 0;
  co_await ctx.shmRead(data, &v, 8);
  co_await ctx.barrier();  // acquire: self-invalidate stale lines
  for (std::uint64_t i = 0; i < n_words; ++i) {
    co_await ctx.shmRead(data + i * 8, &v, 8);
    seen->push_back(v);
  }
  co_await ctx.barrier();
}

TEST(SwCacheMachine, BarrierMakesWritesVisibleDespiteStaleCopy) {
  for (const std::uint32_t policy : {0u, 1u}) {
    SccConfig cfg;
    cfg.shm_swcache = true;
    cfg.swcache_policy = policy;
    SccMachine machine(cfg);
    const std::uint64_t data = machine.shmalloc(256);
    std::vector<std::uint64_t> seen;
    machine.launch(LaunchSpec(2, [&](CoreContext& ctx) -> SimTask {
      if (ctx.ue() == 0) return producer(ctx, data, 16);
      return consumer(ctx, data, 16, &seen);
    }));
    machine.run();
    ASSERT_EQ(seen.size(), 16u) << "policy=" << policy;
    for (std::uint64_t i = 0; i < 16; ++i) {
      EXPECT_EQ(seen[i], 1000 + i) << "policy=" << policy << " i=" << i;
    }
    const SwCacheStats totals = machine.swcacheTotals();
    EXPECT_GT(totals.word_accesses, 0u);
    if (policy == 0) EXPECT_GT(totals.writebacks, 0u);
    EXPECT_GT(totals.invalidated_lines, 0u);
  }
}

SimTask lockedAdder(CoreContext& ctx, std::uint64_t counter, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    co_await ctx.lockAcquire(0);
    std::uint64_t v = 0;
    co_await ctx.shmRead(counter, &v, 8);
    ++v;
    co_await ctx.shmWrite(counter, &v, 8);
    co_await ctx.lockRelease(0);
  }
  co_await ctx.barrier();
}

TEST(SwCacheMachine, LockProtectedCounterIsExact) {
  for (const bool swcache : {false, true}) {
    SccConfig cfg;
    cfg.shm_swcache = swcache;
    SccMachine machine(cfg);
    const std::uint64_t counter = machine.shmalloc(8);
    machine.launch(LaunchSpec(6, [&](CoreContext& ctx) { return lockedAdder(ctx, counter, 5); }));
    machine.run();
    std::uint64_t v = 0;
    std::memcpy(&v, machine.shmData(counter), 8);
    EXPECT_EQ(v, 30u) << "swcache=" << swcache;
  }
}

SimTask bulkMixer(CoreContext& ctx, std::uint64_t base, std::size_t bytes) {
  // Cached write, then a bulk read of the same region must observe it
  // (bulk bypasses the cache; the coherence fence writes dirty lines back).
  std::vector<std::uint8_t> pattern(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    pattern[i] = static_cast<std::uint8_t>(i * 3 + 1);
  }
  co_await ctx.shmWrite(base, pattern.data(), bytes);
  std::vector<std::uint8_t> bulk(bytes, 0);
  co_await ctx.shmReadBulk(base, bulk.data(), bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    if (bulk[i] != pattern[i]) co_return;  // leaves the sentinel unwritten
  }
  // Bulk write supersedes the cached copy; a cached read must see it.
  for (std::size_t i = 0; i < bytes; ++i) pattern[i] ^= 0xff;
  co_await ctx.shmWriteBulk(base, pattern.data(), bytes);
  std::vector<std::uint8_t> cached(bytes, 0);
  co_await ctx.shmRead(base, cached.data(), bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    if (cached[i] != pattern[i]) co_return;
  }
  const std::uint64_t ok = 1;
  co_await ctx.shmWrite(base + bytes, &ok, 8);
  co_await ctx.barrier();
}

TEST(SwCacheMachine, BulkBypassStaysCoherentWithCachedLines) {
  SccConfig cfg;
  cfg.shm_swcache = true;
  SccMachine machine(cfg);
  const std::uint64_t base = machine.shmalloc(1024 + 8);
  machine.launch(LaunchSpec(1, [&](CoreContext& ctx) { return bulkMixer(ctx, base, 1024); }));
  machine.run();
  std::uint64_t ok = 0;
  std::memcpy(&ok, machine.shmData(base + 1024), 8);
  EXPECT_EQ(ok, 1u);
}

// --- DRF-equivalence suite ---------------------------------------------------

/// The shared-memory routing × simulator-mode matrix every DRF program must
/// agree across (functionally; Ticks additionally for the uncached modes).
struct RoutingMode {
  const char* name;
  bool swcache;
  std::uint32_t policy;
  bool coalescing;
  bool per_resource;
  bool uncached() const { return !swcache; }
};

const RoutingMode kMatrix[] = {
    {"uncached/coalesced", false, 0, true, true},
    {"uncached/global", false, 0, true, false},
    {"uncached/off", false, 0, false, false},
    {"swcache-wb/coalesced", true, 0, true, true},
    {"swcache-wb/off", true, 0, false, false},
    {"swcache-wt/coalesced", true, 1, true, true},
};

SccConfig configFor(const RoutingMode& m) {
  SccConfig cfg;
  cfg.shm_swcache = m.swcache;
  cfg.swcache_policy = m.policy;
  cfg.shm_coalescing = m.coalescing;
  cfg.mpb_coalescing = m.coalescing;
  cfg.per_resource_horizon = m.per_resource;
  return cfg;
}

TEST(DrfEquivalence, CountPrimesAndDotProductAcrossRoutings) {
  using workloads::Mode;
  // The functional value (the detail prefix before the " | " metric summary)
  // must be identical across routings; the summary legitimately differs
  // (events and makespan are routing-dependent by design).
  const auto valueOf = [](const workloads::RunResult& r) {
    return r.detail.substr(0, r.detail.find(" | "));
  };
  for (const auto& make :
       {workloads::makeCountPrimes(0.1), workloads::makeDotProduct(0.03)}) {
    std::string first_value;
    bool first = true;
    for (const RoutingMode& m : kMatrix) {
      const workloads::RunResult r = make->run(Mode::RcceOffChip, 8, configFor(m));
      EXPECT_TRUE(r.verified) << make->name() << " " << m.name;
      if (first) {
        first_value = valueOf(r);
        first = false;
      } else {
        EXPECT_EQ(valueOf(r), first_value) << make->name() << " " << m.name;
      }
    }
  }
}

/// Randomized DRF stress: every UE runs a per-(ue, round) pseudo-random mix
/// of private-region reads/writes, bulk ops, and lock-protected
/// read-modify-writes of shared counters, with a barrier per round. The
/// schedule is deterministic and identical across configurations, and no
/// CACHE LINE is written by two UEs without synchronization (the counters
/// are padded to one line each — the swcache's DRF contract is at line
/// granularity, see docs/memory_model.md) — so the entire shared region
/// must be byte-identical across the routing matrix, and Ticks
/// bit-identical among the uncached modes.
SimTask drfStress(CoreContext& ctx, std::uint64_t region, std::size_t region_bytes,
                  std::uint64_t counters, int rounds) {
  const std::uint64_t mine =
      region + static_cast<std::uint64_t>(ctx.ue()) * region_bytes;
  std::vector<std::uint8_t> buf(256);
  for (int r = 0; r < rounds; ++r) {
    std::mt19937 rng(static_cast<unsigned>(ctx.ue() * 7919 + r * 104729 + 1));
    for (int op = 0; op < 12; ++op) {
      const std::uint64_t off = (rng() % (region_bytes - buf.size())) & ~7ull;
      switch (rng() % 5) {
        case 0:
          co_await ctx.shmRead(mine + off, buf.data(), buf.size());
          break;
        case 1:
          for (std::size_t i = 0; i < buf.size(); ++i) {
            buf[i] = static_cast<std::uint8_t>(buf[i] + i + static_cast<std::size_t>(r));
          }
          co_await ctx.shmWrite(mine + off, buf.data(), buf.size());
          break;
        case 2:
          co_await ctx.shmReadBulk(mine + off, buf.data(), buf.size());
          break;
        case 3:
          co_await ctx.shmWriteBulk(mine + off, buf.data(), buf.size());
          break;
        case 4: {
          // One line (32 B) per counter: padding keeps concurrent holders of
          // different locks from writing the same line (line-level DRF).
          const int c = static_cast<int>(rng() % 4);
          co_await ctx.lockAcquire(c);
          std::uint64_t v = 0;
          co_await ctx.shmRead(counters + static_cast<std::uint64_t>(c) * 32, &v, 8);
          v += static_cast<std::uint64_t>(ctx.ue()) + 1;
          co_await ctx.shmWrite(counters + static_cast<std::uint64_t>(c) * 32, &v, 8);
          co_await ctx.lockRelease(c);
          break;
        }
      }
    }
    co_await ctx.barrier();
  }
}

TEST(DrfEquivalence, RandomizedStressAgreesAcrossMatrix) {
  constexpr int kUes = 6;
  constexpr std::size_t kRegion = 2048;
  constexpr int kRounds = 4;

  std::vector<std::uint8_t> reference_mem;
  Tick reference_uncached_makespan = 0;
  std::vector<Tick> reference_uncached_completions;
  bool first = true;
  for (const RoutingMode& m : kMatrix) {
    SccMachine machine(configFor(m));
    const std::uint64_t region = machine.shmalloc(kUes * kRegion);
    const std::uint64_t counters = machine.shmalloc(4 * 32);
    machine.launch(LaunchSpec(kUes, [&](CoreContext& ctx) {
      return drfStress(ctx, region, kRegion, counters, kRounds);
    }));
    const Tick makespan = machine.run();
    const std::uint8_t* shm = machine.shmData(0);
    std::vector<std::uint8_t> mem(shm, shm + kUes * kRegion + 4 * 32);
    std::vector<Tick> completions;
    for (int ue = 0; ue < kUes; ++ue) {
      completions.push_back(machine.engine().completionTime(static_cast<std::size_t>(ue)));
    }
    if (first) {
      reference_mem = mem;
      first = false;
    } else {
      EXPECT_EQ(mem, reference_mem) << m.name;
    }
    if (m.uncached()) {
      if (reference_uncached_makespan == 0) {
        reference_uncached_makespan = makespan;
        reference_uncached_completions = completions;
      } else {
        EXPECT_EQ(makespan, reference_uncached_makespan) << m.name;
        EXPECT_EQ(completions, reference_uncached_completions) << m.name;
      }
    }
  }
}

TEST(DrfEquivalence, SwcacheTicksAreDeterministic) {
  Tick first = 0;
  for (int trial = 0; trial < 2; ++trial) {
    SccConfig cfg;
    cfg.shm_swcache = true;
    SccMachine machine(cfg);
    const std::uint64_t counter = machine.shmalloc(8);
    machine.launch(LaunchSpec(4, [&](CoreContext& ctx) { return lockedAdder(ctx, counter, 3); }));
    machine.run();
    if (trial == 0) {
      first = machine.engine().makespan();
    } else {
      EXPECT_EQ(machine.engine().makespan(), first);
    }
  }
}

// --- read-mostly effectiveness ----------------------------------------------

SimTask readMostly(CoreContext& ctx, std::uint64_t base, std::size_t bytes,
                   int sweeps, int rounds) {
  std::vector<std::uint8_t> buf(bytes);
  const std::uint64_t mine = base + static_cast<std::uint64_t>(ctx.ue()) * bytes;
  for (int r = 0; r < rounds; ++r) {
    for (int s = 0; s < sweeps; ++s) {
      co_await ctx.shmRead(mine, buf.data(), bytes);
    }
    co_await ctx.barrier();
  }
}

TEST(SwCacheMachine, ReadMostlyClearsNinetyPercentHitRate) {
  SccConfig cfg;
  cfg.shm_swcache = true;
  SccMachine machine(cfg);
  const std::uint64_t base = machine.shmalloc(8 * 4096);
  machine.launch(LaunchSpec(8, [&](CoreContext& ctx) { return readMostly(ctx, base, 4096, 16, 3); }));
  machine.run();
  const SwCacheStats totals = machine.swcacheTotals();
  EXPECT_GE(totals.hitRate(), 0.90) << "hits " << totals.word_hits << " / "
                                    << totals.word_accesses;
  // Per-core stats are surfaced too: every participating core saw accesses.
  std::uint64_t cores_with_traffic = 0;
  for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
    if (machine.swcacheStats(static_cast<int>(c)).word_accesses > 0) {
      ++cores_with_traffic;
    }
  }
  EXPECT_EQ(cores_with_traffic, 8u);
}

// --- accounting invariants under mixed cached/uncached regions ---------------

SimTask mixedRegionToucher(CoreContext& ctx, std::uint64_t cached_base,
                           std::uint64_t uncached_base, int rounds) {
  std::uint64_t v = 0;
  const std::uint64_t mine = cached_base + static_cast<std::uint64_t>(ctx.ue()) * 256;
  for (int r = 0; r < rounds; ++r) {
    for (std::uint64_t w = 0; w < 16; ++w) {
      co_await ctx.shmRead(mine + w * 8, &v, 8);
      v += w;
      co_await ctx.shmWrite(mine + w * 8, &v, 8);
    }
    // Same traffic against the uncached region: must not enter any core's
    // swcache counters.
    co_await ctx.shmWrite(uncached_base + static_cast<std::uint64_t>(ctx.ue()) * 8,
                          &v, 8);
    co_await ctx.barrier();
  }
}

// swcacheTotals() must be exactly the per-core sum of swcacheStats(core),
// field by field, with a per-region cacheability split in effect — the
// aggregate the bench and the fault-recovery accounting both build on.
TEST(SwCacheMachine, TotalsEqualPerCoreSumsUnderMixedRegions) {
  SccConfig cfg;
  cfg.shm_swcache = false;  // default routing uncached; one region cached
  SccMachine machine(cfg);
  const std::uint64_t cached = machine.shmalloc(4 * 256, /*align=*/64);
  const std::uint64_t uncached = machine.shmalloc(256);
  machine.setShmCacheability(cached, cached + 4 * 256, true);
  machine.launch(LaunchSpec(4, [&](CoreContext& ctx) {
    return mixedRegionToucher(ctx, cached, uncached, 3);
  }));
  machine.run();

  SwCacheStats sum;
  for (std::uint32_t core = 0; core < cfg.num_cores; ++core) {
    sum += machine.swcacheStats(static_cast<int>(core));
  }
  const SwCacheStats totals = machine.swcacheTotals();
  EXPECT_GT(totals.word_accesses, 0u);
  EXPECT_EQ(totals.word_accesses, sum.word_accesses);
  EXPECT_EQ(totals.word_hits, sum.word_hits);
  EXPECT_EQ(totals.line_fills, sum.line_fills);
  EXPECT_EQ(totals.writebacks, sum.writebacks);
  EXPECT_EQ(totals.flushes, sum.flushes);
  EXPECT_EQ(totals.invalidated_lines, sum.invalidated_lines);
  EXPECT_EQ(totals.writethrough_words, sum.writethrough_words);
  // Each UE makes 3 rounds × 32 cached word touches; the uncached-region
  // writes must not have leaked into the cache accounting.
  EXPECT_EQ(totals.word_accesses, 4u * 3u * 32u);
}

// Release points flush every dirty line: after a run whose last sync op is a
// barrier, no core may hold dirty data (the invariant the fault layer's
// flushed-line reconciliation presumes).
TEST(SwCacheMachine, DirtyLinesZeroAfterRelease) {
  SccConfig cfg;
  cfg.shm_swcache = false;
  SccMachine machine(cfg);
  const std::uint64_t cached = machine.shmalloc(4 * 256, /*align=*/64);
  const std::uint64_t uncached = machine.shmalloc(256);
  machine.setShmCacheability(cached, cached + 4 * 256, true);
  machine.launch(LaunchSpec(4, [&](CoreContext& ctx) {
    return mixedRegionToucher(ctx, cached, uncached, 2);
  }));
  machine.run();
  for (std::uint32_t core = 0; core < cfg.num_cores; ++core) {
    EXPECT_EQ(machine.swcacheDirtyLines(static_cast<int>(core)), 0u)
        << "core " << core;
  }
  EXPECT_GT(machine.swcacheTotals().writebacks, 0u);  // flushes really happened
}

}  // namespace
}  // namespace hsm::sim

// Tests for the discrete-event kernel: ordering, determinism, coroutine
// tasks, subtasks, resource timelines.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

namespace hsm::sim {
namespace {

SimTask recorder(Engine& engine, std::vector<int>& log, int id, Tick delay) {
  co_await engine.delay(delay);
  log.push_back(id);
  co_await engine.delay(delay);
  log.push_back(id + 100);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 300));
  engine.spawn(recorder(engine, log, 2, 100));
  engine.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], 2);    // t=100
  EXPECT_EQ(log[1], 102);  // t=200
  EXPECT_EQ(log[2], 1);    // t=300
  EXPECT_EQ(log[3], 101);  // t=600
}

TEST(Engine, TieBreaksByInsertionOrder) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 100));
  engine.spawn(recorder(engine, log, 2, 100));
  engine.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], 1);
  EXPECT_EQ(log[1], 2);
}

TEST(Engine, CompletionTimesRecorded) {
  Engine engine;
  std::vector<int> log;
  const std::size_t a = engine.spawn(recorder(engine, log, 1, 50));
  const std::size_t b = engine.spawn(recorder(engine, log, 2, 200));
  engine.run();
  EXPECT_EQ(engine.completionTime(a), 100u);
  EXPECT_EQ(engine.completionTime(b), 400u);
  EXPECT_EQ(engine.makespan(), 400u);
}

TEST(Engine, NowAdvancesMonotonically) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 10));
  EXPECT_EQ(engine.now(), 0u);
  engine.run();
  EXPECT_EQ(engine.now(), 20u);
}

TEST(Engine, ZeroDelayContinuesInline) {
  Engine engine;
  int steps = 0;
  auto task = [](Engine& e, int& counter) -> SimTask {
    co_await e.delay(0);
    ++counter;
    co_await e.delay(0);
    ++counter;
  };
  engine.spawn(task(engine, steps));
  engine.run();
  EXPECT_EQ(steps, 2);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine;
    std::vector<int> log;
    for (int i = 0; i < 8; ++i) {
      engine.spawn(recorder(engine, log, i, 10 + (i * 37) % 90));
    }
    engine.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

SimTask outerWithSubtask(Engine& engine, std::vector<int>& log);
SubTask innerSteps(Engine& engine, std::vector<int>& log) {
  log.push_back(10);
  co_await engine.delay(5);
  log.push_back(11);
  co_await engine.delay(5);
  log.push_back(12);
}

SimTask outerWithSubtask(Engine& engine, std::vector<int>& log) {
  log.push_back(1);
  co_await innerSteps(engine, log);
  log.push_back(2);
}

TEST(Engine, SubTaskRunsInlineAndReturnsToParent) {
  Engine engine;
  std::vector<int> log;
  const std::size_t id = engine.spawn(outerWithSubtask(engine, log));
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{1, 10, 11, 12, 2}));
  EXPECT_EQ(engine.completionTime(id), 10u);
}

SimTask nestedTwice(Engine& engine, std::vector<int>& log) {
  co_await innerSteps(engine, log);
  co_await innerSteps(engine, log);
  log.push_back(99);
}

TEST(Engine, SubTaskReusableSequentially) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(nestedTwice(engine, log));
  engine.run();
  ASSERT_EQ(log.size(), 7u);
  EXPECT_EQ(log.back(), 99);
  EXPECT_EQ(engine.makespan(), 20u);
}

TEST(ResourceTimeline, IdleResourceServesImmediately) {
  ResourceTimeline r;
  EXPECT_EQ(r.acquire(100, 10), 110u);
  EXPECT_EQ(r.nextFree(), 110u);
}

TEST(ResourceTimeline, BackToBackRequestsQueue) {
  ResourceTimeline r;
  EXPECT_EQ(r.acquire(0, 10), 10u);
  EXPECT_EQ(r.acquire(0, 10), 20u);   // waits for the first
  EXPECT_EQ(r.acquire(5, 10), 30u);   // still queued
  EXPECT_EQ(r.acquire(100, 10), 110u);  // idle gap
}

TEST(ResourceTimeline, TracksUtilization) {
  ResourceTimeline r;
  r.acquire(0, 10);
  r.acquire(0, 15);
  EXPECT_EQ(r.totalBusy(), 25u);
  EXPECT_EQ(r.requests(), 2u);
}

TEST(Engine, EventCountTracked) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 0, 5));
  engine.run();
  EXPECT_GE(engine.eventsProcessed(), 2u);
}

TEST(Engine, NextEventTimeTracksQueue) {
  Engine engine;
  EXPECT_EQ(engine.nextEventTime(), Engine::kNever);
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 0, 25));  // first resume queued at t=0
  EXPECT_EQ(engine.nextEventTime(), 0u);
  engine.run();
  EXPECT_EQ(engine.nextEventTime(), Engine::kNever);
}

TEST(Engine, NextEventTimeSeesEarliestOfMany) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 0, 70), /*start=*/40);
  engine.spawn(recorder(engine, log, 1, 70), /*start=*/10);
  EXPECT_EQ(engine.nextEventTime(), 10u);
}

TEST(Engine, ReserveEventsPreservesOrdering) {
  Engine engine;
  engine.reserveEvents(1024);
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 300));
  engine.spawn(recorder(engine, log, 2, 100));
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{2, 102, 1, 101}));
}

TEST(Engine, WallClockInstrumentation) {
  Engine engine;
  std::vector<int> log;
  for (int i = 0; i < 16; ++i) engine.spawn(recorder(engine, log, i, 10 + i));
  EXPECT_EQ(engine.wallSeconds(), 0.0);
  engine.run();
  EXPECT_GT(engine.wallSeconds(), 0.0);
  EXPECT_GT(engine.eventsPerSecond(), 0.0);
}

}  // namespace
}  // namespace hsm::sim

// Tests for the discrete-event kernel: ordering, determinism, coroutine
// tasks, subtasks, resource timelines.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

namespace hsm::sim {
namespace {

SimTask recorder(Engine& engine, std::vector<int>& log, int id, Tick delay) {
  co_await engine.delay(delay);
  log.push_back(id);
  co_await engine.delay(delay);
  log.push_back(id + 100);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 300));
  engine.spawn(recorder(engine, log, 2, 100));
  engine.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], 2);    // t=100
  EXPECT_EQ(log[1], 102);  // t=200
  EXPECT_EQ(log[2], 1);    // t=300
  EXPECT_EQ(log[3], 101);  // t=600
}

TEST(Engine, TieBreaksByTaskId) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 100));  // task 0
  engine.spawn(recorder(engine, log, 2, 100));  // task 1
  engine.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], 1);
  EXPECT_EQ(log[1], 2);
}

SimTask twoStep(Engine& engine, std::vector<int>& log, int id, Tick first,
                Tick second) {
  co_await engine.delay(first);
  log.push_back(id);
  co_await engine.delay(second);
  log.push_back(id + 100);
}

// The ordering contract (engine.h): equal-Tick events resume in ascending
// task id, NOT in the order the events were inserted. Task 0's t=40 event is
// inserted at t=30, after task 1 inserted its own t=40 event at t=10 — task 0
// must still resume first. Event coalescing changes insertion sequences, so
// anything downstream of an equal-Tick collision depends on this.
TEST(Engine, EqualTickResumeFollowsTaskIdNotInsertionOrder) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(twoStep(engine, log, 0, 30, 10));  // task 0: events at 30, 40
  engine.spawn(twoStep(engine, log, 1, 10, 30));  // task 1: events at 10, 40
  engine.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], 1);    // t=10
  EXPECT_EQ(log[1], 0);    // t=30
  EXPECT_EQ(log[2], 100);  // t=40: task 0 before task 1 despite later insertion
  EXPECT_EQ(log[3], 101);  // t=40
}

// Same contract with many tasks colliding on one Tick: the first-leg delays
// descend with task id, so the collision events are inserted in exactly
// reversed task order; resume order must come out ascending anyway.
TEST(Engine, EqualTickCollisionResumesInTaskIdOrderAcrossManyTasks) {
  Engine engine;
  std::vector<int> log;
  constexpr int kTasks = 6;
  constexpr Tick kCollision = 100;
  for (int i = 0; i < kTasks; ++i) {
    const Tick first = kCollision - static_cast<Tick>(i + 1) * 10;
    engine.spawn(twoStep(engine, log, i, first, kCollision - first));
  }
  engine.run();
  ASSERT_EQ(log.size(), 2u * kTasks);
  // Second half of the log is the collision at t=100: ascending task id.
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(kTasks + i)], i + 100);
  }
}

// --- per-resource horizons ---------------------------------------------------

SimTask probeHorizons(Engine& engine, Tick wait, std::vector<Tick>& out) {
  co_await engine.delay(wait);
  out.push_back(engine.nextEventTimeFor(0));
  out.push_back(engine.nextEventTimeFor(1));
  out.push_back(engine.nextEventTime());
}

SimTask idleUntil(Engine& engine, Tick when) { co_await engine.resumeAt(when); }

TEST(Engine, NextEventTimeForScopesHorizonToResource) {
  Engine engine;
  engine.registerResources(2);
  std::vector<Tick> horizons;
  engine.spawn(idleUntil(engine, 500), 0, /*resource=*/0);   // task 0 on res 0
  engine.spawn(probeHorizons(engine, 40, horizons), 0, 1);   // task 1 on res 1
  engine.run();
  ASSERT_EQ(horizons.size(), 3u);
  EXPECT_EQ(horizons[0], 500u);            // res 0: task 0 pending at 500
  EXPECT_EQ(horizons[1], Engine::kNever);  // res 1: only the probe itself
  EXPECT_EQ(horizons[2], 500u);            // global sees everything
}

TEST(Engine, UnaffinedTaskBoundsEveryHorizon) {
  Engine engine;
  engine.registerResources(2);
  std::vector<Tick> horizons;
  engine.spawn(idleUntil(engine, 200));                      // unaffined
  engine.spawn(probeHorizons(engine, 40, horizons), 0, 1);
  engine.run();
  ASSERT_EQ(horizons.size(), 3u);
  EXPECT_EQ(horizons[0], 200u);
  EXPECT_EQ(horizons[1], 200u);
}

/// Parks the coroutine without scheduling any wake: from the engine's view
/// the task is alive but has no pending event (like a lock/barrier waiter).
struct ParkAwaiter {
  std::coroutine_handle<>* slot;
  std::size_t* task;
  Engine* engine;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    *slot = h;
    *task = engine->currentTaskId();
  }
  void await_resume() const noexcept {}
};

SimTask parkThenFinish(Engine& engine, std::coroutine_handle<>& slot,
                       std::size_t& task) {
  co_await ParkAwaiter{&slot, &task, &engine};
}

SimTask wakeParked(Engine& engine, Tick at, std::coroutine_handle<>& slot,
                   std::size_t& task) {
  co_await engine.resumeAt(at);
  engine.schedule(engine.now(), slot, task);
}

// A blocked task in a resource's affinity class forces that resource's
// horizon back to the global one: its wake may be scheduled by any event,
// including one from another resource's task.
TEST(Engine, BlockedTaskForcesGlobalHorizonFallback) {
  Engine engine;
  engine.registerResources(2);
  std::coroutine_handle<> parked;
  std::size_t parked_task = Engine::kNoTask;
  std::vector<Tick> horizons;
  engine.spawn(parkThenFinish(engine, parked, parked_task), 0, 0);  // blocks on res 0
  engine.spawn(idleUntil(engine, 900), 0, 0);                       // res 0 pending @900
  engine.spawn(probeHorizons(engine, 40, horizons), 0, 1);          // probe on res 1
  engine.spawn(wakeParked(engine, 700, parked, parked_task), 0, 1);
  engine.run();
  ASSERT_EQ(horizons.size(), 3u);
  // Res 0's only pending event is at 900, but the parked task makes the
  // horizon collapse to the global next event — the res-1 waker at 700.
  EXPECT_EQ(horizons[0], 700u);
  // Res 1 has no blocked task: scoped to its own pending waker.
  EXPECT_EQ(horizons[1], 700u);
  EXPECT_EQ(horizons[2], 700u);
}

// A host-scheduled event (no task context) files as a pending unaffined
// entry without a matching alive counter; it must not cancel a genuinely
// blocked unaffined task out of the alive-minus-pending computation and
// thereby skip the global-horizon fallback.
TEST(Engine, HostScheduledEventsDoNotMaskBlockedTasks) {
  Engine engine;
  engine.registerResources(2);
  std::coroutine_handle<> parked;
  std::size_t parked_task = Engine::kNoTask;
  engine.spawn(parkThenFinish(engine, parked, parked_task));  // unaffined
  engine.run();  // drains: the task is now parked (blocked) at t=0
  engine.schedule(60, parked);          // host wake, uncounted unaffined @60
  engine.spawn(idleUntil(engine, 45), 0, 0);  // res-0 task pending @0
  // Res 1's horizon must fall back to the global next event (0): the parked
  // unaffined task is still blocked, host event notwithstanding. Without the
  // uncounted-pending tally this would read 60 (the unaffined bucket min).
  EXPECT_EQ(engine.nextEventTimeFor(1), 0u);
  EXPECT_EQ(engine.nextEventTime(), 0u);
  engine.run();
  EXPECT_EQ(engine.now(), 60u);
}

// --- reach sets (unified resource namespace) ---------------------------------

TEST(Engine, ReachSetBoundsEveryDeclaredResource) {
  Engine engine;
  engine.registerResources(3);
  std::vector<Tick> horizons;
  engine.spawnReaching(idleUntil(engine, 500), 0, {0, 2});  // task 0 reaches 0 and 2
  engine.spawn(probeHorizons(engine, 40, horizons), 0, 1);
  engine.run();
  ASSERT_EQ(horizons.size(), 3u);
  EXPECT_EQ(horizons[0], 500u);            // res 0: reached by task 0
  EXPECT_EQ(horizons[1], Engine::kNever);  // res 1: only the probe itself
  EXPECT_EQ(horizons[2], 500u);            // global
}

TEST(Engine, UnregisteredIdInReachSetDegradesToUniversal) {
  Engine engine;
  engine.registerResources(2);
  std::vector<Tick> horizons;
  engine.spawnReaching(idleUntil(engine, 300), 0, {0, 99});  // 99 unregistered
  engine.spawn(probeHorizons(engine, 40, horizons), 0, 1);
  engine.run();
  ASSERT_EQ(horizons.size(), 3u);
  EXPECT_EQ(horizons[0], 300u);  // universal reach bounds every horizon
  EXPECT_EQ(horizons[1], 300u);
}

// --- sync-aware wake-chain horizons ------------------------------------------

/// Parks the coroutine and registers it as blocked on `sync` (exactly what
/// TasLock/SyncBarrier do for their waiters).
struct ParkOnSyncAwaiter {
  std::coroutine_handle<>* slot;
  std::size_t* task;
  Engine* engine;
  std::uint32_t sync;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    *slot = h;
    *task = engine->currentTaskId();
    engine->blockOnSync(*task, sync);
  }
  void await_resume() const noexcept {}
};

SimTask parkOnSync(Engine& engine, std::uint32_t sync, std::coroutine_handle<>& slot,
                   std::size_t& task) {
  co_await ParkOnSyncAwaiter{&slot, &task, &engine, sync};
}

SimTask probeOne(Engine& engine, Tick at, std::uint32_t resource,
                 std::vector<Tick>& out) {
  co_await engine.resumeAt(at);
  out.push_back(engine.nextEventTimeFor(resource));
}

// The satellite case: a blocked-on-lock task reaching the queried resource,
// whose only potential waker is a task that cannot reach that resource and
// runs late. The sync-aware horizon stays narrow (the blocked task cannot be
// woken before its waker runs); the blunt rule would collapse to the global
// next event — here an unrelated early other-resource event.
TEST(Engine, BlockedTaskBoundedByLateWakerKeepsNarrowHorizon) {
  for (const bool sync_aware : {true, false}) {
    Engine engine;
    engine.setSyncAwareHorizon(sync_aware);
    engine.registerResources(2);
    const std::uint32_t lock = engine.registerSyncObject();
    std::coroutine_handle<> parked;
    std::size_t parked_task = Engine::kNoTask;
    std::vector<Tick> horizons;
    engine.spawn(parkOnSync(engine, lock, parked, parked_task), 0, 0);
    engine.spawn(idleUntil(engine, 100), 0, 0);  // res-0 pending @100
    const std::size_t waker =
        engine.spawn(wakeParked(engine, 700, parked, parked_task), 0, 1);
    engine.spawn(idleUntil(engine, 50), 0, 1);  // unrelated res-1 @50
    engine.spawn(probeOne(engine, 40, 0, horizons), 0, 0);
    engine.setSyncWakers(lock, {waker});
    engine.run();
    ASSERT_EQ(horizons.size(), 1u);
    // Sync-aware: min(scoped @100, waker bound @700) = 100. Blunt: the
    // blocked task forces the global next event, the unrelated @50.
    EXPECT_EQ(horizons[0], sync_aware ? 100u : 50u);
  }
}

// A lock whose holder is the probing task itself: the holder cannot release
// mid-batch, so the blocked waiter contributes nothing and the horizon stays
// scoped even though an unrelated event fires much earlier.
TEST(Engine, BlockedTaskWhoseOnlyWakerIsCurrentKeepsNarrowHorizon) {
  Engine engine;
  engine.registerResources(2);
  const std::uint32_t lock = engine.registerSyncObject();
  std::coroutine_handle<> parked;
  std::size_t parked_task = Engine::kNoTask;
  std::vector<Tick> horizons;
  engine.spawn(parkOnSync(engine, lock, parked, parked_task), 0, 0);
  engine.spawn(idleUntil(engine, 100), 0, 0);  // res-0 pending @100
  engine.spawn(idleUntil(engine, 50), 0, 1);   // unrelated res-1 @50
  const std::size_t prober = engine.spawn(probeOne(engine, 40, 0, horizons), 0, 0);
  engine.setSyncWakers(lock, {prober});
  engine.run();
  // Drain leaves the parked task parked; wake it so the run can be reused.
  engine.schedule(engine.now(), parked, parked_task);
  engine.run();
  ASSERT_EQ(horizons.size(), 1u);
  EXPECT_EQ(horizons[0], 100u);
}

TEST(Engine, BlockedTaskWithUnknownWakersForcesGlobalFallback) {
  Engine engine;
  engine.registerResources(2);
  const std::uint32_t lock = engine.registerSyncObject();  // wakers never set
  std::coroutine_handle<> parked;
  std::size_t parked_task = Engine::kNoTask;
  std::vector<Tick> horizons;
  engine.spawn(parkOnSync(engine, lock, parked, parked_task), 0, 0);
  engine.spawn(idleUntil(engine, 100), 0, 0);
  engine.spawn(idleUntil(engine, 50), 0, 1);
  engine.spawn(probeOne(engine, 40, 0, horizons), 0, 0);
  engine.run();
  engine.schedule(engine.now(), parked, parked_task);
  engine.run();
  ASSERT_EQ(horizons.size(), 1u);
  EXPECT_EQ(horizons[0], 50u);  // global fallback
}

// Wake chains recurse: the blocked task's waker is itself blocked on a
// second sync object whose waker runs at 800 on another resource. The
// horizon is bounded by the end of the chain, not the global next event.
TEST(Engine, WakeChainRecursesThroughBlockedWakers) {
  Engine engine;
  engine.registerResources(2);
  const std::uint32_t lock_a = engine.registerSyncObject();
  const std::uint32_t lock_b = engine.registerSyncObject();
  std::coroutine_handle<> parked_a;
  std::size_t task_a = Engine::kNoTask;
  std::coroutine_handle<> parked_b;
  std::size_t task_b = Engine::kNoTask;
  std::vector<Tick> horizons;
  engine.spawn(parkOnSync(engine, lock_a, parked_a, task_a), 0, 0);
  const std::size_t chained =
      engine.spawn(parkOnSync(engine, lock_b, parked_b, task_b), 0, 1);
  engine.spawn(idleUntil(engine, 900), 0, 0);  // res-0 pending @900
  const std::size_t releaser =
      engine.spawn(wakeParked(engine, 800, parked_b, task_b), 0, 1);
  engine.spawn(idleUntil(engine, 50), 0, 1);  // unrelated res-1 @50
  engine.spawn(probeOne(engine, 40, 0, horizons), 0, 0);
  engine.setSyncWakers(lock_a, {chained});
  engine.setSyncWakers(lock_b, {releaser});
  engine.run();
  engine.schedule(engine.now(), parked_a, task_a);
  engine.run();
  ASSERT_EQ(horizons.size(), 1u);
  // min(scoped @900, chain: chained's waker runs @800) = 800, not global 50.
  EXPECT_EQ(horizons[0], 800u);
}

// The kAll rule (barriers): the wake needs EVERY waker to have run, so the
// bound is the latest of their earliest executions; kAny (locks) keeps the
// earliest.
TEST(Engine, AllWakersRuleBoundsByLatestWaker) {
  for (const Engine::WakerRule rule :
       {Engine::WakerRule::kAny, Engine::WakerRule::kAll}) {
    Engine engine;
    engine.registerResources(2);
    const std::uint32_t barrier = engine.registerSyncObject();
    std::coroutine_handle<> parked;
    std::size_t parked_task = Engine::kNoTask;
    std::vector<Tick> horizons;
    engine.spawn(parkOnSync(engine, barrier, parked, parked_task), 0, 0);
    const std::size_t w1 = engine.spawn(idleUntil(engine, 100), 0, 1);
    const std::size_t w2 = engine.spawn(idleUntil(engine, 600), 0, 1);
    engine.spawn(idleUntil(engine, 400), 0, 0);  // res-0 pending @400
    engine.spawn(probeOne(engine, 40, 0, horizons), 0, 0);
    engine.setSyncWakers(barrier, {w1, w2}, rule);
    engine.run();
    engine.schedule(engine.now(), parked, parked_task);
    engine.run();
    ASSERT_EQ(horizons.size(), 1u);
    // kAll: min(scoped @400, max(100, 600)) = 400.
    // kAny: min(scoped @400, min(100, 600)) = 100.
    EXPECT_EQ(horizons[0], rule == Engine::WakerRule::kAll ? 400u : 100u);
  }
}

// --- episodic waker sets (barrier episode upkeep) ----------------------------

// setSyncEpisodeWakers declares the full membership once; removeSyncWaker
// stamps a member out for the CURRENT episode only. Semantics must match
// what a full setSyncWakers rebuild without the removed member would give.
TEST(Engine, EpisodicRemovalMatchesRebuiltWakerSet) {
  Engine engine;
  engine.registerResources(2);
  const std::uint32_t barrier = engine.registerSyncObject();
  std::coroutine_handle<> parked;
  std::size_t parked_task = Engine::kNoTask;
  std::vector<Tick> horizons;
  engine.spawn(parkOnSync(engine, barrier, parked, parked_task), 0, 0);
  const std::size_t w1 = engine.spawn(idleUntil(engine, 100), 0, 1);
  const std::size_t w2 = engine.spawn(idleUntil(engine, 600), 0, 1);
  engine.spawn(idleUntil(engine, 400), 0, 0);  // res-0 pending @400
  engine.spawn(probeOne(engine, 40, 0, horizons), 0, 0);
  engine.setSyncEpisodeWakers(barrier, {w1, w2}, Engine::WakerRule::kAll);
  // w2 "arrived": only w1 remains a potential waker, so the kAll bound drops
  // from max(100, 600) = 600 to 100 and undercuts the scoped @400.
  engine.removeSyncWaker(barrier, w2);
  engine.run();
  engine.schedule(engine.now(), parked, parked_task);
  engine.run();
  ASSERT_EQ(horizons.size(), 1u);
  EXPECT_EQ(horizons[0], 100u);
}

// A new episode restores full membership in O(1): after resetSyncEpisode the
// previously removed member counts again, exactly as if the set had been
// rebuilt from scratch.
TEST(Engine, ResetSyncEpisodeRestoresFullMembership) {
  Engine engine;
  engine.registerResources(2);
  const std::uint32_t barrier = engine.registerSyncObject();
  std::coroutine_handle<> parked;
  std::size_t parked_task = Engine::kNoTask;
  std::vector<Tick> horizons;
  engine.spawn(parkOnSync(engine, barrier, parked, parked_task), 0, 0);
  const std::size_t w1 = engine.spawn(idleUntil(engine, 100), 0, 1);
  const std::size_t w2 = engine.spawn(idleUntil(engine, 600), 0, 1);
  engine.spawn(idleUntil(engine, 400), 0, 0);
  engine.spawn(probeOne(engine, 40, 0, horizons), 0, 0);
  engine.setSyncEpisodeWakers(barrier, {w1, w2}, Engine::WakerRule::kAll);
  engine.removeSyncWaker(barrier, w2);
  engine.resetSyncEpisode(barrier);  // next episode: w2 is a waker again
  engine.run();
  engine.schedule(engine.now(), parked, parked_task);
  engine.run();
  ASSERT_EQ(horizons.size(), 1u);
  // Full set again: min(scoped @400, max(100, 600)) = 400.
  EXPECT_EQ(horizons[0], 400u);
}

// Removal stamps from an earlier episode must not leak into the next one,
// and re-removal after a reset must work (the generation counter, not the
// membership vector, carries the state).
TEST(Engine, EpisodicRemovalIsPerEpisode) {
  Engine engine;
  engine.registerResources(2);
  const std::uint32_t barrier = engine.registerSyncObject();
  std::coroutine_handle<> parked;
  std::size_t parked_task = Engine::kNoTask;
  std::vector<Tick> horizons;
  engine.spawn(parkOnSync(engine, barrier, parked, parked_task), 0, 0);
  const std::size_t w1 = engine.spawn(idleUntil(engine, 100), 0, 1);
  const std::size_t w2 = engine.spawn(idleUntil(engine, 600), 0, 1);
  engine.spawn(idleUntil(engine, 400), 0, 0);
  engine.spawn(probeOne(engine, 40, 0, horizons), 0, 0);
  engine.setSyncEpisodeWakers(barrier, {w1, w2}, Engine::WakerRule::kAll);
  engine.removeSyncWaker(barrier, w2);
  engine.resetSyncEpisode(barrier);
  engine.removeSyncWaker(barrier, w2);  // re-removed in the NEW episode
  engine.run();
  engine.schedule(engine.now(), parked, parked_task);
  engine.run();
  ASSERT_EQ(horizons.size(), 1u);
  EXPECT_EQ(horizons[0], 100u);  // only w1 remains, as in the first test
}

// The recursion-path regression: a waker reached through two sibling
// subtrees of a kAll sync (w1's chain goes through w2; w2 is also a direct
// waker) must not be mistaken for a cycle on the second visit — the chain
// can fire, bounded by the pending event at its end.
TEST(Engine, SharedWakerAcrossSiblingSubtreesIsNotACycle) {
  Engine engine;
  engine.registerResources(2);
  const std::uint32_t barrier = engine.registerSyncObject();
  const std::uint32_t lock_1 = engine.registerSyncObject();
  const std::uint32_t lock_2 = engine.registerSyncObject();
  std::coroutine_handle<> parked_b;
  std::size_t task_b = Engine::kNoTask;
  std::coroutine_handle<> parked_w1;
  std::size_t task_w1 = Engine::kNoTask;
  std::coroutine_handle<> parked_w2;
  std::size_t task_w2 = Engine::kNoTask;
  std::vector<Tick> horizons;
  engine.spawn(parkOnSync(engine, barrier, parked_b, task_b), 0, 0);
  const std::size_t w1 =
      engine.spawn(parkOnSync(engine, lock_1, parked_w1, task_w1), 0, 1);
  const std::size_t w2 =
      engine.spawn(parkOnSync(engine, lock_2, parked_w2, task_w2), 0, 1);
  const std::size_t w3 = engine.spawn(idleUntil(engine, 800), 0, 1);
  engine.spawn(idleUntil(engine, 900), 0, 0);  // res-0 pending @900
  engine.spawn(idleUntil(engine, 50), 0, 1);   // unrelated res-1 @50
  engine.spawn(probeOne(engine, 40, 0, horizons), 0, 0);
  engine.setSyncWakers(barrier, {w1, w2}, Engine::WakerRule::kAll);
  engine.setSyncWakers(lock_1, {w2});
  engine.setSyncWakers(lock_2, {w3});
  engine.run();
  for (auto [h, t] : {std::pair{parked_w2, task_w2}, std::pair{parked_w1, task_w1},
                      std::pair{parked_b, task_b}}) {
    engine.schedule(engine.now(), h, t);
    engine.run();
  }
  ASSERT_EQ(horizons.size(), 1u);
  // Both kAll subtrees bottom out at w3's pending event: max(800, 800),
  // min'd with the scoped res-0 event @900. A false cycle would yield 900.
  EXPECT_EQ(horizons[0], 800u);
}

// A kAll sync whose required wakers include the running task can never
// release mid-batch: the blocked waiter contributes nothing at all.
TEST(Engine, AllWakersRuleWithCurrentTaskRequiredNeverFiresMidBatch) {
  Engine engine;
  engine.registerResources(2);
  const std::uint32_t barrier = engine.registerSyncObject();
  std::coroutine_handle<> parked;
  std::size_t parked_task = Engine::kNoTask;
  std::vector<Tick> horizons;
  engine.spawn(parkOnSync(engine, barrier, parked, parked_task), 0, 0);
  const std::size_t w1 = engine.spawn(idleUntil(engine, 10), 0, 1);  // early waker
  engine.spawn(idleUntil(engine, 400), 0, 0);
  const std::size_t prober = engine.spawn(probeOne(engine, 40, 0, horizons), 0, 0);
  engine.setSyncWakers(barrier, {w1, prober}, Engine::WakerRule::kAll);
  engine.run();
  engine.schedule(engine.now(), parked, parked_task);
  engine.run();
  ASSERT_EQ(horizons.size(), 1u);
  EXPECT_EQ(horizons[0], 400u);  // only the scoped pending event remains
}

TEST(Engine, CompletionTimesRecorded) {
  Engine engine;
  std::vector<int> log;
  const std::size_t a = engine.spawn(recorder(engine, log, 1, 50));
  const std::size_t b = engine.spawn(recorder(engine, log, 2, 200));
  engine.run();
  EXPECT_EQ(engine.completionTime(a), 100u);
  EXPECT_EQ(engine.completionTime(b), 400u);
  EXPECT_EQ(engine.makespan(), 400u);
}

TEST(Engine, NowAdvancesMonotonically) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 10));
  EXPECT_EQ(engine.now(), 0u);
  engine.run();
  EXPECT_EQ(engine.now(), 20u);
}

TEST(Engine, ZeroDelayContinuesInline) {
  Engine engine;
  int steps = 0;
  auto task = [](Engine& e, int& counter) -> SimTask {
    co_await e.delay(0);
    ++counter;
    co_await e.delay(0);
    ++counter;
  };
  engine.spawn(task(engine, steps));
  engine.run();
  EXPECT_EQ(steps, 2);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine;
    std::vector<int> log;
    for (int i = 0; i < 8; ++i) {
      engine.spawn(recorder(engine, log, i, 10 + (i * 37) % 90));
    }
    engine.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

SimTask outerWithSubtask(Engine& engine, std::vector<int>& log);
SubTask innerSteps(Engine& engine, std::vector<int>& log) {
  log.push_back(10);
  co_await engine.delay(5);
  log.push_back(11);
  co_await engine.delay(5);
  log.push_back(12);
}

SimTask outerWithSubtask(Engine& engine, std::vector<int>& log) {
  log.push_back(1);
  co_await innerSteps(engine, log);
  log.push_back(2);
}

TEST(Engine, SubTaskRunsInlineAndReturnsToParent) {
  Engine engine;
  std::vector<int> log;
  const std::size_t id = engine.spawn(outerWithSubtask(engine, log));
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{1, 10, 11, 12, 2}));
  EXPECT_EQ(engine.completionTime(id), 10u);
}

SimTask nestedTwice(Engine& engine, std::vector<int>& log) {
  co_await innerSteps(engine, log);
  co_await innerSteps(engine, log);
  log.push_back(99);
}

TEST(Engine, SubTaskReusableSequentially) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(nestedTwice(engine, log));
  engine.run();
  ASSERT_EQ(log.size(), 7u);
  EXPECT_EQ(log.back(), 99);
  EXPECT_EQ(engine.makespan(), 20u);
}

TEST(ResourceTimeline, IdleResourceServesImmediately) {
  ResourceTimeline r;
  EXPECT_EQ(r.acquire(100, 10), 110u);
  EXPECT_EQ(r.nextFree(), 110u);
}

TEST(ResourceTimeline, BackToBackRequestsQueue) {
  ResourceTimeline r;
  EXPECT_EQ(r.acquire(0, 10), 10u);
  EXPECT_EQ(r.acquire(0, 10), 20u);   // waits for the first
  EXPECT_EQ(r.acquire(5, 10), 30u);   // still queued
  EXPECT_EQ(r.acquire(100, 10), 110u);  // idle gap
}

TEST(ResourceTimeline, TracksUtilization) {
  ResourceTimeline r;
  r.acquire(0, 10);
  r.acquire(0, 15);
  EXPECT_EQ(r.totalBusy(), 25u);
  EXPECT_EQ(r.requests(), 2u);
}

TEST(Engine, EventCountTracked) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 0, 5));
  engine.run();
  EXPECT_GE(engine.eventsProcessed(), 2u);
}

TEST(Engine, NextEventTimeTracksQueue) {
  Engine engine;
  EXPECT_EQ(engine.nextEventTime(), Engine::kNever);
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 0, 25));  // first resume queued at t=0
  EXPECT_EQ(engine.nextEventTime(), 0u);
  engine.run();
  EXPECT_EQ(engine.nextEventTime(), Engine::kNever);
}

TEST(Engine, NextEventTimeSeesEarliestOfMany) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 0, 70), /*start=*/40);
  engine.spawn(recorder(engine, log, 1, 70), /*start=*/10);
  EXPECT_EQ(engine.nextEventTime(), 10u);
}

TEST(Engine, ReserveEventsPreservesOrdering) {
  Engine engine;
  engine.reserveEvents(1024);
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 300));
  engine.spawn(recorder(engine, log, 2, 100));
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{2, 102, 1, 101}));
}

TEST(Engine, WallClockInstrumentation) {
  Engine engine;
  std::vector<int> log;
  for (int i = 0; i < 16; ++i) engine.spawn(recorder(engine, log, i, 10 + i));
  EXPECT_EQ(engine.hostWallSeconds(), 0.0);
  engine.run();
  // The host-domain wall clock lives on in the metrics registry as
  // wall_seconds / events_per_second (sim/obs/metrics.h); the engine keeps
  // only the raw seconds.
  EXPECT_GT(engine.hostWallSeconds(), 0.0);
  EXPECT_GT(engine.eventsProcessed(), 0u);
}

// --- robustness / no-progress detection --------------------------------------

/// Suspend forever without scheduling a resume: the task stays alive with no
/// pending event — the shape of a wedged core or a host-woken park.
struct ParkForever {
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> /*h*/) const noexcept {}
  void await_resume() const noexcept {}
};

SimTask parkAfter(Engine& engine, Tick when) {
  co_await engine.delay(when);
  co_await ParkForever{};
}

SimTask parkOnSyncAfter(Engine& engine, std::uint32_t sync, Tick when) {
  co_await engine.delay(when);
  engine.blockOnSync(engine.currentTaskId(), sync);
  co_await ParkForever{};
}

// Default behavior is unchanged: a bare Engine legitimately parks tasks
// across run() calls (host code schedules their wakes later), so a drain
// with unfinished tasks returns normally unless hang detection is enabled.
TEST(Engine, ParkedTaskReturnsNormallyByDefault) {
  Engine engine;
  engine.spawn(parkAfter(engine, 10));
  EXPECT_EQ(engine.run(), 10u);
  EXPECT_EQ(engine.unfinishedTasks(), 1u);
}

TEST(Engine, HangDetectionThrowsDeadlockWithWaitForGraph) {
  Engine engine;
  engine.setHangDetection(true);
  const std::uint32_t sync = engine.registerSyncObject();
  engine.spawn(parkOnSyncAfter(engine, sync, 10));  // task 0: blocked on sync
  engine.spawn(parkAfter(engine, 20));              // task 1: wedged, no sync
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 7, 5));        // task 2: completes
  engine.setSyncWakers(sync, {1});
  try {
    engine.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_EQ(e.kind(), SimHangError::Kind::kDeadlock);
    ASSERT_EQ(e.report().waiters.size(), 2u);  // the finished task is absent
    const HangReport::Waiter& blocked = e.report().waiters[0];
    EXPECT_EQ(blocked.task, 0u);
    EXPECT_EQ(blocked.sync, sync);
    EXPECT_EQ(blocked.blocked_since, 10u);
    EXPECT_TRUE(blocked.wakers_known);
    EXPECT_EQ(blocked.wakers, (std::vector<std::size_t>{1}));
    const HangReport::Waiter& wedged = e.report().waiters[1];
    EXPECT_EQ(wedged.task, 1u);
    EXPECT_EQ(wedged.sync, Engine::kNoSync);
    EXPECT_NE(std::string(e.what()).find("blocked on sync"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("unknown mechanism"), std::string::npos);
  }
}

TEST(Engine, HangDetectionPassesCleanCompletion) {
  Engine engine;
  engine.setHangDetection(true);
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 100));
  EXPECT_NO_THROW(engine.run());
}

TEST(Engine, SyncTimeoutThrowsOnOverstayedPark) {
  Engine engine;
  engine.setSyncTimeout(50);
  const std::uint32_t sync = engine.registerSyncObject();
  engine.spawn(parkOnSyncAfter(engine, sync, 10));  // parks at t=10
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 100));  // events at t=100, t=200
  // The t=100 event resumes with the park 90 ticks old: 90 > 50 ⇒ throw.
  EXPECT_THROW(engine.run(), SyncTimeout);
}

TEST(Engine, SyncTimeoutSparesWaitsWithinBudget) {
  Engine engine;
  engine.setSyncTimeout(500);
  const std::uint32_t sync = engine.registerSyncObject();
  engine.spawn(parkOnSyncAfter(engine, sync, 10));
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 100));  // longest gap after park: 190
  EXPECT_NO_THROW(engine.run());
}

TEST(Engine, WatchdogThrowsOnSameTickEventStorm) {
  Engine engine;
  engine.setWatchdogEventLimit(5);
  std::vector<int> log;
  // 10 tasks × 2 events each, ALL at t=100 then t=200 (recorder's two delays
  // of 100): 19 consecutive events fire with now_ stuck at 100.
  for (int i = 0; i < 10; ++i) engine.spawn(recorder(engine, log, i, 100));
  EXPECT_THROW(engine.run(), WatchdogError);
}

TEST(Engine, WatchdogSparesBoundedSameTickBursts) {
  Engine engine;
  engine.setWatchdogEventLimit(50);  // above the 19-event burst
  std::vector<int> log;
  for (int i = 0; i < 10; ++i) engine.spawn(recorder(engine, log, i, 100));
  EXPECT_NO_THROW(engine.run());
  EXPECT_EQ(log.size(), 20u);
}

// --- conservative-PDES lanes (engine_lanes > 1) ------------------------------

/// Result bundle for comparing one workload construction across lane counts.
struct LaneRun {
  Tick makespan = 0;
  std::uint32_t lanes_used = 0;
  std::uint64_t events = 0;
  std::vector<std::uint64_t> lane_events;
  std::vector<std::vector<int>> logs;
  std::vector<Tick> completions;
};

/// Four disjoint components (one per resource), each with two tasks whose
/// second events collide on one Tick — the equal-Tick task-id contract must
/// hold inside a lane exactly as it does on the sequential loop. Per-resource
/// stagger keeps the component makespans distinct.
LaneRun runFourComponentWorkload(std::uint32_t lanes) {
  Engine engine;
  engine.setEngineLanes(lanes);
  engine.registerResources(4);
  LaneRun r;
  r.logs.resize(4);
  std::vector<std::size_t> ids;
  for (std::uint32_t res = 0; res < 4; ++res) {
    const Tick stagger = static_cast<Tick>(res) * 7;
    // Later task id inserts its collision event FIRST (see
    // EqualTickResumeFollowsTaskIdNotInsertionOrder); resume order must come
    // out ascending anyway.
    ids.push_back(engine.spawn(
        twoStep(engine, r.logs[res], static_cast<int>(10 * res), 30 + stagger, 10),
        0, res));
    ids.push_back(engine.spawn(
        twoStep(engine, r.logs[res], static_cast<int>(10 * res + 1), 10 + stagger, 30),
        0, res));
  }
  r.makespan = engine.run();
  r.lanes_used = engine.lanesUsed();
  r.events = engine.eventsProcessed();
  r.lane_events = engine.laneEventCounts();
  for (const std::size_t id : ids) r.completions.push_back(engine.completionTime(id));
  return r;
}

TEST(EngineLanes, ParallelRunBitIdenticalToSequential) {
  const LaneRun seq = runFourComponentWorkload(1);
  ASSERT_EQ(seq.lanes_used, 1u);
  EXPECT_TRUE(seq.lane_events.empty());
  for (const std::uint32_t lanes : {2u, 4u}) {
    const LaneRun par = runFourComponentWorkload(lanes);
    EXPECT_EQ(par.lanes_used, lanes);
    EXPECT_EQ(par.makespan, seq.makespan);
    EXPECT_EQ(par.completions, seq.completions);
    EXPECT_EQ(par.logs, seq.logs);  // per-component orders, incl. the collisions
    EXPECT_EQ(par.events, seq.events);
    ASSERT_EQ(par.lane_events.size(), lanes);
    std::uint64_t total = 0;
    for (const std::uint64_t n : par.lane_events) {
      EXPECT_GT(n, 0u);  // every lane got a component
      total += n;
    }
    EXPECT_EQ(total, seq.events);  // telemetry accounts for every event
  }
}

/// A bound sync object whose participants span two reach classes merges them
/// into ONE component: equal-Tick collisions across those classes then happen
/// on one lane and must interleave exactly as the sequential loop would.
/// Returns {merged-pair log, makespan, lanes_used}.
LaneRun runMergedPairWorkload(std::uint32_t lanes) {
  Engine engine;
  engine.setEngineLanes(lanes);
  engine.registerResources(4);
  LaneRun r;
  r.logs.resize(1);
  // Classes 0 and 2 collide at t=40 writing one shared log; binding a sync
  // over their tasks is the lane-partition contract that makes this safe.
  const std::size_t a = engine.spawn(twoStep(engine, r.logs[0], 0, 30, 10), 0, 0);
  const std::size_t b = engine.spawn(twoStep(engine, r.logs[0], 1, 10, 30), 0, 2);
  const std::uint32_t sync = engine.registerSyncObject();
  engine.bindSyncParticipants(sync, {a, b});
  std::vector<int> ignored_1;
  std::vector<int> ignored_3;
  engine.spawn(recorder(engine, ignored_1, 5, 25), 0, 1);
  engine.spawn(recorder(engine, ignored_3, 6, 35), 0, 3);
  r.makespan = engine.run();
  r.lanes_used = engine.lanesUsed();
  return r;
}

TEST(EngineLanes, SyncParticipantsMergeClassesOntoOneLane) {
  const LaneRun seq = runMergedPairWorkload(1);
  const LaneRun par = runMergedPairWorkload(4);
  // {0,2} merged + {1} + {3} = three live components.
  EXPECT_EQ(par.lanes_used, 3u);
  EXPECT_EQ(par.makespan, seq.makespan);
  EXPECT_EQ(par.logs, seq.logs);  // cross-class equal-Tick order preserved
}

/// A waker chain spanning two classes: task W parks on a bound sync, task S
/// (a different reach class, same sync) schedules its wake. The binding keeps
/// the whole chain on one lane; the engine's cross-lane schedule guard would
/// throw if the partition ever split it.
Tick runCrossClassWake(std::uint32_t lanes, std::uint32_t* lanes_used) {
  Engine engine;
  engine.setEngineLanes(lanes);
  engine.registerResources(4);
  std::coroutine_handle<> slot;
  std::size_t parked_task = Engine::kNoTask;
  const std::uint32_t sync = engine.registerSyncObject();
  const std::size_t w = engine.spawn(parkOnSync(engine, sync, slot, parked_task), 0, 0);
  const std::size_t s = engine.spawn(wakeParked(engine, 50, slot, parked_task), 0, 2);
  engine.bindSyncParticipants(sync, {w, s});
  std::vector<int> ignored_1;
  std::vector<int> ignored_3;
  engine.spawn(recorder(engine, ignored_1, 5, 25), 0, 1);
  engine.spawn(recorder(engine, ignored_3, 6, 35), 0, 3);
  engine.run();
  if (lanes_used != nullptr) *lanes_used = engine.lanesUsed();
  return engine.completionTime(w);
}

TEST(EngineLanes, WakerChainAcrossClassesStaysOnOneLane) {
  EXPECT_EQ(runCrossClassWake(1, nullptr), 50u);
  std::uint32_t lanes_used = 0;
  EXPECT_EQ(runCrossClassWake(4, &lanes_used), 50u);
  EXPECT_EQ(lanes_used, 3u);
}

SimTask probeSeries(Engine& engine, std::uint32_t resource, std::vector<Tick>& out) {
  for (int i = 0; i < 4; ++i) {
    co_await engine.delay(25);
    out.push_back(engine.nextEventTimeFor(resource));
  }
}

// Horizon bounds observed from inside a lane are the lane's own component
// state: they must be monotone as the partner's events drain and must match
// the sequential run's probes exactly (bound monotonicity across the run).
TEST(EngineLanes, HorizonBoundsInsideLaneMatchSequentialAndStayMonotone) {
  std::vector<std::vector<Tick>> probes;
  for (const std::uint32_t lanes : {1u, 4u}) {
    Engine engine;
    engine.setEngineLanes(lanes);
    engine.registerResources(4);
    std::vector<Tick>& out = probes.emplace_back();
    engine.spawn(probeSeries(engine, 0, out), 0, 0);  // probes at 25, 50, 75, 100
    std::vector<int> plog;
    engine.spawn(recorder(engine, plog, 9, 40), 0, 0);  // partner events at 40, 80
    for (std::uint32_t res = 1; res < 4; ++res) {
      engine.spawn(idleUntil(engine, 60 + static_cast<Tick>(res)), 0, res);
    }
    engine.run();
    EXPECT_EQ(engine.lanesUsed(), lanes);
    ASSERT_EQ(out.size(), 4u);
    for (std::size_t i = 1; i < out.size(); ++i) EXPECT_GE(out[i], out[i - 1]);
  }
  EXPECT_EQ(probes[0], probes[1]);
  EXPECT_EQ(probes[0], (std::vector<Tick>{40, 80, 80, Engine::kNever}));
}

// A lane that drains with a parked task rejoins it to the global blocked
// list; with hang detection on, the post-join check must surface the same
// wait-for report a sequential run would.
TEST(EngineLanes, DeadlockReportSurvivesParkedLanes) {
  Engine engine;
  engine.setEngineLanes(2);
  engine.setHangDetection(true);
  engine.registerResources(2);
  const std::uint32_t sync = engine.registerSyncObject();
  const std::size_t blocked_id =
      engine.spawn(parkOnSyncAfter(engine, sync, 10), 0, 0);  // parks, never woken
  engine.bindSyncParticipants(sync, {blocked_id});
  engine.spawn(parkAfter(engine, 20), 0, 1);  // wedged, no sync
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 7, 5), 0, 1);  // completes
  try {
    engine.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_EQ(engine.lanesUsed(), 2u);
    ASSERT_EQ(e.report().waiters.size(), 2u);  // the finished task is absent
    const HangReport::Waiter& blocked = e.report().waiters[0];
    EXPECT_EQ(blocked.task, blocked_id);
    EXPECT_EQ(blocked.sync, sync);
    EXPECT_EQ(blocked.blocked_since, 10u);  // the lane-local park time
    const HangReport::Waiter& wedged = e.report().waiters[1];
    EXPECT_EQ(wedged.task, 1u);
    EXPECT_EQ(wedged.sync, Engine::kNoSync);
  }
}

TEST(EngineLanes, UnboundSyncObjectForcesSequential) {
  Engine engine;
  engine.setEngineLanes(4);
  engine.registerResources(2);
  std::vector<int> log0;
  std::vector<int> log1;
  engine.spawn(recorder(engine, log0, 0, 10), 0, 0);
  engine.spawn(recorder(engine, log1, 1, 20), 0, 1);
  engine.registerSyncObject();  // never bound: any task might take it
  EXPECT_EQ(engine.run(), 40u);
  EXPECT_EQ(engine.lanesUsed(), 1u);
  EXPECT_TRUE(engine.laneEventCounts().empty());
}

TEST(EngineLanes, UnaffinedTaskForcesSequential) {
  Engine engine;
  engine.setEngineLanes(4);
  engine.registerResources(2);
  std::vector<int> log0;
  std::vector<int> log1;
  engine.spawn(recorder(engine, log0, 0, 10), 0, 0);
  engine.spawn(recorder(engine, log1, 1, 20), 0, 1);
  engine.spawn(idleUntil(engine, 15));  // universal reach couples everything
  engine.run();
  EXPECT_EQ(engine.lanesUsed(), 1u);
}

TEST(EngineLanes, PerEventDiagnosticsForceSequential) {
  for (const int knob : {0, 1}) {
    Engine engine;
    engine.setEngineLanes(4);
    engine.registerResources(2);
    if (knob == 0) {
      engine.setSyncTimeout(10'000);  // observes global event order
    } else {
      engine.setWatchdogEventLimit(10'000);
    }
    std::vector<int> log0;
    std::vector<int> log1;
    engine.spawn(recorder(engine, log0, 0, 10), 0, 0);
    engine.spawn(recorder(engine, log1, 1, 20), 0, 1);
    engine.run();
    EXPECT_EQ(engine.lanesUsed(), 1u);
  }
}

TEST(EngineLanes, SingleComponentFallsBackToSequential) {
  Engine engine;
  engine.setEngineLanes(4);
  engine.registerResources(2);
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 0, 10), 0, 0);
  engine.spawn(recorder(engine, log, 1, 20), 0, 0);  // same class: one component
  engine.run();
  EXPECT_EQ(engine.lanesUsed(), 1u);
}

TEST(EngineLanes, NoRegisteredResourcesFallsBackToSequential) {
  Engine engine;
  engine.setEngineLanes(4);
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 0, 10));
  engine.spawn(recorder(engine, log, 1, 20));
  engine.run();
  EXPECT_EQ(engine.lanesUsed(), 1u);
}

TEST(EngineLanes, MoreComponentsThanLanesShareLanesDeterministically) {
  // Four components on two lanes: comp % lane_count pairs {0,2} and {1,3};
  // results must still be bit-identical to sequential (covered above) and
  // both lanes must see work.
  const LaneRun par = runFourComponentWorkload(2);
  EXPECT_EQ(par.lanes_used, 2u);
  ASSERT_EQ(par.lane_events.size(), 2u);
  EXPECT_GT(par.lane_events[0], 0u);
  EXPECT_GT(par.lane_events[1], 0u);
}

}  // namespace
}  // namespace hsm::sim

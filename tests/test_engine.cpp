// Tests for the discrete-event kernel: ordering, determinism, coroutine
// tasks, subtasks, resource timelines.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

namespace hsm::sim {
namespace {

SimTask recorder(Engine& engine, std::vector<int>& log, int id, Tick delay) {
  co_await engine.delay(delay);
  log.push_back(id);
  co_await engine.delay(delay);
  log.push_back(id + 100);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 300));
  engine.spawn(recorder(engine, log, 2, 100));
  engine.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], 2);    // t=100
  EXPECT_EQ(log[1], 102);  // t=200
  EXPECT_EQ(log[2], 1);    // t=300
  EXPECT_EQ(log[3], 101);  // t=600
}

TEST(Engine, TieBreaksByTaskId) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 100));  // task 0
  engine.spawn(recorder(engine, log, 2, 100));  // task 1
  engine.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], 1);
  EXPECT_EQ(log[1], 2);
}

SimTask twoStep(Engine& engine, std::vector<int>& log, int id, Tick first,
                Tick second) {
  co_await engine.delay(first);
  log.push_back(id);
  co_await engine.delay(second);
  log.push_back(id + 100);
}

// The ordering contract (engine.h): equal-Tick events resume in ascending
// task id, NOT in the order the events were inserted. Task 0's t=40 event is
// inserted at t=30, after task 1 inserted its own t=40 event at t=10 — task 0
// must still resume first. Event coalescing changes insertion sequences, so
// anything downstream of an equal-Tick collision depends on this.
TEST(Engine, EqualTickResumeFollowsTaskIdNotInsertionOrder) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(twoStep(engine, log, 0, 30, 10));  // task 0: events at 30, 40
  engine.spawn(twoStep(engine, log, 1, 10, 30));  // task 1: events at 10, 40
  engine.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], 1);    // t=10
  EXPECT_EQ(log[1], 0);    // t=30
  EXPECT_EQ(log[2], 100);  // t=40: task 0 before task 1 despite later insertion
  EXPECT_EQ(log[3], 101);  // t=40
}

// Same contract with many tasks colliding on one Tick: the first-leg delays
// descend with task id, so the collision events are inserted in exactly
// reversed task order; resume order must come out ascending anyway.
TEST(Engine, EqualTickCollisionResumesInTaskIdOrderAcrossManyTasks) {
  Engine engine;
  std::vector<int> log;
  constexpr int kTasks = 6;
  constexpr Tick kCollision = 100;
  for (int i = 0; i < kTasks; ++i) {
    const Tick first = kCollision - static_cast<Tick>(i + 1) * 10;
    engine.spawn(twoStep(engine, log, i, first, kCollision - first));
  }
  engine.run();
  ASSERT_EQ(log.size(), 2u * kTasks);
  // Second half of the log is the collision at t=100: ascending task id.
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(kTasks + i)], i + 100);
  }
}

// --- per-resource horizons ---------------------------------------------------

SimTask probeHorizons(Engine& engine, Tick wait, std::vector<Tick>& out) {
  co_await engine.delay(wait);
  out.push_back(engine.nextEventTimeFor(0));
  out.push_back(engine.nextEventTimeFor(1));
  out.push_back(engine.nextEventTime());
}

SimTask idleUntil(Engine& engine, Tick when) { co_await engine.resumeAt(when); }

TEST(Engine, NextEventTimeForScopesHorizonToResource) {
  Engine engine;
  engine.registerResources(2);
  std::vector<Tick> horizons;
  engine.spawn(idleUntil(engine, 500), 0, /*resource=*/0);   // task 0 on res 0
  engine.spawn(probeHorizons(engine, 40, horizons), 0, 1);   // task 1 on res 1
  engine.run();
  ASSERT_EQ(horizons.size(), 3u);
  EXPECT_EQ(horizons[0], 500u);            // res 0: task 0 pending at 500
  EXPECT_EQ(horizons[1], Engine::kNever);  // res 1: only the probe itself
  EXPECT_EQ(horizons[2], 500u);            // global sees everything
}

TEST(Engine, UnaffinedTaskBoundsEveryHorizon) {
  Engine engine;
  engine.registerResources(2);
  std::vector<Tick> horizons;
  engine.spawn(idleUntil(engine, 200));                      // unaffined
  engine.spawn(probeHorizons(engine, 40, horizons), 0, 1);
  engine.run();
  ASSERT_EQ(horizons.size(), 3u);
  EXPECT_EQ(horizons[0], 200u);
  EXPECT_EQ(horizons[1], 200u);
}

/// Parks the coroutine without scheduling any wake: from the engine's view
/// the task is alive but has no pending event (like a lock/barrier waiter).
struct ParkAwaiter {
  std::coroutine_handle<>* slot;
  std::size_t* task;
  Engine* engine;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    *slot = h;
    *task = engine->currentTaskId();
  }
  void await_resume() const noexcept {}
};

SimTask parkThenFinish(Engine& engine, std::coroutine_handle<>& slot,
                       std::size_t& task) {
  co_await ParkAwaiter{&slot, &task, &engine};
}

SimTask wakeParked(Engine& engine, Tick at, std::coroutine_handle<>& slot,
                   std::size_t& task) {
  co_await engine.resumeAt(at);
  engine.schedule(engine.now(), slot, task);
}

// A blocked task in a resource's affinity class forces that resource's
// horizon back to the global one: its wake may be scheduled by any event,
// including one from another resource's task.
TEST(Engine, BlockedTaskForcesGlobalHorizonFallback) {
  Engine engine;
  engine.registerResources(2);
  std::coroutine_handle<> parked;
  std::size_t parked_task = Engine::kNoTask;
  std::vector<Tick> horizons;
  engine.spawn(parkThenFinish(engine, parked, parked_task), 0, 0);  // blocks on res 0
  engine.spawn(idleUntil(engine, 900), 0, 0);                       // res 0 pending @900
  engine.spawn(probeHorizons(engine, 40, horizons), 0, 1);          // probe on res 1
  engine.spawn(wakeParked(engine, 700, parked, parked_task), 0, 1);
  engine.run();
  ASSERT_EQ(horizons.size(), 3u);
  // Res 0's only pending event is at 900, but the parked task makes the
  // horizon collapse to the global next event — the res-1 waker at 700.
  EXPECT_EQ(horizons[0], 700u);
  // Res 1 has no blocked task: scoped to its own pending waker.
  EXPECT_EQ(horizons[1], 700u);
  EXPECT_EQ(horizons[2], 700u);
}

// A host-scheduled event (no task context) files as a pending unaffined
// entry without a matching alive counter; it must not cancel a genuinely
// blocked unaffined task out of the alive-minus-pending computation and
// thereby skip the global-horizon fallback.
TEST(Engine, HostScheduledEventsDoNotMaskBlockedTasks) {
  Engine engine;
  engine.registerResources(2);
  std::coroutine_handle<> parked;
  std::size_t parked_task = Engine::kNoTask;
  engine.spawn(parkThenFinish(engine, parked, parked_task));  // unaffined
  engine.run();  // drains: the task is now parked (blocked) at t=0
  engine.schedule(60, parked);          // host wake, uncounted unaffined @60
  engine.spawn(idleUntil(engine, 45), 0, 0);  // res-0 task pending @0
  // Res 1's horizon must fall back to the global next event (0): the parked
  // unaffined task is still blocked, host event notwithstanding. Without the
  // uncounted-pending tally this would read 60 (the unaffined bucket min).
  EXPECT_EQ(engine.nextEventTimeFor(1), 0u);
  EXPECT_EQ(engine.nextEventTime(), 0u);
  engine.run();
  EXPECT_EQ(engine.now(), 60u);
}

TEST(Engine, CompletionTimesRecorded) {
  Engine engine;
  std::vector<int> log;
  const std::size_t a = engine.spawn(recorder(engine, log, 1, 50));
  const std::size_t b = engine.spawn(recorder(engine, log, 2, 200));
  engine.run();
  EXPECT_EQ(engine.completionTime(a), 100u);
  EXPECT_EQ(engine.completionTime(b), 400u);
  EXPECT_EQ(engine.makespan(), 400u);
}

TEST(Engine, NowAdvancesMonotonically) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 10));
  EXPECT_EQ(engine.now(), 0u);
  engine.run();
  EXPECT_EQ(engine.now(), 20u);
}

TEST(Engine, ZeroDelayContinuesInline) {
  Engine engine;
  int steps = 0;
  auto task = [](Engine& e, int& counter) -> SimTask {
    co_await e.delay(0);
    ++counter;
    co_await e.delay(0);
    ++counter;
  };
  engine.spawn(task(engine, steps));
  engine.run();
  EXPECT_EQ(steps, 2);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine;
    std::vector<int> log;
    for (int i = 0; i < 8; ++i) {
      engine.spawn(recorder(engine, log, i, 10 + (i * 37) % 90));
    }
    engine.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

SimTask outerWithSubtask(Engine& engine, std::vector<int>& log);
SubTask innerSteps(Engine& engine, std::vector<int>& log) {
  log.push_back(10);
  co_await engine.delay(5);
  log.push_back(11);
  co_await engine.delay(5);
  log.push_back(12);
}

SimTask outerWithSubtask(Engine& engine, std::vector<int>& log) {
  log.push_back(1);
  co_await innerSteps(engine, log);
  log.push_back(2);
}

TEST(Engine, SubTaskRunsInlineAndReturnsToParent) {
  Engine engine;
  std::vector<int> log;
  const std::size_t id = engine.spawn(outerWithSubtask(engine, log));
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{1, 10, 11, 12, 2}));
  EXPECT_EQ(engine.completionTime(id), 10u);
}

SimTask nestedTwice(Engine& engine, std::vector<int>& log) {
  co_await innerSteps(engine, log);
  co_await innerSteps(engine, log);
  log.push_back(99);
}

TEST(Engine, SubTaskReusableSequentially) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(nestedTwice(engine, log));
  engine.run();
  ASSERT_EQ(log.size(), 7u);
  EXPECT_EQ(log.back(), 99);
  EXPECT_EQ(engine.makespan(), 20u);
}

TEST(ResourceTimeline, IdleResourceServesImmediately) {
  ResourceTimeline r;
  EXPECT_EQ(r.acquire(100, 10), 110u);
  EXPECT_EQ(r.nextFree(), 110u);
}

TEST(ResourceTimeline, BackToBackRequestsQueue) {
  ResourceTimeline r;
  EXPECT_EQ(r.acquire(0, 10), 10u);
  EXPECT_EQ(r.acquire(0, 10), 20u);   // waits for the first
  EXPECT_EQ(r.acquire(5, 10), 30u);   // still queued
  EXPECT_EQ(r.acquire(100, 10), 110u);  // idle gap
}

TEST(ResourceTimeline, TracksUtilization) {
  ResourceTimeline r;
  r.acquire(0, 10);
  r.acquire(0, 15);
  EXPECT_EQ(r.totalBusy(), 25u);
  EXPECT_EQ(r.requests(), 2u);
}

TEST(Engine, EventCountTracked) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 0, 5));
  engine.run();
  EXPECT_GE(engine.eventsProcessed(), 2u);
}

TEST(Engine, NextEventTimeTracksQueue) {
  Engine engine;
  EXPECT_EQ(engine.nextEventTime(), Engine::kNever);
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 0, 25));  // first resume queued at t=0
  EXPECT_EQ(engine.nextEventTime(), 0u);
  engine.run();
  EXPECT_EQ(engine.nextEventTime(), Engine::kNever);
}

TEST(Engine, NextEventTimeSeesEarliestOfMany) {
  Engine engine;
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 0, 70), /*start=*/40);
  engine.spawn(recorder(engine, log, 1, 70), /*start=*/10);
  EXPECT_EQ(engine.nextEventTime(), 10u);
}

TEST(Engine, ReserveEventsPreservesOrdering) {
  Engine engine;
  engine.reserveEvents(1024);
  std::vector<int> log;
  engine.spawn(recorder(engine, log, 1, 300));
  engine.spawn(recorder(engine, log, 2, 100));
  engine.run();
  EXPECT_EQ(log, (std::vector<int>{2, 102, 1, 101}));
}

TEST(Engine, WallClockInstrumentation) {
  Engine engine;
  std::vector<int> log;
  for (int i = 0; i < 16; ++i) engine.spawn(recorder(engine, log, i, 10 + i));
  EXPECT_EQ(engine.wallSeconds(), 0.0);
  engine.run();
  EXPECT_GT(engine.wallSeconds(), 0.0);
  EXPECT_GT(engine.eventsPerSecond(), 0.0);
}

}  // namespace
}  // namespace hsm::sim

// Tests for the DRF layers (docs/race_detection.md): the vector-clock
// happens-before detector (src/sim/drf/), its machine integration (sync-hook
// edges, shm/MPB/threadrt access paths, determinism and zero-overhead
// contracts), and the translator-side sharing-table lint
// (src/partition/drf_lint.h).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "partition/drf_lint.h"
#include "rcce/rcce.h"
#include "sim/drf/drf.h"
#include "sim/machine.h"
#include "threadrt/baseline.h"
#include "translator/translator.h"
#include "workloads/benchmark.h"

namespace hsm {
namespace {

using sim::SccConfig;
using sim::SccMachine;
using sim::Tick;
namespace drf = sim::drf;

// --- vector clock units ------------------------------------------------------

TEST(VectorClock, GetSetBumpDefaultZero) {
  drf::VectorClock c;
  EXPECT_EQ(c.get(3), 0u);  // absent entries read as 0
  c.set(3, 7);
  EXPECT_EQ(c.get(3), 7u);
  c.bump(3);
  EXPECT_EQ(c.get(3), 8u);
  c.bump(0);
  EXPECT_EQ(c.get(0), 1u);
}

TEST(VectorClock, JoinIsPointwiseMax) {
  drf::VectorClock a, b;
  a.set(0, 5);
  a.set(1, 1);
  b.set(1, 4);
  b.set(2, 2);
  a.join(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 4u);
  EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClock, CoversEpoch) {
  drf::VectorClock c;
  c.set(1, 3);
  EXPECT_TRUE(c.covers(3, 1));
  EXPECT_TRUE(c.covers(2, 1));
  EXPECT_FALSE(c.covers(4, 1));
  EXPECT_FALSE(c.covers(1, 2));  // never heard from task 2
}

// --- checker units -----------------------------------------------------------

drf::DrfChecker makeChecker(bool word_granular = false) {
  drf::DrfChecker c;
  c.configure(word_granular, /*line_bytes=*/32, /*word_bytes=*/8);
  c.registerTask(0, 0);
  c.registerTask(1, 1);
  return c;
}

TEST(DrfChecker, UnorderedWritesRace) {
  drf::DrfChecker c = makeChecker();
  EXPECT_EQ(c.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, false, 100), 0u);
  EXPECT_EQ(c.access(1, drf::kSpaceShm, 0, 8, /*write=*/true, false, 200), 1u);
  ASSERT_EQ(c.reports().size(), 1u);
  const drf::RaceReport& r = c.reports()[0];
  EXPECT_EQ(r.kind, drf::RaceKind::kWriteWrite);
  EXPECT_EQ(r.prior.task, 0u);
  EXPECT_EQ(r.current.task, 1u);
  EXPECT_EQ(r.prior.tick, 100u);
  EXPECT_EQ(r.current.tick, 200u);
  EXPECT_FALSE(r.line_granular);
  EXPECT_FALSE(r.false_sharing);
}

TEST(DrfChecker, WriteThenReadAndReadThenWriteKinds) {
  drf::DrfChecker wr = makeChecker();
  wr.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, false, 10);
  wr.access(1, drf::kSpaceShm, 0, 8, /*write=*/false, false, 20);
  ASSERT_EQ(wr.reports().size(), 1u);
  EXPECT_EQ(wr.reports()[0].kind, drf::RaceKind::kWriteRead);

  drf::DrfChecker rw = makeChecker();
  rw.access(0, drf::kSpaceShm, 0, 8, /*write=*/false, false, 10);
  rw.access(1, drf::kSpaceShm, 0, 8, /*write=*/true, false, 20);
  ASSERT_EQ(rw.reports().size(), 1u);
  EXPECT_EQ(rw.reports()[0].kind, drf::RaceKind::kReadWrite);
}

TEST(DrfChecker, ConcurrentReadsAreNotRacy) {
  drf::DrfChecker c = makeChecker();
  c.access(0, drf::kSpaceShm, 0, 8, /*write=*/false, false, 10);
  c.access(1, drf::kSpaceShm, 0, 8, /*write=*/false, false, 20);
  EXPECT_TRUE(c.reports().empty());
  // ... but a writer unordered with EITHER reader races: the read side
  // inflated to both epochs, and task 0's clock does not cover task 1's read.
  c.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, false, 30);
  ASSERT_EQ(c.reports().size(), 1u);
  EXPECT_EQ(c.reports()[0].kind, drf::RaceKind::kReadWrite);
  EXPECT_EQ(c.reports()[0].prior.task, 1u);
}

TEST(DrfChecker, LockOrderedPairDoesNotRace) {
  drf::DrfChecker c = makeChecker();
  c.acquire(0, 5);
  c.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, false, 10);
  c.release(0, 5);
  c.acquire(1, 5);  // joins task 0's released clock
  c.access(1, drf::kSpaceShm, 0, 8, /*write=*/true, false, 20);
  c.release(1, 5);
  EXPECT_TRUE(c.reports().empty());
}

TEST(DrfChecker, BarrierOrderedPairDoesNotRace) {
  drf::DrfChecker c = makeChecker();
  c.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, false, 10);
  const std::size_t tasks[] = {0, 1};
  c.barrierRelease(tasks, 2);
  c.access(1, drf::kSpaceShm, 0, 8, /*write=*/true, false, 20);
  EXPECT_TRUE(c.reports().empty());
}

TEST(DrfChecker, ReleaseWithoutMatchingAcquireStillRaces) {
  // A release alone publishes nothing to a task that never acquires.
  drf::DrfChecker c = makeChecker();
  c.acquire(0, 5);
  c.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, false, 10);
  c.release(0, 5);
  c.access(1, drf::kSpaceShm, 0, 8, /*write=*/true, false, 20);
  EXPECT_EQ(c.reports().size(), 1u);
}

TEST(DrfChecker, FirstRacePerGranuleOnly) {
  drf::DrfChecker c = makeChecker();
  c.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, false, 10);
  EXPECT_EQ(c.access(1, drf::kSpaceShm, 0, 8, /*write=*/true, false, 20), 1u);
  // Same granule keeps conflicting — suppressed after the first report.
  EXPECT_EQ(c.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, false, 30), 0u);
  EXPECT_EQ(c.access(1, drf::kSpaceShm, 0, 8, /*write=*/true, false, 40), 0u);
  EXPECT_EQ(c.reports().size(), 1u);
  // A DIFFERENT granule still reports.
  c.access(0, drf::kSpaceShm, 64, 8, /*write=*/true, false, 50);
  EXPECT_EQ(c.access(1, drf::kSpaceShm, 64, 8, /*write=*/true, false, 60), 1u);
}

TEST(DrfChecker, LineGranularFlagsFalseSharingWordGranularDoesNot) {
  // Unpadded pair: two tasks write DIFFERENT words of one 32 B cached line.
  drf::DrfChecker line = makeChecker(/*word_granular=*/false);
  line.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, /*cached=*/true, 10);
  line.access(1, drf::kSpaceShm, 8, 8, /*write=*/true, /*cached=*/true, 20);
  ASSERT_EQ(line.reports().size(), 1u);
  EXPECT_TRUE(line.reports()[0].line_granular);
  EXPECT_TRUE(line.reports()[0].false_sharing);
  EXPECT_EQ(line.reports()[0].granule_bytes, 32u);

  // Padded pair: one line apart — clean even under the line contract.
  drf::DrfChecker padded = makeChecker(/*word_granular=*/false);
  padded.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, /*cached=*/true, 10);
  padded.access(1, drf::kSpaceShm, 32, 8, /*write=*/true, /*cached=*/true, 20);
  EXPECT_TRUE(padded.reports().empty());

  // Word-granular mode: the unpadded pair is clean (disjoint words).
  drf::DrfChecker word = makeChecker(/*word_granular=*/true);
  word.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, /*cached=*/true, 10);
  word.access(1, drf::kSpaceShm, 8, 8, /*write=*/true, /*cached=*/true, 20);
  EXPECT_TRUE(word.reports().empty());
}

TEST(DrfChecker, OverlappingLineRaceIsNotFalseSharing) {
  drf::DrfChecker c = makeChecker(/*word_granular=*/false);
  c.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, /*cached=*/true, 10);
  c.access(1, drf::kSpaceShm, 0, 8, /*write=*/true, /*cached=*/true, 20);
  ASSERT_EQ(c.reports().size(), 1u);
  EXPECT_TRUE(c.reports()[0].line_granular);
  EXPECT_FALSE(c.reports()[0].false_sharing);  // same word: a REAL race
}

TEST(DrfChecker, DistinctSpacesDoNotCollide) {
  // Same offset in shm, private memory, and two UEs' MPBs: four distinct
  // granules, no cross-space conflicts.
  drf::DrfChecker c = makeChecker();
  c.access(0, drf::kSpaceShm, 0, 8, /*write=*/true, false, 10);
  c.access(1, drf::kSpacePriv, 0, 8, /*write=*/true, false, 20);
  c.access(0, drf::mpbSpace(0), 0, 8, /*write=*/true, false, 30);
  c.access(1, drf::mpbSpace(1), 0, 8, /*write=*/true, false, 40);
  EXPECT_TRUE(c.reports().empty());
  EXPECT_EQ(c.accessesChecked(), 4u);
}

TEST(DrfChecker, ExemptRangeSuppressesChecking) {
  drf::DrfChecker c = makeChecker();
  c.addShmExemptRange(0, 64);
  c.access(0, drf::kSpaceShm, 8, 8, /*write=*/true, false, 10);
  c.access(1, drf::kSpaceShm, 8, 8, /*write=*/true, false, 20);
  EXPECT_TRUE(c.reports().empty());
  // Outside the exemption the same pair still races.
  c.access(0, drf::kSpaceShm, 64, 8, /*write=*/true, false, 30);
  c.access(1, drf::kSpaceShm, 64, 8, /*write=*/true, false, 40);
  EXPECT_EQ(c.reports().size(), 1u);
}

TEST(DrfChecker, ReportsCarryRegionNameAndFormat) {
  drf::DrfChecker c = makeChecker();
  c.registerRegion("result_slots", 0, 128);
  c.access(0, drf::kSpaceShm, 16, 8, /*write=*/true, false, 10);
  c.access(1, drf::kSpaceShm, 16, 8, /*write=*/true, false, 20);
  ASSERT_EQ(c.reports().size(), 1u);
  EXPECT_EQ(c.reports()[0].region, "result_slots");
  const std::string line = c.reports()[0].format();
  EXPECT_NE(line.find("write-write"), std::string::npos);
  EXPECT_NE(line.find("result_slots"), std::string::npos);
  EXPECT_EQ(c.formatReports(), line + "\n");
}

TEST(DrfChecker, ResetExecutionStateKeepsAddressSpaceFacts) {
  drf::DrfChecker c = makeChecker();
  c.addShmExemptRange(0, 32);
  c.registerRegion("arr", 32, 96);
  c.access(0, drf::kSpaceShm, 40, 8, /*write=*/true, false, 10);
  c.access(1, drf::kSpaceShm, 40, 8, /*write=*/true, false, 20);
  EXPECT_EQ(c.reports().size(), 1u);
  c.resetExecutionState();
  EXPECT_TRUE(c.reports().empty());
  EXPECT_EQ(c.accessesChecked(), 0u);
  // Exemption and region name survive the reset; the shadow state does not,
  // so a re-run reports the same race afresh.
  c.registerTask(0, 0);
  c.registerTask(1, 1);
  c.access(0, drf::kSpaceShm, 8, 8, /*write=*/true, false, 10);
  c.access(1, drf::kSpaceShm, 8, 8, /*write=*/true, false, 20);
  EXPECT_TRUE(c.reports().empty());  // still exempt
  c.access(0, drf::kSpaceShm, 40, 8, /*write=*/true, false, 30);
  c.access(1, drf::kSpaceShm, 40, 8, /*write=*/true, false, 40);
  ASSERT_EQ(c.reports().size(), 1u);
  EXPECT_EQ(c.reports()[0].region, "arr");
}

// --- machine integration -----------------------------------------------------

sim::SimTask racyIncrement(sim::CoreContext& ctx, std::uint64_t off, int iters) {
  const auto ue = static_cast<std::uint64_t>(ctx.ue());
  for (int i = 0; i < iters; ++i) {
    co_await ctx.compute(500 + ue * 333);
    std::uint64_t v = 0;
    co_await ctx.shmRead(off, &v, sizeof(v));
    ++v;
    co_await ctx.shmWrite(off, &v, sizeof(v));
  }
}

sim::SimTask lockedIncrement(sim::CoreContext& ctx, std::uint64_t off, int iters) {
  const auto ue = static_cast<std::uint64_t>(ctx.ue());
  for (int i = 0; i < iters; ++i) {
    co_await ctx.compute(500 + ue * 333);
    co_await ctx.lockAcquire(0);
    std::uint64_t v = 0;
    co_await ctx.shmRead(off, &v, sizeof(v));
    ++v;
    co_await ctx.shmWrite(off, &v, sizeof(v));
    co_await ctx.lockRelease(0);
  }
}

sim::SimTask barrierPublish(sim::CoreContext& ctx, std::uint64_t base, int rounds) {
  const auto ue = static_cast<std::uint64_t>(ctx.ue());
  const int ues = ctx.numUes();
  for (int r = 0; r < rounds; ++r) {
    std::uint64_t v = ue + static_cast<std::uint64_t>(r);
    co_await ctx.shmWrite(base + ue * 64, &v, sizeof(v));
    co_await ctx.barrier();
    // Read the LEFT neighbour's slot — ordered only by the barrier.
    const auto left = static_cast<std::uint64_t>((ctx.ue() + ues - 1) % ues);
    co_await ctx.shmRead(base + left * 64, &v, sizeof(v));
    co_await ctx.barrier();
  }
}

struct MachineRun {
  Tick makespan = 0;
  std::vector<Tick> completions;
  std::uint64_t races = 0;
  std::string reports;
};

template <typename Setup>
MachineRun runMachine(const SccConfig& cfg, int ues, Setup setup) {
  SccMachine m(cfg);
  setup(m);
  MachineRun r;
  r.makespan = m.run();
  for (int ue = 0; ue < ues; ++ue) {
    r.completions.push_back(m.engine().completionTime(static_cast<std::size_t>(ue)));
  }
  if (m.drfEnabled()) {
    r.races = m.drfChecker().reports().size();
    r.reports = m.drfChecker().formatReports();
  }
  return r;
}

TEST(DrfMachine, RacyKernelReportedSyncedKernelsClean) {
  SccConfig cfg;
  cfg.drf_check = true;
  const auto racy = [](SccMachine& m) {
    const std::uint64_t off = m.shmalloc(64);
    m.launch(sim::LaunchSpec(4, [=](sim::CoreContext& ctx) {
      return racyIncrement(ctx, off, 3);
    }));
  };
  const auto locked = [](SccMachine& m) {
    const std::uint64_t off = m.shmalloc(64);
    m.launch(sim::LaunchSpec(4, [=](sim::CoreContext& ctx) {
      return lockedIncrement(ctx, off, 3);
    }));
  };
  const auto barriered = [](SccMachine& m) {
    const std::uint64_t base = m.shmalloc(4 * 64);
    m.launch(sim::LaunchSpec(4, [=](sim::CoreContext& ctx) {
      return barrierPublish(ctx, base, 3);
    }));
  };
  EXPECT_GT(runMachine(cfg, 4, racy).races, 0u);
  EXPECT_EQ(runMachine(cfg, 4, locked).races, 0u);
  EXPECT_EQ(runMachine(cfg, 4, barriered).races, 0u);
}

TEST(DrfMachine, RacyMpbPutsReported) {
  // Two UEs deposit into the SAME slot of UE 0's MPB with no ordering edge.
  SccConfig cfg;
  cfg.drf_check = true;
  const auto setup = [](SccMachine& m) {
    rcce::RcceEnv env(m);
    const std::uint64_t slot = env.mpbMallocSymmetric(2, 64);
    m.launch(sim::LaunchSpec(2, [=](sim::CoreContext& ctx) -> sim::SimTask {
      std::uint8_t buf[32] = {};
      co_await ctx.compute(100 + static_cast<std::uint64_t>(ctx.ue()) * 77);
      co_await rcce::put(ctx, 0, slot, buf, sizeof(buf));
    }));
  };
  EXPECT_GT(runMachine(cfg, 2, setup).races, 0u);
}

TEST(DrfMachine, ReportsByteIdenticalAcrossLanesAndCoalescingModes) {
  const auto setup = [](SccMachine& m) {
    const std::uint64_t off = m.shmalloc(64);
    m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
      return racyIncrement(ctx, off, 3);
    }));
  };
  SccConfig base;
  base.drf_check = true;
  const MachineRun ref = runMachine(base, 8, setup);
  EXPECT_GT(ref.races, 0u);

  for (const std::uint32_t lanes : {1u, 4u}) {
    for (const bool coalescing : {true, false}) {
      for (const bool per_resource : {true, false}) {
        SccConfig cfg;
        cfg.drf_check = true;
        cfg.engine_lanes = lanes;
        cfg.shm_coalescing = coalescing;
        cfg.mpb_coalescing = coalescing;
        cfg.per_resource_horizon = per_resource;
        const MachineRun run = runMachine(cfg, 8, setup);
        EXPECT_EQ(run.reports, ref.reports)
            << "lanes=" << lanes << " coalescing=" << coalescing
            << " per_resource=" << per_resource;
        EXPECT_EQ(run.makespan, ref.makespan);
        EXPECT_EQ(run.completions, ref.completions);
      }
    }
  }
}

TEST(DrfMachine, EnablingCheckerMovesNoTick) {
  const auto setup = [](SccMachine& m) {
    const std::uint64_t base = m.shmalloc(4 * 64);
    m.launch(sim::LaunchSpec(4, [=](sim::CoreContext& ctx) {
      return barrierPublish(ctx, base, 4);
    }));
  };
  SccConfig off;
  SccConfig on;
  on.drf_check = true;
  const MachineRun r_off = runMachine(off, 4, setup);
  const MachineRun r_on = runMachine(on, 4, setup);
  EXPECT_EQ(r_on.makespan, r_off.makespan);
  EXPECT_EQ(r_on.completions, r_off.completions);
  // Word-granular mode must not move a Tick either.
  SccConfig word;
  word.drf_check = true;
  word.drf_word_granular = true;
  const MachineRun r_word = runMachine(word, 4, setup);
  EXPECT_EQ(r_word.makespan, r_off.makespan);
  EXPECT_EQ(r_word.completions, r_off.completions);
}

TEST(DrfMachine, CachedSlotsFalseShareLineModeOnly) {
  const auto setup = [](SccMachine& m) {
    const std::uint64_t base = m.shmalloc(64);
    m.setShmCacheability(base, base + 64, true);
    m.launch(sim::LaunchSpec(4, [=](sim::CoreContext& ctx) -> sim::SimTask {
      const auto ue = static_cast<std::uint64_t>(ctx.ue());
      std::uint64_t v = ue;
      co_await ctx.compute(200 + ue * 111);
      co_await ctx.shmWrite(base + ue * 8, &v, sizeof(v));
    }));
  };
  SccConfig line;
  line.drf_check = true;
  const MachineRun r_line = runMachine(line, 4, setup);
  EXPECT_GT(r_line.races, 0u);
  EXPECT_NE(r_line.reports.find("FALSE-SHARING"), std::string::npos);

  SccConfig word = line;
  word.drf_word_granular = true;
  EXPECT_EQ(runMachine(word, 4, setup).races, 0u);
}

// --- threadrt integration ----------------------------------------------------

sim::SimTask racyThread(threadrt::ThreadContext& ctx, std::uint64_t addr) {
  long long v = 0;
  co_await ctx.compute(100 + static_cast<std::uint64_t>(ctx.tid()) * 50);
  co_await ctx.memRead(addr, &v, sizeof(v));
  v += 1;
  co_await ctx.memWrite(addr, &v, sizeof(v));
}

sim::SimTask mutexedThread(threadrt::ThreadContext& ctx, std::uint64_t addr) {
  co_await ctx.compute(100 + static_cast<std::uint64_t>(ctx.tid()) * 50);
  co_await ctx.lockAcquire(0);
  long long v = 0;
  co_await ctx.memRead(addr, &v, sizeof(v));
  v += 1;
  co_await ctx.memWrite(addr, &v, sizeof(v));
  co_await ctx.lockRelease(0);
}

TEST(DrfThreadrt, UnlockedSharedCounterRacesEvenWhenSerialized) {
  // One core serializes the threads in TIME, but pthread semantics have no
  // happens-before edge without a sync op — still a race.
  SccConfig cfg;
  cfg.drf_check = true;
  threadrt::SingleCoreRuntime rt(cfg);
  rt.machine().reservePrivate(0, 64);
  std::memset(rt.machine().privData(0, 0), 0, 8);
  rt.launch(4, [](threadrt::ThreadContext& ctx) { return racyThread(ctx, 0); });
  rt.run();
  EXPECT_GT(rt.machine().drfChecker().reports().size(), 0u);
}

TEST(DrfThreadrt, MutexedSharedCounterClean) {
  SccConfig cfg;
  cfg.drf_check = true;
  threadrt::SingleCoreRuntime rt(cfg);
  rt.machine().reservePrivate(0, 64);
  std::memset(rt.machine().privData(0, 0), 0, 8);
  rt.launch(4, [](threadrt::ThreadContext& ctx) { return mutexedThread(ctx, 0); });
  rt.run();
  EXPECT_TRUE(rt.machine().drfChecker().reports().empty());
}

// --- sharing-table lint ------------------------------------------------------

// A thread function WRITES a shared array; the program has no barrier and no
// mutex, so no release point exists anywhere.
const char* const kNoSyncSource = R"(#include <pthread.h>

int sum[4] = {0};

void *tf(void *tid) {
    int t = (int)tid;
    sum[t] += t;
    pthread_exit(0);
}

int main() {
    pthread_t threads[4];
    int i;
    for (i = 0; i < 4; i++) {
        pthread_create(&threads[i], 0, tf, (void *)i);
    }
    for (i = 0; i < 4; i++) {
        pthread_join(threads[i], 0);
    }
    return 0;
}
)";

TEST(DrfLint, CachedThreadWrittenRegionWithoutSyncEdges) {
  translator::Translator tr;
  const translator::TranslationResult r = tr.analyzeOnly(kNoSyncSource, "nosync.c");
  ASSERT_TRUE(r.ok) << r.diagnostics;

  // Force the pathological plan the derivation would never emit: the
  // thread-written array in a swcache-cached region.
  const partition::ExecutionPlan bad{{partition::RegionPlan{
      "sum", partition::PlacementClass::kOffChipCached, partition::MpbPattern::kNone,
      16}}};
  const partition::LintResult lint = partition::lintSharingTables(r.analysis, bad);
  EXPECT_FALSE(lint.ok());
  bool saw_rule_a = false;
  bool saw_rule_c = false;
  for (const partition::LintFinding& f : lint.findings) {
    saw_rule_a = saw_rule_a ||
                 f.rule == partition::LintFinding::Rule::kCachedThreadWrittenNoSync;
    // 16 B is not a multiple of the 32 B line: the alignment rule fires too.
    saw_rule_c =
        saw_rule_c || f.rule == partition::LintFinding::Rule::kCachedNotLineAligned;
  }
  EXPECT_TRUE(saw_rule_a);
  EXPECT_TRUE(saw_rule_c);
}

TEST(DrfLint, PlanRegionWithoutSharingTableEntry) {
  translator::Translator tr;
  const translator::TranslationResult r = tr.analyzeOnly(kNoSyncSource, "nosync.c");
  ASSERT_TRUE(r.ok) << r.diagnostics;
  const partition::ExecutionPlan phantom{{partition::RegionPlan{
      "no_such_variable", partition::PlacementClass::kOffChipUncached,
      partition::MpbPattern::kNone, 64}}};
  const partition::LintResult lint =
      partition::lintSharingTables(r.analysis, phantom);
  ASSERT_EQ(lint.findings.size(), 1u);
  EXPECT_EQ(lint.findings[0].rule,
            partition::LintFinding::Rule::kPlacementContradictsSharing);
  EXPECT_EQ(lint.findings[0].region, "no_such_variable");
}

TEST(DrfLint, DerivedPlansOfAllBenchmarksLintClean) {
  // The drf_lint_ok gate of translate_and_run, as a unit test: every paper
  // benchmark's DERIVED plan must pass its own sharing tables.
  for (const std::string& name : workloads::pthreadSourceNames()) {
    translator::Translator tr;
    const translator::TranslationResult r =
        tr.analyzeOnly(workloads::pthreadSource(name), name + ".c");
    ASSERT_TRUE(r.ok) << name << ": " << r.diagnostics;
    const partition::LintResult lint =
        partition::lintSharingTables(r.analysis, r.execution_plan);
    EXPECT_TRUE(lint.ok()) << name << ":\n" << lint.format();
  }
}

TEST(DrfLint, PlanOnlyLintRules) {
  using partition::ExecutionPlan;
  using partition::LintFinding;
  using partition::MpbPattern;
  using partition::PlacementClass;
  using partition::RegionPlan;
  // Clean: uncached regions plus a sized MPB pattern.
  const ExecutionPlan clean{
      {RegionPlan{"a", PlacementClass::kOffChipUncached, MpbPattern::kNone, 64},
       RegionPlan{"b", PlacementClass::kOnChipResident, MpbPattern::kNeighborRing,
                  512}}};
  EXPECT_TRUE(partition::lintExecutionPlan(clean).ok());

  // A pattern on a zero-byte region and an unaligned cached region.
  const ExecutionPlan bad{
      {RegionPlan{"ghost", PlacementClass::kOnChipResident, MpbPattern::kSelfStage,
                  0},
       RegionPlan{"tail", PlacementClass::kOffChipCached, MpbPattern::kNone, 48}}};
  const partition::LintResult lint = partition::lintExecutionPlan(bad);
  ASSERT_EQ(lint.findings.size(), 2u);
  EXPECT_EQ(lint.findings[0].rule, LintFinding::Rule::kPlacementContradictsSharing);
  EXPECT_EQ(lint.findings[1].rule, LintFinding::Rule::kCachedNotLineAligned);
  EXPECT_NE(lint.format().find("cached-not-line-aligned"), std::string::npos);
}

}  // namespace
}  // namespace hsm

// Unit tests: source buffers, locations, and the diagnostics engine.
#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/source.h"

namespace hsm {
namespace {

TEST(SourceBuffer, EmptyBufferHasOneLine) {
  SourceBuffer buffer("empty.c", "");
  EXPECT_EQ(buffer.lineCount(), 1u);
  EXPECT_EQ(buffer.lineText(1), "");
}

TEST(SourceBuffer, CountsLines) {
  SourceBuffer buffer("t.c", "a\nbb\nccc\n");
  EXPECT_EQ(buffer.lineCount(), 3u);
  EXPECT_EQ(buffer.lineText(1), "a");
  EXPECT_EQ(buffer.lineText(2), "bb");
  EXPECT_EQ(buffer.lineText(3), "ccc");
}

TEST(SourceBuffer, LineTextOutOfRangeIsEmpty) {
  SourceBuffer buffer("t.c", "x\n");
  EXPECT_EQ(buffer.lineText(0), "");
  EXPECT_EQ(buffer.lineText(9), "");
}

TEST(SourceBuffer, LocateStartOfFile) {
  SourceBuffer buffer("t.c", "int x;\n");
  const SourceLoc loc = buffer.locate(0);
  EXPECT_EQ(loc.line, 1u);
  EXPECT_EQ(loc.column, 1u);
}

TEST(SourceBuffer, LocateMidLine) {
  SourceBuffer buffer("t.c", "int x;\nint y;\n");
  const SourceLoc loc = buffer.locate(11);  // 'y'
  EXPECT_EQ(loc.line, 2u);
  EXPECT_EQ(loc.column, 5u);
}

TEST(SourceBuffer, LocateClampsPastEnd) {
  SourceBuffer buffer("t.c", "ab");
  const SourceLoc loc = buffer.locate(100);
  EXPECT_EQ(loc.line, 1u);
  EXPECT_EQ(loc.column, 3u);
}

TEST(SourceBuffer, NoTrailingNewline) {
  SourceBuffer buffer("t.c", "one\ntwo");
  EXPECT_EQ(buffer.lineCount(), 2u);
  EXPECT_EQ(buffer.lineText(2), "two");
}

TEST(SourceLoc, DefaultIsInvalid) {
  SourceLoc loc;
  EXPECT_FALSE(loc.valid());
}

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.hasErrors());
  diags.warning({}, "w");
  EXPECT_FALSE(diags.hasErrors());
  diags.error({}, "e");
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_EQ(diags.errorCount(), 1u);
  EXPECT_EQ(diags.diagnostics().size(), 2u);
}

TEST(Diagnostics, FormatIncludesPositionAndSeverity) {
  SourceBuffer buffer("f.c", "int x;\n");
  DiagnosticEngine diags;
  diags.error(buffer.locate(4), "bad name");
  const std::string text = diags.format(buffer);
  EXPECT_NE(text.find("f.c:1:5"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("bad name"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine diags;
  diags.error({}, "e");
  diags.clear();
  EXPECT_FALSE(diags.hasErrors());
  EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(Diagnostics, NotesDoNotCountAsErrors) {
  DiagnosticEngine diags;
  diags.note({}, "fyi");
  EXPECT_FALSE(diags.hasErrors());
}

}  // namespace
}  // namespace hsm

// The translator→runtime ExecutionPlan contract (docs/execution_plan.md):
//   * owner-set materialization per MPB pattern;
//   * the translator derives the expected plan for every paper benchmark;
//   * per-variable cacheability matches the stage-2 sharing classification
//     (read-mostly → cached, thread-written → never cached);
//   * plan-driven workload runs verify with ZERO scope violations (the
//     derived owner sets cover all observed MPB traffic);
//   * plan-driven runs are Tick-bit-identical to the legacy-knob runs they
//     replace;
//   * the machine-level per-region cacheability map and the declared-scope
//     violation accounting.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "rcce/rcce.h"
#include "sim/machine.h"
#include "translator/translator.h"
#include "workloads/benchmark.h"

namespace hsm {
namespace {

using partition::ExecutionPlan;
using partition::MpbPattern;
using partition::PlacementClass;
using partition::RegionPlan;

translator::TranslationResult translateBenchmark(const std::string& name) {
  translator::Translator t;
  return t.translate(workloads::pthreadSource(name), name + ".c");
}

std::unique_ptr<workloads::Benchmark> makeBenchmark(const std::string& name,
                                                    double scale) {
  if (name == "PiApprox") return workloads::makePiApprox(scale);
  if (name == "3-5-Sum") return workloads::makeSum35(scale);
  if (name == "CountPrimes") return workloads::makeCountPrimes(scale);
  if (name == "Stream") return workloads::makeStream(scale);
  if (name == "DotProduct") return workloads::makeDotProduct(scale);
  if (name == "LU") return workloads::makeLuDecomposition(scale);
  return nullptr;
}

// --- owner-set materialization ----------------------------------------------

TEST(ExecutionPlan, OwnerSetsPerPattern) {
  const ExecutionPlan self{{RegionPlan{"s", PlacementClass::kOnChipStaged,
                                       MpbPattern::kSelfStage, 64}}};
  EXPECT_EQ(self.mpbOwners(3, 8).put, (std::vector<int>{3}));
  EXPECT_EQ(self.mpbOwners(3, 8).get, (std::vector<int>{3}));

  const ExecutionPlan root{{RegionPlan{"r", PlacementClass::kOnChipResident,
                                       MpbPattern::kRootFunnel, 8}}};
  EXPECT_EQ(root.mpbOwners(5, 8).put, (std::vector<int>{0}));
  EXPECT_EQ(root.mpbOwners(5, 8).get, (std::vector<int>{0}));

  const ExecutionPlan bcast{{RegionPlan{"b", PlacementClass::kOnChipStaged,
                                        MpbPattern::kRotatingBroadcast, 512}}};
  EXPECT_EQ(bcast.mpbOwners(2, 4).put, (std::vector<int>{2}));
  EXPECT_EQ(bcast.mpbOwners(2, 4).get, (std::vector<int>{0, 1, 2, 3}));

  const ExecutionPlan ring{{RegionPlan{"g", PlacementClass::kOnChipResident,
                                       MpbPattern::kNeighborRing, 128}}};
  EXPECT_EQ(ring.mpbOwners(7, 8).put, (std::vector<int>{0}));  // wraps
  EXPECT_EQ(ring.mpbOwners(7, 8).get, (std::vector<int>{7}));
  EXPECT_EQ(ring.mpbScopeOwners(7, 8), (std::vector<int>{0, 7}));
}

TEST(ExecutionPlan, OffChipRegionsGenerateNoOwners) {
  const ExecutionPlan plan{
      {RegionPlan{"c", PlacementClass::kOffChipCached, MpbPattern::kNone, 4096},
       RegionPlan{"u", PlacementClass::kOffChipUncached, MpbPattern::kNone, 64}}};
  EXPECT_TRUE(plan.mpbScopeOwners(0, 8).empty());
  EXPECT_FALSE(plan.anyMpbTraffic());
  EXPECT_TRUE(plan.anyCachedRegion());
}

TEST(ExecutionPlan, UnionAcrossRegionsIsSortedUnique) {
  const ExecutionPlan plan{
      {RegionPlan{"a", PlacementClass::kOnChipResident, MpbPattern::kRootFunnel, 8},
       RegionPlan{"b", PlacementClass::kOnChipStaged, MpbPattern::kSelfStage, 64}}};
  EXPECT_EQ(plan.mpbScopeOwners(0, 8), (std::vector<int>{0}));
  EXPECT_EQ(plan.mpbScopeOwners(4, 8), (std::vector<int>{0, 4}));
}

// --- translator derivation for the paper suite -------------------------------

struct ExpectedRegion {
  const char* benchmark;
  const char* region;
  PlacementClass placement;
  MpbPattern pattern;
};

// The classifications §4.4's plan plus the stage-2 tables pin down: the
// reduction objects funnel through UE 0, the streamed thread-written arrays
// self-stage, LU's barrier-phased matrix broadcasts its pivot rows, and
// DotProduct's thread-read-only inputs are the swcache's read-mostly case.
const ExpectedRegion kExpected[] = {
    {"PiApprox", "gsum", PlacementClass::kOnChipResident, MpbPattern::kRootFunnel},
    {"3-5-Sum", "partial", PlacementClass::kOnChipResident, MpbPattern::kRootFunnel},
    {"CountPrimes", "total", PlacementClass::kOnChipResident, MpbPattern::kRootFunnel},
    {"Stream", "a", PlacementClass::kOnChipStaged, MpbPattern::kSelfStage},
    {"Stream", "b", PlacementClass::kOnChipStaged, MpbPattern::kSelfStage},
    {"Stream", "c", PlacementClass::kOnChipStaged, MpbPattern::kSelfStage},
    {"DotProduct", "a", PlacementClass::kOffChipCached, MpbPattern::kNone},
    {"DotProduct", "b", PlacementClass::kOffChipCached, MpbPattern::kNone},
    {"DotProduct", "partial", PlacementClass::kOnChipResident,
     MpbPattern::kRootFunnel},
    {"LU", "m", PlacementClass::kOnChipStaged, MpbPattern::kRotatingBroadcast},
};

TEST(ExecutionPlanDerivation, PaperBenchmarksGetExpectedClasses) {
  std::set<std::string> benchmarks;
  for (const ExpectedRegion& e : kExpected) benchmarks.insert(e.benchmark);
  for (const std::string& name : benchmarks) {
    const translator::TranslationResult r = translateBenchmark(name);
    ASSERT_TRUE(r.ok) << name << ": " << r.diagnostics;
    for (const ExpectedRegion& e : kExpected) {
      if (name != e.benchmark) continue;
      const RegionPlan* region = r.execution_plan.find(e.region);
      ASSERT_NE(region, nullptr) << name << "." << e.region;
      EXPECT_EQ(region->placement, e.placement) << name << "." << e.region;
      EXPECT_EQ(region->pattern, e.pattern) << name << "." << e.region;
    }
  }
}

TEST(ExecutionPlanDerivation, PthreadSyncObjectsAreNotRegions) {
  for (const char* name : {"PiApprox", "LU"}) {
    const translator::TranslationResult r = translateBenchmark(name);
    ASSERT_TRUE(r.ok) << r.diagnostics;
    for (const RegionPlan& region : r.execution_plan.regions) {
      EXPECT_EQ(region.name.rfind("lock", 0), std::string::npos);
      EXPECT_EQ(region.name.find("barrier"), std::string::npos) << region.name;
    }
  }
}

TEST(ExecutionPlanDerivation, DecisionClassBackfilledIntoMemoryPlan) {
  translator::TranslationResult r = translateBenchmark("DotProduct");
  ASSERT_TRUE(r.ok);
  const partition::PlacementDecision* a = r.plan.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->cls, PlacementClass::kOffChipCached);
  EXPECT_NE(r.plan.format().find("off-chip-cached"), std::string::npos);
}

// Cacheability must match the stage-2 sharing classification: a region is
// cached only if NO thread function writes it (read-mostly), and every
// thread-written region is never cached — the DRF-safety envelope of the
// swcache's release-consistency protocol.
TEST(ExecutionPlanDerivation, CacheabilityMatchesSharingClassification) {
  for (const std::string& name : workloads::pthreadSourceNames()) {
    translator::TranslationResult r = translateBenchmark(name);
    ASSERT_TRUE(r.ok) << name << ": " << r.diagnostics;
    std::set<std::string> thread_fns;
    for (const auto* fn : r.analysis.thread_functions) {
      if (fn != nullptr) thread_fns.insert(fn->name());
    }
    for (const RegionPlan& region : r.execution_plan.regions) {
      const analysis::VariableInfo* v = r.analysis.findByName(region.name);
      ASSERT_NE(v, nullptr) << name << "." << region.name;
      bool thread_written = false;
      for (const std::string& f : v->def_in) {
        thread_written = thread_written || thread_fns.count(f) > 0;
      }
      if (region.cached()) {
        EXPECT_FALSE(thread_written)
            << name << "." << region.name << " cached despite thread writes";
      }
      if (thread_written) {
        EXPECT_NE(region.placement, PlacementClass::kOffChipCached)
            << name << "." << region.name;
      }
    }
  }
}

// Controller placement — the NUMA half of the contract — also follows the
// stage-2 sharing tables: read-mostly (cached) regions stripe their
// addresses across all four controllers, while owner-partitioned
// thread-written off-chip data stays on the requester-local owner-compute
// mapping.
TEST(ExecutionPlanDerivation, ControllerPlacementFollowsSharingTables) {
  using partition::ControllerPlacement;
  for (const std::string& name : workloads::pthreadSourceNames()) {
    translator::TranslationResult r = translateBenchmark(name);
    ASSERT_TRUE(r.ok) << name << ": " << r.diagnostics;
    for (const RegionPlan& region : r.execution_plan.regions) {
      if (region.cached()) {
        EXPECT_EQ(region.controller, ControllerPlacement::kStriped)
            << name << "." << region.name;
      } else {
        EXPECT_EQ(region.controller, ControllerPlacement::kOwnerCompute)
            << name << "." << region.name;
      }
    }
  }
  // Concretely: DotProduct's thread-read-only inputs stripe, and the plan
  // JSON names the decision for the tooling that renders it.
  const translator::TranslationResult dot = translateBenchmark("DotProduct");
  ASSERT_TRUE(dot.ok);
  ASSERT_NE(dot.execution_plan.find("a"), nullptr);
  EXPECT_EQ(dot.execution_plan.find("a")->controller, ControllerPlacement::kStriped);
  EXPECT_NE(dot.execution_plan.toJson(8).find("\"controller_placement\": \"striped\""),
            std::string::npos);
}

// The KV store's plan shape (bench/micro_sim's kv_zipf_8ue A/B): all three
// regions off-chip uncached with zero MPB traffic, the index and slot slab
// carrying the A/B'd controller placement while the per-UE check cells stay
// owner-compute. Guards the contract the placement benchmark leans on.
TEST(ExecutionPlan, KvStorePlanControllerPlacements) {
  using partition::ControllerPlacement;
  auto kvPlan = [](ControllerPlacement cp) {
    return ExecutionPlan{
        {RegionPlan{"kv_index", PlacementClass::kOffChipUncached, MpbPattern::kNone,
                    8192 * 8, cp},
         RegionPlan{"kv_slots", PlacementClass::kOffChipUncached, MpbPattern::kNone,
                    4096 * 4 * 8, cp},
         RegionPlan{"kv_checks", PlacementClass::kOffChipUncached, MpbPattern::kNone,
                    8 * 8}}};
  };
  for (const ControllerPlacement cp :
       {ControllerPlacement::kStriped, ControllerPlacement::kOwnerCompute}) {
    const ExecutionPlan plan = kvPlan(cp);
    EXPECT_FALSE(plan.anyMpbTraffic());
    EXPECT_FALSE(plan.anyCachedRegion());
    for (int ue = 0; ue < 8; ++ue) {
      EXPECT_TRUE(plan.mpbScopeOwners(ue, 8).empty());
    }
    ASSERT_NE(plan.find("kv_slots"), nullptr);
    EXPECT_EQ(plan.find("kv_slots")->controller, cp);
    EXPECT_EQ(plan.find("kv_checks")->controller, ControllerPlacement::kOwnerCompute);
    EXPECT_NE(plan.toJson(8).find(controllerPlacementName(cp)), std::string::npos);
  }
}

// --- plan-driven execution: owner sets cover all observed MPB traffic -------

constexpr double kScale = 0.05;

TEST(PlanDrivenExecution, AllBenchmarksVerifyWithZeroScopeViolations) {
  const sim::SccConfig config;
  for (const std::string& name : workloads::pthreadSourceNames()) {
    const translator::TranslationResult r = translateBenchmark(name);
    ASSERT_TRUE(r.ok) << name << ": " << r.diagnostics;
    const auto bench = makeBenchmark(name, kScale);
    ASSERT_NE(bench, nullptr);
    for (const workloads::Mode mode :
         {workloads::Mode::RcceOffChip, workloads::Mode::RcceMpb}) {
      const workloads::RunResult run =
          bench->run(mode, 8, config, &r.execution_plan);
      EXPECT_TRUE(run.verified)
          << name << " " << workloads::modeName(mode) << ": " << run.detail;
      EXPECT_EQ(run.mpb_scope_violations, 0u)
          << name << " " << workloads::modeName(mode)
          << ": MPB traffic outside the derived owner sets";
      EXPECT_EQ(run.plan_regions_unrealized, 0u)
          << name << " " << workloads::modeName(mode)
          << ": translator plan names a region the workload twin "
             "does not recognize";
    }
  }
}

// Region-name drift between the translated source and the workload twin
// must be flagged, not silently absorbed by the legacy-default fallback.
TEST(PlanDrivenExecution, UnrecognizedConsequentialRegionIsCounted) {
  const sim::SccConfig config;
  const auto pi = workloads::makePiApprox(kScale);
  const ExecutionPlan drifted{{RegionPlan{
      "renamed_gsum", PlacementClass::kOnChipResident, MpbPattern::kRootFunnel, 8}}};
  const workloads::RunResult run =
      pi->run(workloads::Mode::RcceOffChip, 8, config, &drifted);
  EXPECT_TRUE(run.verified);  // fallback still computes correctly...
  EXPECT_EQ(run.plan_regions_unrealized, 1u);  // ...but the drift is visible
}

// --- plan-driven runs reproduce the legacy knobs bit for bit -----------------

/// The legacy-encoding mirror plan of each workload: the exact realization
/// the pre-ExecutionPlan use_mpb/MpbScope code chose in RcceMpb mode.
ExecutionPlan legacyMpbMirror(const std::string& name) {
  if (name == "PiApprox") {
    return ExecutionPlan{{RegionPlan{"gsum", PlacementClass::kOnChipResident,
                                     MpbPattern::kRootFunnel, 8}}};
  }
  if (name == "3-5-Sum") {
    return ExecutionPlan{{RegionPlan{"partial", PlacementClass::kOnChipResident,
                                     MpbPattern::kRootFunnel, 8}}};
  }
  if (name == "CountPrimes") {
    return ExecutionPlan{{RegionPlan{"total", PlacementClass::kOnChipResident,
                                     MpbPattern::kRootFunnel, 8}}};
  }
  if (name == "Stream") {
    return ExecutionPlan{
        {RegionPlan{"a", PlacementClass::kOnChipStaged, MpbPattern::kSelfStage, 0},
         RegionPlan{"b", PlacementClass::kOnChipStaged, MpbPattern::kSelfStage, 0},
         RegionPlan{"c", PlacementClass::kOnChipStaged, MpbPattern::kSelfStage, 0}}};
  }
  if (name == "DotProduct") {
    // Legacy MPB mode staged a/b but kept the accumulator off-chip.
    return ExecutionPlan{
        {RegionPlan{"a", PlacementClass::kOnChipStaged, MpbPattern::kSelfStage, 0},
         RegionPlan{"b", PlacementClass::kOnChipStaged, MpbPattern::kSelfStage, 0},
         RegionPlan{"partial", PlacementClass::kOffChipUncached, MpbPattern::kNone,
                    8}}};
  }
  // LU: pivot-row staging via rotating broadcast.
  return ExecutionPlan{{RegionPlan{"m", PlacementClass::kOnChipStaged,
                                   MpbPattern::kRotatingBroadcast, 0}}};
}

/// All-uncached mirror (the legacy RcceOffChip realization).
ExecutionPlan legacyOffChipMirror(const std::string& name) {
  ExecutionPlan plan = legacyMpbMirror(name);
  for (RegionPlan& r : plan.regions) {
    r.placement = PlacementClass::kOffChipUncached;
    r.pattern = MpbPattern::kNone;
  }
  return plan;
}

TEST(PlanDrivenExecution, BitIdenticalToLegacyKnobRuns) {
  const sim::SccConfig config;
  for (const std::string& name : workloads::pthreadSourceNames()) {
    const auto bench = makeBenchmark(name, kScale);
    ASSERT_NE(bench, nullptr);
    for (const workloads::Mode mode :
         {workloads::Mode::RcceOffChip, workloads::Mode::RcceMpb}) {
      const ExecutionPlan mirror = mode == workloads::Mode::RcceMpb
                                       ? legacyMpbMirror(name)
                                       : legacyOffChipMirror(name);
      const workloads::RunResult legacy = bench->run(mode, 8, config);
      const workloads::RunResult planned = bench->run(mode, 8, config, &mirror);
      EXPECT_TRUE(planned.verified) << name;
      EXPECT_EQ(planned.makespan, legacy.makespan)
          << name << " " << workloads::modeName(mode)
          << ": plan-driven run moved a Tick vs the legacy knobs";
      EXPECT_EQ(planned.mpb_scope_violations, 0u)
          << name << " " << workloads::modeName(mode);
    }
  }
}

// --- machine-level per-region cacheability map -------------------------------

TEST(ShmCacheability, RegionMapOverridesGlobalDefault) {
  // Default off: a mapped-cached region routes through the swcache, the
  // rest stays uncached.
  sim::SccConfig config;
  config.shm_swcache = false;
  sim::SccMachine machine(config);
  const std::uint64_t a = machine.shmalloc(4096);
  const std::uint64_t b = machine.shmalloc(4096);
  EXPECT_FALSE(machine.swcacheActive());
  machine.setShmCacheability(a, a + 4096, true);
  EXPECT_TRUE(machine.swcacheActive());
  EXPECT_TRUE(machine.shmCached(a));
  EXPECT_TRUE(machine.shmCached(a + 4095));
  EXPECT_FALSE(machine.shmCached(b));  // unmapped: config default (off)
}

TEST(ShmCacheability, ExplicitUncachedPinsRegionDespiteGlobalDefault) {
  sim::SccConfig config;
  config.shm_swcache = true;  // global default: cached
  sim::SccMachine machine(config);
  const std::uint64_t a = machine.shmalloc(4096);
  const std::uint64_t b = machine.shmalloc(4096);
  machine.setShmCacheability(a, a + 4096, false);
  EXPECT_FALSE(machine.shmCached(a));      // pinned uncached
  EXPECT_TRUE(machine.shmCached(b));       // default still governs the rest
  EXPECT_TRUE(machine.swcacheActive());
}

TEST(ShmCacheability, PlanCarryingShmArrayRegistersItsRegion) {
  sim::SccConfig config;
  sim::SccMachine machine(config);
  rcce::RcceEnv env(machine);
  rcce::ShmArray<double> cached(env, 64, PlacementClass::kOffChipCached);
  rcce::ShmArray<double> uncached(env, 64, PlacementClass::kOffChipUncached);
  rcce::ShmArray<double> legacy(env, 64);  // unmapped
  EXPECT_EQ(cached.placement(), PlacementClass::kOffChipCached);
  EXPECT_EQ(uncached.placement(), PlacementClass::kOffChipUncached);
  EXPECT_EQ(legacy.placement(), PlacementClass::kOffChipUncached);
  EXPECT_TRUE(machine.shmCached(cached.byteOffset(0)));
  EXPECT_FALSE(machine.shmCached(uncached.byteOffset(0)));
  EXPECT_FALSE(machine.shmCached(legacy.byteOffset(0)));  // config default off
}

TEST(ShmCacheability, CachedRangesAreLineGranular) {
  // The swcache moves whole lines, so cached ranges round OUTWARD to line
  // boundaries — no byte of a partially covered line can stay uncached
  // (a whole-line write-back would clobber it: cross-policy false sharing).
  sim::SccConfig config;
  sim::SccMachine machine(config);
  const std::uint64_t base = machine.shmalloc(256);  // base is 0: line-aligned
  machine.setShmCacheability(base + 40, base + 72, true);
  EXPECT_TRUE(machine.shmCached(base + 32));   // head line rounded down
  EXPECT_TRUE(machine.shmCached(base + 95));   // tail line rounded up
  EXPECT_FALSE(machine.shmCached(base + 31));
  EXPECT_FALSE(machine.shmCached(base + 96));
}

TEST(ShmCacheability, CachedShmArrayIsLineAlignedAndPadded) {
  sim::SccConfig config;
  sim::SccMachine machine(config);
  rcce::RcceEnv env(machine);
  rcce::ShmArray<double> bump(env, 3);  // push the brk off line alignment
  rcce::ShmArray<double> cached(env, 5, PlacementClass::kOffChipCached);  // 40 B
  rcce::ShmArray<double> next(env, 4, PlacementClass::kOffChipUncached);
  EXPECT_EQ(cached.byteOffset(0) % 32, 0u);
  // The rounded-up tail line belongs to the cached region's own padding...
  EXPECT_TRUE(machine.shmCached(cached.byteOffset(0) + 63));
  // ...and the next (uncached) region starts on a fresh line.
  EXPECT_EQ(next.byteOffset(0) % 32, 0u);
  EXPECT_FALSE(machine.shmCached(next.byteOffset(0)));
}

// --- declared-scope violation accounting -------------------------------------

sim::SimTask touchOwnMpb(sim::CoreContext& ctx, std::uint64_t offset) {
  std::uint8_t buf[32] = {};
  co_await ctx.mpbWrite(ctx.ue(), offset, buf, sizeof(buf));
}

TEST(DeclaredScope, PlanWithoutMpbRegionsFlagsAnyMpbAccess) {
  // The plan promises "no MPB traffic"; the kernel touches its own slice
  // anyway — every chunk must be counted as a scope violation.
  sim::SccConfig config;
  sim::SccMachine machine(config);
  rcce::RcceEnv env(machine);
  const std::uint64_t off = env.mpbMallocSymmetric(2, 32);
  const ExecutionPlan plan{
      {RegionPlan{"x", PlacementClass::kOffChipUncached, MpbPattern::kNone, 64}}};
  machine.launch(sim::LaunchSpec(2, [&](sim::CoreContext& ctx) { return touchOwnMpb(ctx, off); }).withPlan(&plan));
  machine.run();
  EXPECT_GT(machine.mpbScopeViolations(), 0u);
}

TEST(DeclaredScope, CoveringPlanCountsNoViolations) {
  sim::SccConfig config;
  sim::SccMachine machine(config);
  rcce::RcceEnv env(machine);
  const std::uint64_t off = env.mpbMallocSymmetric(2, 32);
  const ExecutionPlan plan{{RegionPlan{
      "x", PlacementClass::kOnChipResident, MpbPattern::kSelfStage, 64}}};
  machine.launch(sim::LaunchSpec(2, [&](sim::CoreContext& ctx) { return touchOwnMpb(ctx, off); }).withPlan(&plan));
  machine.run();
  EXPECT_EQ(machine.mpbScopeViolations(), 0u);
}

}  // namespace
}  // namespace hsm

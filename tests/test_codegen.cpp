// Tests for the C source emitter: declarator forms, statements, directives,
// and the reparse property (emitted source parses back to an equivalent
// unit).
#include <gtest/gtest.h>

#include "codegen/c_emitter.h"
#include "parse/parser.h"

namespace hsm::codegen {
namespace {

std::string reemit(const std::string& text) {
  SourceBuffer buffer("t.c", text);
  DiagnosticEngine diags;
  ast::ASTContext context;
  EXPECT_TRUE(parse::parseSource(buffer, context, diags)) << diags.format(buffer);
  CSourceEmitter emitter;
  return emitter.emit(context.unit());
}

TEST(Emitter, DeclaratorForms) {
  ast::TypeTable types;
  CSourceEmitter emitter;
  EXPECT_EQ(emitter.emitDeclarator(types.intType(), "x"), "int x");
  EXPECT_EQ(emitter.emitDeclarator(types.pointerTo(types.intType()), "p"), "int *p");
  EXPECT_EQ(emitter.emitDeclarator(types.arrayOf(types.doubleType(), 8), "a"),
            "double a[8]");
  EXPECT_EQ(emitter.emitDeclarator(
                types.arrayOf(types.arrayOf(types.intType(), 3), 2), "m"),
            "int m[2][3]");
  EXPECT_EQ(emitter.emitDeclarator(
                types.pointerTo(types.pointerTo(types.charType())), "argv"),
            "char **argv");
}

TEST(Emitter, GlobalsAndDirectives) {
  const std::string out = reemit("#include <stdio.h>\nint x = 1;\nint *p;\n");
  EXPECT_NE(out.find("#include <stdio.h>"), std::string::npos);
  EXPECT_NE(out.find("int x = 1;"), std::string::npos);
  EXPECT_NE(out.find("int *p;"), std::string::npos);
}

TEST(Emitter, FunctionWithBody) {
  const std::string out = reemit("int add(int a, int b) { return a + b; }");
  EXPECT_NE(out.find("int add(int a, int b)"), std::string::npos);
  EXPECT_NE(out.find("return a + b;"), std::string::npos);
}

TEST(Emitter, VoidParameterListPrinted) {
  const std::string out = reemit("int main() { return 0; }");
  EXPECT_NE(out.find("int main(void)"), std::string::npos);
}

TEST(Emitter, ControlFlowShapes) {
  const std::string out = reemit(R"(
void f(int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (i % 2 == 0)
            g(i);
        else
            h(i);
    }
    while (n > 0)
        n--;
    do {
        n++;
    } while (n < 5);
}
)");
  EXPECT_NE(out.find("for (i = 0; i < n; i++)"), std::string::npos);
  EXPECT_NE(out.find("if (i % 2 == 0)"), std::string::npos);
  EXPECT_NE(out.find("else"), std::string::npos);
  EXPECT_NE(out.find("while (n > 0)"), std::string::npos);
  EXPECT_NE(out.find("do"), std::string::npos);
  EXPECT_NE(out.find("while (n < 5);"), std::string::npos);
}

TEST(Emitter, ForLoopWithInlineDeclaration) {
  const std::string out = reemit("void f() { for (int i = 0; i < 3; i++) g(i); }");
  EXPECT_NE(out.find("for (int i = 0; i < 3; i++)"), std::string::npos);
}

TEST(Emitter, InitListPrinted) {
  const std::string out = reemit("int sum[3] = {0};");
  EXPECT_NE(out.find("int sum[3] = {0};"), std::string::npos);
}

TEST(Emitter, StringsAndCharsRoundTrip) {
  const std::string out = reemit(R"(void f() { g("a\nb", 'x'); })");
  EXPECT_NE(out.find("\"a\\nb\""), std::string::npos);
  EXPECT_NE(out.find("'x'"), std::string::npos);
}

TEST(Emitter, BreakContinueNull) {
  const std::string out = reemit("void f() { for (;;) { break; } while (1) continue; ; }");
  EXPECT_NE(out.find("break;"), std::string::npos);
  EXPECT_NE(out.find("continue;"), std::string::npos);
}

/// Property: emitted source reparses cleanly and re-emits to the same text
/// (a fixed point after the first round trip).
class ReparseFixedPoint : public ::testing::TestWithParam<const char*> {};

TEST_P(ReparseFixedPoint, EmitParseEmitIsStable) {
  const std::string once = reemit(GetParam());
  const std::string twice = reemit(once);
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, ReparseFixedPoint,
    ::testing::Values(
        "int x = 1 + 2 * 3;",
        "int f(int n) { return n ? n - 1 : 0; }",
        "double g(double *p, int i) { return p[i] * 2.0; }",
        R"(void h() { int a = 0; a += 1; a <<= 2; a = -a; })",
        R"(int main() { int v[4] = {1, 2, 3, 4}; return v[0]; })",
        R"(void loops(int n) { for (int i = 0; i < n; i++) { while (n) n--; } })"));

}  // namespace
}  // namespace hsm::codegen

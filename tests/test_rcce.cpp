// Tests for the RCCE runtime layer: allocators, typed array views, put/get.
#include <gtest/gtest.h>

#include "rcce/rcce.h"

namespace hsm::rcce {
namespace {

using sim::CoreContext;
using sim::SccMachine;
using sim::SimTask;

TEST(RcceEnv, ShmallocDelegates) {
  SccMachine machine;
  RcceEnv env(machine);
  const std::uint64_t a = env.shmalloc(100);
  const std::uint64_t b = env.shmalloc(8);
  EXPECT_GE(b, a + 100);
}

TEST(RcceEnv, SymmetricMpbAllocation) {
  SccMachine machine;
  RcceEnv env(machine);
  const std::uint64_t first = env.mpbMallocSymmetric(8, 64);
  const std::uint64_t second = env.mpbMallocSymmetric(8, 32);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(second, 64u);
}

TEST(RcceEnv, AsymmetricSlicesThrow) {
  SccMachine machine;
  RcceEnv env(machine);
  (void)machine.mpbMalloc(1, 8);  // desynchronize UE 1's slice
  EXPECT_THROW((void)env.mpbMallocSymmetric(4, 16), std::logic_error);
}

TEST(ShmArray, HostDataAndOffsets) {
  SccMachine machine;
  RcceEnv env(machine);
  ShmArray<double> a(env, 16);
  EXPECT_EQ(a.size(), 16u);
  a.hostData()[3] = 2.5;
  EXPECT_EQ(a.byteOffset(1) - a.byteOffset(0), sizeof(double));
  EXPECT_DOUBLE_EQ(reinterpret_cast<double*>(machine.shmData(a.byteOffset(3)))[0], 2.5);
}

SimTask shmArrayUser(CoreContext& ctx, ShmArray<double> arr, bool* ok) {
  co_await arr.write(ctx, 2, 7.5);
  double v = 0;
  co_await arr.read(ctx, 2, &v);
  double block[4] = {};
  co_await arr.readBlock(ctx, 0, 4, block);
  *ok = v == 7.5 && block[2] == 7.5;
}

TEST(ShmArray, TimedReadWriteRoundTrip) {
  SccMachine machine;
  RcceEnv env(machine);
  ShmArray<double> arr(env, 8);
  bool ok = false;
  machine.launch(sim::LaunchSpec(1, [&](CoreContext& ctx) { return shmArrayUser(ctx, arr, &ok); }));
  machine.run();
  EXPECT_TRUE(ok);
}

SimTask putGetPair(CoreContext& ctx, std::uint64_t off, int* received) {
  int token = 41 + ctx.ue();
  if (ctx.ue() == 0) {
    // RCCE put: deposit into UE 1's MPB.
    co_await put(ctx, 1, off, &token, sizeof(token));
  }
  co_await barrier(ctx);
  if (ctx.ue() == 1) {
    int got = 0;
    co_await get(ctx, 1, off, &got, sizeof(got));
    *received = got;
  }
}

TEST(Rcce, PutThenGetMovesData) {
  SccMachine machine;
  RcceEnv env(machine);
  const std::uint64_t off = env.mpbMallocSymmetric(2, 16);
  int received = 0;
  machine.launch(sim::LaunchSpec(2, [&](CoreContext& ctx) { return putGetPair(ctx, off, &received); }));
  machine.run();
  EXPECT_EQ(received, 41);
}

SimTask lockedIncrement(CoreContext& ctx, ShmArray<long long> acc) {
  for (int i = 0; i < 5; ++i) {
    co_await acquireLock(ctx, 3);
    long long v = 0;
    co_await acc.read(ctx, 0, &v);
    co_await acc.write(ctx, 0, v + 1);
    co_await releaseLock(ctx, 3);
  }
}

TEST(Rcce, LockedSharedCounterIsExact) {
  SccMachine machine;
  RcceEnv env(machine);
  ShmArray<long long> acc(env, 1);
  *acc.hostData() = 0;
  machine.launch(sim::LaunchSpec(6, [&](CoreContext& ctx) { return lockedIncrement(ctx, acc); }));
  machine.run();
  EXPECT_EQ(*acc.hostData(), 30);
}

/// RCCE chunk-loop ring exchange over a declared MpbScope: every UE puts a
/// multi-chunk block into its right neighbour's slice, then gets its own
/// slice back after the barrier — data shifts one place left per round.
SimTask ringExchange(CoreContext& ctx, std::uint64_t slot, std::size_t bytes,
                     std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> buf(bytes, static_cast<std::uint8_t>(0x10 + ctx.ue()));
  const int right = (ctx.ue() + 1) % ctx.numUes();
  for (int round = 0; round < 2; ++round) {
    co_await put(ctx, right, slot, buf.data(), bytes);
    co_await barrier(ctx);
    co_await get(ctx, ctx.ue(), slot, buf.data(), bytes);
    co_await barrier(ctx);
  }
  (*out)[static_cast<std::size_t>(ctx.ue())] = buf[bytes - 1];
}

std::pair<std::vector<std::uint8_t>, sim::Tick> runRing(bool mpb_coalescing) {
  sim::SccConfig cfg;
  cfg.mpb_coalescing = mpb_coalescing;
  SccMachine machine(cfg);
  RcceEnv env(machine);
  const std::uint64_t slot = env.mpbMallocSymmetric(4, 256);
  std::vector<std::uint8_t> out(4, 0);
  machine.launch(sim::LaunchSpec(4, [&](CoreContext& ctx) { return ringExchange(ctx, slot, 256, &out); }).withScope([](int ue, int num_ues) {
        return std::vector<int>{ue, (ue + 1) % num_ues};
      }));
  const sim::Tick makespan = machine.run();
  return {out, makespan};
}

TEST(Rcce, RingExchangeShiftsDataAndCoalescingIsTickExact) {
  const auto on = runRing(true);
  const auto off = runRing(false);
  EXPECT_EQ(on.second, off.second);  // bit-identical makespan
  EXPECT_EQ(on.first, off.first);
  // Two rounds shift each UE's block two places: UE u holds UE (u-2)'s byte.
  for (int ue = 0; ue < 4; ++ue) {
    EXPECT_EQ(on.first[static_cast<std::size_t>(ue)],
              static_cast<std::uint8_t>(0x10 + (ue + 2) % 4));
  }
}

SimTask mpbArrayUser(CoreContext& ctx, MpbArray<int> arr, std::vector<int>* out) {
  const int mine = 100 + ctx.ue();
  co_await arr.write(ctx, ctx.ue(), 0, mine);
  co_await ctx.barrier();
  int got = 0;
  co_await arr.read(ctx, (ctx.ue() + 1) % ctx.numUes(), 0, &got);
  (*out)[static_cast<std::size_t>(ctx.ue())] = got;
}

TEST(MpbArray, PerUeSlicesIndependent) {
  SccMachine machine;
  RcceEnv env(machine);
  MpbArray<int> arr(env, 4, 4);
  std::vector<int> out(4, 0);
  machine.launch(sim::LaunchSpec(4, [&](CoreContext& ctx) { return mpbArrayUser(ctx, arr, &out); }));
  machine.run();
  for (int ue = 0; ue < 4; ++ue) {
    EXPECT_EQ(out[static_cast<std::size_t>(ue)], 100 + (ue + 1) % 4);
  }
}

}  // namespace
}  // namespace hsm::rcce

// Microbenchmarks of the simulator substrate (google-benchmark): event
// kernel throughput, uncached word transactions, MPB transfers, bulk
// copies, and barrier episodes.
#include <benchmark/benchmark.h>

#include "rcce/rcce.h"
#include "sim/machine.h"

namespace {

using namespace hsm;

sim::SimTask spinner(sim::CoreContext& ctx, int iterations) {
  for (int i = 0; i < iterations; ++i) co_await ctx.compute(1);
}

void BM_EventKernel(benchmark::State& state) {
  for (auto _ : state) {
    sim::SccMachine machine;
    machine.launch(8, [&](sim::CoreContext& ctx) { return spinner(ctx, 1000); });
    benchmark::DoNotOptimize(machine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * 1000);
}
BENCHMARK(BM_EventKernel);

sim::SimTask shmReader(sim::CoreContext& ctx, std::uint64_t base, int words) {
  std::uint64_t value = 0;
  for (int i = 0; i < words; ++i) {
    co_await ctx.shmRead(base + static_cast<std::uint64_t>(i) * 8, &value, 8);
  }
}

void BM_UncachedWords(benchmark::State& state) {
  for (auto _ : state) {
    sim::SccMachine machine;
    const std::uint64_t base = machine.shmalloc(1 << 16);
    machine.launch(8, [&](sim::CoreContext& ctx) { return shmReader(ctx, base, 512); });
    benchmark::DoNotOptimize(machine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * 512);
}
BENCHMARK(BM_UncachedWords);

sim::SimTask mpbPingPong(sim::CoreContext& ctx, std::uint64_t off, int rounds) {
  std::uint8_t buf[64] = {};
  const int peer = ctx.ue() == 0 ? 1 : 0;
  for (int i = 0; i < rounds; ++i) {
    co_await rcce::put(ctx, peer, off, buf, sizeof(buf));
    co_await rcce::get(ctx, peer, off, buf, sizeof(buf));
  }
}

void BM_MpbPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::SccMachine machine;
    rcce::RcceEnv env(machine);
    const std::uint64_t off = env.mpbMallocSymmetric(2, 64);
    machine.launch(2, [&](sim::CoreContext& ctx) { return mpbPingPong(ctx, off, 256); });
    benchmark::DoNotOptimize(machine.run());
  }
}
BENCHMARK(BM_MpbPingPong);

sim::SimTask barrierLoop(sim::CoreContext& ctx, int rounds) {
  for (int i = 0; i < rounds; ++i) co_await ctx.barrier();
}

void BM_Barrier32(benchmark::State& state) {
  for (auto _ : state) {
    sim::SccMachine machine;
    machine.launch(32, [&](sim::CoreContext& ctx) { return barrierLoop(ctx, 64); });
    benchmark::DoNotOptimize(machine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Barrier32);

sim::SimTask bulkReader(sim::CoreContext& ctx, std::uint64_t base, int blocks) {
  std::vector<std::uint8_t> buf(2048);
  for (int i = 0; i < blocks; ++i) {
    co_await ctx.shmReadBulk(base + static_cast<std::uint64_t>(i) * 2048, buf.data(),
                             buf.size());
  }
}

void BM_BulkCopy(benchmark::State& state) {
  for (auto _ : state) {
    sim::SccMachine machine;
    const std::uint64_t base = machine.shmalloc(1 << 20);
    machine.launch(8, [&](sim::CoreContext& ctx) { return bulkReader(ctx, base, 64); });
    benchmark::DoNotOptimize(machine.run());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * 64 * 2048);
}
BENCHMARK(BM_BulkCopy);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks of the simulator substrate, emitted as machine-readable
// JSON (one object on stdout) for the tracked BENCH_*.json trajectory
// (BENCH_baseline.json is committed; CI regenerates BENCH_pr.json and
// scripts/compare_bench.py gates regressions).
//
// The coalescable scenarios (word-granular shared memory AND chunk-granular
// MPB put/get) run four ways — per-resource-horizon coalescing with
// sync-aware wake chains, legacy global-horizon coalescing, sync-blind
// per-resource coalescing, and coalescing off — and verify the engine's
// equivalence bar: coalescing may eliminate events but must leave the
// makespan and every per-task completion Tick bit-identical across all
// modes. Scenarios with a plan-driven twin (ExecutionPlan-launched,
// regions mapped in the cacheability map) hold the twin to the same
// bit-identity bar, and the mixed_policy_8ue scenario gates the
// ExecutionPlan payoff: a per-region cached/uncached split must beat both
// machine-wide settings. A violated bar makes the process exit non-zero,
// so this binary doubles as a CI smoke test.
//
// Reported per timed run: host wall seconds, engine events, events/sec,
// simulated uncached words / MPB chunks and the engine events they cost
// (their combined ratio is the coalescing rate), plus derived
// speedup/reduction ratios per scenario. A separate sweep quantifies the
// Tick error of the fairness quanta > 1 against the exact path on the
// contended scenarios.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "partition/execution_plan.h"
#include "rcce/rcce.h"
#include "sim/machine.h"
#include "workloads/benchmark.h"
#include "workloads/kv_store.h"

namespace {

using namespace hsm;
using sim::Tick;

struct Mode {
  bool coalescing = true;      ///< gates both shm_coalescing and mpb_coalescing
  bool per_resource = true;    ///< scoped (controller/port) vs global horizon
  std::uint32_t quantum = 1;   ///< shm word AND mpb chunk fairness quantum
  bool sync_aware = true;      ///< wake-chain horizon refinement
  /// Shared-memory routing: 0 = uncached words, 1 = swcache write-back,
  /// 2 = swcache write-through no-allocate.
  int swcache = 0;
  /// Conservative-PDES worker lanes (SccConfig::engine_lanes). Runs whose
  /// components the engine cannot prove disjoint fall back to the sequential
  /// loop (lanes_used reports what actually ran).
  std::uint32_t lanes = 1;
  /// Simulated-time trace recorder (SccConfig::trace_enabled). Enabled only
  /// by the obs_trace_8ue section: the tracked runs stay untraced so their
  /// events/sec trajectory measures the engine, not the recorder.
  bool trace = false;
};

struct RunStats {
  double wall_seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t shm_words = 0;       ///< uncached word transactions
  std::uint64_t shm_word_events = 0;
  std::uint64_t mpb_chunks = 0;
  std::uint64_t mpb_chunk_events = 0;
  std::uint64_t swcache_words = 0;   ///< words served through the swcache
  std::uint64_t swcache_word_hits = 0;
  std::uint64_t swcache_wt_words = 0;  ///< written-through subset (also in shm_words)
  std::uint64_t swcache_line_txns = 0;  ///< line fills + dirty write-backs
  std::uint64_t swcache_line_events = 0;
  std::uint64_t mpb_scope_violations = 0;  ///< accesses outside a declared plan
  std::uint32_t engine_lanes = 1;  ///< configured worker lanes
  std::uint32_t lanes_used = 1;    ///< lanes the engine actually ran (rep 0)
  std::vector<std::uint64_t> lane_events;  ///< per-lane events (rep 0, parallel only)
  Tick makespan = 0;
  std::vector<Tick> completions;
  std::vector<std::uint8_t> result_bytes;  ///< extracted output region

  [[nodiscard]] double eventsPerSec() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0;
  }
  /// Logical shared-memory words: uncached transactions plus words served
  /// through the swcache, minus the written-through subset (those words are
  /// swcache accesses AND uncached transactions — counting both would
  /// inflate write-through runs by their write volume).
  [[nodiscard]] std::uint64_t logicalWords() const {
    return shm_words + swcache_words - swcache_wt_words;
  }
  /// Simulated logical shared-memory words per host second — the throughput
  /// that bounds sweep turnaround. Invariant to the routing and to how (or
  /// whether) those words hit engine events.
  [[nodiscard]] double wordsPerSec() const {
    return wall_seconds > 0 ? static_cast<double>(logicalWords()) / wall_seconds : 0;
  }
  [[nodiscard]] double chunksPerSec() const {
    return wall_seconds > 0 ? static_cast<double>(mpb_chunks) / wall_seconds : 0;
  }
  /// Fraction of coalescable transactions (uncached shm words, MPB chunks,
  /// swcache line transfers) whose engine event was coalesced away.
  [[nodiscard]] double coalescingRate() const {
    const std::uint64_t txns = shm_words + mpb_chunks + swcache_line_txns;
    const std::uint64_t txn_events =
        shm_word_events + mpb_chunk_events + swcache_line_events;
    return txns > 0
               ? 1.0 - static_cast<double>(txn_events) / static_cast<double>(txns)
               : 0.0;
  }
  [[nodiscard]] double swcacheHitRate() const {
    return swcache_words > 0 ? static_cast<double>(swcache_word_hits) /
                                   static_cast<double>(swcache_words)
                             : 0.0;
  }
  /// Smallest / largest per-lane share of the parallel run's events
  /// (lane_events[i] / total). Even sharding would put every lane at
  /// 1/lanes_used; compare_bench.py flags a min share collapsing below half
  /// of that. Zero when the run fell back to the sequential loop.
  [[nodiscard]] double laneShareMin() const {
    std::uint64_t total = 0, least = ~0ull;
    for (const std::uint64_t n : lane_events) {
      total += n;
      least = std::min(least, n);
    }
    return total > 0 ? static_cast<double>(least) / static_cast<double>(total) : 0.0;
  }
  [[nodiscard]] double laneShareMax() const {
    std::uint64_t total = 0, most = 0;
    for (const std::uint64_t n : lane_events) {
      total += n;
      most = std::max(most, n);
    }
    return total > 0 ? static_cast<double>(most) / static_cast<double>(total) : 0.0;
  }
};

struct Workload {
  std::string name;
  int ues = 1;
  int repetitions = 1;  ///< timed repetitions, wall time accumulated
  std::function<void(sim::SccMachine&)> setup;  ///< shmalloc etc., then launch
  /// Optional output region [offset, offset+bytes) of shared DRAM extracted
  /// after the first rep — the functional result the cached/uncached A/B
  /// must reproduce bit-identically (allocation order is deterministic, so
  /// fixed offsets are stable across machines).
  std::uint64_t extract_offset = 0;
  std::size_t extract_bytes = 0;
  /// Minimum swcache hit rate the cached run must clear (0 = ungated).
  /// Feeds the process exit code: a silent protocol regression that stops
  /// caching read-mostly data must fail CI, not just shift a metric.
  double min_hit_rate = 0.0;
  /// Optional plan-driven twin of `setup` (ExecutionPlan-launched, regions
  /// mapped in the cacheability map): when present, its Ticks must be
  /// bit-identical to the legacy-knob runs — the plan API cutover must not
  /// move a single Tick on existing scenarios.
  std::function<void(sim::SccMachine&)> setup_plan;
};

RunStats runWorkloadOnce(const Workload& w, const Mode& mode,
                         bool plan_setup = false) {
  RunStats stats;
  for (int rep = 0; rep < w.repetitions; ++rep) {
    sim::SccConfig cfg;
    cfg.shm_coalescing = mode.coalescing;
    cfg.mpb_coalescing = mode.coalescing;
    cfg.per_resource_horizon = mode.per_resource;
    cfg.sync_aware_horizon = mode.sync_aware;
    cfg.shm_fairness_quantum_words = mode.quantum;
    cfg.mpb_fairness_quantum_chunks = mode.quantum;
    cfg.shm_swcache = mode.swcache != 0;
    cfg.swcache_policy = mode.swcache == 2 ? 1 : 0;
    cfg.engine_lanes = mode.lanes;
    cfg.trace_enabled = mode.trace;
    sim::SccMachine machine(cfg);
    (plan_setup ? w.setup_plan : w.setup)(machine);
    stats.makespan = machine.run();
    stats.wall_seconds += machine.engine().hostWallSeconds();
    stats.events += machine.engine().eventsProcessed();
    stats.shm_words += machine.shmWordsSimulated();
    stats.shm_word_events += machine.shmWordEvents();
    stats.mpb_chunks += machine.mpbChunksSimulated();
    stats.mpb_chunk_events += machine.mpbChunkEvents();
    const sim::SwCacheStats sw = machine.swcacheTotals();
    stats.swcache_words += sw.word_accesses;
    stats.swcache_word_hits += sw.word_hits;
    stats.swcache_wt_words += sw.writethrough_words;
    stats.swcache_line_txns += machine.swcacheLinesSimulated();
    stats.swcache_line_events += machine.swcacheLineEvents();
    stats.mpb_scope_violations += machine.mpbScopeViolations();
    if (rep == 0) {
      stats.engine_lanes = mode.lanes;
      stats.lanes_used = machine.engine().lanesUsed();
      stats.lane_events = machine.engine().laneEventCounts();
      for (int ue = 0; ue < w.ues; ++ue) {
        stats.completions.push_back(
            machine.engine().completionTime(static_cast<std::size_t>(ue)));
      }
      if (w.extract_bytes > 0) {
        const std::uint8_t* out = machine.shmData(w.extract_offset);
        stats.result_bytes.assign(out, out + w.extract_bytes);
      }
    }
  }
  return stats;
}

/// Best-of-3 trials: the simulation is deterministic (events, words, Ticks
/// are identical per trial), only host wall time varies, so the minimum wall
/// is the peak-throughput measurement the BENCH_*.json trajectory tracks —
/// far more stable across runs and machines than a single timing.
RunStats runWorkload(const Workload& w, const Mode& mode, bool plan_setup = false) {
  RunStats best = runWorkloadOnce(w, mode, plan_setup);
  for (int trial = 1; trial < 3; ++trial) {
    RunStats next = runWorkloadOnce(w, mode, plan_setup);
    if (next.wall_seconds < best.wall_seconds) best = std::move(next);
  }
  return best;
}

// --- workload kernels -------------------------------------------------------

sim::SimTask blockReader(sim::CoreContext& ctx, std::uint64_t base, int blocks,
                         std::size_t block_bytes) {
  std::vector<std::uint8_t> buf(block_bytes);
  for (int i = 0; i < blocks; ++i) {
    co_await ctx.shmRead(base + static_cast<std::uint64_t>(i) * block_bytes, buf.data(),
                         block_bytes);
  }
}

sim::SimTask staggeredMix(sim::CoreContext& ctx, std::uint64_t base, int iterations,
                          std::size_t block_bytes) {
  std::vector<std::uint8_t> buf(block_bytes);
  const std::uint64_t mine =
      base + static_cast<std::uint64_t>(ctx.ue()) * block_bytes;
  for (int i = 0; i < iterations; ++i) {
    // Compute-heavy, UE-skewed phases (the shape of the paper's kernels:
    // long local computation punctuated by shared-data block IO), so cores
    // mostly take turns at the controllers instead of hammering in lockstep.
    co_await ctx.compute(50000 + static_cast<std::uint64_t>(ctx.ue()) * 50000);
    co_await ctx.shmRead(mine, buf.data(), block_bytes);
    co_await ctx.shmWrite(mine, buf.data(), block_bytes);
  }
}

/// Lock- and barrier-punctuated block IO: the nastiest mode for coalescing
/// because blocked waiters force the per-controller horizon back to the
/// global one until every task is pending again.
sim::SimTask syncedMix(sim::CoreContext& ctx, std::uint64_t base,
                       std::uint64_t counter_off, int iterations,
                       std::size_t block_bytes) {
  std::vector<std::uint8_t> buf(block_bytes);
  const std::uint64_t mine =
      base + static_cast<std::uint64_t>(ctx.ue()) * block_bytes;
  for (int i = 0; i < iterations; ++i) {
    co_await ctx.compute(20000 + static_cast<std::uint64_t>(ctx.ue() % 3) * 30000);
    co_await ctx.shmRead(mine, buf.data(), block_bytes);
    co_await ctx.lockAcquire(0);
    std::uint64_t counter = 0;
    co_await ctx.shmRead(counter_off, &counter, sizeof(counter));
    ++counter;
    co_await ctx.shmWrite(counter_off, &counter, sizeof(counter));
    co_await ctx.lockRelease(0);
    co_await ctx.barrier();
  }
}

/// Word-granular hammer against one shared 4 KB block. Expressed as uncached
/// block reads: the run loop issues the exact per-word transaction recurrence
/// the old read-per-word loop did (identical Ticks), but presents each pass
/// as ONE in-flight word-run — which is what lets round-robin contention
/// batching (SccMachine's joint solve) collapse interleaved turns into a few
/// events per task instead of one per word.
sim::SimTask wordHammer(sim::CoreContext& ctx, std::uint64_t base, int words) {
  std::vector<std::uint8_t> buf(512 * 8);
  int left = words;
  while (left > 0) {
    const int pass = left < 512 ? left : 512;
    co_await ctx.shmRead(base, buf.data(), static_cast<std::size_t>(pass) * 8);
    left -= pass;
  }
}

/// The conservative-PDES showcase: controller-sharing UE pairs ({ue, ue+4}
/// land in the same mesh quadrant) that compute, read-modify-write their own
/// disjoint block on their own quadrant controller, and synchronize only
/// inside the pair (sync group ue%4). With an empty declared MPB scope the
/// reach set of each pair is exactly its one controller plus its one group
/// barrier, so the engine proves four disjoint components and shards the
/// event heap across up to four lanes. The spin loop makes the workload
/// event-dominated — the regime where per-lane heaps actually pay.
sim::SimTask quadrantPairs(sim::CoreContext& ctx, std::uint64_t base, int rounds,
                           int spins, std::size_t block_bytes) {
  std::vector<std::uint8_t> buf(block_bytes);
  const auto ue = static_cast<std::uint64_t>(ctx.ue());
  const std::uint64_t mine = base + ue * block_bytes;
  for (int r = 0; r < rounds; ++r) {
    for (int s = 0; s < spins; ++s) {
      co_await ctx.compute(40 + (ue % 3) + static_cast<std::uint64_t>(s % 5));
    }
    co_await ctx.shmRead(mine, buf.data(), block_bytes);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::uint8_t>(buf[i] + ue + static_cast<std::uint64_t>(r) + i);
    }
    co_await ctx.shmWrite(mine, buf.data(), block_bytes);
    co_await ctx.barrier();  // the pair's group barrier (LaunchSpec sync groups)
  }
}

sim::SimTask spinner(sim::CoreContext& ctx, int iterations) {
  for (int i = 0; i < iterations; ++i) co_await ctx.compute(1);
}

sim::SimTask barrierLoop(sim::CoreContext& ctx, int rounds) {
  for (int i = 0; i < rounds; ++i) co_await ctx.barrier();
}

/// RCCE put/get chunk-loop ring exchange: each UE deposits a 1 KB block into
/// its right neighbour's MPB slice, then reads back what its left neighbour
/// deposited into its own — the transport pattern the translator emits for
/// neighbour exchanges. Every 1 KB transfer is 32 chunk transactions on the
/// owning tile's port; the declared MpbScope ({self, right}) gives each task
/// a tight port reach set so unrelated tiles' traffic cannot truncate runs.
sim::SimTask rcceRing(sim::CoreContext& ctx, std::uint64_t slot, int rounds,
                      std::size_t bytes) {
  std::vector<std::uint8_t> buf(bytes, static_cast<std::uint8_t>(ctx.ue()));
  const int right = (ctx.ue() + 1) % ctx.numUes();
  // Double-buffered shift: round r reads the block the left neighbour
  // deposited in round r-1 (parity (r+1)%2) and deposits into the right
  // neighbour's other parity slot; one barrier per round bounds the skew so
  // parities never collide. The per-UE compute stagger is the usual
  // process-on-received-data phase of ring codes.
  for (int r = 0; r < rounds; ++r) {
    co_await ctx.compute(20000 + static_cast<std::uint64_t>(ctx.ue()) * 15000);
    co_await rcce::get(ctx, ctx.ue(),
                       slot + static_cast<std::uint64_t>((r + 1) % 2) * bytes,
                       buf.data(), bytes);
    co_await rcce::put(ctx, right,
                       slot + static_cast<std::uint64_t>(r % 2) * bytes,
                       buf.data(), bytes);
    co_await ctx.barrier();
  }
}

/// Mixed off-chip + on-chip traffic: word-granular shm block IO followed by
/// an MPB deposit to the right neighbour, barrier-punctuated — both
/// coalesced paths and the sync-aware horizon active in one workload.
sim::SimTask mixedShmMpb(sim::CoreContext& ctx, std::uint64_t shm_base,
                         std::uint64_t slot, int rounds, std::size_t block_bytes,
                         std::size_t mpb_bytes) {
  std::vector<std::uint8_t> buf(block_bytes);
  const std::uint64_t mine =
      shm_base + static_cast<std::uint64_t>(ctx.ue()) * block_bytes;
  const int right = (ctx.ue() + 1) % ctx.numUes();
  for (int r = 0; r < rounds; ++r) {
    // ue%3 is coprime with the 4-quadrant UE spread, so controller-sharing
    // UE pairs (ue, ue+4) land in different compute phases.
    co_await ctx.compute(30000 + static_cast<std::uint64_t>(ctx.ue() % 3) * 25000);
    co_await ctx.shmRead(mine, buf.data(), block_bytes);
    co_await rcce::put(ctx, right, slot, buf.data(), mpb_bytes);
    co_await ctx.barrier();
  }
}

/// Read-mostly shared data (the swcache's target workload): each UE sweeps
/// its 4 KB window of a shared grid `sweeps` times between barriers,
/// folding the bytes into a checksum, then publishes a small result block.
/// Uncached, every word of every sweep is a controller transaction; with the
/// swcache, the window is filled once per round (barrier departure
/// self-invalidates) and re-read from fast private memory.
sim::SimTask stencilReadMostly(sim::CoreContext& ctx, std::uint64_t grid,
                               std::uint64_t out, int rounds, int sweeps,
                               std::size_t window_bytes) {
  std::vector<std::uint64_t> buf(window_bytes / 8);
  const std::uint64_t mine =
      grid + static_cast<std::uint64_t>(ctx.ue()) * window_bytes;
  std::uint64_t results[8] = {};
  for (int r = 0; r < rounds; ++r) {
    std::uint64_t acc = 0;
    for (int s = 0; s < sweeps; ++s) {
      co_await ctx.shmRead(mine, buf.data(), window_bytes);
      for (const std::uint64_t v : buf) acc += v * (static_cast<std::uint64_t>(s) + 1);
      co_await ctx.computeOps(buf.size(), sim::OpClass::IntAlu);
    }
    for (std::uint64_t& v : results) v = acc ^ (v << 1);
    co_await ctx.shmWrite(out + static_cast<std::uint64_t>(ctx.ue()) * sizeof(results),
                          results, sizeof(results));
    co_await ctx.barrier();
  }
}

/// LU-style elimination over a shared matrix: in round k every UE updates
/// its own rows r > k (striped r % UEs) against pivot row k, re-reading the
/// pivot from shared memory per own row. DRF: the pivot row was last
/// written in round k-1 (flushed at that barrier) and each row has one
/// writer. The swcache turns the repeated pivot reads and the
/// read-modify-write of own rows into hits with dirty lines flushed at the
/// barrier.
sim::SimTask luSharedCached(sim::CoreContext& ctx, std::uint64_t m0, std::size_t n,
                            int rounds) {
  const auto ues = static_cast<std::size_t>(ctx.numUes());
  std::vector<double> pivot(n), row(n);
  for (int k = 0; k < rounds; ++k) {
    const auto ku = static_cast<std::size_t>(k);
    for (std::size_t r = ku + 1; r < n; ++r) {
      if (r % ues != static_cast<std::size_t>(ctx.ue())) continue;
      co_await ctx.shmRead(m0 + ku * n * 8, pivot.data(), n * 8);
      co_await ctx.shmRead(m0 + r * n * 8, row.data(), n * 8);
      const double factor = row[ku] / pivot[ku];
      row[ku] = factor;
      for (std::size_t j = ku + 1; j < n; ++j) row[j] -= factor * pivot[j];
      co_await ctx.computeOps(1, sim::OpClass::FpDiv);
      co_await ctx.computeOps(2 * (n - ku - 1), sim::OpClass::FpAdd);
      co_await ctx.shmWrite(m0 + r * n * 8, row.data(), n * 8);
    }
    co_await ctx.barrier();
  }
}

/// The ExecutionPlan mixed-policy showcase: ONE run combining a read-mostly
/// lookup table (where caching wins) with a lock-guarded reduction cell
/// (where uncached words win — every cached update costs a line fill plus a
/// release-point write-back instead of two cheap word transactions). Neither
/// machine-wide swcache setting can serve both; the per-region cacheability
/// map can.
sim::SimTask mixedPolicy(sim::CoreContext& ctx, std::uint64_t table,
                         std::uint64_t cell, std::uint64_t out, int rounds,
                         int sweeps, int updates, std::size_t window_bytes) {
  std::vector<std::uint64_t> buf(window_bytes / 8);
  const std::uint64_t mine =
      table + static_cast<std::uint64_t>(ctx.ue()) * window_bytes;
  std::uint64_t results[8] = {};
  for (int r = 0; r < rounds; ++r) {
    std::uint64_t acc = 0;
    for (int s = 0; s < sweeps; ++s) {
      co_await ctx.shmRead(mine, buf.data(), window_bytes);
      for (const std::uint64_t v : buf) acc += v * (static_cast<std::uint64_t>(s) + 1);
      co_await ctx.computeOps(buf.size(), sim::OpClass::IntAlu);
    }
    for (int u = 0; u < updates; ++u) {
      co_await ctx.lockAcquire(0);
      std::uint64_t value = 0;
      co_await ctx.shmRead(cell, &value, sizeof(value));
      value += 1 + (acc & 1);
      co_await ctx.shmWrite(cell, &value, sizeof(value));
      co_await ctx.lockRelease(0);
    }
    for (std::uint64_t& v : results) v = acc ^ (v << 1);
    co_await ctx.shmWrite(out + static_cast<std::uint64_t>(ctx.ue()) * sizeof(results),
                          results, sizeof(results));
    co_await ctx.barrier();
  }
}

sim::SimTask mpbPingPong(sim::CoreContext& ctx, std::uint64_t off, int rounds) {
  std::uint8_t buf[64] = {};
  const int peer = ctx.ue() == 0 ? 1 : 0;
  for (int i = 0; i < rounds; ++i) {
    co_await rcce::put(ctx, peer, off, buf, sizeof(buf));
    co_await rcce::get(ctx, peer, off, buf, sizeof(buf));
  }
}

sim::SimTask bulkReader(sim::CoreContext& ctx, std::uint64_t base, int blocks) {
  std::vector<std::uint8_t> buf(2048);
  for (int i = 0; i < blocks; ++i) {
    co_await ctx.shmReadBulk(base + static_cast<std::uint64_t>(i) * 2048, buf.data(),
                             buf.size());
  }
}

// --- drf detector scenarios -------------------------------------------------

/// The canonical data race: a lockless read-modify-write on one shared word.
/// Every pair of increments from different UEs is unordered (no lock, no
/// barrier), so the happens-before detector must report it in BOTH
/// granularity modes. The per-UE compute skew spreads the accesses across
/// simulated time — a race is a missing edge, not a same-Tick collision, and
/// the detector must see through the skew.
sim::SimTask racyCounter(sim::CoreContext& ctx, std::uint64_t counter_off,
                         int iterations) {
  const auto ue = static_cast<std::uint64_t>(ctx.ue());
  for (int i = 0; i < iterations; ++i) {
    co_await ctx.compute(1000 + ue * 777);
    std::uint64_t v = 0;
    co_await ctx.shmRead(counter_off, &v, sizeof(v));
    ++v;
    co_await ctx.shmWrite(counter_off, &v, sizeof(v));
  }
}

/// The false-sharing probe: each UE read-modify-writes its OWN 8-byte slot,
/// but four slots pack into each 32-byte line of a swcache-cached region.
/// Word-granular mode sees disjoint words and stays silent; line-granular
/// mode (the current swcache contract) must report a race on the shared
/// line and flag every report FALSE-SHARING (non-overlapping byte ranges).
sim::SimTask falseSharingSlots(sim::CoreContext& ctx, std::uint64_t base,
                               int iterations) {
  const auto ue = static_cast<std::uint64_t>(ctx.ue());
  const std::uint64_t mine = base + ue * 8;
  std::uint64_t v = ue;
  for (int i = 0; i < iterations; ++i) {
    co_await ctx.compute(500 + ue * 333);
    co_await ctx.shmRead(mine, &v, sizeof(v));
    v += ue + 1;
    co_await ctx.shmWrite(mine, &v, sizeof(v));
  }
}

// --- fault sweep ------------------------------------------------------------

/// The fault-sweep kernel: every faultable machine path in ONE workload — a
/// cached per-UE window (single-writer DRF, dirty lines flushed at barrier
/// releases → swcache-flush faults), uncached block publishes (→ shm-write
/// faults + controller stalls), an MPB ring exchange (→ MPB transfer
/// faults), and a lock-guarded shared counter between barriers (→ the
/// sync-timeout / deadlock-watchdog surface). All computed values are
/// timing-independent, so the final shared memory must be byte-identical
/// between a faulty run (all faults recovered) and a fault-free one.
sim::SimTask faultMix(sim::CoreContext& ctx, std::uint64_t table,
                      std::uint64_t blocks, std::uint64_t counter_off,
                      std::uint64_t out, std::uint64_t slot, int rounds,
                      std::size_t window_bytes, std::size_t block_bytes,
                      std::size_t mpb_bytes) {
  const auto ue = static_cast<std::uint64_t>(ctx.ue());
  std::vector<std::uint64_t> win(window_bytes / 8);
  std::vector<std::uint8_t> blk(block_bytes);
  std::vector<std::uint8_t> ring(mpb_bytes, static_cast<std::uint8_t>(ue + 1));
  const std::uint64_t my_win = table + ue * window_bytes;
  const std::uint64_t my_blk = blocks + ue * block_bytes;
  const int right = (ctx.ue() + 1) % ctx.numUes();
  std::uint64_t acc = ue + 1;
  for (int r = 0; r < rounds; ++r) {
    co_await ctx.compute(20000 + (ue % 3) * 30000);
    // Cached read-modify-write of the own window (one writer per window).
    co_await ctx.shmRead(my_win, win.data(), window_bytes);
    for (std::uint64_t& v : win) {
      acc = acc * 6364136223846793005ull + 1442695040888963407ull;
      v += acc & 0xff;
    }
    co_await ctx.shmWrite(my_win, win.data(), window_bytes);
    // Uncached block publish.
    for (std::size_t i = 0; i < block_bytes; ++i) {
      blk[i] = static_cast<std::uint8_t>(acc + i + static_cast<std::uint64_t>(r));
    }
    co_await ctx.shmWrite(my_blk, blk.data(), block_bytes);
    // MPB ring: deposit into the right neighbour's parity slot, barrier,
    // read back what the left neighbour deposited into ours.
    co_await rcce::put(ctx, right,
                       slot + static_cast<std::uint64_t>(r % 2) * mpb_bytes,
                       ring.data(), mpb_bytes);
    co_await ctx.barrier();
    co_await rcce::get(ctx, ctx.ue(),
                       slot + static_cast<std::uint64_t>(r % 2) * mpb_bytes,
                       ring.data(), mpb_bytes);
    // Lock-guarded counter: increments are commutative, so the final value
    // is order- (hence timing-) independent.
    co_await ctx.lockAcquire(0);
    std::uint64_t c = 0;
    co_await ctx.shmRead(counter_off, &c, sizeof(c));
    c += ring[0] + 1u;
    co_await ctx.shmWrite(counter_off, &c, sizeof(c));
    co_await ctx.lockRelease(0);
    co_await ctx.barrier();
  }
  co_await ctx.shmWrite(out + ue * 8, &acc, sizeof(acc));
}

/// Outcome of one fault-sweep run, including how it ended: normally, in a
/// detected deadlock, or in a sync timeout.
struct FaultRun {
  Tick makespan = 0;
  std::vector<Tick> completions;
  std::vector<std::uint8_t> memory;  ///< full shared region after the run
  sim::FaultStats stats;
  bool deadlock = false;
  bool sync_timeout = false;
  bool frozen_named = false;  ///< hang report names the permafrost task,
                              ///< parked with no sync object (wedged)
  std::uint64_t drf_races = 0;  ///< detector reports (drf_check runs only)
};

FaultRun runFaultSweep(const sim::FaultPlan& plan, Tick sync_timeout_ticks,
                       bool drf_check = false) {
  constexpr int kUes = 8, kRounds = 6;
  constexpr std::size_t kWindowB = 2048, kBlockB = 1024, kMpbB = 512;
  sim::SccConfig cfg;
  cfg.fault = plan;
  cfg.sync_timeout_ticks = sync_timeout_ticks;
  cfg.drf_check = drf_check;
  sim::SccMachine m(cfg);
  rcce::RcceEnv env(m);
  const std::uint64_t table = m.shmalloc(kUes * kWindowB);
  const std::uint64_t blocks = m.shmalloc(kUes * kBlockB);
  const std::uint64_t counter = m.shmalloc(64);
  const std::uint64_t out = m.shmalloc(kUes * 8);
  auto* g = reinterpret_cast<std::uint64_t*>(m.shmData(table));
  for (std::size_t i = 0; i < kUes * kWindowB / 8; ++i) {
    g[i] = 0x9e3779b97f4a7c15ull * (i + 1);
  }
  m.setShmCacheability(table, table + kUes * kWindowB, true);
  const std::uint64_t slot = env.mpbMallocSymmetric(kUes, 2 * kMpbB);
  m.launch(sim::LaunchSpec(kUes, [=](sim::CoreContext& ctx) {
    return faultMix(ctx, table, blocks, counter, out, slot, kRounds, kWindowB,
                    kBlockB, kMpbB);
  }));
  FaultRun res;
  try {
    res.makespan = m.run();
  } catch (const sim::DeadlockError& e) {
    res.deadlock = true;
    for (const sim::HangReport::Waiter& w : e.report().waiters) {
      if (static_cast<int>(w.task) == plan.permafrost_ue &&
          w.sync == sim::Engine::kNoSync) {
        res.frozen_named = true;
      }
    }
  } catch (const sim::SyncTimeout&) {
    res.sync_timeout = true;
  }
  for (int ue = 0; ue < kUes; ++ue) {
    res.completions.push_back(
        m.engine().completionTime(static_cast<std::size_t>(ue)));
  }
  const std::uint8_t* base = m.shmData(table);
  res.memory.assign(base, base + (out + kUes * 8 - table));
  res.stats = m.faultStats();
  if (drf_check) res.drf_races = m.drfChecker().reports().size();
  return res;
}

// --- drf run helper ---------------------------------------------------------

/// One detector-instrumented run: Ticks plus the checker's verdict. The
/// formatted report string is the byte-identity oracle — two runs that
/// differ only in engine_lanes or coalescing mode must reproduce it exactly
/// (docs/race_detection.md, "Determinism contract").
struct DrfRun {
  Tick makespan = 0;
  std::vector<Tick> completions;
  std::uint64_t races = 0;
  std::uint64_t checked = 0;        ///< accesses the checker examined
  bool false_sharing_only = true;   ///< every report carries the FS flag
  std::string reports;              ///< DrfChecker::formatReports()
};

DrfRun runDrfOnce(bool drf, bool word_granular, std::uint32_t lanes,
                  bool coalescing, bool per_resource, int ues,
                  const std::function<void(sim::SccMachine&)>& setup) {
  sim::SccConfig cfg;
  cfg.drf_check = drf;
  cfg.drf_word_granular = word_granular;
  cfg.engine_lanes = lanes;
  cfg.shm_coalescing = coalescing;
  cfg.mpb_coalescing = coalescing;
  cfg.per_resource_horizon = per_resource;
  sim::SccMachine m(cfg);
  setup(m);
  DrfRun r;
  r.makespan = m.run();
  for (int ue = 0; ue < ues; ++ue) {
    r.completions.push_back(m.engine().completionTime(static_cast<std::size_t>(ue)));
  }
  if (drf) {
    r.races = m.drfChecker().reports().size();
    r.checked = m.drfChecker().accessesChecked();
    for (const auto& rep : m.drfChecker().reports()) {
      r.false_sharing_only = r.false_sharing_only && rep.false_sharing;
    }
    r.reports = m.drfChecker().formatReports();
  }
  return r;
}

// --- JSON emission ----------------------------------------------------------

void printRun(std::string* out, const char* key, const RunStats& s) {
  // "shm_words"/"shm_words_per_sec" cover the *logical* shared-word workload
  // (RunStats::logicalWords) so the compare_bench.py throughput metric stays
  // invariant to the routing.
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"wall_seconds\": %.6f, \"events\": %llu, "
                "\"events_per_sec\": %.0f, \"shm_words\": %llu, "
                "\"shm_word_events\": %llu, \"shm_words_per_sec\": %.0f, "
                "\"mpb_chunks\": %llu, \"mpb_chunk_events\": %llu, "
                "\"mpb_chunks_per_sec\": %.0f, "
                "\"swcache_words\": %llu, \"swcache_line_txns\": %llu, "
                "\"swcache_line_events\": %llu, \"swcache_hit_rate\": %.4f, "
                "\"coalescing_rate\": %.4f, \"makespan_ps\": %llu}",
                key, s.wall_seconds, static_cast<unsigned long long>(s.events),
                s.eventsPerSec(),
                static_cast<unsigned long long>(s.logicalWords()),
                static_cast<unsigned long long>(s.shm_word_events), s.wordsPerSec(),
                static_cast<unsigned long long>(s.mpb_chunks),
                static_cast<unsigned long long>(s.mpb_chunk_events), s.chunksPerSec(),
                static_cast<unsigned long long>(s.swcache_words),
                static_cast<unsigned long long>(s.swcache_line_txns),
                static_cast<unsigned long long>(s.swcache_line_events),
                s.swcacheHitRate(), s.coalescingRate(),
                static_cast<unsigned long long>(s.makespan));
  *out += buf;
  // Lane telemetry: configured lanes and what actually ran. Per-lane event
  // counts and the min/max lane share only exist when the engine really
  // sharded (a sequential fallback reports lanes_used = 1 and no lanes list).
  std::snprintf(buf, sizeof(buf), ", \"engine_lanes\": %u, \"lanes_used\": %u",
                s.engine_lanes, s.lanes_used);
  out->insert(out->size() - 1, buf);
  if (!s.lane_events.empty()) {
    std::string lanes = ", \"lane_events\": [";
    for (std::size_t i = 0; i < s.lane_events.size(); ++i) {
      if (i > 0) lanes += ", ";
      lanes += std::to_string(s.lane_events[i]);
    }
    std::snprintf(buf, sizeof(buf),
                  "], \"lane_utilization\": {\"min_share\": %.4f, "
                  "\"max_share\": %.4f}",
                  s.laneShareMin(), s.laneShareMax());
    lanes += buf;
    out->insert(out->size() - 1, lanes);
  }
}

/// One scenario's lanes=1 vs lanes=N twin check: the conservative-PDES
/// correctness contract. The parallel run (or its sequential fallback) must
/// reproduce the makespan, every per-task completion Tick, and the extracted
/// output region byte for byte.
struct ParallelCheck {
  bool identical = true;
  double speedup = 0.0;  ///< sequential wall / parallel wall (host-dependent)
};

ParallelCheck checkParallel(const RunStats& seq, const RunStats& par) {
  ParallelCheck c;
  c.identical = par.makespan == seq.makespan && par.completions == seq.completions &&
                par.result_bytes == seq.result_bytes;
  c.speedup = par.wall_seconds > 0 ? seq.wall_seconds / par.wall_seconds : 0.0;
  return c;
}

double relError(Tick approx, Tick exact) {
  if (exact == 0) return approx == 0 ? 0.0 : 1.0;
  return std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
         static_cast<double>(exact);
}

}  // namespace

int main(int argc, char** argv) {
  // --scenario NAME runs just that scenario (CI uses it to run the fault
  // sweep under sanitizers without paying for the full matrix). Skipped
  // sections leave their ok-flags true and their JSON entries absent;
  // compare_bench.py only gates full runs.
  // --list-scenarios prints one scenario name per line and exits — the
  // discovery hook for CI matrices and humans narrowing a --scenario run.
  // Must track the scenario blocks below.
  static const char* const kScenarioNames[] = {
      "shm_words_single_ue",  "shm_words_staggered_8ue", "shm_words_synced_8ue",
      "shm_words_contended_8ue", "quadrant_pairs_8ue",   "rcce_ring_1k_8ue",
      "mixed_shm_mpb_8ue",    "event_kernel_8ue",        "barrier_32ue",
      "mpb_pingpong_2ue",     "bulk_copy_8ue",           "stencil_readmostly_8ue",
      "lu_shared_cached",     "mixed_policy_8ue",        "fault_sweep_8ue",
      "kv_zipf_8ue",          "drf_racy_8ue",            "drf_false_sharing_8ue",
      "drf_clean_suite_8ue",  "obs_trace_8ue",
  };
  // --trace-out FILE writes the Chrome trace-event JSON of the traced
  // obs_trace_8ue run to FILE (the CI artifact scripts/validate_trace.py
  // checks); it forces that run even under a --scenario filter.
  std::string only;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--list-scenarios") {
      for (const char* name : kScenarioNames) std::puts(name);
      return 0;
    }
    if (std::string(argv[i]) == "--scenario" && i + 1 < argc) only = argv[i + 1];
    if (std::string(argv[i]) == "--trace-out" && i + 1 < argc) trace_out = argv[i + 1];
  }
  const auto want = [&only](const std::string& name) {
    return only.empty() || only == name;
  };

  bool all_identical = true;
  std::string json = "{\n  \"bench\": \"micro_sim\",\n  \"scenarios\": [\n";

  // Shared-memory word-granular scenarios: three-way equivalence matrix
  // (per-controller horizon / legacy global horizon / coalescing off) with a
  // hard tick-equivalence check across all modes.
  //
  // The two MPB scenarios launch plan-driven: an ExecutionPlan supplies the
  // per-UE owner sets that used to be hand-built MpbScope lambdas. The plans
  // outlive the setup lambdas that capture them.
  const std::size_t kBlock = 4096;
  using partition::ExecutionPlan;
  using partition::MpbPattern;
  using partition::PlacementClass;
  using partition::RegionPlan;
  const ExecutionPlan ring_plan{{RegionPlan{
      "ring_slot", PlacementClass::kOnChipResident, MpbPattern::kNeighborRing,
      2 * 1024}}};
  const ExecutionPlan mixed_plan{
      {RegionPlan{"blocks", PlacementClass::kOffChipUncached, MpbPattern::kNone,
                  8 * kBlock},
       RegionPlan{"slot", PlacementClass::kOnChipResident, MpbPattern::kNeighborRing,
                  512}}};
  std::vector<Workload> ab = {
      {"shm_words_single_ue", 1, 200,
       [&](sim::SccMachine& m) {
         const std::uint64_t base = m.shmalloc(64 * kBlock);
         m.launch(sim::LaunchSpec(1, [=](sim::CoreContext& ctx) {
           return blockReader(ctx, base, 64, kBlock);
         }));
       },
       /*extract_offset=*/0, /*extract_bytes=*/kBlock},
      {"shm_words_staggered_8ue", 8, 20,
       [&](sim::SccMachine& m) {
         const std::uint64_t base = m.shmalloc(8 * kBlock);
         m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
           return staggeredMix(ctx, base, 16, kBlock);
         }));
       },
       /*extract_offset=*/0, /*extract_bytes=*/8 * kBlock},
      {"shm_words_synced_8ue", 8, 30,
       [&](sim::SccMachine& m) {
         const std::uint64_t base = m.shmalloc(8 * kBlock + 8);
         const std::uint64_t counter = m.shmalloc(8);
         m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
           return syncedMix(ctx, base, counter, 8, kBlock);
         }));
       },
       /*extract_offset=*/0, /*extract_bytes=*/8 * kBlock + 16},
      {"shm_words_contended_8ue", 8, 50,
       [&](sim::SccMachine& m) {
         const std::uint64_t base = m.shmalloc(1 << 16);
         m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
           return wordHammer(ctx, base, 512);
         }));
       },
       /*extract_offset=*/0, /*extract_bytes=*/kBlock},
      {"quadrant_pairs_8ue", 8, 12,
       [&](sim::SccMachine& m) {
         // Controller-sharing UE pairs with pair-local sync groups and an
         // empty MPB scope: four provably disjoint components, the scenario
         // the conservative-PDES lanes are built for (docs/engine_parallel.md).
         const std::uint64_t base = m.shmalloc(8 * 256);
         m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
                    return quadrantPairs(ctx, base, 6, 300, 256);
                  })
                      .withScope([](int, int) { return std::vector<int>{}; })
                      .withSyncGroups([](int ue, int) { return ue % 4; }));
       },
       /*extract_offset=*/0, /*extract_bytes=*/8 * 256},
      {"rcce_ring_1k_8ue", 8, 30,
       [&](sim::SccMachine& m) {
         rcce::RcceEnv env(m);
         // Two parity buffers of 1 KB each (rcceRing double-buffers). The
         // plan's neighbor-ring pattern materializes the {ue, right} owner
         // sets the hand-built lambda used to declare.
         const std::uint64_t slot = env.mpbMallocSymmetric(8, 2 * 1024);
         m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) { return rcceRing(ctx, slot, 8, 1024); }).withPlan(&ring_plan));
       }},
      {"mixed_shm_mpb_8ue", 8, 20,
       [&](sim::SccMachine& m) {
         rcce::RcceEnv env(m);
         const std::uint64_t base = m.shmalloc(8 * kBlock);
         const std::uint64_t slot = env.mpbMallocSymmetric(8, 512);
         m.setShmCacheability(base, base + 8 * kBlock, false);  // plan: uncached
         m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
               return mixedShmMpb(ctx, base, slot, 8, kBlock, 512);
             }).withPlan(&mixed_plan));
       }},
  };
  // Plan-driven twins of two legacy-knob word scenarios: identical kernels,
  // but regions explicitly mapped off-chip-uncached in the cacheability map
  // and launched through an (MPB-free) ExecutionPlan. The identity check
  // below requires their Ticks to match the legacy runs bit for bit — the
  // acceptance bar for the ExecutionPlan API cutover.
  static const ExecutionPlan word_plan{{RegionPlan{
      "blocks", PlacementClass::kOffChipUncached, MpbPattern::kNone, 9 * kBlock}}};
  ab[1].setup_plan = [&](sim::SccMachine& m) {
    const std::uint64_t base = m.shmalloc(8 * kBlock);
    m.setShmCacheability(base, base + 8 * kBlock, false);
    m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
      return staggeredMix(ctx, base, 16, kBlock);
    }).withPlan(&word_plan));
  };
  ab[2].setup_plan = [&](sim::SccMachine& m) {
    const std::uint64_t base = m.shmalloc(8 * kBlock + 8);
    const std::uint64_t counter = m.shmalloc(8);
    m.setShmCacheability(base, counter + 8, false);
    m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
      return syncedMix(ctx, base, counter, 8, kBlock);
    }).withPlan(&word_plan));
  };

  bool first = true;
  bool parallel_ok = true;
  std::map<std::string, RunStats> exact_stats;  // reused by the quantum sweep
  for (const Workload& w : ab) {
    if (!want(w.name)) continue;
    const RunStats on = runWorkload(w, Mode{true, true, 1, true});
    exact_stats[w.name] = on;
    const RunStats global = runWorkload(w, Mode{true, false, 1, true});
    const RunStats off = runWorkload(w, Mode{false, false, 1, true});
    // Sync-blind: scoped horizons but the blunt any-blocked-task-goes-global
    // fallback — isolates what the wake-chain rule buys on synced phases.
    const RunStats blind = runWorkload(w, Mode{true, true, 1, false});
    // Lanes=4 twin of the tracked configuration: the conservative-PDES
    // bit-identity contract (runs the engine sharded when the components
    // prove disjoint, the sequential fallback otherwise — identical either
    // way).
    const RunStats par = runWorkload(w, Mode{true, true, 1, true, 0, 4});
    const ParallelCheck pc = checkParallel(on, par);
    parallel_ok = parallel_ok && pc.identical;
    bool identical = on.makespan == off.makespan &&
                     on.completions == off.completions &&
                     global.makespan == off.makespan &&
                     global.completions == off.completions &&
                     blind.makespan == off.makespan &&
                     blind.completions == off.completions;
    if (w.setup_plan) {
      // ExecutionPlan-launched, cacheability-mapped twin: the plan-driven
      // API must not move a single Tick on legacy-knob scenarios.
      const RunStats plan_run =
          runWorkload(w, Mode{true, true, 1, true}, /*plan_setup=*/true);
      identical = identical && plan_run.makespan == off.makespan &&
                  plan_run.completions == off.completions;
    }
    all_identical = all_identical && identical;

    const double event_reduction =
        off.events > 0
            ? 1.0 - static_cast<double>(on.events) / static_cast<double>(off.events)
            : 0.0;
    const double event_reduction_global =
        off.events > 0
            ? 1.0 - static_cast<double>(global.events) / static_cast<double>(off.events)
            : 0.0;
    const double wall_speedup =
        on.wall_seconds > 0 ? off.wall_seconds / on.wall_seconds : 0.0;

    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"" + w.name + "\",\n";
    printRun(&json, "coalesced", on);
    json += ",\n";
    printRun(&json, "global_horizon", global);
    json += ",\n";
    printRun(&json, "sync_blind", blind);
    json += ",\n";
    printRun(&json, "legacy", off);
    json += ",\n";
    printRun(&json, "parallel", par);
    char buf[400];
    std::snprintf(buf, sizeof(buf),
                  ",\n      \"ticks_identical\": %s, \"event_reduction\": %.4f, "
                  "\"event_reduction_global_horizon\": %.4f, \"wall_speedup\": %.2f, "
                  "\"parallel_identical\": %s, \"parallel_speedup\": %.2f}",
                  identical ? "true" : "false", event_reduction,
                  event_reduction_global, wall_speedup,
                  pc.identical ? "true" : "false", pc.speedup);
    json += buf;
  }

  // Substrate scenarios (no word-granular shm): engine throughput only.
  std::vector<Workload> substrate = {
      {"event_kernel_8ue", 8, 60,
       [](sim::SccMachine& m) {
         m.launch(sim::LaunchSpec(8, [](sim::CoreContext& ctx) { return spinner(ctx, 1000); }));
       }},
      {"barrier_32ue", 32, 150,
       [](sim::SccMachine& m) {
         m.launch(sim::LaunchSpec(32, [](sim::CoreContext& ctx) { return barrierLoop(ctx, 64); }));
       }},
      {"mpb_pingpong_2ue", 2, 350,
       [](sim::SccMachine& m) {
         rcce::RcceEnv env(m);
         const std::uint64_t off = env.mpbMallocSymmetric(2, 64);
         m.launch(sim::LaunchSpec(2, [=](sim::CoreContext& ctx) { return mpbPingPong(ctx, off, 256); }));
       }},
      {"bulk_copy_8ue", 8, 400,
       [](sim::SccMachine& m) {
         const std::uint64_t base = m.shmalloc(1 << 20);
         m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) { return bulkReader(ctx, base, 64); }));
       }},
  };
  for (const Workload& w : substrate) {
    if (!want(w.name)) continue;
    const RunStats s = runWorkload(w, Mode{true, true, 1});
    const RunStats par = runWorkload(w, Mode{true, true, 1, true, 0, 4});
    const ParallelCheck pc = checkParallel(s, par);
    parallel_ok = parallel_ok && pc.identical;
    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"" + w.name + "\",\n";
    printRun(&json, "coalesced", s);
    json += ",\n";
    printRun(&json, "parallel", par);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",\n      \"parallel_identical\": %s, \"parallel_speedup\": %.2f}",
                  pc.identical ? "true" : "false", pc.speedup);
    json += buf;
  }

  // Swcache scenarios: shared-memory routing A/B (software-managed
  // release-consistency cache vs the uncached word path). The "coalesced"
  // run is the cached one (write-back policy) — the configuration whose
  // trajectory compare_bench.py gates, including its swcache_hit_rate; the
  // "uncached"/"writethrough" runs are references. DRF programs must
  // produce bit-identical functional results on every routing; the stencil
  // scenario must also clear the 90% hit-rate bar. Both checks feed the
  // process exit code.
  bool swcache_ok = true;
  {
    const std::size_t kWindow = 4096;
    std::vector<Workload> cached_ab = {
        {"stencil_readmostly_8ue", 8, 6,
         [&](sim::SccMachine& m) {
           const std::uint64_t grid = m.shmalloc(8 * kWindow);
           const std::uint64_t out = m.shmalloc(8 * 64);
           auto* g = reinterpret_cast<std::uint64_t*>(m.shmData(grid));
           for (std::size_t i = 0; i < 8 * kWindow / 8; ++i) {
             g[i] = 0x9e3779b97f4a7c15ull * (i + 1);
           }
           m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
             return stencilReadMostly(ctx, grid, out, 4, 16, kWindow);
           }));
         },
         /*extract_offset=*/8 * kWindow, /*extract_bytes=*/8 * 64,
         /*min_hit_rate=*/0.90},
        {"lu_shared_cached", 8, 4,
         [&](sim::SccMachine& m) {
           const std::size_t n = 64;
           const std::uint64_t m0 = m.shmalloc(n * n * 8);
           auto* mat = reinterpret_cast<double*>(m.shmData(m0));
           for (std::size_t i = 0; i < n; ++i) {
             for (std::size_t j = 0; j < n; ++j) {
               mat[i * n + j] = i == j ? 2.0 * static_cast<double>(n)
                                       : 1.0 / (1.0 + static_cast<double>(i + 2 * j));
             }
           }
           m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
             return luSharedCached(ctx, m0, n, 32);
           }));
         },
         /*extract_offset=*/0, /*extract_bytes=*/64 * 64 * 8},
    };
    for (const Workload& w : cached_ab) {
      if (!want(w.name)) continue;
      const RunStats cached = runWorkload(w, Mode{true, true, 1, true, 1});
      const RunStats uncached = runWorkload(w, Mode{true, true, 1, true, 0});
      const RunStats wthrough = runWorkload(w, Mode{true, true, 1, true, 2});
      const ParallelCheck pc =
          checkParallel(cached, runWorkload(w, Mode{true, true, 1, true, 1, 4}));
      parallel_ok = parallel_ok && pc.identical;
      const bool functional = cached.result_bytes == uncached.result_bytes &&
                              wthrough.result_bytes == uncached.result_bytes;
      const double hit_rate = cached.swcacheHitRate();
      const bool hit_ok = hit_rate >= w.min_hit_rate;
      swcache_ok = swcache_ok && functional && hit_ok;
      const double words_speedup = uncached.wordsPerSec() > 0
                                       ? cached.wordsPerSec() / uncached.wordsPerSec()
                                       : 0.0;
      if (!first) json += ",\n";
      first = false;
      json += "    {\"name\": \"" + w.name + "\",\n";
      printRun(&json, "coalesced", cached);
      json += ",\n";
      printRun(&json, "uncached", uncached);
      json += ",\n";
      printRun(&json, "writethrough", wthrough);
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    ",\n      \"functional_identical\": %s, "
                    "\"swcache_hit_rate\": %.4f, "
                    "\"words_speedup_vs_uncached\": %.2f, "
                    "\"parallel_identical\": %s}",
                    functional ? "true" : "false", hit_rate, words_speedup,
                    pc.identical ? "true" : "false");
      json += buf;
    }
  }

  // Mixed-policy scenario (the ExecutionPlan payoff run): a cached
  // read-mostly table plus an uncached lock-guarded reduction cell in ONE
  // run, via the per-region cacheability map. Gated: the mixed plan must
  // beat BOTH machine-wide settings on simulated words per simulated second
  // (deterministic, so an exact comparison), produce bit-identical
  // functional results, clear the table hit-rate bar, and record zero MPB
  // scope violations under its (MPB-free) declared plan.
  bool policy_ok = true;
  if (want("mixed_policy_8ue")) {
    constexpr std::size_t kWindow = 4096;
    constexpr int kRounds = 4, kSweeps = 8, kUpdates = 32;
    const ExecutionPlan policy_plan{
        {RegionPlan{"table", PlacementClass::kOffChipCached, MpbPattern::kNone,
                    8 * kWindow},
         RegionPlan{"cell", PlacementClass::kOffChipUncached, MpbPattern::kNone, 64},
         RegionPlan{"out", PlacementClass::kOffChipUncached, MpbPattern::kNone,
                    8 * 64}}};
    // policy: 0 = plan-driven mixed map, 1 = everything cached (the
    // machine-wide shm_swcache knob), 2 = everything uncached.
    auto makeWorkload = [&](int policy) {
      Workload w;
      w.name = "mixed_policy_8ue";
      w.ues = 8;
      w.repetitions = 6;
      w.extract_offset = 8 * kWindow;        // cell (line-padded) + out region
      w.extract_bytes = 64 + 8 * 64;
      // (No min_hit_rate: that field only gates the swcache A/B loop above.
      // The mixed run's bar — exactly 7/8 steady state with 8 sweeps/round,
      // the first sweep of each round fills every line — is enforced in
      // policy_ok below.)
      w.setup = [&policy_plan, policy, kWindow, kRounds, kSweeps,
                 kUpdates](sim::SccMachine& m) {
        const std::uint64_t table = m.shmalloc(8 * kWindow);
        const std::uint64_t cell = m.shmalloc(64);  // own line: no false sharing
        const std::uint64_t out = m.shmalloc(8 * 64);
        auto* g = reinterpret_cast<std::uint64_t*>(m.shmData(table));
        for (std::size_t i = 0; i < 8 * kWindow / 8; ++i) {
          g[i] = 0x9e3779b97f4a7c15ull * (i + 1);
        }
        if (policy == 0) {
          m.setShmCacheability(table, table + 8 * kWindow, true);
          m.setShmCacheability(cell, cell + 64, false);
          m.setShmCacheability(out, out + 8 * 64, false);
        }
        m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
                   return mixedPolicy(ctx, table, cell, out, kRounds, kSweeps,
                                      kUpdates, kWindow);
                 }).withPlan(policy == 0 ? &policy_plan : nullptr));
      };
      return w;
    };
    const RunStats mixed = runWorkload(makeWorkload(0), Mode{true, true, 1, true, 0});
    const RunStats cached = runWorkload(makeWorkload(1), Mode{true, true, 1, true, 1});
    const RunStats uncached = runWorkload(makeWorkload(2), Mode{true, true, 1, true, 0});

    // Simulated words per simulated second: deterministic (derived from the
    // makespan, not host wall time), so the "mixed beats both" bar is exact.
    auto simRate = [](const RunStats& s, int reps) {
      return s.makespan > 0 ? static_cast<double>(s.logicalWords() /
                                                  static_cast<std::uint64_t>(reps)) /
                                  (static_cast<double>(s.makespan) * 1e-12)
                            : 0.0;
    };
    const double mixed_rate = simRate(mixed, 6);
    const double cached_rate = simRate(cached, 6);
    const double uncached_rate = simRate(uncached, 6);
    const bool functional = mixed.result_bytes == uncached.result_bytes &&
                            cached.result_bytes == uncached.result_bytes;
    policy_ok = functional && mixed.swcacheHitRate() >= 0.85 &&
                mixed.mpb_scope_violations == 0 && mixed_rate > cached_rate &&
                mixed_rate > uncached_rate;

    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"mixed_policy_8ue\",\n";
    printRun(&json, "coalesced", mixed);
    json += ",\n";
    printRun(&json, "all_cached", cached);
    json += ",\n";
    printRun(&json, "all_uncached", uncached);
    char buf[400];
    std::snprintf(buf, sizeof(buf),
                  ",\n      \"functional_identical\": %s, "
                  "\"swcache_hit_rate\": %.4f, \"mpb_scope_violations\": %llu, "
                  "\"sim_words_per_sim_sec\": {\"mixed\": %.0f, \"all_cached\": %.0f, "
                  "\"all_uncached\": %.0f}, \"policy_wins\": %s}",
                  functional ? "true" : "false", mixed.swcacheHitRate(),
                  static_cast<unsigned long long>(mixed.mpb_scope_violations),
                  mixed_rate, cached_rate, uncached_rate,
                  policy_ok ? "true" : "false");
    json += buf;
  }

  // Fault-injection sweep: the robustness acceptance run (docs/fault_model.md).
  // Five configurations of ONE kernel exercising every faultable path:
  //   * fault_free   — plan disabled (the baseline the rest compare against);
  //   * zero_rate    — plan ENABLED with every rate zero: must be
  //                    bit-identical to fault_free (makespan, completions,
  //                    final memory) — the armed-but-quiet determinism bar;
  //   * faulty       — seeded rates on every class: every transient
  //                    MPB/DRAM fault must be detected and repaired
  //                    (unrecovered == 0, recovery rate 1.0) and the final
  //                    shared memory must be byte-identical to fault_free;
  //   * faulty again — same seed: identical makespan, stats, and memory
  //                    (the same-seed replay determinism bar);
  //   * permafrost   — UE 2 wedges permanently mid-run: the run must END in
  //                    a DeadlockError whose wait-for graph names the frozen
  //                    task (parked with no sync object), not hang;
  //   * sync-timeout — a deliberately sub-realistic lock/barrier timeout:
  //                    the first wait must raise SyncTimeout.
  // All six checks fold into fault_checks_ok and the process exit code.
  bool fault_ok = true;
  double fault_recovery_rate = 1.0;
  if (want("fault_sweep_8ue")) {
    using sim::FaultClass;
    const auto idx = [](FaultClass c) { return static_cast<std::size_t>(c); };
    sim::FaultPlan off{};  // enabled = false
    sim::FaultPlan zero{};
    zero.enabled = true;
    sim::FaultPlan hot{};
    hot.enabled = true;
    hot.mpb_transfer.rate = 0.08;
    hot.shm_write.rate = 0.06;
    hot.swcache_flush.rate = 0.15;
    hot.mc_stall.rate = 0.02;
    hot.core_freeze.rate = 0.005;
    sim::FaultPlan frost{};
    frost.enabled = true;
    frost.permafrost_ue = 2;
    frost.permafrost_after_ops = 10;

    const FaultRun ff = runFaultSweep(off, 0);
    const FaultRun zr = runFaultSweep(zero, 0);
    const FaultRun hr = runFaultSweep(hot, 0);
    const FaultRun hr2 = runFaultSweep(hot, 0);
    const FaultRun pf = runFaultSweep(frost, 0);
    const FaultRun to = runFaultSweep(off, 1000);  // 1 ns: any real wait trips

    const bool zero_identical = zr.makespan == ff.makespan &&
                                zr.completions == ff.completions &&
                                zr.memory == ff.memory;
    const bool recovery_ok =
        !hr.deadlock && !hr.sync_timeout &&
        hr.stats.injected[idx(FaultClass::kMpbTransfer)] > 0 &&
        hr.stats.injected[idx(FaultClass::kShmWrite)] > 0 &&
        hr.stats.injected[idx(FaultClass::kSwcacheFlush)] > 0 &&
        hr.stats.unrecovered == 0 && hr.stats.recoveryRate() == 1.0 &&
        hr.memory == ff.memory;
    const bool replay_identical =
        hr2.makespan == hr.makespan && hr2.completions == hr.completions &&
        hr2.memory == hr.memory &&
        hr2.stats.totalInjected() == hr.stats.totalInjected() &&
        hr2.stats.retries == hr.stats.retries &&
        hr2.stats.stall_ticks == hr.stats.stall_ticks;
    const bool deadlock_reported = pf.deadlock && pf.frozen_named;
    const bool timeout_raised = to.sync_timeout;
    fault_ok = zero_identical && recovery_ok && replay_identical &&
               deadlock_reported && timeout_raised;
    fault_recovery_rate = hr.stats.recoveryRate();

    if (!first) json += ",\n";
    first = false;
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"fault_sweep_8ue\",\n"
        "      \"fault_free_makespan_ps\": %llu, \"faulty_makespan_ps\": %llu,\n"
        "      \"faults_injected\": %llu, \"faults_recovered\": %llu, "
        "\"fault_retries\": %llu, \"faults_unrecovered\": %llu, "
        "\"stall_ticks\": %llu, \"freezes\": %llu,\n"
        "      \"recovery_rate\": %.4f, \"zero_rate_identical\": %s, "
        "\"recovery_ok\": %s, \"replay_identical\": %s, "
        "\"deadlock_reported\": %s, \"sync_timeout_raised\": %s, "
        "\"fault_checks_ok\": %s}",
        static_cast<unsigned long long>(ff.makespan),
        static_cast<unsigned long long>(hr.makespan),
        static_cast<unsigned long long>(hr.stats.totalInjected()),
        static_cast<unsigned long long>(hr.stats.totalRecovered()),
        static_cast<unsigned long long>(hr.stats.retries),
        static_cast<unsigned long long>(hr.stats.unrecovered),
        static_cast<unsigned long long>(hr.stats.stall_ticks),
        static_cast<unsigned long long>(hr.stats.freezes), fault_recovery_rate,
        zero_identical ? "true" : "false", recovery_ok ? "true" : "false",
        replay_identical ? "true" : "false",
        deadlock_reported ? "true" : "false", timeout_raised ? "true" : "false",
        fault_ok ? "true" : "false");
    json += buf;
  }

  // KV store under Zipf traffic (workloads::makeKvStore): the controller-
  // placement A/B. Hot keys sit in the slab's lowest stripes, so an
  // address-striped plan concentrates the skewed load on ONE controller
  // (high controller_load_cv) while the owner-compute plan spreads it with
  // the evenly-placed requesters (near-zero CV). Both plans must verify
  // against the host replay, the harness and Benchmark runs of the same
  // plan must agree on the makespan Tick, and the striped run must hot-spot
  // materially above the placed run — all folded into kv_checks_ok and the
  // exit code. The placed (owner-compute) run is the tracked "coalesced"
  // configuration in the BENCH trajectory.
  bool kv_ok = true;
  double kv_cv_striped = 0.0;
  double kv_cv_placed = 0.0;
  if (want("kv_zipf_8ue")) {
    using partition::ControllerPlacement;
    const workloads::KvParams kvp{};  // 4096 keys, alpha 1.2, 2048 ops/UE
    std::size_t index_cap = 1;
    while (index_cap < 2 * kvp.num_keys) index_cap *= 2;
    const std::size_t slab_bytes = kvp.num_keys * 4 * 8;
    auto kvPlan = [&](ControllerPlacement cp) {
      return ExecutionPlan{
          {RegionPlan{"kv_index", PlacementClass::kOffChipUncached,
                      MpbPattern::kNone, index_cap * 8, cp},
           RegionPlan{"kv_slots", PlacementClass::kOffChipUncached,
                      MpbPattern::kNone, slab_bytes, cp},
           RegionPlan{"kv_checks", PlacementClass::kOffChipUncached,
                      MpbPattern::kNone, 8 * 8}}};
    };
    const ExecutionPlan striped_plan = kvPlan(ControllerPlacement::kStriped);
    const ExecutionPlan placed_plan = kvPlan(ControllerPlacement::kOwnerCompute);
    auto kvWorkload = [&](const ExecutionPlan& plan) {
      Workload w;
      w.name = "kv_zipf_8ue";
      w.ues = 8;
      w.repetitions = 6;
      w.setup = [&kvp, &plan](sim::SccMachine& m) {
        workloads::setupKvRcce(m, kvp, 8, &plan);
      };
      return w;
    };
    const RunStats placed = runWorkload(kvWorkload(placed_plan), Mode{true, true, 1, true});
    const RunStats striped = runWorkload(kvWorkload(striped_plan), Mode{true, true, 1, true});
    // Lanes=4 twin (controller placement forces the sequential fallback, so
    // this checks the fallback leaves placement runs untouched).
    const ParallelCheck kv_pc = checkParallel(
        placed, runWorkload(kvWorkload(placed_plan), Mode{true, true, 1, true, 0, 4}));
    parallel_ok = parallel_ok && kv_pc.identical;

    // Verification and the per-controller load spread ride the Benchmark
    // API (RunResult::controller_load_cv) — same kernel, same default
    // config, so the makespans must agree Tick for Tick with the harness
    // runs above.
    const sim::SccConfig kv_cfg;
    const std::unique_ptr<workloads::Benchmark> kv = workloads::makeKvStore(kvp);
    const workloads::RunResult placed_r =
        kv->run(workloads::Mode::RcceOffChip, 8, kv_cfg, &placed_plan);
    const workloads::RunResult striped_r =
        kv->run(workloads::Mode::RcceOffChip, 8, kv_cfg, &striped_plan);
    kv_cv_placed = placed_r.controller_load_cv;
    kv_cv_striped = striped_r.controller_load_cv;
    kv_ok = placed_r.verified && striped_r.verified &&
            placed_r.makespan == placed.makespan &&
            striped_r.makespan == striped.makespan &&
            kv_cv_placed < 0.05 && kv_cv_striped > 0.30 &&
            kv_cv_striped > 20.0 * kv_cv_placed;

    auto trafficJson = [](const std::vector<std::uint64_t>& t) {
      std::string s = "[";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) s += ", ";
        s += std::to_string(t[i]);
      }
      return s + "]";
    };
    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"kv_zipf_8ue\",\n";
    printRun(&json, "coalesced", placed);
    json += ",\n";
    printRun(&json, "striped", striped);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  ",\n      \"verified_placed\": %s, \"verified_striped\": %s, "
                  "\"controller_load_cv_placed\": %.4f, "
                  "\"controller_load_cv_striped\": %.4f,\n"
                  "      \"controller_traffic_placed\": %s, "
                  "\"controller_traffic_striped\": %s, \"kv_checks_ok\": %s, "
                  "\"parallel_identical\": %s}",
                  placed_r.verified ? "true" : "false",
                  striped_r.verified ? "true" : "false", kv_cv_placed,
                  kv_cv_striped, trafficJson(placed_r.controller_traffic).c_str(),
                  trafficJson(striped_r.controller_traffic).c_str(),
                  kv_ok ? "true" : "false", kv_pc.identical ? "true" : "false");
    json += buf;
  }

  // DRF detector scenarios (docs/race_detection.md). Three gated sections,
  // all folded into drf_checks_ok and the exit code:
  //   * drf_racy_8ue — a lockless shared counter the detector MUST flag in
  //     both granularity modes, with byte-identical reports across
  //     engine_lanes=1/4 and every coalescing mode, and drf_check=true must
  //     not move a single Tick against the drf_check=false twin;
  //   * drf_false_sharing_8ue — per-UE slots packed four to a cached line:
  //     line-granular mode must flag it FALSE-SHARING, word-granular mode
  //     must stay silent (the divergence that motivates the two contracts);
  //   * drf_clean_suite_8ue — all seven paper benchmarks run detector-clean
  //     in line mode, and the fault sweep's corruption/repair path on a
  //     drf-checked cached region reports zero races (faults are functional
  //     corruption, not missing happens-before edges).
  bool drf_ok = true;
  if (want("drf_racy_8ue")) {
    const auto setup = [](sim::SccMachine& m) {
      const std::uint64_t counter = m.shmalloc(64);
      m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
        return racyCounter(ctx, counter, 4);
      }));
    };
    const DrfRun line = runDrfOnce(true, false, 1, true, true, 8, setup);
    const DrfRun word = runDrfOnce(true, true, 1, true, true, 8, setup);
    const DrfRun off = runDrfOnce(false, false, 1, true, true, 8, setup);
    const DrfRun lanes4 = runDrfOnce(true, false, 4, true, true, 8, setup);
    const DrfRun global = runDrfOnce(true, false, 1, true, false, 8, setup);
    const DrfRun nocoal = runDrfOnce(true, false, 1, false, false, 8, setup);
    const bool detected = line.races > 0 && word.races > 0;
    const bool deterministic =
        lanes4.reports == line.reports && global.reports == line.reports &&
        nocoal.reports == line.reports && lanes4.makespan == line.makespan &&
        lanes4.completions == line.completions;
    const bool ticks_unchanged =
        off.makespan == line.makespan && off.completions == line.completions;
    drf_ok = drf_ok && detected && deterministic && ticks_unchanged;
    if (!first) json += ",\n";
    first = false;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"drf_racy_8ue\",\n"
                  "      \"races_line\": %llu, \"races_word\": %llu, "
                  "\"accesses_checked\": %llu, \"detected\": %s, "
                  "\"reports_deterministic\": %s, \"ticks_unchanged\": %s}",
                  static_cast<unsigned long long>(line.races),
                  static_cast<unsigned long long>(word.races),
                  static_cast<unsigned long long>(line.checked),
                  detected ? "true" : "false", deterministic ? "true" : "false",
                  ticks_unchanged ? "true" : "false");
    json += buf;
  }
  if (want("drf_false_sharing_8ue")) {
    const auto setup = [](sim::SccMachine& m) {
      // 8 UEs x 8 B slots = two 32 B lines, four slots each, swcache-cached:
      // disjoint words, shared lines.
      const std::uint64_t base = m.shmalloc(64);
      m.setShmCacheability(base, base + 64, true);
      m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
        return falseSharingSlots(ctx, base, 4);
      }));
    };
    const DrfRun line = runDrfOnce(true, false, 1, true, true, 8, setup);
    const DrfRun word = runDrfOnce(true, true, 1, true, true, 8, setup);
    const DrfRun lanes4 = runDrfOnce(true, false, 4, true, true, 8, setup);
    const DrfRun nocoal = runDrfOnce(true, false, 1, false, false, 8, setup);
    const bool detected =
        line.races > 0 && line.false_sharing_only && word.races == 0;
    const bool deterministic =
        lanes4.reports == line.reports && nocoal.reports == line.reports;
    drf_ok = drf_ok && detected && deterministic;
    if (!first) json += ",\n";
    first = false;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"drf_false_sharing_8ue\",\n"
                  "      \"races_line\": %llu, \"races_word\": %llu, "
                  "\"all_false_sharing\": %s, \"detected\": %s, "
                  "\"reports_deterministic\": %s}",
                  static_cast<unsigned long long>(line.races),
                  static_cast<unsigned long long>(word.races),
                  line.false_sharing_only ? "true" : "false",
                  detected ? "true" : "false", deterministic ? "true" : "false");
    json += buf;
  }
  if (want("drf_clean_suite_8ue")) {
    sim::SccConfig drf_cfg;
    drf_cfg.drf_check = true;
    bool suite_clean = true;
    std::uint64_t suite_races = 0;
    for (const auto& bench : workloads::standardSuite(0.25)) {
      for (const workloads::Mode mode :
           {workloads::Mode::RcceOffChip, workloads::Mode::RcceMpb}) {
        const workloads::RunResult r = bench->run(mode, 8, drf_cfg);
        suite_clean = suite_clean && r.verified && r.drf_races == 0;
        suite_races += r.drf_races;
      }
    }
    // The seventh benchmark: the KV store's benign canonical-value races are
    // exempted at setup (workloads/kv_store.cpp), everything else must be
    // ordered.
    const workloads::KvParams kvp{};
    const workloads::RunResult kvr = workloads::makeKvStore(kvp)->run(
        workloads::Mode::RcceOffChip, 8, drf_cfg);
    suite_clean = suite_clean && kvr.verified && kvr.drf_races == 0;
    suite_races += kvr.drf_races;
    // Fault regression: hot corruption rates on the fault-sweep kernel (its
    // cached windows are drf-checked) — injected faults must be repaired,
    // not misreported as races.
    sim::FaultPlan hot{};
    hot.enabled = true;
    hot.mpb_transfer.rate = 0.08;
    hot.shm_write.rate = 0.06;
    hot.swcache_flush.rate = 0.15;
    const FaultRun fr = runFaultSweep(hot, 0, /*drf_check=*/true);
    const bool fault_regression_ok = !fr.deadlock && !fr.sync_timeout &&
                                     fr.stats.totalInjected() > 0 &&
                                     fr.stats.unrecovered == 0 && fr.drf_races == 0;
    drf_ok = drf_ok && suite_clean && fault_regression_ok;
    if (!first) json += ",\n";
    first = false;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"drf_clean_suite_8ue\",\n"
                  "      \"suite_clean\": %s, \"suite_races\": %llu, "
                  "\"fault_faults_injected\": %llu, \"fault_drf_races\": %llu, "
                  "\"fault_regression_ok\": %s}",
                  suite_clean ? "true" : "false",
                  static_cast<unsigned long long>(suite_races),
                  static_cast<unsigned long long>(fr.stats.totalInjected()),
                  static_cast<unsigned long long>(fr.drf_races),
                  fault_regression_ok ? "true" : "false");
    json += buf;
  }
  json += "\n  ],\n";

  // Fairness-quantum error sweep: Tick error of shm_fairness_quantum_words
  // > 1 versus the exact path (quantum = 1) on the contended scenarios. The
  // quantum only matters inside contention windows, so the exact-equivalence
  // scenarios above are unaffected by construction.
  json += "  \"quantum_sweep\": [\n";
  bool first_q = true;
  for (const Workload& w : ab) {
    if (w.name == "shm_words_single_ue") continue;  // no contention window
    if (exact_stats.find(w.name) == exact_stats.end()) continue;  // filtered out
    const RunStats& exact = exact_stats.at(w.name);  // measured in the A/B loop
    for (const std::uint32_t q : {4u, 16u, 64u}) {
      const RunStats approx = runWorkload(w, Mode{true, true, q});
      double max_completion_err = 0.0;
      for (std::size_t i = 0;
           i < approx.completions.size() && i < exact.completions.size(); ++i) {
        max_completion_err =
            std::max(max_completion_err, relError(approx.completions[i],
                                                  exact.completions[i]));
      }
      const double wall_speedup =
          approx.wall_seconds > 0 ? exact.wall_seconds / approx.wall_seconds : 0.0;
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"scenario\": \"%s\", \"quantum\": %u, "
                    "\"makespan_rel_error\": %.6f, \"max_completion_rel_error\": %.6f, "
                    "\"coalescing_rate\": %.4f, \"wall_speedup_vs_exact\": %.2f}",
                    first_q ? "" : ",\n", w.name.c_str(), q,
                    relError(approx.makespan, exact.makespan), max_completion_err,
                    approx.coalescingRate(), wall_speedup);
      first_q = false;
      json += buf;
    }
  }
  json += "\n  ],\n";

  // Observability section: the determinism contract of the simulated-time
  // tracer (docs/observability.md), checked on live scenario kernels rather
  // than unit fixtures. A traced run must export byte-identical Chrome JSON
  // across coalescing modes and across engine_lanes=1/4 (on the sharded
  // quadrant-pairs kernel), and enabling the trace must not move a single
  // Tick. barrier_32ue measured traced-vs-untraced quantifies the recorder's
  // enabled-mode wall cost as trace_overhead (>= 1.0, tracked not gated).
  bool obs_ok = true;
  double trace_overhead = 0.0;
  std::uint64_t trace_events = 0;
  if (want("obs_trace_8ue") || !trace_out.empty()) {
    struct TracedRun {
      Tick makespan = 0;
      std::uint32_t lanes_used = 1;
      std::uint64_t recorded = 0;
      std::string json;
    };
    const auto runSynced = [&](bool traced, bool coalescing) {
      sim::SccConfig cfg;
      cfg.shm_coalescing = coalescing;
      cfg.mpb_coalescing = coalescing;
      cfg.trace_enabled = traced;
      sim::SccMachine m(cfg);
      const std::uint64_t base = m.shmalloc(8 * kBlock + 8);
      const std::uint64_t counter = m.shmalloc(8);
      m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
        return syncedMix(ctx, base, counter, 8, kBlock);
      }));
      TracedRun r;
      r.makespan = m.run();
      r.recorded = m.traceRecorder().recordedEvents();
      std::ostringstream os;
      m.writeTrace(os);
      r.json = os.str();
      return r;
    };
    const auto runPairsTraced = [&](std::uint32_t lanes) {
      sim::SccConfig cfg;
      cfg.trace_enabled = true;
      cfg.engine_lanes = lanes;
      sim::SccMachine m(cfg);
      const std::uint64_t base = m.shmalloc(8 * 256);
      m.launch(sim::LaunchSpec(8, [=](sim::CoreContext& ctx) {
                 return quadrantPairs(ctx, base, 6, 300, 256);
               })
                   .withScope([](int, int) { return std::vector<int>{}; })
                   .withSyncGroups([](int ue, int) { return ue % 4; }));
      TracedRun r;
      r.makespan = m.run();
      r.lanes_used = m.engine().lanesUsed();
      r.recorded = m.traceRecorder().recordedEvents();
      std::ostringstream os;
      m.writeTrace(os);
      r.json = os.str();
      return r;
    };

    const TracedRun traced = runSynced(true, true);
    trace_events = traced.recorded;
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      out << traced.json;
    }
    if (want("obs_trace_8ue")) {
      const TracedRun traced_off = runSynced(true, false);
      const TracedRun untraced = runSynced(false, true);
      const TracedRun seq = runPairsTraced(1);
      const TracedRun par = runPairsTraced(4);
      obs_ok = traced.recorded > 0 && traced.json == traced_off.json &&
               traced.makespan == untraced.makespan &&
               par.lanes_used > 1 && seq.json == par.json &&
               seq.makespan == par.makespan;

      // barrier_32ue traced vs untraced, best-of-3 walls each side.
      const Workload* barrier = nullptr;
      for (const Workload& w : substrate) {
        if (w.name == "barrier_32ue") barrier = &w;
      }
      if (barrier != nullptr) {
        const RunStats plain = runWorkload(*barrier, Mode{true, true, 1});
        Mode traced_mode{true, true, 1};
        traced_mode.trace = true;
        const RunStats with_trace = runWorkload(*barrier, traced_mode);
        obs_ok = obs_ok && plain.makespan == with_trace.makespan &&
                 plain.completions == with_trace.completions;
        trace_overhead = plain.wall_seconds > 0
                             ? with_trace.wall_seconds / plain.wall_seconds
                             : 0.0;
      }
    }
  }

  json += std::string("  \"ticks_identical_all\": ") +
          (all_identical ? "true" : "false") + ",\n";
  json += std::string("  \"parallel_checks_ok\": ") +
          (parallel_ok ? "true" : "false") + ",\n";
  json += std::string("  \"swcache_checks_ok\": ") + (swcache_ok ? "true" : "false") +
          ",\n";
  json += std::string("  \"policy_checks_ok\": ") + (policy_ok ? "true" : "false") +
          ",\n";
  json += std::string("  \"fault_checks_ok\": ") + (fault_ok ? "true" : "false") +
          ",\n";
  json += std::string("  \"kv_checks_ok\": ") + (kv_ok ? "true" : "false") + ",\n";
  json += std::string("  \"drf_checks_ok\": ") + (drf_ok ? "true" : "false") + ",\n";
  json += std::string("  \"obs_checks_ok\": ") + (obs_ok ? "true" : "false") + ",\n";
  char obs_buf[128];
  std::snprintf(obs_buf, sizeof(obs_buf),
                "  \"trace_overhead_barrier_32ue\": %.2f,\n"
                "  \"trace_events_recorded\": %llu,\n",
                trace_overhead,
                static_cast<unsigned long long>(trace_events));
  json += obs_buf;
  char cv_buf[128];
  std::snprintf(cv_buf, sizeof(cv_buf),
                "  \"controller_load_cv_striped\": %.4f,\n"
                "  \"controller_load_cv_placed\": %.4f,\n",
                kv_cv_striped, kv_cv_placed);
  json += cv_buf;
  char rate_buf[64];
  std::snprintf(rate_buf, sizeof(rate_buf), "  \"fault_recovery_rate\": %.4f\n}\n",
                fault_recovery_rate);
  json += rate_buf;
  std::fputs(json.c_str(), stdout);
  return all_identical && parallel_ok && swcache_ok && policy_ok && fault_ok &&
                 kv_ok && drf_ok && obs_ok
             ? 0
             : 1;
}

// Microbenchmarks of the simulator substrate, emitted as machine-readable
// JSON (one object on stdout) for the tracked BENCH_*.json trajectory
// (BENCH_baseline.json is committed; CI regenerates BENCH_pr.json and
// scripts/compare_bench.py gates regressions).
//
// The shared-memory scenarios run three ways — per-controller-horizon
// coalescing, legacy global-horizon coalescing, and coalescing off — and
// verify the engine's equivalence bar: coalescing may eliminate events but
// must leave the makespan and every per-task completion Tick bit-identical
// across all three modes. A violated bar makes the process exit non-zero,
// so this binary doubles as a CI smoke test.
//
// Reported per timed run: host wall seconds, engine events, events/sec,
// simulated uncached words and the engine events they cost (their ratio is
// the coalescing rate), plus derived speedup/reduction ratios per scenario.
// A separate sweep quantifies the Tick error of shm_fairness_quantum_words
// > 1 against the exact path on the contended scenarios.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "rcce/rcce.h"
#include "sim/machine.h"

namespace {

using namespace hsm;
using sim::Tick;

struct Mode {
  bool coalescing = true;
  bool per_controller = true;
  std::uint32_t quantum = 1;
};

struct RunStats {
  double wall_seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t shm_words = 0;
  std::uint64_t shm_word_events = 0;
  Tick makespan = 0;
  std::vector<Tick> completions;

  [[nodiscard]] double eventsPerSec() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0;
  }
  /// Simulated uncached words per host second — the throughput that
  /// actually bounds sweep turnaround for word-granular workloads.
  [[nodiscard]] double wordsPerSec() const {
    return wall_seconds > 0 ? static_cast<double>(shm_words) / wall_seconds : 0;
  }
  /// Fraction of word transactions whose engine event was coalesced away.
  [[nodiscard]] double coalescingRate() const {
    return shm_words > 0
               ? 1.0 - static_cast<double>(shm_word_events) / static_cast<double>(shm_words)
               : 0.0;
  }
};

struct Workload {
  std::string name;
  int ues = 1;
  int repetitions = 1;  ///< timed repetitions, wall time accumulated
  std::function<void(sim::SccMachine&)> setup;  ///< shmalloc etc., then launch
};

RunStats runWorkloadOnce(const Workload& w, const Mode& mode) {
  RunStats stats;
  for (int rep = 0; rep < w.repetitions; ++rep) {
    sim::SccConfig cfg;
    cfg.shm_coalescing = mode.coalescing;
    cfg.shm_per_controller_horizon = mode.per_controller;
    cfg.shm_fairness_quantum_words = mode.quantum;
    sim::SccMachine machine(cfg);
    w.setup(machine);
    stats.makespan = machine.run();
    stats.wall_seconds += machine.engine().wallSeconds();
    stats.events += machine.engine().eventsProcessed();
    stats.shm_words += machine.shmWordsSimulated();
    stats.shm_word_events += machine.shmWordEvents();
    if (rep == 0) {
      for (int ue = 0; ue < w.ues; ++ue) {
        stats.completions.push_back(
            machine.engine().completionTime(static_cast<std::size_t>(ue)));
      }
    }
  }
  return stats;
}

/// Best-of-3 trials: the simulation is deterministic (events, words, Ticks
/// are identical per trial), only host wall time varies, so the minimum wall
/// is the peak-throughput measurement the BENCH_*.json trajectory tracks —
/// far more stable across runs and machines than a single timing.
RunStats runWorkload(const Workload& w, const Mode& mode) {
  RunStats best = runWorkloadOnce(w, mode);
  for (int trial = 1; trial < 3; ++trial) {
    RunStats next = runWorkloadOnce(w, mode);
    if (next.wall_seconds < best.wall_seconds) best = std::move(next);
  }
  return best;
}

// --- workload kernels -------------------------------------------------------

sim::SimTask blockReader(sim::CoreContext& ctx, std::uint64_t base, int blocks,
                         std::size_t block_bytes) {
  std::vector<std::uint8_t> buf(block_bytes);
  for (int i = 0; i < blocks; ++i) {
    co_await ctx.shmRead(base + static_cast<std::uint64_t>(i) * block_bytes, buf.data(),
                         block_bytes);
  }
}

sim::SimTask staggeredMix(sim::CoreContext& ctx, std::uint64_t base, int iterations,
                          std::size_t block_bytes) {
  std::vector<std::uint8_t> buf(block_bytes);
  const std::uint64_t mine =
      base + static_cast<std::uint64_t>(ctx.ue()) * block_bytes;
  for (int i = 0; i < iterations; ++i) {
    // Compute-heavy, UE-skewed phases (the shape of the paper's kernels:
    // long local computation punctuated by shared-data block IO), so cores
    // mostly take turns at the controllers instead of hammering in lockstep.
    co_await ctx.compute(50000 + static_cast<std::uint64_t>(ctx.ue()) * 50000);
    co_await ctx.shmRead(mine, buf.data(), block_bytes);
    co_await ctx.shmWrite(mine, buf.data(), block_bytes);
  }
}

/// Lock- and barrier-punctuated block IO: the nastiest mode for coalescing
/// because blocked waiters force the per-controller horizon back to the
/// global one until every task is pending again.
sim::SimTask syncedMix(sim::CoreContext& ctx, std::uint64_t base,
                       std::uint64_t counter_off, int iterations,
                       std::size_t block_bytes) {
  std::vector<std::uint8_t> buf(block_bytes);
  const std::uint64_t mine =
      base + static_cast<std::uint64_t>(ctx.ue()) * block_bytes;
  for (int i = 0; i < iterations; ++i) {
    co_await ctx.compute(20000 + static_cast<std::uint64_t>(ctx.ue() % 3) * 30000);
    co_await ctx.shmRead(mine, buf.data(), block_bytes);
    co_await ctx.lockAcquire(0);
    std::uint64_t counter = 0;
    co_await ctx.shmRead(counter_off, &counter, sizeof(counter));
    ++counter;
    co_await ctx.shmWrite(counter_off, &counter, sizeof(counter));
    ctx.lockRelease(0);
    co_await ctx.barrier();
  }
}

sim::SimTask wordHammer(sim::CoreContext& ctx, std::uint64_t base, int words) {
  std::uint64_t value = 0;
  for (int i = 0; i < words; ++i) {
    co_await ctx.shmRead(base + static_cast<std::uint64_t>(i % 512) * 8, &value, 8);
  }
}

sim::SimTask spinner(sim::CoreContext& ctx, int iterations) {
  for (int i = 0; i < iterations; ++i) co_await ctx.compute(1);
}

sim::SimTask barrierLoop(sim::CoreContext& ctx, int rounds) {
  for (int i = 0; i < rounds; ++i) co_await ctx.barrier();
}

sim::SimTask mpbPingPong(sim::CoreContext& ctx, std::uint64_t off, int rounds) {
  std::uint8_t buf[64] = {};
  const int peer = ctx.ue() == 0 ? 1 : 0;
  for (int i = 0; i < rounds; ++i) {
    co_await rcce::put(ctx, peer, off, buf, sizeof(buf));
    co_await rcce::get(ctx, peer, off, buf, sizeof(buf));
  }
}

sim::SimTask bulkReader(sim::CoreContext& ctx, std::uint64_t base, int blocks) {
  std::vector<std::uint8_t> buf(2048);
  for (int i = 0; i < blocks; ++i) {
    co_await ctx.shmReadBulk(base + static_cast<std::uint64_t>(i) * 2048, buf.data(),
                             buf.size());
  }
}

// --- JSON emission ----------------------------------------------------------

void printRun(std::string* out, const char* key, const RunStats& s) {
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"wall_seconds\": %.6f, \"events\": %llu, "
                "\"events_per_sec\": %.0f, \"shm_words\": %llu, "
                "\"shm_word_events\": %llu, \"shm_words_per_sec\": %.0f, "
                "\"coalescing_rate\": %.4f, \"makespan_ps\": %llu}",
                key, s.wall_seconds, static_cast<unsigned long long>(s.events),
                s.eventsPerSec(), static_cast<unsigned long long>(s.shm_words),
                static_cast<unsigned long long>(s.shm_word_events), s.wordsPerSec(),
                s.coalescingRate(), static_cast<unsigned long long>(s.makespan));
  *out += buf;
}

double relError(Tick approx, Tick exact) {
  if (exact == 0) return approx == 0 ? 0.0 : 1.0;
  return std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
         static_cast<double>(exact);
}

}  // namespace

int main() {
  bool all_identical = true;
  std::string json = "{\n  \"bench\": \"micro_sim\",\n  \"scenarios\": [\n";

  // Shared-memory word-granular scenarios: three-way equivalence matrix
  // (per-controller horizon / legacy global horizon / coalescing off) with a
  // hard tick-equivalence check across all modes.
  const std::size_t kBlock = 4096;
  std::vector<Workload> ab = {
      {"shm_words_single_ue", 1, 200,
       [&](sim::SccMachine& m) {
         const std::uint64_t base = m.shmalloc(64 * kBlock);
         m.launch(1, [=](sim::CoreContext& ctx) {
           return blockReader(ctx, base, 64, kBlock);
         });
       }},
      {"shm_words_staggered_8ue", 8, 20,
       [&](sim::SccMachine& m) {
         const std::uint64_t base = m.shmalloc(8 * kBlock);
         m.launch(8, [=](sim::CoreContext& ctx) {
           return staggeredMix(ctx, base, 16, kBlock);
         });
       }},
      {"shm_words_synced_8ue", 8, 30,
       [&](sim::SccMachine& m) {
         const std::uint64_t base = m.shmalloc(8 * kBlock + 8);
         const std::uint64_t counter = m.shmalloc(8);
         m.launch(8, [=](sim::CoreContext& ctx) {
           return syncedMix(ctx, base, counter, 8, kBlock);
         });
       }},
      {"shm_words_contended_8ue", 8, 50,
       [&](sim::SccMachine& m) {
         const std::uint64_t base = m.shmalloc(1 << 16);
         m.launch(8, [=](sim::CoreContext& ctx) {
           return wordHammer(ctx, base, 512);
         });
       }},
  };

  bool first = true;
  std::map<std::string, RunStats> exact_stats;  // reused by the quantum sweep
  for (const Workload& w : ab) {
    const RunStats on = runWorkload(w, Mode{true, true, 1});
    exact_stats[w.name] = on;
    const RunStats global = runWorkload(w, Mode{true, false, 1});
    const RunStats off = runWorkload(w, Mode{false, false, 1});
    const bool identical = on.makespan == off.makespan &&
                           on.completions == off.completions &&
                           global.makespan == off.makespan &&
                           global.completions == off.completions;
    all_identical = all_identical && identical;

    const double event_reduction =
        off.events > 0
            ? 1.0 - static_cast<double>(on.events) / static_cast<double>(off.events)
            : 0.0;
    const double event_reduction_global =
        off.events > 0
            ? 1.0 - static_cast<double>(global.events) / static_cast<double>(off.events)
            : 0.0;
    const double wall_speedup =
        on.wall_seconds > 0 ? off.wall_seconds / on.wall_seconds : 0.0;

    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"" + w.name + "\",\n";
    printRun(&json, "coalesced", on);
    json += ",\n";
    printRun(&json, "global_horizon", global);
    json += ",\n";
    printRun(&json, "legacy", off);
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  ",\n      \"ticks_identical\": %s, \"event_reduction\": %.4f, "
                  "\"event_reduction_global_horizon\": %.4f, \"wall_speedup\": %.2f}",
                  identical ? "true" : "false", event_reduction,
                  event_reduction_global, wall_speedup);
    json += buf;
  }

  // Substrate scenarios (no word-granular shm): engine throughput only.
  std::vector<Workload> substrate = {
      {"event_kernel_8ue", 8, 60,
       [](sim::SccMachine& m) {
         m.launch(8, [](sim::CoreContext& ctx) { return spinner(ctx, 1000); });
       }},
      {"barrier_32ue", 32, 150,
       [](sim::SccMachine& m) {
         m.launch(32, [](sim::CoreContext& ctx) { return barrierLoop(ctx, 64); });
       }},
      {"mpb_pingpong_2ue", 2, 350,
       [](sim::SccMachine& m) {
         rcce::RcceEnv env(m);
         const std::uint64_t off = env.mpbMallocSymmetric(2, 64);
         m.launch(2, [=](sim::CoreContext& ctx) { return mpbPingPong(ctx, off, 256); });
       }},
      {"bulk_copy_8ue", 8, 400,
       [](sim::SccMachine& m) {
         const std::uint64_t base = m.shmalloc(1 << 20);
         m.launch(8, [=](sim::CoreContext& ctx) { return bulkReader(ctx, base, 64); });
       }},
  };
  for (const Workload& w : substrate) {
    const RunStats s = runWorkload(w, Mode{true, true, 1});
    json += ",\n    {\"name\": \"" + w.name + "\",\n";
    printRun(&json, "coalesced", s);
    json += "}";
  }
  json += "\n  ],\n";

  // Fairness-quantum error sweep: Tick error of shm_fairness_quantum_words
  // > 1 versus the exact path (quantum = 1) on the contended scenarios. The
  // quantum only matters inside contention windows, so the exact-equivalence
  // scenarios above are unaffected by construction.
  json += "  \"quantum_sweep\": [\n";
  bool first_q = true;
  for (const Workload& w : ab) {
    if (w.name == "shm_words_single_ue") continue;  // no contention window
    const RunStats& exact = exact_stats.at(w.name);  // measured in the A/B loop
    for (const std::uint32_t q : {4u, 16u, 64u}) {
      const RunStats approx = runWorkload(w, Mode{true, true, q});
      double max_completion_err = 0.0;
      for (std::size_t i = 0;
           i < approx.completions.size() && i < exact.completions.size(); ++i) {
        max_completion_err =
            std::max(max_completion_err, relError(approx.completions[i],
                                                  exact.completions[i]));
      }
      const double wall_speedup =
          approx.wall_seconds > 0 ? exact.wall_seconds / approx.wall_seconds : 0.0;
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"scenario\": \"%s\", \"quantum\": %u, "
                    "\"makespan_rel_error\": %.6f, \"max_completion_rel_error\": %.6f, "
                    "\"coalescing_rate\": %.4f, \"wall_speedup_vs_exact\": %.2f}",
                    first_q ? "" : ",\n", w.name.c_str(), q,
                    relError(approx.makespan, exact.makespan), max_completion_err,
                    approx.coalescingRate(), wall_speedup);
      first_q = false;
      json += buf;
    }
  }
  json += "\n  ],\n";

  json += std::string("  \"ticks_identical_all\": ") +
          (all_identical ? "true" : "false") + "\n}\n";
  std::fputs(json.c_str(), stdout);
  return all_identical ? 0 : 1;
}

// Ablation: naive vs optimized translation of a reduction loop.
//
// The paper's Stage 5 maps every shared variable to shared memory but does
// not privatize loop-carried accumulators (Example 4.2 keeps `sum[tLocal]
// += ...` as a direct shared access in the loop). A literally-translated
// reduction therefore performs a shared-memory read-modify-write on every
// iteration; placing that accumulator in the MPB instead of off-chip DRAM
// then pays off on *every* iteration. This experiment quantifies that
// effect and explains how MPB placement can deliver the large average
// improvements the paper reports even on compute-style kernels, while the
// hand-optimized form (partial sum in a register, one shared access at the
// end) is placement-insensitive.
#include <cstdio>
#include <vector>

#include "rcce/rcce.h"
#include "sim/machine.h"

namespace {

using namespace hsm;

constexpr std::size_t kIterations = 1 << 14;  // per core

enum class AccumulatorHome { Register, OffChip, Mpb };

sim::SimTask reduction(sim::CoreContext& ctx, AccumulatorHome home,
                       rcce::ShmArray<double> shm_acc, rcce::MpbArray<double> mpb_acc) {
  const int me = ctx.ue();
  double local = 0.0;
  for (std::size_t i = 0; i < kIterations; ++i) {
    // The iteration's compute: one fp divide plus a few adds/muls.
    co_await ctx.computeOps(1, sim::OpClass::FpDiv);
    co_await ctx.computeOps(2, sim::OpClass::FpAdd);
    const double contribution = 1.0 / static_cast<double>(i + 1);
    switch (home) {
      case AccumulatorHome::Register:
        local += contribution;
        break;
      case AccumulatorHome::OffChip: {
        double acc = 0.0;
        co_await shm_acc.read(ctx, static_cast<std::size_t>(me), &acc);
        acc += contribution;
        co_await shm_acc.write(ctx, static_cast<std::size_t>(me), acc);
        break;
      }
      case AccumulatorHome::Mpb: {
        double acc = 0.0;
        co_await mpb_acc.read(ctx, me, 0, &acc);
        acc += contribution;
        co_await mpb_acc.write(ctx, me, 0, acc);
        break;
      }
    }
  }
  if (home == AccumulatorHome::Register) {
    co_await shm_acc.write(ctx, static_cast<std::size_t>(me), local);
  }
  co_await ctx.barrier();
}

sim::Tick runOnce(int cores, AccumulatorHome home) {
  sim::SccMachine machine;
  rcce::RcceEnv env(machine);
  rcce::ShmArray<double> shm_acc(env, static_cast<std::size_t>(cores));
  rcce::MpbArray<double> mpb_acc(env, cores, 1);
  machine.launch(sim::LaunchSpec(cores, [&](sim::CoreContext& ctx) {
    return reduction(ctx, home, shm_acc, mpb_acc);
  }));
  return machine.run();
}

}  // namespace

int main() {
  constexpr int kCores = 32;
  std::printf("Ablation — where the translated loop accumulator lives "
              "(%d cores, %zu iterations each)\n\n", kCores, kIterations);

  const sim::Tick reg = runOnce(kCores, AccumulatorHome::Register);
  const sim::Tick off = runOnce(kCores, AccumulatorHome::OffChip);
  const sim::Tick mpb = runOnce(kCores, AccumulatorHome::Mpb);

  std::printf("%-42s %12.3f ms\n", "optimized (register partial, 1 shared write):",
              sim::ticksToMilliseconds(reg));
  std::printf("%-42s %12.3f ms\n", "naive translation, accumulator off-chip:",
              sim::ticksToMilliseconds(off));
  std::printf("%-42s %12.3f ms\n", "naive translation, accumulator in MPB:",
              sim::ticksToMilliseconds(mpb));
  std::printf("\nMPB improvement for the naive translation: %.2fx\n",
              static_cast<double>(off) / static_cast<double>(mpb));
  std::printf("cost of not privatizing (off-chip vs optimized): %.2fx\n",
              static_cast<double>(off) / static_cast<double>(reg));
  std::printf("\nReading: the paper's translator keeps in-loop shared accesses "
              "(Example 4.2);\nfor such code, MPB placement pays on every "
              "iteration — the mechanism behind\nlarge average Fig. 6.2 gains. "
              "Hand-privatized kernels are placement-insensitive.\n");
  return 0;
}

// Figure 6.2: run-time comparison of RCCE programs using off-chip shared
// memory against the on-chip shared memory provided by the MPB.
//
// Paper: ~8x mean improvement; Stream benefits the most (parallel MPB
// accesses, close core-to-MPB locality, bulk copies); LU improves only
// slightly because its matrix does not fit the MPB.
#include <cmath>
#include <cstdio>

#include "sim/scc_config.h"
#include "workloads/benchmark.h"

int main(int argc, char** argv) {
  using namespace hsm;
  double scale = 1.0;
  if (argc > 1) scale = std::atof(argv[1]);

  const sim::SccConfig config;
  constexpr int kUnits = 32;

  std::printf("Figure 6.2 — RCCE runtime: off-chip shared memory vs on-chip MPB "
              "(%d cores)\n", kUnits);
  std::printf("%-14s %16s %16s %12s %6s\n", "Benchmark", "off-chip [ms]",
              "MPB [ms]", "improvement", "ok");
  std::printf("%s\n", std::string(70, '-').c_str());

  double product = 1.0;
  int count = 0;
  for (const auto& bench : workloads::standardSuite(scale)) {
    const workloads::RunResult off =
        bench->run(workloads::Mode::RcceOffChip, kUnits, config);
    const workloads::RunResult mpb =
        bench->run(workloads::Mode::RcceMpb, kUnits, config);
    const double improvement =
        static_cast<double>(off.makespan) / static_cast<double>(mpb.makespan);
    product *= improvement;
    ++count;
    std::printf("%-14s %16.3f %16.3f %11.2fx %6s\n", bench->name().c_str(),
                sim::ticksToMilliseconds(off.makespan),
                sim::ticksToMilliseconds(mpb.makespan), improvement,
                (off.verified && mpb.verified) ? "yes" : "NO");
  }
  const double geomean = count > 0 ? std::pow(product, 1.0 / count) : 0.0;
  std::printf("%s\n", std::string(70, '-').c_str());
  std::printf("geometric-mean improvement: %.2fx (paper reports ~8x mean; Stream "
              "largest, LU slight)\n", geomean);
  return 0;
}

// Figure 6.1: performance of RCCE applications utilizing off-chip shared
// memory and 32 cores, normalized to the performance of the 32-thread
// Pthread programs running on a single core.
//
// Paper-reported speedups: Pi Approximation 32x, 3-5-Sum 29x,
// CountPrimes 16x, Stream 17x; Dot Product and LU Decomposition are
// reported qualitatively as limited by >=8 cores per memory controller.
#include <cstdio>

#include "sim/scc_config.h"
#include "workloads/benchmark.h"

int main(int argc, char** argv) {
  using namespace hsm;
  double scale = 1.0;
  if (argc > 1) scale = std::atof(argv[1]);

  const sim::SccConfig config;
  constexpr int kUnits = 32;

  std::printf("Figure 6.1 — RCCE (off-chip, %d cores) speedup over Pthreads "
              "(%d threads, 1 core)\n",
              kUnits, kUnits);
  std::printf("%-14s %16s %16s %10s %10s %6s\n", "Benchmark", "pthread [ms]",
              "rcce-off [ms]", "speedup", "paper", "ok");
  std::printf("%s\n", std::string(78, '-').c_str());

  struct PaperRef {
    const char* name;
    const char* value;
  };
  const char* paper_ref[] = {"32x", "29x", "16x", "17x", "n/a", "n/a"};

  int i = 0;
  for (const auto& bench : workloads::standardSuite(scale)) {
    const workloads::RunResult base =
        bench->run(workloads::Mode::PthreadSingleCore, kUnits, config);
    const workloads::RunResult rcce =
        bench->run(workloads::Mode::RcceOffChip, kUnits, config);
    const double speedup =
        static_cast<double>(base.makespan) / static_cast<double>(rcce.makespan);
    std::printf("%-14s %16.3f %16.3f %9.1fx %10s %6s\n", bench->name().c_str(),
                sim::ticksToMilliseconds(base.makespan),
                sim::ticksToMilliseconds(rcce.makespan), speedup, paper_ref[i],
                (base.verified && rcce.verified) ? "yes" : "NO");
    ++i;
  }
  return 0;
}

// Table 4.2: variables' sharing status after each analysis stage for the
// paper's Example Code 4.1, plus the full translated output (the paper's
// Example Code 4.2). Expected progression (thesis Table 4.2):
//   global: true  -> true  -> false   (unused global demoted)
//   ptr:    true  -> true  -> true
//   sum:    true  -> true  -> true
//   tLocal: null  -> false -> false
//   tid:    null  -> false -> false
//   local:  null  -> false -> false
//   tmp:    null  -> false -> true    (shared via definite points-to of ptr)
//   threads:null  -> false -> false
//   rc:     null  -> false -> false
#include <cstdio>

#include "translator/translator.h"

namespace {

const char* const kExample41 = R"(#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for (local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *)local);
    }
    for (local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
)";

}  // namespace

int main() {
  // The paper's Example 4.2 output allocates with RCCE_shmalloc (off-chip);
  // request the off-chip-only plan to reproduce it verbatim.
  hsm::translator::TranslatorOptions options;
  options.offchip_only = true;
  hsm::translator::Translator translator(options);

  const auto result = translator.translate(kExample41, "example_4_1.c");
  if (!result.ok) {
    std::printf("translation failed:\n%s\n", result.diagnostics.c_str());
    return 1;
  }
  std::printf("Table 4.2 — Variables Sharing Status\n\n%s\n",
              result.sharingTable().c_str());
  std::printf("Example Code 4.2 — translated RCCE source:\n\n%s",
              result.output_source.c_str());
  return 0;
}

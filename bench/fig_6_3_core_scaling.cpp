// Figure 6.3: relative performance improvement over the single-core Pthread
// application of the multiprocessor RCCE program with varying core count.
//
// The paper shows Pi Approximation scaling near-linearly with core count on
// the SCC (compute-bound, on-die MPB communication only).
#include <cstdio>

#include "sim/scc_config.h"
#include "workloads/benchmark.h"

int main(int argc, char** argv) {
  using namespace hsm;
  double scale = 1.0;
  if (argc > 1) scale = std::atof(argv[1]);

  const sim::SccConfig config;
  const auto pi = workloads::makePiApprox(scale);

  std::printf("Figure 6.3 — PiApprox speedup over 32-thread single-core Pthreads, "
              "varying RCCE core count\n");
  const workloads::RunResult base =
      pi->run(workloads::Mode::PthreadSingleCore, 32, config);
  std::printf("baseline (32 threads, 1 core): %.3f ms  verified=%s\n",
              sim::ticksToMilliseconds(base.makespan), base.verified ? "yes" : "NO");
  std::printf("%-8s %14s %10s %12s\n", "cores", "rcce [ms]", "speedup", "efficiency");
  std::printf("%s\n", std::string(48, '-').c_str());

  for (int cores : {1, 2, 4, 8, 16, 32, 48}) {
    const workloads::RunResult r = pi->run(workloads::Mode::RcceMpb, cores, config);
    const double speedup =
        static_cast<double>(base.makespan) / static_cast<double>(r.makespan);
    std::printf("%-8d %14.3f %9.1fx %11.1f%% %s\n", cores,
                sim::ticksToMilliseconds(r.makespan), speedup,
                100.0 * speedup / cores, r.verified ? "" : " UNVERIFIED");
  }
  return 0;
}

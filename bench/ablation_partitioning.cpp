// Ablation: the paper's Algorithm 3 (size-ascending greedy) vs an
// access-frequency-aware partitioner (§4.4's "further granularity provided
// by frequency of access") under a sweep of on-chip capacities.
//
// Figure of merit: the fraction of loop-weighted shared accesses landing
// on-chip — higher means more traffic at MPB speeds.
#include <cstdio>
#include <random>

#include "analysis/variable_info.h"
#include "partition/memory_plan.h"
#include "translator/translator.h"
#include "workloads/benchmark.h"

namespace {

/// A deterministic synthetic population that is adversarial for a purely
/// size-based policy: many *small but cold* scalars (size-ascending grabs
/// these first), several *larger but hot* arrays (where the accesses
/// actually are), and a few huge cold arrays that fit nowhere.
std::vector<hsm::analysis::VariableInfo> syntheticPopulation(unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<hsm::analysis::VariableInfo> vars;
  auto add = [&](std::size_t bytes, double accesses) {
    hsm::analysis::VariableInfo v;
    v.name = "v" + std::to_string(vars.size());
    v.byte_size = bytes;
    v.weighted_reads = accesses / 2;
    v.weighted_writes = accesses / 2;
    vars.push_back(v);
  };
  std::uniform_int_distribution<int> cold(1, 50);
  std::uniform_int_distribution<int> hot(100000, 500000);
  for (int i = 0; i < 40; ++i) add(48, cold(rng));          // small, cold
  for (int i = 0; i < 8; ++i) add(1500, hot(rng));          // larger, hot
  for (int i = 0; i < 4; ++i) add(32 * 1024, cold(rng));    // huge, cold
  return vars;
}

}  // namespace

int main() {
  using namespace hsm;
  std::printf("Ablation — Stage 4 partitioning policy (on-chip access fraction)\n");
  std::printf("%-14s %22s %22s\n", "MPB capacity", "size-ascending (Alg 3)",
              "frequency-aware");
  std::printf("%s\n", std::string(60, '-').c_str());

  const auto population = syntheticPopulation(7);
  std::vector<const analysis::VariableInfo*> shared;
  for (const auto& v : population) shared.push_back(&v);

  for (std::size_t kb : {1, 2, 4, 8, 16, 32, 64}) {
    partition::HsmMemorySpec spec;
    spec.onchip_capacity_bytes = kb * 1024;
    const auto size_plan = partition::SizeAscendingPlanner{}.plan(shared, spec);
    const auto freq_plan = partition::FrequencyAwarePlanner{}.plan(shared, spec);
    std::printf("%9zu KB %21.3f %22.3f\n", kb, size_plan.onchipAccessFraction(),
                freq_plan.onchipAccessFraction());
  }

  // The same comparison on a real program: the paper's benchmarks.
  std::printf("\nPer-benchmark plans at the SCC's 8 KB per-core MPB:\n");
  for (const std::string& name : workloads::pthreadSourceNames()) {
    translator::Translator plain;
    translator::TranslatorOptions freq_options;
    freq_options.frequency_aware_partitioning = true;
    translator::Translator freq(freq_options);
    const auto plain_result = plain.analyzeOnly(workloads::pthreadSource(name), name);
    const auto freq_result = freq.analyzeOnly(workloads::pthreadSource(name), name);
    std::printf("  %-12s alg3-onchip-fraction=%.3f freq-aware=%.3f\n", name.c_str(),
                plain_result.plan.onchipAccessFraction(),
                freq_result.plan.onchipAccessFraction());
  }
  return 0;
}

// Microbenchmarks of the translation pipeline (google-benchmark): lexing,
// parsing, the three analysis stages, and full translation throughput on
// the benchmark suite's pthread sources.
#include <benchmark/benchmark.h>

#include "analysis/analyzer.h"
#include "lex/lexer.h"
#include "parse/parser.h"
#include "sema/resolver.h"
#include "translator/translator.h"
#include "workloads/benchmark.h"

namespace {

const std::string& bigSource() {
  static const std::string source = [] {
    std::string s;
    for (const std::string& name : hsm::workloads::pthreadSourceNames()) {
      if (name == "PiApprox") continue;  // keep one mutex user only
      s += hsm::workloads::pthreadSource(name);
    }
    return s;
  }();
  return source;
}

void BM_Lex(benchmark::State& state) {
  const hsm::SourceBuffer buffer("bench.c", bigSource());
  for (auto _ : state) {
    hsm::DiagnosticEngine diags;
    hsm::lex::Lexer lexer(buffer, diags);
    benchmark::DoNotOptimize(lexer.lexAll());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bigSource().size()));
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  const hsm::SourceBuffer buffer("bench.c", bigSource());
  for (auto _ : state) {
    hsm::DiagnosticEngine diags;
    hsm::ast::ASTContext context;
    benchmark::DoNotOptimize(hsm::parse::parseSource(buffer, context, diags));
  }
}
BENCHMARK(BM_Parse);

void BM_AnalyzeStages(benchmark::State& state) {
  const std::string& source = hsm::workloads::pthreadSource("LU");
  for (auto _ : state) {
    hsm::translator::Translator translator;
    benchmark::DoNotOptimize(translator.analyzeOnly(source, "lu.c"));
  }
}
BENCHMARK(BM_AnalyzeStages);

void BM_FullTranslation(benchmark::State& state) {
  const std::string& source = hsm::workloads::pthreadSource("Stream");
  for (auto _ : state) {
    hsm::translator::Translator translator;
    benchmark::DoNotOptimize(translator.translate(source, "stream.c"));
  }
}
BENCHMARK(BM_FullTranslation);

}  // namespace

BENCHMARK_MAIN();

// Table 6.1: the SCC configuration used for every experiment.
#include <cstdio>

#include "sim/machine.h"

int main() {
  using namespace hsm;
  const sim::SccConfig config;
  std::printf("Table 6.1 — SCC Configuration\n\n%s\n",
              config.formatTable61(32, 32).c_str());
  std::printf("Platform model details:\n");
  std::printf("  cores: %u (P54C-class) on %u tiles (%ux%u mesh)\n", config.num_cores,
              config.numTiles(), config.mesh_cols, config.mesh_rows);
  std::printf("  MPB: %zu KB per core, %zu KB total\n",
              config.mpb_bytes_per_core / 1024, config.mpbTotalBytes() / 1024);
  std::printf("  caches (private, non-coherent): L1 %zu KB, L2 %zu KB, %zu B lines\n",
              config.l1_bytes / 1024, config.l2_bytes / 1024, config.cache_line_bytes);
  std::printf("  memory controllers: %u (one per mesh quadrant)\n",
              config.num_mem_controllers);
  return 0;
}

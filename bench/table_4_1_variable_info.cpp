// Table 4.1: information extracted per variable (post Stage 3) for the
// paper's Example Code 4.1.
//
// Known deltas vs the thesis table (documented in EXPERIMENTS.md): our
// counts are uniformly static occurrence counts — the thesis mixes static
// and estimated counts (e.g. rc wr=3 is 1 static write times the loop trip
// count 3; we report both conventions).
#include <cstdio>

#include "translator/translator.h"
#include "workloads/benchmark.h"

namespace {

const char* const kExample41 = R"(#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for (local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *)local);
    }
    for (local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
)";

}  // namespace

int main() {
  hsm::translator::Translator translator;
  const auto result = translator.analyzeOnly(kExample41, "example_4_1.c");
  if (!result.ok) {
    std::printf("analysis failed:\n%s\n", result.diagnostics.c_str());
    return 1;
  }
  std::printf("Table 4.1 — Information Extracted Per Variable (Post Stage 3)\n\n%s\n",
              result.variableTable().c_str());

  std::printf("Loop-weighted access estimates (Stage 4 inputs):\n");
  std::printf("%-12s %14s %14s\n", "Variable", "est. reads", "est. writes");
  for (const auto* v : result.analysis.ordered()) {
    std::printf("%-12s %14.0f %14.0f\n", v->name.c_str(), v->weighted_reads,
                v->weighted_writes);
  }

  // Also run every benchmark's pthread source through the analyzer to show
  // the table generalizes beyond the worked example.
  std::printf("\nShared variables identified per benchmark program:\n");
  for (const std::string& name : hsm::workloads::pthreadSourceNames()) {
    const auto r = translator.analyzeOnly(hsm::workloads::pthreadSource(name), name);
    std::printf("  %-12s:", name.c_str());
    for (const auto* v : r.analysis.sharedVariables()) std::printf(" %s", v->name.c_str());
    std::printf("\n");
  }
  return 0;
}

#include "sim/engine.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "sim/obs/trace.h"

namespace hsm::sim {

thread_local Engine::Lane* Engine::active_lane_ = nullptr;

std::string HangReport::format() const {
  std::string out = "no-progress report at t=" + std::to_string(at) + " ps: " +
                    std::to_string(waiters.size()) + " unfinished task(s)\n";
  for (const Waiter& w : waiters) {
    out += "  task " + std::to_string(w.task);
    if (w.sync == static_cast<std::uint32_t>(-1)) {
      out += " parked by an unknown mechanism (wedged/frozen: no wake-for edge)";
    } else {
      out += " blocked on sync " + std::to_string(w.sync) + " since t=" +
             std::to_string(w.blocked_since);
      if (!w.wakers_known) {
        out += ", wakers unknown";
      } else {
        out += w.all_wakers_required ? ", waits for ALL of {" : ", waits for ANY of {";
        for (std::size_t i = 0; i < w.wakers.size(); ++i) {
          if (i > 0) out += ", ";
          out += std::to_string(w.wakers[i]);
        }
        out += "}";
      }
    }
    out += "\n";
  }
  return out;
}

SimHangError::SimHangError(Kind kind, HangReport report)
    : std::runtime_error(report.format()), kind_(kind), report_(std::move(report)) {}

bool ResumeAt::await_ready() const noexcept {
  // Zero-cost operations continue inline; anything in the future suspends.
  return when <= engine.now();
}

void ResumeAt::await_suspend(std::coroutine_handle<> h) const {
  engine.schedule(when, h);
}

void Engine::schedule(Tick when, std::coroutine_handle<> h, std::size_t task_id) {
  Lane* lane = activeLane();
  const Tick floor = lane != nullptr ? lane->now : now_;
  if (when < floor) when = floor;
  const bool tracked = !resource_classes_.empty();
  // Host events and tasks predating registerResources have no alive-counter
  // entry: file them universal (bounding every horizon) and tally them
  // separately so the blocked computation stays exact.
  const bool counted = tracked && task_id != kNoTask && task_id >= counted_tasks_from_;
  const std::uint32_t cls = counted ? classOfTask(task_id) : kUniversalClass;
  if (lane != nullptr &&
      (cls == kUniversalClass || cls >= class_lane_.size() ||
       class_lane_[cls] != lane->index)) {
    // The lane partition proved components disjoint; an event aimed across
    // that proof (or at an unaffined task) means the disjointness argument
    // was wrong. Fail loudly rather than corrupt another lane's state.
    throw std::logic_error(
        "Engine: cross-lane or unaffined schedule during a parallel run "
        "(task " +
        std::to_string(task_id) + ")");
  }
  if (tracked) {
    if (cls == kUniversalClass) {
      unaffined_pending_.push_back(when);
      if (!counted) ++uncounted_unaffined_pending_;
    } else {
      classes_[cls].pending.push_back(when);
    }
  }
  if (task_id != kNoTask && task_id < task_pending_when_.size()) {
    task_pending_when_[task_id] = when;
    // A schedule aimed at a blocked task IS its wake: clear the park. In a
    // parallel run the park was filed in this lane's local list (the woken
    // task shares the scheduler's component by the partition proof).
    if (task_blocked_sync_[task_id] != kNoSync) {
      if (trace_ != nullptr && trace_->enabled()) {
        // The park-clearing schedule IS the wake. `when` is the woken
        // task's resume Tick — an operation boundary, identical across
        // coalescing modes and lane counts.
        trace_->record(task_id,
                       obs::TraceEvent{when, when, task_blocked_sync_[task_id], 0, 0,
                                       obs::kNoTraceResource,
                                       obs::TraceEventKind::kWake});
      }
      std::vector<std::size_t>& blocked =
          lane != nullptr ? lane->blocked_tasks : blocked_tasks_;
      task_blocked_sync_[task_id] = kNoSync;
      const std::size_t i = task_blocked_index_[task_id];
      const std::size_t last = blocked.back();
      blocked[i] = last;
      task_blocked_index_[last] = i;
      blocked.pop_back();
      if (task_id >= counted_tasks_from_) {
        const std::uint32_t bcls = classOfTask(task_id);
        if (bcls == kUniversalClass) {
          --universal_blocked_registered_;
        } else if (bcls < classes_.size()) {
          --classes_[bcls].blocked_registered;
        }
      }
    }
  }
  std::vector<Event>& heap = lane != nullptr ? lane->events : events_;
  std::uint64_t& seq = lane != nullptr ? lane->next_seq : next_seq_;
  heap.push_back(Event{when, task_id, seq++, cls, tracked, counted, h});
  std::push_heap(heap.begin(), heap.end(), EventAfter{});
}

void Engine::registerResources(std::uint32_t count) {
  resource_classes_.assign(count, {});
  classes_.clear();
  // Earlier tasks' class ids would dangle into the cleared class table;
  // demote them to universal reach (they are uncounted from here on anyway).
  std::fill(task_class_.begin(), task_class_.end(), kUniversalClass);
  unaffined_pending_.clear();
  unaffined_alive_ = 0;
  // Tasks still parked from before re-registration are uncounted from here
  // on, matching the per-class registered-blocked bookkeeping.
  universal_blocked_registered_ = 0;
  uncounted_unaffined_pending_ = 0;
  counted_tasks_from_ = tasks_.size();
}

std::uint32_t Engine::internReachClass(std::vector<std::uint32_t> reach) {
  std::sort(reach.begin(), reach.end());
  reach.erase(std::unique(reach.begin(), reach.end()), reach.end());
  if (reach.empty()) return kUniversalClass;
  for (const std::uint32_t r : reach) {
    // Any unregistered id degrades the whole set to universal reach: the
    // caller promised something the kernel cannot account, stay conservative.
    if (r == kNoResource || r >= resource_classes_.size()) return kUniversalClass;
  }
  for (std::uint32_t c = 0; c < classes_.size(); ++c) {
    if (classes_[c].resources == reach) return c;
  }
  const auto cls = static_cast<std::uint32_t>(classes_.size());
  classes_.push_back(ReachClass{reach, {}, 0});
  for (const std::uint32_t r : reach) resource_classes_[r].push_back(cls);
  return cls;
}

void Engine::dropPending(std::uint32_t cls, Tick when) {
  // Events scheduled before a re-registration carry class ids into the
  // since-cleared table; their buckets were wiped wholesale, nothing to drop.
  if (cls != kUniversalClass && cls >= classes_.size()) return;
  std::vector<Tick>& bucket =
      cls == kUniversalClass ? unaffined_pending_ : classes_[cls].pending;
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i] == when) {
      bucket[i] = bucket.back();
      bucket.pop_back();
      return;
    }
  }
}

Tick Engine::wakeBound(std::size_t task, std::vector<std::size_t>& visited) const {
  const std::uint32_t sync =
      task < task_blocked_sync_.size() ? task_blocked_sync_[task] : kNoSync;
  if (sync == kNoSync || sync >= syncs_.size()) return nextEventTime();
  const SyncObject& s = syncs_[sync];
  if (!s.wakers_known) return nextEventTime();
  const std::size_t running = currentTaskId();

  if (s.rule == WakerRule::kAll) {
    // Every waker must run before the wake can be scheduled: the bound is
    // the latest of their earliest executions. A required waker that can
    // never act again (the running task mid-batch, a finished task, a
    // deadlocked chain) means the wake cannot fire within any horizon.
    Tick bound = 0;
    for (const std::size_t w : s.wakers) {
      if (s.episodic && s.removedThisEpisode(w)) continue;  // already arrived
      if (w == task) continue;
      if (w == running) return kNever;  // cannot arrive mid-batch
      if (w < task_done_.size() && task_done_[w]) return kNever;
      const Tick pending =
          w < task_pending_when_.size() ? task_pending_when_[w] : kNever;
      Tick earliest;
      if (pending != kNever) {
        earliest = pending;
      } else if (w < task_blocked_sync_.size() && task_blocked_sync_[w] != kNoSync) {
        if (std::find(visited.begin(), visited.end(), w) != visited.end()) {
          return kNever;  // cycle of blocked wakers: the release never comes
        }
        // `visited` is the current recursion path: pop after returning so a
        // waker explored in a sibling subtree is not mistaken for a cycle.
        visited.push_back(w);
        earliest = wakeBound(w, visited);
        visited.pop_back();
      } else {
        // Unknown park: it could run as soon as the next event wakes it.
        earliest = nextEventTime();
      }
      if (earliest == kNever) return kNever;
      bound = std::max(bound, earliest);
    }
    return bound;
  }

  // kAny: one waker suffices — the earliest of their earliest executions.
  Tick bound = kNever;
  for (const std::size_t w : s.wakers) {
    if (s.episodic && s.removedThisEpisode(w)) continue;  // inert this episode
    if (w == task) continue;  // a task cannot wake itself
    // The running task performs no sync releases mid-batch (see header).
    if (w == running) continue;
    if (w < task_done_.size() && task_done_[w]) continue;  // finished: inert
    const Tick pending = w < task_pending_when_.size() ? task_pending_when_[w] : kNever;
    if (pending != kNever) {
      bound = std::min(bound, pending);
      continue;
    }
    if (w < task_blocked_sync_.size() && task_blocked_sync_[w] != kNoSync) {
      if (std::find(visited.begin(), visited.end(), w) != visited.end()) {
        continue;  // cycle of blocked wakers: this chain can never fire
      }
      visited.push_back(w);
      bound = std::min(bound, wakeBound(w, visited));
      visited.pop_back();
      continue;
    }
    // No pending event, not registered blocked, not done: parked by an
    // unknown mechanism — any event could wake it.
    return nextEventTime();
  }
  return bound;
}

Tick Engine::nextEventTimeFor(std::uint32_t resource) const {
  if (resource_classes_.empty() || resource >= resource_classes_.size()) {
    return nextEventTime();
  }
  // Blocked = alive but no pending event (parked on a lock/barrier). The
  // running task itself has no pending event either; it is excluded, not
  // blocked. A blocked task reaching this resource collapses the horizon to
  // the global one UNLESS every such task is registered against a sync
  // object whose waker chain the kernel can bound (sync_aware_).
  const std::size_t running = currentTaskId();
  const bool adjust_cur = running != kNoTask && running >= counted_tasks_from_ &&
                          running < task_class_.size();
  const std::uint32_t cur_cls = adjust_cur ? task_class_[running] : 0;

  Tick horizon = kNever;
  for (const std::uint32_t cls : resource_classes_[resource]) {
    std::int64_t blocked = classes_[cls].alive -
                           static_cast<std::int64_t>(classes_[cls].pending.size());
    if (adjust_cur && cur_cls == cls) --blocked;
    if (blocked > 0) {
      if (!sync_aware_ || blocked > classes_[cls].blocked_registered) {
        return nextEventTime();
      }
    }
    for (const Tick t : classes_[cls].pending) horizon = std::min(horizon, t);
  }

  std::int64_t blocked_universal =
      unaffined_alive_ - static_cast<std::int64_t>(unaffined_pending_.size() -
                                                   uncounted_unaffined_pending_);
  if (adjust_cur && cur_cls == kUniversalClass) --blocked_universal;
  if (blocked_universal > 0) {
    if (!sync_aware_ || blocked_universal > universal_blocked_registered_) {
      return nextEventTime();
    }
  }
  for (const Tick t : unaffined_pending_) horizon = std::min(horizon, t);

  if (sync_aware_) {
    // Every registered blocked task that can reach this resource bounds the
    // horizon by the earliest execution of its wake chain. Parallel runs
    // file parks lane-locally, and only this lane's component can reach
    // `resource`, so the lane list is the complete blocked set for it. The
    // recursion scratch is thread_local (reused allocation-free per lane).
    const Lane* lane = activeLane();
    const std::vector<std::size_t>& blocked =
        lane != nullptr ? lane->blocked_tasks : blocked_tasks_;
    static thread_local std::vector<std::size_t> wake_path;
    for (const std::size_t b : blocked) {
      const std::uint32_t cls = classOfTask(b);
      if (cls != kUniversalClass && !classReaches(cls, resource)) continue;
      wake_path.clear();
      wake_path.push_back(b);
      horizon = std::min(horizon, wakeBound(b, wake_path));
    }
  }
  return horizon;
}

std::uint32_t Engine::registerSyncObject() {
  if (parallel_running_) {
    // The lane plan enumerated every sync object up front; a new one now
    // would be invisible to the partition proof (and resizing syncs_ would
    // race with the lanes reading it).
    throw std::logic_error("Engine: registerSyncObject during a parallel run");
  }
  syncs_.push_back({});
  return static_cast<std::uint32_t>(syncs_.size() - 1);
}

void Engine::bindSyncParticipants(std::uint32_t sync,
                                  std::vector<std::size_t> tasks) {
  if (sync >= syncs_.size()) return;
  syncs_[sync].participants = std::move(tasks);
  syncs_[sync].participants_bound = true;
}

std::size_t Engine::aliveTasksReaching(std::uint32_t resource) const {
  constexpr std::size_t kInexact = static_cast<std::size_t>(-1);
  if (resource_classes_.empty() || resource >= resource_classes_.size()) {
    return kInexact;
  }
  // Universal-reach activity (unaffined tasks, host events, live tasks
  // predating registerResources) could touch the resource without appearing
  // in any class bucket — the count would under-report.
  if (unaffined_alive_ != 0 || !unaffined_pending_.empty() ||
      uncounted_unaffined_pending_ != 0) {
    return kInexact;
  }
  for (std::size_t id = 0; id < counted_tasks_from_ && id < tasks_.size(); ++id) {
    if (id >= task_done_.size() || !task_done_[id]) return kInexact;
  }
  std::int64_t n = 0;
  for (const std::uint32_t cls : resource_classes_[resource]) {
    n += classes_[cls].alive;
  }
  return n < 0 ? kInexact : static_cast<std::size_t>(n);
}

void Engine::setSyncWakers(std::uint32_t sync, std::vector<std::size_t> wakers,
                           WakerRule rule) {
  if (sync >= syncs_.size()) return;
  SyncObject& s = syncs_[sync];
  // Rebuild the membership index: clear the old members' slots in place
  // (cheaper than re-zeroing the whole index every call), then file the
  // new set.
  for (const std::size_t old : s.wakers) {
    if (old < s.waker_pos.size()) s.waker_pos[old] = 0;
  }
  s.wakers = std::move(wakers);
  for (std::size_t i = 0; i < s.wakers.size(); ++i) {
    const std::size_t w = s.wakers[i];
    if (w == kNoTask) continue;  // host wakers are never removed by id
    if (w >= s.waker_pos.size()) s.waker_pos.resize(w + 1, 0);
    s.waker_pos[w] = i + 1;
  }
  s.episodic = false;
  s.wakers_known = true;
  s.rule = rule;
}

void Engine::setSyncEpisodeWakers(std::uint32_t sync, std::vector<std::size_t> wakers,
                                  WakerRule rule) {
  if (sync >= syncs_.size()) return;
  SyncObject& s = syncs_[sync];
  for (const std::size_t old : s.wakers) {
    if (old < s.waker_pos.size()) s.waker_pos[old] = 0;  // leave no stale index
  }
  s.wakers = std::move(wakers);
  std::size_t max_id = 0;
  for (const std::size_t w : s.wakers) {
    if (w != kNoTask && w >= max_id) max_id = w + 1;
  }
  s.removed_gen.assign(max_id, 0);
  s.generation = 1;
  s.episodic = true;
  s.wakers_known = true;
  s.rule = rule;
}

void Engine::resetSyncEpisode(std::uint32_t sync) {
  if (sync >= syncs_.size() || !syncs_[sync].episodic) return;
  // All removal stamps of the finished episode become stale at once.
  ++syncs_[sync].generation;
}

void Engine::removeSyncWaker(std::uint32_t sync, std::size_t task) {
  if (sync >= syncs_.size() || !syncs_[sync].wakers_known) return;
  SyncObject& s = syncs_[sync];
  if (s.episodic) {
    // Also filters kNoTask: only declared members have a stamp slot.
    if (task < s.removed_gen.size()) s.removed_gen[task] = s.generation;
    return;
  }
  if (task >= s.waker_pos.size()) return;  // also filters kNoTask
  const std::size_t pos = s.waker_pos[task];
  if (pos == 0) return;
  const std::size_t i = pos - 1;
  const std::size_t last = s.wakers.back();
  s.wakers[i] = last;
  if (last < s.waker_pos.size()) s.waker_pos[last] = i + 1;
  s.wakers.pop_back();
  s.waker_pos[task] = 0;
}

void Engine::clearSyncWakers(std::uint32_t sync) {
  if (sync >= syncs_.size()) return;
  SyncObject& s = syncs_[sync];
  for (const std::size_t old : s.wakers) {
    if (old < s.waker_pos.size()) s.waker_pos[old] = 0;
  }
  s.wakers.clear();
  s.removed_gen.clear();
  s.episodic = false;
  s.wakers_known = false;
}

void Engine::blockOnSync(std::size_t task, std::uint32_t sync) {
  if (task == kNoTask || task >= task_blocked_sync_.size()) return;
  Lane* lane = activeLane();
  if (lane != nullptr &&
      (sync >= syncs_.size() || !syncs_[sync].participants_bound)) {
    // Parks on a sync object the lane plan never saw bound cannot be
    // proven lane-local; the plan should have fallen back to sequential.
    throw std::logic_error(
        "Engine: blockOnSync on an unbound sync object during a parallel run");
  }
  std::vector<std::size_t>& blocked =
      lane != nullptr ? lane->blocked_tasks : blocked_tasks_;
  if (task_blocked_sync_[task] == kNoSync) {
    task_blocked_index_[task] = blocked.size();
    task_blocked_at_[task] = lane != nullptr ? lane->now : now_;
    if (trace_ != nullptr && trace_->enabled()) {
      const Tick at = task_blocked_at_[task];
      trace_->record(task, obs::TraceEvent{at, at, sync, 0, 0, obs::kNoTraceResource,
                                           obs::TraceEventKind::kBlock});
    }
    blocked.push_back(task);
    if (task >= counted_tasks_from_) {
      const std::uint32_t cls = classOfTask(task);
      if (cls == kUniversalClass) {
        ++universal_blocked_registered_;
      } else if (cls < classes_.size()) {
        ++classes_[cls].blocked_registered;
      }
    }
  }
  task_blocked_sync_[task] = sync;
}

std::size_t Engine::spawnReaching(SimTask task, Tick start,
                                  std::vector<std::uint32_t> reach) {
  if (parallel_running_) {
    throw std::logic_error("Engine: spawn during a parallel run");
  }
  const std::size_t id = tasks_.size();
  const std::uint32_t cls = resource_classes_.empty()
                                ? kUniversalClass
                                : internReachClass(std::move(reach));
  if (task_class_.size() <= id) {
    task_class_.resize(id + 1, kUniversalClass);
    task_pending_when_.resize(id + 1, kNever);
    task_blocked_sync_.resize(id + 1, kNoSync);
    task_blocked_index_.resize(id + 1, 0);
    task_blocked_at_.resize(id + 1, 0);
    task_done_.resize(id + 1, false);
  }
  task_class_[id] = cls;
  if (!resource_classes_.empty()) {
    if (cls == kUniversalClass) {
      ++unaffined_alive_;
    } else {
      ++classes_[cls].alive;
    }
  }
  task.handle().promise().engine = this;
  task.handle().promise().task_id = id;
  schedule(start, task.handle(), id);
  tasks_.push_back(std::move(task));
  completion_.resize(tasks_.size(), 0);
  return id;
}

std::size_t Engine::spawn(SimTask task, Tick start, std::uint32_t resource) {
  std::vector<std::uint32_t> reach;
  if (resource != kNoResource) reach.push_back(resource);
  return spawnReaching(std::move(task), start, std::move(reach));
}

std::size_t Engine::unfinishedTasks() const {
  std::size_t n = 0;
  for (std::size_t id = 0; id < tasks_.size(); ++id) {
    if (id >= task_done_.size() || !task_done_[id]) ++n;
  }
  return n;
}

HangReport Engine::hangReport() const {
  HangReport report;
  report.at = now_;
  for (std::size_t id = 0; id < tasks_.size(); ++id) {
    if (id < task_done_.size() && task_done_[id]) continue;
    HangReport::Waiter w;
    w.task = id;
    const std::uint32_t sync =
        id < task_blocked_sync_.size() ? task_blocked_sync_[id] : kNoSync;
    w.sync = sync;
    if (sync != kNoSync && sync < syncs_.size()) {
      w.blocked_since = task_blocked_at_[id];
      const SyncObject& s = syncs_[sync];
      w.wakers_known = s.wakers_known;
      w.all_wakers_required = s.rule == WakerRule::kAll;
      for (const std::size_t waker : s.wakers) {
        if (s.episodic && s.removedThisEpisode(waker)) continue;  // arrived
        if (waker == id) continue;
        if (waker < task_done_.size() && task_done_[waker]) continue;
        w.wakers.push_back(waker);
      }
    }
    report.waiters.push_back(std::move(w));
  }
  return report;
}

void Engine::traceHangReport(std::uint64_t kind, Tick at) {
  if (trace_ == nullptr || !trace_->enabled()) return;
  trace_->recordHost(obs::TraceEvent{at, at, kind, 0, 0, obs::kNoTraceResource,
                                     obs::TraceEventKind::kReport});
}

void Engine::checkSyncTimeouts() {
  for (const std::size_t task : blocked_tasks_) {
    if (task < task_blocked_at_.size() &&
        now_ - task_blocked_at_[task] > sync_timeout_) {
      traceHangReport(1, now_);
      throw SyncTimeout(hangReport());
    }
  }
}

std::uint32_t Engine::planParallelRun() {
  if (resource_classes_.empty() || classes_.empty()) return 0;
  // Residual universal-reach activity (unaffined tasks, host events, tasks
  // predating registerResources) couples every class.
  if (unaffined_alive_ != 0 || !unaffined_pending_.empty() ||
      universal_blocked_registered_ != 0 || uncounted_unaffined_pending_ != 0) {
    return 0;
  }
  // The per-event no-progress machinery observes the global event order.
  if (sync_timeout_ != 0 || watchdog_limit_ != 0) return 0;
  // Tasks already parked entered that state outside any lane; their wakes
  // would arrive with no lane context.
  if (!blocked_tasks_.empty()) return 0;
  for (std::size_t id = 0; id < counted_tasks_from_ && id < tasks_.size(); ++id) {
    if (id >= task_done_.size() || !task_done_[id]) return 0;
  }
  for (const Event& ev : events_) {
    if (!ev.counted || ev.cls == kUniversalClass || ev.cls >= classes_.size()) {
      return 0;
    }
  }
  // Every sync object must carry a lifetime participant binding: an unbound
  // one (a lock any task may take) could couple arbitrary classes at run
  // time, which the static partition cannot see.
  for (const SyncObject& s : syncs_) {
    if (!s.participants_bound) return 0;
  }

  // Union-find over reach classes: classes sharing a resource, or appearing
  // together in a sync object's participant set, must advance on one lane.
  std::vector<std::uint32_t> parent(classes_.size());
  std::iota(parent.begin(), parent.end(), 0U);
  auto find = [&parent](std::uint32_t c) {
    while (parent[c] != c) {
      parent[c] = parent[parent[c]];
      c = parent[c];
    }
    return c;
  };
  auto unite = [&parent, &find](std::uint32_t a, std::uint32_t b) {
    parent[find(a)] = find(b);
  };
  for (const std::vector<std::uint32_t>& sharers : resource_classes_) {
    for (std::size_t i = 1; i < sharers.size(); ++i) {
      unite(sharers[0], sharers[i]);
    }
  }
  for (const SyncObject& s : syncs_) {
    std::uint32_t first = kUniversalClass;
    for (const std::size_t t : s.participants) {
      if (t < task_done_.size() && task_done_[t] != 0) continue;  // inert forever
      const std::uint32_t cls = classOfTask(t);
      if (cls == kUniversalClass) return 0;  // unpartitionable participant
      if (first == kUniversalClass) {
        first = cls;
      } else {
        unite(first, cls);
      }
    }
  }

  // Components in class-id discovery order (deterministic); only ones with
  // live work count. Fewer than two means sharding buys nothing.
  std::vector<std::uint32_t> root_component(classes_.size(), kUniversalClass);
  std::uint32_t components = 0;
  for (std::uint32_t c = 0; c < classes_.size(); ++c) {
    if (classes_[c].alive <= 0 && classes_[c].pending.empty()) continue;
    const std::uint32_t root = find(c);
    if (root_component[root] == kUniversalClass) root_component[root] = components++;
  }
  if (components < 2) return 0;
  const std::uint32_t lane_count = std::min(engine_lanes_, components);
  class_lane_.assign(classes_.size(), 0);
  for (std::uint32_t c = 0; c < classes_.size(); ++c) {
    const std::uint32_t comp = root_component[find(c)];
    class_lane_[c] = comp == kUniversalClass ? 0 : comp % lane_count;
  }
  return lane_count;
}

void Engine::laneLoop(Lane& lane) {
  active_lane_ = &lane;
  try {
    std::vector<Event>& heap = lane.events;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), EventAfter{});
      const Event ev = heap.back();
      heap.pop_back();
      // Eligibility proved every event tracked and counted, so the
      // sequential loop's uncounted-tally branch cannot arise here.
      dropPending(ev.cls, ev.when);
      task_pending_when_[ev.task] = kNever;
      lane.now = ev.when;
      lane.current_task = ev.task;
      ++lane.events_processed;
      ev.handle.resume();
    }
    lane.current_task = kNoTask;
  } catch (...) {
    // Structured errors (the cross-lane logic_error guards) unwind out of
    // resume() on this lane's thread; park them for the host to re-raise.
    lane.error = std::current_exception();
    lane.current_task = kNoTask;
  }
  active_lane_ = nullptr;
}

Tick Engine::runParallel(std::uint32_t lane_count) {
  const auto wall_start = std::chrono::steady_clock::now();
  struct WallGuard {
    Engine& e;
    std::chrono::steady_clock::time_point start;
    ~WallGuard() {
      e.wall_seconds_ +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
    }
  } wall_guard{*this, wall_start};

  std::vector<Lane> lanes(lane_count);
  for (std::uint32_t i = 0; i < lane_count; ++i) {
    lanes[i].engine = this;
    lanes[i].index = i;
    lanes[i].next_seq = next_seq_;  // fresh seqs order after every partitioned one
    lanes[i].now = now_;
  }
  for (const Event& ev : events_) {
    lanes[class_lane_[ev.cls]].events.push_back(ev);
  }
  events_.clear();
  for (Lane& lane : lanes) {
    std::make_heap(lane.events.begin(), lane.events.end(), EventAfter{});
  }

  parallel_running_ = true;
  {
    std::vector<std::thread> workers;
    workers.reserve(lane_count - 1);
    for (std::uint32_t i = 1; i < lane_count; ++i) {
      workers.emplace_back([this, &lanes, i] { laneLoop(lanes[i]); });
    }
    laneLoop(lanes[0]);
    for (std::thread& worker : workers) worker.join();
  }
  parallel_running_ = false;

  lanes_used_ = lane_count;
  lane_event_counts_.assign(lane_count, 0);
  Tick end = now_;
  for (std::uint32_t i = 0; i < lane_count; ++i) {
    Lane& lane = lanes[i];
    lane_event_counts_[i] = lane.events_processed;
    events_processed_ += lane.events_processed;
    next_seq_ = std::max(next_seq_, lane.next_seq);
    if (lane.events_processed > 0) end = std::max(end, lane.now);
    // Tasks still parked when the lane drained (hang detection below, or a
    // host-driven wake across run() calls) rejoin the global blocked list.
    for (const std::size_t task : lane.blocked_tasks) {
      task_blocked_index_[task] = blocked_tasks_.size();
      blocked_tasks_.push_back(task);
    }
    // A lane stopped by an error leaves events behind; keep them so state
    // stays inspectable after the rethrow.
    for (const Event& ev : lane.events) events_.push_back(ev);
  }
  if (!events_.empty()) {
    std::make_heap(events_.begin(), events_.end(), EventAfter{});
  }
  now_ = end;
  current_task_ = kNoTask;
  for (const Lane& lane : lanes) {
    if (lane.error) std::rethrow_exception(lane.error);
  }
  if (hang_detection_ && unfinishedTasks() > 0) {
    traceHangReport(0, now_);
    throw DeadlockError(hangReport());
  }
  return now_;
}

Tick Engine::run() {
  if (engine_lanes_ > 1) {
    const std::uint32_t lane_count = planParallelRun();
    if (lane_count > 1) return runParallel(lane_count);
  }
  lanes_used_ = 1;
  lane_event_counts_.clear();
  const auto wall_start = std::chrono::steady_clock::now();
  // Accumulate host wall time on every exit path, including the structured
  // hang/timeout/watchdog throws below.
  struct WallGuard {
    Engine& e;
    std::chrono::steady_clock::time_point start;
    ~WallGuard() {
      e.wall_seconds_ +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
    }
  } wall_guard{*this, wall_start};
  while (!events_.empty()) {
    std::pop_heap(events_.begin(), events_.end(), EventAfter{});
    const Event ev = events_.back();
    events_.pop_back();
    if (ev.tracked) {
      dropPending(ev.cls, ev.when);
      // Guard the tally against events predating a re-registration, whose
      // uncounted entries were wiped with the buckets.
      if (!ev.counted && uncounted_unaffined_pending_ > 0) {
        --uncounted_unaffined_pending_;
      }
    }
    if (ev.task != kNoTask && ev.task < task_pending_when_.size()) {
      task_pending_when_[ev.task] = kNever;
    }
    if (watchdog_limit_ != 0) {
      same_tick_events_ = ev.when == now_ ? same_tick_events_ + 1 : 0;
      if (same_tick_events_ > watchdog_limit_) {
        current_task_ = kNoTask;
        traceHangReport(2, now_);
        throw WatchdogError(hangReport());
      }
    }
    now_ = ev.when;
    current_task_ = ev.task;
    ++events_processed_;
    ev.handle.resume();
    if (sync_timeout_ != 0 && !blocked_tasks_.empty()) {
      current_task_ = kNoTask;
      checkSyncTimeouts();  // throws SyncTimeout on an overstayed park
    }
  }
  current_task_ = kNoTask;
  if (hang_detection_ && unfinishedTasks() > 0) {
    // Satellite fix for the silent-hang bug: the heap drained while tasks
    // were still alive (parked on a lock/barrier, or wedged). Fail loudly
    // with the wait-for graph instead of returning as if the run finished.
    traceHangReport(0, now_);
    throw DeadlockError(hangReport());
  }
  return now_;
}

Tick Engine::makespan() const {
  Tick max = 0;
  for (Tick t : completion_) max = std::max(max, t);
  return max;
}

std::vector<std::uint32_t> Engine::taskComponents() const {
  std::vector<std::uint32_t> component(tasks_.size(), 0);
  if (classes_.empty()) return component;
  // Same merge rule as planParallelRun — classes sharing a resource or a
  // sync object's participant set coalesce — but over the full structure:
  // done-ness, eligibility gates, and engine_lanes_ are ignored, so the
  // partition (and any trace exported with it) is identical no matter how
  // the run was executed.
  std::vector<std::uint32_t> parent(classes_.size());
  std::iota(parent.begin(), parent.end(), 0U);
  auto find = [&parent](std::uint32_t c) {
    while (parent[c] != c) {
      parent[c] = parent[parent[c]];
      c = parent[c];
    }
    return c;
  };
  auto unite = [&parent, &find](std::uint32_t a, std::uint32_t b) {
    parent[find(a)] = find(b);
  };
  for (const std::vector<std::uint32_t>& sharers : resource_classes_) {
    for (std::size_t i = 1; i < sharers.size(); ++i) {
      unite(sharers[0], sharers[i]);
    }
  }
  for (const SyncObject& s : syncs_) {
    std::uint32_t first = kUniversalClass;
    for (const std::size_t t : s.participants) {
      const std::uint32_t cls = classOfTask(t);
      if (cls == kUniversalClass) continue;  // universal tasks share comp 0
      if (first == kUniversalClass) {
        first = cls;
      } else {
        unite(first, cls);
      }
    }
  }
  // Dense component ids in class-id discovery order (every class counts —
  // unlike the lane plan, live-work filtering would make the numbering
  // depend on when the partition is taken).
  std::vector<std::uint32_t> root_component(classes_.size(), kUniversalClass);
  std::uint32_t components = 0;
  for (std::uint32_t c = 0; c < classes_.size(); ++c) {
    const std::uint32_t root = find(c);
    if (root_component[root] == kUniversalClass) root_component[root] = components++;
  }
  for (std::size_t id = 0; id < tasks_.size(); ++id) {
    const std::uint32_t cls = classOfTask(id);
    component[id] = cls == kUniversalClass ? 0 : root_component[find(cls)];
  }
  return component;
}

}  // namespace hsm::sim

#include "sim/engine.h"

#include <algorithm>

namespace hsm::sim {

bool ResumeAt::await_ready() const noexcept {
  // Zero-cost operations continue inline; anything in the future suspends.
  return when <= engine.now();
}

void ResumeAt::await_suspend(std::coroutine_handle<> h) const {
  engine.schedule(when, h);
}

std::size_t Engine::spawn(SimTask task, Tick start) {
  const std::size_t id = tasks_.size();
  task.handle().promise().engine = this;
  task.handle().promise().task_id = id;
  schedule(start, task.handle());
  tasks_.push_back(std::move(task));
  completion_.resize(tasks_.size(), 0);
  return id;
}

Tick Engine::run() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++events_processed_;
    ev.handle.resume();
  }
  return now_;
}

Tick Engine::makespan() const {
  Tick max = 0;
  for (Tick t : completion_) max = std::max(max, t);
  return max;
}

}  // namespace hsm::sim

#include "sim/engine.h"

#include <algorithm>
#include <utility>

namespace hsm::sim {

std::string HangReport::format() const {
  std::string out = "no-progress report at t=" + std::to_string(at) + " ps: " +
                    std::to_string(waiters.size()) + " unfinished task(s)\n";
  for (const Waiter& w : waiters) {
    out += "  task " + std::to_string(w.task);
    if (w.sync == static_cast<std::uint32_t>(-1)) {
      out += " parked by an unknown mechanism (wedged/frozen: no wake-for edge)";
    } else {
      out += " blocked on sync " + std::to_string(w.sync) + " since t=" +
             std::to_string(w.blocked_since);
      if (!w.wakers_known) {
        out += ", wakers unknown";
      } else {
        out += w.all_wakers_required ? ", waits for ALL of {" : ", waits for ANY of {";
        for (std::size_t i = 0; i < w.wakers.size(); ++i) {
          if (i > 0) out += ", ";
          out += std::to_string(w.wakers[i]);
        }
        out += "}";
      }
    }
    out += "\n";
  }
  return out;
}

SimHangError::SimHangError(Kind kind, HangReport report)
    : std::runtime_error(report.format()), kind_(kind), report_(std::move(report)) {}

bool ResumeAt::await_ready() const noexcept {
  // Zero-cost operations continue inline; anything in the future suspends.
  return when <= engine.now();
}

void ResumeAt::await_suspend(std::coroutine_handle<> h) const {
  engine.schedule(when, h);
}

void Engine::schedule(Tick when, std::coroutine_handle<> h, std::size_t task_id) {
  if (when < now_) when = now_;
  const bool tracked = !resource_classes_.empty();
  // Host events and tasks predating registerResources have no alive-counter
  // entry: file them universal (bounding every horizon) and tally them
  // separately so the blocked computation stays exact.
  const bool counted = tracked && task_id != kNoTask && task_id >= counted_tasks_from_;
  const std::uint32_t cls = counted ? classOfTask(task_id) : kUniversalClass;
  if (tracked) {
    if (cls == kUniversalClass) {
      unaffined_pending_.push_back(when);
      if (!counted) ++uncounted_unaffined_pending_;
    } else {
      classes_[cls].pending.push_back(when);
    }
  }
  if (task_id != kNoTask && task_id < task_pending_when_.size()) {
    task_pending_when_[task_id] = when;
    // A schedule aimed at a blocked task IS its wake: clear the park.
    if (task_blocked_sync_[task_id] != kNoSync) {
      task_blocked_sync_[task_id] = kNoSync;
      const std::size_t i = task_blocked_index_[task_id];
      const std::size_t last = blocked_tasks_.back();
      blocked_tasks_[i] = last;
      task_blocked_index_[last] = i;
      blocked_tasks_.pop_back();
      if (task_id >= counted_tasks_from_) {
        const std::uint32_t bcls = classOfTask(task_id);
        if (bcls == kUniversalClass) {
          --universal_blocked_registered_;
        } else if (bcls < classes_.size()) {
          --classes_[bcls].blocked_registered;
        }
      }
    }
  }
  events_.push_back(Event{when, task_id, next_seq_++, cls, tracked, counted, h});
  std::push_heap(events_.begin(), events_.end(), EventAfter{});
}

void Engine::registerResources(std::uint32_t count) {
  resource_classes_.assign(count, {});
  classes_.clear();
  // Earlier tasks' class ids would dangle into the cleared class table;
  // demote them to universal reach (they are uncounted from here on anyway).
  std::fill(task_class_.begin(), task_class_.end(), kUniversalClass);
  unaffined_pending_.clear();
  unaffined_alive_ = 0;
  // Tasks still parked from before re-registration are uncounted from here
  // on, matching the per-class registered-blocked bookkeeping.
  universal_blocked_registered_ = 0;
  uncounted_unaffined_pending_ = 0;
  counted_tasks_from_ = tasks_.size();
}

std::uint32_t Engine::internReachClass(std::vector<std::uint32_t> reach) {
  std::sort(reach.begin(), reach.end());
  reach.erase(std::unique(reach.begin(), reach.end()), reach.end());
  if (reach.empty()) return kUniversalClass;
  for (const std::uint32_t r : reach) {
    // Any unregistered id degrades the whole set to universal reach: the
    // caller promised something the kernel cannot account, stay conservative.
    if (r == kNoResource || r >= resource_classes_.size()) return kUniversalClass;
  }
  for (std::uint32_t c = 0; c < classes_.size(); ++c) {
    if (classes_[c].resources == reach) return c;
  }
  const auto cls = static_cast<std::uint32_t>(classes_.size());
  classes_.push_back(ReachClass{reach, {}, 0});
  for (const std::uint32_t r : reach) resource_classes_[r].push_back(cls);
  return cls;
}

void Engine::dropPending(std::uint32_t cls, Tick when) {
  // Events scheduled before a re-registration carry class ids into the
  // since-cleared table; their buckets were wiped wholesale, nothing to drop.
  if (cls != kUniversalClass && cls >= classes_.size()) return;
  std::vector<Tick>& bucket =
      cls == kUniversalClass ? unaffined_pending_ : classes_[cls].pending;
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i] == when) {
      bucket[i] = bucket.back();
      bucket.pop_back();
      return;
    }
  }
}

Tick Engine::wakeBound(std::size_t task, std::vector<std::size_t>& visited) const {
  const std::uint32_t sync =
      task < task_blocked_sync_.size() ? task_blocked_sync_[task] : kNoSync;
  if (sync == kNoSync || sync >= syncs_.size()) return nextEventTime();
  const SyncObject& s = syncs_[sync];
  if (!s.wakers_known) return nextEventTime();

  if (s.rule == WakerRule::kAll) {
    // Every waker must run before the wake can be scheduled: the bound is
    // the latest of their earliest executions. A required waker that can
    // never act again (the running task mid-batch, a finished task, a
    // deadlocked chain) means the wake cannot fire within any horizon.
    Tick bound = 0;
    for (const std::size_t w : s.wakers) {
      if (s.episodic && s.removedThisEpisode(w)) continue;  // already arrived
      if (w == task) continue;
      if (w == current_task_) return kNever;  // cannot arrive mid-batch
      if (w < task_done_.size() && task_done_[w]) return kNever;
      const Tick pending =
          w < task_pending_when_.size() ? task_pending_when_[w] : kNever;
      Tick earliest;
      if (pending != kNever) {
        earliest = pending;
      } else if (w < task_blocked_sync_.size() && task_blocked_sync_[w] != kNoSync) {
        if (std::find(visited.begin(), visited.end(), w) != visited.end()) {
          return kNever;  // cycle of blocked wakers: the release never comes
        }
        // `visited` is the current recursion path: pop after returning so a
        // waker explored in a sibling subtree is not mistaken for a cycle.
        visited.push_back(w);
        earliest = wakeBound(w, visited);
        visited.pop_back();
      } else {
        // Unknown park: it could run as soon as the next event wakes it.
        earliest = nextEventTime();
      }
      if (earliest == kNever) return kNever;
      bound = std::max(bound, earliest);
    }
    return bound;
  }

  // kAny: one waker suffices — the earliest of their earliest executions.
  Tick bound = kNever;
  for (const std::size_t w : s.wakers) {
    if (s.episodic && s.removedThisEpisode(w)) continue;  // inert this episode
    if (w == task) continue;  // a task cannot wake itself
    // The running task performs no sync releases mid-batch (see header).
    if (w == current_task_) continue;
    if (w < task_done_.size() && task_done_[w]) continue;  // finished: inert
    const Tick pending = w < task_pending_when_.size() ? task_pending_when_[w] : kNever;
    if (pending != kNever) {
      bound = std::min(bound, pending);
      continue;
    }
    if (w < task_blocked_sync_.size() && task_blocked_sync_[w] != kNoSync) {
      if (std::find(visited.begin(), visited.end(), w) != visited.end()) {
        continue;  // cycle of blocked wakers: this chain can never fire
      }
      visited.push_back(w);
      bound = std::min(bound, wakeBound(w, visited));
      visited.pop_back();
      continue;
    }
    // No pending event, not registered blocked, not done: parked by an
    // unknown mechanism — any event could wake it.
    return nextEventTime();
  }
  return bound;
}

Tick Engine::nextEventTimeFor(std::uint32_t resource) const {
  if (resource_classes_.empty() || resource >= resource_classes_.size()) {
    return nextEventTime();
  }
  // Blocked = alive but no pending event (parked on a lock/barrier). The
  // running task itself has no pending event either; it is excluded, not
  // blocked. A blocked task reaching this resource collapses the horizon to
  // the global one UNLESS every such task is registered against a sync
  // object whose waker chain the kernel can bound (sync_aware_).
  const bool adjust_cur = current_task_ != kNoTask &&
                          current_task_ >= counted_tasks_from_ &&
                          current_task_ < task_class_.size();
  const std::uint32_t cur_cls = adjust_cur ? task_class_[current_task_] : 0;

  Tick horizon = kNever;
  for (const std::uint32_t cls : resource_classes_[resource]) {
    std::int64_t blocked = classes_[cls].alive -
                           static_cast<std::int64_t>(classes_[cls].pending.size());
    if (adjust_cur && cur_cls == cls) --blocked;
    if (blocked > 0) {
      if (!sync_aware_ || blocked > classes_[cls].blocked_registered) {
        return nextEventTime();
      }
    }
    for (const Tick t : classes_[cls].pending) horizon = std::min(horizon, t);
  }

  std::int64_t blocked_universal =
      unaffined_alive_ - static_cast<std::int64_t>(unaffined_pending_.size() -
                                                   uncounted_unaffined_pending_);
  if (adjust_cur && cur_cls == kUniversalClass) --blocked_universal;
  if (blocked_universal > 0) {
    if (!sync_aware_ || blocked_universal > universal_blocked_registered_) {
      return nextEventTime();
    }
  }
  for (const Tick t : unaffined_pending_) horizon = std::min(horizon, t);

  if (sync_aware_) {
    // Every registered blocked task that can reach this resource bounds the
    // horizon by the earliest execution of its wake chain.
    for (const std::size_t b : blocked_tasks_) {
      const std::uint32_t cls = classOfTask(b);
      if (cls != kUniversalClass && !classReaches(cls, resource)) continue;
      wake_path_.clear();
      wake_path_.push_back(b);
      horizon = std::min(horizon, wakeBound(b, wake_path_));
    }
  }
  return horizon;
}

std::uint32_t Engine::registerSyncObject() {
  syncs_.push_back({});
  return static_cast<std::uint32_t>(syncs_.size() - 1);
}

void Engine::setSyncWakers(std::uint32_t sync, std::vector<std::size_t> wakers,
                           WakerRule rule) {
  if (sync >= syncs_.size()) return;
  SyncObject& s = syncs_[sync];
  // Rebuild the membership index: clear the old members' slots in place
  // (cheaper than re-zeroing the whole index every call), then file the
  // new set.
  for (const std::size_t old : s.wakers) {
    if (old < s.waker_pos.size()) s.waker_pos[old] = 0;
  }
  s.wakers = std::move(wakers);
  for (std::size_t i = 0; i < s.wakers.size(); ++i) {
    const std::size_t w = s.wakers[i];
    if (w == kNoTask) continue;  // host wakers are never removed by id
    if (w >= s.waker_pos.size()) s.waker_pos.resize(w + 1, 0);
    s.waker_pos[w] = i + 1;
  }
  s.episodic = false;
  s.wakers_known = true;
  s.rule = rule;
}

void Engine::setSyncEpisodeWakers(std::uint32_t sync, std::vector<std::size_t> wakers,
                                  WakerRule rule) {
  if (sync >= syncs_.size()) return;
  SyncObject& s = syncs_[sync];
  for (const std::size_t old : s.wakers) {
    if (old < s.waker_pos.size()) s.waker_pos[old] = 0;  // leave no stale index
  }
  s.wakers = std::move(wakers);
  std::size_t max_id = 0;
  for (const std::size_t w : s.wakers) {
    if (w != kNoTask && w >= max_id) max_id = w + 1;
  }
  s.removed_gen.assign(max_id, 0);
  s.generation = 1;
  s.episodic = true;
  s.wakers_known = true;
  s.rule = rule;
}

void Engine::resetSyncEpisode(std::uint32_t sync) {
  if (sync >= syncs_.size() || !syncs_[sync].episodic) return;
  // All removal stamps of the finished episode become stale at once.
  ++syncs_[sync].generation;
}

void Engine::removeSyncWaker(std::uint32_t sync, std::size_t task) {
  if (sync >= syncs_.size() || !syncs_[sync].wakers_known) return;
  SyncObject& s = syncs_[sync];
  if (s.episodic) {
    // Also filters kNoTask: only declared members have a stamp slot.
    if (task < s.removed_gen.size()) s.removed_gen[task] = s.generation;
    return;
  }
  if (task >= s.waker_pos.size()) return;  // also filters kNoTask
  const std::size_t pos = s.waker_pos[task];
  if (pos == 0) return;
  const std::size_t i = pos - 1;
  const std::size_t last = s.wakers.back();
  s.wakers[i] = last;
  if (last < s.waker_pos.size()) s.waker_pos[last] = i + 1;
  s.wakers.pop_back();
  s.waker_pos[task] = 0;
}

void Engine::clearSyncWakers(std::uint32_t sync) {
  if (sync >= syncs_.size()) return;
  SyncObject& s = syncs_[sync];
  for (const std::size_t old : s.wakers) {
    if (old < s.waker_pos.size()) s.waker_pos[old] = 0;
  }
  s.wakers.clear();
  s.removed_gen.clear();
  s.episodic = false;
  s.wakers_known = false;
}

void Engine::blockOnSync(std::size_t task, std::uint32_t sync) {
  if (task == kNoTask || task >= task_blocked_sync_.size()) return;
  if (task_blocked_sync_[task] == kNoSync) {
    task_blocked_index_[task] = blocked_tasks_.size();
    task_blocked_at_[task] = now_;
    blocked_tasks_.push_back(task);
    if (task >= counted_tasks_from_) {
      const std::uint32_t cls = classOfTask(task);
      if (cls == kUniversalClass) {
        ++universal_blocked_registered_;
      } else if (cls < classes_.size()) {
        ++classes_[cls].blocked_registered;
      }
    }
  }
  task_blocked_sync_[task] = sync;
}

std::size_t Engine::spawnReaching(SimTask task, Tick start,
                                  std::vector<std::uint32_t> reach) {
  const std::size_t id = tasks_.size();
  const std::uint32_t cls = resource_classes_.empty()
                                ? kUniversalClass
                                : internReachClass(std::move(reach));
  if (task_class_.size() <= id) {
    task_class_.resize(id + 1, kUniversalClass);
    task_pending_when_.resize(id + 1, kNever);
    task_blocked_sync_.resize(id + 1, kNoSync);
    task_blocked_index_.resize(id + 1, 0);
    task_blocked_at_.resize(id + 1, 0);
    task_done_.resize(id + 1, false);
  }
  task_class_[id] = cls;
  if (!resource_classes_.empty()) {
    if (cls == kUniversalClass) {
      ++unaffined_alive_;
    } else {
      ++classes_[cls].alive;
    }
  }
  task.handle().promise().engine = this;
  task.handle().promise().task_id = id;
  schedule(start, task.handle(), id);
  tasks_.push_back(std::move(task));
  completion_.resize(tasks_.size(), 0);
  return id;
}

std::size_t Engine::spawn(SimTask task, Tick start, std::uint32_t resource) {
  std::vector<std::uint32_t> reach;
  if (resource != kNoResource) reach.push_back(resource);
  return spawnReaching(std::move(task), start, std::move(reach));
}

std::size_t Engine::unfinishedTasks() const {
  std::size_t n = 0;
  for (std::size_t id = 0; id < tasks_.size(); ++id) {
    if (id >= task_done_.size() || !task_done_[id]) ++n;
  }
  return n;
}

HangReport Engine::hangReport() const {
  HangReport report;
  report.at = now_;
  for (std::size_t id = 0; id < tasks_.size(); ++id) {
    if (id < task_done_.size() && task_done_[id]) continue;
    HangReport::Waiter w;
    w.task = id;
    const std::uint32_t sync =
        id < task_blocked_sync_.size() ? task_blocked_sync_[id] : kNoSync;
    w.sync = sync;
    if (sync != kNoSync && sync < syncs_.size()) {
      w.blocked_since = task_blocked_at_[id];
      const SyncObject& s = syncs_[sync];
      w.wakers_known = s.wakers_known;
      w.all_wakers_required = s.rule == WakerRule::kAll;
      for (const std::size_t waker : s.wakers) {
        if (s.episodic && s.removedThisEpisode(waker)) continue;  // arrived
        if (waker == id) continue;
        if (waker < task_done_.size() && task_done_[waker]) continue;
        w.wakers.push_back(waker);
      }
    }
    report.waiters.push_back(std::move(w));
  }
  return report;
}

void Engine::checkSyncTimeouts() const {
  for (const std::size_t task : blocked_tasks_) {
    if (task < task_blocked_at_.size() &&
        now_ - task_blocked_at_[task] > sync_timeout_) {
      throw SyncTimeout(hangReport());
    }
  }
}

Tick Engine::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  // Accumulate host wall time on every exit path, including the structured
  // hang/timeout/watchdog throws below.
  struct WallGuard {
    Engine& e;
    std::chrono::steady_clock::time_point start;
    ~WallGuard() {
      e.wall_seconds_ +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
    }
  } wall_guard{*this, wall_start};
  while (!events_.empty()) {
    std::pop_heap(events_.begin(), events_.end(), EventAfter{});
    const Event ev = events_.back();
    events_.pop_back();
    if (ev.tracked) {
      dropPending(ev.cls, ev.when);
      // Guard the tally against events predating a re-registration, whose
      // uncounted entries were wiped with the buckets.
      if (!ev.counted && uncounted_unaffined_pending_ > 0) {
        --uncounted_unaffined_pending_;
      }
    }
    if (ev.task != kNoTask && ev.task < task_pending_when_.size()) {
      task_pending_when_[ev.task] = kNever;
    }
    if (watchdog_limit_ != 0) {
      same_tick_events_ = ev.when == now_ ? same_tick_events_ + 1 : 0;
      if (same_tick_events_ > watchdog_limit_) {
        current_task_ = kNoTask;
        throw WatchdogError(hangReport());
      }
    }
    now_ = ev.when;
    current_task_ = ev.task;
    ++events_processed_;
    ev.handle.resume();
    if (sync_timeout_ != 0 && !blocked_tasks_.empty()) {
      current_task_ = kNoTask;
      checkSyncTimeouts();  // throws SyncTimeout on an overstayed park
    }
  }
  current_task_ = kNoTask;
  if (hang_detection_ && unfinishedTasks() > 0) {
    // Satellite fix for the silent-hang bug: the heap drained while tasks
    // were still alive (parked on a lock/barrier, or wedged). Fail loudly
    // with the wait-for graph instead of returning as if the run finished.
    throw DeadlockError(hangReport());
  }
  return now_;
}

Tick Engine::makespan() const {
  Tick max = 0;
  for (Tick t : completion_) max = std::max(max, t);
  return max;
}

}  // namespace hsm::sim

#include "sim/engine.h"

#include <algorithm>

namespace hsm::sim {

bool ResumeAt::await_ready() const noexcept {
  // Zero-cost operations continue inline; anything in the future suspends.
  return when <= engine.now();
}

void ResumeAt::await_suspend(std::coroutine_handle<> h) const {
  engine.schedule(when, h);
}

std::size_t Engine::spawn(SimTask task, Tick start) {
  const std::size_t id = tasks_.size();
  task.handle().promise().engine = this;
  task.handle().promise().task_id = id;
  schedule(start, task.handle());
  tasks_.push_back(std::move(task));
  completion_.resize(tasks_.size(), 0);
  return id;
}

Tick Engine::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  while (!events_.empty()) {
    std::pop_heap(events_.begin(), events_.end(), EventAfter{});
    const Event ev = events_.back();
    events_.pop_back();
    now_ = ev.when;
    ++events_processed_;
    ev.handle.resume();
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return now_;
}

Tick Engine::makespan() const {
  Tick max = 0;
  for (Tick t : completion_) max = std::max(max, t);
  return max;
}

}  // namespace hsm::sim

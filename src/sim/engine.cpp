#include "sim/engine.h"

#include <algorithm>

namespace hsm::sim {

bool ResumeAt::await_ready() const noexcept {
  // Zero-cost operations continue inline; anything in the future suspends.
  return when <= engine.now();
}

void ResumeAt::await_suspend(std::coroutine_handle<> h) const {
  engine.schedule(when, h);
}

void Engine::schedule(Tick when, std::coroutine_handle<> h, std::size_t task_id) {
  if (when < now_) when = now_;
  const bool tracked = !resource_pending_.empty();
  // Host events and tasks predating registerResources have no alive-counter
  // entry: file them unaffined (bounding every horizon) and tally them
  // separately so the blocked computation stays exact.
  const bool counted = tracked && task_id != kNoTask && task_id >= counted_tasks_from_;
  std::uint32_t resource = resourceOfTask(task_id);
  if (tracked && !counted) resource = kNoResource;
  if (tracked) {
    pendingBucket(resource).push_back(when);
    if (!counted) ++uncounted_unaffined_pending_;
  }
  events_.push_back(Event{when, task_id, next_seq_++, resource, tracked, counted, h});
  std::push_heap(events_.begin(), events_.end(), EventAfter{});
}

void Engine::registerResources(std::uint32_t count) {
  resource_pending_.assign(count, {});
  resource_alive_.assign(count, 0);
  unaffined_pending_.clear();
  unaffined_alive_ = 0;
  uncounted_unaffined_pending_ = 0;
  counted_tasks_from_ = tasks_.size();
}

void Engine::dropPending(std::uint32_t resource, Tick when) {
  std::vector<Tick>& bucket = pendingBucket(resource);
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i] == when) {
      bucket[i] = bucket.back();
      bucket.pop_back();
      return;
    }
  }
}

Tick Engine::nextEventTimeFor(std::uint32_t resource) const {
  if (resource_pending_.empty() || resource >= resource_pending_.size()) {
    return nextEventTime();
  }
  // Blocked = alive but no pending event (parked on a lock/barrier). The
  // running task itself has no pending event either; it is excluded, not
  // blocked. Any blocked task in this affinity class — or any blocked
  // unaffined task — can be woken by whatever event fires next, so only the
  // global horizon is safe then.
  std::int64_t blocked_here = resource_alive_[resource] -
                              static_cast<std::int64_t>(resource_pending_[resource].size());
  std::int64_t blocked_unaffined =
      unaffined_alive_ - static_cast<std::int64_t>(unaffined_pending_.size() -
                                                   uncounted_unaffined_pending_);
  if (current_task_ != kNoTask) {
    const std::uint32_t cur = resourceOfTask(current_task_);
    if (cur == resource) {
      --blocked_here;
    } else if (cur == kNoResource) {
      --blocked_unaffined;
    }
  }
  if (blocked_here > 0 || blocked_unaffined > 0) return nextEventTime();

  Tick horizon = kNever;
  for (const Tick t : resource_pending_[resource]) horizon = std::min(horizon, t);
  for (const Tick t : unaffined_pending_) horizon = std::min(horizon, t);
  return horizon;
}

std::size_t Engine::spawn(SimTask task, Tick start, std::uint32_t resource) {
  const std::size_t id = tasks_.size();
  if (resource != kNoResource &&
      (resource_pending_.empty() || resource >= resource_pending_.size())) {
    resource = kNoResource;  // unregistered affinity: stay conservative
  }
  if (task_resource_.size() <= id) task_resource_.resize(id + 1, kNoResource);
  task_resource_[id] = resource;
  if (!resource_pending_.empty()) {
    if (resource == kNoResource) {
      ++unaffined_alive_;
    } else {
      ++resource_alive_[resource];
    }
  }
  task.handle().promise().engine = this;
  task.handle().promise().task_id = id;
  schedule(start, task.handle(), id);
  tasks_.push_back(std::move(task));
  completion_.resize(tasks_.size(), 0);
  return id;
}

Tick Engine::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  while (!events_.empty()) {
    std::pop_heap(events_.begin(), events_.end(), EventAfter{});
    const Event ev = events_.back();
    events_.pop_back();
    if (ev.tracked) {
      dropPending(ev.resource, ev.when);
      if (!ev.counted) --uncounted_unaffined_pending_;
    }
    now_ = ev.when;
    current_task_ = ev.task;
    ++events_processed_;
    ev.handle.resume();
  }
  current_task_ = kNoTask;
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return now_;
}

Tick Engine::makespan() const {
  Tick max = 0;
  for (Tick t : completion_) max = std::max(max, t);
  return max;
}

}  // namespace hsm::sim

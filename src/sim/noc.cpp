#include "sim/noc.h"

#include <array>
#include <vector>

namespace hsm::sim {

std::uint32_t MeshTopology::coreForUe(int ue, int num_ues) const {
  (void)num_ues;
  // Enumerate the tiles of each quadrant (x side, y side); UE i lands in
  // quadrant i%4, filling each quadrant's tiles before using second cores.
  const std::uint32_t half_x = config_.mesh_cols / 2;
  const std::uint32_t half_y = config_.mesh_rows / 2;
  const std::uint32_t quadrant = static_cast<std::uint32_t>(ue) % 4;
  const std::uint32_t k = static_cast<std::uint32_t>(ue) / 4;

  std::vector<std::uint32_t> tiles;
  const bool east = (quadrant & 1u) != 0;
  const bool north = (quadrant & 2u) != 0;
  for (std::uint32_t y = north ? half_y : 0; y < (north ? config_.mesh_rows : half_y);
       ++y) {
    for (std::uint32_t x = east ? half_x : 0; x < (east ? config_.mesh_cols : half_x);
         ++x) {
      tiles.push_back(y * config_.mesh_cols + x);
    }
  }
  const std::uint32_t tile = tiles[k % tiles.size()];
  const std::uint32_t slot = (k / tiles.size()) % config_.cores_per_tile;
  return tile * config_.cores_per_tile + slot;
}

}  // namespace hsm::sim

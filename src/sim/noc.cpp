#include "sim/noc.h"

namespace hsm::sim {

MeshTopology::MeshTopology(const SccConfig& config) : config_(config) {
  const std::uint32_t tiles = config_.numTiles();
  tile_coord_.reserve(tiles);
  for (std::uint32_t tile = 0; tile < tiles; ++tile) {
    tile_coord_.push_back(TileCoord{tile % config_.mesh_cols, tile / config_.mesh_cols});
  }

  core_controller_.reserve(config_.num_cores);
  core_controller_hops_.reserve(config_.num_cores);
  for (std::uint32_t core = 0; core < config_.num_cores; ++core) {
    const TileCoord c = coordOfCore(core);
    const bool east = c.x >= config_.mesh_cols / 2;
    const bool north = c.y >= config_.mesh_rows / 2;
    const std::uint32_t mc = (north ? 2u : 0u) + (east ? 1u : 0u);
    core_controller_.push_back(mc);
    core_controller_hops_.push_back(hops(tileOfCore(core), tileOfController(mc)) + 1);
  }

  ue_core_.reserve(config_.num_cores);
  for (std::uint32_t ue = 0; ue < config_.num_cores; ++ue) {
    ue_core_.push_back(computeCoreForUe(ue));
  }
}

std::uint32_t MeshTopology::controllerForUe(int ue, int num_ues) const {
  return controllerOfCore(coreForUe(ue, num_ues));
}

std::uint32_t MeshTopology::computeCoreForUe(std::uint32_t ue) const {
  // Enumerate the tiles of each quadrant (x side, y side); UE i lands in
  // quadrant i%4, filling each quadrant's tiles before using second cores.
  const std::uint32_t half_x = config_.mesh_cols / 2;
  const std::uint32_t half_y = config_.mesh_rows / 2;
  const std::uint32_t quadrant = ue % 4;
  const std::uint32_t k = ue / 4;

  std::vector<std::uint32_t> tiles;
  const bool east = (quadrant & 1u) != 0;
  const bool north = (quadrant & 2u) != 0;
  for (std::uint32_t y = north ? half_y : 0; y < (north ? config_.mesh_rows : half_y);
       ++y) {
    for (std::uint32_t x = east ? half_x : 0; x < (east ? config_.mesh_cols : half_x);
         ++x) {
      tiles.push_back(y * config_.mesh_cols + x);
    }
  }
  const std::uint32_t tile = tiles[k % tiles.size()];
  const std::uint32_t slot = (k / tiles.size()) % config_.cores_per_tile;
  return tile * config_.cores_per_tile + slot;
}

}  // namespace hsm::sim

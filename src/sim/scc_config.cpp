#include "sim/scc_config.h"

#include <iomanip>
#include <sstream>

namespace hsm::sim {

std::uint64_t opCycles(const SccConfig& cfg, OpClass cls) {
  switch (cls) {
    case OpClass::IntAlu: return cfg.int_alu_cycles;
    case OpClass::IntMul: return cfg.int_mul_cycles;
    case OpClass::IntDiv: return cfg.int_div_cycles;
    case OpClass::FpAdd: return cfg.fp_add_cycles;
    case OpClass::FpMul: return cfg.fp_mul_cycles;
    case OpClass::FpDiv: return cfg.fp_div_cycles;
  }
  return 1;
}

std::string SccConfig::formatTable61(int rcce_units, int pthread_units) const {
  std::ostringstream os;
  auto mhz = [](double v) {
    std::ostringstream s;
    s << static_cast<long long>(v) << " MHz";
    return s.str();
  };
  os << std::left << std::setw(24) << "" << std::setw(14) << "RCCE"
     << std::setw(14) << "Pthreads" << '\n';
  os << std::string(52, '-') << '\n';
  os << std::left << std::setw(24) << "Core Frequency" << std::setw(14) << mhz(core_mhz)
     << std::setw(14) << mhz(core_mhz) << '\n';
  os << std::left << std::setw(24) << "Communication Network" << std::setw(14)
     << mhz(mesh_mhz) << std::setw(14) << mhz(mesh_mhz) << '\n';
  os << std::left << std::setw(24) << "Off-chip Memory" << std::setw(14) << mhz(dram_mhz)
     << std::setw(14) << mhz(dram_mhz) << '\n';
  os << std::left << std::setw(24) << "Execution Units" << std::setw(14)
     << (std::to_string(rcce_units) + " cores")
     << std::setw(14) << (std::to_string(pthread_units) + " threads") << '\n';
  return os.str();
}

}  // namespace hsm::sim

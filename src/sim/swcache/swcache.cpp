#include "sim/swcache/swcache.h"

#include <algorithm>
#include <cstring>

namespace hsm::sim {

SwCache::SwCache(std::size_t num_lines, std::size_t line_bytes, SwCachePolicy policy)
    : tags_(num_lines * line_bytes, line_bytes), line_bytes_(line_bytes),
      policy_(policy), data_(num_lines * line_bytes, 0) {}

void SwCache::storeLineAt(std::uint64_t addr, std::size_t index, std::uint8_t* dram,
                          std::size_t dram_bytes) {
  // Clamp to the backing size: shared allocations are 8-byte, not line,
  // aligned at the region end.
  if (addr >= dram_bytes) return;
  const std::size_t n =
      static_cast<std::size_t>(dram_bytes - addr) < line_bytes_
          ? static_cast<std::size_t>(dram_bytes - addr)
          : line_bytes_;
  std::memcpy(dram + addr, linePtr(index), n);
}

void SwCache::storeLine(std::size_t index, std::uint8_t* dram,
                        std::size_t dram_bytes) {
  storeLineAt(tags_.slotAddr(index), index, dram, dram_bytes);
}

SwCache::AccessPlan SwCache::access(std::uint64_t offset, std::size_t bytes,
                                    bool write, void* data_out, const void* data_in,
                                    std::uint8_t* dram, std::size_t dram_bytes,
                                    std::size_t word_bytes) {
  AccessPlan plan;
  std::size_t pos = 0;  // bytes of the access already served
  // Word accounting mirrors the uncached path's FSB beats: the access is
  // ceil(bytes / word_bytes) beats starting at `offset`, each attributed to
  // the line its first byte falls in — so the total is identical however
  // the access straddles lines (the routing-invariant shm_words metric
  // depends on this).
  std::uint64_t beat_cursor = offset;
  const std::uint64_t beats_end = offset + bytes;
  while (pos < bytes) {
    const std::uint64_t addr = offset + pos;
    const std::uint64_t line_addr = addr / line_bytes_ * line_bytes_;
    const std::size_t in_line = static_cast<std::size_t>(addr - line_addr);
    const std::size_t seg = std::min(bytes - pos, line_bytes_ - in_line);
    std::size_t words = 0;
    if (beat_cursor < addr + seg) {
      words = static_cast<std::size_t>(
          (std::min<std::uint64_t>(addr + seg, beats_end) - beat_cursor +
           word_bytes - 1) /
          word_bytes);
      beat_cursor += static_cast<std::uint64_t>(words) * word_bytes;
    }

    if (write && policy_ == SwCachePolicy::kWriteThrough) {
      // No-allocate: the words go straight to DRAM as uncached transactions;
      // a resident copy is refreshed in place so it never turns stale. Same
      // region-tail clamp as every other DRAM touch in this file.
      if (data_in != nullptr && addr < dram_bytes) {
        std::memcpy(dram + addr, static_cast<const std::uint8_t*>(data_in) + pos,
                    std::min<std::uint64_t>(seg, dram_bytes - addr));
      }
      const std::size_t slot = tags_.lookup(line_addr);
      stats_.word_accesses += words;
      if (slot != Cache::kNoSlot) {
        stats_.word_hits += words;
        if (data_in != nullptr) {
          std::memcpy(linePtr(slot) + in_line,
                      static_cast<const std::uint8_t*>(data_in) + pos, seg);
        }
      }
      stats_.writethrough_words += words;
      plan.writethrough_words += words;
      pos += seg;
      continue;
    }

    const Cache::AccessResult r = tags_.access(line_addr, write);
    stats_.word_accesses += words;
    if (r.hit) {
      stats_.word_hits += words;
      ++plan.hit_touches;
    } else {
      if (r.writeback) {
        // The victim still occupies the slot's data until we overwrite it —
        // store it first (Cache::access already retagged, but victim_addr
        // remembers where the old bytes belong).
        storeLineAt(r.victim_addr, r.index, dram, dram_bytes);
        ++stats_.writebacks;
        ++plan.line_txns;
      }
      // Fill (write-allocate: a written line is loaded first so its
      // untouched bytes stay correct when the line is later written back).
      const std::size_t avail =
          line_addr < dram_bytes
              ? std::min(line_bytes_, static_cast<std::size_t>(dram_bytes - line_addr))
              : 0;
      if (avail > 0) std::memcpy(linePtr(r.index), dram + line_addr, avail);
      if (avail < line_bytes_) std::memset(linePtr(r.index) + avail, 0, line_bytes_ - avail);
      ++stats_.line_fills;
      ++plan.line_txns;
    }

    if (write) {
      if (data_in != nullptr) {
        std::memcpy(linePtr(r.index) + in_line,
                    static_cast<const std::uint8_t*>(data_in) + pos, seg);
      }
    } else if (data_out != nullptr) {
      std::memcpy(static_cast<std::uint8_t*>(data_out) + pos, linePtr(r.index) + in_line,
                  seg);
    }
    pos += seg;
  }
  return plan;
}

std::size_t SwCache::flushDirty(std::uint8_t* dram, std::size_t dram_bytes,
                                bool count_stats,
                                std::vector<std::uint64_t>* flushed_addrs) {
  std::size_t stored = 0;
  if (tags_.dirtyCount() > 0) {  // sync points are frequent; sweep only if needed
    for (std::size_t i = 0; i < tags_.numLines(); ++i) {
      if (!tags_.slotValid(i) || !tags_.slotDirty(i)) continue;
      storeLine(i, dram, dram_bytes);
      tags_.markClean(i);
      if (flushed_addrs != nullptr) flushed_addrs->push_back(tags_.slotAddr(i));
      ++stored;
      if (tags_.dirtyCount() == 0) break;  // rest of the sweep is clean
    }
  }
  if (count_stats) {
    stats_.writebacks += stored;
    ++stats_.flushes;
  }
  return stored;
}

std::size_t SwCache::restoreCorrupted(const std::vector<std::uint64_t>& addrs,
                                      std::uint8_t* dram, std::size_t dram_bytes) {
  std::size_t repaired = 0;
  for (const std::uint64_t addr : addrs) {
    const std::size_t i = tags_.lookup(addr);
    // The line must still be resident: it was flushed moments ago and
    // nothing between flush and verify can evict it (the reconciliation
    // runs before the release takes effect).
    if (i == Cache::kNoSlot || addr >= dram_bytes) continue;
    const std::size_t n =
        static_cast<std::size_t>(dram_bytes - addr) < line_bytes_
            ? static_cast<std::size_t>(dram_bytes - addr)
            : line_bytes_;
    if (std::memcmp(dram + addr, linePtr(i), n) == 0) continue;
    storeLineAt(addr, i, dram, dram_bytes);
    ++repaired;
  }
  stats_.writebacks += repaired;
  return repaired;
}

std::size_t SwCache::invalidateClean() {
  if (tags_.validCount() == tags_.dirtyCount()) return 0;  // nothing clean
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < tags_.numLines(); ++i) {
    if (!tags_.slotValid(i) || tags_.slotDirty(i)) continue;
    tags_.invalidateSlot(i);
    ++dropped;
  }
  stats_.invalidated_lines += dropped;
  return dropped;
}

std::size_t SwCache::syncRange(std::uint64_t offset, std::size_t bytes, bool drop,
                               std::uint8_t* dram, std::size_t dram_bytes) {
  if (bytes == 0 || tags_.validCount() == 0) return 0;
  const std::uint64_t first = offset / line_bytes_ * line_bytes_;
  const std::uint64_t last = (offset + bytes - 1) / line_bytes_ * line_bytes_;
  std::size_t stored = 0;
  auto fence_slot = [&](std::size_t i) {
    if (tags_.slotDirty(i)) {
      storeLine(i, dram, dram_bytes);
      tags_.markClean(i);
      ++stored;
    }
    if (drop) {
      tags_.invalidateSlot(i);
      ++stats_.invalidated_lines;
    }
  };
  const std::uint64_t range_lines = (last - first) / line_bytes_ + 1;
  if (range_lines < tags_.numLines()) {
    // Small bulk range: probe just the range's lines — O(lines in range),
    // like access() — instead of sweeping every slot.
    for (std::uint64_t addr = first; addr <= last; addr += line_bytes_) {
      const std::size_t i = tags_.lookup(addr);
      if (i != Cache::kNoSlot) fence_slot(i);
    }
  } else {
    for (std::size_t i = 0; i < tags_.numLines(); ++i) {
      if (!tags_.slotValid(i)) continue;
      const std::uint64_t addr = tags_.slotAddr(i);
      if (addr < first || addr > last) continue;
      fence_slot(i);
    }
  }
  stats_.writebacks += stored;
  return stored;
}

std::size_t SwCache::residentLines() const { return tags_.validCount(); }

std::size_t SwCache::dirtyLines() const { return tags_.dirtyCount(); }

}  // namespace hsm::sim

// Software-managed release-consistency cache for the shared off-chip
// address space (`swcache`).
//
// The SCC's shared pages are hardware-uncacheable: PR 1–3 made that
// word-granular path fast, but every access still pays a full
// core–mesh–controller round trip. The paper's architecture is *hybrid*,
// and the second enabler for pthreads-style workloads is letting each core
// cache shared data in its fast private memory and reconcile at
// synchronization points — the software-managed coherence of
// shared-virtual-memory systems (Hechtman & Sorin) and user-space hybrid
// page caches (hmem-sigsegv).
//
// Protocol (release consistency over data-race-free programs):
//   * reads miss into line-granular fills from shared DRAM;
//   * writes (write-back policy) dirty the per-core line store and do NOT
//     touch shared DRAM until reconciliation;
//   * RELEASE points (lock release, barrier arrival) write every dirty line
//     back — afterwards shared DRAM holds this core's writes;
//   * ACQUIRE points (lock acquire, barrier departure) self-invalidate every
//     *clean* line — stale copies of other cores' data are dropped, while
//     dirty lines (this core's own unreleased writes, which no other core
//     may race with in a DRF program) are retained;
//   * evictions write dirty victims back early, which is only ever
//     conservative (visibility before the release is harmless under DRF).
//
// The fallback `kWriteThrough` policy allocates on reads only; writes update
// shared DRAM immediately (word-granular, through the uncached path) and
// refresh a cached copy in place, so no line is ever dirty and release
// points are free.
//
// For data-race-free programs the functional results are bit-identical with
// the cache on or off (docs/memory_model.md states the contract); racy
// programs observe unspecified-but-deterministic values. Timing is a NEW
// model — swcache runs make no Tick-identity promise against the uncached
// path (that guarantee continues to hold among the uncached modes).
//
// This class is purely functional + bookkeeping: it moves bytes between the
// per-core line store and the shared-DRAM backing and reports what a timed
// caller (SccMachine) must charge — line-touch hits, line fills, victim
// write-backs, written-through words. SccMachine turns those counts into
// controller transactions, batching provably-uncontended runs through the
// same coalescedCompletion helper as the word and MPB-chunk paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/cache.h"

namespace hsm::sim {

enum class SwCachePolicy : std::uint8_t {
  kWriteBack,     ///< write-allocate, dirty lines reconcile at release points
  kWriteThrough,  ///< no-allocate writes go straight to DRAM (word-granular)
};

/// Per-core counters (word granularity matches the uncached path's metric:
/// one word = one 8-byte shared-memory transaction equivalent).
struct SwCacheStats {
  std::uint64_t word_accesses = 0;  ///< words served through the cache
  std::uint64_t word_hits = 0;      ///< words whose line was already present
  std::uint64_t line_fills = 0;     ///< line loads from shared DRAM
  std::uint64_t writebacks = 0;     ///< dirty-line stores (evictions + flushes)
  std::uint64_t flushes = 0;        ///< release-point flush operations
  std::uint64_t invalidated_lines = 0;  ///< clean lines dropped at acquires
  std::uint64_t writethrough_words = 0;  ///< words written through (no-allocate)

  [[nodiscard]] double hitRate() const {
    return word_accesses > 0
               ? static_cast<double>(word_hits) / static_cast<double>(word_accesses)
               : 0.0;
  }
  SwCacheStats& operator+=(const SwCacheStats& o) {
    word_accesses += o.word_accesses;
    word_hits += o.word_hits;
    line_fills += o.line_fills;
    writebacks += o.writebacks;
    flushes += o.flushes;
    invalidated_lines += o.invalidated_lines;
    writethrough_words += o.writethrough_words;
    return *this;
  }
};

class SwCache {
 public:
  SwCache(std::size_t num_lines, std::size_t line_bytes, SwCachePolicy policy);

  /// What a timed caller must charge for one access (see header comment).
  struct AccessPlan {
    std::size_t hit_touches = 0;  ///< line touches served from the line store
    std::size_t line_txns = 0;    ///< controller line transfers (fills + victim
                                  ///< write-backs), batchable back-to-back
    std::size_t writethrough_words = 0;  ///< uncached word transactions
  };

  /// Functionally perform a read (`data_out`) or write (`data_in`) of
  /// [offset, offset+bytes) against the cache, line segment by line segment,
  /// filling from / writing back to the `dram` backing store as the protocol
  /// requires. Returns the timing plan. `word_bytes` is the uncached
  /// transaction size the stats count in (the FSB beat, 8 bytes).
  AccessPlan access(std::uint64_t offset, std::size_t bytes, bool write,
                    void* data_out, const void* data_in, std::uint8_t* dram,
                    std::size_t dram_bytes, std::size_t word_bytes);

  /// RELEASE: write every dirty line back to `dram` and mark it clean.
  /// Returns the number of line write-backs the caller must charge.
  /// `count_stats=false` is the end-of-run drain (host-side convenience,
  /// untimed, not part of the protocol's measured behavior).
  /// `flushed_addrs` (optional) receives the line-aligned addresses just
  /// written back — the exact set fault reconciliation may verify: they are
  /// this core's own releases, which no other core may race with under DRF,
  /// so re-storing them can never clobber newer remote data.
  std::size_t flushDirty(std::uint8_t* dram, std::size_t dram_bytes,
                         bool count_stats = true,
                         std::vector<std::uint64_t>* flushed_addrs = nullptr);

  /// Fault reconciliation: compare the resident copies of `addrs` (a set
  /// previously reported by flushDirty) against `dram` and re-store any line
  /// that differs (a transient DRAM corruption of a just-flushed line).
  /// Returns the number of lines repaired; the caller charges them as extra
  /// write-back transfers. Restricted to just-flushed lines by contract —
  /// see flushed_addrs above for why verifying arbitrary resident lines
  /// would be unsound.
  std::size_t restoreCorrupted(const std::vector<std::uint64_t>& addrs,
                               std::uint8_t* dram, std::size_t dram_bytes);

  /// ACQUIRE: self-invalidate every clean line; dirty lines are retained
  /// (they are this core's own unreleased writes). Returns lines dropped.
  std::size_t invalidateClean();

  /// Coherence fence for accesses that bypass the cache (bulk transfers):
  /// write back dirty lines overlapping [offset, offset+bytes) and, when
  /// `drop` (a bypassing WRITE makes cached copies stale), invalidate every
  /// overlapping line. Returns the write-backs the caller must charge.
  std::size_t syncRange(std::uint64_t offset, std::size_t bytes, bool drop,
                        std::uint8_t* dram, std::size_t dram_bytes);

  [[nodiscard]] const SwCacheStats& stats() const { return stats_; }
  [[nodiscard]] SwCachePolicy policy() const { return policy_; }
  [[nodiscard]] std::size_t lineBytes() const { return line_bytes_; }
  /// Valid lines currently resident (for tests).
  [[nodiscard]] std::size_t residentLines() const;
  [[nodiscard]] std::size_t dirtyLines() const;

 private:
  [[nodiscard]] std::uint8_t* linePtr(std::size_t index) {
    return &data_[index * line_bytes_];
  }
  /// Copy slot `index`'s line data to backing offset `addr` (the clamp rule
  /// for region-tail lines lives here, shared by evictions and flushes).
  void storeLineAt(std::uint64_t addr, std::size_t index, std::uint8_t* dram,
                   std::size_t dram_bytes);
  /// storeLineAt at the slot's own tag address (flush/syncRange path).
  void storeLine(std::size_t index, std::uint8_t* dram, std::size_t dram_bytes);

  Cache tags_;  ///< the tag store (sim/cache.h); data_ pairs with its slots
  std::size_t line_bytes_;
  SwCachePolicy policy_;
  std::vector<std::uint8_t> data_;  ///< num_lines x line_bytes line store
  SwCacheStats stats_;
};

}  // namespace hsm::sim

// Deterministic simulated-time trace recorder (docs/observability.md).
//
// One face of src/sim/obs: typed span/instant events keyed by
// (Tick, task_id, resource), recorded at *operation* boundaries — the entry
// and exit Ticks of shmRead/shmWrite/swcacheRw/mpbRead/mpbWrite/bulk/sync
// operations. Those boundary Ticks are exactly the quantities the coalescing
// invariant (engine.h) guarantees are bit-identical across all coalescing
// modes, and the conservative-PDES proof (docs/engine_parallel.md)
// guarantees are bit-identical across engine_lanes=1/N. Recording at the
// per-engine-event level instead would break both contracts: intermediate
// event counts and ticks are mode-dependent by design. The one deliberately
// mode-dependent category — coalesced-batch boundaries — is opt-in
// (trace_batches) and documented as excluded from the identity contract.
//
// Determinism contract (a new oracle, tested in tests/test_obs.cpp):
//   - traces contain only simulated time (Ticks), never wall clock;
//   - with trace_batches off, an enabled trace is byte-identical across
//     engine_lanes=1/N, all coalescing modes, and zero-rate armed fault
//     plans (fault events are recorded only when a fault actually fires).
//
// Zero overhead when disabled: every hook site is gated on one cached bool
// (enabled()), the same discipline as FaultInjector::anyArmed(). The
// recorder is wired but dormant unless SccConfig::trace_enabled is set.
//
// Lane safety: events are recorded into per-task buffers. Each root task is
// resumed only on the lane that owns its component, and every cross-task
// recording site (barrier release, lock grant) writes only to tasks in the
// *same* component as the recording task, so no buffer is ever touched by
// two lanes. Buffers are pre-sized by prepare() before lanes start.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/time.h"

namespace hsm::sim::obs {

/// Resource slot for events not tied to a registered resource timeline.
inline constexpr std::uint32_t kNoTraceResource = 0xffffffffu;

enum class TraceEventKind : std::uint8_t {
  // ---- spans (end >= start) ----
  kShmRead = 0,    ///< uncached shared-DRAM read;  a=offset b=words
  kShmWrite,       ///< uncached shared-DRAM write; a=offset b=words c=attempts
  kShmBulkRead,    ///< DMA-style bulk read;  a=offset b=lines
  kShmBulkWrite,   ///< DMA-style bulk write; a=offset b=lines
  kSwcacheRead,    ///< cached read;  a=offset b=hit_touches c=line_txns
  kSwcacheWrite,   ///< cached write; a=offset b=hit_touches c=line_txns
  kSwcacheFlush,   ///< release flush / line ops; a=lines
  kMpbGet,         ///< on-die MPB read;  a=offset b=chunks c=owner_ue
  kMpbPut,         ///< on-die MPB write; a=offset b=chunks c=owner_ue
  kBarrierWait,    ///< arrival..release per waiter; a=sync_id b=episode
  kLockWait,       ///< request..grant; a=sync_id b=1 if the grant was queued
  kFreeze,         ///< injected core freeze; a=1 if permanent
  kBatch,          ///< coalesced batch (mode-dependent, opt-in); a=events
  // ---- instants (end == start) ----
  kBlock,          ///< task parked on a sync object; a=sync_id
  kWake,           ///< parked task rescheduled;      a=sync_id
  kLockRelease,    ///< lock handoff initiated;       a=sync_id
  kFaultInject,    ///< fault fired; a=fault class
  kFaultRetry,     ///< verify-and-retry round;       a=fault class
  kMcStall,        ///< injected controller stall;    a=stall ticks
  kReport,         ///< hang report; a=0 deadlock, 1 sync timeout, 2 watchdog
  kRace,           ///< drf race detected; a=granule offset, b=RaceKind, c=prior task
  kNumKinds,
};

[[nodiscard]] const char* traceEventName(TraceEventKind kind);
[[nodiscard]] bool traceEventIsSpan(TraceEventKind kind);

/// One recorded event. Task id is implicit (the buffer it lives in); the
/// executing lane is deliberately NOT recorded — lane identity is derived at
/// export time from the engine's deterministic component partition so the
/// bytes cannot depend on engine_lanes.
struct TraceEvent {
  Tick start = 0;
  Tick end = 0;
  std::uint64_t a = 0;  ///< kind-specific payload (see TraceEventKind docs)
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t resource = kNoTraceResource;  ///< registered resource id
  TraceEventKind kind = TraceEventKind::kShmRead;
};

/// Everything the exporter needs beyond the raw buffers. Built by
/// SccMachine::traceExportMeta(); every field is a deterministic function of
/// the run (component partition ignores lane count and done-ness).
struct TraceExportMeta {
  std::vector<std::uint32_t> task_component;  ///< task id -> component id
  std::vector<Tick> task_completion;          ///< task id -> completion Tick
  std::uint32_t num_controllers = 0;
  Tick final_tick = 0;
};

/// Per-task ring-buffer trace store with a bounded-memory cap.
class TraceRecorder {
 public:
  /// ring_capacity: max retained events per task (0 = unbounded). Overflow
  /// keeps the newest events and counts the evicted ones in droppedEvents().
  void configure(bool enabled, std::size_t ring_capacity, bool record_batches);

  /// The one hot-path gate. Hook sites test this cached bool and nothing
  /// else; when false the recorder costs one predictable branch per site.
  [[nodiscard]] bool enabled() const { return enabled_; }
  /// Gate for the mode-dependent batch-boundary category.
  [[nodiscard]] bool batchesEnabled() const { return enabled_ && batches_; }

  /// Size per-task buffers for `num_tasks` root tasks. Must be called before
  /// a parallel run so lanes never resize the outer vector concurrently.
  void prepare(std::size_t num_tasks);

  /// Record under a root task. Out-of-range ids (Engine::kNoTask, host
  /// context) land in the shared host buffer — callers in parallel regions
  /// always have a valid task id, so the host buffer stays single-threaded.
  void record(std::size_t task_id, const TraceEvent& ev);
  void recordHost(const TraceEvent& ev) { record(kHostSlot, ev); }

  [[nodiscard]] std::uint64_t recordedEvents() const;
  [[nodiscard]] std::uint64_t droppedEvents() const;
  [[nodiscard]] std::size_t taskSlots() const { return tasks_.size(); }
  /// Retained events for one task, oldest first.
  [[nodiscard]] std::vector<TraceEvent> taskEvents(std::size_t task_id) const;
  [[nodiscard]] std::vector<TraceEvent> hostEvents() const;

  /// Chrome trace-event JSON (catapult / Perfetto "traceEvents" array):
  /// pid 1 = one thread per UE/task (spans + instants), pid 2 = one thread
  /// per lane component (async task-lifetime spans), pid 3 = one counter
  /// thread per memory controller (cumulative word transactions). Output is
  /// a deterministic function of the recorded events and meta.
  void writeChromeJson(std::ostream& out, const TraceExportMeta& meta) const;

  /// Compact binary dump of the raw ring buffers (schema in
  /// docs/observability.md). Little-endian, field-by-field; carries per-task
  /// recorded/dropped accounting so truncation is visible.
  void writeBinary(std::ostream& out) const;

  void clear();

 private:
  static constexpr std::size_t kHostSlot = static_cast<std::size_t>(-1);

  struct TaskBuf {
    std::vector<TraceEvent> ring;
    std::size_t next = 0;          ///< overwrite cursor once the ring is full
    std::uint64_t recorded = 0;    ///< total record() calls
    std::uint64_t dropped = 0;     ///< evicted by the capacity cap
  };

  [[nodiscard]] static std::vector<TraceEvent> chronological(const TaskBuf& buf);
  void append(TaskBuf& buf, const TraceEvent& ev);

  std::vector<TaskBuf> tasks_;
  TaskBuf host_;
  std::size_t cap_ = 0;
  bool enabled_ = false;
  bool batches_ = false;
};

}  // namespace hsm::sim::obs

// Unified metrics registry (docs/observability.md).
//
// The second face of src/sim/obs: one named counter/gauge/histogram
// facility that absorbs the scattered end-of-run stats (engine wall
// seconds, swcache totals, controller traffic, FaultStats, lane event
// counts) behind a single MetricsSnapshot::toJson(). Metrics are split into
// two domains that can never be conflated:
//   - kSim:  derived purely from simulated time / simulated state; identical
//            across hosts, lane counts, and coalescing modes.
//   - kHost: wall-clock-derived simulator throughput (host seconds,
//            events per host second); machine-dependent by nature.
// toJson() renders the domains in separate objects and summary() (used for
// RunResult::detail) draws only on the sim domain, so a result line is
// reproducible bit-for-bit.
//
// The snapshot also carries the per-region shared-DRAM profiles
// (reads/writes/hits/misses/per-controller transactions for every named
// rcce::ShmArray region) that the ROADMAP's profile-guided-ExecutionPlan
// item consumes.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hsm::sim {
class SccMachine;
}  // namespace hsm::sim

namespace hsm::sim::obs {

enum class MetricDomain { kSim, kHost };

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed log2-bucketed histogram: bucket 0 holds values < 1, bucket i>=1
/// holds [2^(i-1), 2^i), the last bucket is open-ended. No allocation on
/// observe(), so histograms are safe to keep on warm paths.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 32;

  void observe(double value);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] const std::array<std::uint64_t, kNumBuckets>& buckets() const {
    return buckets_;
  }
  [[nodiscard]] static std::size_t bucketFor(double value);

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, Histogram::kNumBuckets> buckets{};
};

/// Per-region shared-DRAM profile for one named rcce::ShmArray region.
struct RegionProfile {
  std::string name;
  std::uint64_t begin = 0;  ///< byte offset into shared DRAM
  std::uint64_t end = 0;    ///< one past the last byte
  std::uint64_t reads = 0;          ///< read operations touching the region
  std::uint64_t writes = 0;         ///< write operations touching the region
  std::uint64_t read_words = 0;     ///< uncached word transactions
  std::uint64_t write_words = 0;
  std::uint64_t hits = 0;           ///< swcache word touches served locally
  std::uint64_t misses = 0;         ///< swcache miss-driven line transactions
  std::uint64_t bulk_lines = 0;     ///< DMA-style bulk line transfers
  std::vector<std::uint64_t> controller_txns;  ///< per-controller units
};

/// Immutable, ordered view of a registry (std::map keys => deterministic
/// iteration => deterministic JSON bytes).
class MetricsSnapshot {
 public:
  std::map<std::string, std::uint64_t> sim_counters;
  std::map<std::string, double> sim_gauges;
  std::map<std::string, std::uint64_t> host_counters;
  std::map<std::string, double> host_gauges;
  std::map<std::string, HistogramSnapshot> histograms;  // sim domain
  std::vector<RegionProfile> regions;

  [[nodiscard]] std::string toJson() const;
  /// Compact "k=v k=v ..." line built ONLY from sim-domain metrics —
  /// the deterministic source RunResult::detail derives from.
  [[nodiscard]] std::string summary() const;
};

/// Live registry: name -> instrument, lazily created, domain fixed at first
/// use. Iteration order is name order, so snapshots are deterministic.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, MetricDomain domain = MetricDomain::kSim);
  Gauge& gauge(const std::string& name, MetricDomain domain = MetricDomain::kSim);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  void clear();

 private:
  std::map<std::string, std::pair<MetricDomain, Counter>> counters_;
  std::map<std::string, std::pair<MetricDomain, Gauge>> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Absorb every end-of-run stat a finished SccMachine exposes into one
/// snapshot: engine (events, makespan, lane counts), shared-memory word and
/// bulk traffic, MPB chunks and scope violations, swcache totals, controller
/// traffic (counters + a spread histogram), fault statistics, host
/// throughput, and the named per-region profiles.
[[nodiscard]] MetricsSnapshot collectMetrics(const SccMachine& machine);

}  // namespace hsm::sim::obs

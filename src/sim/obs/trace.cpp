#include "sim/obs/trace.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <ostream>
#include <sstream>
#include <string>

namespace hsm::sim::obs {
namespace {

constexpr std::array<const char*, static_cast<std::size_t>(TraceEventKind::kNumKinds)>
    kKindNames = {
        "shm_read",      "shm_write",    "shm_bulk_read", "shm_bulk_write",
        "swcache_read",  "swcache_write", "swcache_flush", "mpb_get",
        "mpb_put",       "barrier_wait", "lock_wait",     "freeze",
        "batch",         "block",        "wake",          "lock_release",
        "fault_inject",  "fault_retry",  "mc_stall",      "report",
        "race",
};

// Kind-specific payload rendering so exported traces are self-describing in
// Perfetto's args pane instead of opaque a/b/c slots.
std::string argsJson(const TraceEvent& ev) {
  std::ostringstream out;
  out << '{';
  auto field = [&out, first = true](const char* name, std::uint64_t value) mutable {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":" << value;
  };
  switch (ev.kind) {
    case TraceEventKind::kShmRead:
      field("offset", ev.a);
      field("words", ev.b);
      break;
    case TraceEventKind::kShmWrite:
      field("offset", ev.a);
      field("words", ev.b);
      field("attempts", ev.c);
      break;
    case TraceEventKind::kShmBulkRead:
    case TraceEventKind::kShmBulkWrite:
      field("offset", ev.a);
      field("lines", ev.b);
      break;
    case TraceEventKind::kSwcacheRead:
    case TraceEventKind::kSwcacheWrite:
      field("offset", ev.a);
      field("hits", ev.b);
      field("line_txns", ev.c);
      break;
    case TraceEventKind::kSwcacheFlush:
      field("lines", ev.a);
      break;
    case TraceEventKind::kMpbGet:
    case TraceEventKind::kMpbPut:
      field("offset", ev.a);
      field("chunks", ev.b);
      field("owner", ev.c);
      break;
    case TraceEventKind::kBarrierWait:
      field("sync", ev.a);
      field("episode", ev.b);
      break;
    case TraceEventKind::kLockWait:
    case TraceEventKind::kLockRelease:
    case TraceEventKind::kBlock:
    case TraceEventKind::kWake:
      field("sync", ev.a);
      break;
    case TraceEventKind::kFreeze:
      field("permanent", ev.a);
      break;
    case TraceEventKind::kBatch:
      field("events", ev.a);
      break;
    case TraceEventKind::kFaultInject:
    case TraceEventKind::kFaultRetry:
      field("class", ev.a);
      break;
    case TraceEventKind::kMcStall:
      field("ticks", ev.a);
      break;
    case TraceEventKind::kReport:
      field("kind", ev.a);
      break;
    case TraceEventKind::kRace:
      field("offset", ev.a);
      field("kind", ev.b);
      field("prior_task", ev.c);
      break;
    case TraceEventKind::kNumKinds:
      break;
  }
  if (ev.resource != kNoTraceResource) field("resource", ev.resource);
  out << '}';
  return out.str();
}

void emitMeta(std::ostream& out, int pid, const char* what, std::uint64_t tid,
              const std::string& name, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << R"({"ph":"M","pid":)" << pid << R"(,"tid":)" << tid << R"(,"name":")" << what
      << R"(","args":{"name":")" << name << "\"}}";
}

void le64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

void le32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 4);
}

}  // namespace

const char* traceEventName(TraceEventKind kind) {
  return kKindNames[static_cast<std::size_t>(kind)];
}

bool traceEventIsSpan(TraceEventKind kind) { return kind < TraceEventKind::kBlock; }

void TraceRecorder::configure(bool enabled, std::size_t ring_capacity,
                              bool record_batches) {
  enabled_ = enabled;
  cap_ = ring_capacity;
  batches_ = record_batches;
}

void TraceRecorder::prepare(std::size_t num_tasks) {
  if (tasks_.size() < num_tasks) tasks_.resize(num_tasks);
}

void TraceRecorder::append(TaskBuf& buf, const TraceEvent& ev) {
  ++buf.recorded;
  if (cap_ == 0 || buf.ring.size() < cap_) {
    buf.ring.push_back(ev);
    return;
  }
  // Ring full: overwrite the oldest retained event, keep the newest window.
  buf.ring[buf.next] = ev;
  buf.next = (buf.next + 1) % cap_;
  ++buf.dropped;
}

void TraceRecorder::record(std::size_t task_id, const TraceEvent& ev) {
  append(task_id < tasks_.size() ? tasks_[task_id] : host_, ev);
}

std::uint64_t TraceRecorder::recordedEvents() const {
  std::uint64_t total = host_.recorded;
  for (const TaskBuf& buf : tasks_) total += buf.recorded;
  return total;
}

std::uint64_t TraceRecorder::droppedEvents() const {
  std::uint64_t total = host_.dropped;
  for (const TaskBuf& buf : tasks_) total += buf.dropped;
  return total;
}

std::vector<TraceEvent> TraceRecorder::chronological(const TaskBuf& buf) {
  std::vector<TraceEvent> events;
  events.reserve(buf.ring.size());
  // Oldest retained event sits at the overwrite cursor once wrapped.
  for (std::size_t i = 0; i < buf.ring.size(); ++i) {
    events.push_back(buf.ring[(buf.next + i) % buf.ring.size()]);
  }
  return events;
}

std::vector<TraceEvent> TraceRecorder::taskEvents(std::size_t task_id) const {
  if (task_id >= tasks_.size()) return {};
  return chronological(tasks_[task_id]);
}

std::vector<TraceEvent> TraceRecorder::hostEvents() const { return chronological(host_); }

void TraceRecorder::writeChromeJson(std::ostream& out,
                                    const TraceExportMeta& meta) const {
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;

  // ---- track metadata -------------------------------------------------
  emitMeta(out, 1, "process_name", 0, "UE timelines", first);
  emitMeta(out, 2, "process_name", 0, "lanes (reach components)", first);
  emitMeta(out, 3, "process_name", 0, "memory controllers", first);
  const std::size_t host_tid = tasks_.size();
  for (std::size_t task = 0; task < tasks_.size(); ++task) {
    emitMeta(out, 1, "thread_name", task, "ue " + std::to_string(task), first);
  }
  if (!host_.ring.empty()) emitMeta(out, 1, "thread_name", host_tid, "host", first);
  std::uint32_t num_components = 0;
  for (std::size_t task = 0; task < tasks_.size(); ++task) {
    const std::uint32_t comp =
        task < meta.task_component.size() ? meta.task_component[task] : 0;
    num_components = std::max(num_components, comp + 1);
  }
  for (std::uint32_t comp = 0; comp < num_components; ++comp) {
    emitMeta(out, 2, "thread_name", comp, "lane " + std::to_string(comp), first);
  }
  for (std::uint32_t mc = 0; mc < meta.num_controllers; ++mc) {
    emitMeta(out, 3, "thread_name", mc, "mc " + std::to_string(mc), first);
  }

  // ---- pid 1: per-UE operation timelines ------------------------------
  // Merge all per-task buffers into one global order. The key
  // (start, task, in-task index) is a pure function of the recorded data,
  // so the merged order — and therefore the output bytes — cannot depend on
  // lane count or coalescing mode.
  struct Merged {
    TraceEvent ev;
    std::size_t task;
    std::size_t idx;
  };
  std::vector<Merged> merged;
  merged.reserve(recordedEvents() - droppedEvents());
  for (std::size_t task = 0; task <= tasks_.size(); ++task) {
    const std::vector<TraceEvent> events =
        task < tasks_.size() ? taskEvents(task) : hostEvents();
    for (std::size_t i = 0; i < events.size(); ++i) {
      merged.push_back({events[i], task, i});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Merged& lhs, const Merged& rhs) {
    if (lhs.ev.start != rhs.ev.start) return lhs.ev.start < rhs.ev.start;
    if (lhs.task != rhs.task) return lhs.task < rhs.task;
    return lhs.idx < rhs.idx;
  });
  for (const Merged& entry : merged) {
    const TraceEvent& ev = entry.ev;
    if (!first) out << ",\n";
    first = false;
    out << R"({"name":")" << traceEventName(ev.kind) << R"(","pid":1,"tid":)"
        << entry.task << ",\"ts\":" << ev.start;
    if (traceEventIsSpan(ev.kind)) {
      out << R"(,"ph":"X","dur":)" << (ev.end - ev.start);
    } else {
      out << R"(,"ph":"i","s":"t")";
    }
    out << ",\"args\":" << argsJson(ev) << '}';
  }

  // ---- pid 2: task lifetimes grouped by lane component ----------------
  // Tasks in one component are simulated-concurrent, so lifetimes on the
  // same track overlap; async (b/e) spans keyed by task id render stacked.
  struct Life {
    Tick end;
    std::size_t task;
    std::uint32_t comp;
  };
  std::vector<Life> lives;
  for (std::size_t task = 0; task < tasks_.size(); ++task) {
    const Tick done = task < meta.task_completion.size() && meta.task_completion[task] > 0
                          ? meta.task_completion[task]
                          : meta.final_tick;
    const std::uint32_t comp =
        task < meta.task_component.size() ? meta.task_component[task] : 0;
    lives.push_back({done, task, comp});
    if (!first) out << ",\n";
    first = false;
    out << R"({"name":"task )" << task
        << R"(","ph":"b","cat":"task","id":)" << task << R"(,"pid":2,"tid":)" << comp
        << ",\"ts\":0,\"args\":{}}";
  }
  std::sort(lives.begin(), lives.end(), [](const Life& lhs, const Life& rhs) {
    if (lhs.end != rhs.end) return lhs.end < rhs.end;
    return lhs.task < rhs.task;
  });
  for (const Life& life : lives) {
    if (!first) out << ",\n";
    first = false;
    out << R"({"name":"task )" << life.task
        << R"(","ph":"e","cat":"task","id":)" << life.task << R"(,"pid":2,"tid":)"
        << life.comp << ",\"ts\":" << life.end << ",\"args\":{}}";
  }

  // ---- pid 3: cumulative word/line traffic per memory controller ------
  std::vector<std::uint64_t> cumulative(meta.num_controllers, 0);
  for (const Merged& entry : merged) {
    const TraceEvent& ev = entry.ev;
    if (ev.resource >= meta.num_controllers) continue;
    if (ev.kind == TraceEventKind::kMcStall) {
      if (!first) out << ",\n";
      first = false;
      out << R"({"name":"mc_stall","ph":"i","s":"t","pid":3,"tid":)" << ev.resource
          << ",\"ts\":" << ev.start << ",\"args\":" << argsJson(ev) << '}';
      continue;
    }
    if (!traceEventIsSpan(ev.kind)) continue;
    // Controller units: words for the uncached kinds, lines for the bulk and
    // swcache kinds (the payload slot that holds line transactions differs
    // per kind — see TraceEventKind).
    std::uint64_t units = ev.b;
    if (ev.kind == TraceEventKind::kSwcacheRead ||
        ev.kind == TraceEventKind::kSwcacheWrite) {
      units = ev.c;
    } else if (ev.kind == TraceEventKind::kSwcacheFlush) {
      units = ev.a;
    }
    cumulative[ev.resource] += units;
    if (!first) out << ",\n";
    first = false;
    out << R"({"name":"mc_traffic","ph":"C","pid":3,"tid":)" << ev.resource
        << ",\"ts\":" << ev.end << ",\"args\":{\"units\":" << cumulative[ev.resource]
        << "}}";
  }

  out << "\n]}\n";
}

void TraceRecorder::writeBinary(std::ostream& out) const {
  out.write("HSMTRC01", 8);
  le32(out, 1);  // schema version
  le32(out, static_cast<std::uint32_t>(tasks_.size()));
  auto dump = [&out](const TaskBuf& buf) {
    le64(out, buf.recorded);
    le64(out, buf.dropped);
    const std::vector<TraceEvent> events = chronological(buf);
    le64(out, events.size());
    for (const TraceEvent& ev : events) {
      le64(out, ev.start);
      le64(out, ev.end);
      le64(out, ev.a);
      le64(out, ev.b);
      le64(out, ev.c);
      le32(out, ev.resource);
      out.put(static_cast<char>(ev.kind));
    }
  };
  for (const TaskBuf& buf : tasks_) dump(buf);
  dump(host_);
}

void TraceRecorder::clear() {
  tasks_.clear();
  host_ = TaskBuf{};
}

}  // namespace hsm::sim::obs

#include "sim/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/fault/fault.h"
#include "sim/machine.h"

namespace hsm::sim::obs {
namespace {

// Deterministic double rendering: one fixed format, so identical values
// always produce identical bytes regardless of locale or stream state.
std::string jsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

template <typename Map, typename Render>
void emitObject(std::ostringstream& out, const Map& map, Render render) {
  out << '{';
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":";
    render(value);
  }
  out << '}';
}

}  // namespace

void Histogram::observe(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucketFor(value)];
}

std::size_t Histogram::bucketFor(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN
  const std::size_t exp = static_cast<std::size_t>(std::log2(value)) + 1;
  return exp < kNumBuckets ? exp : kNumBuckets - 1;
}

Counter& MetricsRegistry::counter(const std::string& name, MetricDomain domain) {
  auto [it, inserted] = counters_.try_emplace(name, domain, Counter{});
  return it->second.second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricDomain domain) {
  auto [it, inserted] = gauges_.try_emplace(name, domain, Gauge{});
  return it->second.second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, entry] : counters_) {
    (entry.first == MetricDomain::kSim ? snap.sim_counters
                                       : snap.host_counters)[name] =
        entry.second.value();
  }
  for (const auto& [name, entry] : gauges_) {
    (entry.first == MetricDomain::kSim ? snap.sim_gauges : snap.host_gauges)[name] =
        entry.second.value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.count = hist.count();
    h.sum = hist.sum();
    h.min = hist.min();
    h.max = hist.max();
    h.buckets = hist.buckets();
    snap.histograms[name] = h;
  }
  return snap;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsSnapshot::toJson() const {
  std::ostringstream out;
  out << "{\"sim\":{\"counters\":";
  emitObject(out, sim_counters, [&out](std::uint64_t v) { out << v; });
  out << ",\"gauges\":";
  emitObject(out, sim_gauges, [&out](double v) { out << jsonNumber(v); });
  out << "},\"host\":{\"counters\":";
  emitObject(out, host_counters, [&out](std::uint64_t v) { out << v; });
  out << ",\"gauges\":";
  emitObject(out, host_gauges, [&out](double v) { out << jsonNumber(v); });
  out << "},\"histograms\":";
  emitObject(out, histograms, [&out](const HistogramSnapshot& h) {
    out << "{\"count\":" << h.count << ",\"sum\":" << jsonNumber(h.sum)
        << ",\"min\":" << jsonNumber(h.min) << ",\"max\":" << jsonNumber(h.max)
        << ",\"buckets\":[";
    // Trailing zero buckets are elided to keep snapshots compact; consumers
    // treat missing buckets as zero.
    std::size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (std::size_t i = 0; i < last; ++i) {
      if (i > 0) out << ',';
      out << h.buckets[i];
    }
    out << "]}";
  });
  out << ",\"regions\":[";
  bool first = true;
  for (const RegionProfile& region : regions) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << region.name << "\",\"begin\":" << region.begin
        << ",\"end\":" << region.end << ",\"reads\":" << region.reads
        << ",\"writes\":" << region.writes << ",\"read_words\":" << region.read_words
        << ",\"write_words\":" << region.write_words << ",\"hits\":" << region.hits
        << ",\"misses\":" << region.misses << ",\"bulk_lines\":" << region.bulk_lines
        << ",\"controller_txns\":[";
    for (std::size_t mc = 0; mc < region.controller_txns.size(); ++mc) {
      if (mc > 0) out << ',';
      out << region.controller_txns[mc];
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::string MetricsSnapshot::summary() const {
  std::ostringstream out;
  auto counter = [&](const char* name, bool always = false) {
    auto it = sim_counters.find(name);
    if (it == sim_counters.end() || (!always && it->second == 0)) return;
    if (out.tellp() > 0) out << ' ';
    out << name << '=' << it->second;
  };
  auto gauge = [&](const char* name) {
    auto it = sim_gauges.find(name);
    if (it == sim_gauges.end() || it->second == 0.0) return;
    if (out.tellp() > 0) out << ' ';
    out << name << '=' << jsonNumber(it->second);
  };
  counter("events", /*always=*/true);
  counter("makespan_ticks", /*always=*/true);
  counter("shm_words");
  counter("shm_bulk_lines");
  counter("swcache_lines");
  counter("mpb_chunks");
  counter("mpb_scope_violations");
  counter("faults_injected");
  counter("faults_unrecovered");
  counter("drf_races");
  gauge("swcache_hit_rate");
  gauge("controller_load_cv");
  return out.str();
}

MetricsSnapshot collectMetrics(const SccMachine& machine) {
  MetricsRegistry reg;
  const Engine& engine = machine.engine();

  // ---- engine (sim domain) -------------------------------------------
  reg.counter("events").add(engine.eventsProcessed());
  reg.counter("makespan_ticks").add(engine.makespan());
  reg.counter("lanes_used").add(engine.lanesUsed());
  const std::vector<std::uint64_t>& lane_events = engine.laneEventCounts();
  Histogram& lane_hist = reg.histogram("lane_events");
  for (std::size_t lane = 0; lane < lane_events.size(); ++lane) {
    reg.counter("lane" + std::to_string(lane) + "_events").add(lane_events[lane]);
    lane_hist.observe(static_cast<double>(lane_events[lane]));
  }

  // ---- shared-memory / MPB traffic -----------------------------------
  reg.counter("shm_words").add(machine.shmWordsSimulated());
  reg.counter("shm_word_events").add(machine.shmWordEvents());
  reg.counter("shm_bulk_lines").add(machine.shmBulkLinesSimulated());
  reg.counter("mpb_chunks").add(machine.mpbChunksSimulated());
  reg.counter("mpb_chunk_events").add(machine.mpbChunkEvents());
  reg.counter("mpb_scope_violations").add(machine.mpbScopeViolations());

  // ---- swcache --------------------------------------------------------
  const SwCacheStats sw = machine.swcacheTotals();
  reg.counter("swcache_word_accesses").add(sw.word_accesses);
  reg.counter("swcache_word_hits").add(sw.word_hits);
  reg.counter("swcache_line_fills").add(sw.line_fills);
  reg.counter("swcache_writebacks").add(sw.writebacks);
  reg.counter("swcache_flushes").add(sw.flushes);
  reg.counter("swcache_invalidated_lines").add(sw.invalidated_lines);
  reg.counter("swcache_writethrough_words").add(sw.writethrough_words);
  reg.counter("swcache_lines").add(machine.swcacheLinesSimulated());
  reg.counter("swcache_line_events").add(machine.swcacheLineEvents());
  if (sw.word_accesses > 0) reg.gauge("swcache_hit_rate").set(sw.hitRate());

  // ---- controllers: per-mc counters + a spread histogram + load CV ----
  const std::vector<std::uint64_t>& traffic = machine.controllerTraffic();
  Histogram& mc_hist = reg.histogram("controller_traffic");
  double total = 0.0;
  for (std::size_t mc = 0; mc < traffic.size(); ++mc) {
    reg.counter("mc" + std::to_string(mc) + "_units").add(traffic[mc]);
    mc_hist.observe(static_cast<double>(traffic[mc]));
    total += static_cast<double>(traffic[mc]);
  }
  if (!traffic.empty() && total > 0.0) {
    const double mean = total / static_cast<double>(traffic.size());
    double var = 0.0;
    for (const std::uint64_t units : traffic) {
      const double d = static_cast<double>(units) - mean;
      var += d * d;
    }
    var /= static_cast<double>(traffic.size());
    reg.gauge("controller_load_cv").set(std::sqrt(var) / mean);
  }

  // ---- faults ---------------------------------------------------------
  const FaultStats& faults = machine.faultStats();
  reg.counter("faults_injected").add(faults.totalInjected());
  reg.counter("faults_recovered").add(faults.totalRecovered());
  reg.counter("fault_retries").add(faults.retries);
  reg.counter("fault_stall_ticks").add(faults.stall_ticks);
  reg.counter("fault_freezes").add(faults.freezes);
  reg.counter("faults_unrecovered").add(faults.unrecovered);
  for (std::size_t cls = 0; cls < kNumFaultClasses; ++cls) {
    if (faults.injected[cls] == 0 && faults.recovered[cls] == 0) continue;
    const char* name = faultClassName(static_cast<FaultClass>(cls));
    reg.counter(std::string("fault_") + name + "_injected").add(faults.injected[cls]);
    reg.counter(std::string("fault_") + name + "_recovered").add(faults.recovered[cls]);
  }

  // ---- race detection (sim domain: simulated-time determinism holds) --
  if (machine.drfEnabled()) {
    reg.counter("drf_races").add(machine.drfChecker().reports().size());
    reg.counter("drf_accesses_checked").add(machine.drfChecker().accessesChecked());
  }

  // ---- trace accounting (sim domain: counts of simulated events) ------
  if (machine.traceRecorder().enabled()) {
    reg.counter("trace_events_recorded").add(machine.traceRecorder().recordedEvents());
    reg.counter("trace_events_dropped").add(machine.traceRecorder().droppedEvents());
  }

  // ---- host domain: the ONLY wall-clock-derived numbers ---------------
  const double wall = engine.hostWallSeconds();
  reg.gauge("wall_seconds", MetricDomain::kHost).set(wall);
  reg.gauge("events_per_second", MetricDomain::kHost)
      .set(wall > 0.0 ? static_cast<double>(engine.eventsProcessed()) / wall : 0.0);

  MetricsSnapshot snap = reg.snapshot();
  snap.regions = machine.shmRegionProfiles();
  return snap;
}

}  // namespace hsm::sim::obs

// SCC platform parameters (paper Table 6.1 plus the published latency
// figures from Howard et al. [13] and Mattson et al. [19]).
//
// The cores are P54C Pentiums at 800 MHz; the 6x4 tile mesh runs at
// 1600 MHz; four DDR3 controllers at the mesh periphery run at 1066 MHz.
// Each tile holds two cores and 16 KB of MPB (8 KB per core).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/fault/fault.h"
#include "sim/time.h"

namespace hsm::sim {

struct SccConfig {
  // -- topology --
  std::uint32_t num_cores = 48;
  std::uint32_t mesh_cols = 6;
  std::uint32_t mesh_rows = 4;
  std::uint32_t cores_per_tile = 2;
  std::uint32_t num_mem_controllers = 4;

  // -- clocks (Table 6.1) --
  double core_mhz = 800.0;
  double mesh_mhz = 1600.0;
  double dram_mhz = 1066.0;

  // -- capacities --
  std::size_t mpb_bytes_per_core = 8 * 1024;    // 8 KB/core, 384 KB total
  std::size_t l1_bytes = 16 * 1024;             // P54C: 8K I + 8K D; model 16K D
  std::size_t l2_bytes = 256 * 1024;
  std::size_t cache_line_bytes = 32;
  std::size_t private_mem_bytes = 16 * 1024 * 1024;   // per-core private DRAM
  std::size_t shared_dram_bytes = 64 * 1024 * 1024;   // off-chip shared region

  // -- latency parameters (cycles in their own clock domain) --
  std::uint32_t l1_hit_core_cycles = 1;
  std::uint32_t l2_hit_core_cycles = 18;
  /// Non-pipelined P54C front-side overhead per cached-line DRAM fill.
  std::uint32_t dram_core_overhead_cycles = 80;
  /// Issue overhead of one uncached shared-memory transaction (the SCC's
  /// shared pages bypass the cache; the MIU pipelines these requests).
  std::uint32_t uncached_word_core_overhead_cycles = 12;
  /// Controller service per 32-byte line (row access + burst).
  std::uint32_t dram_line_service_cycles = 26;
  /// Controller service for a single uncached word (shared off-chip access):
  /// bank interleaving pipelines independent word transactions, but per byte
  /// this is still ~4x worse than bulk line streaming.
  std::uint32_t dram_word_service_cycles = 8;
  /// Controller service per *subsequent* line of a sequential bulk transfer
  /// (row-buffer hits) — the mechanism behind RCCE's fast bulk copies.
  std::uint32_t dram_burst_line_service_cycles = 8;
  /// Bytes moved per uncached shared-memory transaction (an 8-byte FSB beat).
  std::uint32_t shm_transaction_bytes = 8;
  /// Stripe granularity of the striped / first-touch controller placements
  /// (partition::ControllerPlacement): consecutive stripes of a planned
  /// region rotate across (striped) or are claimed by (first-touch) the
  /// memory controllers. Only consulted for regions registered with a
  /// non-default placement; unplanned regions always use the accessing
  /// core's own quadrant controller.
  std::size_t shm_controller_stripe_bytes = 64;
  /// Mesh hop latency (one direction, per hop).
  std::uint32_t mesh_hop_cycles = 4;
  /// Local MPB access (core to its own tile's buffer), round trip.
  std::uint32_t mpb_local_core_cycles = 15;
  /// MPB port service per 32-byte chunk (bulk moves pipeline well).
  std::uint32_t mpb_chunk_service_mesh_cycles = 8;
  /// Test-and-set register round-trip base cost.
  std::uint32_t tas_core_cycles = 20;
  /// Barrier bookkeeping per participant (flag writes through the MPB).
  std::uint32_t barrier_flag_core_cycles = 30;

  // -- software-managed release-consistency cache for shared memory --
  // (sim/swcache/swcache.h; docs/memory_model.md states the DRF contract.)
  /// Let cores cache shared off-chip data in fast private memory and
  /// reconcile at synchronization points (flush dirty lines at lock
  /// release / barrier arrival, self-invalidate clean lines at lock
  /// acquire / barrier departure). Off (default) preserves the uncached
  /// word-granular path bit for bit; on is a NEW timing model (functional
  /// results stay identical for data-race-free programs).
  bool shm_swcache = false;
  /// Per-core swcache capacity in cache lines (x cache_line_bytes bytes;
  /// the default 512 x 32 B = 16 KB mirrors the modeled private L1).
  std::uint32_t swcache_lines = 512;
  /// 0 = write-back write-allocate (dirty lines reconcile at release
  /// points); 1 = write-through no-allocate fallback (writes go straight to
  /// DRAM word-granularly, release points are free). Matches
  /// sim::SwCachePolicy's enumerator order.
  std::uint32_t swcache_policy = 0;
  /// Core cycles per swcache line *touch* that hits (the data sits in the
  /// core's fast private memory; a touch serves every word of the access
  /// that falls in that line).
  std::uint32_t swcache_hit_core_cycles = 2;
  /// Issue overhead of one swcache line transfer (fill or dirty write-back).
  /// Smaller than dram_core_overhead_cycles because the MIU pipelines the
  /// software-issued line requests like it pipelines uncached words.
  std::uint32_t swcache_line_core_overhead_cycles = 20;

  // -- simulation kernel knobs (simulator speed, not architecture) --
  /// Coalesce runs of uncached shared-memory word transactions into one
  /// engine event whenever the engine can prove no other event interleaves
  /// (see sim/engine.h's coalescing invariant). Never changes any Tick;
  /// exposed so equivalence tests and benchmarks can A/B the two paths.
  bool shm_coalescing = true;
  /// Coalesce runs of MPB chunk transactions (RCCE put/get loops) the same
  /// way, against the owning tile's port timeline. Never changes any Tick;
  /// mirrors shm_coalescing for the on-chip path.
  bool mpb_coalescing = true;
  /// Scope the coalescing safety horizon to the accessed serially-reusable
  /// resource — the memory controller for shared-memory words, the tile's
  /// MPB port for chunk transfers (Engine::nextEventTimeFor) — instead of
  /// the whole event queue, so runs keep coalescing while *other* resources
  /// have pending traffic. Tick-exact either way; exposed so benchmarks and
  /// equivalence tests can A/B per-resource against the legacy global
  /// horizon.
  bool per_resource_horizon = true;
  /// Refine blocked-task horizon fallbacks through registered sync objects:
  /// a task parked on a lock/barrier bounds a horizon by its potential
  /// waker chain's earliest execution instead of collapsing it to the
  /// global event queue (sim/engine.h's wake-chain rule). Tick-exact either
  /// way; off reproduces the blunt any-blocked-task-goes-global fallback.
  bool sync_aware_horizon = true;
  /// Words serviced per engine event inside a contention window (when other
  /// pending events forbid further provably-safe coalescing). 1 (default)
  /// reproduces the per-word interleaving exactly; larger values trade
  /// controller fairness accuracy for simulator speed and MAY change
  /// simulated Ticks under contention (measured error: see ROADMAP.md).
  std::uint32_t shm_fairness_quantum_words = 1;
  /// MPB counterpart of shm_fairness_quantum_words: chunks serviced per
  /// engine event inside a port contention window.
  std::uint32_t mpb_fairness_quantum_chunks = 1;
  /// Worker lanes for the conservative-PDES engine (docs/engine_parallel.md).
  /// 1 (default) runs the classic single-threaded event loop. N>1 partitions
  /// tasks into disjoint components (reach classes merged across shared
  /// resources and sync-object participant sets) and advances up to N
  /// components on worker threads concurrently. Ticks, final memory, and
  /// makespans are bit-identical to lanes=1; runs whose components cannot be
  /// proven disjoint fall back to the sequential loop automatically.
  std::uint32_t engine_lanes = 1;
  /// Round-robin contention batching: when every alive task that can reach a
  /// memory controller is running an identical word-run against it (the
  /// provably-interleaved round-robin pattern of shm_words_contended_8ue),
  /// fold all k interleaved per-word turns into one engine event per task by
  /// replaying the joint FCFS recurrence inline. Tick-exact by construction
  /// (the controller timeline sees the same arrival order); exposed so the
  /// equivalence tests and benchmarks can A/B it.
  bool shm_contention_batching = true;

  // -- deterministic observability (sim/obs/; docs/observability.md) --
  /// Record the simulated-time trace (operation spans, sync episodes, fault
  /// fires, hang reports). Off by default: every hook is gated on one cached
  /// bool — the FaultInjector discipline — so untraced runs pay one
  /// predictable branch per operation and stay bit-identical. An enabled
  /// trace contains only simulated Ticks and is byte-identical across
  /// engine_lanes=1/N and all coalescing modes (see docs/observability.md).
  bool trace_enabled = false;
  /// Max retained trace events per task (the bounded-memory ring-buffer
  /// mode). 0 = unbounded. Overflow keeps the newest events per task and is
  /// accounted in TraceRecorder::droppedEvents().
  std::size_t trace_ring_capacity = 0;
  /// Also record coalesced-batch boundary spans. These are inherently
  /// coalescing-mode-dependent (that is what they visualize), so they are
  /// opt-in and EXCLUDED from the byte-identity contract.
  bool trace_batches = false;
  /// Aggregate per-region shared-DRAM profiles (reads/writes/hits/misses/
  /// per-controller transactions for every named rcce::ShmArray region;
  /// MetricsSnapshot::regions). Off by default: registration no-ops and the
  /// access hooks stay one cached-bool branch. On, the plain cross-lane
  /// counters pin the engine to the sequential loop (engine_lanes=1) —
  /// Ticks are unchanged either way.
  bool region_metrics = false;
  /// Happens-before data-race detection over shared-memory accesses
  /// (sim/drf/drf.h; docs/race_detection.md). Off by default: every hook is
  /// one cached bool and the detector is untimed, so drf_check=false runs
  /// are bit-identical to the pre-detector machine and drf_check=true runs
  /// simulate the exact same Ticks. On, the checker's sequential shadow
  /// state pins the engine to one lane (engine_lanes=1) — reports are a
  /// deterministic function of the program, byte-identical across lane
  /// counts and coalescing modes.
  bool drf_check = false;
  /// Check words instead of whole cache lines on swcache-cached ranges —
  /// the FUTURE contract of the ROADMAP's word-granular swcache item. The
  /// default (false) enforces the current line-granular contract of
  /// docs/memory_model.md, under which two UEs touching different words of
  /// one cached line is a (false-sharing) race.
  bool drf_word_granular = false;

  // -- fault injection & robustness (sim/fault/fault.h; docs/fault_model.md) --
  /// Seed-driven fault schedule plus retry/backoff knobs. Disabled by
  /// default: every fault hook is gated on one cached bool, so zero-fault
  /// runs stay bit-identical to the pre-fault machine.
  FaultPlan fault{};
  /// Lock-acquire / barrier-arrival timeout in simulated ticks: a task
  /// blocked on a sync object longer than this raises a structured
  /// SyncTimeout from Engine::run. 0 (default) = no timeout.
  Tick sync_timeout_ticks = 0;
  /// Progress watchdog: more than this many consecutive engine events
  /// without simulated time advancing raises WatchdogError. 0 = off.
  std::uint64_t watchdog_events_per_tick = 0;

  // -- single-core multithread baseline (threadrt) --
  std::uint32_t context_switch_core_cycles = 4000;
  std::uint32_t scheduler_quantum_core_cycles = 800000;  // ~1 ms at 800 MHz

  // P54C-ish operation costs (core cycles).
  std::uint32_t int_alu_cycles = 1;
  std::uint32_t int_mul_cycles = 10;
  std::uint32_t int_div_cycles = 46;
  std::uint32_t fp_add_cycles = 3;
  std::uint32_t fp_mul_cycles = 3;
  std::uint32_t fp_div_cycles = 39;

  [[nodiscard]] Clock coreClock() const { return Clock(core_mhz); }
  [[nodiscard]] Clock meshClock() const { return Clock(mesh_mhz); }
  [[nodiscard]] Clock dramClock() const { return Clock(dram_mhz); }

  [[nodiscard]] std::uint32_t numTiles() const { return mesh_cols * mesh_rows; }
  [[nodiscard]] std::size_t mpbTotalBytes() const {
    return static_cast<std::size_t>(num_cores) * mpb_bytes_per_core;
  }

  /// Render the paper's Table 6.1 for a given execution-unit count.
  [[nodiscard]] std::string formatTable61(int rcce_units, int pthread_units) const;
};

/// Operation classes for CoreContext::computeOps.
enum class OpClass : std::uint8_t { IntAlu, IntMul, IntDiv, FpAdd, FpMul, FpDiv };

[[nodiscard]] std::uint64_t opCycles(const SccConfig& cfg, OpClass cls);

}  // namespace hsm::sim

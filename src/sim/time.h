// Simulated time for the SCC model.
//
// Ticks are integer picoseconds, which lets the three clock domains of
// Table 6.1 (800 MHz cores, 1600 MHz mesh, 1066 MHz DDR3) coexist without
// rounding drift.
#pragma once

#include <cstdint>

namespace hsm::sim {

using Tick = std::uint64_t;  ///< picoseconds

/// A clock domain: converts cycle counts to picoseconds.
class Clock {
 public:
  constexpr Clock() = default;
  constexpr explicit Clock(double mhz)
      : period_ps_(static_cast<Tick>(1e6 / mhz + 0.5)), mhz_(mhz) {}

  [[nodiscard]] constexpr Tick period() const { return period_ps_; }
  [[nodiscard]] constexpr double mhz() const { return mhz_; }
  [[nodiscard]] constexpr Tick cycles(std::uint64_t n) const { return n * period_ps_; }

 private:
  Tick period_ps_ = 1250;  // 800 MHz default
  double mhz_ = 800.0;
};

constexpr double ticksToMicroseconds(Tick t) { return static_cast<double>(t) / 1e6; }
constexpr double ticksToMilliseconds(Tick t) { return static_cast<double>(t) / 1e9; }

}  // namespace hsm::sim

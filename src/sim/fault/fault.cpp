#include "sim/fault/fault.h"

namespace hsm::sim {
namespace {

/// splitmix64 finalizer: the counter-based hash behind every draw. Chosen
/// for full avalanche at two multiplies — decisions at adjacent indices are
/// statistically independent without any sequential PRNG state.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr double kInv64 = 1.0 / 18446744073709551616.0;  // 2^-64

}  // namespace

const char* faultClassName(FaultClass cls) {
  switch (cls) {
    case FaultClass::kMpbTransfer: return "mpb_transfer";
    case FaultClass::kShmWrite: return "shm_write";
    case FaultClass::kSwcacheFlush: return "swcache_flush";
    case FaultClass::kMcStall: return "mc_stall";
    case FaultClass::kCoreFreeze: return "core_freeze";
  }
  return "?";
}

double FaultStats::recoveryRate() const {
  const auto c = [&](FaultClass f) { return static_cast<std::size_t>(f); };
  const std::uint64_t inj = injected[c(FaultClass::kMpbTransfer)] +
                            injected[c(FaultClass::kShmWrite)] +
                            injected[c(FaultClass::kSwcacheFlush)];
  const std::uint64_t rec = recovered[c(FaultClass::kMpbTransfer)] +
                            recovered[c(FaultClass::kShmWrite)] +
                            recovered[c(FaultClass::kSwcacheFlush)];
  return inj > 0 ? static_cast<double>(rec) / static_cast<double>(inj) : 1.0;
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  enabled_ = plan_.enabled;
  if (!enabled_) return;
  for (std::size_t i = 0; i < kNumFaultClasses; ++i) {
    armed_[i] = spec(static_cast<FaultClass>(i)).rate > 0.0;
  }
  if (plan_.permafrost_ue >= 0) {
    armed_[static_cast<std::size_t>(FaultClass::kCoreFreeze)] = true;
  }
  for (const bool a : armed_) any_armed_ = any_armed_ || a;
}

const FaultClassSpec& FaultInjector::spec(FaultClass cls) const {
  switch (cls) {
    case FaultClass::kMpbTransfer: return plan_.mpb_transfer;
    case FaultClass::kShmWrite: return plan_.shm_write;
    case FaultClass::kSwcacheFlush: return plan_.swcache_flush;
    case FaultClass::kMcStall: return plan_.mc_stall;
    case FaultClass::kCoreFreeze: break;
  }
  return plan_.core_freeze;
}

std::uint64_t FaultInjector::draw(FaultClass cls, std::uint64_t stream,
                                  std::uint64_t index) const {
  // Three chained rounds so (class, stream, index) each perturb the whole
  // state; no coordinate can alias another's schedule.
  std::uint64_t h = mix64(plan_.seed ^ (0xf417ULL + static_cast<std::uint64_t>(cls)));
  h = mix64(h ^ stream);
  return mix64(h ^ index);
}

bool FaultInjector::fires(FaultClass cls, std::uint64_t stream,
                          std::uint64_t index, Tick now) const {
  if (!armed_[static_cast<std::size_t>(cls)]) return false;
  const FaultClassSpec& s = spec(cls);
  if (s.rate <= 0.0 || !s.window.contains(now)) return false;
  return static_cast<double>(draw(cls, stream, index)) * kInv64 < s.rate;
}

void FaultInjector::corruptBytes(void* data, std::size_t bytes, FaultClass cls,
                                 std::uint64_t stream, std::uint64_t index) const {
  if (data == nullptr || bytes == 0) return;
  const std::uint64_t h = draw(cls, stream, index ^ 0xc0de'c0deULL);
  auto* p = static_cast<std::uint8_t*>(data);
  const std::size_t at = static_cast<std::size_t>(h % bytes);
  // Non-zero XOR mask: the corruption always changes the byte, so an exact
  // compare against the intended payload always detects it.
  const auto mask = static_cast<std::uint8_t>((h >> 32) | 0x01U);
  p[at] = static_cast<std::uint8_t>(p[at] ^ mask);
}

std::size_t FaultInjector::pick(std::size_t count, FaultClass cls,
                                std::uint64_t stream, std::uint64_t index) const {
  if (count == 0) return 0;
  return static_cast<std::size_t>(draw(cls, stream, index ^ 0x9'1ceULL) % count);
}

Tick FaultInjector::stallTicks(std::uint32_t resource, std::uint64_t txn_index,
                               Tick arrival, Tick base_service) const {
  if (!fires(FaultClass::kMcStall, resource, txn_index, arrival)) return 0;
  return base_service * plan_.mc_stall_service_multiple;
}

Tick FaultInjector::freezeTicks(int ue, std::uint64_t op_index, Tick now) const {
  if (plan_.permafrost_ue == ue && op_index >= plan_.permafrost_after_ops) {
    return kFreezeForever;
  }
  if (!fires(FaultClass::kCoreFreeze, static_cast<std::uint64_t>(ue), op_index, now)) {
    return 0;
  }
  return plan_.core_freeze_ticks;
}

Tick FaultInjector::backoff(std::uint32_t attempt) const {
  // Exponential in simulated ticks, capped at 20 doublings (already hours of
  // simulated time; guards shift overflow, not a realistic schedule).
  const std::uint32_t shift = attempt < 20 ? attempt : 20;
  return plan_.retry_backoff_base_ticks << shift;
}

}  // namespace hsm::sim

// Deterministic fault injection for the simulated machine.
//
// The simulator so far assumed perfect hardware: MPB transfers always land,
// controllers never stall, DRAM never flips a bit, cores never wedge. Real
// SCC-class parts are not so polite, and the runtime layers the paper builds
// (RCCE-style transfers, software-managed coherence) are exactly where
// software must supply the guarantees hardware omits. This module provides
// the *fault side* of that story; the recovery side (checksum-verify +
// bounded retry with exponential backoff, sync timeouts, the engine's
// deadlock watchdog) lives in machine.cpp / engine.cpp.
//
// Determinism contract (docs/fault_model.md):
//   * Every fault decision is a pure function of (seed, fault class, stream,
//     index) through a splitmix64 counter-based hash — no mutable PRNG
//     state, so decisions are independent of the order in which call sites
//     draw them. Streams are stable logical ids (the UE for core-side
//     faults, the resource id for controller stalls) and indices are
//     per-stream operation counters, so the schedule survives event
//     coalescing: coalescing changes how many engine events an operation
//     costs, never the operation sequence per stream.
//   * Same plan (seed + rates + windows) => identical fault schedule =>
//     bit-identical simulated Ticks across runs and coalescing modes.
//   * `enabled = false` leaves every hot path untouched (one branch on a
//     cached bool) — zero-fault runs are bit-identical to a build without
//     this module. `enabled = true` with all rates zero draws no faults and
//     adds no simulated time either (verification is modeled as untimed
//     redundancy the hardware DMA performs anyway).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace hsm::sim {

/// Fault classes the plan can arm independently.
enum class FaultClass : std::uint8_t {
  kMpbTransfer,   ///< transient MPB chunk-transfer corruption (drop/flip)
  kShmWrite,      ///< transient shared-DRAM word flip on an uncached write
  kSwcacheFlush,  ///< transient DRAM corruption of a just-flushed dirty line
  kMcStall,       ///< memory-controller stall / service latency spike
  kCoreFreeze,    ///< core wedges for N ticks before an operation
};
inline constexpr std::size_t kNumFaultClasses = 5;

[[nodiscard]] const char* faultClassName(FaultClass cls);

/// Half-open simulated-time window [begin, end) a fault class is armed in.
/// The default (0, kNever-ish max) arms it for the whole run.
struct FaultWindow {
  Tick begin = 0;
  Tick end = static_cast<Tick>(-1);
  [[nodiscard]] bool contains(Tick t) const { return t >= begin && t < end; }
};

/// Per-class injection spec: `rate` is the probability (0..1) that one
/// draw of this class fires inside its window.
struct FaultClassSpec {
  double rate = 0.0;
  FaultWindow window{};
};

/// The seed-driven fault schedule plus the recovery-layer knobs. Embedded in
/// SccConfig; everything is plain data so configs stay copyable/comparable.
struct FaultPlan {
  bool enabled = false;     ///< master gate; false = zero-cost passthrough
  std::uint64_t seed = 0x5cc0ffee;

  FaultClassSpec mpb_transfer{};   ///< per MPB read/write attempt
  FaultClassSpec shm_write{};      ///< per uncached shm/bulk write attempt
  FaultClassSpec swcache_flush{};  ///< per release-point flush attempt
  FaultClassSpec mc_stall{};       ///< per controller transaction
  FaultClassSpec core_freeze{};    ///< per timed core operation

  /// Extra controller service charged when a kMcStall fires, as a multiple
  /// of the transaction's base service time.
  std::uint32_t mc_stall_service_multiple = 8;
  /// Simulated duration of a transient kCoreFreeze.
  Tick core_freeze_ticks = 2'000'000;  // 2 us
  /// UE whose first timed operation at/after `permafrost_after_ops` freezes
  /// PERMANENTLY (the task never resumes — exercises the deadlock
  /// watchdog). -1 = no permanent freeze.
  int permafrost_ue = -1;
  std::uint64_t permafrost_after_ops = 0;

  // -- recovery layer --
  /// Verify-retry attempts after the initial try for MPB/DRAM transfers.
  std::uint32_t max_retries = 4;
  /// Backoff before retry k (0-based) is `retry_backoff_base_ticks << k`.
  Tick retry_backoff_base_ticks = 500'000;  // 0.5 us
};

/// Recovery-layer counters, aggregated machine-wide.
struct FaultStats {
  std::uint64_t injected[kNumFaultClasses] = {};   ///< faults that fired
  std::uint64_t recovered[kNumFaultClasses] = {};  ///< detected + repaired
  std::uint64_t retries = 0;        ///< transfer re-executions performed
  std::uint64_t stall_ticks = 0;    ///< extra controller service injected
  std::uint64_t freezes = 0;        ///< transient core freezes served
  std::uint64_t unrecovered = 0;    ///< retry budget exhausted (data at risk)

  [[nodiscard]] std::uint64_t totalInjected() const {
    std::uint64_t n = 0;
    for (const std::uint64_t c : injected) n += c;
    return n;
  }
  [[nodiscard]] std::uint64_t totalRecovered() const {
    std::uint64_t n = 0;
    for (const std::uint64_t c : recovered) n += c;
    return n;
  }
  /// Fraction of recoverable injected faults (everything but stalls, which
  /// are absorbed by timing, and freezes, which are served not repaired)
  /// that the retry layer repaired. 1.0 when nothing was injected.
  [[nodiscard]] double recoveryRate() const;
};

/// Stateless draw engine over a FaultPlan. All methods are const apart from
/// the stats sink; decisions depend only on (seed, class, stream, index).
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan);

  [[nodiscard]] bool enabled() const { return enabled_; }
  /// Any class armed with a non-zero rate or a permanent freeze configured
  /// (the per-op fast gate for hot paths).
  [[nodiscard]] bool anyArmed() const { return any_armed_; }
  [[nodiscard]] bool armed(FaultClass cls) const {
    return armed_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Does draw (`cls`, `stream`, `index`) fire at simulated time `now`?
  [[nodiscard]] bool fires(FaultClass cls, std::uint64_t stream,
                           std::uint64_t index, Tick now) const;

  /// Deterministic corruption of `bytes` at `data`: XORs a non-zero mask
  /// into one byte picked from the same draw coordinates, so an injected
  /// corruption is always detectable by exact compare. No-op on empty
  /// buffers.
  void corruptBytes(void* data, std::size_t bytes, FaultClass cls,
                    std::uint64_t stream, std::uint64_t index) const;
  /// Pick an element index in [0, count) from the draw coordinates.
  [[nodiscard]] std::size_t pick(std::size_t count, FaultClass cls,
                                 std::uint64_t stream, std::uint64_t index) const;

  /// Extra controller service for transaction `txn_index` of `resource`
  /// arriving at `arrival` (0 when the stall class does not fire). Keyed by
  /// the per-resource transaction order, which is identical across
  /// coalescing modes.
  [[nodiscard]] Tick stallTicks(std::uint32_t resource, std::uint64_t txn_index,
                                Tick arrival, Tick base_service) const;

  /// Freeze duration for timed operation `op_index` of `ue` at `now`:
  /// 0 = none, kFreezeForever = permanent (never resumes), else a transient
  /// stall of that many ticks.
  static constexpr Tick kFreezeForever = static_cast<Tick>(-1);
  [[nodiscard]] Tick freezeTicks(int ue, std::uint64_t op_index, Tick now) const;

  [[nodiscard]] std::uint32_t maxRetries() const { return plan_.max_retries; }
  /// Simulated backoff before 0-based retry `attempt`.
  [[nodiscard]] Tick backoff(std::uint32_t attempt) const;

  // -- stats sink (mutable by the recovery layer) --
  [[nodiscard]] FaultStats& stats() { return stats_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  void noteInjected(FaultClass cls) {
    ++stats_.injected[static_cast<std::size_t>(cls)];
  }
  void noteRecovered(FaultClass cls) {
    ++stats_.recovered[static_cast<std::size_t>(cls)];
  }

 private:
  [[nodiscard]] std::uint64_t draw(FaultClass cls, std::uint64_t stream,
                                   std::uint64_t index) const;
  [[nodiscard]] const FaultClassSpec& spec(FaultClass cls) const;

  FaultPlan plan_{};
  bool enabled_ = false;
  bool any_armed_ = false;
  bool armed_[kNumFaultClasses] = {};
  FaultStats stats_{};
};

}  // namespace hsm::sim

// SccMachine — the hybrid-shared-memory manycore platform model.
//
// Functional *and* timing: every access moves real bytes between buffers
// (so benchmark outputs are verified) and advances simulated time through
// the P54C core clock, the private cache hierarchy, the mesh, the four
// memory controllers (queued — this is where 8-cores-per-MC contention
// appears, paper §6), and the per-tile MPB ports.
//
// Address spaces:
//   * private  — per-core, cacheable, backed by per-core byte arrays;
//   * shared off-chip (DRAM) — hardware-uncacheable, one byte array;
//     word-at-a-time accesses each pay the full core-mesh-controller round
//     trip, OR (config.shm_swcache) the per-core software-managed
//     release-consistency cache serves line-granular accesses from fast
//     private memory and reconciles at sync points (sim/swcache/swcache.h,
//     docs/memory_model.md);
//   * MPB — per-core 8 KB slices of on-chip SRAM, accessed in 32-byte
//     chunks at core-local latencies plus mesh hops to the owning tile.
#pragma once

#include <atomic>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "partition/execution_plan.h"
#include "sim/cache.h"
#include "sim/drf/drf.h"
#include "sim/engine.h"
#include "sim/fault/fault.h"
#include "sim/noc.h"
#include "sim/obs/metrics.h"
#include "sim/obs/trace.h"
#include "sim/scc_config.h"
#include "sim/swcache/swcache.h"

namespace hsm::sim {

class SccMachine;

/// Barrier across the participating UEs (RCCE_barrier's model): arrivals
/// post flags through the MPB; the last arrival releases everyone. All
/// releases land at one Tick, so wake order follows the engine's
/// (time, task_id) contract — each waiter's task id is recorded at arrival
/// and attached to its wake event.
class SyncBarrier {
 public:
  SyncBarrier(Engine& engine, std::size_t participants, Tick arrive_cost,
              Tick release_cost)
      : engine_(engine), participants_(participants), arrive_cost_(arrive_cost),
        release_cost_(release_cost), sync_(engine.registerSyncObject()) {}

  struct Awaiter {
    SyncBarrier& barrier;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const { barrier.onArrive(h); }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter arrive() { return Awaiter{*this}; }
  [[nodiscard]] std::size_t participants() const { return participants_; }
  [[nodiscard]] std::uint64_t episodes() const { return episodes_; }

  /// Declare the engine task ids of the participating tasks. Enables the
  /// sync-aware wake-chain horizon: waiters are then bounded by the
  /// not-yet-arrived participants (their only potential wakers) instead of
  /// forcing the global-horizon fallback. Without this call the barrier's
  /// wakers stay unknown and the engine remains conservative. Declared ONCE
  /// as the engine's episodic waker set: arrivals drop out in O(1) and each
  /// release restores full membership in O(1) (Engine::resetSyncEpisode) —
  /// no per-episode O(participants) rebuild.
  void setParticipantTasks(std::vector<std::size_t> tasks);

  /// Attach the machine's race detector (nullptr = detached, the default):
  /// each release episode then joins the arrivals' vector clocks and
  /// redistributes — arrivals happen-before every departure.
  void setDrf(drf::DrfChecker* drf) { drf_ = drf; }

 private:
  friend struct Awaiter;
  struct Waiter {
    std::coroutine_handle<> handle;
    std::size_t task;  ///< engine task id the wake event is filed under
    Tick arrived;      ///< arrival Tick (start of the traced wait span)
  };
  void onArrive(std::coroutine_handle<> h);

  Engine& engine_;
  std::size_t participants_;
  Tick arrive_cost_;
  Tick release_cost_;
  std::uint32_t sync_;
  std::size_t arrived_ = 0;
  Tick latest_arrival_ = 0;
  std::vector<Waiter> waiting_;
  std::vector<std::size_t> participant_tasks_;  ///< empty: unknown
  std::uint64_t episodes_ = 0;
  drf::DrfChecker* drf_ = nullptr;  ///< attached when SccConfig::drf_check
};

/// A test-and-set register lock (one per core on the SCC). FIFO grant order
/// keeps the simulation deterministic.
class TasLock {
 public:
  TasLock(Engine& engine, Tick roundtrip)
      : engine_(engine), roundtrip_(roundtrip), sync_(engine.registerSyncObject()) {}

  struct Awaiter {
    TasLock& lock;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const { lock.onAcquire(h); }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter acquire() { return Awaiter{*this}; }
  /// Release; if a waiter is queued, ownership transfers to it after the
  /// register round trip.
  void release();
  [[nodiscard]] bool held() const { return held_; }
  [[nodiscard]] std::uint64_t contentionEvents() const { return contention_; }

  /// Attach the machine's race detector (nullptr = detached, the default):
  /// grants then replay acquire edges and release() records release edges
  /// against this lock's sync-object clock.
  void setDrf(drf::DrfChecker* drf) { drf_ = drf; }

 private:
  friend struct Awaiter;
  struct Waiter {
    std::coroutine_handle<> handle;
    std::size_t task;  ///< engine task id the grant event is filed under
    Tick arrived;      ///< request Tick (start of the traced wait span)
  };
  void onAcquire(std::coroutine_handle<> h);

  Engine& engine_;
  Tick roundtrip_;
  std::uint32_t sync_;
  bool held_ = false;
  std::size_t holder_ = Engine::kNoTask;  ///< sole potential waker while held
  std::deque<Waiter> queue_;  // FIFO, O(1) pop_front
  std::uint64_t contention_ = 0;
  drf::DrfChecker* drf_ = nullptr;  ///< attached when SccConfig::drf_check
};

/// Per-UE view of the machine handed to workload coroutines.
class CoreContext {
 public:
  CoreContext(SccMachine& machine, int ue, int num_ues, int core)
      : machine_(machine), ue_(ue), num_ues_(num_ues), core_(core) {}

  [[nodiscard]] int ue() const { return ue_; }
  [[nodiscard]] int numUes() const { return num_ues_; }
  /// Physical core hosting this UE (UEs are spread across the quadrants).
  [[nodiscard]] int core() const { return core_; }
  [[nodiscard]] SccMachine& machine() { return machine_; }
  [[nodiscard]] Tick now() const;

  // -- computation --
  [[nodiscard]] ResumeAt compute(std::uint64_t core_cycles);
  [[nodiscard]] ResumeAt computeOps(std::uint64_t count, OpClass cls);

  // -- private cacheable memory --
  [[nodiscard]] ResumeAt privRead(std::uint64_t addr, void* out, std::size_t bytes);
  [[nodiscard]] ResumeAt privWrite(std::uint64_t addr, const void* src, std::size_t bytes);
  /// Timing-only streaming access over [addr, addr+bytes), no data movement
  /// (for kernels that keep their live values in registers).
  [[nodiscard]] ResumeAt privTouch(std::uint64_t addr, std::size_t bytes, bool write);

  // -- shared off-chip DRAM --
  // Default (hardware-uncached) routing is word-granular: every word is an
  // independent blocking transaction through the core's memory controller
  // (the uncached-access semantics of the SCC's shared pages). Runs of words
  // that are provably uncontended are coalesced into a single engine event
  // (config.shm_coalescing); contention windows fall back to per-word events
  // so concurrent cores interleave fairly. Either way the simulated Ticks
  // are identical — see sim/engine.h.
  //
  // Routing is PER REGION: accesses whose offset falls in a range registered
  // cacheable (SccMachine::setShmCacheability — typically by an
  // rcce::ShmArray carrying an ExecutionPlan placement) go through the
  // per-core software-managed release-consistency cache instead: hits are
  // served from fast private memory, misses fill whole lines (batched like
  // the word path), and the sync operations below reconcile (flush at
  // release, self-invalidate at acquire). config.shm_swcache is only the
  // DEFAULT for offsets outside every registered range. Functional results
  // are identical for data-race-free programs; timing is a different
  // (cached) model. Accesses must not straddle a region boundary (regions
  // are whole translated variables, so they never do).
  [[nodiscard]] SubTask shmRead(std::uint64_t offset, void* out, std::size_t bytes);
  [[nodiscard]] SubTask shmWrite(std::uint64_t offset, const void* src, std::size_t bytes);
  /// Awaitable of the bulk transfers below: with the swcache disabled the
  /// completion Tick was computed eagerly and this suspends straight to it
  /// (no coroutine frame — the pre-swcache ResumeAt behavior, bit-identical
  /// and allocation-free); with it enabled it runs the coherence-fence
  /// coroutine.
  class [[nodiscard]] BulkAwaiter {
   public:
    BulkAwaiter(Engine& engine, Tick when) : engine_(engine), when_(when) {}
    BulkAwaiter(Engine& engine, SubTask fenced)
        : engine_(engine), fenced_(std::move(fenced)) {}
    [[nodiscard]] bool await_ready() const noexcept;
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}

   private:
    Engine& engine_;
    Tick when_ = 0;
    SubTask fenced_;  ///< engaged only when the swcache is enabled
  };
  /// Sequential bulk transfer (RCCE-style block copy): pays one transaction
  /// setup and then streams lines at row-buffer-hit service rates. Bypasses
  /// the swcache but stays coherent with this core's own cached lines
  /// (overlapping dirty lines are written back first; a bulk write also
  /// invalidates overlapping cached copies).
  [[nodiscard]] BulkAwaiter shmReadBulk(std::uint64_t offset, void* out,
                                        std::size_t bytes);
  [[nodiscard]] BulkAwaiter shmWriteBulk(std::uint64_t offset, const void* src,
                                         std::size_t bytes);

  // -- MPB (on-chip shared SRAM) --
  // Chunk-granular: every cache-line-sized chunk is an independent blocking
  // transaction through the owning tile's MPB port (the core moves MPB data
  // line by line, as RCCE put/get do). Runs of provably-uncontended chunks
  // are coalesced into a single engine event (config.mpb_coalescing),
  // mirroring the shared-memory word path; Ticks are identical either way.
  [[nodiscard]] SubTask mpbRead(int owner_ue, std::uint64_t offset, void* out,
                                std::size_t bytes);
  [[nodiscard]] SubTask mpbWrite(int owner_ue, std::uint64_t offset, const void* src,
                                 std::size_t bytes);

  // -- synchronization --
  // These are the swcache protocol's reconciliation points: with
  // config.shm_swcache on, barrier() and lockRelease() flush this core's
  // dirty lines BEFORE the release takes effect, and barrier() and
  // lockAcquire() self-invalidate clean lines once the acquire completes.
  // The swcache discipline requires synchronizing through these wrappers —
  // touching machine().barrier()/lock() directly skips reconciliation.
  //
  // The returned SyncAwaiter dispatches: with the swcache disabled it
  // forwards straight to the underlying SyncBarrier/TasLock operation — no
  // coroutine frame, no extra events, no extra Ticks, so the uncached modes
  // stay bit-identical AND the sync hot path stays allocation-free; with it
  // enabled it runs the reconciliation coroutine. Either way it MUST be
  // co_awaited (a discarded lockRelease releases nothing).
  class [[nodiscard]] SyncAwaiter {
   public:
    enum class Op : std::uint8_t { kBarrier, kAcquire, kRelease };
    SyncAwaiter(CoreContext& ctx, Op op, int lock_id, SubTask reconcile)
        : ctx_(ctx), op_(op), lock_id_(lock_id), reconcile_(std::move(reconcile)) {}
    [[nodiscard]] bool await_ready();
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}

   private:
    CoreContext& ctx_;
    Op op_;
    int lock_id_;
    SubTask reconcile_;  ///< engaged only when the swcache is enabled
  };
  [[nodiscard]] SyncAwaiter barrier();
  [[nodiscard]] SyncAwaiter lockAcquire(int lock_id);
  [[nodiscard]] SyncAwaiter lockRelease(int lock_id);

 private:
  /// Awaiter of an injected PERMANENT core freeze: suspends and never
  /// schedules a resume. The task stays alive with no pending event and no
  /// registered sync object — the engine's deadlock detector reports it as
  /// wedged when the heap drains.
  struct FreezeForever {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> /*h*/) const noexcept {}
    void await_resume() const noexcept {}
  };
  /// Fault hook at the head of every timed shm/MPB operation: serves an
  /// injected core freeze (transient = a simulated stall; permanent = never
  /// resumes). Only awaited when the injector is armed.
  SubTask faultPreOp();
  /// Shared-memory access through the software-managed cache: functional
  /// phase first (line store <-> backing), then the timed phase charges hit
  /// touches, batched line transfers, and written-through words.
  SubTask swcacheRw(std::uint64_t offset, void* out, const void* src,
                    std::size_t bytes, bool write);
  /// Charge `lines` batched swcache line transfers (fills/write-backs).
  SubTask swcacheLines(std::size_t lines);
  /// Release point: functionally flush dirty lines, then charge the
  /// write-back transfers.
  SubTask swcacheRelease();
  /// Coherence-fenced bulk transfer behind BulkAwaiter (swcache enabled
  /// only): sync overlapping cached lines, then the bypassing burst copy.
  SubTask bulkFenced(std::uint64_t offset, void* out, const void* src,
                     std::size_t bytes, bool write);
  // Reconciliation coroutines behind SyncAwaiter (swcache enabled only).
  SubTask barrierReconcile();
  SubTask lockAcquireReconcile(int lock_id);
  SubTask lockReleaseReconcile(int lock_id);

  SccMachine& machine_;
  int ue_;
  int num_ues_;
  int core_;
  // Per-UE fault-draw indices. Keyed by the UE (a stable logical id) and
  // bumped once per *operation attempt*, independent of how many engine
  // events the operation costs — so the fault schedule is identical across
  // coalescing modes. Only advanced while the injector is armed; zero-fault
  // runs never touch them.
  std::uint64_t mpb_xfer_seq_ = 0;   ///< MPB read/write transfers issued
  std::uint64_t shm_write_seq_ = 0;  ///< uncached/bulk shm writes issued
  std::uint64_t flush_seq_ = 0;      ///< release-point flushes issued
  std::uint64_t timed_op_seq_ = 0;   ///< timed ops (core-freeze draw points)
};

/// One launch request: everything SccMachine::launch needs, gathered into a
/// single value with a fluent builder instead of the accreted overload set
/// (plan overload, scope overload, separate barrier sizing) it replaces.
///
///   machine.launch(LaunchSpec(8, program));                    // legacy
///   machine.launch(LaunchSpec(8, program).withPlan(&plan));    // plan-driven
///   machine.launch(LaunchSpec(8, program).withScope(lambda));  // hand scope
///
/// Precedence: an explicit scope overrides the plan-derived owner sets; a
/// plan with no explicit scope declares its mpbScopeOwners as the scope
/// (including "no MPB traffic at all" when the plan has no MPB regions);
/// neither means the unrestricted legacy launch. The plan pointer is
/// borrowed — it must outlive the run.
struct LaunchSpec {
  using CoreProgram = std::function<SimTask(CoreContext&)>;
  /// Optional MPB communication scope: for a UE, the owner UEs whose MPB
  /// slices it will ever access (its put/get targets *and* its own slice if
  /// it reads that back). Declaring a scope shrinks the task's engine reach
  /// set to the corresponding tile ports, so traffic on unrelated tiles'
  /// ports cannot truncate its coalesced chunk runs. The scope is a
  /// promise; accesses outside it are still serviced but counted in
  /// mpbScopeViolations() (they void the port-isolation guarantee).
  using MpbScope = std::function<std::vector<int>(int ue, int num_ues)>;

  /// Partition of the UEs into independent synchronization groups:
  /// groups(ue, num_ues) names the group `ue` belongs to (any stable int;
  /// ids are densified in first-appearance order). Each group gets its OWN
  /// SyncBarrier sized to the group, CoreContext::barrier() routes to it,
  /// and the machine-wide barrier is created but bound to an empty
  /// participant set (no task ever arrives at it). Declaring groups is the
  /// lane-partition contract for barriers: the engine then merges reach
  /// classes per group instead of across the whole launch, so groups whose
  /// resources are disjoint can advance on parallel lanes
  /// (docs/engine_parallel.md). Like MpbScope this is a promise — a program
  /// that synchronizes across groups through the machine-wide barrier
  /// anyway deadlocks exactly as it would with mismatched participants.
  using SyncGroups = std::function<int(int ue, int num_ues)>;

  LaunchSpec(int ues, CoreProgram prog)
      : num_ues(ues), program(std::move(prog)), barrier_participants(ues) {}

  LaunchSpec& withPlan(const partition::ExecutionPlan* p) {
    plan = p;
    return *this;
  }
  LaunchSpec& withScope(MpbScope s) {
    scope = std::move(s);
    return *this;
  }
  /// Size the machine barrier for `n` participants instead of num_ues (for
  /// programs where only a subset of the launched UEs ever arrives).
  LaunchSpec& withBarrierParticipants(int n) {
    barrier_participants = n;
    return *this;
  }
  LaunchSpec& withSyncGroups(SyncGroups g) {
    sync_groups = std::move(g);
    return *this;
  }

  int num_ues;
  CoreProgram program;
  const partition::ExecutionPlan* plan = nullptr;
  MpbScope scope;
  int barrier_participants;
  SyncGroups sync_groups;
};

class SccMachine {
 public:
  explicit SccMachine(SccConfig config = {});

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const Engine& engine() const { return engine_; }
  [[nodiscard]] const SccConfig& config() const { return config_; }
  [[nodiscard]] const MeshTopology& mesh() const { return mesh_; }

  // -- shared memory management (host-side setup) --
  /// Bump-allocate from the off-chip shared region (8-byte aligned).
  std::uint64_t shmalloc(std::size_t bytes);
  /// Bump-allocate with explicit alignment (power of two, >= 8) — e.g. one
  /// cache line for regions the swcache will move whole lines of.
  std::uint64_t shmalloc(std::size_t bytes, std::size_t align);
  /// Bump-allocate from `ue`'s MPB slice; throws std::bad_alloc if the 8 KB
  /// slice is exhausted.
  std::uint64_t mpbMalloc(int ue, std::size_t bytes);
  /// Host-side direct access to shared DRAM (test setup/verification).
  [[nodiscard]] std::uint8_t* shmData(std::uint64_t offset) { return &shared_dram_[offset]; }
  [[nodiscard]] std::uint8_t* mpbData(int ue, std::uint64_t offset);
  /// WARNING: grows the private backing store on demand — growing
  /// invalidates previously returned pointers. Call reservePrivate first
  /// when taking multiple pointers.
  [[nodiscard]] std::uint8_t* privData(int core, std::uint64_t addr);
  /// Pre-size a core's private memory so privData pointers stay stable.
  void reservePrivate(int core, std::size_t bytes);

  // -- program execution --
  using CoreProgram = LaunchSpec::CoreProgram;
  using MpbScope = LaunchSpec::MpbScope;
  /// Spawn `spec.num_ues` copies of `spec.program`, one per core, sharing
  /// one barrier. The spec's scope (explicit, or derived from its plan's
  /// per-UE MPB owner sets) shrinks each task's engine reach set to its
  /// controller plus the promised tile ports; without either, the reach set
  /// is the controller plus every MPB port (sound, but port horizons then
  /// see all tasks). A plan with any cached region activates the swcache
  /// instances. Region cacheability/controller placement itself is
  /// registered by the plan-carrying rcce::ShmArray allocations (or
  /// setShmCacheability / setShmControllerPlacement directly) — the machine
  /// cannot know region offsets.
  void launch(const LaunchSpec& spec);
  /// Create the machine barrier for `participants` without launching
  /// (used by runtimes that spawn their own tasks, e.g. threadrt).
  void setupBarrier(int participants);
  /// Run to completion; returns the makespan.
  Tick run();

  [[nodiscard]] SyncBarrier& barrier() { return *barrier_; }
  /// Barrier `ue` synchronizes through: its group's barrier when the launch
  /// declared LaunchSpec::SyncGroups, else the machine-wide one. This is
  /// what CoreContext::barrier() awaits.
  [[nodiscard]] SyncBarrier& barrierFor(int ue) {
    if (!group_barriers_.empty()) {
      const auto i = static_cast<std::size_t>(ue);
      if (i < ue_group_.size()) return *group_barriers_[ue_group_[i]];
    }
    return *barrier_;
  }
  [[nodiscard]] TasLock& lock(int id);

  // -- statistics --
  [[nodiscard]] const ResourceTimeline& memController(std::uint32_t mc) const {
    return mc_[mc];
  }
  [[nodiscard]] const ResourceTimeline& mpbPort(std::uint32_t tile) const {
    return mpb_port_[tile];
  }
  [[nodiscard]] const Cache& l1(int core) const { return l1_[static_cast<std::size_t>(core)]; }
  [[nodiscard]] const Cache& l2(int core) const { return l2_[static_cast<std::size_t>(core)]; }
  /// Uncached word transactions simulated through the word-granular path.
  [[nodiscard]] std::uint64_t shmWordsSimulated() const {
    return shm_words_.load(std::memory_order_relaxed);
  }
  /// Engine events those words cost (== shmWordsSimulated() with coalescing
  /// off; the gap is the number of events coalescing eliminated).
  [[nodiscard]] std::uint64_t shmWordEvents() const {
    return shm_word_events_.load(std::memory_order_relaxed);
  }
  /// MPB chunk transactions simulated through the chunk-granular path.
  [[nodiscard]] std::uint64_t mpbChunksSimulated() const {
    return mpb_chunks_.load(std::memory_order_relaxed);
  }
  /// Engine events those chunks cost (== mpbChunksSimulated() with
  /// mpb_coalescing off).
  [[nodiscard]] std::uint64_t mpbChunkEvents() const {
    return mpb_chunk_events_.load(std::memory_order_relaxed);
  }
  /// MPB accesses that fell outside the task's declared MpbScope. Any
  /// non-zero count voids the port-isolation timing guarantee of that run.
  [[nodiscard]] std::uint64_t mpbScopeViolations() const {
    return mpb_scope_violations_.load(std::memory_order_relaxed);
  }

  // -- per-controller shared-DRAM traffic --
  /// Shared-DRAM transactions each memory controller served: uncached
  /// words, swcache line transfers, and bulk-copy lines (one count per
  /// transaction, whatever its byte size). Pure accounting — recording them
  /// never moves a Tick. Their sum equals shmWordsSimulated() +
  /// swcacheLinesSimulated() + shmBulkLinesSimulated() by construction; the
  /// spread across controllers is what controller placement redistributes.
  [[nodiscard]] const std::vector<std::uint64_t>& controllerTraffic() const {
    return mc_traffic_;
  }
  /// Lines moved by sequential bulk transfers (shmReadBulk/shmWriteBulk).
  [[nodiscard]] std::uint64_t shmBulkLinesSimulated() const {
    return shm_bulk_lines_.load(std::memory_order_relaxed);
  }

  // -- per-region controller placement (ExecutionPlan policy) --
  /// Declare the address→controller mapping of shared-DRAM range
  /// [begin, end): kStriped interleaves stripe-granular
  /// (config.shm_controller_stripe_bytes) across all controllers, kPinned
  /// puts the whole range behind `pinned_controller`, kFirstTouch lets the
  /// first accessor's quadrant controller claim each stripe, and
  /// kOwnerCompute is the legacy requester-local mapping — also the default
  /// for every offset outside the map, so unplanned regions keep today's
  /// routing bit for bit. Later registrations win on overlap. Cached
  /// (swcache) regions keep requester-local line fills regardless of any
  /// registration: the cache is private per core, so its DRAM traffic
  /// follows the core (docs/execution_plan.md states the composition rule).
  void setShmControllerPlacement(std::uint64_t begin, std::uint64_t end,
                                 partition::ControllerPlacement placement,
                                 std::uint32_t pinned_controller = 0);
  /// Controller serving an access to `offset` from `core` (claims the
  /// stripe for first-touch regions as a side effect).
  [[nodiscard]] std::uint32_t controllerForShmAccess(int core, std::uint64_t offset);

  // -- software-managed shared-memory cache --
  /// Default routing for shared-DRAM offsets outside every registered
  /// region (config.shm_swcache; the pre-ExecutionPlan global knob).
  [[nodiscard]] bool swcacheEnabled() const { return config_.shm_swcache; }
  /// Any core-side cache instances exist (config default on, or at least
  /// one region registered cacheable): sync points then reconcile and bulk
  /// transfers fence. False keeps every sync/bulk path frame-free and
  /// Tick-bit-identical to the uncached-only machine.
  [[nodiscard]] bool swcacheActive() const { return !swcache_.empty(); }
  /// Declare the swcache routing of shared-DRAM range [begin, end) — the
  /// per-region cacheability policy of an ExecutionPlan. Later registrations
  /// win on overlap; offsets outside every range use config.shm_swcache.
  /// Cached ranges are line-granular (the swcache moves whole lines) and
  /// are rounded OUTWARD to line boundaries; allocate cached regions
  /// line-aligned (shmalloc with align = cache_line_bytes, as the
  /// plan-carrying rcce::ShmArray does) so the rounding never reaches into
  /// a neighboring region.
  void setShmCacheability(std::uint64_t begin, std::uint64_t end, bool cached);
  /// Routing of the region containing `offset`.
  [[nodiscard]] bool shmCached(std::uint64_t offset) const {
    for (auto it = shm_cache_map_.rbegin(); it != shm_cache_map_.rend(); ++it) {
      if (offset >= it->begin && offset < it->end) return it->cached;
    }
    return config_.shm_swcache;
  }
  /// Per-core hit/miss/flush counters (zero-valued stats when disabled).
  [[nodiscard]] const SwCacheStats& swcacheStats(int core) const;
  /// Chip-wide aggregate of the per-core counters.
  [[nodiscard]] SwCacheStats swcacheTotals() const;
  /// Swcache line transfers (fills + dirty write-backs) simulated.
  [[nodiscard]] std::uint64_t swcacheLinesSimulated() const {
    return swcache_lines_sim_.load(std::memory_order_relaxed);
  }
  /// Engine events those line transfers cost (the gap to
  /// swcacheLinesSimulated() is what fill/flush batching eliminated).
  [[nodiscard]] std::uint64_t swcacheLineEvents() const {
    return swcache_line_events_.load(std::memory_order_relaxed);
  }
  /// Dirty / resident line counts of `core`'s swcache (0 when disabled) —
  /// the accounting-invariant hooks the fault-reconciliation tests use.
  [[nodiscard]] std::size_t swcacheDirtyLines(int core) const;
  [[nodiscard]] std::size_t swcacheResidentLines(int core) const;

  // -- fault injection & recovery (sim/fault/fault.h; docs/fault_model.md) --
  /// The machine's draw engine over config().fault. Mutable access so the
  /// recovery layer (CoreContext retry loops) can record stats.
  [[nodiscard]] FaultInjector& faultInjector() { return fault_; }
  [[nodiscard]] const FaultStats& faultStats() const { return fault_.stats(); }
  /// Any fault class armed (the hot-path gate: false keeps every operation
  /// on the exact pre-fault instruction path).
  [[nodiscard]] bool faultsActive() const { return fault_.anyArmed(); }

  // -- deterministic observability (sim/obs/; docs/observability.md) --
  /// The machine's trace recorder. Dormant (enabled() == false, every hook a
  /// single cached-bool check) unless config.trace_enabled wired it into the
  /// engine at construction.
  [[nodiscard]] obs::TraceRecorder& traceRecorder() { return trace_; }
  [[nodiscard]] const obs::TraceRecorder& traceRecorder() const { return trace_; }
  /// Deterministic export context: the engine's lane-count-independent
  /// component partition, per-task completion Ticks, and the makespan.
  [[nodiscard]] obs::TraceExportMeta traceExportMeta() const;
  /// Chrome trace-event JSON (Perfetto-loadable): one track per UE task,
  /// per lane component, and per memory controller.
  void writeTrace(std::ostream& out) const;
  /// Compact binary ring-buffer dump (schema in docs/observability.md).
  void writeTraceBinary(std::ostream& out) const;

  // -- happens-before race detection (sim/drf/; docs/race_detection.md) --
  /// Detector active (config.drf_check). The inline gates below are the
  /// cached-bool discipline: false keeps every access path on the exact
  /// pre-drf instruction sequence, and the hooks are untimed either way so
  /// drf_check=true simulates the exact same Ticks it merely observes.
  [[nodiscard]] bool drfEnabled() const { return drf_active_; }
  [[nodiscard]] const drf::DrfChecker& drfChecker() const { return drf_; }
  [[nodiscard]] drf::DrfChecker& drfChecker() { return drf_; }
  /// Exempt [begin, end) of shared DRAM from race checking — for deliberate
  /// benign races a workload documents (idempotent last-writer-wins stores
  /// of canonical values, e.g. the KV store's replicated slots).
  void setShmDrfExempt(std::uint64_t begin, std::uint64_t end) {
    if (drf_active_) drf_.addShmExemptRange(begin, end);
  }
  /// Access hooks (CoreContext / threadrt op entry). Called ONCE per logical
  /// operation at its initiation Tick — before any retry loop or
  /// coalescing-dependent resumption — so the checked access stream is
  /// bit-identical across coalescing modes and fault retries.
  void noteDrfShm(std::uint64_t offset, std::size_t bytes, bool write) {
    if (drf_active_) drfShmImpl(offset, bytes, write);
  }
  void noteDrfMpb(int owner_ue, std::uint64_t offset, std::size_t bytes, bool write) {
    if (drf_active_) drfMpbImpl(owner_ue, offset, bytes, write);
  }
  void noteDrfPriv(std::uint64_t addr, std::size_t bytes, bool write) {
    if (drf_active_) drfPrivImpl(addr, bytes, write);
  }

  /// Name shared-DRAM range [begin, end) for per-region profiling (the
  /// plan-carrying rcce::ShmArray registers every named region). First
  /// registration flips the region_profiling_ gate; runs with no named
  /// regions keep the exact pre-profiling instruction path. Later
  /// registrations win on overlap (same rule as the cacheability map).
  void registerShmRegion(std::string name, std::uint64_t begin, std::uint64_t end);
  /// Per-region read/write/hit/miss/controller profiles, registration order
  /// (MetricsSnapshot::regions; consumed by the ROADMAP's plan-re-derivation
  /// item).
  [[nodiscard]] const std::vector<obs::RegionProfile>& shmRegionProfiles() const {
    return shm_regions_;
  }
  [[nodiscard]] bool regionProfilingActive() const { return region_profiling_; }
  /// Region-accounting hooks (CoreContext op paths). Inline gate first: a
  /// run with no registered region pays one predictable branch per call.
  void noteShmWords(int core, std::uint64_t offset, std::size_t bytes, bool write) {
    if (region_profiling_) noteShmWordsImpl(core, offset, bytes, write);
  }
  void noteShmSwcache(int core, std::uint64_t offset, bool write, std::uint64_t hits,
                      std::uint64_t line_txns) {
    if (region_profiling_) noteShmSwcacheImpl(core, offset, write, hits, line_txns);
  }
  /// Controller that served (or would serve) an access to `offset` from
  /// `core`. Trace/profile use only — call AFTER the access so first-touch
  /// claims are already made and the lookup is a pure function.
  [[nodiscard]] std::uint32_t shmControllerOf(int core, std::uint64_t offset) {
    return ctrl_placement_active_ ? controllerForShmAccess(core, offset)
                                  : core_mc_[static_cast<std::size_t>(core)];
  }
  /// `core`'s own quadrant controller (swcache fills / flush write-backs).
  [[nodiscard]] std::uint32_t controllerOfCore(int core) const {
    return core_mc_[static_cast<std::size_t>(core)];
  }
  /// Engine resource id of the MPB port serving `owner_ue`'s slice.
  [[nodiscard]] std::uint32_t mpbPortIdOf(int owner_ue) const {
    return mesh_.portResourceId(mesh_.tileOfCore(coreOfUe(owner_ue)));
  }

  // -- swcache functional primitives (used by CoreContext) --
  /// Functional walk of one access through `core`'s swcache (data movement +
  /// tag transitions); returns the counts the timed phase must charge.
  SwCache::AccessPlan swcacheAccess(int core, std::uint64_t offset, std::size_t bytes,
                                    bool write, void* data_out, const void* data_in);
  /// Functional release-point flush; returns line write-backs to charge.
  std::size_t swcacheFlush(int core);
  /// Fault-checked release-point flush: flush dirty lines, then (per the
  /// armed kSwcacheFlush schedule at draw index `seq`) corrupt one
  /// just-flushed DRAM line, detect it by comparing the flushed set against
  /// DRAM, and re-store it. Verification is restricted to the lines this
  /// core itself just flushed — its own unreleased writes, race-free under
  /// DRF — so repair can never clobber another core's newer data. Returns
  /// total line transfers to charge (write-backs + repair re-stores).
  std::size_t swcacheFlushChecked(int core, std::uint64_t seq);
  /// Acquire point: self-invalidate `core`'s clean lines (local tag
  /// operation — no simulated time).
  void swcacheAcquire(int core);
  /// Coherence fence before a bypassing bulk access (see CoreContext).
  std::size_t swcacheSyncRange(int core, std::uint64_t offset, std::size_t bytes,
                               bool drop);
  [[nodiscard]] Tick swcacheHitTicks(std::size_t touches) const {
    return static_cast<Tick>(touches) * swcache_hit_ticks_;
  }

  // -- timing/functional primitives (used by CoreContext and threadrt) --
  Tick privAccessCompletion(int core, Tick start, std::uint64_t addr, std::size_t bytes,
                            bool write, void* data_out, const void* data_in);
  Tick shmAccessCompletion(int core, Tick start, std::uint64_t offset, std::size_t bytes,
                           bool write, void* data_out, const void* data_in);
  /// Service up to `max_words` uncached word transactions starting at
  /// `start`, coalescing as many as the coalescing horizon proves safe (at
  /// least one; exactly one when contended with the default fairness
  /// quantum). The horizon is scoped to this core's memory controller
  /// (Engine::nextEventTimeFor) so pending traffic on *other* resources
  /// does not break the run; config.per_resource_horizon=false falls back
  /// to the global horizon. Returns the completion Tick of the serviced
  /// words and stores how many were serviced in `*words_done`. The
  /// arithmetic is the exact per-word recurrence, so Ticks match the
  /// per-event path bit for bit.
  Tick shmWordsCompletion(int core, Tick start, std::size_t max_words,
                          std::size_t* words_done);
  /// Offset-aware twin of shmWordsCompletion for planned regions: routes
  /// the run to the controller `controllerForShmAccess(core, offset)`
  /// chooses and caps it at the current stripe boundary (striped /
  /// first-touch regions change controllers mid-region). With no
  /// non-default placement registered it forwards to shmWordsCompletion —
  /// the exact legacy path, so pre-existing runs stay bit-identical.
  Tick shmWordsAtCompletion(int core, Tick start, std::uint64_t offset,
                            std::size_t max_words, std::size_t* words_done);
  /// MPB twin of shmWordsCompletion: service up to `max_chunks` cache-line
  /// chunks of `ue`'s transfer against owner_ue's tile port, coalescing as
  /// many as the port's horizon proves safe. Same exact recurrence, same
  /// bit-identity guarantee (config.mpb_coalescing gates batching).
  Tick mpbChunksCompletion(int core, int ue, int owner_ue, Tick start,
                           std::size_t max_chunks, std::size_t* chunks_done);
  /// Swcache twin of shmWordsCompletion: service up to `max_lines` swcache
  /// line transfers (fills or dirty write-backs) against the core's memory
  /// controller, coalescing as many as the controller's horizon proves safe
  /// (config.shm_coalescing / shm_fairness_quantum_words gate batching, the
  /// same knobs as the word path they replace).
  Tick swcacheLinesCompletion(int core, Tick start, std::size_t max_lines,
                              std::size_t* lines_done);
  Tick shmBulkCompletion(int core, Tick start, std::uint64_t offset, std::size_t bytes,
                         bool write, void* data_out, const void* data_in);

 private:
  // (The private member block proper continues further down; these helpers
  // sit here to stay next to the completion functions they power.)
  /// Word-run service against an explicit controller: the shared tail of
  /// shmWordsCompletion (requester-local) and shmWordsAtCompletion
  /// (placement-routed). Identical recurrence either way.
  Tick shmWordsOnController(std::uint32_t mc_id, Tick hop_one_way, Tick start,
                            std::size_t max_words, std::size_t* words_done);

  // -- round-robin contention batching (config.shm_contention_batching) --
  // A contended controller serves k word-runs interleaved, one word per
  // engine event each. When the machine can prove the contention pattern is
  // CLOSED — every alive task whose reach includes the controller is mid
  // word-run against it (Engine::aliveTasksReaching) — the joint FCFS
  // recurrence over all k runs is replayed inline in engine order
  // ((completion, schedule seq), the event heap's own order), so the
  // controller timeline sees the exact per-event acquire sequence: same
  // arrivals, same requests() indices (fault stall draws included), same
  // completions. The replay commits only a PREFIX of the joint schedule —
  // it stops the moment any member's run completes, because a finished
  // member may immediately issue fresh traffic (a write run right after a
  // read run) that must interleave with the words beyond that point. It
  // also declines (leaving the per-event path to run, which is always
  // exact) when two members' post-replay resume instants land on the same
  // tick: those resumes are re-scheduled events, and their heap seq order
  // could otherwise disagree with the order the per-event execution would
  // have produced. Within those guards the batch is Tick-exact by
  // construction; only the event count drops (a handful of events per
  // member per window instead of one per word). The closure proof also
  // leans on the machine's task model: every UE task spawns in launch(),
  // before run(), so no task that could reach the controller appears after
  // the count is taken. Data ops still execute in each task's program
  // order but no longer interleave across tasks word by word, so
  // functional results are preserved for data-race-free programs (the same
  // contract the swcache states in docs/memory_model.md).
  /// One task's in-flight word-run against a controller.
  struct WordRun {
    Tick t = 0;        ///< completion of its last serviced word
    Tick hop = 0;      ///< its one-way mesh latency to this controller
    std::size_t remaining = 0;  ///< words left in the run
    std::uint64_t seq = 0;      ///< schedule order of its pending event
    bool solved = false;        ///< a joint replay precomputed words for it
    std::size_t done = 0;       ///< words the replay serviced (when solved)
    Tick final_t = 0;  ///< completion of the last replayed word (when solved)
  };
  /// Consume the calling task's precomputed joint-solve result, if any:
  /// stores the full remaining word count and returns the run's completion.
  bool consumeSolvedRun(std::uint32_t mc_id, std::size_t* words_done,
                        Tick* completion);
  /// Attempt the joint solve for the calling task's fresh run (`max_words`
  /// from `start`): fires only when every other alive task reaching the
  /// controller has an unsolved in-flight run registered. On success the
  /// whole run is serviced (*words_done = max_words), peers' completions are
  /// stashed for their next resume, and the completion Tick is returned.
  bool solveContendedRuns(std::uint32_t mc_id, Tick hop_one_way, Tick start,
                          std::size_t max_words, std::size_t* words_done,
                          Tick* completion);
  /// The shared engine of both coalesced paths: run up to `max_txns`
  /// back-to-back transactions of one serially-reusable `resource` —
  /// request issued `issue_overhead + hop_one_way` after the previous
  /// completion, serviced for `service`, completion seen `hop_one_way`
  /// later — batching while the resource's coalescing horizon proves no
  /// other coroutine can interleave (at least one transaction; at most
  /// `quantum` once contended). The recurrence is exactly the per-event
  /// execution's, so Ticks are bit-identical whether a run is one event or
  /// many.
  Tick coalescedCompletion(std::uint32_t resource, ResourceTimeline& timeline,
                           bool coalescing, std::size_t quantum, Tick issue_overhead,
                           Tick hop_one_way, Tick service, Tick start,
                           std::size_t max_txns, std::size_t* done);

 private:
  SccConfig config_;
  Engine engine_;
  MeshTopology mesh_;
  Clock core_clock_;
  Clock mesh_clock_;
  Clock dram_clock_;

  // Precomputed per-core NoC timing (topology is fixed at construction):
  // assigned controller and the one-way mesh latency to reach it.
  std::vector<std::uint32_t> core_mc_;
  std::vector<Tick> core_mc_hop_ticks_;
  /// One-way mesh latency from every core to EVERY controller
  /// (core * num_mem_controllers + mc) — consulted only by placement-routed
  /// accesses; entry [core][core_mc_[core]] equals core_mc_hop_ticks_[core].
  std::vector<Tick> core_all_mc_hop_ticks_;
  Tick uncached_overhead_ticks_ = 0;  ///< per-word issue overhead
  Tick word_service_ticks_ = 0;       ///< controller service per word
  Tick mpb_overhead_ticks_ = 0;       ///< per-chunk core-side issue overhead
  Tick chunk_service_ticks_ = 0;      ///< port service per chunk
  Tick swcache_hit_ticks_ = 0;        ///< per hitting line touch
  Tick swcache_line_overhead_ticks_ = 0;  ///< per line-transfer issue
  Tick line_service_ticks_ = 0;       ///< controller service per 32 B line

  // Machine-wide transaction tallies. Atomic (relaxed) because parallel
  // engine lanes bump them concurrently; they are pure counters — no Tick
  // ever depends on them, so relaxed increments keep the totals exact
  // without ordering anything. mc_traffic_ stays plain: each controller
  // belongs to exactly one lane's component, so its slot has one writer.
  std::atomic<std::uint64_t> shm_words_{0};
  std::atomic<std::uint64_t> shm_word_events_{0};
  std::atomic<std::uint64_t> mpb_chunks_{0};
  std::atomic<std::uint64_t> mpb_chunk_events_{0};
  std::atomic<std::uint64_t> mpb_scope_violations_{0};
  std::atomic<std::uint64_t> swcache_lines_sim_{0};
  std::atomic<std::uint64_t> swcache_line_events_{0};
  std::atomic<std::uint64_t> shm_bulk_lines_{0};
  std::vector<std::uint64_t> mc_traffic_;  ///< shared-DRAM txns per controller

  std::vector<std::uint8_t> shared_dram_;
  std::vector<SwCache> swcache_;                     // per core; empty if disabled
  std::vector<std::uint8_t> mpb_;                    // num_cores x slice
  std::vector<std::vector<std::uint8_t>> private_mem_;  // grown on demand
  std::vector<Cache> l1_;
  std::vector<Cache> l2_;
  std::vector<ResourceTimeline> mc_;
  std::vector<ResourceTimeline> mpb_port_;           // per tile
  std::uint64_t shm_brk_ = 0;
  std::vector<std::uint64_t> mpb_brk_;               // per core slice
  std::unique_ptr<SyncBarrier> barrier_;
  /// Per-group barriers of a LaunchSpec::SyncGroups launch (empty
  /// otherwise); ue_group_ maps each UE to its densified group index.
  std::vector<std::unique_ptr<SyncBarrier>> group_barriers_;
  std::vector<std::size_t> ue_group_;
  std::vector<std::unique_ptr<TasLock>> locks_;
  std::vector<std::unique_ptr<CoreContext>> contexts_;
  std::vector<std::uint32_t> ue_to_core_;  ///< set at launch; identity otherwise
  /// Per UE: sorted port resource ids of its declared MpbScope. Only
  /// consulted when a scope was declared at launch; a declared-but-empty set
  /// means "no MPB traffic promised", so ANY access violates it.
  std::vector<std::vector<std::uint32_t>> ue_port_reach_;
  bool mpb_scope_declared_ = false;
  /// Per-region shared-DRAM cacheability overrides (ExecutionPlan policy);
  /// scanned newest-first so later registrations win.
  struct ShmCacheRange {
    std::uint64_t begin;
    std::uint64_t end;
    bool cached;
  };
  std::vector<ShmCacheRange> shm_cache_map_;
  /// Per-region controller placements; scanned newest-first like the
  /// cacheability map. `ctrl_placement_active_` is the hot-path gate: false
  /// (no non-default placement registered) keeps every shared-memory access
  /// on the exact legacy requester-local instruction path.
  struct ShmCtrlRange {
    std::uint64_t begin;
    std::uint64_t end;
    partition::ControllerPlacement placement;
    std::uint32_t pinned;
  };
  std::vector<ShmCtrlRange> shm_ctrl_map_;
  bool ctrl_placement_active_ = false;
  /// First-touch stripe claims: global stripe index → controller.
  std::unordered_map<std::uint64_t, std::uint32_t> first_touch_claims_;

  /// Per controller: tasks mid word-run against it (round-robin contention
  /// batching bookkeeping; a handful of entries at most). Touched only by
  /// the lane owning the controller's component, so lane-safe without locks.
  std::vector<std::unordered_map<std::size_t, WordRun>> shm_word_runs_;
  /// Per controller: monotone stamp mirroring the engine's event-schedule
  /// order. A WordRun recorded later has a later pending event, so ties at
  /// equal completion Ticks resolve exactly as the event heap would. Starts
  /// at 1 so the joint replay can hand the currently-executing task stamp 0:
  /// its first acquire happens inside the live event, ahead of every pending
  /// event that shares its tick. Stamps are only ever compared within one
  /// controller's run set, so a per-controller counter preserves the exact
  /// ordering while staying lane-exclusive under parallel lanes (one shared
  /// counter would be a cross-lane data race AND schedule-dependent).
  std::vector<std::uint64_t> shm_run_seq_;
  /// Cached hot-path gate: config_.shm_contention_batching AND
  /// shm_coalescing (the off mode stays the untouched per-word reference).
  bool shm_batching_ = false;

  FaultInjector fault_;  ///< built from config_.fault at construction
  /// Scratch for swcacheFlushChecked's flushed-line addresses (reused to
  /// keep the flush path allocation-free in steady state).
  std::vector<std::uint64_t> flushed_addrs_scratch_;

  /// Trace recorder (sim/obs/trace.h). Owned here, wired into the engine
  /// only when config_.trace_enabled — disabled runs never even pay the
  /// recorder's enabled() check on engine hooks (null pointer short-circuit).
  obs::TraceRecorder trace_;
  /// Named shared-DRAM regions being profiled; newest-first lookup like the
  /// cacheability map. region_profiling_ is the hot-path gate AND a lane
  /// pin: the profile counters are plain (cross-region aggregation), so a
  /// profiled run uses the sequential loop (Ticks are lane-invariant).
  std::vector<obs::RegionProfile> shm_regions_;
  bool region_profiling_ = false;
  [[nodiscard]] obs::RegionProfile* regionAt(std::uint64_t offset);
  void noteShmWordsImpl(int core, std::uint64_t offset, std::size_t bytes, bool write);
  void noteShmSwcacheImpl(int core, std::uint64_t offset, bool write,
                          std::uint64_t hits, std::uint64_t line_txns);
  void noteShmBulkImpl(std::uint64_t offset, std::size_t lines, bool write,
                       std::uint32_t mc);

  /// Race detector (sim/drf/drf.h). drf_active_ caches config_.drf_check —
  /// the hot-path gate of the noteDrf* hooks above — and also pins run() to
  /// one engine lane (the detector's shadow state is sequential).
  drf::DrfChecker drf_;
  bool drf_active_ = false;
  void drfShmImpl(std::uint64_t offset, std::size_t bytes, bool write);
  void drfMpbImpl(int owner_ue, std::uint64_t offset, std::size_t bytes, bool write);
  void drfPrivImpl(std::uint64_t addr, std::size_t bytes, bool write);
  /// Shared tail: emit a kRace trace instant per freshly appended report.
  void drfEmit(std::size_t fresh);

  /// Instantiate the per-core swcaches if not already present (config
  /// default on, or first cacheable region registered).
  void ensureSwcache();

 public:
  [[nodiscard]] std::uint32_t coreOfUe(int ue) const {
    const auto i = static_cast<std::size_t>(ue);
    return i < ue_to_core_.size() ? ue_to_core_[i] : static_cast<std::uint32_t>(ue);
  }
};

}  // namespace hsm::sim

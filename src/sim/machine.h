// SccMachine — the hybrid-shared-memory manycore platform model.
//
// Functional *and* timing: every access moves real bytes between buffers
// (so benchmark outputs are verified) and advances simulated time through
// the P54C core clock, the private cache hierarchy, the mesh, the four
// memory controllers (queued — this is where 8-cores-per-MC contention
// appears, paper §6), and the per-tile MPB ports.
//
// Address spaces:
//   * private  — per-core, cacheable, backed by per-core byte arrays;
//   * shared off-chip (DRAM) — uncacheable, one byte array, word-at-a-time
//     accesses each paying the full core-mesh-controller round trip;
//   * MPB — per-core 8 KB slices of on-chip SRAM, accessed in 32-byte
//     chunks at core-local latencies plus mesh hops to the owning tile.
#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "sim/cache.h"
#include "sim/engine.h"
#include "sim/noc.h"
#include "sim/scc_config.h"

namespace hsm::sim {

class SccMachine;

/// Barrier across the participating UEs (RCCE_barrier's model): arrivals
/// post flags through the MPB; the last arrival releases everyone.
class SyncBarrier {
 public:
  SyncBarrier(Engine& engine, std::size_t participants, Tick arrive_cost,
              Tick release_cost)
      : engine_(engine), participants_(participants), arrive_cost_(arrive_cost),
        release_cost_(release_cost) {}

  struct Awaiter {
    SyncBarrier& barrier;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const { barrier.onArrive(h); }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter arrive() { return Awaiter{*this}; }
  [[nodiscard]] std::size_t participants() const { return participants_; }
  [[nodiscard]] std::uint64_t episodes() const { return episodes_; }

 private:
  friend struct Awaiter;
  void onArrive(std::coroutine_handle<> h);

  Engine& engine_;
  std::size_t participants_;
  Tick arrive_cost_;
  Tick release_cost_;
  std::size_t arrived_ = 0;
  Tick latest_arrival_ = 0;
  std::vector<std::coroutine_handle<>> waiting_;
  std::uint64_t episodes_ = 0;
};

/// A test-and-set register lock (one per core on the SCC). FIFO grant order
/// keeps the simulation deterministic.
class TasLock {
 public:
  TasLock(Engine& engine, Tick roundtrip) : engine_(engine), roundtrip_(roundtrip) {}

  struct Awaiter {
    TasLock& lock;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const { lock.onAcquire(h); }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter acquire() { return Awaiter{*this}; }
  /// Release; if a waiter is queued, ownership transfers to it after the
  /// register round trip.
  void release();
  [[nodiscard]] bool held() const { return held_; }
  [[nodiscard]] std::uint64_t contentionEvents() const { return contention_; }

 private:
  friend struct Awaiter;
  void onAcquire(std::coroutine_handle<> h);

  Engine& engine_;
  Tick roundtrip_;
  bool held_ = false;
  std::vector<std::coroutine_handle<>> queue_;  // FIFO via erase-front
  std::uint64_t contention_ = 0;
};

/// Per-UE view of the machine handed to workload coroutines.
class CoreContext {
 public:
  CoreContext(SccMachine& machine, int ue, int num_ues, int core)
      : machine_(machine), ue_(ue), num_ues_(num_ues), core_(core) {}

  [[nodiscard]] int ue() const { return ue_; }
  [[nodiscard]] int numUes() const { return num_ues_; }
  /// Physical core hosting this UE (UEs are spread across the quadrants).
  [[nodiscard]] int core() const { return core_; }
  [[nodiscard]] SccMachine& machine() { return machine_; }
  [[nodiscard]] Tick now() const;

  // -- computation --
  [[nodiscard]] ResumeAt compute(std::uint64_t core_cycles);
  [[nodiscard]] ResumeAt computeOps(std::uint64_t count, OpClass cls);

  // -- private cacheable memory --
  [[nodiscard]] ResumeAt privRead(std::uint64_t addr, void* out, std::size_t bytes);
  [[nodiscard]] ResumeAt privWrite(std::uint64_t addr, const void* src, std::size_t bytes);
  /// Timing-only streaming access over [addr, addr+bytes), no data movement
  /// (for kernels that keep their live values in registers).
  [[nodiscard]] ResumeAt privTouch(std::uint64_t addr, std::size_t bytes, bool write);

  // -- shared off-chip DRAM (uncached) --
  // Word-granular: each transaction is a separate simulation event, so
  // concurrent cores interleave fairly at the memory controllers (the
  // blocking-uncached-access semantics of the SCC's shared pages).
  [[nodiscard]] SubTask shmRead(std::uint64_t offset, void* out, std::size_t bytes);
  [[nodiscard]] SubTask shmWrite(std::uint64_t offset, const void* src, std::size_t bytes);
  /// Sequential bulk transfer (RCCE-style block copy): pays one transaction
  /// setup and then streams lines at row-buffer-hit service rates.
  [[nodiscard]] ResumeAt shmReadBulk(std::uint64_t offset, void* out, std::size_t bytes);
  [[nodiscard]] ResumeAt shmWriteBulk(std::uint64_t offset, const void* src,
                                      std::size_t bytes);

  // -- MPB (on-chip shared SRAM) --
  [[nodiscard]] ResumeAt mpbRead(int owner_ue, std::uint64_t offset, void* out,
                                 std::size_t bytes);
  [[nodiscard]] ResumeAt mpbWrite(int owner_ue, std::uint64_t offset, const void* src,
                                  std::size_t bytes);

  // -- synchronization --
  [[nodiscard]] SyncBarrier::Awaiter barrier();
  [[nodiscard]] TasLock::Awaiter lockAcquire(int lock_id);
  void lockRelease(int lock_id);

 private:
  SccMachine& machine_;
  int ue_;
  int num_ues_;
  int core_;
};

class SccMachine {
 public:
  explicit SccMachine(SccConfig config = {});

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const SccConfig& config() const { return config_; }
  [[nodiscard]] const MeshTopology& mesh() const { return mesh_; }

  // -- shared memory management (host-side setup) --
  /// Bump-allocate from the off-chip shared region (8-byte aligned).
  std::uint64_t shmalloc(std::size_t bytes);
  /// Bump-allocate from `ue`'s MPB slice; throws std::bad_alloc if the 8 KB
  /// slice is exhausted.
  std::uint64_t mpbMalloc(int ue, std::size_t bytes);
  /// Host-side direct access to shared DRAM (test setup/verification).
  [[nodiscard]] std::uint8_t* shmData(std::uint64_t offset) { return &shared_dram_[offset]; }
  [[nodiscard]] std::uint8_t* mpbData(int ue, std::uint64_t offset);
  /// WARNING: grows the private backing store on demand — growing
  /// invalidates previously returned pointers. Call reservePrivate first
  /// when taking multiple pointers.
  [[nodiscard]] std::uint8_t* privData(int core, std::uint64_t addr);
  /// Pre-size a core's private memory so privData pointers stay stable.
  void reservePrivate(int core, std::size_t bytes);

  // -- program execution --
  using CoreProgram = std::function<SimTask(CoreContext&)>;
  /// Spawn `num_ues` copies of `program`, one per core, sharing one barrier.
  void launch(int num_ues, const CoreProgram& program);
  /// Create the machine barrier for `participants` without launching
  /// (used by runtimes that spawn their own tasks, e.g. threadrt).
  void setupBarrier(int participants);
  /// Run to completion; returns the makespan.
  Tick run();

  [[nodiscard]] SyncBarrier& barrier() { return *barrier_; }
  [[nodiscard]] TasLock& lock(int id);

  // -- statistics --
  [[nodiscard]] const ResourceTimeline& memController(std::uint32_t mc) const {
    return mc_[mc];
  }
  [[nodiscard]] const Cache& l1(int core) const { return l1_[static_cast<std::size_t>(core)]; }
  [[nodiscard]] const Cache& l2(int core) const { return l2_[static_cast<std::size_t>(core)]; }

  // -- timing/functional primitives (used by CoreContext and threadrt) --
  Tick privAccessCompletion(int core, Tick start, std::uint64_t addr, std::size_t bytes,
                            bool write, void* data_out, const void* data_in);
  Tick shmAccessCompletion(int core, Tick start, std::uint64_t offset, std::size_t bytes,
                           bool write, void* data_out, const void* data_in);
  /// One uncached transaction of up to shm_transaction_bytes.
  Tick shmWordCompletion(int core, Tick start);
  Tick shmBulkCompletion(int core, Tick start, std::uint64_t offset, std::size_t bytes,
                         bool write, void* data_out, const void* data_in);
  Tick mpbAccessCompletion(int core, int owner_ue, Tick start, std::uint64_t offset,
                           std::size_t bytes, bool write, void* data_out,
                           const void* data_in);

 private:
  SccConfig config_;
  Engine engine_;
  MeshTopology mesh_;
  Clock core_clock_;
  Clock mesh_clock_;
  Clock dram_clock_;

  std::vector<std::uint8_t> shared_dram_;
  std::vector<std::uint8_t> mpb_;                    // num_cores x slice
  std::vector<std::vector<std::uint8_t>> private_mem_;  // grown on demand
  std::vector<Cache> l1_;
  std::vector<Cache> l2_;
  std::vector<ResourceTimeline> mc_;
  std::vector<ResourceTimeline> mpb_port_;           // per tile
  std::uint64_t shm_brk_ = 0;
  std::vector<std::uint64_t> mpb_brk_;               // per core slice
  std::unique_ptr<SyncBarrier> barrier_;
  std::vector<std::unique_ptr<TasLock>> locks_;
  std::vector<std::unique_ptr<CoreContext>> contexts_;
  std::vector<std::uint32_t> ue_to_core_;  ///< set at launch; identity otherwise

 public:
  [[nodiscard]] std::uint32_t coreOfUe(int ue) const {
    const auto i = static_cast<std::size_t>(ue);
    return i < ue_to_core_.size() ? ue_to_core_[i] : static_cast<std::uint32_t>(ue);
  }
};

}  // namespace hsm::sim

// The SCC's 6x4 tile mesh: XY dimension-ordered routing, four memory
// controllers on the periphery, and tile geometry helpers.
//
// Topology is immutable after construction, so every per-core quantity a
// hot memory access needs — tile coordinates, assigned controller, hop
// count to that controller — and the UE→core placement map are built once
// in the constructor and served as O(1) table lookups thereafter.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/scc_config.h"

namespace hsm::sim {

struct TileCoord {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

class MeshTopology {
 public:
  explicit MeshTopology(const SccConfig& config);

  [[nodiscard]] std::uint32_t tileOfCore(std::uint32_t core) const {
    return core / config_.cores_per_tile;
  }
  [[nodiscard]] TileCoord coordOfTile(std::uint32_t tile) const {
    return tile_coord_[tile];
  }
  [[nodiscard]] TileCoord coordOfCore(std::uint32_t core) const {
    return coordOfTile(tileOfCore(core));
  }

  /// Manhattan distance in hops between two tiles (XY routing).
  [[nodiscard]] std::uint32_t hops(std::uint32_t tile_a, std::uint32_t tile_b) const {
    const TileCoord a = tile_coord_[tile_a];
    const TileCoord b = tile_coord_[tile_b];
    const std::uint32_t dx = a.x > b.x ? a.x - b.x : b.x - a.x;
    const std::uint32_t dy = a.y > b.y ? a.y - b.y : b.y - a.y;
    return dx + dy;
  }
  [[nodiscard]] std::uint32_t hopsBetweenCores(std::uint32_t core_a,
                                               std::uint32_t core_b) const {
    return hops(tileOfCore(core_a), tileOfCore(core_b));
  }

  /// The SCC's four memory controllers sit at the mesh periphery next to
  /// tiles (0,0), (5,0), (0,2) and (5,2); each serves its quadrant.
  [[nodiscard]] std::uint32_t controllerOfCore(std::uint32_t core) const {
    return core_controller_[core];
  }
  [[nodiscard]] std::uint32_t numControllers() const {
    return config_.num_mem_controllers;
  }
  /// Controller serving logical UE `ue` — the identity a task registers as
  /// its coalescing-horizon affinity (Engine::spawn resource id).
  [[nodiscard]] std::uint32_t controllerForUe(int ue, int num_ues) const;

  // -- unified serially-reusable resource namespace --
  // The engine hosts ONE id space of coalescable resources. Memory
  // controllers take ids [0, num_mem_controllers); each tile's MPB port
  // takes id num_mem_controllers + tile. Every task's reach set is built
  // from these ids (Engine::spawnReaching).
  [[nodiscard]] std::uint32_t numResources() const {
    return config_.num_mem_controllers + numTiles();
  }
  [[nodiscard]] std::uint32_t numTiles() const { return config_.numTiles(); }
  /// Engine resource id of tile `tile`'s MPB port.
  [[nodiscard]] std::uint32_t portResourceId(std::uint32_t tile) const {
    return config_.num_mem_controllers + tile;
  }
  /// Engine resource id of the MPB port serving `core`'s tile.
  [[nodiscard]] std::uint32_t portResourceIdForCore(std::uint32_t core) const {
    return portResourceId(tileOfCore(core));
  }

  /// Attachment tile of a controller (for hop counting).
  [[nodiscard]] std::uint32_t tileOfController(std::uint32_t mc) const {
    const bool east = (mc & 1u) != 0;
    const bool north = (mc & 2u) != 0;
    const std::uint32_t x = east ? config_.mesh_cols - 1 : 0;
    const std::uint32_t y = north ? config_.mesh_rows - 1 : 0;
    return y * config_.mesh_cols + x;
  }

  /// Hops from a core to its assigned memory controller (plus one hop onto
  /// the controller's port).
  [[nodiscard]] std::uint32_t hopsToController(std::uint32_t core) const {
    return core_controller_hops_[core];
  }

  /// Hops from a core to an ARBITRARY controller (same +1 port hop as
  /// hopsToController) — the distance a controller-placed region pays when
  /// its serving controller is not the requester's own quadrant's.
  [[nodiscard]] std::uint32_t hopsFromCoreToController(std::uint32_t core,
                                                      std::uint32_t mc) const {
    return hops(tileOfCore(core), tileOfController(mc)) + 1;
  }

  /// Physical core hosting logical UE `ue` when `num_ues` UEs participate.
  /// UEs are spread round-robin across the four quadrants so each memory
  /// controller serves an equal share (the paper runs 32 UEs on the 48-core
  /// chip with "at least 8 cores in contention per memory controller").
  /// The table covers one UE per core; oversubscribed UE ids fall back to
  /// the direct computation (identical result, just off the fast path).
  [[nodiscard]] std::uint32_t coreForUe(int ue, int num_ues) const {
    (void)num_ues;
    const auto u = static_cast<std::uint32_t>(ue);
    return u < ue_core_.size() ? ue_core_[u] : computeCoreForUe(u);
  }

 private:
  [[nodiscard]] std::uint32_t computeCoreForUe(std::uint32_t ue) const;

  const SccConfig& config_;
  std::vector<TileCoord> tile_coord_;             ///< per tile
  std::vector<std::uint32_t> core_controller_;    ///< per core
  std::vector<std::uint32_t> core_controller_hops_;  ///< per core
  std::vector<std::uint32_t> ue_core_;            ///< per ue mod num_cores
};

}  // namespace hsm::sim

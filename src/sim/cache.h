// A small write-back, write-allocate cache model (tag store only — data
// lives in the functional backing store). Direct-mapped, which is close to
// the P54C's 2-way L1 for streaming workloads and keeps lookups O(1).
//
// Used for the *private, cacheable* address space; shared off-chip pages on
// the SCC are uncacheable and bypass this entirely (the whole point of the
// paper's HSM memory discipline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hsm::sim {

class Cache {
 public:
  Cache(std::size_t capacity_bytes, std::size_t line_bytes)
      : line_bytes_(line_bytes), num_lines_(capacity_bytes / line_bytes),
        tags_(num_lines_, 0), valid_(num_lines_, 0), dirty_(num_lines_, 0) {}

  struct AccessResult {
    bool hit = false;
    bool writeback = false;  ///< a dirty victim line must be written back
  };

  AccessResult access(std::uint64_t addr, bool is_write) {
    const std::uint64_t line = addr / line_bytes_;
    const std::size_t index = line % num_lines_;
    const std::uint64_t tag = line / num_lines_;
    AccessResult result;
    if (valid_[index] != 0 && tags_[index] == tag) {
      result.hit = true;
      ++hits_;
    } else {
      result.writeback = valid_[index] != 0 && dirty_[index] != 0;
      tags_[index] = tag;
      valid_[index] = 1;
      dirty_[index] = 0;
      ++misses_;
    }
    if (is_write) dirty_[index] = 1;
    return result;
  }

  void flush() {
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(dirty_.begin(), dirty_.end(), 0);
  }

  [[nodiscard]] std::size_t lineBytes() const { return line_bytes_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  std::size_t line_bytes_;
  std::size_t num_lines_;
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint8_t> valid_;
  std::vector<std::uint8_t> dirty_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hsm::sim

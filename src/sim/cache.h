// A small write-back, write-allocate cache tag store (data lives in the
// owner's backing or line store). Direct-mapped, which is close to the
// P54C's 2-way L1 for streaming workloads and keeps lookups O(1).
//
// Two users:
//   * the *private, cacheable* address space (SccMachine's per-core L1/L2
//     models) — tag-only, data lives in the functional private backing;
//   * the software-managed release-consistency cache for shared memory
//     (sim/swcache/), which pairs this tag store with a per-line data store
//     and needs the victim/slot information `access` reports plus
//     `invalidate` for acquire-time self-invalidation.
// Shared off-chip pages on the SCC are *hardware*-uncacheable; only the
// explicit software protocol in sim/swcache/ may cache them.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hsm::sim {

class Cache {
 public:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  Cache(std::size_t capacity_bytes, std::size_t line_bytes)
      : line_bytes_(line_bytes), num_lines_(capacity_bytes / line_bytes),
        tags_(num_lines_, 0), valid_(num_lines_, 0), dirty_(num_lines_, 0) {}

  struct AccessResult {
    bool hit = false;
    bool writeback = false;  ///< a dirty victim line must be written back
    /// Line-aligned address of the dirty victim (valid when `writeback`).
    std::uint64_t victim_addr = 0;
    /// Slot holding the line after the access (pairs with a data store).
    std::size_t index = 0;
  };

  AccessResult access(std::uint64_t addr, bool is_write) {
    const std::uint64_t line = addr / line_bytes_;
    const std::size_t index = static_cast<std::size_t>(line % num_lines_);
    const std::uint64_t tag = line / num_lines_;
    AccessResult result;
    result.index = index;
    if (valid_[index] != 0 && tags_[index] == tag) {
      result.hit = true;
      ++hits_;
    } else {
      if (valid_[index] != 0) {
        if (dirty_[index] != 0) {
          result.writeback = true;
          result.victim_addr = (tags_[index] * num_lines_ + index) * line_bytes_;
          --dirty_count_;
        }
      } else {
        ++valid_count_;
      }
      tags_[index] = tag;
      valid_[index] = 1;
      dirty_[index] = 0;
      ++misses_;
    }
    if (is_write && dirty_[index] == 0) {
      dirty_[index] = 1;
      ++dirty_count_;
    }
    return result;
  }

  /// Probe without allocating or touching hit/miss statistics: slot holding
  /// the line containing `addr`, or kNoSlot (the no-allocate half of the
  /// swcache write-through policy).
  [[nodiscard]] std::size_t lookup(std::uint64_t addr) const {
    const std::uint64_t line = addr / line_bytes_;
    const std::size_t index = static_cast<std::size_t>(line % num_lines_);
    return valid_[index] != 0 && tags_[index] == line / num_lines_ ? index : kNoSlot;
  }

  /// Drop the line containing `addr` if present. Returns true when the
  /// dropped line was dirty (the caller loses its only copy — swcache only
  /// does this after writing the data back). No-op when absent.
  bool invalidate(std::uint64_t addr) {
    const std::size_t index = lookup(addr);
    if (index == kNoSlot) return false;
    const bool was_dirty = dirty_[index] != 0;
    invalidateSlot(index);
    return was_dirty;
  }

  /// Drop every line (no write-back — tag-only users track data elsewhere).
  void flush() {
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    valid_count_ = 0;
    dirty_count_ = 0;
  }

  // -- slot inspection (swcache flush/invalidate sweeps) --
  [[nodiscard]] std::size_t numLines() const { return num_lines_; }
  [[nodiscard]] bool slotValid(std::size_t index) const { return valid_[index] != 0; }
  [[nodiscard]] bool slotDirty(std::size_t index) const { return dirty_[index] != 0; }
  /// Line-aligned address cached in `index` (meaningful only when valid).
  [[nodiscard]] std::uint64_t slotAddr(std::size_t index) const {
    return (tags_[index] * num_lines_ + index) * line_bytes_;
  }
  void markClean(std::size_t index) {
    if (dirty_[index] != 0) {
      dirty_[index] = 0;
      --dirty_count_;
    }
  }
  void invalidateSlot(std::size_t index) {
    if (valid_[index] != 0) --valid_count_;
    valid_[index] = 0;
    markClean(index);
  }
  /// Resident / dirty line counts, maintained incrementally so sweeps over
  /// the slots (swcache flush/invalidate at every sync point) can early-out
  /// when there is nothing to do.
  [[nodiscard]] std::size_t validCount() const { return valid_count_; }
  [[nodiscard]] std::size_t dirtyCount() const { return dirty_count_; }

  [[nodiscard]] std::size_t lineBytes() const { return line_bytes_; }
  /// Cumulative line-granular hits since construction (or resetStats()).
  /// Counted by `access` only; `lookup`/`invalidate` never touch the tally.
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  /// Cumulative line-granular misses since construction (or resetStats()).
  /// A miss both allocates the line and counts, so hits()+misses() is the
  /// total number of `access` calls.
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  void resetStats() {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  std::size_t line_bytes_;
  std::size_t num_lines_;
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint8_t> valid_;
  std::vector<std::uint8_t> dirty_;
  std::size_t valid_count_ = 0;
  std::size_t dirty_count_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hsm::sim

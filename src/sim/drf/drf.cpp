#include "sim/drf/drf.h"

#include <algorithm>
#include <sstream>

namespace hsm::sim::drf {
namespace {

void appendSite(std::ostringstream& out, const RaceSite& site) {
  out << "task " << site.task;
  if (site.ue >= 0) out << " (ue " << site.ue << ")";
  out << (site.write ? " wrote [" : " read [") << site.lo << "," << site.hi
      << ") @tick " << site.tick;
}

}  // namespace

std::string spaceName(std::uint32_t space) {
  if (space == kSpaceShm) return "shm";
  if (space == kSpacePriv) return "priv";
  return "mpb[ue " + std::to_string(space - 2) + "]";
}

const char* raceKindName(RaceKind kind) {
  switch (kind) {
    case RaceKind::kWriteWrite: return "write-write";
    case RaceKind::kReadWrite: return "read-write";
    case RaceKind::kWriteRead: return "write-read";
  }
  return "?";
}

std::string RaceReport::format() const {
  std::ostringstream out;
  out << raceKindName(kind) << " race on " << spaceName(space) << " ["
      << granule_begin << "," << granule_begin + granule_bytes << ") "
      << (line_granular ? "line" : "word") << "-granular";
  if (false_sharing) out << " FALSE-SHARING";
  if (!region.empty()) out << " region \"" << region << "\"";
  out << ": ";
  appendSite(out, prior);
  out << "  vs  ";
  appendSite(out, current);
  return out.str();
}

void DrfChecker::configure(bool word_granular, std::size_t line_bytes,
                           std::size_t word_bytes) {
  word_granular_ = word_granular;
  if (line_bytes > 0) line_bytes_ = line_bytes;
  if (word_bytes > 0) word_bytes_ = word_bytes;
}

void DrfChecker::registerTask(std::size_t task, int ue) {
  VectorClock& clock = clockOf(task);
  (void)clock;
  task_ue_[task] = ue;
}

void DrfChecker::addShmExemptRange(std::uint64_t begin, std::uint64_t end) {
  if (end <= begin) return;
  shm_exempt_.push_back(Range{begin, end, true});
}

void DrfChecker::registerRegion(std::string name, std::uint64_t begin,
                                std::uint64_t end) {
  if (end <= begin) return;
  regions_.push_back(Region{std::move(name), begin, end});
}

void DrfChecker::acquire(std::size_t task, std::uint64_t sync) {
  if (sync < sync_clocks_.size()) clockOf(task).join(sync_clocks_[sync]);
}

void DrfChecker::release(std::size_t task, std::uint64_t sync) {
  VectorClock& clock = clockOf(task);
  if (sync >= sync_clocks_.size()) sync_clocks_.resize(sync + 1);
  sync_clocks_[sync] = clock;
  clock.bump(task);
}

void DrfChecker::barrierRelease(const std::size_t* tasks, std::size_t count) {
  VectorClock joined;
  for (std::size_t i = 0; i < count; ++i) joined.join(clockOf(tasks[i]));
  for (std::size_t i = 0; i < count; ++i) {
    VectorClock& clock = clockOf(tasks[i]);
    clock = joined;
    clock.bump(tasks[i]);
  }
}

std::size_t DrfChecker::access(std::size_t task, std::uint32_t space,
                               std::uint64_t offset, std::size_t bytes, bool write,
                               bool cached, Tick tick) {
  if (bytes == 0) return 0;
  if (space == kSpaceShm && shmExempt(offset)) return 0;
  ++accesses_checked_;
  pending_reports_ = 0;
  const VectorClock& clock = clockOf(task);
  // Contract granularity: cached shared DRAM is line-granular unless the
  // word-granular (future-contract) mode is on; everything else — uncached
  // words, MPB chunks, private process memory — is word-granular always.
  const bool line = !word_granular_ && cached && space == kSpaceShm;
  const std::uint64_t granule =
      static_cast<std::uint64_t>(line ? line_bytes_ : word_bytes_);
  const std::uint64_t end = offset + bytes;
  for (std::uint64_t gbegin = offset - offset % granule; gbegin < end;
       gbegin += granule) {
    const std::uint64_t lo = std::max(gbegin, offset);
    const std::uint64_t hi = std::min(gbegin + granule, end);
    const std::uint64_t key = (static_cast<std::uint64_t>(space) << 40) |
                              (static_cast<std::uint64_t>(line) << 39) |
                              (gbegin / granule);
    checkGranule(task, clock, space, key, gbegin,
                 static_cast<std::size_t>(granule), line, lo, hi, write, tick);
  }
  return pending_reports_;
}

std::string DrfChecker::formatReports() const {
  std::ostringstream out;
  for (const RaceReport& r : reports_) out << r.format() << '\n';
  return out.str();
}

void DrfChecker::resetExecutionState() {
  task_clocks_.clear();
  task_ue_.clear();
  sync_clocks_.clear();
  shadow_.clear();
  reports_.clear();
  accesses_checked_ = 0;
  pending_reports_ = 0;
}

VectorClock& DrfChecker::clockOf(std::size_t task) {
  if (task >= task_clocks_.size()) {
    task_clocks_.resize(task + 1);
    task_ue_.resize(task + 1, -1);
  }
  VectorClock& clock = task_clocks_[task];
  // Lazy init: every task's own component starts at 1, so epoch clock 0
  // unambiguously means "no recorded access" in the shadow state.
  if (clock.get(task) == 0) clock.set(task, 1);
  return clock;
}

bool DrfChecker::shmExempt(std::uint64_t offset) const {
  for (auto it = shm_exempt_.rbegin(); it != shm_exempt_.rend(); ++it) {
    if (offset >= it->begin && offset < it->end) return it->exempt;
  }
  return false;
}

std::string DrfChecker::regionNameAt(std::uint64_t offset) const {
  for (auto it = regions_.rbegin(); it != regions_.rend(); ++it) {
    if (offset >= it->begin && offset < it->end) return it->name;
  }
  return {};
}

void DrfChecker::report(RaceKind kind, std::uint32_t space,
                        std::uint64_t granule_begin, std::size_t granule_bytes,
                        bool line_granular, const AccessInfo& prior, bool prior_write,
                        const AccessInfo& current, bool current_write) {
  RaceReport r;
  r.kind = kind;
  r.space = space;
  r.granule_begin = granule_begin;
  r.granule_bytes = static_cast<std::uint32_t>(granule_bytes);
  r.line_granular = line_granular;
  r.prior.task = prior.task;
  r.prior.ue = prior.task < task_ue_.size() ? task_ue_[prior.task] : -1;
  r.prior.tick = prior.tick;
  r.prior.write = prior_write;
  r.prior.lo = prior.lo;
  r.prior.hi = prior.hi;
  r.current.task = current.task;
  r.current.ue = current.task < task_ue_.size() ? task_ue_[current.task] : -1;
  r.current.tick = current.tick;
  r.current.write = current_write;
  r.current.lo = current.lo;
  r.current.hi = current.hi;
  r.false_sharing =
      r.line_granular && (prior.hi <= current.lo || current.hi <= prior.lo);
  if (space == kSpaceShm) r.region = regionNameAt(granule_begin);
  reports_.push_back(std::move(r));
  ++pending_reports_;
}

void DrfChecker::checkGranule(std::size_t task, const VectorClock& clock,
                              std::uint32_t space, std::uint64_t key,
                              std::uint64_t granule_begin, std::size_t granule_bytes,
                              bool line_granular, std::uint64_t lo, std::uint64_t hi,
                              bool write, Tick tick) {
  Shadow& s = shadow_[key];
  const AccessInfo cur{clock.get(task), static_cast<std::uint32_t>(task), tick, lo,
                       hi};
  const auto races_with = [&clock, task](const AccessInfo& prior) {
    return prior.clock != 0 && prior.task != task &&
           !clock.covers(prior.clock, prior.task);
  };
  // First conflict per granule only: a hot racy word must not flood the
  // report list, and downstream consumers (trace instants, counters) want
  // distinct races, not iterations.
  if (!s.reported) {
    if (races_with(s.write)) {
      report(write ? RaceKind::kWriteWrite : RaceKind::kWriteRead, space,
             granule_begin, granule_bytes, line_granular, s.write,
             /*prior_write=*/true, cur, write);
      s.reported = true;
    }
    if (!s.reported && write) {
      if (s.shared_reads.empty()) {
        if (races_with(s.read)) {
          report(RaceKind::kReadWrite, space, granule_begin, granule_bytes,
                 line_granular, s.read, /*prior_write=*/false, cur,
                 /*current_write=*/true);
          s.reported = true;
        }
      } else {
        // Inflated read side: every concurrent reader must be ordered
        // before this write. Task-ascending scan keeps the reported reader
        // deterministic.
        for (const AccessInfo& r : s.shared_reads) {
          if (races_with(r)) {
            report(RaceKind::kReadWrite, space, granule_begin, granule_bytes,
                   line_granular, r, /*prior_write=*/false, cur,
                   /*current_write=*/true);
            s.reported = true;
            break;
          }
        }
      }
    }
  }
  // Shadow update (FastTrack): a write owns the granule — the read side
  // collapses back to the O(1) representation.
  if (write) {
    s.write = cur;
    s.read = AccessInfo{};
    s.shared_reads.clear();
    return;
  }
  if (s.shared_reads.empty()) {
    if (s.read.clock == 0 || s.read.task == cur.task ||
        clock.covers(s.read.clock, s.read.task)) {
      s.read = cur;  // exclusive-reader fast path: one epoch, no vector
      return;
    }
    // Two concurrent readers: inflate to the per-reader list.
    s.shared_reads.reserve(2);
    if (s.read.task < cur.task) {
      s.shared_reads.push_back(s.read);
      s.shared_reads.push_back(cur);
    } else {
      s.shared_reads.push_back(cur);
      s.shared_reads.push_back(s.read);
    }
    s.read = AccessInfo{};
    return;
  }
  const auto it = std::lower_bound(
      s.shared_reads.begin(), s.shared_reads.end(), cur.task,
      [](const AccessInfo& a, std::uint32_t t) { return a.task < t; });
  if (it != s.shared_reads.end() && it->task == cur.task) {
    *it = cur;
  } else {
    s.shared_reads.insert(it, cur);
  }
}

}  // namespace hsm::sim::drf

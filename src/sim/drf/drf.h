// Simulated-time happens-before race detection (docs/race_detection.md).
//
// Every correctness layer in this simulator — swcache release consistency,
// event coalescing, the conservative-PDES lanes — is conditional on the
// program being data-race-free at the granularity the memory model
// documents. This checker enforces that contract from the inside: a
// vector-clock happens-before detector over the simulator's shared-memory
// accesses, driven by the existing sync hooks (TasLock acquire/release,
// SyncBarrier release, threadrt spawn) and the shm/swcache/MPB access paths.
//
// Design (FastTrack-style epochs, Flanagan & Freund):
//   - Each task t carries a vector clock C_t; C_t[t] starts at 1 and
//     increments at release points, so epochs (clock, tid) name a unique
//     release-delimited interval of t's execution.
//   - Each sync object m carries a clock L_m. Acquire: C_t |= L_m.
//     Release: L_m := C_t, then C_t[t]++. A barrier joins ALL participants'
//     clocks and redistributes the join (then each increments its own
//     entry) — arrivals happen-before every departure.
//   - Shadow state per touched granule is O(1) in the common case: one
//     write epoch and one read epoch. Only genuinely concurrent readers
//     inflate the read side into a per-reader list (bounded by the UE
//     count), so total shadow cost is O(granules touched), not
//     O(granules x UEs).
//   - Granularity is the CONTRACT granularity: accesses to a swcache-cached
//     range check whole cache lines (two UEs touching different words of
//     one cached line race — false sharing under the line-granular
//     contract), uncached/MPB/private accesses check words. Word-granular
//     mode (the future contract the ROADMAP's per-word dirty-mask swcache
//     needs) checks words everywhere.
//
// Determinism: the checker never reads wall clock or pointers into its
// reports; access hooks fire once per logical operation at its initiation
// Tick, which the coalescing invariant keeps bit-identical across modes,
// and a drf-enabled machine pins the engine to the sequential (time,
// task_id) loop — so the report list (order and bytes) is a deterministic
// function of the program. Reports carry both access sites
// (task/UE/Tick/range) plus region and sync context.
//
// Zero overhead when disabled: SccMachine gates every hook on one cached
// bool (the FaultInjector / TraceRecorder discipline) and the hooks are
// untimed, so drf_check=false runs are bit-identical and drf_check=true
// runs simulate the exact same Ticks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace hsm::sim::drf {

/// Address-space tag of a checked access. Shared off-chip DRAM and each
/// owner UE's MPB are distinct address spaces; threadrt's single-core
/// process memory is a third.
inline constexpr std::uint32_t kSpaceShm = 0;
inline constexpr std::uint32_t kSpacePriv = 1;
[[nodiscard]] inline std::uint32_t mpbSpace(int owner_ue) {
  return 2 + static_cast<std::uint32_t>(owner_ue);
}
[[nodiscard]] std::string spaceName(std::uint32_t space);

/// Vector clock over task ids. Sized lazily; absent entries read as 0.
class VectorClock {
 public:
  [[nodiscard]] std::uint32_t get(std::size_t task) const {
    return task < c_.size() ? c_[task] : 0;
  }
  void set(std::size_t task, std::uint32_t value) {
    if (task >= c_.size()) c_.resize(task + 1, 0);
    c_[task] = value;
  }
  void bump(std::size_t task) { set(task, get(task) + 1); }
  /// Pointwise maximum.
  void join(const VectorClock& other) {
    if (other.c_.size() > c_.size()) c_.resize(other.c_.size(), 0);
    for (std::size_t t = 0; t < other.c_.size(); ++t) {
      if (other.c_[t] > c_[t]) c_[t] = other.c_[t];
    }
  }
  /// Epoch (clock, tid) happened-before (or at) this clock?
  [[nodiscard]] bool covers(std::uint32_t clock, std::size_t task) const {
    return clock <= get(task);
  }
  [[nodiscard]] std::size_t size() const { return c_.size(); }

 private:
  std::vector<std::uint32_t> c_;
};

enum class RaceKind : std::uint8_t {
  kWriteWrite = 0,
  kReadWrite,  ///< prior read, racing write
  kWriteRead,  ///< prior write, racing read
};

[[nodiscard]] const char* raceKindName(RaceKind kind);

/// One side of a race: which task touched which bytes, when.
struct RaceSite {
  std::size_t task = 0;
  int ue = -1;  ///< -1 when the task was never registered with a UE
  Tick tick = 0;
  bool write = false;
  std::uint64_t lo = 0;  ///< touched byte range within the granule,
  std::uint64_t hi = 0;  ///< absolute offsets, [lo, hi)
};

/// A detected happens-before violation. First race per granule only — the
/// shadow granule is marked and later conflicts on it are suppressed, so a
/// hot racy word yields one report, not one per iteration.
struct RaceReport {
  RaceKind kind = RaceKind::kWriteWrite;
  std::uint32_t space = kSpaceShm;
  std::uint64_t granule_begin = 0;  ///< byte offset of the checked granule
  std::uint32_t granule_bytes = 0;
  bool line_granular = false;  ///< checked under the cached-line contract
  /// Line-granular race whose two byte ranges do not overlap: the accesses
  /// themselves are disjoint, the CONTRACT granule is what they share.
  bool false_sharing = false;
  RaceSite prior;
  RaceSite current;
  std::string region;  ///< registered region containing the granule, or ""

  /// Deterministic single-line rendering (simulated quantities only).
  [[nodiscard]] std::string format() const;
};

/// The detector. One instance per SccMachine; all methods assume the
/// machine's sequential (time, task_id) execution order — SccMachine::run
/// pins the engine to one lane whenever the checker is active.
class DrfChecker {
 public:
  /// `word_granular`: check words even on cached ranges (the future
  /// contract). `line_bytes`/`word_bytes`: the machine's cache line and
  /// shared-memory transaction sizes.
  void configure(bool word_granular, std::size_t line_bytes, std::size_t word_bytes);

  /// Map `task` to a UE/thread id for reporting and give it a fresh clock.
  /// Tasks spawn from untimed host context, so siblings start mutually
  /// concurrent (C_t = {t: 1}) — exactly pthread_create's guarantee that
  /// only data the parent wrote BEFORE the spawn is visible, which the
  /// simulator realizes as untimed (unchecked) host initialization.
  void registerTask(std::size_t task, int ue);

  /// Exempt [begin, end) of shared DRAM from checking — for deliberate
  /// benign races (e.g. idempotent last-writer-wins stores of canonical
  /// values). Newest registration wins on overlap, mirroring the machine's
  /// cacheability map.
  void addShmExemptRange(std::uint64_t begin, std::uint64_t end);

  /// Name [begin, end) of shared DRAM for reports.
  void registerRegion(std::string name, std::uint64_t begin, std::uint64_t end);

  // -- happens-before edges (driven by the machine's sync objects) --
  void acquire(std::size_t task, std::uint64_t sync);
  void release(std::size_t task, std::uint64_t sync);
  /// All of `tasks` arrived at a barrier whose release is now: join every
  /// participant's clock and redistribute.
  void barrierRelease(const std::size_t* tasks, std::size_t count);

  /// Check one logical access. `cached` selects the line-granular contract
  /// for this range (ignored in word-granular mode). Returns the number of
  /// NEW reports appended (0 almost always), so callers can emit trace
  /// instants without scanning.
  std::size_t access(std::size_t task, std::uint32_t space, std::uint64_t offset,
                     std::size_t bytes, bool write, bool cached, Tick tick);

  [[nodiscard]] const std::vector<RaceReport>& reports() const { return reports_; }
  [[nodiscard]] std::uint64_t accessesChecked() const { return accesses_checked_; }
  [[nodiscard]] bool wordGranular() const { return word_granular_; }

  /// All reports, one format() line each — the byte-identity oracle the
  /// determinism tests compare across engine_lanes and coalescing modes.
  [[nodiscard]] std::string formatReports() const;

  /// Drop shadow state, clocks, and reports (exempt ranges and regions
  /// stay — they describe the address space, not the execution).
  void resetExecutionState();

 private:
  struct AccessInfo {
    std::uint32_t clock = 0;  ///< 0 = no access recorded (clocks start at 1)
    std::uint32_t task = 0;
    Tick tick = 0;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };

  struct Shadow {
    AccessInfo write;
    AccessInfo read;  ///< exclusive-reader epoch (the FastTrack fast path)
    /// Concurrent readers, task-ascending; non-empty iff the read side
    /// inflated. Bounded by the task count, but only granules that are
    /// genuinely read-shared pay for it.
    std::vector<AccessInfo> shared_reads;
    bool reported = false;
  };

  struct Range {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    bool exempt = false;
  };

  struct Region {
    std::string name;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  [[nodiscard]] VectorClock& clockOf(std::size_t task);
  [[nodiscard]] bool shmExempt(std::uint64_t offset) const;
  [[nodiscard]] std::string regionNameAt(std::uint64_t offset) const;
  void report(RaceKind kind, std::uint32_t space, std::uint64_t granule_begin,
              std::size_t granule_bytes, bool line_granular, const AccessInfo& prior,
              bool prior_write, const AccessInfo& current, bool current_write);
  /// One granule of one access.
  void checkGranule(std::size_t task, const VectorClock& clock, std::uint32_t space,
                    std::uint64_t key, std::uint64_t granule_begin,
                    std::size_t granule_bytes, bool line_granular, std::uint64_t lo,
                    std::uint64_t hi, bool write, Tick tick);

  bool word_granular_ = false;
  std::size_t line_bytes_ = 32;
  std::size_t word_bytes_ = 8;

  std::vector<VectorClock> task_clocks_;
  std::vector<int> task_ue_;
  /// Sync-object clocks indexed by the engine's sequential sync ids.
  std::vector<VectorClock> sync_clocks_;
  /// Shadow granules keyed by (space, contract granularity, granule index).
  /// The granularity bit keeps a line-checked granule and a word-checked
  /// granule of the same bytes from colliding (a range's cacheability can
  /// change between launches).
  std::unordered_map<std::uint64_t, Shadow> shadow_;
  std::vector<Range> shm_exempt_;
  std::vector<Region> regions_;
  std::vector<RaceReport> reports_;
  std::uint64_t accesses_checked_ = 0;
  std::size_t pending_reports_ = 0;  ///< new reports in the current access()
};

}  // namespace hsm::sim::drf

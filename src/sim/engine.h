// The discrete-event simulation kernel.
//
// Deterministic: simulated concurrency comes from C++20 coroutines
// (SimTask). Each simulated core runs one coroutine; every architectural
// operation computes its completion time (consulting shared resource
// timelines for contention) and suspends until then.
//
// The kernel normally runs single-threaded. With setEngineLanes(N>1) it
// becomes a conservative parallel-DES engine (docs/engine_parallel.md):
// reach classes are merged into components by union-find over shared
// resources and sync-object participant sets (bindSyncParticipants), and
// fully disjoint components advance on worker-thread lanes concurrently —
// each lane is the unmodified sequential loop over its own heap, so Ticks,
// per-task completions, and final memory are bit-identical to lanes=1. Runs
// whose components cannot be proven disjoint (universal-reach tasks,
// unbound sync objects, pre-parked tasks, sync timeouts or watchdog armed,
// fewer than two components) fall back to the sequential loop.
//
// Ordering contract: every event carries the id of the root SimTask it
// resumes (wake events for blocked tasks carry the *woken* task's id,
// recorded when the task blocked), and events fire in ascending
// (time, task_id) order. Host-scheduled events with no task context order
// after all task events at the same Tick; insertion sequence is only a final
// tie-break between such events. A root task has at most one pending event,
// so (time, task_id) is unique across the pending set and the schedule is a
// total order that does NOT depend on when events were inserted. That
// insertion-independence is load-bearing: event coalescing (below) inserts
// fewer events than the per-operation execution it replaces, so any ordering
// rule based on insertion sequence would let coalescing perturb lock-grant
// and barrier-wake order at equal-Tick collisions.
//
// Coalescing invariant (per-resource horizons): platform models sitting
// above this kernel (SccMachine's word-granular shared-memory path and its
// chunk-granular MPB path) may collapse a run of per-operation suspensions
// into one analytically-computed event, but ONLY while every skipped
// suspension would provably have executed before any other coroutine could
// touch the same resource timeline. The kernel hosts a single namespace of
// serially-reusable resources — the platform registers every coalescable
// timeline (memory controllers AND per-tile MPB ports) under one id space —
// and every task declares at spawn time the *reach set* of registered
// resources it may ever touch (single-resource affinity is the degenerate
// case; no declaration means "may touch anything"). `nextEventTimeFor(r)`
// then returns the coalescing horizon for resource r: the earliest pending
// event among tasks whose reach set contains r, plus all universal-reach
// tasks.
//
// Blocked tasks and the wake-chain rule: a task that is alive but has no
// pending event is parked on some synchronization object, and its wake may
// be scheduled the moment another task runs. A blocked task whose reach set
// contains r therefore bounds r's horizon too. If the parking mechanism is
// unknown to the kernel, the only safe bound is the global
// `nextEventTime()` (any event could schedule the wake). But when the sync
// object is registered (`registerSyncObject`) and keeps its *potential
// waker* set current (`setSyncWakers` — the lock holder, the barrier's
// not-yet-arrived participants), the kernel can bound the blocked task's
// earliest interference through its wake chain. Under the kAny rule (locks:
// one release suffices) the bound is the MIN of the wakers' earliest
// executions; under the kAll rule (barriers: the last arrival releases,
// so every waker must run first) it is the MAX. A waker with a pending
// event contributes that event's time; a waker that is itself blocked
// recurses into its own sync object's wakers; a cycle of blocked wakers
// can never fire. The currently running task is excluded as a waker — the
// horizon is only ever consulted mid-batch, and a batch replaces a
// contiguous run of memory operations during which the caller performs no
// sync-object operations — so a kAny sync skips it and a kAll sync whose
// wakers include it can never release mid-batch at all.
// Under these rules coalescing may reduce `eventsProcessed()` but never
// changes any Tick: makespan, per-task completion times, and every
// resource-timeline state transition are bit-identical with coalescing on
// or off, with per-resource or global horizons, and with sync-aware wake
// chains on or off.
#pragma once

#include <algorithm>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/time.h"

namespace hsm::sim {

class Engine;

namespace obs {
class TraceRecorder;
}  // namespace obs

/// Snapshot of every unfinished task at a detected hang — the wait-for
/// graph the deadlock detector, sync timeout, and watchdog all report.
struct HangReport {
  struct Waiter {
    std::size_t task = 0;
    /// Registered sync object the task is parked on; Engine::kNoSync when
    /// the task is parked by an unknown mechanism (or wedged outright, e.g.
    /// an injected permanent core freeze) — it has no wake-for edge at all.
    std::uint32_t sync = static_cast<std::uint32_t>(-1);
    Tick blocked_since = 0;     ///< when the park was registered (0: unknown)
    bool wakers_known = false;  ///< the sync object declared its waker set
    bool all_wakers_required = false;  ///< kAll rule (barrier) vs kAny (lock)
    std::vector<std::size_t> wakers;   ///< current potential waker tasks
  };
  Tick at = 0;  ///< simulated time the hang was detected
  std::vector<Waiter> waiters;
  /// Multi-line human-readable rendering of the wait-for graph.
  [[nodiscard]] std::string format() const;
};

/// Base of the structured no-progress errors Engine::run can raise. These
/// are thrown from the host-side run loop, never from inside a coroutine
/// frame (whose unhandled_exception would terminate).
class SimHangError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t { kDeadlock, kSyncTimeout, kWatchdog };
  SimHangError(Kind kind, HangReport report);
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const HangReport& report() const { return report_; }

 private:
  Kind kind_;
  HangReport report_;
};

/// The event heap drained while tasks were still alive (satellite fix for
/// the silent-hang bug: a lock/barrier bug used to just end the run).
class DeadlockError : public SimHangError {
 public:
  explicit DeadlockError(HangReport report)
      : SimHangError(Kind::kDeadlock, std::move(report)) {}
};

/// A task sat blocked on a lock/barrier longer than the configured acquire/
/// arrival timeout (Engine::setSyncTimeout).
class SyncTimeout : public SimHangError {
 public:
  explicit SyncTimeout(HangReport report)
      : SimHangError(Kind::kSyncTimeout, std::move(report)) {}
};

/// The progress watchdog: too many events processed without simulated time
/// advancing (a livelock — e.g. a zero-delay self-rescheduling loop).
class WatchdogError : public SimHangError {
 public:
  explicit WatchdogError(HangReport report)
      : SimHangError(Kind::kWatchdog, std::move(report)) {}
};

/// A simulated thread of execution (one per core / logical thread).
/// Root-level only: operations are awaited inline, not via nested tasks.
class SimTask {
 public:
  struct promise_type {
    Engine* engine = nullptr;     ///< set by Engine::spawn
    std::size_t task_id = 0;

    SimTask get_return_object() {
      return SimTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    /// Notifies the engine of completion (roots can finish via symmetric
    /// transfer from a subtask, where the event's handle is not the root).
    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) const noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  SimTask() = default;
  explicit SimTask(Handle h) : handle_(h) {}
  SimTask(SimTask&& other) noexcept : handle_(other.handle_) { other.handle_ = {}; }
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = {};
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { destroy(); }

  [[nodiscard]] Handle handle() const { return handle_; }
  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
  }
  Handle handle_;
};

/// Awaitable that resumes the coroutine at an absolute simulated time.
struct ResumeAt {
  Engine& engine;
  Tick when;

  [[nodiscard]] bool await_ready() const noexcept;
  void await_suspend(std::coroutine_handle<> h) const;
  void await_resume() const noexcept {}
};

/// A nested awaitable coroutine: `co_await someSubTask()` transfers control
/// into the subtask; when it completes, control symmetric-transfers back to
/// the awaiting coroutine. Used for multi-event operations (e.g. a block of
/// uncached word transactions, each its own event so concurrent cores
/// interleave fairly at the memory controllers).
class [[nodiscard]] SubTask {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;

    SubTask get_return_object() {
      return SubTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        std::coroutine_handle<> cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  /// Empty task: awaiting it is a no-op (await_ready is true). Lets callers
  /// build awaitables that only sometimes carry a coroutine.
  SubTask() = default;
  explicit SubTask(Handle h) : handle_(h) {}
  SubTask(SubTask&& other) noexcept : handle_(other.handle_) { other.handle_ = {}; }
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask& operator=(SubTask&&) = delete;
  ~SubTask() {
    if (handle_) handle_.destroy();
  }

  [[nodiscard]] explicit operator bool() const noexcept { return handle_ != nullptr; }

  // Awaitable interface: start the subtask, remember who to resume.
  [[nodiscard]] bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;  // symmetric transfer into the subtask
  }
  void await_resume() const noexcept {}

 private:
  Handle handle_;
};

class Engine {
 public:
  /// Sentinel returned by nextEventTime() when the queue is empty: no event
  /// will ever preempt the caller.
  static constexpr Tick kNever = static_cast<Tick>(-1);
  /// Task id attached to host-scheduled events (no coroutine context).
  /// Orders after every real task at an equal-Tick collision.
  static constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);
  /// Resource affinity of tasks that never declared one: such tasks are
  /// assumed able to touch ANY resource, so they bound every horizon.
  static constexpr std::uint32_t kNoResource = static_cast<std::uint32_t>(-1);
  /// Sync-object id of tasks not blocked on any registered sync object.
  static constexpr std::uint32_t kNoSync = static_cast<std::uint32_t>(-1);

  /// Simulated time of the event being processed. During a parallel run
  /// each lane has its own clock; the accessor routes through the calling
  /// thread's active lane (defined after the class, once Lane is declared).
  [[nodiscard]] Tick now() const;

  /// Schedule `h` to resume at absolute time `when` (clamped to now) on
  /// behalf of the currently running task (the usual suspend path).
  void schedule(Tick when, std::coroutine_handle<> h) {
    schedule(when, h, currentTaskId());
  }
  /// Schedule a wake for a task other than the running one (lock grants,
  /// barrier releases): `task_id` must be the id the woken coroutine runs
  /// under, recorded when it blocked, so the (time, task_id) ordering
  /// contract holds for the wake event. Scheduling for a task that was
  /// registered as blocked on a sync object clears its blocked state.
  void schedule(Tick when, std::coroutine_handle<> h, std::size_t task_id);

  /// Id of the root task whose event is currently being processed
  /// (kNoTask outside run()). Lock/barrier implementations capture this
  /// when a coroutine blocks so its eventual wake is filed under it.
  [[nodiscard]] std::size_t currentTaskId() const;

  /// Earliest pending event, or kNever if the queue is empty. During event
  /// processing the running event has already been popped, so this is the
  /// next thing that can execute besides the current coroutine — the global
  /// "horizon" that bounds safe event coalescing (see header comment).
  /// During a parallel run this is the calling lane's heap front: every
  /// other lane's events are component-disjoint from the caller, so they
  /// can never touch a resource the caller's component owns.
  [[nodiscard]] Tick nextEventTime() const;

  /// Declare `count` coalescable resources (memory controllers, MPB ports —
  /// one shared id namespace). Must be called before tasks that use reach
  /// sets are spawned; calling it resets all reach bookkeeping.
  void registerResources(std::uint32_t count);

  /// Per-resource coalescing horizon: earliest pending event among tasks
  /// whose reach set contains `resource` plus universal-reach tasks,
  /// bounded further by the wake chains of blocked tasks reaching
  /// `resource` (see the header comment for the exactness argument). Falls
  /// back to the global nextEventTime() when a blocked task's waker set is
  /// unknown or sync-aware horizons are disabled.
  [[nodiscard]] Tick nextEventTimeFor(std::uint32_t resource) const;

  /// Toggle the sync-aware wake-chain refinement of nextEventTimeFor()
  /// (default on). Off reproduces the blunt rule: any blocked task that can
  /// reach the queried resource collapses the horizon to the global one.
  void setSyncAwareHorizon(bool enabled) { sync_aware_ = enabled; }

  // -- synchronization-object registry (wake-chain tracking) --
  /// How a sync object's waker set gates its waiters' wakes. kAny: any
  /// single waker can schedule the wake (a lock's holder/grant chain) — the
  /// wake bound is the MIN of the wakers' earliest executions. kAll: every
  /// waker must run before the wake can be scheduled (a barrier's
  /// not-yet-arrived participants; the last arrival releases) — the bound
  /// is the MAX, and if the currently running task is itself a required
  /// waker the wake cannot happen mid-batch at all.
  enum class WakerRule : std::uint8_t { kAny, kAll };
  /// Register a synchronization object (lock, barrier). Blocked tasks
  /// reported against it are bounded by its waker set instead of the global
  /// horizon. Wakers start out UNKNOWN (conservative).
  std::uint32_t registerSyncObject();
  /// Declare the complete set of tasks that could schedule a wake on `sync`
  /// (the lock holder, a barrier's not-yet-arrived participants). Must be
  /// kept current by the sync object; an over-approximation is safe for
  /// kAny (an under-approximation for kAll), a missing kAny waker is not.
  void setSyncWakers(std::uint32_t sync, std::vector<std::size_t> wakers,
                     WakerRule rule = WakerRule::kAny);
  /// Episodic variant for barrier-style objects whose waker set is the SAME
  /// full membership at the start of every episode: declare it once, then
  /// start each new episode with resetSyncEpisode — O(1) instead of the
  /// O(participants) rebuild setSyncWakers would cost per episode.
  /// removeSyncWaker still drops arrivals in O(1) (a generation stamp).
  void setSyncEpisodeWakers(std::uint32_t sync, std::vector<std::size_t> wakers,
                            WakerRule rule = WakerRule::kAll);
  /// Start a new episode on an episodic sync object: every declared waker
  /// is a member again. O(1) — bumps the generation counter, invalidating
  /// all removal stamps at once.
  void resetSyncEpisode(std::uint32_t sync);
  /// Drop one task from `sync`'s waker set in place (a barrier participant
  /// that just arrived can no longer be the releasing waker). O(1) through
  /// the sync object's intrusive membership index, allocation-free in steady
  /// state — the per-arrival hot path.
  void removeSyncWaker(std::uint32_t sync, std::size_t task);
  /// Forget the waker set of `sync`: blocked tasks on it fall back to the
  /// global horizon (the safe default when a waker cannot be identified).
  void clearSyncWakers(std::uint32_t sync);
  /// Report that `task` parked on `sync` with no pending event. Cleared
  /// automatically when a wake is scheduled for the task.
  void blockOnSync(std::size_t task, std::uint32_t sync);
  /// Declare the COMPLETE set of tasks that will ever block on or wake
  /// `sync` over its whole lifetime (a barrier's participants). This is the
  /// lane-partition contract: parallel runs merge the reach classes of all
  /// participants into one component so every operation on `sync` stays on
  /// one lane. A sync object with no binding (e.g. a lock any task may
  /// take) forces the whole run onto the sequential loop — conservative,
  /// never wrong.
  void bindSyncParticipants(std::uint32_t sync, std::vector<std::size_t> tasks);

  /// Number of alive (spawned, unfinished) tasks whose reach set contains
  /// `resource` — including blocked ones and the caller. Returns SIZE_MAX
  /// when the count cannot be exact (no resources registered, resource
  /// unknown, universal-reach tasks alive, or universal/uncounted events
  /// pending). Platform models use this to prove a contention pattern is
  /// CLOSED: round-robin contention batching fires only when every task
  /// that could ever touch a controller is a known member of the batch.
  [[nodiscard]] std::size_t aliveTasksReaching(std::uint32_t resource) const;

  // -- conservative-PDES lanes (docs/engine_parallel.md) --
  /// Worker lanes for run(): 1 (default) is the classic sequential loop;
  /// N>1 advances disjoint components concurrently when the partition is
  /// provably safe (see header comment), else falls back to sequential.
  void setEngineLanes(std::uint32_t lanes) { engine_lanes_ = lanes == 0 ? 1 : lanes; }
  [[nodiscard]] std::uint32_t engineLanes() const { return engine_lanes_; }
  /// Lanes the most recent run() actually used (1 after a sequential run
  /// or fallback).
  [[nodiscard]] std::uint32_t lanesUsed() const { return lanes_used_; }
  /// Events processed per lane in the most recent parallel run (empty after
  /// a sequential run).
  [[nodiscard]] const std::vector<std::uint64_t>& laneEventCounts() const {
    return lane_event_counts_;
  }

  /// Pre-size the event heap (one slot per concurrently pending coroutine
  /// is enough; larger reservations just avoid early regrowth).
  void reserveEvents(std::size_t n) { events_.reserve(n); }

  /// Adopt a task and schedule its first resume at `start`. `resource`
  /// declares the only registered resource timeline this task will ever
  /// touch (kNoResource: may touch any). Returns an id usable with
  /// `completionTime`.
  std::size_t spawn(SimTask task, Tick start = 0,
                    std::uint32_t resource = kNoResource);
  /// Adopt a task whose reach set is `reach`: the registered resource
  /// timelines it may ever touch. An empty set, or any unregistered id in
  /// it, degrades to universal reach (may touch anything — conservative).
  std::size_t spawnReaching(SimTask task, Tick start,
                            std::vector<std::uint32_t> reach);

  /// Run until the event queue drains. Returns the time of the last event.
  /// With hang detection on (setHangDetection) a drain that leaves
  /// unfinished tasks behind throws DeadlockError instead of returning; the
  /// sync-timeout and watchdog knobs below can additionally raise
  /// SyncTimeout / WatchdogError mid-run. All three are thrown from this
  /// host-side loop, never from inside a coroutine frame.
  Tick run();

  // -- robustness / no-progress detection --
  /// Treat a heap drain with unfinished tasks as a deadlock (DeadlockError
  /// carrying the wait-for graph). Default OFF: a bare Engine legitimately
  /// parks tasks across run() calls (host code schedules their wakes later);
  /// SccMachine turns it on, where a drain with parked tasks is always the
  /// silent-hang bug.
  void setHangDetection(bool enabled) { hang_detection_ = enabled; }
  /// Raise SyncTimeout when any task registered via blockOnSync has waited
  /// longer than `ticks` of simulated time (0 = off, the default). This is
  /// the lock-acquire / barrier-arrival timeout of the fault model.
  void setSyncTimeout(Tick ticks) { sync_timeout_ = ticks; }
  /// Raise WatchdogError after more than `events` consecutive events fire
  /// without simulated time advancing (0 = off, the default).
  void setWatchdogEventLimit(std::uint64_t events) { watchdog_limit_ = events; }
  /// Unfinished (spawned, not yet completed) tasks right now.
  [[nodiscard]] std::size_t unfinishedTasks() const;
  /// Snapshot the current wait-for graph (every unfinished task, its sync
  /// object if registered, and that object's potential wakers).
  [[nodiscard]] HangReport hangReport() const;

  /// Completion time of a spawned task (valid after run()); 0 if not done.
  [[nodiscard]] Tick completionTime(std::size_t task_id) const {
    return task_id < completion_.size() ? completion_[task_id] : 0;
  }

  /// Called from SimTask's final suspend point. Only tasks spawned after
  /// registerResources() were counted alive; earlier ones must not
  /// decrement counters they never incremented.
  void onRootDone(std::size_t task_id) {
    if (task_id < completion_.size()) completion_[task_id] = now();
    if (task_id < task_done_.size()) task_done_[task_id] = true;
    if (!resource_classes_.empty() && task_id >= counted_tasks_from_ &&
        task_id < task_class_.size()) {
      const std::uint32_t cls = task_class_[task_id];
      if (cls == kUniversalClass) {
        --unaffined_alive_;
      } else {
        --classes_[cls].alive;
      }
    }
  }
  /// Latest completion across all spawned tasks (the makespan).
  [[nodiscard]] Tick makespan() const;

  [[nodiscard]] std::uint64_t eventsProcessed() const { return events_processed_; }
  /// Spawned root tasks so far (ids are 0..taskCount()-1).
  [[nodiscard]] std::size_t taskCount() const { return tasks_.size(); }

  // -- wall-clock instrumentation (simulator throughput, not simulated time) --
  /// Host seconds spent inside run() so far (accumulates across runs). The
  /// `host` prefix marks the domain: this is the ONLY wall-clock-derived
  /// number the engine exposes, and it must never leak into simulated-time
  /// output. Consumers report it through the obs::MetricsRegistry host
  /// domain (obs::collectMetrics), which also derives events-per-host-second
  /// from it — the Engine no longer offers that ratio itself.
  [[nodiscard]] double hostWallSeconds() const { return wall_seconds_; }

  // -- deterministic trace recording (sim/obs/trace.h) --
  /// Attach (or detach, nullptr) a trace recorder. The engine records
  /// block/wake instants and hang reports into it; platform models above
  /// record operation spans. Callers wire the pointer only when tracing is
  /// enabled, so the hot-path cost of the hooks is one null check.
  void setTraceRecorder(obs::TraceRecorder* recorder) { trace_ = recorder; }
  [[nodiscard]] obs::TraceRecorder* traceRecorder() const { return trace_; }

  /// Deterministic component partition for trace export: union-find over
  /// reach classes (tasks sharing a registered resource) and sync-object
  /// participant sets, exactly the planParallelRun() merge rule but ignoring
  /// done-ness, eligibility gates, and the configured lane count — so the
  /// result (task id -> dense component id, discovery order) is identical
  /// whether the run executed on one lane or N. Tasks with universal reach
  /// share component 0 with the first reach class.
  [[nodiscard]] std::vector<std::uint32_t> taskComponents() const;

  /// Convenience awaitable: suspend for `dt` picoseconds.
  [[nodiscard]] ResumeAt delay(Tick dt) { return ResumeAt{*this, now() + dt}; }
  [[nodiscard]] ResumeAt resumeAt(Tick when) { return ResumeAt{*this, when}; }

 private:
  /// Reach-class id of tasks with universal reach (and of all tasks spawned
  /// before registerResources()).
  static constexpr std::uint32_t kUniversalClass = static_cast<std::uint32_t>(-1);

  struct Event {
    Tick when;
    std::size_t task;        ///< root task the handle runs under (kNoTask: host)
    std::uint64_t seq;       ///< insertion sequence — tertiary tie-break only
    std::uint32_t cls;       ///< reach class resolved at schedule time
    bool tracked;            ///< filed in the per-class pending accounting
    bool counted;            ///< task has a matching alive-counter entry
    std::coroutine_handle<> handle;
  };
  /// Min-heap order on (when, task, seq): `a` fires after `b`. The task key
  /// is the documented ordering contract; seq only breaks ties between
  /// same-task/host events, which mode changes cannot reorder.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.task != b.task) return a.task > b.task;
      return a.seq > b.seq;
    }
  };

  /// One worker lane of a parallel run: the full per-run mutable state of
  /// the sequential loop, duplicated so a lane IS the sequential engine
  /// restricted to its components' events. Components assigned to the same
  /// lane share its heap — they are mutually disjoint, so the merged
  /// time-ordered drain is indistinguishable from draining them separately.
  struct Lane {
    Engine* engine = nullptr;
    std::uint32_t index = 0;
    std::vector<Event> events;  ///< binary heap, same EventAfter order
    Tick now = 0;
    std::size_t current_task = kNoTask;
    std::uint64_t next_seq = 0;  ///< seeded past every partitioned seq
    std::uint64_t events_processed = 0;
    std::vector<std::size_t> blocked_tasks;  ///< lane-local blockOnSync list
    std::exception_ptr error;
  };
  /// The lane the calling thread is currently draining (null on the host
  /// thread outside a parallel run). Routes now()/schedule()/horizon
  /// queries to lane-local state with zero locks: components are disjoint,
  /// so no two lanes ever touch the same class bucket, task slot, sync
  /// object, or resource timeline.
  static thread_local Lane* active_lane_;
  [[nodiscard]] Lane* activeLane() const {
    Lane* lane = active_lane_;
    return lane != nullptr && lane->engine == this ? lane : nullptr;
  }

  /// A distinct reach set shared by one or more tasks. Tasks with equal
  /// sets are interned into one class, so scheduling stays O(1) per event
  /// no matter how large the sets are; per-resource queries scan the few
  /// classes whose set contains the resource.
  struct ReachClass {
    std::vector<std::uint32_t> resources;  ///< sorted, unique
    std::vector<Tick> pending;             ///< `when` of pending events
    std::int64_t alive = 0;                ///< spawned minus finished
    std::int64_t blocked_registered = 0;   ///< parked via blockOnSync
  };

  struct SyncObject {
    std::vector<std::size_t> wakers;
    /// Intrusive membership index: waker_pos[task] is that task's position
    /// in `wakers` plus one, 0 when absent — makes removeSyncWaker O(1)
    /// (barrier arrivals used to scan the waker set linearly, ~30% of
    /// barrier-only microbench time at 32 participants). Sized to the
    /// largest waker task id ever set; swap-removals keep it current.
    /// Unused in episodic mode (removal is a generation stamp there).
    std::vector<std::size_t> waker_pos;
    /// Episodic mode (setSyncEpisodeWakers): `wakers` is the immutable full
    /// membership; a task is currently removed iff its stamp equals the
    /// current generation. resetSyncEpisode bumps `generation`, making every
    /// member current again without touching the vectors — the lazy rebuild
    /// that replaced the per-episode O(participants) setSyncWakers churn.
    std::vector<std::uint64_t> removed_gen;  ///< per task id; 0 = never
    std::uint64_t generation = 1;
    bool episodic = false;
    bool wakers_known = false;
    WakerRule rule = WakerRule::kAny;
    /// Lifetime participant set (bindSyncParticipants): every task that can
    /// ever block on or wake this object. Distinct from `wakers` (the
    /// current episode's potential wakers): participants gate the lane
    /// partition, wakers gate the coalescing horizon.
    std::vector<std::size_t> participants;
    bool participants_bound = false;

    [[nodiscard]] bool removedThisEpisode(std::size_t task) const {
      return task < removed_gen.size() && removed_gen[task] == generation;
    }
  };

  [[nodiscard]] std::uint32_t classOfTask(std::size_t task) const {
    return task < task_class_.size() ? task_class_[task] : kUniversalClass;
  }
  [[nodiscard]] bool classReaches(std::uint32_t cls, std::uint32_t resource) const {
    const std::vector<std::uint32_t>& rs = classes_[cls].resources;
    return std::binary_search(rs.begin(), rs.end(), resource);
  }
  std::uint32_t internReachClass(std::vector<std::uint32_t> reach);
  void dropPending(std::uint32_t cls, Tick when);
  /// Earliest time any waker chain of blocked `task` could execute (see
  /// header comment). `visited` carries the chain walked so far for cycle
  /// detection; the global nextEventTime() is the unknown-waker fallback.
  [[nodiscard]] Tick wakeBound(std::size_t task,
                               std::vector<std::size_t>& visited) const;
  /// Throw SyncTimeout if any registered blocked task overstayed
  /// sync_timeout_. Called per event from run(); cheap when nothing blocks.
  /// Non-const: it records a kReport trace instant before throwing.
  void checkSyncTimeouts();
  /// Record a hang-report instant (deadlock / sync timeout / watchdog) into
  /// the attached trace recorder, if any. Out-of-line, cold.
  void traceHangReport(std::uint64_t kind, Tick at);
  /// Decide whether this run may shard (every condition in the header
  /// comment) and, if so, union-find the reach classes into components and
  /// fill class_lane_. Returns the lane count to use (0: run sequential).
  [[nodiscard]] std::uint32_t planParallelRun();
  /// Drain disjoint components on `lane_count` worker lanes; merges lane
  /// state back and re-raises the lowest-lane error, then applies the same
  /// post-drain hang detection as the sequential loop.
  Tick runParallel(std::uint32_t lane_count);
  /// The unmodified sequential event loop, restricted to one lane's heap.
  void laneLoop(Lane& lane);

  std::vector<Event> events_;  ///< binary heap via std::push_heap/pop_heap
  Tick now_ = 0;
  std::size_t current_task_ = kNoTask;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  double wall_seconds_ = 0.0;
  std::vector<SimTask> tasks_;
  std::vector<Tick> completion_;

  // -- per-resource horizon accounting (empty unless registerResources ran) --
  // Classes hold the `when` of every pending event of tasks in that reach
  // class (a handful of entries: one per concurrently pending same-class
  // task), scanned linearly. Events with no matching alive entry — scheduled
  // from host context (kNoTask) or by tasks spawned before
  // registerResources() — are filed in the universal bucket (so they still
  // bound every horizon) but tallied separately in
  // uncounted_unaffined_pending_, otherwise they would offset the
  // alive-minus-pending blocked computation and mask a genuinely blocked
  // task.
  std::vector<ReachClass> classes_;
  std::vector<std::vector<std::uint32_t>> resource_classes_;  ///< per resource
  std::vector<std::uint32_t> task_class_;  ///< per spawned task
  std::vector<Tick> unaffined_pending_;
  std::int64_t unaffined_alive_ = 0;
  std::int64_t universal_blocked_registered_ = 0;
  std::size_t uncounted_unaffined_pending_ = 0;
  std::size_t counted_tasks_from_ = 0;  ///< ids below predate registerResources

  // -- sync-object / wake-chain tracking --
  bool sync_aware_ = true;
  std::vector<SyncObject> syncs_;
  std::vector<std::uint32_t> task_blocked_sync_;  ///< per task: sync or kNoSync
  std::vector<std::size_t> blocked_tasks_;        ///< registered blocked tasks
  std::vector<std::size_t> task_blocked_index_;   ///< position in blocked_tasks_
  std::vector<Tick> task_pending_when_;  ///< per task: pending event or kNever
  std::vector<Tick> task_blocked_at_;    ///< per task: when blockOnSync ran
  /// Per-task done flags. uint8_t, not bool: vector<bool> packs bits, and
  /// concurrent lanes completing different tasks would race on the shared
  /// words; byte elements make per-index writes race-free.
  std::vector<std::uint8_t> task_done_;

  // -- conservative-PDES lanes --
  std::uint32_t engine_lanes_ = 1;
  bool parallel_running_ = false;  ///< set across the worker-lane section
  std::uint32_t lanes_used_ = 1;
  std::vector<std::uint64_t> lane_event_counts_;
  /// Per reach class: owning lane of the class's component during the
  /// current parallel run (filled by planParallelRun).
  std::vector<std::uint32_t> class_lane_;

  // -- robustness / no-progress detection --
  bool hang_detection_ = false;
  Tick sync_timeout_ = 0;              ///< 0 = off
  std::uint64_t watchdog_limit_ = 0;   ///< 0 = off
  std::uint64_t same_tick_events_ = 0;  ///< events fired at now_ so far

  // -- deterministic trace recording --
  /// Non-null only while tracing is enabled (the owner wires it through
  /// setTraceRecorder), so every engine hook is one null check when off.
  obs::TraceRecorder* trace_ = nullptr;
};

inline Tick Engine::now() const {
  const Lane* lane = activeLane();
  return lane != nullptr ? lane->now : now_;
}

inline std::size_t Engine::currentTaskId() const {
  const Lane* lane = activeLane();
  return lane != nullptr ? lane->current_task : current_task_;
}

inline Tick Engine::nextEventTime() const {
  const Lane* lane = activeLane();
  const std::vector<Event>& heap = lane != nullptr ? lane->events : events_;
  return heap.empty() ? kNever : heap.front().when;
}

inline void SimTask::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) const noexcept {
  promise_type& p = h.promise();
  if (p.engine != nullptr) p.engine->onRootDone(p.task_id);
}

/// A serially-reusable resource (memory controller port, MPB port, the
/// baseline's single core): requests are serviced back-to-back in the order
/// they arrive in simulated time.
class ResourceTimeline {
 public:
  /// A request arriving at `arrival` needing `service` time.
  /// Returns its completion time and advances the timeline.
  Tick acquire(Tick arrival, Tick service) {
    const Tick start = arrival > next_free_ ? arrival : next_free_;
    next_free_ = start + service;
    total_busy_ += service;
    ++requests_;
    return next_free_;
  }

  [[nodiscard]] Tick nextFree() const { return next_free_; }
  [[nodiscard]] Tick totalBusy() const { return total_busy_; }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }

 private:
  Tick next_free_ = 0;
  Tick total_busy_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace hsm::sim

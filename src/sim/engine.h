// The discrete-event simulation kernel.
//
// Single-threaded and fully deterministic: simulated concurrency comes from
// C++20 coroutines (SimTask). Each simulated core runs one coroutine; every
// architectural operation computes its completion time (consulting shared
// resource timelines for contention) and suspends until then.
//
// Ordering contract: every event carries the id of the root SimTask it
// resumes (wake events for blocked tasks carry the *woken* task's id,
// recorded when the task blocked), and events fire in ascending
// (time, task_id) order. Host-scheduled events with no task context order
// after all task events at the same Tick; insertion sequence is only a final
// tie-break between such events. A root task has at most one pending event,
// so (time, task_id) is unique across the pending set and the schedule is a
// total order that does NOT depend on when events were inserted. That
// insertion-independence is load-bearing: event coalescing (below) inserts
// fewer events than the per-operation execution it replaces, so any ordering
// rule based on insertion sequence would let coalescing perturb lock-grant
// and barrier-wake order at equal-Tick collisions.
//
// Coalescing invariant (per-resource horizons): platform models sitting
// above this kernel (e.g. SccMachine's word-granular shared-memory path) may
// collapse a run of per-operation suspensions into one analytically-computed
// event, but ONLY while every skipped suspension would provably have
// executed before any other coroutine could touch the same resource
// timeline. Tasks declare at spawn time which registered resource (memory
// controller) they are affined to — meaning that resource's timeline is the
// only one they ever touch. `nextEventTimeFor(resource)` then returns the
// coalescing horizon for that resource: the earliest pending event among
// tasks affined to it plus all unaffined tasks. Whenever some task that
// could reach the resource is *blocked* — alive but with no pending event,
// i.e. parked on a lock or barrier whose wake a task on any other resource
// may schedule the moment it runs — the horizon conservatively falls back to
// the global `nextEventTime()`. Under that rule coalescing may reduce
// `eventsProcessed()` but never changes any Tick: makespan, per-task
// completion times, and every resource-timeline state transition are
// bit-identical with coalescing on or off, and with per-resource or global
// horizons.
#pragma once

#include <algorithm>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace hsm::sim {

class Engine;

/// A simulated thread of execution (one per core / logical thread).
/// Root-level only: operations are awaited inline, not via nested tasks.
class SimTask {
 public:
  struct promise_type {
    Engine* engine = nullptr;     ///< set by Engine::spawn
    std::size_t task_id = 0;

    SimTask get_return_object() {
      return SimTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    /// Notifies the engine of completion (roots can finish via symmetric
    /// transfer from a subtask, where the event's handle is not the root).
    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) const noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  SimTask() = default;
  explicit SimTask(Handle h) : handle_(h) {}
  SimTask(SimTask&& other) noexcept : handle_(other.handle_) { other.handle_ = {}; }
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = {};
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { destroy(); }

  [[nodiscard]] Handle handle() const { return handle_; }
  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
  }
  Handle handle_;
};

/// Awaitable that resumes the coroutine at an absolute simulated time.
struct ResumeAt {
  Engine& engine;
  Tick when;

  [[nodiscard]] bool await_ready() const noexcept;
  void await_suspend(std::coroutine_handle<> h) const;
  void await_resume() const noexcept {}
};

/// A nested awaitable coroutine: `co_await someSubTask()` transfers control
/// into the subtask; when it completes, control symmetric-transfers back to
/// the awaiting coroutine. Used for multi-event operations (e.g. a block of
/// uncached word transactions, each its own event so concurrent cores
/// interleave fairly at the memory controllers).
class SubTask {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;

    SubTask get_return_object() {
      return SubTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        std::coroutine_handle<> cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  explicit SubTask(Handle h) : handle_(h) {}
  SubTask(SubTask&& other) noexcept : handle_(other.handle_) { other.handle_ = {}; }
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask& operator=(SubTask&&) = delete;
  ~SubTask() {
    if (handle_) handle_.destroy();
  }

  // Awaitable interface: start the subtask, remember who to resume.
  [[nodiscard]] bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;  // symmetric transfer into the subtask
  }
  void await_resume() const noexcept {}

 private:
  Handle handle_;
};

class Engine {
 public:
  /// Sentinel returned by nextEventTime() when the queue is empty: no event
  /// will ever preempt the caller.
  static constexpr Tick kNever = static_cast<Tick>(-1);
  /// Task id attached to host-scheduled events (no coroutine context).
  /// Orders after every real task at an equal-Tick collision.
  static constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);
  /// Resource affinity of tasks that never declared one: such tasks are
  /// assumed able to touch ANY resource, so they bound every horizon.
  static constexpr std::uint32_t kNoResource = static_cast<std::uint32_t>(-1);

  [[nodiscard]] Tick now() const { return now_; }

  /// Schedule `h` to resume at absolute time `when` (clamped to now) on
  /// behalf of the currently running task (the usual suspend path).
  void schedule(Tick when, std::coroutine_handle<> h) {
    schedule(when, h, current_task_);
  }
  /// Schedule a wake for a task other than the running one (lock grants,
  /// barrier releases): `task_id` must be the id the woken coroutine runs
  /// under, recorded when it blocked, so the (time, task_id) ordering
  /// contract holds for the wake event.
  void schedule(Tick when, std::coroutine_handle<> h, std::size_t task_id);

  /// Id of the root task whose event is currently being processed
  /// (kNoTask outside run()). Lock/barrier implementations capture this
  /// when a coroutine blocks so its eventual wake is filed under it.
  [[nodiscard]] std::size_t currentTaskId() const { return current_task_; }

  /// Earliest pending event, or kNever if the queue is empty. During event
  /// processing the running event has already been popped, so this is the
  /// next thing that can execute besides the current coroutine — the global
  /// "horizon" that bounds safe event coalescing (see header comment).
  [[nodiscard]] Tick nextEventTime() const {
    return events_.empty() ? kNever : events_.front().when;
  }

  /// Declare `count` coalescable resources (memory controllers). Must be
  /// called before tasks that use resource affinities are spawned; calling
  /// it resets all affinity bookkeeping.
  void registerResources(std::uint32_t count);

  /// Per-resource coalescing horizon: earliest pending event among tasks
  /// affined to `resource` and unaffined tasks — or the global
  /// nextEventTime() while any such task is blocked without a pending event
  /// (its wake may be scheduled, by a task on any resource, as soon as the
  /// next event fires). See the header comment for the exactness argument.
  [[nodiscard]] Tick nextEventTimeFor(std::uint32_t resource) const;

  /// Pre-size the event heap (one slot per concurrently pending coroutine
  /// is enough; larger reservations just avoid early regrowth).
  void reserveEvents(std::size_t n) { events_.reserve(n); }

  /// Adopt a task and schedule its first resume at `start`. `resource`
  /// declares the only registered resource timeline this task will ever
  /// touch (kNoResource: may touch any). Returns an id usable with
  /// `completionTime`.
  std::size_t spawn(SimTask task, Tick start = 0,
                    std::uint32_t resource = kNoResource);

  /// Run until the event queue drains. Returns the time of the last event.
  Tick run();

  /// Completion time of a spawned task (valid after run()); 0 if not done.
  [[nodiscard]] Tick completionTime(std::size_t task_id) const {
    return task_id < completion_.size() ? completion_[task_id] : 0;
  }

  /// Called from SimTask's final suspend point. Only tasks spawned after
  /// registerResources() were counted alive; earlier ones must not
  /// decrement counters they never incremented.
  void onRootDone(std::size_t task_id) {
    if (task_id < completion_.size()) completion_[task_id] = now_;
    if (!resource_pending_.empty() && task_id >= counted_tasks_from_ &&
        task_id < task_resource_.size()) {
      const std::uint32_t res = task_resource_[task_id];
      if (res == kNoResource) {
        --unaffined_alive_;
      } else {
        --resource_alive_[res];
      }
    }
  }
  /// Latest completion across all spawned tasks (the makespan).
  [[nodiscard]] Tick makespan() const;

  [[nodiscard]] std::uint64_t eventsProcessed() const { return events_processed_; }

  // -- wall-clock instrumentation (simulator throughput, not simulated time) --
  /// Host seconds spent inside run() so far (accumulates across runs).
  [[nodiscard]] double wallSeconds() const { return wall_seconds_; }
  /// Events processed per host second across all run() calls so far.
  [[nodiscard]] double eventsPerSecond() const {
    return wall_seconds_ > 0.0 ? static_cast<double>(events_processed_) / wall_seconds_
                               : 0.0;
  }

  /// Convenience awaitable: suspend for `dt` picoseconds.
  [[nodiscard]] ResumeAt delay(Tick dt) { return ResumeAt{*this, now_ + dt}; }
  [[nodiscard]] ResumeAt resumeAt(Tick when) { return ResumeAt{*this, when}; }

 private:
  struct Event {
    Tick when;
    std::size_t task;        ///< root task the handle runs under (kNoTask: host)
    std::uint64_t seq;       ///< insertion sequence — tertiary tie-break only
    std::uint32_t resource;  ///< affinity resolved at schedule time
    bool tracked;            ///< filed in the per-resource pending accounting
    bool counted;            ///< task has a matching alive-counter entry
    std::coroutine_handle<> handle;
  };
  /// Min-heap order on (when, task, seq): `a` fires after `b`. The task key
  /// is the documented ordering contract; seq only breaks ties between
  /// same-task/host events, which mode changes cannot reorder.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.task != b.task) return a.task > b.task;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] std::uint32_t resourceOfTask(std::size_t task) const {
    return task < task_resource_.size() ? task_resource_[task] : kNoResource;
  }
  [[nodiscard]] std::vector<Tick>& pendingBucket(std::uint32_t resource) {
    return resource == kNoResource ? unaffined_pending_ : resource_pending_[resource];
  }
  void dropPending(std::uint32_t resource, Tick when);

  std::vector<Event> events_;  ///< binary heap via std::push_heap/pop_heap
  Tick now_ = 0;
  std::size_t current_task_ = kNoTask;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  double wall_seconds_ = 0.0;
  std::vector<SimTask> tasks_;
  std::vector<Tick> completion_;

  // -- per-resource horizon accounting (empty unless registerResources ran) --
  // Buckets hold the `when` of every pending event of tasks in that affinity
  // class (a handful of entries: one per concurrently pending same-resource
  // task), scanned linearly. Events with no matching alive entry — scheduled
  // from host context (kNoTask) or by tasks spawned before
  // registerResources() — are filed in the unaffined bucket (so they still
  // bound every horizon) but tallied separately in
  // uncounted_unaffined_pending_, otherwise they would offset the
  // alive-minus-pending blocked computation and mask a genuinely blocked
  // task.
  std::vector<std::uint32_t> task_resource_;     ///< per spawned task
  std::vector<std::vector<Tick>> resource_pending_;
  std::vector<Tick> unaffined_pending_;
  std::vector<std::int64_t> resource_alive_;     ///< spawned minus finished
  std::int64_t unaffined_alive_ = 0;
  std::size_t uncounted_unaffined_pending_ = 0;
  std::size_t counted_tasks_from_ = 0;  ///< ids below predate registerResources
};

inline void SimTask::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) const noexcept {
  promise_type& p = h.promise();
  if (p.engine != nullptr) p.engine->onRootDone(p.task_id);
}

/// A serially-reusable resource (memory controller port, MPB port, the
/// baseline's single core): requests are serviced back-to-back in the order
/// they arrive in simulated time.
class ResourceTimeline {
 public:
  /// A request arriving at `arrival` needing `service` time.
  /// Returns its completion time and advances the timeline.
  Tick acquire(Tick arrival, Tick service) {
    const Tick start = arrival > next_free_ ? arrival : next_free_;
    next_free_ = start + service;
    total_busy_ += service;
    ++requests_;
    return next_free_;
  }

  [[nodiscard]] Tick nextFree() const { return next_free_; }
  [[nodiscard]] Tick totalBusy() const { return total_busy_; }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }

 private:
  Tick next_free_ = 0;
  Tick total_busy_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace hsm::sim

// The discrete-event simulation kernel.
//
// Single-threaded and fully deterministic: simulated concurrency comes from
// C++20 coroutines (SimTask). Each simulated core runs one coroutine; every
// architectural operation computes its completion time (consulting shared
// resource timelines for contention) and suspends until then. The engine
// resumes handles in (time, insertion-sequence) order.
//
// Coalescing invariant: platform models sitting above this kernel (e.g.
// SccMachine's word-granular shared-memory path) may collapse a run of
// per-operation suspensions into one analytically-computed event, but ONLY
// when every skipped suspension would provably have executed before the
// engine's next pending event (`nextEventTime()`). Under that rule,
// coalescing may reduce `eventsProcessed()` but never changes any Tick:
// makespan, per-task completion times, and every resource-timeline state
// transition are bit-identical with coalescing on or off.
#pragma once

#include <algorithm>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace hsm::sim {

class Engine;

/// A simulated thread of execution (one per core / logical thread).
/// Root-level only: operations are awaited inline, not via nested tasks.
class SimTask {
 public:
  struct promise_type {
    Engine* engine = nullptr;     ///< set by Engine::spawn
    std::size_t task_id = 0;

    SimTask get_return_object() {
      return SimTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    /// Notifies the engine of completion (roots can finish via symmetric
    /// transfer from a subtask, where the event's handle is not the root).
    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) const noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  SimTask() = default;
  explicit SimTask(Handle h) : handle_(h) {}
  SimTask(SimTask&& other) noexcept : handle_(other.handle_) { other.handle_ = {}; }
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = {};
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { destroy(); }

  [[nodiscard]] Handle handle() const { return handle_; }
  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
  }
  Handle handle_;
};

/// Awaitable that resumes the coroutine at an absolute simulated time.
struct ResumeAt {
  Engine& engine;
  Tick when;

  [[nodiscard]] bool await_ready() const noexcept;
  void await_suspend(std::coroutine_handle<> h) const;
  void await_resume() const noexcept {}
};

/// A nested awaitable coroutine: `co_await someSubTask()` transfers control
/// into the subtask; when it completes, control symmetric-transfers back to
/// the awaiting coroutine. Used for multi-event operations (e.g. a block of
/// uncached word transactions, each its own event so concurrent cores
/// interleave fairly at the memory controllers).
class SubTask {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;

    SubTask get_return_object() {
      return SubTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        std::coroutine_handle<> cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  explicit SubTask(Handle h) : handle_(h) {}
  SubTask(SubTask&& other) noexcept : handle_(other.handle_) { other.handle_ = {}; }
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask& operator=(SubTask&&) = delete;
  ~SubTask() {
    if (handle_) handle_.destroy();
  }

  // Awaitable interface: start the subtask, remember who to resume.
  [[nodiscard]] bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;  // symmetric transfer into the subtask
  }
  void await_resume() const noexcept {}

 private:
  Handle handle_;
};

class Engine {
 public:
  /// Sentinel returned by nextEventTime() when the queue is empty: no event
  /// will ever preempt the caller.
  static constexpr Tick kNever = static_cast<Tick>(-1);

  [[nodiscard]] Tick now() const { return now_; }

  /// Schedule `h` to resume at absolute time `when` (clamped to now).
  void schedule(Tick when, std::coroutine_handle<> h) {
    if (when < now_) when = now_;
    events_.push_back(Event{when, next_seq_++, h});
    std::push_heap(events_.begin(), events_.end(), EventAfter{});
  }

  /// Earliest pending event, or kNever if the queue is empty. During event
  /// processing the running event has already been popped, so this is the
  /// next thing that can execute besides the current coroutine — the
  /// "horizon" that bounds safe event coalescing (see header comment).
  [[nodiscard]] Tick nextEventTime() const {
    return events_.empty() ? kNever : events_.front().when;
  }

  /// Pre-size the event heap (one slot per concurrently pending coroutine
  /// is enough; larger reservations just avoid early regrowth).
  void reserveEvents(std::size_t n) { events_.reserve(n); }

  /// Adopt a task and schedule its first resume at `start`.
  /// Returns an id usable with `completionTime`.
  std::size_t spawn(SimTask task, Tick start = 0);

  /// Run until the event queue drains. Returns the time of the last event.
  Tick run();

  /// Completion time of a spawned task (valid after run()); 0 if not done.
  [[nodiscard]] Tick completionTime(std::size_t task_id) const {
    return task_id < completion_.size() ? completion_[task_id] : 0;
  }

  /// Called from SimTask's final suspend point.
  void onRootDone(std::size_t task_id) {
    if (task_id < completion_.size()) completion_[task_id] = now_;
  }
  /// Latest completion across all spawned tasks (the makespan).
  [[nodiscard]] Tick makespan() const;

  [[nodiscard]] std::uint64_t eventsProcessed() const { return events_processed_; }

  // -- wall-clock instrumentation (simulator throughput, not simulated time) --
  /// Host seconds spent inside run() so far (accumulates across runs).
  [[nodiscard]] double wallSeconds() const { return wall_seconds_; }
  /// Events processed per host second across all run() calls so far.
  [[nodiscard]] double eventsPerSecond() const {
    return wall_seconds_ > 0.0 ? static_cast<double>(events_processed_) / wall_seconds_
                               : 0.0;
  }

  /// Convenience awaitable: suspend for `dt` picoseconds.
  [[nodiscard]] ResumeAt delay(Tick dt) { return ResumeAt{*this, now_ + dt}; }
  [[nodiscard]] ResumeAt resumeAt(Tick when) { return ResumeAt{*this, when}; }

 private:
  struct Event {
    Tick when;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
  };
  /// Min-heap order on (when, seq): `a` fires after `b`.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> events_;  ///< binary heap via std::push_heap/pop_heap
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  double wall_seconds_ = 0.0;
  std::vector<SimTask> tasks_;
  std::vector<Tick> completion_;
};

inline void SimTask::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) const noexcept {
  promise_type& p = h.promise();
  if (p.engine != nullptr) p.engine->onRootDone(p.task_id);
}

/// A serially-reusable resource (memory controller port, MPB port, the
/// baseline's single core): requests are serviced back-to-back in the order
/// they arrive in simulated time.
class ResourceTimeline {
 public:
  /// A request arriving at `arrival` needing `service` time.
  /// Returns its completion time and advances the timeline.
  Tick acquire(Tick arrival, Tick service) {
    const Tick start = arrival > next_free_ ? arrival : next_free_;
    next_free_ = start + service;
    total_busy_ += service;
    ++requests_;
    return next_free_;
  }

  [[nodiscard]] Tick nextFree() const { return next_free_; }
  [[nodiscard]] Tick totalBusy() const { return total_busy_; }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }

 private:
  Tick next_free_ = 0;
  Tick total_busy_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace hsm::sim

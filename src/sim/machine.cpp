#include "sim/machine.h"

#include <new>
#include <stdexcept>

namespace hsm::sim {

// ---------------------------------------------------------------------------
// SyncBarrier / TasLock
// ---------------------------------------------------------------------------

void SyncBarrier::onArrive(std::coroutine_handle<> h) {
  const Tick arrival = engine_.now() + arrive_cost_;
  if (arrival > latest_arrival_) latest_arrival_ = arrival;
  waiting_.push_back({h, engine_.currentTaskId()});
  ++arrived_;
  if (arrived_ >= participants_) {
    const Tick release = latest_arrival_ + release_cost_;
    // All wakes land at one Tick; the engine's (time, task_id) key resumes
    // them in task-id order no matter what order arrivals happened in.
    for (const Waiter& w : waiting_) engine_.schedule(release, w.handle, w.task);
    waiting_.clear();
    arrived_ = 0;
    latest_arrival_ = 0;
    ++episodes_;
  }
}

void TasLock::onAcquire(std::coroutine_handle<> h) {
  if (!held_) {
    held_ = true;
    engine_.schedule(engine_.now() + roundtrip_, h);
  } else {
    ++contention_;
    queue_.push_back({h, engine_.currentTaskId()});
  }
}

void TasLock::release() {
  if (queue_.empty()) {
    held_ = false;
    return;
  }
  const Waiter next = queue_.front();
  queue_.pop_front();
  engine_.schedule(engine_.now() + roundtrip_, next.handle, next.task);
}

// ---------------------------------------------------------------------------
// CoreContext
// ---------------------------------------------------------------------------

Tick CoreContext::now() const { return machine_.engine().now(); }

ResumeAt CoreContext::compute(std::uint64_t core_cycles) {
  const Tick dt = machine_.config().coreClock().cycles(core_cycles);
  return machine_.engine().delay(dt);
}

ResumeAt CoreContext::computeOps(std::uint64_t count, OpClass cls) {
  return compute(count * opCycles(machine_.config(), cls));
}

ResumeAt CoreContext::privRead(std::uint64_t addr, void* out, std::size_t bytes) {
  const Tick done =
      machine_.privAccessCompletion(core_, now(), addr, bytes, false, out, nullptr);
  return machine_.engine().resumeAt(done);
}

ResumeAt CoreContext::privWrite(std::uint64_t addr, const void* src, std::size_t bytes) {
  const Tick done =
      machine_.privAccessCompletion(core_, now(), addr, bytes, true, nullptr, src);
  return machine_.engine().resumeAt(done);
}

ResumeAt CoreContext::privTouch(std::uint64_t addr, std::size_t bytes, bool write) {
  const Tick done =
      machine_.privAccessCompletion(core_, now(), addr, bytes, write, nullptr, nullptr);
  return machine_.engine().resumeAt(done);
}

SubTask CoreContext::shmRead(std::uint64_t offset, void* out, std::size_t bytes) {
  const std::size_t txn = machine_.config().shm_transaction_bytes;
  std::size_t words = bytes == 0 ? 0 : (bytes + txn - 1) / txn;
  while (words > 0) {
    std::size_t serviced = 0;
    const Tick done = machine_.shmWordsCompletion(core_, now(), words, &serviced);
    co_await machine_.engine().resumeAt(done);
    words -= serviced;
  }
  if (out != nullptr) std::memcpy(out, machine_.shmData(offset), bytes);
}

SubTask CoreContext::shmWrite(std::uint64_t offset, const void* src, std::size_t bytes) {
  if (src != nullptr) std::memcpy(machine_.shmData(offset), src, bytes);
  const std::size_t txn = machine_.config().shm_transaction_bytes;
  std::size_t words = bytes == 0 ? 0 : (bytes + txn - 1) / txn;
  while (words > 0) {
    std::size_t serviced = 0;
    const Tick done = machine_.shmWordsCompletion(core_, now(), words, &serviced);
    co_await machine_.engine().resumeAt(done);
    words -= serviced;
  }
}

ResumeAt CoreContext::shmReadBulk(std::uint64_t offset, void* out, std::size_t bytes) {
  const Tick done =
      machine_.shmBulkCompletion(core_, now(), offset, bytes, false, out, nullptr);
  return machine_.engine().resumeAt(done);
}

ResumeAt CoreContext::shmWriteBulk(std::uint64_t offset, const void* src,
                                   std::size_t bytes) {
  const Tick done =
      machine_.shmBulkCompletion(core_, now(), offset, bytes, true, nullptr, src);
  return machine_.engine().resumeAt(done);
}

ResumeAt CoreContext::mpbRead(int owner_ue, std::uint64_t offset, void* out,
                              std::size_t bytes) {
  const Tick done = machine_.mpbAccessCompletion(core_, owner_ue, now(), offset, bytes,
                                                 false, out, nullptr);
  return machine_.engine().resumeAt(done);
}

ResumeAt CoreContext::mpbWrite(int owner_ue, std::uint64_t offset, const void* src,
                               std::size_t bytes) {
  const Tick done = machine_.mpbAccessCompletion(core_, owner_ue, now(), offset, bytes,
                                                 true, nullptr, src);
  return machine_.engine().resumeAt(done);
}

SyncBarrier::Awaiter CoreContext::barrier() { return machine_.barrier().arrive(); }

TasLock::Awaiter CoreContext::lockAcquire(int lock_id) {
  return machine_.lock(lock_id).acquire();
}

void CoreContext::lockRelease(int lock_id) { machine_.lock(lock_id).release(); }

// ---------------------------------------------------------------------------
// SccMachine
// ---------------------------------------------------------------------------

SccMachine::SccMachine(SccConfig config)
    : config_(config), mesh_(config_), core_clock_(config_.coreClock()),
      mesh_clock_(config_.meshClock()), dram_clock_(config_.dramClock()) {
  // The shared region grows on demand in shmalloc (up to the configured
  // capacity); reserving 64 MB eagerly would dominate small simulations.
  mpb_.resize(config_.mpbTotalBytes(), 0);
  private_mem_.resize(config_.num_cores);
  l1_.reserve(config_.num_cores);
  l2_.reserve(config_.num_cores);
  for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
    l1_.emplace_back(config_.l1_bytes, config_.cache_line_bytes);
    l2_.emplace_back(config_.l2_bytes, config_.cache_line_bytes);
  }
  mc_.resize(config_.num_mem_controllers);
  mpb_port_.resize(config_.numTiles());

  // Freeze the per-core NoC timing tables (topology never changes) and
  // pre-size the event heap for one pending event per core.
  core_mc_.reserve(config_.num_cores);
  core_mc_hop_ticks_.reserve(config_.num_cores);
  for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
    core_mc_.push_back(mesh_.controllerOfCore(c));
    core_mc_hop_ticks_.push_back(
        mesh_clock_.cycles(static_cast<std::uint64_t>(config_.mesh_hop_cycles) *
                           mesh_.hopsToController(c)));
  }
  uncached_overhead_ticks_ = core_clock_.cycles(config_.uncached_word_core_overhead_cycles);
  word_service_ticks_ = dram_clock_.cycles(config_.dram_word_service_cycles);
  // Each memory controller is a coalescing-horizon resource; launch() affines
  // every task to its core's controller — the only controller it can touch.
  engine_.registerResources(config_.num_mem_controllers);
  engine_.reserveEvents(config_.num_cores * 2);
}

std::uint64_t SccMachine::shmalloc(std::size_t bytes) {
  shm_brk_ = (shm_brk_ + 7) & ~std::uint64_t{7};
  if (shm_brk_ + bytes > config_.shared_dram_bytes) throw std::bad_alloc();
  const std::uint64_t offset = shm_brk_;
  shm_brk_ += bytes;
  if (shm_brk_ > shared_dram_.size()) {
    // Growth invalidates raw pointers; all internal accesses re-fetch
    // through shmData on every operation.
    shared_dram_.resize(shm_brk_, 0);
  }
  return offset;
}

std::uint64_t SccMachine::mpbMalloc(int ue, std::size_t bytes) {
  if (mpb_brk_.size() < config_.num_cores) mpb_brk_.resize(config_.num_cores, 0);
  auto& brk = mpb_brk_[static_cast<std::size_t>(ue)];
  brk = (brk + 7) & ~std::uint64_t{7};
  if (brk + bytes > config_.mpb_bytes_per_core) throw std::bad_alloc();
  const std::uint64_t offset = brk;
  brk += bytes;
  return offset;
}

std::uint8_t* SccMachine::mpbData(int ue, std::uint64_t offset) {
  return &mpb_[static_cast<std::size_t>(ue) * config_.mpb_bytes_per_core + offset];
}

void SccMachine::reservePrivate(int core, std::size_t bytes) {
  auto& mem = private_mem_[static_cast<std::size_t>(core)];
  if (bytes > config_.private_mem_bytes) bytes = config_.private_mem_bytes;
  if (mem.size() < bytes) mem.resize(bytes, 0);
}

std::uint8_t* SccMachine::privData(int core, std::uint64_t addr) {
  auto& mem = private_mem_[static_cast<std::size_t>(core)];
  if (addr >= mem.size()) {
    std::size_t target = mem.empty() ? 4096 : mem.size();
    while (target <= addr) target *= 2;
    if (target > config_.private_mem_bytes) target = config_.private_mem_bytes;
    if (addr >= target) throw std::out_of_range("private memory address");
    mem.resize(target, 0);
  }
  return &mem[addr];
}

void SccMachine::setupBarrier(int participants) {
  const Tick arrive = core_clock_.cycles(config_.barrier_flag_core_cycles);
  barrier_ = std::make_unique<SyncBarrier>(engine_, static_cast<std::size_t>(participants),
                                           arrive, arrive);
}

void SccMachine::launch(int num_ues, const CoreProgram& program) {
  setupBarrier(num_ues);
  ue_to_core_.resize(static_cast<std::size_t>(num_ues));
  for (int ue = 0; ue < num_ues; ++ue) {
    const std::uint32_t core = mesh_.coreForUe(ue, num_ues);
    ue_to_core_[static_cast<std::size_t>(ue)] = core;
    contexts_.push_back(
        std::make_unique<CoreContext>(*this, ue, num_ues, static_cast<int>(core)));
    engine_.spawn(program(*contexts_.back()), 0, core_mc_[core]);
  }
}

Tick SccMachine::run() {
  engine_.run();
  return engine_.makespan();
}

TasLock& SccMachine::lock(int id) {
  const auto index = static_cast<std::size_t>(id);
  while (locks_.size() <= index) {
    const Tick roundtrip = core_clock_.cycles(config_.tas_core_cycles);
    locks_.push_back(std::make_unique<TasLock>(engine_, roundtrip));
  }
  return *locks_[index];
}

Tick SccMachine::privAccessCompletion(int core, Tick start, std::uint64_t addr,
                                      std::size_t bytes, bool write, void* data_out,
                                      const void* data_in) {
  const std::size_t line = config_.cache_line_bytes;
  Cache& l1 = l1_[static_cast<std::size_t>(core)];
  Cache& l2 = l2_[static_cast<std::size_t>(core)];
  ResourceTimeline& mc = mc_[core_mc_[static_cast<std::size_t>(core)]];
  const Tick hop_one_way = core_mc_hop_ticks_[static_cast<std::size_t>(core)];

  Tick t = start;
  const std::uint64_t first_line = addr / line;
  const std::uint64_t last_line = (addr + (bytes == 0 ? 0 : bytes - 1)) / line;
  for (std::uint64_t ln = first_line; ln <= last_line; ++ln) {
    const std::uint64_t line_addr = ln * line;
    const Cache::AccessResult r1 = l1.access(line_addr, write);
    if (r1.hit) {
      t += core_clock_.cycles(config_.l1_hit_core_cycles);
      continue;
    }
    const Cache::AccessResult r2 = l2.access(line_addr, write);
    t += core_clock_.cycles(config_.l2_hit_core_cycles);
    if (r2.hit) continue;
    // Line fill from private DRAM; a dirty victim adds a write-back burst.
    const std::uint64_t bursts = r2.writeback ? 2 : 1;
    const Tick request_arrival =
        t + core_clock_.cycles(config_.dram_core_overhead_cycles) + hop_one_way;
    const Tick serviced = mc.acquire(
        request_arrival, dram_clock_.cycles(bursts * config_.dram_line_service_cycles));
    t = serviced + hop_one_way;
  }

  if (write && data_in != nullptr) {
    std::memcpy(privData(core, addr), data_in, bytes);
  } else if (!write && data_out != nullptr) {
    std::memcpy(data_out, privData(core, addr), bytes);
  }
  return t;
}

Tick SccMachine::shmAccessCompletion(int core, Tick start, std::uint64_t offset,
                                     std::size_t bytes, bool write, void* data_out,
                                     const void* data_in) {
  // Uncached: each word is an independent, blocking transaction through the
  // core's assigned memory controller.
  ResourceTimeline& mc = mc_[core_mc_[static_cast<std::size_t>(core)]];
  const Tick hop_one_way = core_mc_hop_ticks_[static_cast<std::size_t>(core)];

  const std::size_t txn = config_.shm_transaction_bytes;
  const std::size_t words = (bytes + txn - 1) / txn;
  Tick t = start;
  for (std::size_t w = 0; w < words; ++w) {
    const Tick request_arrival = t + uncached_overhead_ticks_ + hop_one_way;
    const Tick serviced = mc.acquire(request_arrival, word_service_ticks_);
    t = serviced + hop_one_way;
  }

  if (write && data_in != nullptr) {
    std::memcpy(&shared_dram_[offset], data_in, bytes);
  } else if (!write && data_out != nullptr) {
    std::memcpy(data_out, &shared_dram_[offset], bytes);
  }
  return t;
}

Tick SccMachine::shmWordsCompletion(int core, Tick start, std::size_t max_words,
                                    std::size_t* words_done) {
  const std::uint32_t mc_id = core_mc_[static_cast<std::size_t>(core)];
  ResourceTimeline& mc = mc_[mc_id];
  const Tick hop_one_way = core_mc_hop_ticks_[static_cast<std::size_t>(core)];
  const std::size_t quantum =
      config_.shm_fairness_quantum_words > 0 ? config_.shm_fairness_quantum_words : 1;

  // Safety horizon: word i+1's request is issued (in the per-word execution)
  // at word i's completion time. As long as that instant lies strictly
  // before the horizon, no coroutine that can touch this core's memory
  // controller runs in between, so computing the word here (at the same
  // recurrence, in the same order) is indistinguishable from suspending. The
  // horizon is scoped to this controller's affinity class — pending traffic
  // bound for the other three controllers no longer breaks the run, which is
  // what keeps coalescing alive in contended multi-controller sweeps
  // (Engine::nextEventTimeFor falls back to the global horizon itself while
  // any task that could reach this controller is blocked on a lock/barrier).
  // The first word is always safe: its request is issued "now", while this
  // coroutine holds the engine. With coalescing off the horizon degenerates
  // to 0, i.e. every word after the quantum is contended.
  Tick horizon = 0;
  if (config_.shm_coalescing) {
    horizon = config_.shm_per_controller_horizon ? engine_.nextEventTimeFor(mc_id)
                                                 : engine_.nextEventTime();
  }

  Tick t = start;
  std::size_t done = 0;
  while (done < max_words) {
    if (done > 0 && t >= horizon && done >= quantum) break;
    const Tick serviced =
        mc.acquire(t + uncached_overhead_ticks_ + hop_one_way, word_service_ticks_);
    t = serviced + hop_one_way;
    ++done;
  }
  shm_words_ += done;
  ++shm_word_events_;
  *words_done = done;
  return t;
}

Tick SccMachine::shmBulkCompletion(int core, Tick start, std::uint64_t offset,
                                   std::size_t bytes, bool write, void* data_out,
                                   const void* data_in) {
  // One setup round trip, then lines stream at row-buffer-hit rates.
  ResourceTimeline& mc = mc_[core_mc_[static_cast<std::size_t>(core)]];
  const Tick hop_one_way = core_mc_hop_ticks_[static_cast<std::size_t>(core)];
  const std::size_t line = config_.cache_line_bytes;
  const std::size_t lines = (bytes + line - 1) / line;
  const Tick service =
      dram_clock_.cycles(config_.dram_line_service_cycles +
                         (lines > 0 ? lines - 1 : 0) * config_.dram_burst_line_service_cycles);

  Tick t = start + core_clock_.cycles(config_.dram_core_overhead_cycles);
  const Tick serviced = mc.acquire(t + hop_one_way, service);
  t = serviced + hop_one_way;

  if (write && data_in != nullptr) {
    std::memcpy(&shared_dram_[offset], data_in, bytes);
  } else if (!write && data_out != nullptr) {
    std::memcpy(data_out, &shared_dram_[offset], bytes);
  }
  return t;
}

Tick SccMachine::mpbAccessCompletion(int core, int owner_ue, Tick start,
                                     std::uint64_t offset, std::size_t bytes, bool write,
                                     void* data_out, const void* data_in) {
  const std::uint32_t owner_core = coreOfUe(owner_ue);
  const std::uint32_t tile = mesh_.tileOfCore(owner_core);
  ResourceTimeline& port = mpb_port_[tile];
  const std::uint32_t hops =
      mesh_.hopsBetweenCores(static_cast<std::uint32_t>(core), owner_core);
  const Tick hop_one_way =
      mesh_clock_.cycles(static_cast<std::uint64_t>(config_.mesh_hop_cycles) * hops);
  const std::size_t chunk = config_.cache_line_bytes;  // MPB moves 32 B chunks
  const std::size_t chunks = (bytes + chunk - 1) / chunk;

  Tick t = start + core_clock_.cycles(config_.mpb_local_core_cycles);
  const Tick arrival = t + hop_one_way;
  const Tick serviced = port.acquire(
      arrival, mesh_clock_.cycles(chunks * config_.mpb_chunk_service_mesh_cycles));
  t = serviced + hop_one_way;

  std::uint8_t* backing = mpbData(owner_ue, offset);
  if (write && data_in != nullptr) {
    std::memcpy(backing, data_in, bytes);
  } else if (!write && data_out != nullptr) {
    std::memcpy(data_out, backing, bytes);
  }
  return t;
}

}  // namespace hsm::sim

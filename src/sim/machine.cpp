#include "sim/machine.h"

#include <algorithm>
#include <new>
#include <stdexcept>

namespace hsm::sim {
namespace {

/// Hook-site gate: null when tracing is off (the recorder is only wired into
/// the engine when SccConfig::trace_enabled), so every disabled hook costs
/// one predictable null check — the FaultInjector discipline.
inline obs::TraceRecorder* tracer(Engine& engine) {
  obs::TraceRecorder* tr = engine.traceRecorder();
  return tr != nullptr && tr->enabled() ? tr : nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// SyncBarrier / TasLock
// ---------------------------------------------------------------------------

void SyncBarrier::setParticipantTasks(std::vector<std::size_t> tasks) {
  participant_tasks_ = std::move(tasks);
  // Lifetime binding for the engine's lane partition: these are ALL the
  // tasks that will ever arrive here. An empty set is a real promise too —
  // "nobody synchronizes through this barrier" (the machine-wide barrier of
  // a sync-groups launch) — distinct from the conservative unbound state.
  engine_.bindSyncParticipants(sync_, participant_tasks_);
  if (participant_tasks_.empty()) return;  // wakers unknown: stays conservative
  // A waiter can only be released by a participant that has not arrived yet
  // (the last arrival schedules every wake). Declared episodically: each
  // arrival is an O(1) removeSyncWaker stamp, each release an O(1)
  // resetSyncEpisode — membership never gets rebuilt.
  engine_.setSyncEpisodeWakers(sync_, participant_tasks_, Engine::WakerRule::kAll);
}

void SyncBarrier::onArrive(std::coroutine_handle<> h) {
  const Tick arrival = engine_.now() + arrive_cost_;
  if (arrival > latest_arrival_) latest_arrival_ = arrival;
  const std::size_t task = engine_.currentTaskId();
  waiting_.push_back({h, task, arrival});
  if (task != Engine::kNoTask) engine_.blockOnSync(task, sync_);
  // Hot path: an arrived participant can no longer be the releasing waker —
  // drop it in place instead of recomputing the whole set.
  if (!participant_tasks_.empty()) engine_.removeSyncWaker(sync_, task);
  ++arrived_;
  if (arrived_ >= participants_) {
    const Tick release = latest_arrival_ + release_cost_;
    // Happens-before: every arrival precedes every departure. Join all
    // participants' vector clocks and redistribute before anyone resumes.
    if (drf_ != nullptr && !waiting_.empty()) {
      std::vector<std::size_t> tasks;
      tasks.reserve(waiting_.size());
      for (const Waiter& w : waiting_) tasks.push_back(w.task);
      drf_->barrierRelease(tasks.data(), tasks.size());
    }
    // All wakes land at one Tick; the engine's (time, task_id) key resumes
    // them in task-id order no matter what order arrivals happened in.
    // Each schedule also clears the waiter's blocked-on-sync state.
    // Every waiter is a barrier participant, hence in the recording task's
    // own lane component — cross-task trace writes here are lane-safe.
    obs::TraceRecorder* tr = tracer(engine_);
    for (const Waiter& w : waiting_) {
      if (tr != nullptr) {
        tr->record(w.task, obs::TraceEvent{w.arrived, release, sync_, episodes_, 0,
                                           obs::kNoTraceResource,
                                           obs::TraceEventKind::kBarrierWait});
      }
      engine_.schedule(release, w.handle, w.task);
    }
    waiting_.clear();
    arrived_ = 0;
    latest_arrival_ = 0;
    ++episodes_;
    // Next episode: every participant is a waker again — one counter bump.
    if (!participant_tasks_.empty()) engine_.resetSyncEpisode(sync_);
  }
}

void TasLock::onAcquire(std::coroutine_handle<> h) {
  if (!held_) {
    held_ = true;
    holder_ = engine_.currentTaskId();
    // Happens-before: the grant acquires this lock's sync clock (the last
    // releaser's writes become ordered before the new holder's accesses).
    if (drf_ != nullptr && holder_ != Engine::kNoTask) {
      drf_->acquire(holder_, sync_);
    }
    // While held, only the holder can start the grant chain.
    if (holder_ != Engine::kNoTask) {
      engine_.setSyncWakers(sync_, {holder_});
    } else {
      engine_.clearSyncWakers(sync_);
    }
    if (obs::TraceRecorder* tr = tracer(engine_)) {
      // Uncontended grant: the wait span is exactly the register round trip.
      tr->record(holder_, obs::TraceEvent{engine_.now(), engine_.now() + roundtrip_,
                                          sync_, 0, 0, obs::kNoTraceResource,
                                          obs::TraceEventKind::kLockWait});
    }
    engine_.schedule(engine_.now() + roundtrip_, h);
  } else {
    ++contention_;
    const std::size_t task = engine_.currentTaskId();
    queue_.push_back({h, task, engine_.now()});
    if (task != Engine::kNoTask) engine_.blockOnSync(task, sync_);
  }
}

void TasLock::release() {
  // Happens-before: the releaser's clock becomes this lock's sync clock —
  // recorded before any handoff so the next holder's acquire edge sees it.
  if (drf_ != nullptr) {
    const std::size_t releaser = engine_.currentTaskId();
    if (releaser != Engine::kNoTask) drf_->release(releaser, sync_);
  }
  obs::TraceRecorder* tr = tracer(engine_);
  if (tr != nullptr) {
    tr->record(engine_.currentTaskId(),
               obs::TraceEvent{engine_.now(), engine_.now(), sync_, 0, 0,
                               obs::kNoTraceResource,
                               obs::TraceEventKind::kLockRelease});
  }
  if (queue_.empty()) {
    held_ = false;
    holder_ = Engine::kNoTask;
    // No waiters and no holder: nothing blocked on this object, an empty
    // known waker set is vacuously sound.
    engine_.setSyncWakers(sync_, {});
    return;
  }
  const Waiter next = queue_.front();
  queue_.pop_front();
  holder_ = next.task;
  // Contended handoff: the queued waiter's acquire edge lands now (its
  // onAcquire ran before the grant, when the clock was older).
  if (drf_ != nullptr && next.task != Engine::kNoTask) {
    drf_->acquire(next.task, sync_);
  }
  if (tr != nullptr && next.task != Engine::kNoTask) {
    // Contended grant: request Tick .. ownership transfer. The next holder
    // shares this lock's sync object with the releaser, so they are in the
    // same lane component — the cross-task write is lane-safe.
    tr->record(next.task, obs::TraceEvent{next.arrived, engine_.now() + roundtrip_,
                                          sync_, 1, 0, obs::kNoTraceResource,
                                          obs::TraceEventKind::kLockWait});
  }
  engine_.schedule(engine_.now() + roundtrip_, next.handle, next.task);
  if (holder_ != Engine::kNoTask) {
    engine_.setSyncWakers(sync_, {holder_});
  } else {
    engine_.clearSyncWakers(sync_);
  }
}

// ---------------------------------------------------------------------------
// CoreContext
// ---------------------------------------------------------------------------

Tick CoreContext::now() const { return machine_.engine().now(); }

SubTask CoreContext::faultPreOp() {
  FaultInjector& inj = machine_.faultInjector();
  const std::uint64_t op = timed_op_seq_++;
  const Tick freeze = inj.freezeTicks(ue_, op, now());
  if (freeze == FaultInjector::kFreezeForever) {
    // Permanent wedge: suspend with no pending event and no sync object.
    // The heap eventually drains and the engine's deadlock detector reports
    // this task as frozen instead of letting the run end silently.
    inj.noteInjected(FaultClass::kCoreFreeze);
    if (obs::TraceRecorder* tr = tracer(machine_.engine())) {
      tr->record(machine_.engine().currentTaskId(),
                 obs::TraceEvent{now(), now(), 1, 0, 0, obs::kNoTraceResource,
                                 obs::TraceEventKind::kFreeze});
    }
    co_await FreezeForever{};
  } else if (freeze > 0) {
    inj.noteInjected(FaultClass::kCoreFreeze);
    ++inj.stats().freezes;
    if (obs::TraceRecorder* tr = tracer(machine_.engine())) {
      tr->record(machine_.engine().currentTaskId(),
                 obs::TraceEvent{now(), now() + freeze, 0, 0, 0,
                                 obs::kNoTraceResource,
                                 obs::TraceEventKind::kFreeze});
    }
    co_await machine_.engine().delay(freeze);
  }
}

ResumeAt CoreContext::compute(std::uint64_t core_cycles) {
  const Tick dt = machine_.config().coreClock().cycles(core_cycles);
  return machine_.engine().delay(dt);
}

ResumeAt CoreContext::computeOps(std::uint64_t count, OpClass cls) {
  return compute(count * opCycles(machine_.config(), cls));
}

ResumeAt CoreContext::privRead(std::uint64_t addr, void* out, std::size_t bytes) {
  const Tick done =
      machine_.privAccessCompletion(core_, now(), addr, bytes, false, out, nullptr);
  return machine_.engine().resumeAt(done);
}

ResumeAt CoreContext::privWrite(std::uint64_t addr, const void* src, std::size_t bytes) {
  const Tick done =
      machine_.privAccessCompletion(core_, now(), addr, bytes, true, nullptr, src);
  return machine_.engine().resumeAt(done);
}

ResumeAt CoreContext::privTouch(std::uint64_t addr, std::size_t bytes, bool write) {
  const Tick done =
      machine_.privAccessCompletion(core_, now(), addr, bytes, write, nullptr, nullptr);
  return machine_.engine().resumeAt(done);
}

SubTask CoreContext::shmRead(std::uint64_t offset, void* out, std::size_t bytes) {
  // Race check once per logical operation, at initiation (before any retry
  // or coalescing-dependent resumption): the checked stream is identical
  // across coalescing modes.
  machine_.noteDrfShm(offset, bytes, /*write=*/false);
  if (machine_.faultsActive()) co_await faultPreOp();
  if (machine_.shmCached(offset)) {
    co_await swcacheRw(offset, out, nullptr, bytes, false);
    co_return;
  }
  obs::TraceRecorder* tr = tracer(machine_.engine());
  const Tick t0 = tr != nullptr ? now() : 0;
  const std::size_t txn = machine_.config().shm_transaction_bytes;
  const std::size_t total_words = bytes == 0 ? 0 : (bytes + txn - 1) / txn;
  std::size_t words = total_words;
  std::uint64_t cur = offset;
  while (words > 0) {
    std::size_t serviced = 0;
    const Tick done =
        machine_.shmWordsAtCompletion(core_, now(), cur, words, &serviced);
    co_await machine_.engine().resumeAt(done);
    words -= serviced;
    cur += static_cast<std::uint64_t>(serviced) * txn;
  }
  if (out != nullptr) std::memcpy(out, machine_.shmData(offset), bytes);
  machine_.noteShmWords(core_, offset, bytes, /*write=*/false);
  if (tr != nullptr) {
    tr->record(machine_.engine().currentTaskId(),
               obs::TraceEvent{t0, now(), offset, total_words, 0,
                               machine_.shmControllerOf(core_, offset),
                               obs::TraceEventKind::kShmRead});
  }
}

SubTask CoreContext::shmWrite(std::uint64_t offset, const void* src, std::size_t bytes) {
  // Once at initiation — NOT per retry attempt: a fault-retried store is one
  // logical write, and repair traffic must not look like extra accesses.
  machine_.noteDrfShm(offset, bytes, /*write=*/true);
  FaultInjector& inj = machine_.faultInjector();
  if (inj.anyArmed()) co_await faultPreOp();
  if (machine_.shmCached(offset)) {
    co_await swcacheRw(offset, nullptr, src, bytes, true);
    co_return;
  }
  obs::TraceRecorder* tr = tracer(machine_.engine());
  const Tick t0 = tr != nullptr ? now() : 0;
  const std::size_t txn = machine_.config().shm_transaction_bytes;
  const std::size_t total_words = bytes == 0 ? 0 : (bytes + txn - 1) / txn;
  const auto record_span = [&](std::uint32_t attempts) {
    if (tr == nullptr) return;
    tr->record(machine_.engine().currentTaskId(),
               obs::TraceEvent{t0, now(), offset, total_words, attempts,
                               machine_.shmControllerOf(core_, offset),
                               obs::TraceEventKind::kShmWrite});
  };
  // Transient shared-DRAM word-flip faults: retry with checksum-verify and
  // exponential backoff. The verify (an exact compare of the landed bytes
  // against the intended payload) is modeled untimed — redundancy the MIU's
  // store path provides — so zero-rate fault runs add no simulated time.
  const bool check = inj.anyArmed() && inj.armed(FaultClass::kShmWrite) &&
                     src != nullptr && bytes > 0;
  const std::uint64_t xfer = check ? shm_write_seq_++ : 0;
  std::uint64_t faults_here = 0;
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (src != nullptr) std::memcpy(machine_.shmData(offset), src, bytes);
    std::size_t words = total_words;
    std::uint64_t cur = offset;
    while (words > 0) {
      std::size_t serviced = 0;
      const Tick done =
          machine_.shmWordsAtCompletion(core_, now(), cur, words, &serviced);
      co_await machine_.engine().resumeAt(done);
      words -= serviced;
      cur += static_cast<std::uint64_t>(serviced) * txn;
    }
    machine_.noteShmWords(core_, offset, bytes, /*write=*/true);
    if (!check) {
      record_span(attempt + 1);
      co_return;
    }
    const std::uint64_t draw = (xfer << 16) ^ attempt;
    if (inj.fires(FaultClass::kShmWrite, static_cast<std::uint64_t>(ue_), draw,
                  now())) {
      inj.corruptBytes(machine_.shmData(offset), bytes, FaultClass::kShmWrite,
                       static_cast<std::uint64_t>(ue_), draw);
      inj.noteInjected(FaultClass::kShmWrite);
      ++faults_here;
      if (tr != nullptr) {
        tr->record(machine_.engine().currentTaskId(),
                   obs::TraceEvent{now(), now(),
                                   static_cast<std::uint64_t>(FaultClass::kShmWrite),
                                   0, 0, obs::kNoTraceResource,
                                   obs::TraceEventKind::kFaultInject});
      }
    }
    if (std::memcmp(machine_.shmData(offset), src, bytes) == 0) {
      constexpr auto kCls = static_cast<std::size_t>(FaultClass::kShmWrite);
      inj.stats().recovered[kCls] += faults_here;
      record_span(attempt + 1);
      co_return;
    }
    if (attempt >= inj.maxRetries()) {
      // Retry budget exhausted: record it for the harness to gate on (no
      // exception — coroutine frames must not throw; see engine.h).
      ++inj.stats().unrecovered;
      record_span(attempt + 1);
      co_return;
    }
    ++inj.stats().retries;
    if (tr != nullptr) {
      tr->record(machine_.engine().currentTaskId(),
                 obs::TraceEvent{now(), now(),
                                 static_cast<std::uint64_t>(FaultClass::kShmWrite),
                                 0, 0, obs::kNoTraceResource,
                                 obs::TraceEventKind::kFaultRetry});
    }
    co_await machine_.engine().delay(inj.backoff(attempt));
  }
}

SubTask CoreContext::swcacheRw(std::uint64_t offset, void* out, const void* src,
                               std::size_t bytes, bool write) {
  // Functional phase: serve the whole access against the line store now (one
  // atomic snapshot, the same granularity the uncached path's single memcpy
  // has — racy interleavings below sync granularity are outside the DRF
  // contract either way). The plan records what to charge.
  obs::TraceRecorder* tr = tracer(machine_.engine());
  const Tick t0 = tr != nullptr ? now() : 0;
  const SwCache::AccessPlan plan =
      machine_.swcacheAccess(core_, offset, bytes, write, out, src);
  // Timed phase: aggregated hit-touch time first, then the batched line
  // transfers, then written-through words (write-through policy only).
  const Tick hit_ticks = machine_.swcacheHitTicks(plan.hit_touches);
  if (hit_ticks > 0) co_await machine_.engine().delay(hit_ticks);
  std::size_t lines = plan.line_txns;
  while (lines > 0) {
    std::size_t serviced = 0;
    const Tick done = machine_.swcacheLinesCompletion(core_, now(), lines, &serviced);
    co_await machine_.engine().resumeAt(done);
    lines -= serviced;
  }
  std::size_t words = plan.writethrough_words;
  while (words > 0) {
    std::size_t serviced = 0;
    const Tick done = machine_.shmWordsCompletion(core_, now(), words, &serviced);
    co_await machine_.engine().resumeAt(done);
    words -= serviced;
  }
  machine_.noteShmSwcache(core_, offset, write, plan.hit_touches, plan.line_txns);
  if (tr != nullptr) {
    tr->record(machine_.engine().currentTaskId(),
               obs::TraceEvent{t0, now(), offset, plan.hit_touches, plan.line_txns,
                               machine_.controllerOfCore(core_),
                               write ? obs::TraceEventKind::kSwcacheWrite
                                     : obs::TraceEventKind::kSwcacheRead});
  }
}

SubTask CoreContext::swcacheLines(std::size_t lines) {
  while (lines > 0) {
    std::size_t serviced = 0;
    const Tick done = machine_.swcacheLinesCompletion(core_, now(), lines, &serviced);
    co_await machine_.engine().resumeAt(done);
    lines -= serviced;
  }
}

SubTask CoreContext::swcacheRelease() {
  FaultInjector& inj = machine_.faultInjector();
  obs::TraceRecorder* tr = tracer(machine_.engine());
  const Tick t0 = tr != nullptr ? now() : 0;
  std::size_t lines = 0;
  if (inj.anyArmed() && inj.armed(FaultClass::kSwcacheFlush)) {
    lines = machine_.swcacheFlushChecked(core_, flush_seq_++);
  } else {
    lines = machine_.swcacheFlush(core_);
  }
  co_await swcacheLines(lines);
  if (tr != nullptr) {
    tr->record(machine_.engine().currentTaskId(),
               obs::TraceEvent{t0, now(), lines, 0, 0,
                               machine_.controllerOfCore(core_),
                               obs::TraceEventKind::kSwcacheFlush});
  }
}

bool CoreContext::BulkAwaiter::await_ready() const noexcept {
  if (fenced_) return fenced_.await_ready();
  // Zero-cost completions continue inline, exactly like ResumeAt.
  return when_ <= engine_.now();
}

std::coroutine_handle<> CoreContext::BulkAwaiter::await_suspend(
    std::coroutine_handle<> h) {
  if (fenced_) return fenced_.await_suspend(h);
  engine_.schedule(when_, h);
  return std::noop_coroutine();
}

SubTask CoreContext::bulkFenced(std::uint64_t offset, void* out, const void* src,
                                std::size_t bytes, bool write) {
  // Bulk read: write back overlapping dirty lines so the burst observes this
  // core's own program-order-earlier writes (clean copies may stay). Bulk
  // write: additionally drop every overlapping line — the burst supersedes
  // any cached copy, and the prior write-back keeps untouched bytes of
  // partially-overlapped lines correct.
  obs::TraceRecorder* tr = tracer(machine_.engine());
  const Tick t0 = tr != nullptr ? now() : 0;
  const std::size_t line = machine_.config().cache_line_bytes;
  const std::uint64_t total_lines = bytes == 0 ? 0 : (bytes + line - 1) / line;
  const auto record_span = [&]() {
    if (tr == nullptr) return;
    tr->record(machine_.engine().currentTaskId(),
               obs::TraceEvent{t0, now(), offset, total_lines, 0,
                               machine_.shmControllerOf(core_, offset),
                               write ? obs::TraceEventKind::kShmBulkWrite
                                     : obs::TraceEventKind::kShmBulkRead});
  };
  if (machine_.swcacheActive()) {
    co_await swcacheLines(machine_.swcacheSyncRange(core_, offset, bytes, write));
  }
  FaultInjector& inj = machine_.faultInjector();
  const bool check = inj.anyArmed() && inj.armed(FaultClass::kShmWrite) && write &&
                     src != nullptr && bytes > 0;
  if (!check) {
    const Tick done =
        machine_.shmBulkCompletion(core_, now(), offset, bytes, write, out, src);
    co_await machine_.engine().resumeAt(done);
    record_span();
    co_return;
  }
  // Bulk writes share the shm_write fault class and the same verify/retry/
  // backoff discipline as the word path above.
  const std::uint64_t xfer = shm_write_seq_++;
  std::uint64_t faults_here = 0;
  for (std::uint32_t attempt = 0;; ++attempt) {
    const Tick done =
        machine_.shmBulkCompletion(core_, now(), offset, bytes, true, nullptr, src);
    co_await machine_.engine().resumeAt(done);
    const std::uint64_t draw = (xfer << 16) ^ attempt;
    if (inj.fires(FaultClass::kShmWrite, static_cast<std::uint64_t>(ue_), draw,
                  now())) {
      inj.corruptBytes(machine_.shmData(offset), bytes, FaultClass::kShmWrite,
                       static_cast<std::uint64_t>(ue_), draw);
      inj.noteInjected(FaultClass::kShmWrite);
      ++faults_here;
      if (tr != nullptr) {
        tr->record(machine_.engine().currentTaskId(),
                   obs::TraceEvent{now(), now(),
                                   static_cast<std::uint64_t>(FaultClass::kShmWrite),
                                   0, 0, obs::kNoTraceResource,
                                   obs::TraceEventKind::kFaultInject});
      }
    }
    if (std::memcmp(machine_.shmData(offset), src, bytes) == 0) {
      constexpr auto kCls = static_cast<std::size_t>(FaultClass::kShmWrite);
      inj.stats().recovered[kCls] += faults_here;
      record_span();
      co_return;
    }
    if (attempt >= inj.maxRetries()) {
      ++inj.stats().unrecovered;
      record_span();
      co_return;
    }
    ++inj.stats().retries;
    if (tr != nullptr) {
      tr->record(machine_.engine().currentTaskId(),
                 obs::TraceEvent{now(), now(),
                                 static_cast<std::uint64_t>(FaultClass::kShmWrite),
                                 0, 0, obs::kNoTraceResource,
                                 obs::TraceEventKind::kFaultRetry});
    }
    co_await machine_.engine().delay(inj.backoff(attempt));
  }
}

CoreContext::BulkAwaiter CoreContext::shmReadBulk(std::uint64_t offset, void* out,
                                                  std::size_t bytes) {
  machine_.noteDrfShm(offset, bytes, /*write=*/false);
  if (machine_.swcacheActive()) {
    return BulkAwaiter(machine_.engine(), bulkFenced(offset, out, nullptr, bytes, false));
  }
  const Tick t0 = now();
  const Tick done =
      machine_.shmBulkCompletion(core_, t0, offset, bytes, false, out, nullptr);
  if (obs::TraceRecorder* tr = tracer(machine_.engine())) {
    const std::size_t line = machine_.config().cache_line_bytes;
    tr->record(machine_.engine().currentTaskId(),
               obs::TraceEvent{t0, done, offset,
                               bytes == 0 ? 0 : (bytes + line - 1) / line, 0,
                               machine_.shmControllerOf(core_, offset),
                               obs::TraceEventKind::kShmBulkRead});
  }
  return BulkAwaiter(machine_.engine(), done);
}

CoreContext::BulkAwaiter CoreContext::shmWriteBulk(std::uint64_t offset,
                                                   const void* src, std::size_t bytes) {
  machine_.noteDrfShm(offset, bytes, /*write=*/true);
  if (machine_.swcacheActive() || machine_.faultsActive()) {
    return BulkAwaiter(machine_.engine(), bulkFenced(offset, nullptr, src, bytes, true));
  }
  const Tick t0 = now();
  const Tick done =
      machine_.shmBulkCompletion(core_, t0, offset, bytes, true, nullptr, src);
  if (obs::TraceRecorder* tr = tracer(machine_.engine())) {
    const std::size_t line = machine_.config().cache_line_bytes;
    tr->record(machine_.engine().currentTaskId(),
               obs::TraceEvent{t0, done, offset,
                               bytes == 0 ? 0 : (bytes + line - 1) / line, 0,
                               machine_.shmControllerOf(core_, offset),
                               obs::TraceEventKind::kShmBulkWrite});
  }
  return BulkAwaiter(machine_.engine(), done);
}

SubTask CoreContext::mpbRead(int owner_ue, std::uint64_t offset, void* out,
                             std::size_t bytes) {
  machine_.noteDrfMpb(owner_ue, offset, bytes, /*write=*/false);
  FaultInjector& inj = machine_.faultInjector();
  if (inj.anyArmed()) co_await faultPreOp();
  obs::TraceRecorder* tr = tracer(machine_.engine());
  const Tick t0 = tr != nullptr ? now() : 0;
  const std::size_t chunk = machine_.config().cache_line_bytes;
  const std::size_t total_chunks = bytes == 0 ? 0 : (bytes + chunk - 1) / chunk;
  const auto record_span = [&]() {
    if (tr == nullptr) return;
    tr->record(machine_.engine().currentTaskId(),
               obs::TraceEvent{t0, now(), offset, total_chunks,
                               static_cast<std::uint64_t>(owner_ue),
                               machine_.mpbPortIdOf(owner_ue),
                               obs::TraceEventKind::kMpbGet});
  };
  // Transient MPB transfer faults (rcce::get is a thin wrapper over this
  // path): the landed destination buffer is corrupted; an untimed exact
  // compare against the MPB source detects it and the transfer retries with
  // exponential backoff in simulated ticks.
  const bool check = inj.anyArmed() && inj.armed(FaultClass::kMpbTransfer) &&
                     out != nullptr && bytes > 0;
  const std::uint64_t xfer = check ? mpb_xfer_seq_++ : 0;
  std::uint64_t faults_here = 0;
  for (std::uint32_t attempt = 0;; ++attempt) {
    std::size_t chunks = total_chunks;
    while (chunks > 0) {
      std::size_t serviced = 0;
      const Tick done =
          machine_.mpbChunksCompletion(core_, ue_, owner_ue, now(), chunks, &serviced);
      co_await machine_.engine().resumeAt(done);
      chunks -= serviced;
    }
    if (out != nullptr) std::memcpy(out, machine_.mpbData(owner_ue, offset), bytes);
    if (!check) {
      record_span();
      co_return;
    }
    const std::uint64_t draw = (xfer << 16) ^ attempt;
    if (inj.fires(FaultClass::kMpbTransfer, static_cast<std::uint64_t>(ue_), draw,
                  now())) {
      inj.corruptBytes(out, bytes, FaultClass::kMpbTransfer,
                       static_cast<std::uint64_t>(ue_), draw);
      inj.noteInjected(FaultClass::kMpbTransfer);
      ++faults_here;
      if (tr != nullptr) {
        tr->record(machine_.engine().currentTaskId(),
                   obs::TraceEvent{now(), now(),
                                   static_cast<std::uint64_t>(FaultClass::kMpbTransfer),
                                   0, 0, obs::kNoTraceResource,
                                   obs::TraceEventKind::kFaultInject});
      }
    }
    if (std::memcmp(out, machine_.mpbData(owner_ue, offset), bytes) == 0) {
      constexpr auto kCls = static_cast<std::size_t>(FaultClass::kMpbTransfer);
      inj.stats().recovered[kCls] += faults_here;
      record_span();
      co_return;
    }
    if (attempt >= inj.maxRetries()) {
      ++inj.stats().unrecovered;
      record_span();
      co_return;
    }
    ++inj.stats().retries;
    if (tr != nullptr) {
      tr->record(machine_.engine().currentTaskId(),
                 obs::TraceEvent{now(), now(),
                                 static_cast<std::uint64_t>(FaultClass::kMpbTransfer),
                                 0, 0, obs::kNoTraceResource,
                                 obs::TraceEventKind::kFaultRetry});
    }
    co_await machine_.engine().delay(inj.backoff(attempt));
  }
}

SubTask CoreContext::mpbWrite(int owner_ue, std::uint64_t offset, const void* src,
                              std::size_t bytes) {
  machine_.noteDrfMpb(owner_ue, offset, bytes, /*write=*/true);
  FaultInjector& inj = machine_.faultInjector();
  if (inj.anyArmed()) co_await faultPreOp();
  obs::TraceRecorder* tr = tracer(machine_.engine());
  const Tick t0 = tr != nullptr ? now() : 0;
  const std::size_t chunk = machine_.config().cache_line_bytes;
  const std::size_t total_chunks = bytes == 0 ? 0 : (bytes + chunk - 1) / chunk;
  const auto record_span = [&]() {
    if (tr == nullptr) return;
    tr->record(machine_.engine().currentTaskId(),
               obs::TraceEvent{t0, now(), offset, total_chunks,
                               static_cast<std::uint64_t>(owner_ue),
                               machine_.mpbPortIdOf(owner_ue),
                               obs::TraceEventKind::kMpbPut});
  };
  // Transient MPB transfer faults on the put side (rcce::put wraps this):
  // the landed MPB bytes are corrupted, detected by comparing against the
  // source payload, and the transfer retries — same discipline as mpbRead.
  const bool check = inj.anyArmed() && inj.armed(FaultClass::kMpbTransfer) &&
                     src != nullptr && bytes > 0;
  const std::uint64_t xfer = check ? mpb_xfer_seq_++ : 0;
  std::uint64_t faults_here = 0;
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (src != nullptr) std::memcpy(machine_.mpbData(owner_ue, offset), src, bytes);
    std::size_t chunks = total_chunks;
    while (chunks > 0) {
      std::size_t serviced = 0;
      const Tick done =
          machine_.mpbChunksCompletion(core_, ue_, owner_ue, now(), chunks, &serviced);
      co_await machine_.engine().resumeAt(done);
      chunks -= serviced;
    }
    if (!check) {
      record_span();
      co_return;
    }
    const std::uint64_t draw = (xfer << 16) ^ attempt;
    if (inj.fires(FaultClass::kMpbTransfer, static_cast<std::uint64_t>(ue_), draw,
                  now())) {
      inj.corruptBytes(machine_.mpbData(owner_ue, offset), bytes,
                       FaultClass::kMpbTransfer, static_cast<std::uint64_t>(ue_),
                       draw);
      inj.noteInjected(FaultClass::kMpbTransfer);
      ++faults_here;
      if (tr != nullptr) {
        tr->record(machine_.engine().currentTaskId(),
                   obs::TraceEvent{now(), now(),
                                   static_cast<std::uint64_t>(FaultClass::kMpbTransfer),
                                   0, 0, obs::kNoTraceResource,
                                   obs::TraceEventKind::kFaultInject});
      }
    }
    if (std::memcmp(machine_.mpbData(owner_ue, offset), src, bytes) == 0) {
      constexpr auto kCls = static_cast<std::size_t>(FaultClass::kMpbTransfer);
      inj.stats().recovered[kCls] += faults_here;
      record_span();
      co_return;
    }
    if (attempt >= inj.maxRetries()) {
      ++inj.stats().unrecovered;
      record_span();
      co_return;
    }
    ++inj.stats().retries;
    if (tr != nullptr) {
      tr->record(machine_.engine().currentTaskId(),
                 obs::TraceEvent{now(), now(),
                                 static_cast<std::uint64_t>(FaultClass::kMpbTransfer),
                                 0, 0, obs::kNoTraceResource,
                                 obs::TraceEventKind::kFaultRetry});
    }
    co_await machine_.engine().delay(inj.backoff(attempt));
  }
}

bool CoreContext::SyncAwaiter::await_ready() {
  if (reconcile_) return reconcile_.await_ready();
  if (op_ == Op::kRelease) {
    // No reconciliation: release is synchronous, exactly the pre-swcache
    // behavior — perform it here and never suspend.
    ctx_.machine_.lock(lock_id_).release();
    return true;
  }
  return false;
}

std::coroutine_handle<> CoreContext::SyncAwaiter::await_suspend(
    std::coroutine_handle<> h) {
  if (reconcile_) return reconcile_.await_suspend(h);
  if (op_ == Op::kBarrier) {
    ctx_.machine_.barrierFor(ctx_.ue_).arrive().await_suspend(h);
  } else {
    ctx_.machine_.lock(lock_id_).acquire().await_suspend(h);
  }
  return std::noop_coroutine();
}

CoreContext::SyncAwaiter CoreContext::barrier() {
  return SyncAwaiter(*this, SyncAwaiter::Op::kBarrier, 0,
                     machine_.swcacheActive() ? barrierReconcile() : SubTask{});
}

CoreContext::SyncAwaiter CoreContext::lockAcquire(int lock_id) {
  return SyncAwaiter(*this, SyncAwaiter::Op::kAcquire, lock_id,
                     machine_.swcacheActive() ? lockAcquireReconcile(lock_id)
                                               : SubTask{});
}

CoreContext::SyncAwaiter CoreContext::lockRelease(int lock_id) {
  return SyncAwaiter(*this, SyncAwaiter::Op::kRelease, lock_id,
                     machine_.swcacheActive() ? lockReleaseReconcile(lock_id)
                                               : SubTask{});
}

SubTask CoreContext::barrierReconcile() {
  // A barrier is both a release (writes before it must become visible) and
  // an acquire (reads after it must not see stale lines).
  co_await swcacheRelease();
  co_await machine_.barrierFor(ue_).arrive();
  machine_.swcacheAcquire(core_);
}

SubTask CoreContext::lockAcquireReconcile(int lock_id) {
  co_await machine_.lock(lock_id).acquire();
  machine_.swcacheAcquire(core_);
}

SubTask CoreContext::lockReleaseReconcile(int lock_id) {
  // The flush completes BEFORE the lock is released: the next holder's
  // acquire-side invalidation then refills from reconciled DRAM.
  co_await swcacheRelease();
  machine_.lock(lock_id).release();
}

// ---------------------------------------------------------------------------
// SccMachine
// ---------------------------------------------------------------------------

SccMachine::SccMachine(SccConfig config)
    : config_(config), mesh_(config_), core_clock_(config_.coreClock()),
      mesh_clock_(config_.meshClock()), dram_clock_(config_.dramClock()) {
  // The shared region grows on demand in shmalloc (up to the configured
  // capacity); reserving 64 MB eagerly would dominate small simulations.
  mpb_.resize(config_.mpbTotalBytes(), 0);
  private_mem_.resize(config_.num_cores);
  l1_.reserve(config_.num_cores);
  l2_.reserve(config_.num_cores);
  for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
    l1_.emplace_back(config_.l1_bytes, config_.cache_line_bytes);
    l2_.emplace_back(config_.l2_bytes, config_.cache_line_bytes);
  }
  mc_.resize(config_.num_mem_controllers);
  mpb_port_.resize(config_.numTiles());

  // Freeze the per-core NoC timing tables (topology never changes) and
  // pre-size the event heap for one pending event per core.
  core_mc_.reserve(config_.num_cores);
  core_mc_hop_ticks_.reserve(config_.num_cores);
  core_all_mc_hop_ticks_.reserve(config_.num_cores * config_.num_mem_controllers);
  for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
    core_mc_.push_back(mesh_.controllerOfCore(c));
    core_mc_hop_ticks_.push_back(
        mesh_clock_.cycles(static_cast<std::uint64_t>(config_.mesh_hop_cycles) *
                           mesh_.hopsToController(c)));
    for (std::uint32_t mc = 0; mc < config_.num_mem_controllers; ++mc) {
      core_all_mc_hop_ticks_.push_back(mesh_clock_.cycles(
          static_cast<std::uint64_t>(config_.mesh_hop_cycles) *
          mesh_.hopsFromCoreToController(c, mc)));
    }
  }
  mc_traffic_.assign(config_.num_mem_controllers, 0);
  uncached_overhead_ticks_ = core_clock_.cycles(config_.uncached_word_core_overhead_cycles);
  word_service_ticks_ = dram_clock_.cycles(config_.dram_word_service_cycles);
  mpb_overhead_ticks_ = core_clock_.cycles(config_.mpb_local_core_cycles);
  chunk_service_ticks_ = mesh_clock_.cycles(config_.mpb_chunk_service_mesh_cycles);
  swcache_hit_ticks_ = core_clock_.cycles(config_.swcache_hit_core_cycles);
  swcache_line_overhead_ticks_ =
      core_clock_.cycles(config_.swcache_line_core_overhead_cycles);
  line_service_ticks_ = dram_clock_.cycles(config_.dram_line_service_cycles);
  if (config_.shm_swcache) ensureSwcache();
  // One unified namespace of coalescing-horizon resources: the memory
  // controllers plus every tile's MPB port. launch() gives each task a reach
  // set of its core's controller and the ports it may touch.
  engine_.registerResources(mesh_.numResources());
  engine_.setSyncAwareHorizon(config_.sync_aware_horizon);
  engine_.reserveEvents(config_.num_cores * 2);
  // Robustness layer: at machine level a drained heap with live tasks is
  // ALWAYS the silent-hang bug (machine tasks never park across run()
  // calls), so hang detection is unconditional; the timeout and watchdog
  // knobs come from the config (off by default).
  fault_ = FaultInjector(config_.fault);
  // Round-robin contention batching rides on the coalescing machinery and
  // replays the default quantum's per-word interleaving exactly; a custom
  // quantum is already a different (approximate) contention model, so the
  // batch solver stays out of its way.
  shm_word_runs_.resize(config_.num_mem_controllers);
  shm_run_seq_.assign(config_.num_mem_controllers, 1);
  shm_batching_ = config_.shm_contention_batching && config_.shm_coalescing &&
                  config_.shm_fairness_quantum_words <= 1;
  engine_.setHangDetection(true);
  engine_.setSyncTimeout(config_.sync_timeout_ticks);
  engine_.setWatchdogEventLimit(config_.watchdog_events_per_tick);
  // Observability: the recorder always exists, but the engine only learns
  // about it when tracing is on — disabled runs short-circuit every hook on
  // the null pointer and never reach the recorder's own enabled() check.
  trace_.configure(config_.trace_enabled, config_.trace_ring_capacity,
                   config_.trace_batches);
  if (config_.trace_enabled) engine_.setTraceRecorder(&trace_);
  // Happens-before race detection (sim/drf/): drf_active_ is the cached
  // hot-path gate of every noteDrf* hook; sync objects get the checker
  // pointer at creation (setupBarrier / launch / lock).
  drf_active_ = config_.drf_check;
  drf_.configure(config_.drf_word_granular, config_.cache_line_bytes,
                 config_.shm_transaction_bytes);
}

void SccMachine::ensureSwcache() {
  if (!swcache_.empty()) return;
  const auto policy = config_.swcache_policy == 0 ? SwCachePolicy::kWriteBack
                                                  : SwCachePolicy::kWriteThrough;
  const std::size_t lines = config_.swcache_lines > 0 ? config_.swcache_lines : 1;
  swcache_.reserve(config_.num_cores);
  for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
    swcache_.emplace_back(lines, config_.cache_line_bytes, policy);
  }
}

void SccMachine::setShmCacheability(std::uint64_t begin, std::uint64_t end,
                                    bool cached) {
  if (end <= begin) return;
  if (cached) {
    // The swcache fills and writes back WHOLE lines, so a cached range is
    // line-granular by construction: round it outward. Any partial head or
    // tail line would be moved in full anyway, and keeping every byte of
    // such a line under the cached discipline prevents cross-policy false
    // sharing — an uncached word sharing a cached line could otherwise be
    // silently reverted by a whole-line write-back.
    const std::uint64_t line = config_.cache_line_bytes;
    begin -= begin % line;
    end = ((end + line - 1) / line) * line;
  }
  shm_cache_map_.push_back(ShmCacheRange{begin, end, cached});
  if (cached) ensureSwcache();
}

std::uint64_t SccMachine::shmalloc(std::size_t bytes, std::size_t align) {
  if (align < 8) align = 8;
  shm_brk_ = (shm_brk_ + align - 1) & ~static_cast<std::uint64_t>(align - 1);
  return shmalloc(bytes);  // the 8-byte re-align inside is a no-op
}

std::uint64_t SccMachine::shmalloc(std::size_t bytes) {
  shm_brk_ = (shm_brk_ + 7) & ~std::uint64_t{7};
  if (shm_brk_ + bytes > config_.shared_dram_bytes) throw std::bad_alloc();
  const std::uint64_t offset = shm_brk_;
  shm_brk_ += bytes;
  if (shm_brk_ > shared_dram_.size()) {
    // Growth invalidates raw pointers; all internal accesses re-fetch
    // through shmData on every operation.
    shared_dram_.resize(shm_brk_, 0);
  }
  return offset;
}

std::uint64_t SccMachine::mpbMalloc(int ue, std::size_t bytes) {
  if (mpb_brk_.size() < config_.num_cores) mpb_brk_.resize(config_.num_cores, 0);
  auto& brk = mpb_brk_[static_cast<std::size_t>(ue)];
  brk = (brk + 7) & ~std::uint64_t{7};
  if (brk + bytes > config_.mpb_bytes_per_core) throw std::bad_alloc();
  const std::uint64_t offset = brk;
  brk += bytes;
  return offset;
}

std::uint8_t* SccMachine::mpbData(int ue, std::uint64_t offset) {
  return &mpb_[static_cast<std::size_t>(ue) * config_.mpb_bytes_per_core + offset];
}

void SccMachine::reservePrivate(int core, std::size_t bytes) {
  auto& mem = private_mem_[static_cast<std::size_t>(core)];
  if (bytes > config_.private_mem_bytes) bytes = config_.private_mem_bytes;
  if (mem.size() < bytes) mem.resize(bytes, 0);
}

std::uint8_t* SccMachine::privData(int core, std::uint64_t addr) {
  auto& mem = private_mem_[static_cast<std::size_t>(core)];
  if (addr >= mem.size()) {
    std::size_t target = mem.empty() ? 4096 : mem.size();
    while (target <= addr) target *= 2;
    if (target > config_.private_mem_bytes) target = config_.private_mem_bytes;
    if (addr >= target) throw std::out_of_range("private memory address");
    mem.resize(target, 0);
  }
  return &mem[addr];
}

void SccMachine::setupBarrier(int participants) {
  const Tick arrive = core_clock_.cycles(config_.barrier_flag_core_cycles);
  barrier_ = std::make_unique<SyncBarrier>(engine_, static_cast<std::size_t>(participants),
                                           arrive, arrive);
  if (drf_active_) barrier_->setDrf(&drf_);
}

void SccMachine::launch(const LaunchSpec& spec) {
  const int num_ues = spec.num_ues;
  if (spec.plan != nullptr && spec.plan->anyCachedRegion()) ensureSwcache();
  // Precedence: an explicit scope wins; otherwise the plan's owner sets ARE
  // the scope promise — including "no MPB traffic at all" (empty sets),
  // under which any MPB access counts as a violation.
  MpbScope scope = spec.scope;
  if (!scope && spec.plan != nullptr) {
    const partition::ExecutionPlan* plan = spec.plan;
    scope = [plan](int ue, int n) { return plan->mpbScopeOwners(ue, n); };
  }
  setupBarrier(spec.barrier_participants);
  // Place every UE first: a scope may name owner UEs that have not been
  // iterated yet, and coreOfUe must already know their cores.
  ue_to_core_.resize(static_cast<std::size_t>(num_ues));
  for (int ue = 0; ue < num_ues; ++ue) {
    ue_to_core_[static_cast<std::size_t>(ue)] = mesh_.coreForUe(ue, num_ues);
  }
  ue_port_reach_.assign(static_cast<std::size_t>(num_ues), {});
  mpb_scope_declared_ = static_cast<bool>(scope);
  // Densify the sync-group ids (first-appearance order) before spawning so
  // group membership is known when the per-group barriers are built below.
  group_barriers_.clear();
  ue_group_.assign(static_cast<std::size_t>(num_ues), 0);
  std::size_t num_groups = 0;
  if (spec.sync_groups) {
    std::vector<int> raw_ids;
    for (int ue = 0; ue < num_ues; ++ue) {
      const int raw = spec.sync_groups(ue, num_ues);
      std::size_t dense = raw_ids.size();
      for (std::size_t g = 0; g < raw_ids.size(); ++g) {
        if (raw_ids[g] == raw) {
          dense = g;
          break;
        }
      }
      if (dense == raw_ids.size()) raw_ids.push_back(raw);
      ue_group_[static_cast<std::size_t>(ue)] = dense;
    }
    num_groups = raw_ids.size();
  }
  std::vector<std::size_t> task_ids;
  task_ids.reserve(static_cast<std::size_t>(num_ues));
  for (int ue = 0; ue < num_ues; ++ue) {
    const std::uint32_t core = ue_to_core_[static_cast<std::size_t>(ue)];
    std::vector<std::uint32_t> reach;
    reach.push_back(core_mc_[core]);
    if (scope) {
      std::vector<std::uint32_t> ports;
      for (const int owner : scope(ue, num_ues)) {
        ports.push_back(mesh_.portResourceId(mesh_.tileOfCore(coreOfUe(owner))));
      }
      std::sort(ports.begin(), ports.end());
      ports.erase(std::unique(ports.begin(), ports.end()), ports.end());
      reach.insert(reach.end(), ports.begin(), ports.end());
      ue_port_reach_[static_cast<std::size_t>(ue)] = std::move(ports);
    } else {
      for (std::uint32_t tile = 0; tile < mesh_.numTiles(); ++tile) {
        reach.push_back(mesh_.portResourceId(tile));
      }
    }
    contexts_.push_back(
        std::make_unique<CoreContext>(*this, ue, num_ues, static_cast<int>(core)));
    task_ids.push_back(
        engine_.spawnReaching(spec.program(*contexts_.back()), 0, std::move(reach)));
    // Spawn semantics for the race detector: tasks start from untimed host
    // context, so siblings begin mutually concurrent — registration gives
    // each a fresh clock and the UE label used in reports.
    if (drf_active_) drf_.registerTask(task_ids.back(), ue);
  }
  if (spec.sync_groups && num_groups > 0) {
    // One barrier per group, sized to the group; CoreContext::barrier()
    // routes through barrierFor. The machine-wide barrier is bound to an
    // EMPTY participant set — a real promise that no task arrives at it —
    // so it cannot merge the groups' reach classes into one lane component.
    const Tick arrive = core_clock_.cycles(config_.barrier_flag_core_cycles);
    std::vector<std::vector<std::size_t>> group_tasks(num_groups);
    for (int ue = 0; ue < num_ues; ++ue) {
      group_tasks[ue_group_[static_cast<std::size_t>(ue)]].push_back(
          task_ids[static_cast<std::size_t>(ue)]);
    }
    group_barriers_.reserve(num_groups);
    for (std::size_t g = 0; g < num_groups; ++g) {
      group_barriers_.push_back(std::make_unique<SyncBarrier>(
          engine_, group_tasks[g].size(), arrive, arrive));
      if (drf_active_) group_barriers_[g]->setDrf(&drf_);
      group_barriers_[g]->setParticipantTasks(std::move(group_tasks[g]));
    }
    barrier_->setParticipantTasks({});
    return;
  }
  // The barrier's potential wakers are exactly the launched tasks: enables
  // the engine's sync-aware wake-chain horizon for barrier waiters.
  barrier_->setParticipantTasks(std::move(task_ids));
}

void SccMachine::setShmControllerPlacement(std::uint64_t begin, std::uint64_t end,
                                           partition::ControllerPlacement placement,
                                           std::uint32_t pinned_controller) {
  if (end <= begin) return;
  if (pinned_controller >= config_.num_mem_controllers) pinned_controller = 0;
  shm_ctrl_map_.push_back(ShmCtrlRange{begin, end, placement, pinned_controller});
  // kOwnerCompute registrations are documentation only (they restate the
  // default), so they must not knock accesses off the legacy fast path.
  if (placement != partition::ControllerPlacement::kOwnerCompute) {
    ctrl_placement_active_ = true;
  }
}

std::uint32_t SccMachine::controllerForShmAccess(int core, std::uint64_t offset) {
  if (ctrl_placement_active_) {
    for (auto it = shm_ctrl_map_.rbegin(); it != shm_ctrl_map_.rend(); ++it) {
      if (offset < it->begin || offset >= it->end) continue;
      switch (it->placement) {
        case partition::ControllerPlacement::kOwnerCompute:
          return core_mc_[static_cast<std::size_t>(core)];
        case partition::ControllerPlacement::kStriped: {
          const std::uint64_t stripe =
              (offset - it->begin) / config_.shm_controller_stripe_bytes;
          return static_cast<std::uint32_t>(stripe % config_.num_mem_controllers);
        }
        case partition::ControllerPlacement::kPinned:
          return it->pinned;
        case partition::ControllerPlacement::kFirstTouch: {
          // Claims are deterministic: the engine resumes tasks in strict
          // (time, task_id) order, so "first" is reproducible run to run.
          const std::uint64_t stripe = offset / config_.shm_controller_stripe_bytes;
          return first_touch_claims_
              .try_emplace(stripe, core_mc_[static_cast<std::size_t>(core)])
              .first->second;
        }
      }
    }
  }
  return core_mc_[static_cast<std::size_t>(core)];
}

Tick SccMachine::run() {
  // Per-task trace buffers must exist before any lane can record into them
  // (lanes never resize the outer vector; see TraceRecorder::prepare).
  if (trace_.enabled()) trace_.prepare(engine_.taskCount());
  // Parallel lanes partition by task reach sets, but placement-routed
  // accesses reach controllers OUTSIDE the accessor's declared quadrant
  // reach, fault runs funnel draws through the shared FaultStats sink, and
  // region profiling aggregates plain cross-lane counters — all three force
  // the classic sequential loop (the engine additionally falls back on its
  // own ineligibility conditions; see planParallelRun). Tracing itself does
  // NOT pin lanes: per-task buffers are lane-exclusive by construction.
  // The race detector's shadow/clock state is sequential, so a drf run pins
  // to one lane too — which also makes its reports trivially lane-invariant.
  engine_.setEngineLanes(ctrl_placement_active_ || fault_.anyArmed() ||
                                 region_profiling_ || drf_active_
                             ? 1
                             : config_.engine_lanes);
  engine_.run();
  // End-of-run drain: dirty lines a program never released (it should — see
  // docs/memory_model.md) are written back functionally and untimed so that
  // host-side verification reads final values. Not counted in the stats.
  for (SwCache& c : swcache_) {
    c.flushDirty(shared_dram_.data(), shared_dram_.size(), /*count_stats=*/false);
  }
  return engine_.makespan();
}

const SwCacheStats& SccMachine::swcacheStats(int core) const {
  static const SwCacheStats kEmpty;
  const auto c = static_cast<std::size_t>(core);
  return c < swcache_.size() ? swcache_[c].stats() : kEmpty;
}

SwCacheStats SccMachine::swcacheTotals() const {
  SwCacheStats total;
  for (const SwCache& c : swcache_) total += c.stats();
  return total;
}

std::size_t SccMachine::swcacheDirtyLines(int core) const {
  const auto c = static_cast<std::size_t>(core);
  return c < swcache_.size() ? swcache_[c].dirtyLines() : 0;
}

std::size_t SccMachine::swcacheResidentLines(int core) const {
  const auto c = static_cast<std::size_t>(core);
  return c < swcache_.size() ? swcache_[c].residentLines() : 0;
}

SwCache::AccessPlan SccMachine::swcacheAccess(int core, std::uint64_t offset,
                                              std::size_t bytes, bool write,
                                              void* data_out, const void* data_in) {
  return swcache_[static_cast<std::size_t>(core)].access(
      offset, bytes, write, data_out, data_in, shared_dram_.data(),
      shared_dram_.size(), config_.shm_transaction_bytes);
}

std::size_t SccMachine::swcacheFlush(int core) {
  return swcache_[static_cast<std::size_t>(core)].flushDirty(shared_dram_.data(),
                                                             shared_dram_.size());
}

std::size_t SccMachine::swcacheFlushChecked(int core, std::uint64_t seq) {
  SwCache& c = swcache_[static_cast<std::size_t>(core)];
  flushed_addrs_scratch_.clear();
  std::size_t lines = c.flushDirty(shared_dram_.data(), shared_dram_.size(),
                                   /*count_stats=*/true, &flushed_addrs_scratch_);
  if (flushed_addrs_scratch_.empty()) return lines;
  // Transient DRAM corruption of a just-flushed line, then verify-and-repair
  // restricted to the flushed set (this core's own releases — race-free
  // under DRF, so a re-store can never clobber newer remote data). Each
  // repair is charged as an extra write-back line transfer; re-drawing per
  // attempt lets a corruption strike the repair itself, up to the retry
  // budget.
  const auto stream = static_cast<std::uint64_t>(core);
  std::uint64_t faults_here = 0;
  for (std::uint32_t attempt = 0; attempt <= fault_.maxRetries(); ++attempt) {
    const std::uint64_t draw = (seq << 16) ^ attempt;
    if (!fault_.fires(FaultClass::kSwcacheFlush, stream, draw, engine_.now())) break;
    const std::size_t victim = fault_.pick(flushed_addrs_scratch_.size(),
                                           FaultClass::kSwcacheFlush, stream, draw);
    const std::uint64_t addr = flushed_addrs_scratch_[victim];
    if (addr >= shared_dram_.size()) continue;
    const std::size_t n =
        std::min(config_.cache_line_bytes,
                 static_cast<std::size_t>(shared_dram_.size() - addr));
    fault_.corruptBytes(&shared_dram_[addr], n, FaultClass::kSwcacheFlush, stream,
                        draw);
    fault_.noteInjected(FaultClass::kSwcacheFlush);
    ++faults_here;
    const std::size_t repaired =
        c.restoreCorrupted(flushed_addrs_scratch_, shared_dram_.data(),
                           shared_dram_.size());
    lines += repaired;
    ++fault_.stats().retries;
    if (obs::TraceRecorder* tr = tracer(engine_)) {
      const Tick at = engine_.now();
      const auto cls = static_cast<std::uint64_t>(FaultClass::kSwcacheFlush);
      tr->record(engine_.currentTaskId(),
                 obs::TraceEvent{at, at, cls, 0, 0, obs::kNoTraceResource,
                                 obs::TraceEventKind::kFaultInject});
      tr->record(engine_.currentTaskId(),
                 obs::TraceEvent{at, at, cls, 0, 0, obs::kNoTraceResource,
                                 obs::TraceEventKind::kFaultRetry});
    }
  }
  // Every corruption above was repaired before the release takes effect
  // (the repair runs inside the same reconciliation step).
  fault_.stats().recovered[static_cast<std::size_t>(FaultClass::kSwcacheFlush)] +=
      faults_here;
  return lines;
}

void SccMachine::swcacheAcquire(int core) {
  swcache_[static_cast<std::size_t>(core)].invalidateClean();
}

std::size_t SccMachine::swcacheSyncRange(int core, std::uint64_t offset,
                                         std::size_t bytes, bool drop) {
  return swcache_[static_cast<std::size_t>(core)].syncRange(
      offset, bytes, drop, shared_dram_.data(), shared_dram_.size());
}

TasLock& SccMachine::lock(int id) {
  const auto index = static_cast<std::size_t>(id);
  while (locks_.size() <= index) {
    const Tick roundtrip = core_clock_.cycles(config_.tas_core_cycles);
    locks_.push_back(std::make_unique<TasLock>(engine_, roundtrip));
    if (drf_active_) locks_.back()->setDrf(&drf_);
  }
  return *locks_[index];
}

Tick SccMachine::privAccessCompletion(int core, Tick start, std::uint64_t addr,
                                      std::size_t bytes, bool write, void* data_out,
                                      const void* data_in) {
  const std::size_t line = config_.cache_line_bytes;
  Cache& l1 = l1_[static_cast<std::size_t>(core)];
  Cache& l2 = l2_[static_cast<std::size_t>(core)];
  ResourceTimeline& mc = mc_[core_mc_[static_cast<std::size_t>(core)]];
  const Tick hop_one_way = core_mc_hop_ticks_[static_cast<std::size_t>(core)];

  Tick t = start;
  const std::uint64_t first_line = addr / line;
  const std::uint64_t last_line = (addr + (bytes == 0 ? 0 : bytes - 1)) / line;
  for (std::uint64_t ln = first_line; ln <= last_line; ++ln) {
    const std::uint64_t line_addr = ln * line;
    const Cache::AccessResult r1 = l1.access(line_addr, write);
    if (r1.hit) {
      t += core_clock_.cycles(config_.l1_hit_core_cycles);
      continue;
    }
    const Cache::AccessResult r2 = l2.access(line_addr, write);
    t += core_clock_.cycles(config_.l2_hit_core_cycles);
    if (r2.hit) continue;
    // Line fill from private DRAM; a dirty victim adds a write-back burst.
    const std::uint64_t bursts = r2.writeback ? 2 : 1;
    const Tick request_arrival =
        t + core_clock_.cycles(config_.dram_core_overhead_cycles) + hop_one_way;
    const Tick serviced = mc.acquire(
        request_arrival, dram_clock_.cycles(bursts * config_.dram_line_service_cycles));
    t = serviced + hop_one_way;
  }

  if (write && data_in != nullptr) {
    std::memcpy(privData(core, addr), data_in, bytes);
  } else if (!write && data_out != nullptr) {
    std::memcpy(data_out, privData(core, addr), bytes);
  }
  return t;
}

Tick SccMachine::shmAccessCompletion(int core, Tick start, std::uint64_t offset,
                                     std::size_t bytes, bool write, void* data_out,
                                     const void* data_in) {
  // Uncached: each word is an independent, blocking transaction through the
  // core's assigned memory controller.
  ResourceTimeline& mc = mc_[core_mc_[static_cast<std::size_t>(core)]];
  const Tick hop_one_way = core_mc_hop_ticks_[static_cast<std::size_t>(core)];

  const std::size_t txn = config_.shm_transaction_bytes;
  const std::size_t words = (bytes + txn - 1) / txn;
  Tick t = start;
  for (std::size_t w = 0; w < words; ++w) {
    const Tick request_arrival = t + uncached_overhead_ticks_ + hop_one_way;
    const Tick serviced = mc.acquire(request_arrival, word_service_ticks_);
    t = serviced + hop_one_way;
  }

  if (write && data_in != nullptr) {
    std::memcpy(&shared_dram_[offset], data_in, bytes);
  } else if (!write && data_out != nullptr) {
    std::memcpy(data_out, &shared_dram_[offset], bytes);
  }
  return t;
}

Tick SccMachine::coalescedCompletion(std::uint32_t resource, ResourceTimeline& timeline,
                                     bool coalescing, std::size_t quantum,
                                     Tick issue_overhead, Tick hop_one_way, Tick service,
                                     Tick start, std::size_t max_txns,
                                     std::size_t* done) {
  // Safety horizon: transaction i+1's request is issued (in the per-event
  // execution) at transaction i's completion time. As long as that instant
  // lies strictly before the horizon, no coroutine that can touch this
  // resource's timeline runs in between, so computing the transaction here
  // (at the same recurrence, in the same order) is indistinguishable from
  // suspending. The horizon is scoped to the resource's reach classes —
  // pending traffic bound for other resources no longer breaks the run
  // (Engine::nextEventTimeFor bounds blocked tasks by their wake chains and
  // falls back to the global horizon itself when it cannot). The first
  // transaction is always safe: its request is issued "now", while this
  // coroutine holds the engine. With coalescing off the horizon degenerates
  // to 0, i.e. every transaction after the quantum is contended.
  Tick horizon = 0;
  if (coalescing) {
    horizon = config_.per_resource_horizon ? engine_.nextEventTimeFor(resource)
                                           : engine_.nextEventTime();
  }

  // Memory-controller stall faults: keyed by (resource id, per-resource
  // transaction index). The transaction order per resource is identical
  // across coalescing modes (the coalescing invariant), so the stall
  // schedule — and therefore every Tick — is too.
  const bool stall_armed = fault_.armed(FaultClass::kMcStall);

  Tick t = start;
  std::size_t n = 0;
  while (n < max_txns) {
    if (n > 0 && t >= horizon && n >= quantum) break;
    const Tick arrival = t + issue_overhead + hop_one_way;
    Tick svc = service;
    if (stall_armed) {
      const Tick stall = fault_.stallTicks(resource, timeline.requests(), arrival, service);
      if (stall > 0) {
        svc += stall;
        fault_.noteInjected(FaultClass::kMcStall);
        fault_.stats().stall_ticks += stall;
        if (obs::TraceRecorder* tr = tracer(engine_)) {
          tr->record(engine_.currentTaskId(),
                     obs::TraceEvent{arrival, arrival, stall, 0, 0, resource,
                                     obs::TraceEventKind::kMcStall});
        }
      }
    }
    const Tick serviced = timeline.acquire(arrival, svc);
    t = serviced + hop_one_way;
    ++n;
  }
  *done = n;
  // Batch-boundary spans are inherently coalescing-mode-dependent (that is
  // what they visualize) — opt-in and excluded from the identity contract.
  if (trace_.batchesEnabled() && n > 1) {
    trace_.record(engine_.currentTaskId(),
                  obs::TraceEvent{start, t, n, 0, 0, resource,
                                  obs::TraceEventKind::kBatch});
  }
  return t;
}

bool SccMachine::consumeSolvedRun(std::uint32_t mc_id, std::size_t* words_done,
                                  Tick* completion) {
  auto& runs = shm_word_runs_[mc_id];
  if (runs.empty()) return false;
  const std::size_t task = engine_.currentTaskId();
  if (task == Engine::kNoTask) return false;
  const auto it = runs.find(task);
  if (it == runs.end() || !it->second.solved) return false;
  // The words themselves were acquired (and tallied) by the joint replay;
  // this resume only reports them to the caller's run loop, which re-calls
  // for any words beyond the replayed prefix. One event either way.
  *words_done = it->second.done;
  *completion = it->second.final_t;
  shm_word_events_.fetch_add(1, std::memory_order_relaxed);
  runs.erase(it);
  return true;
}

bool SccMachine::solveContendedRuns(std::uint32_t mc_id, Tick hop_one_way,
                                    Tick start, std::size_t max_words,
                                    std::size_t* words_done, Tick* completion) {
  if (max_words == 0) return false;
  auto& runs = shm_word_runs_[mc_id];
  if (runs.empty()) return false;
  const std::size_t self = engine_.currentTaskId();
  if (self == Engine::kNoTask) return false;
  // Closure proof: every registered run must be an unsolved in-flight peer
  // (a solved-but-unconsumed entry means that task's next move is already
  // decided and acquired — nothing new may interleave until it resumes),
  // and the peers plus this task must be ALL the alive tasks whose reach
  // includes the controller. Then every pending event that can touch this
  // timeline belongs to a member, and the joint replay below IS the engine's
  // own schedule.
  std::size_t peers = 0;
  for (const auto& [tid, r] : runs) {
    if (r.solved || r.remaining == 0) return false;
    if (tid != self) ++peers;
  }
  if (peers == 0) return false;
  if (engine_.aliveTasksReaching(mc_id) != peers + 1) return false;

  struct Member {
    std::size_t task;
    Tick t;        ///< completion of its last word (next-event instant)
    Tick hop;
    std::size_t remaining;
    std::uint64_t seq;  ///< schedule order of its pending event
    bool is_self;
    std::size_t done = 0;  ///< words serviced by this replay
  };
  std::vector<Member> members;
  members.reserve(peers + 1);
  for (const auto& [tid, r] : runs) {
    if (tid != self) {
      members.push_back({tid, r.t, r.hop, r.remaining, r.seq, false});
    }
  }
  // Self is executing right now: its first acquire happens inside the live
  // event, ahead of every pending event sharing its tick — stamp 0 (the
  // recorded stamps start at 1) encodes that priority.
  members.push_back({self, start, hop_one_way, max_words, 0, true});

  // Replay the joint FCFS recurrence in ENGINE order on a SCRATCH timeline:
  // the next word always belongs to the member whose pending event is
  // earliest under the heap's own (time, schedule seq) key, and each word's
  // acquire happens the instant its event would have fired. Arrival times,
  // acquire order, and per-resource request indices (the kMcStall draw
  // keys) are therefore identical to the per-event execution. The replay
  // stops at the first completed run — beyond that instant the finished
  // member may add traffic the joint schedule cannot see.
  ResourceTimeline scratch = mc_[mc_id];
  const bool stall_armed = fault_.armed(FaultClass::kMcStall);
  std::uint64_t next_stamp = shm_run_seq_[mc_id];
  Tick stall_total = 0;
  std::uint64_t stalls_injected = 0;
  std::uint64_t total_words = 0;
  // Trace records are deferred until the replay commits: a declined replay
  // (boundary tie below) must leave no observable side effect.
  obs::TraceRecorder* tr = tracer(engine_);
  struct StallRec {
    std::size_t task;
    Tick at;
    Tick stall;
  };
  std::vector<StallRec> stall_recs;
  const Member* finisher = nullptr;
  while (finisher == nullptr) {
    std::size_t pick = members.size();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i].remaining == 0) continue;
      if (pick == members.size() || members[i].t < members[pick].t ||
          (members[i].t == members[pick].t && members[i].seq < members[pick].seq)) {
        pick = i;
      }
    }
    Member& m = members[pick];
    const Tick arrival = m.t + uncached_overhead_ticks_ + m.hop;
    Tick svc = word_service_ticks_;
    if (stall_armed) {
      const Tick stall =
          fault_.stallTicks(mc_id, scratch.requests(), arrival, word_service_ticks_);
      if (stall > 0) {
        svc += stall;
        stall_total += stall;
        ++stalls_injected;
        if (tr != nullptr) stall_recs.push_back({m.task, arrival, stall});
      }
    }
    const Tick serviced = scratch.acquire(arrival, svc);
    m.t = serviced + m.hop;
    // Completing a word schedules the member's next event NOW, in replay
    // order — exactly the stamp the engine's next_seq counter would hand it.
    m.seq = next_stamp++;
    ++m.done;
    ++total_words;
    if (--m.remaining == 0) finisher = &m;
  }

  // Boundary guard: every member the replay advanced resumes through a
  // RE-scheduled event whose heap seq reflects this execution, not the
  // per-event one. Distinct resume ticks make that seq irrelevant; a tie
  // could invert the acquire order, so decline (nothing committed yet —
  // the per-event fallback is exact). Untouched members keep their
  // original pending events and need no guard.
  std::vector<Tick> boundary;
  boundary.reserve(members.size());
  for (const Member& m : members) {
    if (m.done > 0) boundary.push_back(m.t);
  }
  std::sort(boundary.begin(), boundary.end());
  if (std::adjacent_find(boundary.begin(), boundary.end()) != boundary.end()) {
    return false;
  }

  // Commit: timeline, fault bookkeeping, stats, per-member stash.
  mc_[mc_id] = scratch;
  shm_run_seq_[mc_id] = next_stamp;
  if (tr != nullptr) {
    // Members all reach this controller, hence share one lane component —
    // recording under peer task ids is lane-safe.
    for (const StallRec& s : stall_recs) {
      tr->record(s.task, obs::TraceEvent{s.at, s.at, s.stall, 0, 0, mc_id,
                                         obs::TraceEventKind::kMcStall});
    }
  }
  for (std::uint64_t i = 0; i < stalls_injected; ++i) {
    fault_.noteInjected(FaultClass::kMcStall);
  }
  // Machine-global, non-atomic: only written when a stall actually fired,
  // which implies an armed plan — and armed plans pin the run to one lane.
  if (stall_total > 0) fault_.stats().stall_ticks += stall_total;
  shm_words_.fetch_add(total_words, std::memory_order_relaxed);
  mc_traffic_[mc_id] += total_words;
  shm_word_events_.fetch_add(1, std::memory_order_relaxed);  // self's event
  for (const Member& m : members) {
    if (m.is_self) {
      if (m.remaining == 0) {
        runs.erase(self);  // a continuation call's own stale entry, if any
      } else {
        WordRun& r = runs[self];
        r.t = m.t;
        r.hop = m.hop;
        r.remaining = m.remaining;
        r.seq = m.seq;
        r.solved = false;
        r.done = 0;
      }
      *words_done = m.done;
      *completion = m.t;
      continue;
    }
    if (m.done == 0) continue;  // untouched: its pending event is still true
    WordRun& r = runs[m.task];
    r.solved = true;
    r.done = m.done;
    r.final_t = m.t;
    r.remaining = m.remaining;
    r.seq = m.seq;
  }
  if (trace_.batchesEnabled() && *words_done > 1) {
    trace_.record(self, obs::TraceEvent{start, *completion, *words_done, 0, 0,
                                        mc_id, obs::TraceEventKind::kBatch});
  }
  return true;
}

Tick SccMachine::shmWordsOnController(std::uint32_t mc_id, Tick hop_one_way,
                                      Tick start, std::size_t max_words,
                                      std::size_t* words_done) {
  // Round-robin contention batching (header comment at WordRun). Placement-
  // routed runs can aim at controllers outside the accessor's reach class,
  // which would break the closure proof — the batch layer stands down.
  const bool batching = shm_batching_ && !ctrl_placement_active_;
  if (batching) {
    Tick batched = 0;
    if (consumeSolvedRun(mc_id, words_done, &batched)) return batched;
    if (solveContendedRuns(mc_id, hop_one_way, start, max_words, words_done,
                           &batched)) {
      return batched;
    }
  }
  const std::size_t quantum =
      config_.shm_fairness_quantum_words > 0 ? config_.shm_fairness_quantum_words : 1;
  const Tick t = coalescedCompletion(mc_id, mc_[mc_id], config_.shm_coalescing,
                                     quantum, uncached_overhead_ticks_, hop_one_way,
                                     word_service_ticks_, start, max_words, words_done);
  shm_words_.fetch_add(*words_done, std::memory_order_relaxed);
  mc_traffic_[mc_id] += *words_done;
  shm_word_events_.fetch_add(1, std::memory_order_relaxed);
  if (batching) {
    // Track the in-flight run so a peer entering later can prove the
    // contention pattern closed and solve the joint recurrence.
    const std::size_t task = engine_.currentTaskId();
    if (task != Engine::kNoTask) {
      auto& runs = shm_word_runs_[mc_id];
      if (*words_done < max_words) {
        WordRun& r = runs[task];
        r.t = t;
        r.hop = hop_one_way;
        r.remaining = max_words - *words_done;
        r.seq = shm_run_seq_[mc_id]++;  // continuation scheduled now, in order
        r.solved = false;
      } else {
        runs.erase(task);
      }
    }
  }
  return t;
}

Tick SccMachine::shmWordsCompletion(int core, Tick start, std::size_t max_words,
                                    std::size_t* words_done) {
  const std::uint32_t mc_id = core_mc_[static_cast<std::size_t>(core)];
  return shmWordsOnController(mc_id, core_mc_hop_ticks_[static_cast<std::size_t>(core)],
                              start, max_words, words_done);
}

Tick SccMachine::shmWordsAtCompletion(int core, Tick start, std::uint64_t offset,
                                      std::size_t max_words, std::size_t* words_done) {
  if (!ctrl_placement_active_) {
    // The exact legacy path: offset-independent requester-local routing.
    return shmWordsCompletion(core, start, max_words, words_done);
  }
  const std::uint32_t mc_id = controllerForShmAccess(core, offset);
  // Striped / first-touch regions switch controllers at stripe boundaries,
  // so one coalesced run must not cross the current stripe's end. Accesses
  // never straddle a region boundary (regions are whole translated
  // variables), so a single range lookup covers the run.
  const std::size_t txn = config_.shm_transaction_bytes;
  const std::uint64_t stripe_bytes = config_.shm_controller_stripe_bytes;
  const std::uint64_t stripe_end = (offset / stripe_bytes + 1) * stripe_bytes;
  const auto to_stripe_end =
      static_cast<std::size_t>((stripe_end - offset + txn - 1) / txn);
  if (max_words > to_stripe_end) max_words = to_stripe_end;
  return shmWordsOnController(
      mc_id,
      core_all_mc_hop_ticks_[static_cast<std::size_t>(core) *
                                 config_.num_mem_controllers +
                             mc_id],
      start, max_words, words_done);
}

Tick SccMachine::swcacheLinesCompletion(int core, Tick start, std::size_t max_lines,
                                        std::size_t* lines_done) {
  const std::uint32_t mc_id = core_mc_[static_cast<std::size_t>(core)];
  const std::size_t quantum =
      config_.shm_fairness_quantum_words > 0 ? config_.shm_fairness_quantum_words : 1;
  const Tick t = coalescedCompletion(
      mc_id, mc_[mc_id], config_.shm_coalescing, quantum,
      swcache_line_overhead_ticks_, core_mc_hop_ticks_[static_cast<std::size_t>(core)],
      line_service_ticks_, start, max_lines, lines_done);
  swcache_lines_sim_.fetch_add(*lines_done, std::memory_order_relaxed);
  mc_traffic_[mc_id] += *lines_done;
  swcache_line_events_.fetch_add(1, std::memory_order_relaxed);
  return t;
}

Tick SccMachine::mpbChunksCompletion(int core, int ue, int owner_ue, Tick start,
                                     std::size_t max_chunks, std::size_t* chunks_done) {
  const std::uint32_t owner_core = coreOfUe(owner_ue);
  const std::uint32_t tile = mesh_.tileOfCore(owner_core);
  const std::uint32_t port_id = mesh_.portResourceId(tile);
  const auto u = static_cast<std::size_t>(ue);
  if (mpb_scope_declared_ && u < ue_port_reach_.size() &&
      !std::binary_search(ue_port_reach_[u].begin(), ue_port_reach_[u].end(),
                          port_id)) {
    // The declared scope was a promise the engine's reach sets rely on
    // (an empty declared set promises no MPB traffic at all); still service
    // the access, but flag that port isolation is void.
    mpb_scope_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint32_t hops =
      mesh_.hopsBetweenCores(static_cast<std::uint32_t>(core), owner_core);
  const Tick hop_one_way =
      mesh_clock_.cycles(static_cast<std::uint64_t>(config_.mesh_hop_cycles) * hops);
  const std::size_t quantum = config_.mpb_fairness_quantum_chunks > 0
                                  ? config_.mpb_fairness_quantum_chunks
                                  : 1;
  const Tick t = coalescedCompletion(port_id, mpb_port_[tile], config_.mpb_coalescing,
                                     quantum, mpb_overhead_ticks_, hop_one_way,
                                     chunk_service_ticks_, start, max_chunks,
                                     chunks_done);
  mpb_chunks_.fetch_add(*chunks_done, std::memory_order_relaxed);
  mpb_chunk_events_.fetch_add(1, std::memory_order_relaxed);
  return t;
}

Tick SccMachine::shmBulkCompletion(int core, Tick start, std::uint64_t offset,
                                   std::size_t bytes, bool write, void* data_out,
                                   const void* data_in) {
  // One setup round trip, then lines stream at row-buffer-hit rates. A
  // placement-routed region streams the whole burst through the controller
  // serving its FIRST byte (one row activation, one stream — splitting a
  // burst across controllers would forfeit the row-buffer hits the bulk
  // path models).
  const std::uint32_t mc_id = ctrl_placement_active_
                                  ? controllerForShmAccess(core, offset)
                                  : core_mc_[static_cast<std::size_t>(core)];
  ResourceTimeline& mc = mc_[mc_id];
  const Tick hop_one_way =
      ctrl_placement_active_
          ? core_all_mc_hop_ticks_[static_cast<std::size_t>(core) *
                                       config_.num_mem_controllers +
                                   mc_id]
          : core_mc_hop_ticks_[static_cast<std::size_t>(core)];
  const std::size_t line = config_.cache_line_bytes;
  const std::size_t lines = (bytes + line - 1) / line;
  shm_bulk_lines_.fetch_add(lines, std::memory_order_relaxed);
  mc_traffic_[mc_id] += lines;
  if (region_profiling_) noteShmBulkImpl(offset, lines, write, mc_id);
  const Tick service =
      dram_clock_.cycles(config_.dram_line_service_cycles +
                         (lines > 0 ? lines - 1 : 0) * config_.dram_burst_line_service_cycles);

  Tick t = start + core_clock_.cycles(config_.dram_core_overhead_cycles);
  const Tick serviced = mc.acquire(t + hop_one_way, service);
  t = serviced + hop_one_way;

  if (write && data_in != nullptr) {
    std::memcpy(&shared_dram_[offset], data_in, bytes);
  } else if (!write && data_out != nullptr) {
    std::memcpy(data_out, &shared_dram_[offset], bytes);
  }
  return t;
}

// ---------------------------------------------------------------------------
// Observability: trace export + per-region profiling
// ---------------------------------------------------------------------------

obs::TraceExportMeta SccMachine::traceExportMeta() const {
  obs::TraceExportMeta meta;
  meta.task_component = engine_.taskComponents();
  meta.task_completion.reserve(meta.task_component.size());
  for (std::size_t task = 0; task < meta.task_component.size(); ++task) {
    meta.task_completion.push_back(engine_.completionTime(task));
  }
  meta.num_controllers = config_.num_mem_controllers;
  meta.final_tick = engine_.makespan();
  return meta;
}

void SccMachine::writeTrace(std::ostream& out) const {
  trace_.writeChromeJson(out, traceExportMeta());
}

void SccMachine::writeTraceBinary(std::ostream& out) const {
  trace_.writeBinary(out);
}

void SccMachine::registerShmRegion(std::string name, std::uint64_t begin,
                                   std::uint64_t end) {
  if (end <= begin) return;
  // Race reports name the region containing the racy granule; the lookup is
  // off the hot path (report construction only), so a drf run records names
  // regardless of the profiling knob.
  if (drf_active_) drf_.registerRegion(name, begin, end);
  // No-op unless the profiling knob is on: workloads register their region
  // names unconditionally (makeShmArray), and a disabled knob must leave the
  // hot paths with nothing to scan and the lane gate untouched.
  if (!config_.region_metrics) return;
  obs::RegionProfile region;
  region.name = std::move(name);
  region.begin = begin;
  region.end = end;
  region.controller_txns.assign(config_.num_mem_controllers, 0);
  shm_regions_.push_back(std::move(region));
  region_profiling_ = true;
}

obs::RegionProfile* SccMachine::regionAt(std::uint64_t offset) {
  for (auto it = shm_regions_.rbegin(); it != shm_regions_.rend(); ++it) {
    if (offset >= it->begin && offset < it->end) return &*it;
  }
  return nullptr;
}

void SccMachine::noteShmWordsImpl(int core, std::uint64_t offset, std::size_t bytes,
                                  bool write) {
  obs::RegionProfile* region = regionAt(offset);
  if (region == nullptr) return;
  const std::size_t txn = config_.shm_transaction_bytes;
  const std::size_t words = bytes == 0 ? 0 : (bytes + txn - 1) / txn;
  if (write) {
    ++region->writes;
    region->write_words += words;
  } else {
    ++region->reads;
    region->read_words += words;
  }
  if (!ctrl_placement_active_) {
    region->controller_txns[core_mc_[static_cast<std::size_t>(core)]] += words;
    return;
  }
  // Placement-routed regions switch controllers at stripe boundaries: walk
  // the stripes the access covers. Called post-access, so first-touch claims
  // are already made and the controller lookup is a pure function.
  const std::uint64_t stripe_bytes = config_.shm_controller_stripe_bytes;
  std::uint64_t cur = offset;
  std::size_t left = words;
  while (left > 0) {
    const std::uint64_t stripe_end = (cur / stripe_bytes + 1) * stripe_bytes;
    const auto in_stripe =
        static_cast<std::size_t>((stripe_end - cur + txn - 1) / txn);
    const std::size_t take = std::min(left, in_stripe);
    region->controller_txns[controllerForShmAccess(core, cur)] += take;
    left -= take;
    cur += static_cast<std::uint64_t>(take) * txn;
  }
}

void SccMachine::noteShmSwcacheImpl(int core, std::uint64_t offset, bool write,
                                    std::uint64_t hits, std::uint64_t line_txns) {
  obs::RegionProfile* region = regionAt(offset);
  if (region == nullptr) return;
  if (write) {
    ++region->writes;
  } else {
    ++region->reads;
  }
  region->hits += hits;
  region->misses += line_txns;
  // Cached regions fill requester-locally regardless of placement (the
  // composition rule in docs/execution_plan.md).
  region->controller_txns[core_mc_[static_cast<std::size_t>(core)]] += line_txns;
}

void SccMachine::noteShmBulkImpl(std::uint64_t offset, std::size_t lines, bool write,
                                 std::uint32_t mc) {
  obs::RegionProfile* region = regionAt(offset);
  if (region == nullptr) return;
  if (write) {
    ++region->writes;
  } else {
    ++region->reads;
  }
  region->bulk_lines += lines;
  region->controller_txns[mc] += lines;
}

// -- race-detection hooks (gated by drf_active_ at the inline call sites) --
// All untimed: they read engine_.now() but never move it, so a drf run
// simulates the exact Ticks of the unchecked run it observes.

void SccMachine::drfShmImpl(std::uint64_t offset, std::size_t bytes, bool write) {
  const std::size_t task = engine_.currentTaskId();
  // Untimed host-context accesses (setup/verification) are outside the
  // happens-before model — the launch boundary orders them anyway.
  if (task == Engine::kNoTask) return;
  const std::size_t fresh = drf_.access(task, drf::kSpaceShm, offset, bytes, write,
                                        shmCached(offset), engine_.now());
  if (fresh > 0) drfEmit(fresh);
}

void SccMachine::drfMpbImpl(int owner_ue, std::uint64_t offset, std::size_t bytes,
                            bool write) {
  const std::size_t task = engine_.currentTaskId();
  if (task == Engine::kNoTask) return;
  const std::size_t fresh = drf_.access(task, drf::mpbSpace(owner_ue), offset, bytes,
                                        write, /*cached=*/false, engine_.now());
  if (fresh > 0) drfEmit(fresh);
}

void SccMachine::drfPrivImpl(std::uint64_t addr, std::size_t bytes, bool write) {
  const std::size_t task = engine_.currentTaskId();
  if (task == Engine::kNoTask) return;
  const std::size_t fresh = drf_.access(task, drf::kSpacePriv, addr, bytes, write,
                                        /*cached=*/false, engine_.now());
  if (fresh > 0) drfEmit(fresh);
}

void SccMachine::drfEmit(std::size_t fresh) {
  obs::TraceRecorder* tr = tracer(engine_);
  if (tr == nullptr) return;
  const std::vector<drf::RaceReport>& reports = drf_.reports();
  for (std::size_t i = reports.size() - fresh; i < reports.size(); ++i) {
    const drf::RaceReport& r = reports[i];
    tr->record(engine_.currentTaskId(),
               obs::TraceEvent{engine_.now(), engine_.now(), r.granule_begin,
                               static_cast<std::uint64_t>(r.kind), r.prior.task,
                               obs::kNoTraceResource, obs::TraceEventKind::kRace});
  }
}

}  // namespace hsm::sim

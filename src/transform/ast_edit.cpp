#include "transform/ast_edit.h"

#include <algorithm>

namespace hsm::transform {
namespace {

void forEachExpr(ast::Expr* expr, const std::function<void(ast::Expr*)>& fn) {
  if (expr == nullptr) return;
  fn(expr);
  switch (expr->kind()) {
    case ast::ExprKind::Unary:
      forEachExpr(static_cast<ast::UnaryExpr*>(expr)->operand(), fn);
      break;
    case ast::ExprKind::Binary: {
      auto* b = static_cast<ast::BinaryExpr*>(expr);
      forEachExpr(b->lhs(), fn);
      forEachExpr(b->rhs(), fn);
      break;
    }
    case ast::ExprKind::Conditional: {
      auto* c = static_cast<ast::ConditionalExpr*>(expr);
      forEachExpr(c->cond(), fn);
      forEachExpr(c->thenExpr(), fn);
      forEachExpr(c->elseExpr(), fn);
      break;
    }
    case ast::ExprKind::Call: {
      auto* c = static_cast<ast::CallExpr*>(expr);
      forEachExpr(c->callee(), fn);
      for (ast::Expr* a : c->args()) forEachExpr(a, fn);
      break;
    }
    case ast::ExprKind::Index: {
      auto* i = static_cast<ast::IndexExpr*>(expr);
      forEachExpr(i->base(), fn);
      forEachExpr(i->index(), fn);
      break;
    }
    case ast::ExprKind::Member:
      forEachExpr(static_cast<ast::MemberExpr*>(expr)->base(), fn);
      break;
    case ast::ExprKind::Cast:
      forEachExpr(static_cast<ast::CastExpr*>(expr)->operand(), fn);
      break;
    case ast::ExprKind::Sizeof:
      if (auto* e = static_cast<ast::SizeofExpr*>(expr)->exprOperand()) forEachExpr(e, fn);
      break;
    case ast::ExprKind::InitList:
      for (ast::Expr* e : static_cast<ast::InitListExpr*>(expr)->inits()) forEachExpr(e, fn);
      break;
    default:
      break;
  }
}

void forEachExprInStmt(ast::Stmt* stmt, const std::function<void(ast::Expr*)>& fn) {
  forEachStmt(stmt, [&fn](ast::Stmt* s) {
    switch (s->kind()) {
      case ast::StmtKind::Expr:
        forEachExpr(static_cast<ast::ExprStmt*>(s)->expr(), fn);
        break;
      case ast::StmtKind::Decl:
        for (ast::VarDecl* v : static_cast<ast::DeclStmt*>(s)->decls()) {
          forEachExpr(v->init(), fn);
        }
        break;
      case ast::StmtKind::If:
        forEachExpr(static_cast<ast::IfStmt*>(s)->cond(), fn);
        break;
      case ast::StmtKind::For: {
        auto* f = static_cast<ast::ForStmt*>(s);
        if (f->cond() != nullptr) forEachExpr(f->cond(), fn);
        if (f->step() != nullptr) forEachExpr(f->step(), fn);
        break;
      }
      case ast::StmtKind::While:
        forEachExpr(static_cast<ast::WhileStmt*>(s)->cond(), fn);
        break;
      case ast::StmtKind::Do:
        forEachExpr(static_cast<ast::DoStmt*>(s)->cond(), fn);
        break;
      case ast::StmtKind::Return:
        if (auto* v = static_cast<ast::ReturnStmt*>(s)->value()) forEachExpr(v, fn);
        break;
      default:
        break;
    }
  });
}

}  // namespace

bool removeStmt(ast::CompoundStmt& parent, const ast::Stmt* target) {
  auto& body = parent.body();
  const auto it = std::find(body.begin(), body.end(), target);
  if (it == body.end()) return false;
  body.erase(it);
  return true;
}

std::size_t insertBefore(ast::CompoundStmt& parent, const ast::Stmt* anchor,
                         ast::Stmt* stmt) {
  auto& body = parent.body();
  const auto it = std::find(body.begin(), body.end(), anchor);
  const auto pos = body.insert(it, stmt);
  return static_cast<std::size_t>(pos - body.begin());
}

std::size_t insertAfter(ast::CompoundStmt& parent, const ast::Stmt* anchor,
                        ast::Stmt* stmt) {
  auto& body = parent.body();
  auto it = std::find(body.begin(), body.end(), anchor);
  if (it != body.end()) ++it;
  else it = body.begin();
  const auto pos = body.insert(it, stmt);
  return static_cast<std::size_t>(pos - body.begin());
}

ast::CompoundStmt* findParentCompound(ast::Stmt* root, const ast::Stmt* target) {
  ast::CompoundStmt* found = nullptr;
  forEachStmt(root, [&](ast::Stmt* s) {
    if (found != nullptr || s->kind() != ast::StmtKind::Compound) return;
    auto* compound = static_cast<ast::CompoundStmt*>(s);
    const auto& body = compound->body();
    if (std::find(body.begin(), body.end(), target) != body.end()) found = compound;
  });
  return found;
}

void forEachStmt(ast::Stmt* root, const std::function<void(ast::Stmt*)>& fn) {
  if (root == nullptr) return;
  fn(root);
  switch (root->kind()) {
    case ast::StmtKind::Compound: {
      // Copy: callers may mutate the body during iteration.
      const std::vector<ast::Stmt*> body = static_cast<ast::CompoundStmt*>(root)->body();
      for (ast::Stmt* s : body) forEachStmt(s, fn);
      break;
    }
    case ast::StmtKind::If: {
      auto* s = static_cast<ast::IfStmt*>(root);
      forEachStmt(s->thenStmt(), fn);
      forEachStmt(s->elseStmt(), fn);
      break;
    }
    case ast::StmtKind::For: {
      auto* s = static_cast<ast::ForStmt*>(root);
      forEachStmt(s->init(), fn);
      forEachStmt(s->body(), fn);
      break;
    }
    case ast::StmtKind::While:
      forEachStmt(static_cast<ast::WhileStmt*>(root)->body(), fn);
      break;
    case ast::StmtKind::Do:
      forEachStmt(static_cast<ast::DoStmt*>(root)->body(), fn);
      break;
    default:
      break;
  }
}

bool containsCall(const ast::Expr* expr, const std::string& callee) {
  bool found = false;
  forEachExpr(const_cast<ast::Expr*>(expr), [&](ast::Expr* e) {
    if (e->kind() == ast::ExprKind::Call &&
        static_cast<ast::CallExpr*>(e)->calleeName() == callee) {
      found = true;
    }
  });
  return found;
}

bool stmtContainsCall(const ast::Stmt* stmt, const std::string& callee) {
  bool found = false;
  forEachExprInStmt(const_cast<ast::Stmt*>(stmt), [&](ast::Expr* e) {
    if (e->kind() == ast::ExprKind::Call &&
        static_cast<ast::CallExpr*>(e)->calleeName() == callee) {
      found = true;
    }
  });
  return found;
}

std::size_t replaceDeclRefsInExpr(ast::Expr* expr, const ast::Decl* from,
                                  ast::VarDecl* to) {
  std::size_t count = 0;
  forEachExpr(expr, [&](ast::Expr* e) {
    if (e->kind() != ast::ExprKind::DeclRef) return;
    auto* ref = static_cast<ast::DeclRefExpr*>(e);
    if (ref->decl() == from) {
      ref->setName(to->name());
      ref->setDecl(to);
      ++count;
    }
  });
  return count;
}

std::size_t replaceDeclRefs(ast::Stmt* root, const ast::Decl* from, ast::VarDecl* to) {
  std::size_t count = 0;
  forEachExprInStmt(root, [&](ast::Expr* e) {
    if (e->kind() != ast::ExprKind::DeclRef) return;
    auto* ref = static_cast<ast::DeclRefExpr*>(e);
    if (ref->decl() == from) {
      ref->setName(to->name());
      ref->setDecl(to);
      ++count;
    }
  });
  return count;
}

std::size_t countDeclRefs(const ast::Stmt* root, const ast::Decl* decl) {
  std::size_t count = 0;
  forEachExprInStmt(const_cast<ast::Stmt*>(root), [&](ast::Expr* e) {
    if (e->kind() == ast::ExprKind::DeclRef &&
        static_cast<ast::DeclRefExpr*>(e)->decl() == decl) {
      ++count;
    }
  });
  return count;
}

ast::ExprStmt* makeCallStmt(ast::ASTContext& ctx, const std::string& name,
                            std::vector<ast::Expr*> args, SourceLoc loc) {
  auto* callee = ctx.makeExpr<ast::DeclRefExpr>(name, loc);
  auto* call = ctx.makeExpr<ast::CallExpr>(callee, std::move(args), loc);
  return ctx.makeStmt<ast::ExprStmt>(call, loc);
}

ast::DeclRefExpr* makeRef(ast::ASTContext& ctx, ast::VarDecl* decl, SourceLoc loc) {
  auto* ref = ctx.makeExpr<ast::DeclRefExpr>(decl->name(), loc);
  ref->setDecl(decl);
  return ref;
}

ast::DeclRefExpr* makeNameRef(ast::ASTContext& ctx, const std::string& name,
                              SourceLoc loc) {
  return ctx.makeExpr<ast::DeclRefExpr>(name, loc);
}

ast::Expr* rewriteExprTree(ast::Expr* root, const ExprRewriteFn& fn) {
  if (root == nullptr) return nullptr;
  switch (root->kind()) {
    case ast::ExprKind::Unary: {
      auto* u = static_cast<ast::UnaryExpr*>(root);
      u->setOperand(rewriteExprTree(u->operand(), fn));
      break;
    }
    case ast::ExprKind::Binary: {
      auto* b = static_cast<ast::BinaryExpr*>(root);
      b->setLhs(rewriteExprTree(b->lhs(), fn));
      b->setRhs(rewriteExprTree(b->rhs(), fn));
      break;
    }
    case ast::ExprKind::Conditional: {
      auto* c = static_cast<ast::ConditionalExpr*>(root);
      c->setCond(rewriteExprTree(c->cond(), fn));
      c->setThenExpr(rewriteExprTree(c->thenExpr(), fn));
      c->setElseExpr(rewriteExprTree(c->elseExpr(), fn));
      break;
    }
    case ast::ExprKind::Call: {
      auto* c = static_cast<ast::CallExpr*>(root);
      c->setCallee(rewriteExprTree(c->callee(), fn));
      for (ast::Expr*& a : c->args()) a = rewriteExprTree(a, fn);
      break;
    }
    case ast::ExprKind::Index: {
      auto* i = static_cast<ast::IndexExpr*>(root);
      i->setBase(rewriteExprTree(i->base(), fn));
      i->setIndex(rewriteExprTree(i->index(), fn));
      break;
    }
    case ast::ExprKind::Member: {
      auto* m = static_cast<ast::MemberExpr*>(root);
      m->setBase(rewriteExprTree(m->base(), fn));
      break;
    }
    case ast::ExprKind::Cast: {
      auto* c = static_cast<ast::CastExpr*>(root);
      c->setOperand(rewriteExprTree(c->operand(), fn));
      break;
    }
    default:
      break;
  }
  return fn(root);
}

void rewriteExprsInStmt(ast::Stmt* root, const ExprRewriteFn& fn) {
  forEachStmt(root, [&fn](ast::Stmt* s) {
    switch (s->kind()) {
      case ast::StmtKind::Expr: {
        auto* e = static_cast<ast::ExprStmt*>(s);
        e->setExpr(rewriteExprTree(e->expr(), fn));
        break;
      }
      case ast::StmtKind::Decl:
        for (ast::VarDecl* v : static_cast<ast::DeclStmt*>(s)->decls()) {
          if (v->init() != nullptr) v->setInit(rewriteExprTree(v->init(), fn));
        }
        break;
      case ast::StmtKind::If: {
        auto* i = static_cast<ast::IfStmt*>(s);
        i->setCond(rewriteExprTree(i->cond(), fn));
        break;
      }
      case ast::StmtKind::For: {
        auto* f = static_cast<ast::ForStmt*>(s);
        if (f->cond() != nullptr) f->setCond(rewriteExprTree(f->cond(), fn));
        if (f->step() != nullptr) f->setStep(rewriteExprTree(f->step(), fn));
        break;
      }
      case ast::StmtKind::While: {
        auto* w = static_cast<ast::WhileStmt*>(s);
        w->setCond(rewriteExprTree(w->cond(), fn));
        break;
      }
      case ast::StmtKind::Do: {
        auto* d = static_cast<ast::DoStmt*>(s);
        d->setCond(rewriteExprTree(d->cond(), fn));
        break;
      }
      case ast::StmtKind::Return: {
        auto* r = static_cast<ast::ReturnStmt*>(s);
        if (r->value() != nullptr) r->setValue(rewriteExprTree(r->value(), fn));
        break;
      }
      default:
        break;
    }
  });
}

}  // namespace hsm::transform

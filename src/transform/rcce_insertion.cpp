#include "transform/rcce_insertion.h"

#include "transform/ast_edit.h"

namespace hsm::transform {

bool RenameMainPass::run(PassContext& ctx) {
  ast::FunctionDecl* main_fn = ctx.ast.unit().findFunction("main");
  if (main_fn == nullptr || !main_fn->isDefinition()) {
    ctx.diags.error({}, "translation requires a 'main' function definition");
    return false;
  }
  main_fn->rename("RCCE_APP");
  // The RCCE entry point takes `int *argc, char *argv[]` (paper Example 4.2).
  ast::TypeTable& types = ctx.ast.types();
  if (main_fn->params().empty()) {
    auto* argc = ctx.ast.makeDecl<ast::ParamDecl>(
        "argc", types.pointerTo(types.intType()), main_fn->loc());
    auto* argv = ctx.ast.makeDecl<ast::ParamDecl>(
        "argv", types.pointerTo(types.pointerTo(types.charType())), main_fn->loc());
    main_fn->params().push_back(argc);
    main_fn->params().push_back(argv);
  }
  ctx.entry = main_fn;
  return true;
}

bool AddRcceInitPass::run(PassContext& ctx) {
  if (ctx.entry == nullptr || ctx.entry->body() == nullptr) return false;
  ast::CompoundStmt& body = *ctx.entry->body();
  // `RCCE_init(&argc, &argv);` inserted before the first statement (Alg. 9).
  auto* argc_ref = makeNameRef(ctx.ast, "argc");
  auto* argv_ref = makeNameRef(ctx.ast, "argv");
  auto* addr_argc = ctx.ast.makeExpr<ast::UnaryExpr>(ast::UnaryOp::AddrOf, argc_ref,
                                                     SourceLoc{});
  auto* addr_argv = ctx.ast.makeExpr<ast::UnaryExpr>(ast::UnaryOp::AddrOf, argv_ref,
                                                     SourceLoc{});
  ast::ExprStmt* init = makeCallStmt(ctx.ast, "RCCE_init", {addr_argc, addr_argv});
  const ast::Stmt* first = body.body().empty() ? nullptr : body.body().front();
  insertBefore(body, first, init);
  return true;
}

bool InsertCoreIdPass::run(PassContext& ctx) {
  if (ctx.entry == nullptr || ctx.entry->body() == nullptr) return false;
  ast::CompoundStmt& body = *ctx.entry->body();

  auto* my_id = ctx.ast.makeDecl<ast::VarDecl>(ctx.core_id_name,
                                               ctx.ast.types().intType(), SourceLoc{});
  my_id->setOwner(ctx.entry);
  ctx.core_id_decl = my_id;

  auto* decl_stmt =
      ctx.ast.makeStmt<ast::DeclStmt>(std::vector<ast::VarDecl*>{my_id}, SourceLoc{});
  auto* assign = ctx.ast.makeExpr<ast::BinaryExpr>(
      ast::BinaryOp::Assign, makeRef(ctx.ast, my_id),
      ctx.ast.makeExpr<ast::CallExpr>(makeNameRef(ctx.ast, "RCCE_ue"),
                                      std::vector<ast::Expr*>{}, SourceLoc{}),
      SourceLoc{});
  auto* assign_stmt = ctx.ast.makeStmt<ast::ExprStmt>(assign, SourceLoc{});

  // Place after the RCCE prologue: RCCE_init plus any allocation calls the
  // shared-memory pass inserted (they immediately follow RCCE_init).
  std::size_t pos = 0;
  const auto& stmts = body.body();
  for (std::size_t i = 0; i < stmts.size(); ++i) {
    const ast::Stmt* s = stmts[i];
    if (stmtContainsCall(s, "RCCE_init") || stmtContainsCall(s, "RCCE_shmalloc") ||
        stmtContainsCall(s, "RCCE_malloc")) {
      pos = i + 1;
    }
  }
  body.body().insert(body.body().begin() + static_cast<std::ptrdiff_t>(pos), assign_stmt);
  body.body().insert(body.body().begin() + static_cast<std::ptrdiff_t>(pos), decl_stmt);
  return true;
}

bool AddRcceFinalizePass::run(PassContext& ctx) {
  if (ctx.entry == nullptr || ctx.entry->body() == nullptr) return false;
  ast::CompoundStmt& body = *ctx.entry->body();
  ast::ExprStmt* finalize = makeCallStmt(ctx.ast, "RCCE_finalize", {});
  // Before the trailing return if present, else at the end (Alg. 10).
  const ast::Stmt* anchor = nullptr;
  if (!body.body().empty() && body.body().back()->kind() == ast::StmtKind::Return) {
    anchor = body.body().back();
    insertBefore(body, anchor, finalize);
  } else {
    body.append(finalize);
  }
  return true;
}

}  // namespace hsm::transform

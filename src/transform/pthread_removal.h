// Cleanup passes from the paper's appendices:
//   * ReplacePthreadSelfPass — Algorithm 6: pthread_self() → RCCE_ue()
//   * MutexToLockPass        — §4.5: pthread_mutex_lock/unlock become
//     RCCE_acquire_lock/RCCE_release_lock on a test-and-set register; each
//     distinct mutex variable is assigned a distinct register-owning core.
//     pthread_barrier_wait becomes RCCE_barrier(&RCCE_COMM_WORLD).
//   * RemovePthreadTypesPass — Algorithm 7: declarations of pthread data
//     types are removed (hash-set lookup per declaration).
//   * RemovePthreadApiPass   — Algorithm 8: statements calling any remaining
//     pthread API are removed (hash-set lookup per call).
#pragma once

#include "transform/pass.h"

namespace hsm::transform {

class ReplacePthreadSelfPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "replace-pthread-self"; }
  bool run(PassContext& ctx) override;
};

class MutexToLockPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "mutex-to-lock"; }
  bool run(PassContext& ctx) override;
};

class RemovePthreadTypesPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "remove-pthread-types"; }
  bool run(PassContext& ctx) override;
};

class RemovePthreadApiPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "remove-pthread-api"; }
  bool run(PassContext& ctx) override;
};

}  // namespace hsm::transform

// Cetus-style pass architecture (paper §5.3): every framework component is
// an AnalysisPass or a TransformPass; a Driver runs them in series and
// performs consistency checks on the IR between passes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/variable_info.h"
#include "ast/context.h"
#include "partition/memory_plan.h"
#include "support/diagnostics.h"

namespace hsm::transform {

/// Everything a pass may need: the tree, the analysis results, the Stage 4
/// plan, diagnostics, and a scratch area shared between passes.
struct PassContext {
  ast::ASTContext& ast;
  analysis::AnalysisResult& analysis;
  const partition::MemoryPlan& plan;
  DiagnosticEngine& diags;

  /// Name of the core-id variable inserted in the entry procedure ("myID").
  std::string core_id_name = "myID";
  /// The VarDecl for the core-id variable, once created.
  ast::VarDecl* core_id_decl = nullptr;
  /// The translated entry function (RCCE_APP), once renamed.
  ast::FunctionDecl* entry = nullptr;
  /// Alg. 4's hash table: thread functions that must run on a specific core
  /// (standalone tasks), mapped to that core id.
  std::vector<std::pair<std::string, int>> core_bound_tasks;
};

class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Returns false if the pass detected an unrecoverable problem.
  virtual bool run(PassContext& ctx) = 0;
};

/// Passes that only inspect the IR.
class AnalysisPass : public Pass {};
/// Passes that reshape the IR.
class TransformPass : public Pass {};

/// Runs passes in sequence with IR consistency checks in between
/// (the paper's Driver class).
class Driver {
 public:
  void add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }

  /// Runs all passes. Stops (returning false) on pass failure or a failed
  /// consistency check.
  bool runAll(PassContext& ctx);

  /// IR sanity check: every statement/expression link non-null where
  /// required, every function body present exactly once, etc.
  [[nodiscard]] static bool checkConsistency(const ast::TranslationUnit& unit,
                                             DiagnosticEngine& diags);

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace hsm::transform

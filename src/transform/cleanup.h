// Final cleanup passes:
//   * ReplaceIncludesPass     — `#include <pthread.h>` → `#include "RCCE.h"`
//   * RemoveUnusedLocalsPass  — locals with no remaining references (e.g.
//     the `rc` that only held pthread_create's result) are dropped.
//   * RemoveDemotedGlobalsPass— globals the analysis demoted to private and
//     that have no remaining uses (the paper's `global`) are dropped.
#pragma once

#include "transform/pass.h"

namespace hsm::transform {

class ReplaceIncludesPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "replace-includes"; }
  bool run(PassContext& ctx) override;
};

class RemoveUnusedLocalsPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "remove-unused-locals"; }
  bool run(PassContext& ctx) override;
};

class RemoveDemotedGlobalsPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "remove-demoted-globals"; }
  bool run(PassContext& ctx) override;
};

}  // namespace hsm::transform

#include "transform/threads_to_processes.h"

#include <vector>

#include "transform/ast_edit.h"

namespace hsm::transform {
namespace {

/// Find the statement in `root` whose expression tree contains `call`.
ast::Stmt* findStmtContaining(ast::Stmt* root, const ast::CallExpr* call) {
  ast::Stmt* found = nullptr;
  forEachStmt(root, [&](ast::Stmt* s) {
    if (found != nullptr) return;
    bool contains = false;
    // Cheap containment test: search expression slots for the pointer.
    rewriteExprsInStmt(s, [&](ast::Expr* e) {
      if (e == call) contains = true;
      return e;
    });
    if (!contains) return;
    // Prefer the innermost non-compound statement.
    if (s->kind() != ast::StmtKind::Compound && s->kind() != ast::StmtKind::For &&
        s->kind() != ast::StmtKind::While && s->kind() != ast::StmtKind::Do) {
      found = s;
    }
  });
  return found;
}

/// Find the loop statement that (transitively) contains `target`, or null.
ast::Stmt* findEnclosingLoop(ast::Stmt* root, const ast::Stmt* target) {
  ast::Stmt* found = nullptr;
  forEachStmt(root, [&](ast::Stmt* s) {
    if (found != nullptr) return;
    ast::Stmt* body = nullptr;
    if (s->kind() == ast::StmtKind::For) body = static_cast<ast::ForStmt*>(s)->body();
    else if (s->kind() == ast::StmtKind::While) body = static_cast<ast::WhileStmt*>(s)->body();
    else if (s->kind() == ast::StmtKind::Do) body = static_cast<ast::DoStmt*>(s)->body();
    if (body == nullptr) return;
    bool contains = false;
    forEachStmt(body, [&](ast::Stmt* inner) {
      if (inner == target) contains = true;
    });
    if (contains) found = s;
  });
  return found;
}

/// Induction variable of a canonical for loop (from its init clause).
ast::Decl* loopInductionDecl(ast::Stmt* loop) {
  if (loop == nullptr || loop->kind() != ast::StmtKind::For) return nullptr;
  auto* for_stmt = static_cast<ast::ForStmt*>(loop);
  if (for_stmt->init() == nullptr) return nullptr;
  if (for_stmt->init()->kind() == ast::StmtKind::Decl) {
    auto* decl = static_cast<ast::DeclStmt*>(for_stmt->init());
    return decl->decls().empty() ? nullptr : decl->decls().front();
  }
  if (for_stmt->init()->kind() == ast::StmtKind::Expr) {
    auto* expr_stmt = static_cast<ast::ExprStmt*>(for_stmt->init());
    if (expr_stmt->expr() != nullptr && expr_stmt->expr()->kind() == ast::ExprKind::Binary) {
      auto* assign = static_cast<ast::BinaryExpr*>(expr_stmt->expr());
      if (ast::isAssignmentOp(assign->op()) &&
          assign->lhs()->kind() == ast::ExprKind::DeclRef) {
        return static_cast<ast::DeclRefExpr*>(assign->lhs())->decl();
      }
    }
  }
  return nullptr;
}

/// Loop body statements, flattened if the body is a compound.
std::vector<ast::Stmt*> loopBodyStmts(ast::Stmt* loop) {
  ast::Stmt* body = nullptr;
  if (loop->kind() == ast::StmtKind::For) body = static_cast<ast::ForStmt*>(loop)->body();
  else if (loop->kind() == ast::StmtKind::While) body = static_cast<ast::WhileStmt*>(loop)->body();
  else if (loop->kind() == ast::StmtKind::Do) body = static_cast<ast::DoStmt*>(loop)->body();
  if (body == nullptr) return {};
  if (body->kind() == ast::StmtKind::Compound) {
    return static_cast<ast::CompoundStmt*>(body)->body();
  }
  return {body};
}

void removeFromLoopBody(ast::Stmt* loop, const ast::Stmt* target) {
  ast::Stmt* body = nullptr;
  if (loop->kind() == ast::StmtKind::For) body = static_cast<ast::ForStmt*>(loop)->body();
  else if (loop->kind() == ast::StmtKind::While) body = static_cast<ast::WhileStmt*>(loop)->body();
  else if (loop->kind() == ast::StmtKind::Do) body = static_cast<ast::DoStmt*>(loop)->body();
  if (body != nullptr && body->kind() == ast::StmtKind::Compound) {
    removeStmt(*static_cast<ast::CompoundStmt*>(body), target);
  }
}

bool loopBodyEmpty(ast::Stmt* loop) {
  for (ast::Stmt* s : loopBodyStmts(loop)) {
    if (s->kind() != ast::StmtKind::Null) return false;
  }
  return true;
}

}  // namespace

bool ThreadsToProcessesPass::run(PassContext& ctx) {
  if (ctx.entry == nullptr || ctx.core_id_decl == nullptr) {
    ctx.diags.error({}, "threads-to-processes requires the RCCE skeleton passes");
    return false;
  }
  int standalone_core = 0;
  for (const analysis::ThreadLaunchSite& site : ctx.analysis.launches) {
    ast::FunctionDecl* caller = site.caller;
    if (caller == nullptr || caller->body() == nullptr) continue;
    // The caller may have been renamed (main → RCCE_APP); pointers are stable.
    ast::Stmt* create_stmt = findStmtContaining(caller->body(), site.call);
    if (create_stmt == nullptr) continue;

    // Build the replacement call: tf((void*)myID) for thread-id launches,
    // tf(<original argument>) otherwise (Alg. 4 lines 12–17).
    ast::Expr* arg = nullptr;
    if (site.arg_is_thread_id || site.thread_arg == nullptr) {
      arg = ctx.ast.makeExpr<ast::CastExpr>(
          ctx.ast.types().pointerTo(ctx.ast.types().voidType()),
          makeRef(ctx.ast, ctx.core_id_decl), SourceLoc{});
    } else {
      arg = site.thread_arg;  // reuse the original argument expression
    }
    ast::ExprStmt* new_call =
        makeCallStmt(ctx.ast, site.thread_fn_name, {arg}, site.call->loc());

    ast::Stmt* loop = findEnclosingLoop(caller->body(), create_stmt);
    if (loop != nullptr) {
      // Insert the call before the loop, remove the create from the body,
      // and drop the loop if nothing else remains (Alg. 4 lines 19–27).
      ast::CompoundStmt* parent = findParentCompound(caller->body(), loop);
      if (parent == nullptr) parent = caller->body();
      insertBefore(*parent, loop, new_call);
      removeFromLoopBody(loop, create_stmt);
      if (loopBodyEmpty(loop)) removeStmt(*parent, loop);
    } else {
      ast::CompoundStmt* parent = findParentCompound(caller->body(), create_stmt);
      if (parent == nullptr) parent = caller->body();
      ast::Stmt* inserted = new_call;
      if (!site.arg_is_thread_id) {
        // A standalone task must execute on exactly one core: wrap in
        // `if (myID == k)` using the order of appearance (§4.5).
        auto* cmp = ctx.ast.makeExpr<ast::BinaryExpr>(
            ast::BinaryOp::Eq, makeRef(ctx.ast, ctx.core_id_decl),
            ctx.ast.makeExpr<ast::IntLiteralExpr>(standalone_core,
                                                  std::to_string(standalone_core),
                                                  SourceLoc{}),
            SourceLoc{});
        inserted = ctx.ast.makeStmt<ast::IfStmt>(cmp, new_call, nullptr, SourceLoc{});
        ctx.core_bound_tasks.emplace_back(site.thread_fn_name, standalone_core);
        ++standalone_core;
      }
      insertBefore(*parent, create_stmt, inserted);
      removeStmt(*parent, create_stmt);
    }
  }
  return true;
}

bool JoinToBarrierPass::run(PassContext& ctx) {
  if (ctx.entry == nullptr || ctx.core_id_decl == nullptr) return false;

  for (ast::FunctionDecl* fn : ctx.ast.unit().functions()) {
    if (fn->body() == nullptr) continue;
    // Collect join statements first; then edit.
    std::vector<ast::Stmt*> join_stmts;
    forEachStmt(fn->body(), [&](ast::Stmt* s) {
      // Only leaf statements: a compound or loop "contains" the call too,
      // but the statement to rewrite is the expression statement itself.
      if (s->kind() != ast::StmtKind::Expr) return;
      if (stmtContainsCall(s, "pthread_join")) join_stmts.push_back(s);
    });

    for (ast::Stmt* join_stmt : join_stmts) {
      ast::Stmt* loop = findEnclosingLoop(fn->body(), join_stmt);
      auto* barrier = makeCallStmt(
          ctx.ast, "RCCE_barrier",
          {ctx.ast.makeExpr<ast::UnaryExpr>(
              ast::UnaryOp::AddrOf, makeNameRef(ctx.ast, "RCCE_COMM_WORLD"), SourceLoc{})});
      if (loop != nullptr) {
        ast::CompoundStmt* parent = findParentCompound(fn->body(), loop);
        if (parent == nullptr) parent = fn->body();
        // Barrier replaces the synchronization effect of joining all threads.
        insertBefore(*parent, loop, barrier);
        removeFromLoopBody(loop, join_stmt);
        // Unroll what remains of the loop body once, with the induction
        // variable rewritten to the core id (per-core epilogue).
        ast::Decl* induction = loopInductionDecl(loop);
        std::vector<ast::Stmt*> remaining = loopBodyStmts(loop);
        const ast::Stmt* anchor = loop;
        for (ast::Stmt* s : remaining) {
          if (s->kind() == ast::StmtKind::Null) continue;
          if (induction != nullptr) replaceDeclRefs(s, induction, ctx.core_id_decl);
          insertAfter(*parent, anchor, s);
          anchor = s;
        }
        removeStmt(*parent, loop);
      } else {
        ast::CompoundStmt* parent = findParentCompound(fn->body(), join_stmt);
        if (parent == nullptr) parent = fn->body();
        // Avoid stacking barriers for consecutive joins.
        const auto& body = parent->body();
        const auto it = std::find(body.begin(), body.end(), join_stmt);
        const bool prev_is_barrier =
            it != body.begin() && stmtContainsCall(*(it - 1), "RCCE_barrier");
        if (!prev_is_barrier) insertBefore(*parent, join_stmt, barrier);
        removeStmt(*parent, join_stmt);
      }
    }
  }
  return true;
}

}  // namespace hsm::transform

#include "transform/shared_memory.h"

#include <vector>

#include "transform/ast_edit.h"

namespace hsm::transform {
namespace {

/// Is `stmt` an assignment `v = ...malloc...`? (Algorithm 3 lines 8–10.)
bool isMallocAssignmentTo(const ast::Stmt* stmt, const ast::Decl* var) {
  if (stmt->kind() != ast::StmtKind::Expr) return false;
  const auto* expr_stmt = static_cast<const ast::ExprStmt*>(stmt);
  if (expr_stmt->expr() == nullptr || expr_stmt->expr()->kind() != ast::ExprKind::Binary) {
    return false;
  }
  const auto* assign = static_cast<const ast::BinaryExpr*>(expr_stmt->expr());
  if (assign->op() != ast::BinaryOp::Assign) return false;
  const ast::Expr* lhs = assign->lhs();
  if (lhs->kind() != ast::ExprKind::DeclRef ||
      static_cast<const ast::DeclRefExpr*>(lhs)->decl() != var) {
    return false;
  }
  return containsCall(assign->rhs(), "malloc") || containsCall(assign->rhs(), "calloc");
}

}  // namespace

bool SharedToShmallocPass::run(PassContext& ctx) {
  if (ctx.entry == nullptr || ctx.entry->body() == nullptr) {
    ctx.diags.error({}, "shared-to-shmalloc requires the renamed entry function");
    return false;
  }
  ast::TypeTable& types = ctx.ast.types();
  ast::CompoundStmt& entry_body = *ctx.entry->body();

  // Anchor: the RCCE_init statement (allocations go right after it).
  const ast::Stmt* anchor = nullptr;
  for (const ast::Stmt* s : entry_body.body()) {
    if (stmtContainsCall(s, "RCCE_init")) {
      anchor = s;
      break;
    }
  }

  for (const partition::PlacementDecision& decision : ctx.plan.decisions) {
    const analysis::VariableInfo* info = decision.variable;
    if (info == nullptr || info->decl == nullptr) continue;
    ast::VarDecl* var = info->decl;
    if (!var->isGlobal()) {
      ctx.diags.warning(var->loc(),
                        "shared local variable '" + var->name() +
                            "' is not converted; only globals map to shared memory");
      continue;
    }
    const ast::Type* type = var->type();
    if (type == nullptr) continue;

    const ast::Type* element = nullptr;
    std::size_t count = 1;
    bool scalar_conversion = false;
    if (type->isArray()) {
      element = type->element();
      count = type->arrayLength();
    } else if (type->isPointer()) {
      // The paper allocates pointee storage for shared pointers
      // (Example 4.2: `ptr=(int*)RCCE_shmalloc(sizeof(int)*1)`).
      element = type->element();
      count = 1;
    } else {
      element = type;
      count = 1;
      scalar_conversion = true;
    }
    if (element->isVoid()) element = types.charType();

    // Rewrite scalar uses v → (*v) before the declaration changes meaning.
    if (scalar_conversion) {
      for (ast::FunctionDecl* fn : ctx.ast.unit().functions()) {
        if (fn->body() == nullptr) continue;
        rewriteExprsInStmt(fn->body(), [&](ast::Expr* e) -> ast::Expr* {
          if (e->kind() == ast::ExprKind::DeclRef &&
              static_cast<ast::DeclRefExpr*>(e)->decl() == var) {
            return ctx.ast.makeExpr<ast::UnaryExpr>(ast::UnaryOp::Deref, e, e->loc());
          }
          // Simplify &*v back to v.
          if (e->kind() == ast::ExprKind::Unary) {
            auto* outer = static_cast<ast::UnaryExpr*>(e);
            if (outer->op() == ast::UnaryOp::AddrOf &&
                outer->operand()->kind() == ast::ExprKind::Unary) {
              auto* inner = static_cast<ast::UnaryExpr*>(outer->operand());
              if (inner->op() == ast::UnaryOp::Deref) return inner->operand();
            }
          }
          return e;
        });
      }
    }

    // Preserve a scalar initializer as a post-allocation store.
    ast::Expr* saved_init = nullptr;
    if (scalar_conversion && var->init() != nullptr &&
        var->init()->kind() != ast::ExprKind::InitList) {
      saved_init = var->init();
    }

    // Rewrite the declaration to a plain pointer with no initializer.
    if (type->isArray() || scalar_conversion) var->setType(types.pointerTo(element));
    var->setInit(nullptr);

    // Remove a pre-existing malloc for this variable (Alg. 3 lines 8–10).
    for (ast::FunctionDecl* fn : ctx.ast.unit().functions()) {
      if (fn->body() == nullptr) continue;
      std::vector<ast::Stmt*> to_remove;
      forEachStmt(fn->body(), [&](ast::Stmt* s) {
        if (isMallocAssignmentTo(s, var)) to_remove.push_back(s);
      });
      for (ast::Stmt* s : to_remove) {
        ast::CompoundStmt* parent = findParentCompound(fn->body(), s);
        if (parent == nullptr) parent = fn->body();
        removeStmt(*parent, s);
      }
    }

    // Build `v = (T*)ALLOC(sizeof(T) * N);`
    const char* alloc_fn = decision.placement == partition::Placement::OnChip
                               ? "RCCE_malloc"
                               : "RCCE_shmalloc";
    auto* size_expr = ctx.ast.makeExpr<ast::BinaryExpr>(
        ast::BinaryOp::Mul, ctx.ast.makeExpr<ast::SizeofExpr>(element, SourceLoc{}),
        ctx.ast.makeExpr<ast::IntLiteralExpr>(static_cast<long long>(count),
                                              std::to_string(count), SourceLoc{}),
        SourceLoc{});
    auto* alloc_call = ctx.ast.makeExpr<ast::CallExpr>(
        makeNameRef(ctx.ast, alloc_fn), std::vector<ast::Expr*>{size_expr}, SourceLoc{});
    auto* cast = ctx.ast.makeExpr<ast::CastExpr>(types.pointerTo(element), alloc_call,
                                                 SourceLoc{});
    auto* assign = ctx.ast.makeExpr<ast::BinaryExpr>(ast::BinaryOp::Assign,
                                                     makeRef(ctx.ast, var), cast,
                                                     SourceLoc{});
    auto* alloc_stmt = ctx.ast.makeStmt<ast::ExprStmt>(assign, SourceLoc{});

    const std::size_t at = insertAfter(entry_body, anchor, alloc_stmt);
    anchor = entry_body.body()[at];

    if (saved_init != nullptr) {
      auto* store = ctx.ast.makeExpr<ast::BinaryExpr>(
          ast::BinaryOp::Assign,
          ctx.ast.makeExpr<ast::UnaryExpr>(ast::UnaryOp::Deref, makeRef(ctx.ast, var),
                                           SourceLoc{}),
          saved_init, SourceLoc{});
      auto* store_stmt = ctx.ast.makeStmt<ast::ExprStmt>(store, SourceLoc{});
      const std::size_t store_at = insertAfter(entry_body, anchor, store_stmt);
      anchor = entry_body.body()[store_at];
    }
  }
  return true;
}

}  // namespace hsm::transform

#include "transform/cleanup.h"

#include <algorithm>

#include "transform/ast_edit.h"

namespace hsm::transform {
namespace {

bool exprHasCalls(const ast::Expr* e) {
  if (e == nullptr) return false;
  bool found = false;
  switch (e->kind()) {
    case ast::ExprKind::Call:
      return true;
    case ast::ExprKind::Unary:
      return exprHasCalls(static_cast<const ast::UnaryExpr*>(e)->operand());
    case ast::ExprKind::Binary: {
      const auto* b = static_cast<const ast::BinaryExpr*>(e);
      return exprHasCalls(b->lhs()) || exprHasCalls(b->rhs());
    }
    case ast::ExprKind::Conditional: {
      const auto* c = static_cast<const ast::ConditionalExpr*>(e);
      return exprHasCalls(c->cond()) || exprHasCalls(c->thenExpr()) ||
             exprHasCalls(c->elseExpr());
    }
    case ast::ExprKind::Cast:
      return exprHasCalls(static_cast<const ast::CastExpr*>(e)->operand());
    case ast::ExprKind::Index: {
      const auto* i = static_cast<const ast::IndexExpr*>(e);
      return exprHasCalls(i->base()) || exprHasCalls(i->index());
    }
    case ast::ExprKind::InitList:
      for (const ast::Expr* init : static_cast<const ast::InitListExpr*>(e)->inits()) {
        found = found || exprHasCalls(init);
      }
      return found;
    default:
      return false;
  }
}

}  // namespace

bool ReplaceIncludesPass::run(PassContext& ctx) {
  for (lex::Directive& d : ctx.ast.unit().directives()) {
    if (d.text.find("pthread.h") != std::string::npos) {
      d.text = "#include \"RCCE.h\"";
    }
  }
  return true;
}

bool RemoveUnusedLocalsPass::run(PassContext& ctx) {
  for (ast::FunctionDecl* fn : ctx.ast.unit().functions()) {
    if (fn->body() == nullptr) continue;
    bool changed = true;
    while (changed) {
      changed = false;
      forEachStmt(fn->body(), [&](ast::Stmt* s) {
        if (s->kind() != ast::StmtKind::Compound) return;
        auto* compound = static_cast<ast::CompoundStmt*>(s);
        auto& body = compound->body();
        for (auto it = body.begin(); it != body.end();) {
          bool erased = false;
          if ((*it)->kind() == ast::StmtKind::Decl) {
            auto* decl_stmt = static_cast<ast::DeclStmt*>(*it);
            auto& decls = decl_stmt->decls();
            for (auto vit = decls.begin(); vit != decls.end();) {
              ast::VarDecl* var = *vit;
              const bool keep = countDeclRefs(fn->body(), var) > 0 ||
                                exprHasCalls(var->init());
              if (!keep) {
                vit = decls.erase(vit);
                changed = true;
              } else {
                ++vit;
              }
            }
            if (decls.empty()) {
              it = body.erase(it);
              erased = true;
              changed = true;
            }
          }
          if (!erased) ++it;
        }
      });
    }
  }
  return true;
}

bool RemoveDemotedGlobalsPass::run(PassContext& ctx) {
  auto& top_levels = ctx.ast.unit().topLevels();
  for (auto it = top_levels.begin(); it != top_levels.end();) {
    if (it->kind == ast::TopLevel::Kind::Vars) {
      auto& vars = it->vars;
      vars.erase(std::remove_if(vars.begin(), vars.end(),
                                [&](ast::VarDecl* v) {
                                  const analysis::VariableInfo* info =
                                      ctx.analysis.find(v);
                                  if (info == nullptr || info->isShared()) return false;
                                  // Demoted and unreferenced everywhere.
                                  for (ast::FunctionDecl* fn : ctx.ast.unit().functions()) {
                                    if (fn->body() != nullptr &&
                                        countDeclRefs(fn->body(), v) > 0) {
                                      return false;
                                    }
                                  }
                                  return info->is_global &&
                                         info->status == analysis::Sharing::Private;
                                }),
                 vars.end());
      if (vars.empty()) {
        it = top_levels.erase(it);
        continue;
      }
    }
    ++it;
  }
  return true;
}

}  // namespace hsm::transform

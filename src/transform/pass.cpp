#include "transform/pass.h"

#include "transform/ast_edit.h"

namespace hsm::transform {

bool Driver::runAll(PassContext& ctx) {
  for (const std::unique_ptr<Pass>& pass : passes_) {
    if (!pass->run(ctx)) {
      ctx.diags.error({}, "pass '" + pass->name() + "' failed");
      return false;
    }
    if (!checkConsistency(ctx.ast.unit(), ctx.diags)) {
      ctx.diags.error({}, "IR inconsistent after pass '" + pass->name() + "'");
      return false;
    }
  }
  return true;
}

bool Driver::checkConsistency(const ast::TranslationUnit& unit, DiagnosticEngine& diags) {
  bool ok = true;
  for (const ast::TopLevel& tl : unit.topLevels()) {
    if (tl.kind == ast::TopLevel::Kind::Vars) {
      for (const ast::VarDecl* v : tl.vars) {
        if (v == nullptr) {
          diags.error({}, "null variable declaration at file scope");
          ok = false;
        }
      }
    } else {
      if (tl.function == nullptr) {
        diags.error({}, "null function at file scope");
        ok = false;
        continue;
      }
      if (tl.function->body() == nullptr) continue;
      forEachStmt(tl.function->body(), [&](ast::Stmt* s) {
        if (s == nullptr) {
          diags.error({}, "null statement in '" + tl.function->name() + "'");
          ok = false;
          return;
        }
        if (s->kind() == ast::StmtKind::Compound) {
          for (const ast::Stmt* child : static_cast<ast::CompoundStmt*>(s)->body()) {
            if (child == nullptr) {
              diags.error({}, "null child statement in '" + tl.function->name() + "'");
              ok = false;
            }
          }
        }
        if (s->kind() == ast::StmtKind::Expr &&
            static_cast<ast::ExprStmt*>(s)->expr() == nullptr) {
          diags.error({}, "expression statement without expression in '" +
                              tl.function->name() + "'");
          ok = false;
        }
      });
    }
  }
  return ok;
}

}  // namespace hsm::transform

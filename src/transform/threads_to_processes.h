// The heart of Stage 5:
//   * ThreadsToProcessesPass — Algorithm 4: replace every pthread_create
//     with a direct call to the thread routine. Loop-launched routines run
//     on every core with `(void*)myID` as the thread-id argument; standalone
//     routines are wrapped in `if (myID == k)` so each task lands on its
//     own core (the hash-table isolation described in §4.5).
//   * JoinToBarrierPass — Algorithm 5 extended: pthread_join becomes an
//     RCCE_barrier; a join loop is unrolled to its remaining body with the
//     loop induction variable replaced by the core id (paper Example 4.2
//     keeps the per-thread printf as a per-core printf).
#pragma once

#include "transform/pass.h"

namespace hsm::transform {

class ThreadsToProcessesPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "threads-to-processes"; }
  bool run(PassContext& ctx) override;
};

class JoinToBarrierPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "join-to-barrier"; }
  bool run(PassContext& ctx) override;
};

}  // namespace hsm::transform

#include "transform/pthread_removal.h"

#include <map>
#include <unordered_set>
#include <vector>

#include "transform/ast_edit.h"

namespace hsm::transform {
namespace {

/// Algorithm 7's prepopulated hash set of pthread data types.
const std::unordered_set<std::string>& pthreadTypeSet() {
  static const std::unordered_set<std::string> types = {
      "pthread_t",     "pthread_attr_t",      "pthread_mutex_t",
      "pthread_mutexattr_t", "pthread_cond_t", "pthread_condattr_t",
      "pthread_barrier_t", "pthread_barrierattr_t", "pthread_key_t",
      "pthread_once_t", "pthread_rwlock_t", "pthread_spinlock_t",
  };
  return types;
}

/// Algorithm 8's prepopulated hash set of pthread API calls to remove.
const std::unordered_set<std::string>& pthreadApiSet() {
  static const std::unordered_set<std::string> calls = {
      "pthread_exit",          "pthread_join",         "pthread_create",
      "pthread_mutex_init",    "pthread_mutex_destroy", "pthread_attr_init",
      "pthread_attr_destroy",  "pthread_attr_setdetachstate",
      "pthread_setconcurrency", "pthread_detach",       "pthread_cancel",
      "pthread_cond_init",     "pthread_cond_destroy",  "pthread_barrier_init",
      "pthread_barrier_destroy", "pthread_key_create",  "pthread_key_delete",
      "pthread_yield",
  };
  return calls;
}

bool typeIsPthread(const ast::Type* type) {
  while (type != nullptr && (type->isPointer() || type->isArray())) type = type->element();
  return type != nullptr && type->isNamed() && pthreadTypeSet().count(type->name()) > 0;
}

/// The name of the mutex variable in `pthread_mutex_lock(&m)` / `(m)`.
const ast::Decl* mutexOperand(const ast::CallExpr& call) {
  if (call.args().empty()) return nullptr;
  const ast::Expr* arg = call.args().front();
  while (arg != nullptr && arg->kind() == ast::ExprKind::Cast) {
    arg = static_cast<const ast::CastExpr*>(arg)->operand();
  }
  if (arg != nullptr && arg->kind() == ast::ExprKind::Unary) {
    const auto* unary = static_cast<const ast::UnaryExpr*>(arg);
    if (unary->op() == ast::UnaryOp::AddrOf) arg = unary->operand();
  }
  if (arg != nullptr && arg->kind() == ast::ExprKind::DeclRef) {
    return static_cast<const ast::DeclRefExpr*>(arg)->decl();
  }
  return nullptr;
}

}  // namespace

bool ReplacePthreadSelfPass::run(PassContext& ctx) {
  for (ast::FunctionDecl* fn : ctx.ast.unit().functions()) {
    if (fn->body() == nullptr) continue;
    rewriteExprsInStmt(fn->body(), [&](ast::Expr* e) -> ast::Expr* {
      if (e->kind() != ast::ExprKind::Call) return e;
      auto* call = static_cast<ast::CallExpr*>(e);
      if (call->calleeName() != "pthread_self") return e;
      return ctx.ast.makeExpr<ast::CallExpr>(makeNameRef(ctx.ast, "RCCE_ue"),
                                             std::vector<ast::Expr*>{}, e->loc());
    });
  }
  return true;
}

bool MutexToLockPass::run(PassContext& ctx) {
  // Assign each distinct mutex a core whose test-and-set register backs it,
  // in order of first appearance (deterministic).
  std::map<const ast::Decl*, int> lock_ids;
  auto lockIdFor = [&](const ast::Decl* mutex) {
    const auto it = lock_ids.find(mutex);
    if (it != lock_ids.end()) return it->second;
    const int id = static_cast<int>(lock_ids.size());
    lock_ids.emplace(mutex, id);
    return id;
  };

  for (ast::FunctionDecl* fn : ctx.ast.unit().functions()) {
    if (fn->body() == nullptr) continue;
    rewriteExprsInStmt(fn->body(), [&](ast::Expr* e) -> ast::Expr* {
      if (e->kind() != ast::ExprKind::Call) return e;
      auto* call = static_cast<ast::CallExpr*>(e);
      const std::string name = call->calleeName();
      if (name == "pthread_mutex_lock" || name == "pthread_mutex_unlock") {
        const int id = lockIdFor(mutexOperand(*call));
        auto* id_lit =
            ctx.ast.makeExpr<ast::IntLiteralExpr>(id, std::to_string(id), e->loc());
        const char* target =
            name == "pthread_mutex_lock" ? "RCCE_acquire_lock" : "RCCE_release_lock";
        return ctx.ast.makeExpr<ast::CallExpr>(makeNameRef(ctx.ast, target),
                                               std::vector<ast::Expr*>{id_lit}, e->loc());
      }
      if (name == "pthread_barrier_wait") {
        auto* comm = ctx.ast.makeExpr<ast::UnaryExpr>(
            ast::UnaryOp::AddrOf, makeNameRef(ctx.ast, "RCCE_COMM_WORLD"), e->loc());
        return ctx.ast.makeExpr<ast::CallExpr>(makeNameRef(ctx.ast, "RCCE_barrier"),
                                               std::vector<ast::Expr*>{comm}, e->loc());
      }
      return e;
    });
  }
  return true;
}

bool RemovePthreadTypesPass::run(PassContext& ctx) {
  // File-scope declarations.
  auto& top_levels = ctx.ast.unit().topLevels();
  for (auto it = top_levels.begin(); it != top_levels.end();) {
    if (it->kind == ast::TopLevel::Kind::Vars) {
      auto& vars = it->vars;
      vars.erase(std::remove_if(vars.begin(), vars.end(),
                                [](const ast::VarDecl* v) { return typeIsPthread(v->type()); }),
                 vars.end());
      if (vars.empty()) {
        it = top_levels.erase(it);
        continue;
      }
    }
    ++it;
  }
  // Function-scope declarations.
  for (ast::FunctionDecl* fn : ctx.ast.unit().functions()) {
    if (fn->body() == nullptr) continue;
    forEachStmt(fn->body(), [&](ast::Stmt* s) {
      if (s->kind() != ast::StmtKind::Compound) return;
      auto* compound = static_cast<ast::CompoundStmt*>(s);
      auto& body = compound->body();
      for (auto it = body.begin(); it != body.end();) {
        if ((*it)->kind() == ast::StmtKind::Decl) {
          auto* decl_stmt = static_cast<ast::DeclStmt*>(*it);
          auto& decls = decl_stmt->decls();
          decls.erase(
              std::remove_if(decls.begin(), decls.end(),
                             [](const ast::VarDecl* v) { return typeIsPthread(v->type()); }),
              decls.end());
          if (decls.empty()) {
            it = body.erase(it);
            continue;
          }
        }
        ++it;
      }
    });
  }
  return true;
}

bool RemovePthreadApiPass::run(PassContext& ctx) {
  const auto& api = pthreadApiSet();
  for (ast::FunctionDecl* fn : ctx.ast.unit().functions()) {
    if (fn->body() == nullptr) continue;
    forEachStmt(fn->body(), [&](ast::Stmt* s) {
      if (s->kind() != ast::StmtKind::Compound) return;
      auto* compound = static_cast<ast::CompoundStmt*>(s);
      auto& body = compound->body();
      for (auto it = body.begin(); it != body.end();) {
        bool remove = false;
        if ((*it)->kind() == ast::StmtKind::Expr) {
          for (const std::string& name : api) {
            if (stmtContainsCall(*it, name)) {
              remove = true;
              break;
            }
          }
        }
        it = remove ? body.erase(it) : it + 1;
      }
    });
  }
  return true;
}

}  // namespace hsm::transform

// In-place AST editing utilities shared by the transform passes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ast/context.h"

namespace hsm::transform {

/// Remove `target` from `parent`'s statement list. Returns true if found.
bool removeStmt(ast::CompoundStmt& parent, const ast::Stmt* target);

/// Insert `stmt` before/after `anchor` inside `parent`. If `anchor` is not
/// found the statement is appended/prepended respectively. Returns the index
/// the statement was placed at.
std::size_t insertBefore(ast::CompoundStmt& parent, const ast::Stmt* anchor,
                         ast::Stmt* stmt);
std::size_t insertAfter(ast::CompoundStmt& parent, const ast::Stmt* anchor,
                        ast::Stmt* stmt);

/// Depth-first search for the CompoundStmt that directly contains `target`
/// anywhere under `root` (including nested compounds and loop bodies).
ast::CompoundStmt* findParentCompound(ast::Stmt* root, const ast::Stmt* target);

/// Call `fn` for every statement under `root`, innermost last.
void forEachStmt(ast::Stmt* root, const std::function<void(ast::Stmt*)>& fn);

/// Does this expression tree contain a call with the given callee name?
bool containsCall(const ast::Expr* expr, const std::string& callee);
/// Does this statement subtree contain a call with the given callee name?
bool stmtContainsCall(const ast::Stmt* stmt, const std::string& callee);

/// Rewrite every reference to `from` under `root` to refer to `to`
/// (rename + rebind). Returns the number of references rewritten.
std::size_t replaceDeclRefs(ast::Stmt* root, const ast::Decl* from, ast::VarDecl* to);
std::size_t replaceDeclRefsInExpr(ast::Expr* expr, const ast::Decl* from,
                                  ast::VarDecl* to);

/// Count references to `decl` under `root`.
std::size_t countDeclRefs(const ast::Stmt* root, const ast::Decl* decl);

/// Build `name(args...)` as an expression statement.
ast::ExprStmt* makeCallStmt(ast::ASTContext& ctx, const std::string& name,
                            std::vector<ast::Expr*> args, SourceLoc loc = {});
/// Build a reference to a known declaration.
ast::DeclRefExpr* makeRef(ast::ASTContext& ctx, ast::VarDecl* decl, SourceLoc loc = {});
/// Build a reference by name only (library identifiers like RCCE_COMM_WORLD).
ast::DeclRefExpr* makeNameRef(ast::ASTContext& ctx, const std::string& name,
                              SourceLoc loc = {});

/// Bottom-up expression rewriting: `fn` is applied to every node after its
/// children have been rewritten; returning a different pointer substitutes
/// the node in its parent slot. Returns the (possibly new) root.
using ExprRewriteFn = std::function<ast::Expr*(ast::Expr*)>;
ast::Expr* rewriteExprTree(ast::Expr* root, const ExprRewriteFn& fn);

/// Apply `rewriteExprTree` to every expression slot under a statement tree
/// (expression statements, initializers, conditions, steps, return values).
void rewriteExprsInStmt(ast::Stmt* root, const ExprRewriteFn& fn);

}  // namespace hsm::transform

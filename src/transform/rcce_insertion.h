// Passes that introduce the RCCE program skeleton:
//   * RenameMainPass        — `int main()` → `int RCCE_APP(int *argc, char *argv[])`
//   * AddRcceInitPass       — Algorithm 9: insert `RCCE_init(&argc, &argv)`
//   * InsertCoreIdPass      — declare `int myID; myID = RCCE_ue();`
//   * AddRcceFinalizePass   — Algorithm 10: insert `RCCE_finalize()` before return
#pragma once

#include "transform/pass.h"

namespace hsm::transform {

class RenameMainPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "rename-main"; }
  bool run(PassContext& ctx) override;
};

class AddRcceInitPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "add-rcce-init"; }
  bool run(PassContext& ctx) override;
};

class InsertCoreIdPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "insert-core-id"; }
  bool run(PassContext& ctx) override;
};

class AddRcceFinalizePass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "add-rcce-finalize"; }
  bool run(PassContext& ctx) override;
};

}  // namespace hsm::transform

// SharedToShmallocPass — applies the Stage 4 memory plan to the program
// (the transformation half of Algorithm 3):
//   * every shared global becomes a pointer declaration;
//   * an allocation call is inserted in the entry procedure right after
//     RCCE_init — `RCCE_shmalloc(sizeof(T)*N)` for off-chip placements,
//     `RCCE_malloc(sizeof(T)*N)` for on-chip (MPB) placements;
//   * a pre-existing `v = malloc(...)` for the variable is removed;
//   * uses of converted scalars are rewritten `v` → `*v` (with `&*v`
//     simplified back to `v`), so the shared object lives entirely in the
//     explicitly shared region.
#pragma once

#include "transform/pass.h"

namespace hsm::transform {

class SharedToShmallocPass final : public TransformPass {
 public:
  [[nodiscard]] std::string name() const override { return "shared-to-shmalloc"; }
  bool run(PassContext& ctx) override;
};

}  // namespace hsm::transform

// The translator→runtime execution contract.
//
// Stage 4 (partition/memory_plan.h) decides *where* each shared variable
// lives; this header carries that decision — refined by the stage-2 sharing
// tables into per-variable placement classes, exact per-UE MPB put/get owner
// sets, and a per-region shared-memory cacheability policy — across the
// translator→simulator boundary as ONE first-class value. It replaces the
// former scatter of ad-hoc channels: per-workload `use_mpb` bools, the
// machine-wide `config.shm_swcache` switch, and hand-reasoned
// `SccMachine::MpbScope` lambdas.
//
// Deliberately self-contained (std types only): the simulator consumes it
// (`SccMachine::launch`, `rcce::ShmArray`) without pulling in the analysis
// layer. Derivation from analysis results lives in memory_plan.h
// (`deriveExecutionPlan`). Contract semantics: docs/execution_plan.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hsm::partition {

/// Refinement of the stage-4 OnChip/OffChip split into the four execution
/// regimes the runtime actually distinguishes.
enum class PlacementClass : std::uint8_t {
  /// The object itself lives in MPB slices (fits the per-UE 8 KB slice);
  /// UEs access it with RCCE put/get at on-chip latencies.
  kOnChipResident,
  /// Master copy in off-chip DRAM, too big for a slice; blocks are staged
  /// through MPB slices per phase (the paper's Fig. 6.2 configurations).
  kOnChipStaged,
  /// Off-chip DRAM, word-granular hardware-uncached access (Fig. 6.1).
  kOffChipUncached,
  /// Off-chip DRAM routed through the per-core software-managed
  /// release-consistency cache (read-mostly data; docs/memory_model.md).
  kOffChipCached,
};

[[nodiscard]] const char* placementName(PlacementClass c);

[[nodiscard]] constexpr bool isOnChip(PlacementClass c) {
  return c == PlacementClass::kOnChipResident || c == PlacementClass::kOnChipStaged;
}

/// How UEs touch MPB slices for one on-chip (resident or staged) region —
/// the generator of the exact per-UE put/get owner sets.
enum class MpbPattern : std::uint8_t {
  kNone,           ///< no runtime MPB traffic (e.g. read-only config scalars
                   ///< broadcast at initialization, off-chip regions)
  kSelfStage,      ///< each UE stages through its OWN slice: put {ue}, get {ue}
  kRootFunnel,     ///< reduction through UE 0's slot: put {0}, get {0}
  kRotatingBroadcast,  ///< iteration-dependent owner publishes, everyone
                       ///< fetches (LU pivot rows): put {ue}, get {all}
  kNeighborRing,   ///< ring exchange: put {(ue+1) % n}, get {ue}
};

[[nodiscard]] const char* mpbPatternName(MpbPattern p);

/// Which memory controller serves an off-chip region's addresses — the
/// NUMA-placement half of the contract (docs/execution_plan.md, "Controller
/// placement"). Only meaningful for off-chip regions; the machine consults
/// it in the address→controller mapping of planned regions.
enum class ControllerPlacement : std::uint8_t {
  /// Requester-local: every access goes through the accessing core's own
  /// quadrant controller — the machine's legacy mapping, and the DEFAULT
  /// for unplanned regions and for plans that don't say otherwise, so
  /// pre-existing runs stay Tick-bit-identical.
  kOwnerCompute,
  /// Address-interleaved: stripe `i` of the region is served by controller
  /// `i % num_controllers` regardless of who asks. Balances capacity but
  /// concentrates hot addresses (a Zipf-hot key lives on ONE controller).
  kStriped,
  /// The whole region behind one explicit controller
  /// (RegionPlan::pinned_controller).
  kPinned,
  /// Each stripe is claimed by the controller of the first core to touch
  /// it; later accesses from anywhere follow the claim. Deterministic under
  /// the engine's (time, task_id) order.
  kFirstTouch,
};

[[nodiscard]] const char* controllerPlacementName(ControllerPlacement c);

/// Plan for one shared region (one translated variable).
struct RegionPlan {
  std::string name;  ///< source variable name (the workload's region key)
  PlacementClass placement = PlacementClass::kOffChipUncached;
  MpbPattern pattern = MpbPattern::kNone;
  std::size_t bytes = 0;
  /// Address→controller mapping of the region's off-chip accesses.
  ControllerPlacement controller = ControllerPlacement::kOwnerCompute;
  /// Serving controller when `controller == kPinned` (ignored otherwise).
  std::uint32_t pinned_controller = 0;

  [[nodiscard]] bool onChip() const {
    return placement == PlacementClass::kOnChipResident ||
           placement == PlacementClass::kOnChipStaged;
  }
  /// Shared-DRAM bytes of this region route through the swcache.
  [[nodiscard]] bool cached() const {
    return placement == PlacementClass::kOffChipCached;
  }
};

/// The complete translator→runtime contract for one program.
struct ExecutionPlan {
  std::vector<RegionPlan> regions;

  [[nodiscard]] const RegionPlan* find(std::string_view name) const;

  /// Exact MPB owner sets of one UE at a given UE count: the owner UEs whose
  /// slices it puts into / gets from, unioned over every region's pattern.
  /// Sorted, duplicate-free.
  struct OwnerSets {
    std::vector<int> put;
    std::vector<int> get;
  };
  [[nodiscard]] OwnerSets mpbOwners(int ue, int num_ues) const;
  /// put ∪ get — the reach promise `SccMachine::launch` turns into per-port
  /// engine reach sets. Sorted, duplicate-free.
  [[nodiscard]] std::vector<int> mpbScopeOwners(int ue, int num_ues) const;

  [[nodiscard]] bool anyMpbTraffic() const;
  [[nodiscard]] bool anyCachedRegion() const;

  /// Structured rendering of the whole contract: a JSON object with one
  /// entry per region (name, bytes, placement class, MPB pattern,
  /// controller placement, pinned controller where relevant) plus the
  /// materialized per-UE put/get owner sets at `num_ues` units. This is the
  /// machine-readable form tools print (partition_explorer,
  /// translate_and_run); `format()` is a thin log wrapper over it.
  [[nodiscard]] std::string toJson(int num_ues) const;

  /// Thin wrapper for logs: the toJson() rendering under a one-line header.
  [[nodiscard]] std::string format(int num_ues) const;
};

}  // namespace hsm::partition

#include "partition/execution_plan.h"

#include <algorithm>
#include <sstream>

namespace hsm::partition {
namespace {

void appendOwners(std::vector<int>* out, MpbPattern pattern, bool put, int ue,
                  int num_ues) {
  switch (pattern) {
    case MpbPattern::kNone:
      break;
    case MpbPattern::kSelfStage:
      out->push_back(ue);
      break;
    case MpbPattern::kRootFunnel:
      out->push_back(0);
      break;
    case MpbPattern::kRotatingBroadcast:
      if (put) {
        out->push_back(ue);  // each UE publishes from its own slice in turn
      } else {
        for (int u = 0; u < num_ues; ++u) out->push_back(u);
      }
      break;
    case MpbPattern::kNeighborRing:
      out->push_back(put ? (ue + 1) % num_ues : ue);
      break;
  }
}

void sortUnique(std::vector<int>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

std::string jsonIntList(const std::vector<int>& values) {
  std::string s = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(values[i]);
  }
  return s + "]";
}

}  // namespace

const char* placementName(PlacementClass c) {
  switch (c) {
    case PlacementClass::kOnChipResident: return "on-chip-resident";
    case PlacementClass::kOnChipStaged: return "on-chip-staged";
    case PlacementClass::kOffChipUncached: return "off-chip-uncached";
    case PlacementClass::kOffChipCached: return "off-chip-cached";
  }
  return "?";
}

const char* mpbPatternName(MpbPattern p) {
  switch (p) {
    case MpbPattern::kNone: return "none";
    case MpbPattern::kSelfStage: return "self-stage";
    case MpbPattern::kRootFunnel: return "root-funnel";
    case MpbPattern::kRotatingBroadcast: return "rotating-broadcast";
    case MpbPattern::kNeighborRing: return "neighbor-ring";
  }
  return "?";
}

const char* controllerPlacementName(ControllerPlacement c) {
  switch (c) {
    case ControllerPlacement::kOwnerCompute: return "owner-compute";
    case ControllerPlacement::kStriped: return "striped";
    case ControllerPlacement::kPinned: return "pinned";
    case ControllerPlacement::kFirstTouch: return "first-touch";
  }
  return "?";
}

const RegionPlan* ExecutionPlan::find(std::string_view name) const {
  for (const RegionPlan& r : regions) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

ExecutionPlan::OwnerSets ExecutionPlan::mpbOwners(int ue, int num_ues) const {
  OwnerSets sets;
  for (const RegionPlan& r : regions) {
    if (!r.onChip()) continue;
    appendOwners(&sets.put, r.pattern, /*put=*/true, ue, num_ues);
    appendOwners(&sets.get, r.pattern, /*put=*/false, ue, num_ues);
  }
  sortUnique(&sets.put);
  sortUnique(&sets.get);
  return sets;
}

std::vector<int> ExecutionPlan::mpbScopeOwners(int ue, int num_ues) const {
  OwnerSets sets = mpbOwners(ue, num_ues);
  sets.put.insert(sets.put.end(), sets.get.begin(), sets.get.end());
  sortUnique(&sets.put);
  return std::move(sets.put);
}

bool ExecutionPlan::anyMpbTraffic() const {
  for (const RegionPlan& r : regions) {
    if (r.onChip() && r.pattern != MpbPattern::kNone) return true;
  }
  return false;
}

bool ExecutionPlan::anyCachedRegion() const {
  for (const RegionPlan& r : regions) {
    if (r.cached()) return true;
  }
  return false;
}

std::string ExecutionPlan::toJson(int num_ues) const {
  std::ostringstream os;
  os << "{\n  \"regions\": [";
  bool first = true;
  for (const RegionPlan& r : regions) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << r.name << "\", \"bytes\": " << r.bytes
       << ", \"placement\": \"" << placementName(r.placement)
       << "\", \"mpb_pattern\": \"" << mpbPatternName(r.pattern)
       << "\", \"controller_placement\": \"" << controllerPlacementName(r.controller)
       << "\"";
    if (r.controller == ControllerPlacement::kPinned) {
      os << ", \"pinned_controller\": " << r.pinned_controller;
    }
    os << "}";
  }
  os << "\n  ],\n  \"num_ues\": " << num_ues << ",\n  \"mpb_owner_sets\": [";
  for (int ue = 0; ue < num_ues; ++ue) {
    const OwnerSets sets = mpbOwners(ue, num_ues);
    os << (ue == 0 ? "\n" : ",\n");
    os << "    {\"ue\": " << ue << ", \"put\": " << jsonIntList(sets.put)
       << ", \"get\": " << jsonIntList(sets.get) << "}";
  }
  os << "\n  ]\n}";
  return os.str();
}

std::string ExecutionPlan::format(int num_ues) const {
  return "ExecutionPlan " + toJson(num_ues) + "\n";
}

}  // namespace hsm::partition

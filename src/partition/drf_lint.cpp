#include "partition/drf_lint.h"

#include <set>
#include <sstream>

namespace hsm::partition {
namespace {

// Sharing-signal helpers, the same derivation deriveExecutionPlan uses
// (memory_plan.cpp): the lint must judge the plan by the signals that
// produced it, or a correct derivation could lint dirty.

bool isPthreadType(const ast::Type* type) {
  while (type != nullptr && (type->isArray() || type->isPointer())) {
    type = type->element();
  }
  return type != nullptr && type->isNamed() && type->name().rfind("pthread_", 0) == 0;
}

bool isPthreadNamed(const ast::Type* type, const char* name) {
  while (type != nullptr && (type->isArray() || type->isPointer())) {
    type = type->element();
  }
  return type != nullptr && type->isNamed() && type->name() == name;
}

bool anyInThreadFunction(const std::set<std::string>& fns,
                         const std::set<std::string>& thread_fns) {
  for (const std::string& f : fns) {
    if (thread_fns.count(f) > 0) return true;
  }
  return false;
}

const analysis::VariableInfo* findVariable(const analysis::AnalysisResult& analysis,
                                           const std::string& name) {
  for (const auto& [id, info] : analysis.variables) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

void add(LintResult& out, LintFinding::Rule rule, const std::string& region,
         std::string message) {
  out.findings.push_back(LintFinding{rule, region, std::move(message)});
}

void lintLineAlignment(LintResult& out, const RegionPlan& r, std::size_t line_bytes) {
  if (!r.cached() || line_bytes == 0 || r.bytes % line_bytes == 0) return;
  add(out, LintFinding::Rule::kCachedNotLineAligned, r.name,
      "cached region is " + std::to_string(r.bytes) + " B, not a multiple of the " +
          std::to_string(line_bytes) +
          " B cache line — its tail line is shared with the neighboring "
          "allocation under the line-granular contract");
}

}  // namespace

const char* lintRuleName(LintFinding::Rule rule) {
  switch (rule) {
    case LintFinding::Rule::kCachedThreadWrittenNoSync:
      return "cached-thread-written-no-sync";
    case LintFinding::Rule::kPlacementContradictsSharing:
      return "placement-contradicts-sharing";
    case LintFinding::Rule::kCachedNotLineAligned:
      return "cached-not-line-aligned";
  }
  return "?";
}

std::string LintFinding::format() const {
  return std::string("[") + lintRuleName(rule) + "] " + region + ": " + message;
}

std::string LintResult::format() const {
  std::ostringstream out;
  for (const LintFinding& f : findings) out << f.format() << '\n';
  return out.str();
}

LintResult lintSharingTables(const analysis::AnalysisResult& analysis,
                             const ExecutionPlan& plan, std::size_t line_bytes) {
  LintResult out;
  std::set<std::string> thread_fns;
  for (const ast::FunctionDecl* fn : analysis.thread_functions) {
    if (fn != nullptr) thread_fns.insert(fn->name());
  }
  // Release/acquire edges in the phase structure: the translator lowers
  // pthread barriers and mutexes to RCCE sync primitives, which are the
  // swcache's flush/invalidate points. A program with neither has NO edge
  // anywhere for rule (a) to lean on.
  bool has_sync_edges = false;
  for (const auto& [id, info] : analysis.variables) {
    if (isPthreadNamed(info.type, "pthread_barrier_t") ||
        isPthreadNamed(info.type, "pthread_mutex_t")) {
      has_sync_edges = true;
      break;
    }
  }

  for (const RegionPlan& r : plan.regions) {
    const analysis::VariableInfo* v = findVariable(analysis, r.name);
    if (v == nullptr) {
      add(out, LintFinding::Rule::kPlacementContradictsSharing, r.name,
          "plan region has no sharing-table entry — the plan names a variable "
          "the analysis never classified");
      lintLineAlignment(out, r, line_bytes);
      continue;
    }
    if (isPthreadType(v->type)) {
      add(out, LintFinding::Rule::kPlacementContradictsSharing, r.name,
          "pthread bookkeeping variable surfaced as a memory region — stage 5 "
          "lowers these to sync primitives, they must not be planned");
      continue;
    }
    const bool thread_written = anyInThreadFunction(v->def_in, thread_fns);
    const bool thread_read = anyInThreadFunction(v->use_in, thread_fns);

    if (r.cached()) {
      if (thread_written && !has_sync_edges) {
        add(out, LintFinding::Rule::kCachedThreadWrittenNoSync, r.name,
            "thread-written variable in a cached region, but the program has "
            "no barrier or mutex — no release point would ever flush the "
            "writer's dirty lines");
      }
      if (!thread_read) {
        add(out, LintFinding::Rule::kPlacementContradictsSharing, r.name,
            "cached placement on a variable no thread function reads — "
            "cached routing exists for read-mostly thread data");
      }
    }
    if (r.pattern != MpbPattern::kNone && !thread_written && !thread_read) {
      add(out, LintFinding::Rule::kPlacementContradictsSharing, r.name,
          std::string("MPB pattern ") + mpbPatternName(r.pattern) +
              " on a variable no thread function touches");
    }
    lintLineAlignment(out, r, line_bytes);
  }
  return out;
}

LintResult lintExecutionPlan(const ExecutionPlan& plan, std::size_t line_bytes) {
  LintResult out;
  for (const RegionPlan& r : plan.regions) {
    if (r.pattern != MpbPattern::kNone && r.bytes == 0) {
      add(out, LintFinding::Rule::kPlacementContradictsSharing, r.name,
          std::string("MPB pattern ") + mpbPatternName(r.pattern) +
              " on a zero-byte region");
    }
    lintLineAlignment(out, r, line_bytes);
  }
  return out;
}

}  // namespace hsm::partition

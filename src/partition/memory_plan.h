// Stage 4: partitioning shared data between on-chip (MPB SRAM) and off-chip
// (shared DRAM) memory — the paper's Algorithm 3, plus an access-frequency-
// aware variant used for the ablation study ("further granularity provided
// by frequency of access", §4.4).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/variable_info.h"
#include "partition/execution_plan.h"

namespace hsm::partition {

/// Capacities of the HSM target's shared memories. Defaults model the SCC:
/// 8 KB of MPB per core (the slice a UE can allocate from) and an off-chip
/// shared DRAM region big enough for any benchmark.
struct HsmMemorySpec {
  std::size_t onchip_capacity_bytes = 8 * 1024;
  std::size_t offchip_capacity_bytes = 64ull * 1024 * 1024;

  /// Total MPB across the whole chip (48 cores x 8 KB on the SCC); used for
  /// reporting, not for the per-UE planning decision.
  std::size_t onchip_total_bytes = 384 * 1024;
};

enum class Placement : std::uint8_t { OnChip, OffChip };

[[nodiscard]] inline const char* placementName(Placement p) {
  return p == Placement::OnChip ? "on-chip" : "off-chip";
}

struct PlacementDecision {
  const analysis::VariableInfo* variable = nullptr;
  Placement placement = Placement::OffChip;
  /// Execution-regime refinement of `placement` (OnChip → resident,
  /// OffChip → uncached by default; `deriveExecutionPlan` sharpens it from
  /// the stage-2 sharing tables: read-mostly → cached, spilled-but-staged →
  /// on-chip-staged).
  PlacementClass cls = PlacementClass::kOffChipUncached;
  std::size_t bytes = 0;
  std::size_t offset = 0;  ///< byte offset within the chosen region
  double weighted_accesses = 0;
};

struct MemoryPlan {
  std::vector<PlacementDecision> decisions;
  std::size_t onchip_used = 0;
  std::size_t offchip_used = 0;
  bool everything_fits_onchip = false;

  [[nodiscard]] const PlacementDecision* find(const std::string& name) const {
    for (const PlacementDecision& d : decisions) {
      if (d.variable != nullptr && d.variable->name == name) return &d;
    }
    return nullptr;
  }
  [[nodiscard]] Placement placementOf(const std::string& name) const {
    const PlacementDecision* d = find(name);
    return d != nullptr ? d->placement : Placement::OffChip;
  }
  /// Fraction of all weighted shared accesses that land on-chip — the
  /// figure of merit for comparing partitioning policies.
  [[nodiscard]] double onchipAccessFraction() const;

  [[nodiscard]] std::string format() const;
};

/// The paper's Algorithm 3: if everything fits on-chip, put it there;
/// otherwise sort ascending by size and greedily fill the remaining
/// on-chip space, spilling the rest off-chip.
class SizeAscendingPlanner {
 public:
  [[nodiscard]] MemoryPlan plan(const std::vector<const analysis::VariableInfo*>& shared,
                                const HsmMemorySpec& spec) const;
};

/// Ablation variant: sort by weighted accesses per byte (descending) so the
/// hottest data wins the scarce SRAM. Same fits-entirely fast path.
class FrequencyAwarePlanner {
 public:
  [[nodiscard]] MemoryPlan plan(const std::vector<const analysis::VariableInfo*>& shared,
                                const HsmMemorySpec& spec) const;
};

/// Refine a stage-4 memory plan into the full translator→runtime contract
/// using the stage-2 sharing tables (execution_plan.h):
///   * on-chip reduction objects (thread-written, gathered in main or under
///     a lock) → resident root-funnel through UE 0's slot;
///   * other thread-written on-chip data → resident self-stage;
///   * read-only on-chip scalars → resident, no runtime MPB traffic
///     (broadcast at initialization);
///   * spilled arrays that threads only read → off-chip-cached (the swcache
///     serves read-mostly data; docs/memory_model.md);
///   * spilled thread-written arrays → on-chip-staged, broadcast-staged when
///     the program barriers inside its thread functions (cross-thread row
///     reuse, LU's pivot rows), self-staged otherwise (disjoint streaming
///     slices);
///   * everything else → off-chip-uncached.
/// Also back-fills each PlacementDecision's `cls`. Pthread bookkeeping
/// objects (mutexes, barriers, thread handles) are excluded — stage 5 lowers
/// them to RCCE sync primitives, not memory regions.
[[nodiscard]] ExecutionPlan deriveExecutionPlan(const analysis::AnalysisResult& analysis,
                                                MemoryPlan& plan);

}  // namespace hsm::partition

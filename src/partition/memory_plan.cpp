#include "partition/memory_plan.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace hsm::partition {
namespace {

/// Greedy fill in the given candidate order; returns the plan.
MemoryPlan greedyFill(std::vector<const analysis::VariableInfo*> order,
                      const HsmMemorySpec& spec, bool everything_fits) {
  MemoryPlan plan;
  plan.everything_fits_onchip = everything_fits;
  std::size_t remaining = spec.onchip_capacity_bytes;
  for (const analysis::VariableInfo* v : order) {
    PlacementDecision d;
    d.variable = v;
    d.bytes = v->byte_size;
    d.weighted_accesses = v->totalWeightedAccesses();
    if (d.bytes <= remaining) {
      d.placement = Placement::OnChip;
      d.offset = plan.onchip_used;
      plan.onchip_used += d.bytes;
      remaining -= d.bytes;
    } else {
      d.placement = Placement::OffChip;
      d.offset = plan.offchip_used;
      plan.offchip_used += d.bytes;
    }
    plan.decisions.push_back(d);
  }
  return plan;
}

std::size_t totalBytes(const std::vector<const analysis::VariableInfo*>& shared) {
  std::size_t total = 0;
  for (const analysis::VariableInfo* v : shared) total += v->byte_size;
  return total;
}

}  // namespace

double MemoryPlan::onchipAccessFraction() const {
  double total = 0;
  double onchip = 0;
  for (const PlacementDecision& d : decisions) {
    total += d.weighted_accesses;
    if (d.placement == Placement::OnChip) onchip += d.weighted_accesses;
  }
  return total > 0 ? onchip / total : 0.0;
}

std::string MemoryPlan::format() const {
  std::ostringstream os;
  os << std::left << std::setw(14) << "Variable" << std::setw(10) << "Bytes"
     << std::setw(10) << "Accesses" << std::setw(10) << "Where" << '\n';
  os << std::string(44, '-') << '\n';
  for (const PlacementDecision& d : decisions) {
    os << std::left << std::setw(14)
       << (d.variable != nullptr ? d.variable->name : "?") << std::setw(10) << d.bytes
       << std::setw(10) << static_cast<long long>(d.weighted_accesses) << std::setw(10)
       << placementName(d.placement) << '\n';
  }
  os << "on-chip used: " << onchip_used << " B, off-chip used: " << offchip_used
     << " B, on-chip access fraction: " << std::fixed << std::setprecision(3)
     << onchipAccessFraction() << '\n';
  return os.str();
}

MemoryPlan SizeAscendingPlanner::plan(
    const std::vector<const analysis::VariableInfo*>& shared,
    const HsmMemorySpec& spec) const {
  const bool fits = totalBytes(shared) <= spec.onchip_capacity_bytes;
  std::vector<const analysis::VariableInfo*> order = shared;
  if (!fits) {
    // Algorithm 3 line 14: sort by size, ascending. Ties broken by
    // declaration order for determinism.
    std::stable_sort(order.begin(), order.end(),
                     [](const analysis::VariableInfo* a, const analysis::VariableInfo* b) {
                       return a->byte_size < b->byte_size;
                     });
  }
  return greedyFill(std::move(order), spec, fits);
}

MemoryPlan FrequencyAwarePlanner::plan(
    const std::vector<const analysis::VariableInfo*>& shared,
    const HsmMemorySpec& spec) const {
  const bool fits = totalBytes(shared) <= spec.onchip_capacity_bytes;
  std::vector<const analysis::VariableInfo*> order = shared;
  if (!fits) {
    std::stable_sort(order.begin(), order.end(),
                     [](const analysis::VariableInfo* a, const analysis::VariableInfo* b) {
                       const double density_a =
                           a->byte_size > 0 ? a->totalWeightedAccesses() / a->byte_size : 0;
                       const double density_b =
                           b->byte_size > 0 ? b->totalWeightedAccesses() / b->byte_size : 0;
                       return density_a > density_b;
                     });
  }
  return greedyFill(std::move(order), spec, fits);
}

}  // namespace hsm::partition

#include "partition/memory_plan.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace hsm::partition {
namespace {

/// Greedy fill in the given candidate order; returns the plan.
MemoryPlan greedyFill(std::vector<const analysis::VariableInfo*> order,
                      const HsmMemorySpec& spec, bool everything_fits) {
  MemoryPlan plan;
  plan.everything_fits_onchip = everything_fits;
  std::size_t remaining = spec.onchip_capacity_bytes;
  for (const analysis::VariableInfo* v : order) {
    PlacementDecision d;
    d.variable = v;
    d.bytes = v->byte_size;
    d.weighted_accesses = v->totalWeightedAccesses();
    if (d.bytes <= remaining) {
      d.placement = Placement::OnChip;
      d.cls = PlacementClass::kOnChipResident;
      d.offset = plan.onchip_used;
      plan.onchip_used += d.bytes;
      remaining -= d.bytes;
    } else {
      d.placement = Placement::OffChip;
      d.cls = PlacementClass::kOffChipUncached;
      d.offset = plan.offchip_used;
      plan.offchip_used += d.bytes;
    }
    plan.decisions.push_back(d);
  }
  return plan;
}

std::size_t totalBytes(const std::vector<const analysis::VariableInfo*>& shared) {
  std::size_t total = 0;
  for (const analysis::VariableInfo* v : shared) total += v->byte_size;
  return total;
}

}  // namespace

double MemoryPlan::onchipAccessFraction() const {
  double total = 0;
  double onchip = 0;
  for (const PlacementDecision& d : decisions) {
    total += d.weighted_accesses;
    if (d.placement == Placement::OnChip) onchip += d.weighted_accesses;
  }
  return total > 0 ? onchip / total : 0.0;
}

std::string MemoryPlan::format() const {
  std::ostringstream os;
  os << std::left << std::setw(14) << "Variable" << std::setw(10) << "Bytes"
     << std::setw(10) << "Accesses" << std::setw(10) << "Where" << std::setw(19)
     << "Class" << '\n';
  os << std::string(63, '-') << '\n';
  for (const PlacementDecision& d : decisions) {
    os << std::left << std::setw(14)
       << (d.variable != nullptr ? d.variable->name : "?") << std::setw(10) << d.bytes
       << std::setw(10) << static_cast<long long>(d.weighted_accesses) << std::setw(10)
       << placementName(d.placement) << std::setw(19) << placementName(d.cls) << '\n';
  }
  os << "on-chip used: " << onchip_used << " B, off-chip used: " << offchip_used
     << " B, on-chip access fraction: " << std::fixed << std::setprecision(3)
     << onchipAccessFraction() << '\n';
  return os.str();
}

MemoryPlan SizeAscendingPlanner::plan(
    const std::vector<const analysis::VariableInfo*>& shared,
    const HsmMemorySpec& spec) const {
  const bool fits = totalBytes(shared) <= spec.onchip_capacity_bytes;
  std::vector<const analysis::VariableInfo*> order = shared;
  if (!fits) {
    // Algorithm 3 line 14: sort by size, ascending. Ties broken by
    // declaration order for determinism.
    std::stable_sort(order.begin(), order.end(),
                     [](const analysis::VariableInfo* a, const analysis::VariableInfo* b) {
                       return a->byte_size < b->byte_size;
                     });
  }
  return greedyFill(std::move(order), spec, fits);
}

namespace {

/// Pthread bookkeeping types (mutexes, barriers, thread handles) are lowered
/// to RCCE sync primitives by stage 5; they are not memory regions.
bool isPthreadType(const ast::Type* type) {
  while (type != nullptr && (type->isArray() || type->isPointer())) {
    type = type->element();
  }
  return type != nullptr && type->isNamed() && type->name().rfind("pthread_", 0) == 0;
}

bool isPthreadBarrierType(const ast::Type* type) {
  while (type != nullptr && (type->isArray() || type->isPointer())) {
    type = type->element();
  }
  return type != nullptr && type->isNamed() && type->name() == "pthread_barrier_t";
}

bool anyInThreadFunction(const std::set<std::string>& fns,
                         const std::set<std::string>& thread_fns) {
  for (const std::string& f : fns) {
    if (thread_fns.count(f) > 0) return true;
  }
  return false;
}

}  // namespace

ExecutionPlan deriveExecutionPlan(const analysis::AnalysisResult& analysis,
                                  MemoryPlan& plan) {
  std::set<std::string> thread_fns;
  for (const ast::FunctionDecl* fn : analysis.thread_functions) {
    if (fn != nullptr) thread_fns.insert(fn->name());
  }
  // A barrier inside the parallel phase signals cross-thread reuse of
  // thread-written data between phases (LU's pivot rows): spilled arrays
  // then stage via rotating broadcast rather than disjoint self-slices.
  bool program_has_barrier = false;
  for (const auto& [id, info] : analysis.variables) {
    if (isPthreadBarrierType(info.type)) {
      program_has_barrier = true;
      break;
    }
  }

  ExecutionPlan out;
  for (PlacementDecision& d : plan.decisions) {
    if (d.variable == nullptr) continue;
    const analysis::VariableInfo& v = *d.variable;
    if (isPthreadType(v.type)) continue;  // lowered to sync primitives
    const bool thread_written = anyInThreadFunction(v.def_in, thread_fns);
    const bool thread_read = anyInThreadFunction(v.use_in, thread_fns);
    const bool main_read = v.use_in.count("main") > 0;

    RegionPlan r;
    r.name = v.name;
    r.bytes = d.bytes;
    if (d.placement == Placement::OnChip) {
      r.placement = PlacementClass::kOnChipResident;
      if (thread_written) {
        // Thread-written on-chip data that anyone reads back (a gathered
        // per-thread slot array, a locked accumulator) funnels through UE
        // 0's slot; write-only output can stay in the writer's own slice.
        r.pattern = (main_read || thread_read) ? MpbPattern::kRootFunnel
                                               : MpbPattern::kSelfStage;
      }
    } else if (thread_read && !thread_written) {
      r.placement = PlacementClass::kOffChipCached;  // read-mostly
      // Read-mostly data is fetched by every UE with no owner: striping the
      // addresses spreads the line-fill bandwidth across all four
      // controllers instead of funneling each reader's whole window through
      // its own quadrant (docs/execution_plan.md, "Controller placement").
      r.controller = ControllerPlacement::kStriped;
    } else if (thread_written && thread_read) {
      r.placement = PlacementClass::kOnChipStaged;
      r.pattern = program_has_barrier ? MpbPattern::kRotatingBroadcast
                                      : MpbPattern::kSelfStage;
    } else {
      r.placement = PlacementClass::kOffChipUncached;
      // Thread-written off-chip data is owner-partitioned in this
      // translator's model (each writer updates its own slice), so the
      // requester-local owner-compute mapping keeps every UE's traffic on
      // its own quadrant controller. Explicit, though it matches the
      // default, so the derivation is visible in the emitted plan JSON.
      if (thread_written) r.controller = ControllerPlacement::kOwnerCompute;
    }
    d.cls = r.placement;
    out.regions.push_back(std::move(r));
  }
  return out;
}

MemoryPlan FrequencyAwarePlanner::plan(
    const std::vector<const analysis::VariableInfo*>& shared,
    const HsmMemorySpec& spec) const {
  const bool fits = totalBytes(shared) <= spec.onchip_capacity_bytes;
  std::vector<const analysis::VariableInfo*> order = shared;
  if (!fits) {
    std::stable_sort(order.begin(), order.end(),
                     [](const analysis::VariableInfo* a, const analysis::VariableInfo* b) {
                       const double density_a =
                           a->byte_size > 0 ? a->totalWeightedAccesses() / a->byte_size : 0;
                       const double density_b =
                           b->byte_size > 0 ? b->totalWeightedAccesses() / b->byte_size : 0;
                       return density_a > density_b;
                     });
  }
  return greedyFill(std::move(order), spec, fits);
}

}  // namespace hsm::partition

// Translator-side DRF lint (docs/race_detection.md, "Static lint rules").
//
// The dynamic happens-before checker (sim/drf/) finds the races a program
// actually executes; this pass finds the contract violations visible BEFORE
// any simulation, from the stage-2 sharing tables and the derived
// ExecutionPlan alone:
//
//   (a) a thread-WRITTEN variable placed in a swcache-cached region of a
//       program whose phase structure has no release/acquire edge (no
//       pthread barrier and no pthread mutex anywhere) — nothing would ever
//       flush the writer's dirty lines, so other UEs read stale data by
//       construction;
//   (b) a placement class that contradicts the variable's sharing class:
//       a cached region no thread function ever reads (cached placement
//       exists FOR read-mostly thread data), an MPB traffic pattern on a
//       variable no thread function touches, or a plan region with no
//       sharing-table entry at all (the plan names a variable the analysis
//       never saw — the workload twin would realize an unanalyzed region);
//   (c) a cached region whose byte size is not a whole number of cache
//       lines — the swcache moves whole lines, so a partial tail line
//       falls under the line-granular contract together with whatever
//       neighbor the allocator packs next to it (cross-region false
//       sharing the dynamic checker would flag as a line race).
//
// Pure function of its inputs, no AST mutation; surfaced in
// translate_and_run and partition_explorer behind the drf_lint_ok gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/variable_info.h"
#include "partition/execution_plan.h"

namespace hsm::partition {

/// One lint violation, tied to the plan region that triggered it.
struct LintFinding {
  enum class Rule : std::uint8_t {
    kCachedThreadWrittenNoSync,    ///< rule (a)
    kPlacementContradictsSharing,  ///< rule (b)
    kCachedNotLineAligned,         ///< rule (c)
  };
  Rule rule = Rule::kPlacementContradictsSharing;
  std::string region;   ///< plan region (variable) name
  std::string message;  ///< human-readable explanation

  [[nodiscard]] std::string format() const;
};

[[nodiscard]] const char* lintRuleName(LintFinding::Rule rule);

struct LintResult {
  std::vector<LintFinding> findings;
  [[nodiscard]] bool ok() const { return findings.empty(); }
  /// One format() line per finding ("" when clean) — deterministic
  /// (plan-region order), so tools can print and CI can diff it.
  [[nodiscard]] std::string format() const;
};

/// Full lint over the stage-2 sharing tables + the derived plan: rules (a),
/// (b), and (c). `line_bytes` is the machine's cache-line size (the cached
/// contract granule).
[[nodiscard]] LintResult lintSharingTables(const analysis::AnalysisResult& analysis,
                                           const ExecutionPlan& plan,
                                           std::size_t line_bytes = 32);

/// Plan-only lint for programmatically built plans with no translator
/// analysis behind them (the KV workload): rule (c) plus the sharing-free
/// subset of (b) — an on-chip region carrying no MPB pattern while other
/// regions do is fine, but a pattern on a zero-byte region is not.
[[nodiscard]] LintResult lintExecutionPlan(const ExecutionPlan& plan,
                                           std::size_t line_bytes = 32);

}  // namespace hsm::partition

#include "analysis/variable_info.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace hsm::analysis {
namespace {

std::string joinSet(const std::set<std::string>& names) {
  if (names.empty()) return "null";
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

const char* sharingName(Sharing s) {
  switch (s) {
    case Sharing::Unknown: return "null";
    case Sharing::Shared: return "true";
    case Sharing::Private: return "false";
  }
  return "?";
}

const char* threadPresenceName(ThreadPresence p) {
  switch (p) {
    case ThreadPresence::NotInThread: return "Not in Thread";
    case ThreadPresence::SingleThread: return "In Single Thread";
    case ThreadPresence::MultipleThreads: return "In Multiple Threads";
  }
  return "?";
}

std::vector<const VariableInfo*> AnalysisResult::ordered() const {
  std::vector<const VariableInfo*> out;
  out.reserve(variables.size());
  for (const auto& [id, info] : variables) out.push_back(&info);
  std::sort(out.begin(), out.end(), [](const VariableInfo* a, const VariableInfo* b) {
    return a->decl->id() < b->decl->id();
  });
  return out;
}

std::vector<const VariableInfo*> AnalysisResult::sharedVariables() const {
  std::vector<const VariableInfo*> out;
  for (const VariableInfo* info : ordered()) {
    if (info->isShared()) out.push_back(info);
  }
  return out;
}

bool AnalysisResult::isThreadFunction(const ast::FunctionDecl* fn) const {
  return fn != nullptr &&
         std::find(thread_functions.begin(), thread_functions.end(), fn) !=
             thread_functions.end();
}

std::string AnalysisResult::formatVariableTable() const {
  std::ostringstream os;
  os << std::left << std::setw(12) << "Name" << std::setw(12) << "Type"
     << std::setw(6) << "Size" << std::setw(5) << "Rd" << std::setw(5) << "Wr"
     << std::setw(16) << "Use In" << std::setw(16) << "Def In" << '\n';
  os << std::string(72, '-') << '\n';
  for (const VariableInfo* v : ordered()) {
    std::string type_name = v->type != nullptr ? v->type->spelling() : "n/a";
    // Arrays decay in the table, matching the paper ("sum int* 3").
    if (v->type != nullptr && v->type->isArray()) {
      type_name = v->type->element()->spelling() + "*";
    }
    os << std::left << std::setw(12) << v->name << std::setw(12) << type_name
       << std::setw(6) << v->element_count << std::setw(5) << v->reads
       << std::setw(5) << v->writes << std::setw(16) << joinSet(v->use_in)
       << std::setw(16) << joinSet(v->def_in) << '\n';
  }
  return os.str();
}

std::string AnalysisResult::formatSharingTable() const {
  std::ostringstream os;
  os << std::left << std::setw(12) << "Variable" << std::setw(10) << "Stage 1"
     << std::setw(10) << "Stage 2" << std::setw(10) << "Stage 3" << '\n';
  os << std::string(42, '-') << '\n';
  for (const VariableInfo* v : ordered()) {
    os << std::left << std::setw(12) << v->name << std::setw(10)
       << sharingName(v->after_stage1) << std::setw(10)
       << sharingName(v->after_stage2) << std::setw(10)
       << sharingName(v->after_stage3) << '\n';
  }
  return os.str();
}

}  // namespace hsm::analysis

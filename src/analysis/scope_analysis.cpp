#include "analysis/scope_analysis.h"

#include <vector>

#include "ast/visitor.h"

namespace hsm::analysis {
namespace {

/// Unwrap casts: `(int*)p` behaves like `p` for access analysis.
const ast::Expr* stripCasts(const ast::Expr* e) {
  while (e != nullptr && e->kind() == ast::ExprKind::Cast) {
    e = static_cast<const ast::CastExpr*>(e)->operand();
  }
  return e;
}

const ast::DeclRefExpr* asDeclRef(const ast::Expr* e) {
  e = stripCasts(e);
  if (e == nullptr || e->kind() != ast::ExprKind::DeclRef) return nullptr;
  return static_cast<const ast::DeclRefExpr*>(e);
}

class Stage1Visitor final : public ast::RecursiveVisitor {
 public:
  Stage1Visitor(ast::ASTContext& ctx, AnalysisResult& result, ScopeAnalysisExtra& extra)
      : ctx_(ctx), result_(result), extra_(extra) {}

 private:
  void visitVarDecl(ast::VarDecl& var) override {
    VariableInfo& info = infoFor(var);
    // A scalar initializer is a definition site; the paper does not count
    // aggregate initializer lists as writes (Table 4.1: `sum` wr=2 despite
    // `int sum[3] = {0}`).
    if (var.init() != nullptr && var.init()->kind() != ast::ExprKind::InitList) {
      ++info.writes;
      info.weighted_writes += weight_;
      noteDef(info);
    }
  }

  void visitDeclRef(ast::DeclRefExpr& ref, ast::AccessContext ctx) override {
    auto* var = dynamic_cast<ast::VarDecl*>(ref.decl());
    if (var == nullptr) return;  // function names, unresolved library names
    VariableInfo& info = infoFor(*var);
    switch (ctx) {
      case ast::AccessContext::Read:
        ++info.reads;
        info.weighted_reads += weight_;
        noteUse(info);
        break;
      case ast::AccessContext::Write:
        ++info.writes;
        info.weighted_writes += weight_;
        noteDef(info);
        break;
      case ast::AccessContext::ReadWrite:
        ++info.reads;
        ++info.writes;
        info.weighted_reads += weight_;
        info.weighted_writes += weight_;
        noteUse(info);
        noteDef(info);
        break;
      case ast::AccessContext::AddressOf:
        // Taking an address is neither a read nor a write of the object;
        // the paper's `ptr = &tmp` does not count as a read of tmp.
        break;
    }
  }

  void visitExpr(ast::Expr& expr, ast::AccessContext ctx) override {
    // Record dereference sites `*p` and `p[i]` (pointer-typed base) so that
    // Stage 3 can attribute the access to the definite pointee.
    const ast::DeclRefExpr* pointer_ref = nullptr;
    if (expr.kind() == ast::ExprKind::Unary) {
      const auto& unary = static_cast<const ast::UnaryExpr&>(expr);
      if (unary.op() == ast::UnaryOp::Deref) pointer_ref = asDeclRef(unary.operand());
    } else if (expr.kind() == ast::ExprKind::Index) {
      const auto& index = static_cast<const ast::IndexExpr&>(expr);
      const ast::DeclRefExpr* base = asDeclRef(index.base());
      if (base != nullptr) {
        const auto* var = dynamic_cast<const ast::VarDecl*>(base->decl());
        if (var != nullptr && var->type() != nullptr && var->type()->isPointer()) {
          pointer_ref = base;
        }
      }
    }
    if (pointer_ref == nullptr) return;
    const auto* pointer_var = dynamic_cast<const ast::VarDecl*>(pointer_ref->decl());
    if (pointer_var == nullptr) return;
    DerefAccesses& d = extra_.deref[pointer_var->id()];
    const std::string fn = currentFunction() != nullptr ? currentFunction()->name() : "";
    const bool reads = ctx == ast::AccessContext::Read || ctx == ast::AccessContext::ReadWrite;
    const bool writes = ctx == ast::AccessContext::Write || ctx == ast::AccessContext::ReadWrite;
    if (reads) {
      ++d.reads;
      d.weighted_reads += weight_;
      if (!fn.empty()) d.use_in.insert(fn);
    }
    if (writes) {
      ++d.writes;
      d.weighted_writes += weight_;
      if (!fn.empty()) d.def_in.insert(fn);
    }
  }

  void enterLoopBody(ast::Stmt& loop) override {
    double trip = ScopeAnalysis::kUnknownTripFactor;
    if (loop.kind() == ast::StmtKind::For) {
      const double constant = constantTripCount(static_cast<const ast::ForStmt&>(loop));
      if (constant > 0) trip = constant;
    }
    weight_stack_.push_back(weight_);
    weight_ *= trip;
  }

  void exitLoopBody(ast::Stmt&) override {
    weight_ = weight_stack_.back();
    weight_stack_.pop_back();
  }

  VariableInfo& infoFor(ast::VarDecl& var) {
    auto [it, inserted] = result_.variables.try_emplace(var.id());
    VariableInfo& info = it->second;
    if (inserted) {
      info.decl = &var;
      info.name = var.name();
      info.type = var.type();
      info.is_global = var.isGlobal();
      info.is_param = var.kind() == ast::DeclKind::Param;
      if (var.type() != nullptr) {
        info.element_count = var.type()->isArray() ? var.type()->arrayLength() : 1;
        info.byte_size = ctx_.types().sizeOf(var.type());
      }
      if (info.is_global) {
        // Stage 1 rule: globals are initially classified shared.
        info.refine(Sharing::Shared);
      }
    }
    return info;
  }

  void noteUse(VariableInfo& info) {
    if (currentFunction() != nullptr) info.use_in.insert(currentFunction()->name());
  }
  void noteDef(VariableInfo& info) {
    if (currentFunction() != nullptr) info.def_in.insert(currentFunction()->name());
  }

  ast::ASTContext& ctx_;
  AnalysisResult& result_;
  ScopeAnalysisExtra& extra_;
  double weight_ = 1.0;
  std::vector<double> weight_stack_;
};

/// Extract the integer value of a literal (possibly parenthesized/cast).
bool constantValue(const ast::Expr* e, long long* out) {
  e = stripCasts(e);
  if (e == nullptr) return false;
  if (e->kind() == ast::ExprKind::IntLiteral) {
    *out = static_cast<const ast::IntLiteralExpr*>(e)->value();
    return true;
  }
  if (e->kind() == ast::ExprKind::Unary) {
    const auto& unary = static_cast<const ast::UnaryExpr&>(*e);
    long long inner = 0;
    if (unary.op() == ast::UnaryOp::Minus && constantValue(unary.operand(), &inner)) {
      *out = -inner;
      return true;
    }
  }
  return false;
}

}  // namespace

double constantTripCount(const ast::ForStmt& loop) {
  // init: `i = c0` (ExprStmt) or `int i = c0` (DeclStmt with one var)
  long long c0 = 0;
  const ast::Decl* induction = nullptr;
  if (loop.init() != nullptr && loop.init()->kind() == ast::StmtKind::Expr) {
    const auto* init = static_cast<const ast::ExprStmt*>(loop.init());
    if (init->expr() == nullptr || init->expr()->kind() != ast::ExprKind::Binary) return 0;
    const auto& assign = static_cast<const ast::BinaryExpr&>(*init->expr());
    if (assign.op() != ast::BinaryOp::Assign) return 0;
    const ast::DeclRefExpr* lhs = asDeclRef(assign.lhs());
    if (lhs == nullptr || !constantValue(assign.rhs(), &c0)) return 0;
    induction = lhs->decl();
  } else if (loop.init() != nullptr && loop.init()->kind() == ast::StmtKind::Decl) {
    const auto* init = static_cast<const ast::DeclStmt*>(loop.init());
    if (init->decls().size() != 1) return 0;
    const ast::VarDecl* var = init->decls().front();
    if (var->init() == nullptr || !constantValue(var->init(), &c0)) return 0;
    induction = var;
  } else {
    return 0;
  }

  // cond: `i < c1` or `i <= c1`
  if (loop.cond() == nullptr || loop.cond()->kind() != ast::ExprKind::Binary) return 0;
  const auto& cond = static_cast<const ast::BinaryExpr&>(*loop.cond());
  if (cond.op() != ast::BinaryOp::Lt && cond.op() != ast::BinaryOp::Le) return 0;
  const ast::DeclRefExpr* cond_lhs = asDeclRef(cond.lhs());
  long long c1 = 0;
  if (cond_lhs == nullptr || cond_lhs->decl() != induction || induction == nullptr ||
      !constantValue(cond.rhs(), &c1)) {
    return 0;
  }

  // step: `i++`, `++i`, or `i += c`
  long long stride = 0;
  if (loop.step() == nullptr) return 0;
  if (loop.step()->kind() == ast::ExprKind::Unary) {
    const auto& step = static_cast<const ast::UnaryExpr&>(*loop.step());
    if (step.op() != ast::UnaryOp::PostInc && step.op() != ast::UnaryOp::PreInc) return 0;
    const ast::DeclRefExpr* target = asDeclRef(step.operand());
    if (target == nullptr || target->decl() != induction) return 0;
    stride = 1;
  } else if (loop.step()->kind() == ast::ExprKind::Binary) {
    const auto& step = static_cast<const ast::BinaryExpr&>(*loop.step());
    if (step.op() != ast::BinaryOp::AddAssign) return 0;
    const ast::DeclRefExpr* target = asDeclRef(step.lhs());
    if (target == nullptr || target->decl() != induction || !constantValue(step.rhs(), &stride)) {
      return 0;
    }
  } else {
    return 0;
  }
  if (stride <= 0) return 0;

  const long long upper = cond.op() == ast::BinaryOp::Le ? c1 + 1 : c1;
  if (upper <= c0) return 0;
  return static_cast<double>((upper - c0 + stride - 1) / stride);
}

ScopeAnalysisExtra ScopeAnalysis::run(ast::ASTContext& context, AnalysisResult& result) {
  ScopeAnalysisExtra extra;
  Stage1Visitor visitor(context, result, extra);
  visitor.traverseUnit(context.unit());
  // Snapshot the Table 4.2 "Stage 1" column.
  for (auto& [id, info] : result.variables) info.after_stage1 = info.status;
  return extra;
}

}  // namespace hsm::analysis

// Stage 2: inter-thread analysis (the paper's Algorithm 1).
//
// Discovers every pthread_create launch site, resolves the launched thread
// functions (the paper's set F), classifies each variable's thread presence
// (in single thread / in multiple threads / not in a thread), and refines
// sharing statuses: globals stay shared, everything declared inside a
// function or parameter list becomes private (Table 4.2 "Stage 2" column).
#pragma once

#include "analysis/variable_info.h"
#include "ast/context.h"

namespace hsm::analysis {

class ThreadAnalysis {
 public:
  /// Requires Stage 1 to have populated `result.variables`.
  void run(ast::ASTContext& context, AnalysisResult& result);
};

/// Algorithm 1 ("Variable in Thread") for one variable, given the launch
/// sites discovered in `result`. Exposed for direct testing against the
/// paper's pseudocode.
[[nodiscard]] ThreadPresence variableInThread(const VariableInfo& info,
                                              const AnalysisResult& result);

}  // namespace hsm::analysis

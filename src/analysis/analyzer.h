// Driver for the analysis phase: Stage 1 (scope) → Stage 2 (inter-thread)
// → Stage 3 (points-to), producing the AnalysisResult consumed by the
// Stage 4 partitioner and the Stage 5 translator.
#pragma once

#include "analysis/variable_info.h"
#include "ast/context.h"

namespace hsm::analysis {

class Analyzer {
 public:
  /// Run all three analysis stages on a resolved AST.
  [[nodiscard]] AnalysisResult analyze(ast::ASTContext& context);
};

}  // namespace hsm::analysis

#include "analysis/thread_analysis.h"

#include <algorithm>
#include <vector>

#include "ast/visitor.h"

namespace hsm::analysis {
namespace {

const ast::Expr* stripCasts(const ast::Expr* e) {
  while (e != nullptr && e->kind() == ast::ExprKind::Cast) {
    e = static_cast<const ast::CastExpr*>(e)->operand();
  }
  return e;
}

/// The thread-routine argument of pthread_create may be `tf` or `&tf`.
const ast::DeclRefExpr* threadRoutineRef(const ast::Expr* arg) {
  arg = stripCasts(arg);
  if (arg == nullptr) return nullptr;
  if (arg->kind() == ast::ExprKind::Unary) {
    const auto& unary = static_cast<const ast::UnaryExpr&>(*arg);
    if (unary.op() == ast::UnaryOp::AddrOf) arg = stripCasts(unary.operand());
  }
  if (arg == nullptr || arg->kind() != ast::ExprKind::DeclRef) return nullptr;
  return static_cast<const ast::DeclRefExpr*>(arg);
}

/// Does `expr` reference declaration `target` anywhere?
bool referencesDecl(const ast::Expr* expr, const ast::Decl* target) {
  if (expr == nullptr || target == nullptr) return false;
  switch (expr->kind()) {
    case ast::ExprKind::DeclRef:
      return static_cast<const ast::DeclRefExpr*>(expr)->decl() == target;
    case ast::ExprKind::Unary:
      return referencesDecl(static_cast<const ast::UnaryExpr*>(expr)->operand(), target);
    case ast::ExprKind::Binary: {
      const auto* b = static_cast<const ast::BinaryExpr*>(expr);
      return referencesDecl(b->lhs(), target) || referencesDecl(b->rhs(), target);
    }
    case ast::ExprKind::Cast:
      return referencesDecl(static_cast<const ast::CastExpr*>(expr)->operand(), target);
    case ast::ExprKind::Index: {
      const auto* i = static_cast<const ast::IndexExpr*>(expr);
      return referencesDecl(i->base(), target) || referencesDecl(i->index(), target);
    }
    case ast::ExprKind::Call: {
      const auto* c = static_cast<const ast::CallExpr*>(expr);
      return std::any_of(c->args().begin(), c->args().end(),
                         [&](const ast::Expr* a) { return referencesDecl(a, target); });
    }
    default:
      return false;
  }
}

/// Finds pthread_create call sites, tracking loop nesting and the enclosing
/// for-loop induction variables so "thread id" arguments can be recognized.
class LaunchSiteVisitor final : public ast::RecursiveVisitor {
 public:
  LaunchSiteVisitor(ast::ASTContext& ctx, AnalysisResult& result)
      : ctx_(ctx), result_(result) {}

 private:
  void visitCall(ast::CallExpr& call) override {
    if (call.calleeName() != "pthread_create") return;
    ThreadLaunchSite site;
    site.call = &call;
    site.caller = currentFunction();
    site.in_loop = loopDepth() > 0;
    if (call.args().size() >= 1) site.thread_handle = call.args()[0];
    if (call.args().size() >= 3) {
      if (const ast::DeclRefExpr* fn_ref = threadRoutineRef(call.args()[2])) {
        site.thread_fn_name = fn_ref->name();
        site.thread_fn = ctx_.unit().findFunction(fn_ref->name());
      }
    }
    if (call.args().size() >= 4) {
      site.thread_arg = call.args()[3];
      // A "thread id" argument references the induction variable of an
      // enclosing loop — the per-thread index in the divide-and-conquer
      // pattern (paper ch. 3).
      for (const ast::Decl* induction : induction_stack_) {
        if (referencesDecl(site.thread_arg, induction)) {
          site.arg_is_thread_id = true;
          break;
        }
      }
    }
    result_.launches.push_back(site);
  }

  void enterLoopBody(ast::Stmt& loop) override {
    const ast::Decl* induction = nullptr;
    if (loop.kind() == ast::StmtKind::For) {
      const auto& for_stmt = static_cast<const ast::ForStmt&>(loop);
      if (for_stmt.init() != nullptr) {
        if (for_stmt.init()->kind() == ast::StmtKind::Decl) {
          const auto* decl = static_cast<const ast::DeclStmt*>(for_stmt.init());
          if (!decl->decls().empty()) induction = decl->decls().front();
        } else if (for_stmt.init()->kind() == ast::StmtKind::Expr) {
          const auto* expr_stmt = static_cast<const ast::ExprStmt*>(for_stmt.init());
          if (expr_stmt->expr() != nullptr &&
              expr_stmt->expr()->kind() == ast::ExprKind::Binary) {
            const auto& assign = static_cast<const ast::BinaryExpr&>(*expr_stmt->expr());
            const ast::Expr* lhs = stripCasts(assign.lhs());
            if (ast::isAssignmentOp(assign.op()) && lhs != nullptr &&
                lhs->kind() == ast::ExprKind::DeclRef) {
              induction = static_cast<const ast::DeclRefExpr*>(lhs)->decl();
            }
          }
        }
      }
    }
    induction_stack_.push_back(induction);
  }

  void exitLoopBody(ast::Stmt&) override { induction_stack_.pop_back(); }

  ast::ASTContext& ctx_;
  AnalysisResult& result_;
  std::vector<const ast::Decl*> induction_stack_;
};

}  // namespace

ThreadPresence variableInThread(const VariableInfo& info, const AnalysisResult& result) {
  // Collect the functions that contain the variable: where it is used or
  // defined, plus (for locals/params) the declaring function itself.
  std::set<std::string> containing = info.use_in;
  containing.insert(info.def_in.begin(), info.def_in.end());
  if (info.decl != nullptr && info.decl->owner() != nullptr) {
    containing.insert(info.decl->owner()->name());
  }

  ThreadPresence presence = ThreadPresence::NotInThread;
  for (const ast::FunctionDecl* thread_fn : result.thread_functions) {
    if (containing.count(thread_fn->name()) == 0) continue;
    // The variable appears inside a launched procedure. Algorithm 1: if any
    // launch of this procedure sits in a loop, or the procedure is launched
    // more than once, the variable is in multiple threads.
    std::size_t seen = 0;
    bool in_loop = false;
    for (const ThreadLaunchSite& site : result.launches) {
      if (site.thread_fn_name != thread_fn->name()) continue;
      ++seen;
      in_loop = in_loop || site.in_loop;
    }
    if (in_loop || seen > 1) return ThreadPresence::MultipleThreads;
    presence = ThreadPresence::SingleThread;
  }
  return presence;
}

void ThreadAnalysis::run(ast::ASTContext& context, AnalysisResult& result) {
  LaunchSiteVisitor visitor(context, result);
  visitor.traverseUnit(context.unit());

  // The paper's set F: functions called through pthread_create.
  for (const ThreadLaunchSite& site : result.launches) {
    if (site.thread_fn != nullptr &&
        std::find(result.thread_functions.begin(), result.thread_functions.end(),
                  site.thread_fn) == result.thread_functions.end()) {
      result.thread_functions.push_back(site.thread_fn);
    }
  }

  for (auto& [id, info] : result.variables) {
    info.presence = variableInThread(info, result);
    // Stage 2 refinement: function-scope variables and parameters are
    // private (each translated process gets its own copy); globals keep the
    // shared status assigned in Stage 1.
    if (!info.is_global) info.refine(Sharing::Private);
    info.after_stage2 = info.status;
  }
}

}  // namespace hsm::analysis

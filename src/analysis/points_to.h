// Stage 3: alias and pointer ("points-to") analysis — the paper's
// Algorithm 2 plus the dataflow that feeds it.
//
// A flow-insensitive, interprocedural inclusion-based (Andersen-style)
// analysis over the variables of one translation unit:
//   * `p = &x`            adds x to pts(p)        (direct constraint)
//   * `p = q` / `p = q+k` adds pts(q) to pts(p)   (copy constraint)
//   * f(..., arg_i, ...)  adds arg_i's sources to pts(param_i) for defined f
//   * pthread_create(..., tf, arg) binds arg to tf's parameter
// Constraints gathered under an if/else or ?: are flagged; a pointer whose
// relation involves any flagged constraint (or more than one target) is only
// "possibly" pointing — Algorithm 2 acts on *definite* relations only:
// if a shared pointer definitely points at an object, that object becomes
// shared (Table 4.2: `tmp` flips to shared via `ptr`). Dereference accesses
// recorded in Stage 1 are attributed to definite pointees, and globals that
// remain untouched are demoted to private (the paper's `global`).
#pragma once

#include "analysis/scope_analysis.h"
#include "analysis/variable_info.h"
#include "ast/context.h"

namespace hsm::analysis {

class PointsToAnalysis {
 public:
  /// Requires Stages 1 and 2. Populates `result.points_to`, refines sharing
  /// statuses per Algorithm 2, attributes deref accesses, and demotes unused
  /// globals. Snapshots the Table 4.2 "Stage 3" column.
  void run(ast::ASTContext& context, AnalysisResult& result,
           const ScopeAnalysisExtra& stage1_extra);
};

}  // namespace hsm::analysis

// Stage 1: variable scope analysis.
//
// Builds the per-variable records of the paper's Table 4.1: name, type,
// size (element count), static read/write counts, loop-trip-weighted access
// estimates, and the functions each variable is used/defined in. Globals
// receive an initial sharing status of Shared; everything else stays Unknown
// until Stage 2 (exactly the paper's Table 4.2 "Stage 1" column).
#pragma once

#include <unordered_map>

#include "analysis/variable_info.h"
#include "ast/context.h"

namespace hsm::analysis {

/// Pointer-dereference accesses recorded per pointer variable, consumed by
/// Stage 3 to attribute the access to the definite pointee.
struct DerefAccesses {
  std::size_t reads = 0;
  std::size_t writes = 0;
  double weighted_reads = 0;
  double weighted_writes = 0;
  std::set<std::string> use_in;
  std::set<std::string> def_in;
};

struct ScopeAnalysisExtra {
  std::unordered_map<std::uint32_t, DerefAccesses> deref;  ///< by pointer decl id
};

class ScopeAnalysis {
 public:
  /// Default access-estimate multiplier for loops whose trip count is not a
  /// compile-time constant.
  static constexpr double kUnknownTripFactor = 16.0;

  /// Populate `result.variables`. Returns auxiliary deref-site data.
  ScopeAnalysisExtra run(ast::ASTContext& context, AnalysisResult& result);
};

/// Best-effort constant trip count of a for-loop of the canonical shape
/// `for (i = c0; i < c1; i++)` / `i <= c1` / `i += c`. Returns 0 if unknown.
[[nodiscard]] double constantTripCount(const ast::ForStmt& loop);

}  // namespace hsm::analysis

// Per-variable analysis records — the data behind the paper's Table 4.1
// (name/type/size/reads/writes/use-in/def-in) and Table 4.2 (sharing status
// after each stage).
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"

namespace hsm::analysis {

/// Tri-state sharing status. `Unknown` is the paper's "null".
enum class Sharing : std::uint8_t { Unknown, Shared, Private };

[[nodiscard]] const char* sharingName(Sharing s);

/// Result of Algorithm 1 ("Variable in Thread").
enum class ThreadPresence : std::uint8_t { NotInThread, SingleThread, MultipleThreads };

[[nodiscard]] const char* threadPresenceName(ThreadPresence p);

struct VariableInfo {
  ast::VarDecl* decl = nullptr;
  std::string name;
  const ast::Type* type = nullptr;

  /// Element count (the paper's "Size" column: 3 for `int sum[3]`, 1 for a
  /// scalar or pointer).
  std::size_t element_count = 1;
  /// Total footprint in bytes on the IA-32 target (Size x Type in Alg. 3).
  std::size_t byte_size = 0;

  /// Static access counts (occurrences in the source).
  std::size_t reads = 0;
  std::size_t writes = 0;
  /// Loop-trip-weighted access estimates, used by the Stage 4 partitioner
  /// ("estimates the number of accesses to program variables", ch. 1). A
  /// loop with a known constant trip count multiplies by that count; an
  /// unknown loop multiplies by a fixed factor.
  double weighted_reads = 0;
  double weighted_writes = 0;

  /// Function names the variable is used (read) / defined (written) in;
  /// empty set renders as "null" like the paper's table.
  std::set<std::string> use_in;
  std::set<std::string> def_in;

  bool is_global = false;
  bool is_param = false;

  ThreadPresence presence = ThreadPresence::NotInThread;

  /// Sharing status as of the end of each analysis stage (Table 4.2).
  Sharing after_stage1 = Sharing::Unknown;
  Sharing after_stage2 = Sharing::Unknown;
  Sharing after_stage3 = Sharing::Unknown;

  /// Current status, updated by the stages via `refine`.
  Sharing status = Sharing::Unknown;

  /// The paper's refinement rule: a change away from Unknown is always
  /// accepted; afterwards the status may be refined exactly once more and
  /// then never reverts. Returns true if the status changed.
  bool refine(Sharing next) {
    if (next == status) return false;
    if (status == Sharing::Unknown) {
      status = next;
      return true;
    }
    if (refined_) return false;
    refined_ = true;
    status = next;
    return true;
  }

  [[nodiscard]] bool isShared() const { return status == Sharing::Shared; }
  [[nodiscard]] double totalWeightedAccesses() const {
    return weighted_reads + weighted_writes;
  }

 private:
  bool refined_ = false;
};

/// One pthread_create launch site discovered by Stage 2.
struct ThreadLaunchSite {
  ast::CallExpr* call = nullptr;
  ast::FunctionDecl* caller = nullptr;   ///< function containing the call
  ast::FunctionDecl* thread_fn = nullptr;  ///< resolved from argument 3
  std::string thread_fn_name;
  ast::Expr* thread_handle = nullptr;   ///< argument 1
  ast::Expr* thread_arg = nullptr;      ///< argument 4
  bool in_loop = false;
  /// Induction variable of the enclosing loop if the 4th argument
  /// references it — the signature of a "thread id" argument (Alg. 4's T).
  bool arg_is_thread_id = false;
};

/// Points-to relation of one pointer variable (Stage 3 output). A relation
/// is "definite" when the pointer has exactly one target and no assignment
/// to it was control-dependent (the paper's definite/possibly distinction).
struct PointsToInfo {
  std::vector<ast::VarDecl*> targets;
  bool definite = false;
};

/// Full analysis result for one translation unit, keyed by Decl id.
struct AnalysisResult {
  std::unordered_map<std::uint32_t, VariableInfo> variables;
  std::vector<ThreadLaunchSite> launches;
  std::vector<ast::FunctionDecl*> thread_functions;  ///< the paper's set F
  std::unordered_map<std::uint32_t, PointsToInfo> points_to;  ///< by pointer decl id

  [[nodiscard]] VariableInfo* find(const ast::VarDecl* decl) {
    if (decl == nullptr) return nullptr;
    const auto it = variables.find(decl->id());
    return it != variables.end() ? &it->second : nullptr;
  }
  [[nodiscard]] const VariableInfo* find(const ast::VarDecl* decl) const {
    if (decl == nullptr) return nullptr;
    const auto it = variables.find(decl->id());
    return it != variables.end() ? &it->second : nullptr;
  }
  [[nodiscard]] VariableInfo* findByName(const std::string& name) {
    for (auto& [id, info] : variables) {
      if (info.name == name) return &info;
    }
    return nullptr;
  }

  /// Variables in deterministic (declaration id) order.
  [[nodiscard]] std::vector<const VariableInfo*> ordered() const;
  /// All variables currently classified shared, in declaration order.
  [[nodiscard]] std::vector<const VariableInfo*> sharedVariables() const;

  [[nodiscard]] bool isThreadFunction(const ast::FunctionDecl* fn) const;

  /// Render the paper's Table 4.1 ("Information Extracted Per Variable").
  [[nodiscard]] std::string formatVariableTable() const;
  /// Render the paper's Table 4.2 ("Variables Sharing Status").
  [[nodiscard]] std::string formatSharingTable() const;
};

}  // namespace hsm::analysis

#include "analysis/points_to.h"

#include <algorithm>
#include <set>
#include <vector>

#include "ast/visitor.h"

namespace hsm::analysis {
namespace {

const ast::Expr* stripCasts(const ast::Expr* e) {
  while (e != nullptr && e->kind() == ast::ExprKind::Cast) {
    e = static_cast<const ast::CastExpr*>(e)->operand();
  }
  return e;
}

ast::VarDecl* asVarDecl(const ast::Expr* e) {
  e = stripCasts(e);
  if (e == nullptr || e->kind() != ast::ExprKind::DeclRef) return nullptr;
  return dynamic_cast<ast::VarDecl*>(static_cast<const ast::DeclRefExpr*>(e)->decl());
}

struct DirectConstraint {
  std::uint32_t pointer;   ///< decl id of the pointer
  ast::VarDecl* target;    ///< object whose address flows into the pointer
  bool conditional;
};

struct CopyConstraint {
  std::uint32_t dst;
  std::uint32_t src;
  bool conditional;
};

/// The pointer-typed sources found in an rvalue expression.
struct RhsSources {
  std::vector<ast::VarDecl*> direct;      ///< from &x or array names
  std::vector<ast::VarDecl*> copies;      ///< from pointer-typed variables
  bool conditional = false;               ///< involves a ?: merge
};

void collectRhsSources(const ast::Expr* e, RhsSources& out) {
  e = stripCasts(e);
  if (e == nullptr) return;
  switch (e->kind()) {
    case ast::ExprKind::Unary: {
      const auto& unary = static_cast<const ast::UnaryExpr&>(*e);
      if (unary.op() == ast::UnaryOp::AddrOf) {
        const ast::Expr* operand = stripCasts(unary.operand());
        // &x and &x[i] both expose x.
        if (operand != nullptr && operand->kind() == ast::ExprKind::Index) {
          operand = static_cast<const ast::IndexExpr*>(operand)->base();
        }
        if (ast::VarDecl* var = asVarDecl(operand)) out.direct.push_back(var);
      }
      return;
    }
    case ast::ExprKind::DeclRef: {
      ast::VarDecl* var = asVarDecl(e);
      if (var == nullptr || var->type() == nullptr) return;
      if (var->type()->isArray()) {
        out.direct.push_back(var);  // array name decays to its own storage
      } else if (var->type()->isPointer() || var->type()->isNamed()) {
        out.copies.push_back(var);
      }
      return;
    }
    case ast::ExprKind::Binary: {
      const auto& bin = static_cast<const ast::BinaryExpr&>(*e);
      if (bin.op() == ast::BinaryOp::Add || bin.op() == ast::BinaryOp::Sub) {
        collectRhsSources(bin.lhs(), out);
        collectRhsSources(bin.rhs(), out);
      }
      return;
    }
    case ast::ExprKind::Conditional: {
      const auto& cond = static_cast<const ast::ConditionalExpr&>(*e);
      out.conditional = true;
      collectRhsSources(cond.thenExpr(), out);
      collectRhsSources(cond.elseExpr(), out);
      return;
    }
    default:
      return;
  }
}

class ConstraintCollector final : public ast::RecursiveVisitor {
 public:
  ConstraintCollector(ast::ASTContext& ctx, std::vector<DirectConstraint>& direct,
                      std::vector<CopyConstraint>& copies)
      : ctx_(ctx), direct_(direct), copies_(copies) {}

  void collect(ast::TranslationUnit& unit) {
    // Global initializers first.
    for (ast::VarDecl* g : unit.globals()) {
      if (g->init() != nullptr) addAssignment(g, g->init(), /*conditional=*/false);
    }
    traverseUnit(unit);
  }

 private:
  void visitExpr(ast::Expr& expr, ast::AccessContext) override {
    if (expr.kind() == ast::ExprKind::Binary) {
      const auto& bin = static_cast<const ast::BinaryExpr&>(expr);
      if (bin.op() == ast::BinaryOp::Assign) {
        if (ast::VarDecl* lhs = asVarDecl(bin.lhs())) {
          if (lhs->type() != nullptr && lhs->type()->isPointer()) {
            addAssignment(lhs, bin.rhs(), if_depth_ > 0);
          }
        }
      }
    }
  }

  void visitVarDecl(ast::VarDecl& var) override {
    if (var.init() != nullptr && var.type() != nullptr && var.type()->isPointer()) {
      addAssignment(&var, var.init(), if_depth_ > 0);
    }
  }

  void visitCall(ast::CallExpr& call) override {
    const std::string name = call.calleeName();
    if (name == "pthread_create") {
      // Bind the 4th argument to the thread routine's only parameter.
      if (call.args().size() >= 4) {
        const ast::Expr* routine = stripCasts(call.args()[2]);
        if (routine != nullptr && routine->kind() == ast::ExprKind::Unary) {
          routine = stripCasts(static_cast<const ast::UnaryExpr*>(routine)->operand());
        }
        if (routine != nullptr && routine->kind() == ast::ExprKind::DeclRef) {
          ast::FunctionDecl* fn =
              ctx_.unit().findFunction(static_cast<const ast::DeclRefExpr*>(routine)->name());
          if (fn != nullptr && !fn->params().empty()) {
            addFlow(fn->params().front(), call.args()[3], if_depth_ > 0);
          }
        }
      }
      return;
    }
    ast::FunctionDecl* callee = ctx_.unit().findFunction(name);
    if (callee == nullptr) return;
    const std::size_t n = std::min(callee->params().size(), call.args().size());
    for (std::size_t i = 0; i < n; ++i) {
      ast::ParamDecl* param = callee->params()[i];
      if (param != nullptr && param->type() != nullptr &&
          (param->type()->isPointer() || param->type()->isNamed())) {
        addFlow(param, call.args()[i], if_depth_ > 0);
      }
    }
  }

  // Assignments under an if/else branch are only "possibly" performed — the
  // paper's possible relation, which Algorithm 2 ignores.
  void enterIfBranch(ast::IfStmt&) override { ++if_depth_; }
  void exitIfBranch(ast::IfStmt&) override { --if_depth_; }

  void addAssignment(ast::VarDecl* lhs, const ast::Expr* rhs, bool conditional) {
    RhsSources sources;
    collectRhsSources(rhs, sources);
    conditional = conditional || sources.conditional;
    for (ast::VarDecl* t : sources.direct) {
      direct_.push_back(DirectConstraint{lhs->id(), t, conditional});
    }
    for (ast::VarDecl* s : sources.copies) {
      copies_.push_back(CopyConstraint{lhs->id(), s->id(), conditional});
    }
  }

  void addFlow(ast::VarDecl* dst, const ast::Expr* rhs, bool conditional) {
    addAssignment(dst, rhs, conditional);
  }

  ast::ASTContext& ctx_;
  std::vector<DirectConstraint>& direct_;
  std::vector<CopyConstraint>& copies_;
  int if_depth_ = 0;
};

}  // namespace

void PointsToAnalysis::run(ast::ASTContext& context, AnalysisResult& result,
                           const ScopeAnalysisExtra& stage1_extra) {
  std::vector<DirectConstraint> direct;
  std::vector<CopyConstraint> copies;
  ConstraintCollector collector(context, direct, copies);
  collector.collect(context.unit());

  // Fixed point over inclusion constraints.
  std::unordered_map<std::uint32_t, std::set<ast::VarDecl*>> pts;
  std::unordered_map<std::uint32_t, bool> has_conditional;
  for (const DirectConstraint& c : direct) {
    pts[c.pointer].insert(c.target);
    if (c.conditional) has_conditional[c.pointer] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const CopyConstraint& c : copies) {
      auto src_it = pts.find(c.src);
      if (src_it == pts.end()) continue;
      std::set<ast::VarDecl*>& dst = pts[c.dst];
      const std::size_t before = dst.size();
      dst.insert(src_it->second.begin(), src_it->second.end());
      if (dst.size() != before) changed = true;
      if (c.conditional || has_conditional[c.src]) {
        if (!has_conditional[c.dst]) {
          has_conditional[c.dst] = true;
          changed = true;
        }
      }
    }
  }

  // Publish the relation map (deterministic target order).
  for (const auto& [pointer_id, targets] : pts) {
    PointsToInfo info;
    info.targets.assign(targets.begin(), targets.end());
    std::sort(info.targets.begin(), info.targets.end(),
              [](const ast::VarDecl* a, const ast::VarDecl* b) { return a->id() < b->id(); });
    info.definite = targets.size() == 1 && !has_conditional[pointer_id];
    result.points_to[pointer_id] = std::move(info);
  }

  // Algorithm 2: a shared pointer's definite pointee becomes shared.
  // Iterate: newly-shared pointers can expose further pointees.
  changed = true;
  while (changed) {
    changed = false;
    for (const auto& [pointer_id, info] : result.points_to) {
      if (!info.definite) continue;
      VariableInfo* pointer_info = nullptr;
      const auto it = result.variables.find(pointer_id);
      if (it != result.variables.end()) pointer_info = &it->second;
      if (pointer_info == nullptr || !pointer_info->isShared()) continue;
      for (ast::VarDecl* target : info.targets) {
        VariableInfo* target_info = result.find(target);
        if (target_info != nullptr && !target_info->isShared()) {
          if (target_info->refine(Sharing::Shared)) changed = true;
        }
      }
    }
  }

  // Attribute dereference accesses through definite pointers to the pointee
  // (this is how `tmp` earns its read count in Table 4.1).
  for (const auto& [pointer_id, accesses] : stage1_extra.deref) {
    const auto rel = result.points_to.find(pointer_id);
    if (rel == result.points_to.end() || !rel->second.definite) continue;
    VariableInfo* target_info = result.find(rel->second.targets.front());
    if (target_info == nullptr) continue;
    target_info->reads += accesses.reads;
    target_info->writes += accesses.writes;
    target_info->weighted_reads += accesses.weighted_reads;
    target_info->weighted_writes += accesses.weighted_writes;
    target_info->use_in.insert(accesses.use_in.begin(), accesses.use_in.end());
    target_info->def_in.insert(accesses.def_in.begin(), accesses.def_in.end());
  }

  // Post-processing: globals that are never read, written, or touched by a
  // thread are demoted to private (paper: `global` may even be removed).
  for (auto& [id, info] : result.variables) {
    if (info.is_global && info.reads == 0 && info.writes == 0 &&
        info.presence == ThreadPresence::NotInThread) {
      info.refine(Sharing::Private);
    }
    info.after_stage3 = info.status;
  }
}

}  // namespace hsm::analysis

#include "analysis/analyzer.h"

#include "analysis/points_to.h"
#include "analysis/scope_analysis.h"
#include "analysis/thread_analysis.h"

namespace hsm::analysis {

AnalysisResult Analyzer::analyze(ast::ASTContext& context) {
  AnalysisResult result;
  ScopeAnalysis stage1;
  const ScopeAnalysisExtra extra = stage1.run(context, result);
  ThreadAnalysis stage2;
  stage2.run(context, result);
  PointsToAnalysis stage3;
  stage3.run(context, result, extra);
  return result;
}

}  // namespace hsm::analysis

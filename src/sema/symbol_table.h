// Lexical scoping and symbol lookup for the C-subset IR.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"

namespace hsm::sema {

/// A stack of lexical scopes mapping names to declarations. The global scope
/// is index 0 and always present.
class SymbolTable {
 public:
  SymbolTable() { scopes_.emplace_back(); }

  void pushScope() { scopes_.emplace_back(); }
  void popScope() {
    if (scopes_.size() > 1) scopes_.pop_back();
  }
  [[nodiscard]] std::size_t depth() const { return scopes_.size(); }

  /// Declare `decl` in the innermost scope. Re-declaration in the same scope
  /// replaces the entry (the last declaration wins, as in a lenient C front
  /// end; the paper's inputs never shadow within one scope).
  void declare(const std::string& name, ast::Decl* decl) {
    scopes_.back()[name] = decl;
  }
  void declareGlobal(const std::string& name, ast::Decl* decl) {
    scopes_.front()[name] = decl;
  }

  /// Innermost-first lookup; null if the name is unknown (e.g. printf).
  [[nodiscard]] ast::Decl* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::unordered_map<std::string, ast::Decl*>> scopes_;
};

}  // namespace hsm::sema

#include "sema/resolver.h"

#include "ast/visitor.h"
#include "sema/symbol_table.h"

namespace hsm::sema {
namespace {

/// Walks a function body maintaining the scope stack and binding DeclRefs.
class BindingVisitor final : public ast::RecursiveVisitor {
 public:
  explicit BindingVisitor(SymbolTable& symbols) : symbols_(symbols) {}

  void run(ast::FunctionDecl& fn) {
    symbols_.pushScope();
    for (ast::ParamDecl* p : fn.params()) {
      if (p != nullptr && !p->name().empty()) {
        p->setOwner(&fn);
        symbols_.declare(p->name(), p);
      }
    }
    fn_ = &fn;
    if (fn.body() != nullptr) bindCompound(*fn.body());
    symbols_.popScope();
  }

 private:
  // Scope handling requires pre/post hooks around compound statements, so the
  // walk is implemented here rather than with RecursiveVisitor's traversal.
  void bindStmt(ast::Stmt* stmt) {
    if (stmt == nullptr) return;
    switch (stmt->kind()) {
      case ast::StmtKind::Compound:
        bindCompound(static_cast<ast::CompoundStmt&>(*stmt));
        break;
      case ast::StmtKind::Decl:
        for (ast::VarDecl* var : static_cast<ast::DeclStmt&>(*stmt).decls()) {
          // Initializer sees outer bindings, not the new name (C semantics
          // allow self-reference, but our inputs never use it).
          if (var->init() != nullptr) bindExpr(var->init());
          var->setOwner(fn_);
          symbols_.declare(var->name(), var);
        }
        break;
      case ast::StmtKind::Expr:
        bindExpr(static_cast<ast::ExprStmt&>(*stmt).expr());
        break;
      case ast::StmtKind::If: {
        auto& s = static_cast<ast::IfStmt&>(*stmt);
        bindExpr(s.cond());
        bindStmt(s.thenStmt());
        bindStmt(s.elseStmt());
        break;
      }
      case ast::StmtKind::For: {
        auto& s = static_cast<ast::ForStmt&>(*stmt);
        symbols_.pushScope();  // for-init declarations scope over the loop
        bindStmt(s.init());
        if (s.cond() != nullptr) bindExpr(s.cond());
        if (s.step() != nullptr) bindExpr(s.step());
        bindStmt(s.body());
        symbols_.popScope();
        break;
      }
      case ast::StmtKind::While: {
        auto& s = static_cast<ast::WhileStmt&>(*stmt);
        bindExpr(s.cond());
        bindStmt(s.body());
        break;
      }
      case ast::StmtKind::Do: {
        auto& s = static_cast<ast::DoStmt&>(*stmt);
        bindStmt(s.body());
        bindExpr(s.cond());
        break;
      }
      case ast::StmtKind::Return: {
        auto& s = static_cast<ast::ReturnStmt&>(*stmt);
        if (s.value() != nullptr) bindExpr(s.value());
        break;
      }
      case ast::StmtKind::Break:
      case ast::StmtKind::Continue:
      case ast::StmtKind::Null:
        break;
    }
  }

  void bindCompound(ast::CompoundStmt& compound) {
    symbols_.pushScope();
    for (ast::Stmt* s : compound.body()) bindStmt(s);
    symbols_.popScope();
  }

  void bindExpr(ast::Expr* expr) {
    if (expr == nullptr) return;
    switch (expr->kind()) {
      case ast::ExprKind::DeclRef: {
        auto& ref = static_cast<ast::DeclRefExpr&>(*expr);
        ref.setDecl(symbols_.lookup(ref.name()));
        break;
      }
      case ast::ExprKind::Unary:
        bindExpr(static_cast<ast::UnaryExpr&>(*expr).operand());
        break;
      case ast::ExprKind::Binary: {
        auto& b = static_cast<ast::BinaryExpr&>(*expr);
        bindExpr(b.lhs());
        bindExpr(b.rhs());
        break;
      }
      case ast::ExprKind::Conditional: {
        auto& c = static_cast<ast::ConditionalExpr&>(*expr);
        bindExpr(c.cond());
        bindExpr(c.thenExpr());
        bindExpr(c.elseExpr());
        break;
      }
      case ast::ExprKind::Call: {
        auto& call = static_cast<ast::CallExpr&>(*expr);
        bindExpr(call.callee());
        for (ast::Expr* a : call.args()) bindExpr(a);
        break;
      }
      case ast::ExprKind::Index: {
        auto& i = static_cast<ast::IndexExpr&>(*expr);
        bindExpr(i.base());
        bindExpr(i.index());
        break;
      }
      case ast::ExprKind::Member:
        bindExpr(static_cast<ast::MemberExpr&>(*expr).base());
        break;
      case ast::ExprKind::Cast:
        bindExpr(static_cast<ast::CastExpr&>(*expr).operand());
        break;
      case ast::ExprKind::Sizeof:
        if (auto* e = static_cast<ast::SizeofExpr&>(*expr).exprOperand()) bindExpr(e);
        break;
      case ast::ExprKind::InitList:
        for (ast::Expr* e : static_cast<ast::InitListExpr&>(*expr).inits()) bindExpr(e);
        break;
      default:
        break;
    }
  }

  SymbolTable& symbols_;
  ast::FunctionDecl* fn_ = nullptr;
};

}  // namespace

bool Resolver::resolve(ast::ASTContext& context) {
  SymbolTable symbols;
  ast::TranslationUnit& unit = context.unit();

  // Pass 1: register all file-scope names (functions may be referenced by
  // pthread_create before their definitions appear).
  for (ast::TopLevel& tl : unit.topLevels()) {
    if (tl.kind == ast::TopLevel::Kind::Function && tl.function != nullptr) {
      symbols.declareGlobal(tl.function->name(), tl.function);
    } else {
      for (ast::VarDecl* var : tl.vars) symbols.declareGlobal(var->name(), var);
    }
  }

  // Pass 2: bind global initializers, then function bodies in order.
  for (ast::TopLevel& tl : unit.topLevels()) {
    if (tl.kind == ast::TopLevel::Kind::Vars) {
      for (ast::VarDecl* var : tl.vars) {
        if (var->init() != nullptr) {
          // Global initializers reference only globals; bind in global scope.
          struct GlobalInitBinder {
            SymbolTable& symbols;
            void bind(ast::Expr* e) {
              if (e == nullptr) return;
              if (e->kind() == ast::ExprKind::DeclRef) {
                auto& ref = static_cast<ast::DeclRefExpr&>(*e);
                ref.setDecl(symbols.lookup(ref.name()));
                return;
              }
              if (e->kind() == ast::ExprKind::Unary) {
                bind(static_cast<ast::UnaryExpr&>(*e).operand());
              } else if (e->kind() == ast::ExprKind::Binary) {
                bind(static_cast<ast::BinaryExpr&>(*e).lhs());
                bind(static_cast<ast::BinaryExpr&>(*e).rhs());
              } else if (e->kind() == ast::ExprKind::InitList) {
                for (ast::Expr* i : static_cast<ast::InitListExpr&>(*e).inits()) bind(i);
              } else if (e->kind() == ast::ExprKind::Cast) {
                bind(static_cast<ast::CastExpr&>(*e).operand());
              }
            }
          };
          GlobalInitBinder{symbols}.bind(var->init());
        }
      }
    } else if (tl.function != nullptr && tl.function->isDefinition()) {
      BindingVisitor visitor(symbols);
      visitor.run(*tl.function);
    }
  }
  return !diags_.hasErrors();
}

}  // namespace hsm::sema

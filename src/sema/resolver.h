// Name resolution: binds every DeclRefExpr to its declaration, records each
// local variable's owning function, and flags globals. Unresolved names
// (library calls like printf, macros like NULL carried through from headers)
// are left unbound on purpose — the translator treats them as opaque.
#pragma once

#include "ast/context.h"
#include "support/diagnostics.h"

namespace hsm::sema {

class Resolver {
 public:
  explicit Resolver(DiagnosticEngine& diags) : diags_(diags) {}

  /// Resolve the whole unit. Returns false only on structural errors
  /// (e.g. duplicate function definitions); unknown names are not errors.
  bool resolve(ast::ASTContext& context);

 private:
  DiagnosticEngine& diags_;
};

}  // namespace hsm::sema

// An RCCE-compatible runtime over the simulated SCC.
//
// Mirrors the surface of the real RCCE library [van der Wijngaart et al.,
// SIGOPS OSR 2011] that the translator targets:
//   RCCE_ue / RCCE_num_ues      — rank / count of units of execution
//   RCCE_shmalloc               — off-chip shared memory allocation
//   RCCE_malloc                 — MPB (on-chip) allocation in the UE's slice
//   RCCE_put / RCCE_get         — one-sided transfers through the MPB
//   RCCE_barrier                — all-UE barrier
//   RCCE_acquire/release_lock   — test-and-set register locks
//
// Every operation charges simulated time on the SccMachine; host-side setup
// helpers (allocation before launch) are free, matching RCCE programs that
// allocate during initialization.
#pragma once

#include "sim/machine.h"

namespace hsm::rcce {

/// Host-side environment: shared allocations visible to all UEs.
class RcceEnv {
 public:
  explicit RcceEnv(sim::SccMachine& machine) : machine_(machine) {}

  /// RCCE_shmalloc: off-chip shared memory (returns region offset).
  std::uint64_t shmalloc(std::size_t bytes) { return machine_.shmalloc(bytes); }

  /// RCCE_malloc for a given UE: space in that UE's 8 KB MPB slice.
  std::uint64_t mpbMalloc(int ue, std::size_t bytes) {
    return machine_.mpbMalloc(ue, bytes);
  }

  /// Allocate the same number of MPB bytes in every UE's slice (the common
  /// symmetric-allocation pattern of RCCE programs). Returns the common
  /// offset — identical across UEs because slices fill in lockstep.
  std::uint64_t mpbMallocSymmetric(int num_ues, std::size_t bytes);

  [[nodiscard]] sim::SccMachine& machine() { return machine_; }

 private:
  sim::SccMachine& machine_;
};

/// UE-side operations (thin, documented aliases over CoreContext).
/// `put` moves data into the *target* UE's MPB; `get` pulls from the
/// *source* UE's MPB — the one-sided primitives RCCE is built on. Both are
/// chunk loops over the owning tile's port; uncontended runs of chunks
/// coalesce into single engine events (config.mpb_coalescing) with
/// bit-identical Ticks.
[[nodiscard]] inline sim::SubTask put(sim::CoreContext& ctx, int target_ue,
                                      std::uint64_t mpb_offset, const void* src,
                                      std::size_t bytes) {
  return ctx.mpbWrite(target_ue, mpb_offset, src, bytes);
}

[[nodiscard]] inline sim::SubTask get(sim::CoreContext& ctx, int source_ue,
                                      std::uint64_t mpb_offset, void* dst,
                                      std::size_t bytes) {
  return ctx.mpbRead(source_ue, mpb_offset, dst, bytes);
}

/// RCCE_barrier / RCCE_acquire_lock / RCCE_release_lock. These are the
/// swcache reconciliation points (config.shm_swcache): the barrier and the
/// release flush dirty cached lines first, the barrier and the acquire
/// self-invalidate clean lines after — so releaseLock is awaitable too and
/// MUST be co_awaited (a discarded return value releases nothing). With the
/// swcache off they forward to the raw sync operations, frame-free.
[[nodiscard]] inline sim::CoreContext::SyncAwaiter barrier(sim::CoreContext& ctx) {
  return ctx.barrier();
}

[[nodiscard]] inline sim::CoreContext::SyncAwaiter acquireLock(sim::CoreContext& ctx,
                                                               int lock) {
  return ctx.lockAcquire(lock);
}

[[nodiscard]] inline sim::CoreContext::SyncAwaiter releaseLock(sim::CoreContext& ctx,
                                                               int lock) {
  return ctx.lockRelease(lock);
}

/// Typed view of an off-chip shared array (offsets in elements).
template <typename T>
class ShmArray {
 public:
  ShmArray() = default;
  /// Legacy allocation: the region stays UNMAPPED in the machine's
  /// cacheability map, so config.shm_swcache (the global default) governs
  /// its routing — exactly the pre-ExecutionPlan behavior.
  ShmArray(RcceEnv& env, std::size_t count)
      : machine_(&env.machine()), base_(env.shmalloc(count * sizeof(T))), count_(count) {}
  /// Plan-carrying allocation: the region records its ExecutionPlan
  /// placement class and registers its cacheability with the machine —
  /// kOffChipCached routes through the swcache, every other class pins the
  /// region to the uncached word path regardless of config.shm_swcache.
  /// Cached regions are line-aligned and line-padded: the swcache moves
  /// whole lines, so a cached region must never share a line with a
  /// neighboring uncached region (a whole-line write-back would clobber
  /// the neighbor's uncached updates — cross-policy false sharing).
  /// The optional controller placement registers the region's
  /// address→controller mapping (SccMachine::setShmControllerPlacement).
  /// Cached regions skip the registration: the swcache is private per core,
  /// so its DRAM line traffic follows the requesting core regardless of
  /// placement (the composition rule in docs/execution_plan.md) — and
  /// kOwnerCompute registrations are dropped too, since they restate the
  /// default and would only knock accesses off the legacy fast path.
  ShmArray(RcceEnv& env, std::size_t count, partition::PlacementClass placement,
           partition::ControllerPlacement controller =
               partition::ControllerPlacement::kOwnerCompute,
           std::uint32_t pinned_controller = 0)
      : machine_(&env.machine()), count_(count), placement_(placement) {
    const std::size_t bytes = count * sizeof(T);
    if (placement == partition::PlacementClass::kOffChipCached) {
      const std::size_t line = machine_->config().cache_line_bytes;
      base_ = machine_->shmalloc(((bytes + line - 1) / line) * line, line);
    } else {
      base_ = env.shmalloc(bytes);
    }
    machine_->setShmCacheability(
        base_, base_ + bytes,
        placement == partition::PlacementClass::kOffChipCached);
    if (placement != partition::PlacementClass::kOffChipCached &&
        controller != partition::ControllerPlacement::kOwnerCompute) {
      machine_->setShmControllerPlacement(base_, base_ + bytes, controller,
                                          pinned_controller);
    }
  }

  /// This region's placement attribute (kOffChipUncached for legacy
  /// allocations that never carried a plan).
  [[nodiscard]] partition::PlacementClass placement() const { return placement_; }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::uint64_t byteOffset(std::size_t i) const {
    return base_ + i * sizeof(T);
  }

  /// Host-side (untimed) access for setup and verification.
  [[nodiscard]] T* hostData() {
    return reinterpret_cast<T*>(machine_->shmData(base_));
  }

  [[nodiscard]] sim::SubTask read(sim::CoreContext& ctx, std::size_t i, T* out) const {
    return ctx.shmRead(byteOffset(i), out, sizeof(T));
  }
  [[nodiscard]] sim::SubTask write(sim::CoreContext& ctx, std::size_t i,
                                   const T& value) const {
    // shmWrite is a lazily-started coroutine: it captures the value only
    // when first awaited, so the returned SubTask must be co_awaited within
    // this full expression (do not store it past `value`'s lifetime).
    return ctx.shmWrite(byteOffset(i), &value, sizeof(T));
  }
  /// Word-granular block access (every word an independent uncached
  /// transaction, as RCCE_shmalloc'd memory behaves). Rides CoreContext's
  /// coalesced word path: uncontended runs of words collapse into single
  /// engine events with bit-identical simulated Ticks.
  [[nodiscard]] sim::SubTask readBlock(sim::CoreContext& ctx, std::size_t first,
                                       std::size_t count, T* out) const {
    return ctx.shmRead(byteOffset(first), out, count * sizeof(T));
  }
  [[nodiscard]] sim::SubTask writeBlock(sim::CoreContext& ctx, std::size_t first,
                                        std::size_t count, const T* src) const {
    return ctx.shmWrite(byteOffset(first), src, count * sizeof(T));
  }
  /// RCCE-style bulk copy (sequential burst, row-buffer friendly). Bypasses
  /// the swcache but stays coherent with this core's cached lines.
  [[nodiscard]] sim::CoreContext::BulkAwaiter readBulk(sim::CoreContext& ctx,
                                                       std::size_t first,
                                                       std::size_t count, T* out) const {
    return ctx.shmReadBulk(byteOffset(first), out, count * sizeof(T));
  }
  [[nodiscard]] sim::CoreContext::BulkAwaiter writeBulk(sim::CoreContext& ctx,
                                                        std::size_t first,
                                                        std::size_t count,
                                                        const T* src) const {
    // With the swcache enabled this is lazily started — co_await within the
    // full expression, do not store past `src`'s lifetime.
    return ctx.shmWriteBulk(byteOffset(first), src, count * sizeof(T));
  }

 private:
  sim::SccMachine* machine_ = nullptr;
  std::uint64_t base_ = 0;
  std::size_t count_ = 0;
  partition::PlacementClass placement_ = partition::PlacementClass::kOffChipUncached;
};

/// Typed view of per-UE MPB buffers at a symmetric offset.
template <typename T>
class MpbArray {
 public:
  MpbArray() = default;
  MpbArray(RcceEnv& env, int num_ues, std::size_t count_per_ue)
      : machine_(&env.machine()),
        base_(env.mpbMallocSymmetric(num_ues, count_per_ue * sizeof(T))),
        count_(count_per_ue) {}

  [[nodiscard]] std::size_t sizePerUe() const { return count_; }

  [[nodiscard]] T* hostData(int ue) {
    return reinterpret_cast<T*>(machine_->mpbData(ue, base_));
  }

  [[nodiscard]] sim::SubTask read(sim::CoreContext& ctx, int owner_ue, std::size_t i,
                                  T* out) const {
    return ctx.mpbRead(owner_ue, base_ + i * sizeof(T), out, sizeof(T));
  }
  [[nodiscard]] sim::SubTask write(sim::CoreContext& ctx, int owner_ue, std::size_t i,
                                   const T& value) const {
    // mpbWrite is a lazily-started coroutine: it copies the value only when
    // first awaited, so the returned SubTask must be co_awaited within this
    // full expression (do not store it past `value`'s lifetime).
    return ctx.mpbWrite(owner_ue, base_ + i * sizeof(T), &value, sizeof(T));
  }
  [[nodiscard]] sim::SubTask readBlock(sim::CoreContext& ctx, int owner_ue,
                                       std::size_t first, std::size_t count,
                                       T* out) const {
    return ctx.mpbRead(owner_ue, base_ + first * sizeof(T), out, count * sizeof(T));
  }
  [[nodiscard]] sim::SubTask writeBlock(sim::CoreContext& ctx, int owner_ue,
                                        std::size_t first, std::size_t count,
                                        const T* src) const {
    return ctx.mpbWrite(owner_ue, base_ + first * sizeof(T), src, count * sizeof(T));
  }

 private:
  sim::SccMachine* machine_ = nullptr;
  std::uint64_t base_ = 0;
  std::size_t count_ = 0;
};

}  // namespace hsm::rcce

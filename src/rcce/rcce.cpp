#include "rcce/rcce.h"

#include <stdexcept>

namespace hsm::rcce {

std::uint64_t RcceEnv::mpbMallocSymmetric(int num_ues, std::size_t bytes) {
  std::uint64_t offset = 0;
  for (int ue = 0; ue < num_ues; ++ue) {
    const std::uint64_t o = machine_.mpbMalloc(ue, bytes);
    if (ue == 0) {
      offset = o;
    } else if (o != offset) {
      throw std::logic_error("asymmetric MPB allocation: slices out of lockstep");
    }
  }
  return offset;
}

}  // namespace hsm::rcce

// A hand-written lexer for the C subset accepted by the translator.
//
// Handles identifiers/keywords, integer/float/char/string literals, the full
// C operator set, line and block comments, and captures preprocessor
// directives verbatim (they are re-emitted by codegen).
#pragma once

#include <vector>

#include "lex/token.h"
#include "support/diagnostics.h"
#include "support/source.h"

namespace hsm::lex {

struct LexResult {
  std::vector<Token> tokens;       ///< Terminated by an Eof token.
  std::vector<Directive> directives;
};

class Lexer {
 public:
  Lexer(const SourceBuffer& buffer, DiagnosticEngine& diags)
      : buffer_(buffer), diags_(diags) {}

  /// Lex the whole buffer. Errors are reported to the DiagnosticEngine;
  /// lexing continues after recoverable errors.
  [[nodiscard]] LexResult lexAll();

 private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  [[nodiscard]] bool atEnd() const { return pos_ >= buffer_.text().size(); }
  char advance() { return buffer_.text()[pos_++]; }
  [[nodiscard]] bool match(char expected);
  [[nodiscard]] SourceLoc here() const { return buffer_.locate(static_cast<std::uint32_t>(pos_)); }

  void skipWhitespaceAndComments();
  void lexDirective(LexResult& out);
  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexCharLiteral();
  Token lexStringLiteral();
  Token lexOperator();

  Token makeToken(TokenKind kind, std::size_t start) const;

  const SourceBuffer& buffer_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::size_t tokens_lexed_ = 0;
};

}  // namespace hsm::lex

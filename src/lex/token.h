// Token definitions for the C-subset frontend.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source.h"

namespace hsm::lex {

enum class TokenKind : std::uint8_t {
  // Sentinels
  Eof,
  // Literals and names
  Identifier,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,
  // Keywords
  KwVoid, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
  KwSigned, KwUnsigned, KwConst, KwVolatile, KwStatic, KwExtern,
  KwStruct, KwUnion, KwEnum, KwTypedef,
  KwIf, KwElse, KwFor, KwWhile, KwDo, KwReturn, KwBreak, KwContinue,
  KwSwitch, KwCase, KwDefault, KwGoto, KwSizeof,
  // Punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semicolon, Comma, Colon, Question, Ellipsis,
  // Operators
  Plus, Minus, Star, Slash, Percent,
  PlusPlus, MinusMinus,
  Amp, Pipe, Caret, Tilde, Bang,
  AmpAmp, PipePipe,
  Less, Greater, LessEqual, GreaterEqual, EqualEqual, BangEqual,
  LessLess, GreaterGreater,
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  AmpAssign, PipeAssign, CaretAssign, LessLessAssign, GreaterGreaterAssign,
  Dot, Arrow,
};

/// Human-readable spelling of a token kind (for diagnostics).
[[nodiscard]] const char* tokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::Eof;
  std::string_view text;  ///< Points into the SourceBuffer text.
  SourceLoc loc;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] bool isOneOf(TokenKind a, TokenKind b) const { return is(a) || is(b); }
  template <typename... Ts>
  [[nodiscard]] bool isOneOf(TokenKind a, TokenKind b, Ts... rest) const {
    return is(a) || isOneOf(b, rest...);
  }
};

/// A preprocessor directive captured verbatim (e.g. `#include <stdio.h>`).
/// The frontend does not expand the preprocessor; directives are carried
/// through to the translated output, as a source-to-source tool must.
struct Directive {
  std::string text;           ///< Full line without trailing newline.
  SourceLoc loc;
  std::size_t token_index = 0;  ///< Number of tokens lexed before this directive.
};

}  // namespace hsm::lex

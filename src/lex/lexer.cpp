#include "lex/lexer.h"

#include <cctype>
#include <string_view>
#include <unordered_map>

namespace hsm::lex {
namespace {

const std::unordered_map<std::string_view, TokenKind>& keywordTable() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"void", TokenKind::KwVoid},       {"char", TokenKind::KwChar},
      {"short", TokenKind::KwShort},     {"int", TokenKind::KwInt},
      {"long", TokenKind::KwLong},       {"float", TokenKind::KwFloat},
      {"double", TokenKind::KwDouble},   {"signed", TokenKind::KwSigned},
      {"unsigned", TokenKind::KwUnsigned}, {"const", TokenKind::KwConst},
      {"volatile", TokenKind::KwVolatile}, {"static", TokenKind::KwStatic},
      {"extern", TokenKind::KwExtern},   {"struct", TokenKind::KwStruct},
      {"union", TokenKind::KwUnion},     {"enum", TokenKind::KwEnum},
      {"typedef", TokenKind::KwTypedef}, {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"for", TokenKind::KwFor},
      {"while", TokenKind::KwWhile},     {"do", TokenKind::KwDo},
      {"return", TokenKind::KwReturn},   {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue}, {"switch", TokenKind::KwSwitch},
      {"case", TokenKind::KwCase},       {"default", TokenKind::KwDefault},
      {"goto", TokenKind::KwGoto},       {"sizeof", TokenKind::KwSizeof},
  };
  return table;
}

}  // namespace

const char* tokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::Eof: return "end of file";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::FloatLiteral: return "floating literal";
    case TokenKind::CharLiteral: return "character literal";
    case TokenKind::StringLiteral: return "string literal";
    case TokenKind::KwVoid: return "'void'";
    case TokenKind::KwChar: return "'char'";
    case TokenKind::KwShort: return "'short'";
    case TokenKind::KwInt: return "'int'";
    case TokenKind::KwLong: return "'long'";
    case TokenKind::KwFloat: return "'float'";
    case TokenKind::KwDouble: return "'double'";
    case TokenKind::KwSigned: return "'signed'";
    case TokenKind::KwUnsigned: return "'unsigned'";
    case TokenKind::KwConst: return "'const'";
    case TokenKind::KwVolatile: return "'volatile'";
    case TokenKind::KwStatic: return "'static'";
    case TokenKind::KwExtern: return "'extern'";
    case TokenKind::KwStruct: return "'struct'";
    case TokenKind::KwUnion: return "'union'";
    case TokenKind::KwEnum: return "'enum'";
    case TokenKind::KwTypedef: return "'typedef'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwFor: return "'for'";
    case TokenKind::KwWhile: return "'while'";
    case TokenKind::KwDo: return "'do'";
    case TokenKind::KwReturn: return "'return'";
    case TokenKind::KwBreak: return "'break'";
    case TokenKind::KwContinue: return "'continue'";
    case TokenKind::KwSwitch: return "'switch'";
    case TokenKind::KwCase: return "'case'";
    case TokenKind::KwDefault: return "'default'";
    case TokenKind::KwGoto: return "'goto'";
    case TokenKind::KwSizeof: return "'sizeof'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Comma: return "','";
    case TokenKind::Colon: return "':'";
    case TokenKind::Question: return "'?'";
    case TokenKind::Ellipsis: return "'...'";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::PlusPlus: return "'++'";
    case TokenKind::MinusMinus: return "'--'";
    case TokenKind::Amp: return "'&'";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::Caret: return "'^'";
    case TokenKind::Tilde: return "'~'";
    case TokenKind::Bang: return "'!'";
    case TokenKind::AmpAmp: return "'&&'";
    case TokenKind::PipePipe: return "'||'";
    case TokenKind::Less: return "'<'";
    case TokenKind::Greater: return "'>'";
    case TokenKind::LessEqual: return "'<='";
    case TokenKind::GreaterEqual: return "'>='";
    case TokenKind::EqualEqual: return "'=='";
    case TokenKind::BangEqual: return "'!='";
    case TokenKind::LessLess: return "'<<'";
    case TokenKind::GreaterGreater: return "'>>'";
    case TokenKind::Assign: return "'='";
    case TokenKind::PlusAssign: return "'+='";
    case TokenKind::MinusAssign: return "'-='";
    case TokenKind::StarAssign: return "'*='";
    case TokenKind::SlashAssign: return "'/='";
    case TokenKind::PercentAssign: return "'%='";
    case TokenKind::AmpAssign: return "'&='";
    case TokenKind::PipeAssign: return "'|='";
    case TokenKind::CaretAssign: return "'^='";
    case TokenKind::LessLessAssign: return "'<<='";
    case TokenKind::GreaterGreaterAssign: return "'>>='";
    case TokenKind::Dot: return "'.'";
    case TokenKind::Arrow: return "'->'";
  }
  return "unknown";
}

char Lexer::peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < buffer_.text().size() ? buffer_.text()[i] : '\0';
}

bool Lexer::match(char expected) {
  if (atEnd() || peek() != expected) return false;
  ++pos_;
  return true;
}

Token Lexer::makeToken(TokenKind kind, std::size_t start) const {
  Token tok;
  tok.kind = kind;
  tok.text = buffer_.text().substr(start, pos_ - start);
  tok.loc = buffer_.locate(static_cast<std::uint32_t>(start));
  return tok;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++pos_;
    } else if (c == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n') ++pos_;
    } else if (c == '/' && peek(1) == '*') {
      const SourceLoc start = here();
      pos_ += 2;
      bool closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          pos_ += 2;
          closed = true;
          break;
        }
        ++pos_;
      }
      if (!closed) diags_.error(start, "unterminated block comment");
    } else {
      break;
    }
  }
}

void Lexer::lexDirective(LexResult& out) {
  const std::size_t start = pos_;
  const SourceLoc loc = here();
  // Capture up to end of line, honoring line continuations.
  while (!atEnd() && peek() != '\n') {
    if (peek() == '\\' && peek(1) == '\n') {
      pos_ += 2;
      continue;
    }
    ++pos_;
  }
  std::string text(buffer_.text().substr(start, pos_ - start));
  // Strip trailing carriage return, if any.
  while (!text.empty() && (text.back() == '\r' || text.back() == ' ')) text.pop_back();
  out.directives.push_back(Directive{std::move(text), loc, tokens_lexed_});
}

Token Lexer::lexIdentifierOrKeyword() {
  const std::size_t start = pos_;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) ++pos_;
  const std::string_view text = buffer_.text().substr(start, pos_ - start);
  const auto& table = keywordTable();
  const auto it = table.find(text);
  return makeToken(it != table.end() ? it->second : TokenKind::Identifier, start);
}

Token Lexer::lexNumber() {
  const std::size_t start = pos_;
  bool is_float = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    pos_ += 2;
    while (!atEnd() && std::isxdigit(static_cast<unsigned char>(peek()))) ++pos_;
  } else {
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_float = true;
      ++pos_;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    } else if (peek() == '.') {
      is_float = true;
      ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      std::size_t probe = 1;
      if (peek(probe) == '+' || peek(probe) == '-') ++probe;
      if (std::isdigit(static_cast<unsigned char>(peek(probe)))) {
        is_float = true;
        pos_ += probe;
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
      }
    }
  }
  // Suffixes: u/U/l/L/f/F in any reasonable combination.
  while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L' ||
         peek() == 'f' || peek() == 'F') {
    if (peek() == 'f' || peek() == 'F') is_float = true;
    ++pos_;
  }
  return makeToken(is_float ? TokenKind::FloatLiteral : TokenKind::IntLiteral, start);
}

Token Lexer::lexCharLiteral() {
  const std::size_t start = pos_;
  const SourceLoc loc = here();
  ++pos_;  // opening quote
  while (!atEnd() && peek() != '\'') {
    if (peek() == '\\') ++pos_;
    if (!atEnd()) ++pos_;
  }
  if (!match('\'')) diags_.error(loc, "unterminated character literal");
  return makeToken(TokenKind::CharLiteral, start);
}

Token Lexer::lexStringLiteral() {
  const std::size_t start = pos_;
  const SourceLoc loc = here();
  ++pos_;  // opening quote
  while (!atEnd() && peek() != '"') {
    if (peek() == '\\') ++pos_;
    if (!atEnd()) ++pos_;
  }
  if (!match('"')) diags_.error(loc, "unterminated string literal");
  return makeToken(TokenKind::StringLiteral, start);
}

Token Lexer::lexOperator() {
  const std::size_t start = pos_;
  const char c = advance();
  switch (c) {
    case '(': return makeToken(TokenKind::LParen, start);
    case ')': return makeToken(TokenKind::RParen, start);
    case '{': return makeToken(TokenKind::LBrace, start);
    case '}': return makeToken(TokenKind::RBrace, start);
    case '[': return makeToken(TokenKind::LBracket, start);
    case ']': return makeToken(TokenKind::RBracket, start);
    case ';': return makeToken(TokenKind::Semicolon, start);
    case ',': return makeToken(TokenKind::Comma, start);
    case ':': return makeToken(TokenKind::Colon, start);
    case '?': return makeToken(TokenKind::Question, start);
    case '~': return makeToken(TokenKind::Tilde, start);
    case '+':
      if (match('+')) return makeToken(TokenKind::PlusPlus, start);
      if (match('=')) return makeToken(TokenKind::PlusAssign, start);
      return makeToken(TokenKind::Plus, start);
    case '-':
      if (match('-')) return makeToken(TokenKind::MinusMinus, start);
      if (match('=')) return makeToken(TokenKind::MinusAssign, start);
      if (match('>')) return makeToken(TokenKind::Arrow, start);
      return makeToken(TokenKind::Minus, start);
    case '*':
      if (match('=')) return makeToken(TokenKind::StarAssign, start);
      return makeToken(TokenKind::Star, start);
    case '/':
      if (match('=')) return makeToken(TokenKind::SlashAssign, start);
      return makeToken(TokenKind::Slash, start);
    case '%':
      if (match('=')) return makeToken(TokenKind::PercentAssign, start);
      return makeToken(TokenKind::Percent, start);
    case '&':
      if (match('&')) return makeToken(TokenKind::AmpAmp, start);
      if (match('=')) return makeToken(TokenKind::AmpAssign, start);
      return makeToken(TokenKind::Amp, start);
    case '|':
      if (match('|')) return makeToken(TokenKind::PipePipe, start);
      if (match('=')) return makeToken(TokenKind::PipeAssign, start);
      return makeToken(TokenKind::Pipe, start);
    case '^':
      if (match('=')) return makeToken(TokenKind::CaretAssign, start);
      return makeToken(TokenKind::Caret, start);
    case '!':
      if (match('=')) return makeToken(TokenKind::BangEqual, start);
      return makeToken(TokenKind::Bang, start);
    case '=':
      if (match('=')) return makeToken(TokenKind::EqualEqual, start);
      return makeToken(TokenKind::Assign, start);
    case '<':
      if (match('<')) {
        if (match('=')) return makeToken(TokenKind::LessLessAssign, start);
        return makeToken(TokenKind::LessLess, start);
      }
      if (match('=')) return makeToken(TokenKind::LessEqual, start);
      return makeToken(TokenKind::Less, start);
    case '>':
      if (match('>')) {
        if (match('=')) return makeToken(TokenKind::GreaterGreaterAssign, start);
        return makeToken(TokenKind::GreaterGreater, start);
      }
      if (match('=')) return makeToken(TokenKind::GreaterEqual, start);
      return makeToken(TokenKind::Greater, start);
    case '.':
      if (peek() == '.' && peek(1) == '.') {
        pos_ += 2;
        return makeToken(TokenKind::Ellipsis, start);
      }
      return makeToken(TokenKind::Dot, start);
    default:
      diags_.error(buffer_.locate(static_cast<std::uint32_t>(start)),
                   std::string("unexpected character '") + c + "'");
      return makeToken(TokenKind::Eof, start);
  }
}

LexResult Lexer::lexAll() {
  LexResult out;
  pos_ = 0;
  tokens_lexed_ = 0;
  for (;;) {
    skipWhitespaceAndComments();
    if (atEnd()) break;
    const char c = peek();
    if (c == '#') {
      lexDirective(out);
      continue;
    }
    Token tok;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tok = lexIdentifierOrKeyword();
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      tok = lexNumber();
    } else if (c == '\'') {
      tok = lexCharLiteral();
    } else if (c == '"') {
      tok = lexStringLiteral();
    } else {
      tok = lexOperator();
      if (tok.kind == TokenKind::Eof) continue;  // error already reported
    }
    out.tokens.push_back(tok);
    ++tokens_lexed_;
  }
  Token eof;
  eof.kind = TokenKind::Eof;
  eof.loc = buffer_.locate(static_cast<std::uint32_t>(buffer_.text().size()));
  out.tokens.push_back(eof);
  return out;
}

}  // namespace hsm::lex

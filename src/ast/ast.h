// AST node definitions for the C-subset IR (the analogue of the CETUS IR
// the paper's translator is built on).
//
// Ownership model: ASTContext (see context.h) is the arena that owns every
// node; the tree links are non-owning raw pointers. Transform passes mutate
// the tree in place (insert/remove statements, rewrite expressions), which
// mirrors how the paper's CETUS passes reshape the IR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ast/type.h"
#include "lex/token.h"
#include "support/source.h"

namespace hsm::ast {

class Expr;
class Stmt;
class Decl;
class VarDecl;
class FunctionDecl;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,
  DeclRef,
  Unary,
  Binary,
  Conditional,
  Call,
  Index,
  Member,
  Cast,
  Sizeof,
  InitList,
};

enum class UnaryOp : std::uint8_t {
  Plus, Minus, LogicalNot, BitNot, Deref, AddrOf,
  PreInc, PreDec, PostInc, PostDec,
};

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  Shl, Shr,
  Lt, Gt, Le, Ge, Eq, Ne,
  BitAnd, BitOr, BitXor,
  LogicalAnd, LogicalOr,
  Assign, AddAssign, SubAssign, MulAssign, DivAssign, RemAssign,
  AndAssign, OrAssign, XorAssign, ShlAssign, ShrAssign,
  Comma,
};

[[nodiscard]] constexpr bool isAssignmentOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::Assign:
    case BinaryOp::AddAssign:
    case BinaryOp::SubAssign:
    case BinaryOp::MulAssign:
    case BinaryOp::DivAssign:
    case BinaryOp::RemAssign:
    case BinaryOp::AndAssign:
    case BinaryOp::OrAssign:
    case BinaryOp::XorAssign:
    case BinaryOp::ShlAssign:
    case BinaryOp::ShrAssign:
      return true;
    default:
      return false;
  }
}

/// True for compound assignments (which both read and write their LHS).
[[nodiscard]] constexpr bool isCompoundAssignmentOp(BinaryOp op) {
  return isAssignmentOp(op) && op != BinaryOp::Assign;
}

class Expr {
 public:
  Expr(ExprKind kind, SourceLoc loc) : kind_(kind), loc_(loc) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  [[nodiscard]] ExprKind kind() const { return kind_; }
  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  ExprKind kind_;
  SourceLoc loc_;
};

class IntLiteralExpr final : public Expr {
 public:
  IntLiteralExpr(long long value, std::string spelling, SourceLoc loc)
      : Expr(ExprKind::IntLiteral, loc), value_(value), spelling_(std::move(spelling)) {}
  [[nodiscard]] long long value() const { return value_; }
  [[nodiscard]] const std::string& spelling() const { return spelling_; }

 private:
  long long value_;
  std::string spelling_;
};

class FloatLiteralExpr final : public Expr {
 public:
  FloatLiteralExpr(double value, std::string spelling, SourceLoc loc)
      : Expr(ExprKind::FloatLiteral, loc), value_(value), spelling_(std::move(spelling)) {}
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] const std::string& spelling() const { return spelling_; }

 private:
  double value_;
  std::string spelling_;
};

class CharLiteralExpr final : public Expr {
 public:
  CharLiteralExpr(std::string spelling, SourceLoc loc)
      : Expr(ExprKind::CharLiteral, loc), spelling_(std::move(spelling)) {}
  /// Spelling includes the quotes, e.g. "'a'".
  [[nodiscard]] const std::string& spelling() const { return spelling_; }

 private:
  std::string spelling_;
};

class StringLiteralExpr final : public Expr {
 public:
  StringLiteralExpr(std::string spelling, SourceLoc loc)
      : Expr(ExprKind::StringLiteral, loc), spelling_(std::move(spelling)) {}
  /// Spelling includes the quotes, e.g. "\"hi\\n\"".
  [[nodiscard]] const std::string& spelling() const { return spelling_; }

 private:
  std::string spelling_;
};

/// A use of a declared name. `decl()` is resolved by sema; it stays null for
/// names we never see a declaration of (library functions like `printf`).
class DeclRefExpr final : public Expr {
 public:
  DeclRefExpr(std::string name, SourceLoc loc)
      : Expr(ExprKind::DeclRef, loc), name_(std::move(name)) {}
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Decl* decl() const { return decl_; }
  void setDecl(Decl* d) { decl_ = d; }
  void setName(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
  Decl* decl_ = nullptr;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, Expr* operand, SourceLoc loc)
      : Expr(ExprKind::Unary, loc), op_(op), operand_(operand) {}
  [[nodiscard]] UnaryOp op() const { return op_; }
  [[nodiscard]] Expr* operand() const { return operand_; }
  void setOperand(Expr* e) { operand_ = e; }

 private:
  UnaryOp op_;
  Expr* operand_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, Expr* lhs, Expr* rhs, SourceLoc loc)
      : Expr(ExprKind::Binary, loc), op_(op), lhs_(lhs), rhs_(rhs) {}
  [[nodiscard]] BinaryOp op() const { return op_; }
  [[nodiscard]] Expr* lhs() const { return lhs_; }
  [[nodiscard]] Expr* rhs() const { return rhs_; }
  void setLhs(Expr* e) { lhs_ = e; }
  void setRhs(Expr* e) { rhs_ = e; }

 private:
  BinaryOp op_;
  Expr* lhs_;
  Expr* rhs_;
};

class ConditionalExpr final : public Expr {
 public:
  ConditionalExpr(Expr* cond, Expr* then_expr, Expr* else_expr, SourceLoc loc)
      : Expr(ExprKind::Conditional, loc), cond_(cond), then_(then_expr), else_(else_expr) {}
  [[nodiscard]] Expr* cond() const { return cond_; }
  [[nodiscard]] Expr* thenExpr() const { return then_; }
  [[nodiscard]] Expr* elseExpr() const { return else_; }
  void setCond(Expr* e) { cond_ = e; }
  void setThenExpr(Expr* e) { then_ = e; }
  void setElseExpr(Expr* e) { else_ = e; }

 private:
  Expr* cond_;
  Expr* then_;
  Expr* else_;
};

class CallExpr final : public Expr {
 public:
  CallExpr(Expr* callee, std::vector<Expr*> args, SourceLoc loc)
      : Expr(ExprKind::Call, loc), callee_(callee), args_(std::move(args)) {}
  [[nodiscard]] Expr* callee() const { return callee_; }
  [[nodiscard]] const std::vector<Expr*>& args() const { return args_; }
  [[nodiscard]] std::vector<Expr*>& args() { return args_; }
  void setCallee(Expr* e) { callee_ = e; }

  /// The called function's name if the callee is a plain identifier,
  /// else "". This is the lookup key for the pthread/RCCE API tables.
  [[nodiscard]] std::string calleeName() const;

 private:
  Expr* callee_;
  std::vector<Expr*> args_;
};

class IndexExpr final : public Expr {
 public:
  IndexExpr(Expr* base, Expr* index, SourceLoc loc)
      : Expr(ExprKind::Index, loc), base_(base), index_(index) {}
  [[nodiscard]] Expr* base() const { return base_; }
  [[nodiscard]] Expr* index() const { return index_; }
  void setBase(Expr* e) { base_ = e; }
  void setIndex(Expr* e) { index_ = e; }

 private:
  Expr* base_;
  Expr* index_;
};

class MemberExpr final : public Expr {
 public:
  MemberExpr(Expr* base, std::string member, bool is_arrow, SourceLoc loc)
      : Expr(ExprKind::Member, loc), base_(base), member_(std::move(member)),
        is_arrow_(is_arrow) {}
  [[nodiscard]] Expr* base() const { return base_; }
  [[nodiscard]] const std::string& member() const { return member_; }
  [[nodiscard]] bool isArrow() const { return is_arrow_; }
  void setBase(Expr* e) { base_ = e; }

 private:
  Expr* base_;
  std::string member_;
  bool is_arrow_;
};

class CastExpr final : public Expr {
 public:
  CastExpr(const Type* target, Expr* operand, SourceLoc loc)
      : Expr(ExprKind::Cast, loc), target_(target), operand_(operand) {}
  [[nodiscard]] const Type* target() const { return target_; }
  [[nodiscard]] Expr* operand() const { return operand_; }
  void setOperand(Expr* e) { operand_ = e; }

 private:
  const Type* target_;
  Expr* operand_;
};

class SizeofExpr final : public Expr {
 public:
  /// sizeof(type) form; `operand` null.
  SizeofExpr(const Type* type, SourceLoc loc)
      : Expr(ExprKind::Sizeof, loc), type_(type), operand_(nullptr) {}
  /// sizeof expr form; `type` null.
  SizeofExpr(Expr* operand, SourceLoc loc)
      : Expr(ExprKind::Sizeof, loc), type_(nullptr), operand_(operand) {}
  [[nodiscard]] const Type* typeOperand() const { return type_; }
  [[nodiscard]] Expr* exprOperand() const { return operand_; }

 private:
  const Type* type_;
  Expr* operand_;
};

class InitListExpr final : public Expr {
 public:
  InitListExpr(std::vector<Expr*> inits, SourceLoc loc)
      : Expr(ExprKind::InitList, loc), inits_(std::move(inits)) {}
  [[nodiscard]] const std::vector<Expr*>& inits() const { return inits_; }

 private:
  std::vector<Expr*> inits_;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Compound,
  Decl,
  Expr,
  If,
  For,
  While,
  Do,
  Return,
  Break,
  Continue,
  Null,
};

class Stmt {
 public:
  Stmt(StmtKind kind, SourceLoc loc) : kind_(kind), loc_(loc) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  [[nodiscard]] StmtKind kind() const { return kind_; }
  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  StmtKind kind_;
  SourceLoc loc_;
};

class CompoundStmt final : public Stmt {
 public:
  explicit CompoundStmt(SourceLoc loc) : Stmt(StmtKind::Compound, loc) {}
  [[nodiscard]] const std::vector<Stmt*>& body() const { return body_; }
  [[nodiscard]] std::vector<Stmt*>& body() { return body_; }
  void append(Stmt* s) { body_.push_back(s); }

 private:
  std::vector<Stmt*> body_;
};

class DeclStmt final : public Stmt {
 public:
  DeclStmt(std::vector<VarDecl*> decls, SourceLoc loc)
      : Stmt(StmtKind::Decl, loc), decls_(std::move(decls)) {}
  [[nodiscard]] const std::vector<VarDecl*>& decls() const { return decls_; }
  [[nodiscard]] std::vector<VarDecl*>& decls() { return decls_; }

 private:
  std::vector<VarDecl*> decls_;
};

class ExprStmt final : public Stmt {
 public:
  ExprStmt(Expr* expr, SourceLoc loc) : Stmt(StmtKind::Expr, loc), expr_(expr) {}
  [[nodiscard]] Expr* expr() const { return expr_; }
  void setExpr(Expr* e) { expr_ = e; }

 private:
  Expr* expr_;
};

class IfStmt final : public Stmt {
 public:
  IfStmt(Expr* cond, Stmt* then_stmt, Stmt* else_stmt, SourceLoc loc)
      : Stmt(StmtKind::If, loc), cond_(cond), then_(then_stmt), else_(else_stmt) {}
  [[nodiscard]] Expr* cond() const { return cond_; }
  [[nodiscard]] Stmt* thenStmt() const { return then_; }
  [[nodiscard]] Stmt* elseStmt() const { return else_; }
  void setCond(Expr* e) { cond_ = e; }

 private:
  Expr* cond_;
  Stmt* then_;
  Stmt* else_;
};

class ForStmt final : public Stmt {
 public:
  ForStmt(Stmt* init, Expr* cond, Expr* step, Stmt* body, SourceLoc loc)
      : Stmt(StmtKind::For, loc), init_(init), cond_(cond), step_(step), body_(body) {}
  [[nodiscard]] Stmt* init() const { return init_; }  ///< DeclStmt, ExprStmt, or NullStmt
  [[nodiscard]] Expr* cond() const { return cond_; }  ///< may be null
  [[nodiscard]] Expr* step() const { return step_; }  ///< may be null
  [[nodiscard]] Stmt* body() const { return body_; }
  void setBody(Stmt* s) { body_ = s; }
  void setCond(Expr* e) { cond_ = e; }
  void setStep(Expr* e) { step_ = e; }

 private:
  Stmt* init_;
  Expr* cond_;
  Expr* step_;
  Stmt* body_;
};

class WhileStmt final : public Stmt {
 public:
  WhileStmt(Expr* cond, Stmt* body, SourceLoc loc)
      : Stmt(StmtKind::While, loc), cond_(cond), body_(body) {}
  [[nodiscard]] Expr* cond() const { return cond_; }
  [[nodiscard]] Stmt* body() const { return body_; }
  void setCond(Expr* e) { cond_ = e; }

 private:
  Expr* cond_;
  Stmt* body_;
};

class DoStmt final : public Stmt {
 public:
  DoStmt(Stmt* body, Expr* cond, SourceLoc loc)
      : Stmt(StmtKind::Do, loc), body_(body), cond_(cond) {}
  [[nodiscard]] Stmt* body() const { return body_; }
  [[nodiscard]] Expr* cond() const { return cond_; }
  void setCond(Expr* e) { cond_ = e; }

 private:
  Stmt* body_;
  Expr* cond_;
};

class ReturnStmt final : public Stmt {
 public:
  ReturnStmt(Expr* value, SourceLoc loc) : Stmt(StmtKind::Return, loc), value_(value) {}
  [[nodiscard]] Expr* value() const { return value_; }  ///< may be null
  void setValue(Expr* e) { value_ = e; }

 private:
  Expr* value_;
};

class BreakStmt final : public Stmt {
 public:
  explicit BreakStmt(SourceLoc loc) : Stmt(StmtKind::Break, loc) {}
};

class ContinueStmt final : public Stmt {
 public:
  explicit ContinueStmt(SourceLoc loc) : Stmt(StmtKind::Continue, loc) {}
};

class NullStmt final : public Stmt {
 public:
  explicit NullStmt(SourceLoc loc) : Stmt(StmtKind::Null, loc) {}
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

enum class DeclKind : std::uint8_t { Var, Param, Function };

enum class StorageClass : std::uint8_t { None, Static, Extern };

class Decl {
 public:
  Decl(DeclKind kind, std::string name, SourceLoc loc)
      : kind_(kind), name_(std::move(name)), loc_(loc) {}
  virtual ~Decl() = default;
  Decl(const Decl&) = delete;
  Decl& operator=(const Decl&) = delete;

  [[nodiscard]] DeclKind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] SourceLoc loc() const { return loc_; }
  void rename(std::string name) { name_ = std::move(name); }

  /// Stable unique id assigned by ASTContext; key for analysis-side maps.
  [[nodiscard]] std::uint32_t id() const { return id_; }
  void setId(std::uint32_t id) { id_ = id; }

 private:
  DeclKind kind_;
  std::string name_;
  SourceLoc loc_;
  std::uint32_t id_ = 0;
};

class VarDecl : public Decl {
 public:
  VarDecl(std::string name, const Type* type, SourceLoc loc)
      : Decl(DeclKind::Var, std::move(name), loc), type_(type) {}
  VarDecl(DeclKind kind, std::string name, const Type* type, SourceLoc loc)
      : Decl(kind, std::move(name), loc), type_(type) {}

  [[nodiscard]] const Type* type() const { return type_; }
  void setType(const Type* t) { type_ = t; }

  [[nodiscard]] Expr* init() const { return init_; }
  void setInit(Expr* e) { init_ = e; }

  [[nodiscard]] StorageClass storage() const { return storage_; }
  void setStorage(StorageClass sc) { storage_ = sc; }

  /// True for file-scope variables (set by the parser).
  [[nodiscard]] bool isGlobal() const { return is_global_; }
  void setGlobal(bool g) { is_global_ = g; }

  /// The function whose scope declares this variable (null for globals).
  [[nodiscard]] FunctionDecl* owner() const { return owner_; }
  void setOwner(FunctionDecl* f) { owner_ = f; }

 private:
  const Type* type_;
  Expr* init_ = nullptr;
  StorageClass storage_ = StorageClass::None;
  bool is_global_ = false;
  FunctionDecl* owner_ = nullptr;
};

class ParamDecl final : public VarDecl {
 public:
  ParamDecl(std::string name, const Type* type, SourceLoc loc)
      : VarDecl(DeclKind::Param, std::move(name), type, loc) {}
};

class FunctionDecl final : public Decl {
 public:
  FunctionDecl(std::string name, const Type* return_type, SourceLoc loc)
      : Decl(DeclKind::Function, std::move(name), loc), return_type_(return_type) {}

  [[nodiscard]] const Type* returnType() const { return return_type_; }
  [[nodiscard]] const std::vector<ParamDecl*>& params() const { return params_; }
  [[nodiscard]] std::vector<ParamDecl*>& params() { return params_; }
  [[nodiscard]] CompoundStmt* body() const { return body_; }
  void setBody(CompoundStmt* b) { body_ = b; }
  [[nodiscard]] bool isDefinition() const { return body_ != nullptr; }

 private:
  const Type* return_type_;
  std::vector<ParamDecl*> params_;
  CompoundStmt* body_ = nullptr;
};

// ---------------------------------------------------------------------------
// Translation unit
// ---------------------------------------------------------------------------

/// A top-level entity: either a group of variable declarations (one source
/// declaration statement) or a function.
struct TopLevel {
  enum class Kind { Vars, Function } kind = Kind::Vars;
  std::vector<VarDecl*> vars;
  FunctionDecl* function = nullptr;
};

class TranslationUnit {
 public:
  [[nodiscard]] std::vector<TopLevel>& topLevels() { return top_levels_; }
  [[nodiscard]] const std::vector<TopLevel>& topLevels() const { return top_levels_; }

  [[nodiscard]] std::vector<lex::Directive>& directives() { return directives_; }
  [[nodiscard]] const std::vector<lex::Directive>& directives() const { return directives_; }

  /// All function definitions, in source order.
  [[nodiscard]] std::vector<FunctionDecl*> functions() const;
  /// All file-scope variables, in source order.
  [[nodiscard]] std::vector<VarDecl*> globals() const;
  /// Find a function by name (definition preferred); null if absent.
  [[nodiscard]] FunctionDecl* findFunction(const std::string& name) const;

 private:
  std::vector<TopLevel> top_levels_;
  std::vector<lex::Directive> directives_;
};

}  // namespace hsm::ast

// ASTContext: the arena that owns every AST node plus the type table.
//
// Factory functions hand out non-owning pointers; the context outlives the
// tree and all passes. Each Decl receives a stable unique id used as the key
// in analysis-side maps (VariableInfo tables, points-to graphs, plans).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "ast/ast.h"
#include "ast/type.h"

namespace hsm::ast {

class ASTContext {
 public:
  ASTContext() = default;
  ASTContext(const ASTContext&) = delete;
  ASTContext& operator=(const ASTContext&) = delete;

  [[nodiscard]] TypeTable& types() { return types_; }
  [[nodiscard]] const TypeTable& types() const { return types_; }

  [[nodiscard]] TranslationUnit& unit() { return unit_; }
  [[nodiscard]] const TranslationUnit& unit() const { return unit_; }

  template <typename T, typename... Args>
  T* makeExpr(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = node.get();
    exprs_.push_back(std::move(node));
    return raw;
  }

  template <typename T, typename... Args>
  T* makeStmt(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = node.get();
    stmts_.push_back(std::move(node));
    return raw;
  }

  template <typename T, typename... Args>
  T* makeDecl(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = node.get();
    raw->setId(next_decl_id_++);
    decls_.push_back(std::move(node));
    return raw;
  }

  [[nodiscard]] std::uint32_t declCount() const { return next_decl_id_; }

 private:
  TypeTable types_;
  TranslationUnit unit_;
  std::vector<std::unique_ptr<Expr>> exprs_;
  std::vector<std::unique_ptr<Stmt>> stmts_;
  std::vector<std::unique_ptr<Decl>> decls_;
  std::uint32_t next_decl_id_ = 0;
};

}  // namespace hsm::ast
